#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/topo/topology.h"
#include "src/vm/thp.h"
#include "src/workloads/spec.h"
#include "src/workloads/workload.h"

namespace numalp {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : topo_(Topology::Tiny(512 * kMiB)), phys_(topo_), as_(phys_, topo_, thp_) {}

  Topology topo_;
  PhysicalMemory phys_;
  ThpState thp_;
  AddressSpace as_;
};

WorkloadSpec SimpleSpec() {
  WorkloadSpec spec;
  spec.name = "test";
  spec.steady_accesses_per_thread = 1000;
  RegionSpec region;
  region.name = "data";
  region.bytes = 4 * kMiB;
  region.access_share = 1.0;
  region.pattern = PatternKind::kPartitioned;
  region.local_fraction = 1.0;
  region.setup_owner = SetupOwner::kPartitionOwner;
  spec.regions = {region};
  return spec;
}

TEST_F(WorkloadTest, AllBenchmarkSpecsConstructOnBothMachines) {
  for (const Topology& topo : {Topology::MachineA(), Topology::MachineB()}) {
    for (BenchmarkId id : FullSuite()) {
      const WorkloadSpec spec = MakeWorkloadSpec(id, topo);
      EXPECT_FALSE(spec.regions.empty()) << NameOf(id);
      EXPECT_GT(spec.TotalShare(), 0.0) << NameOf(id);
      std::uint64_t footprint = 0;
      for (const auto& region : spec.regions) {
        footprint += region.bytes;
      }
      // Every model must fit the simulated machine's DRAM with room for page
      // tables and metadata.
      EXPECT_LT(footprint, topo.total_dram_bytes() * 9 / 10)
          << NameOf(id) << " on " << topo.name();
    }
  }
}

TEST_F(WorkloadTest, SuiteSubsetsPartitionFigure1) {
  const auto affected = AffectedSubset();
  const auto unaffected = UnaffectedSubset();
  EXPECT_EQ(affected.size() + unaffected.size(), FullSuite().size());
  std::set<BenchmarkId> all(affected.begin(), affected.end());
  all.insert(unaffected.begin(), unaffected.end());
  EXPECT_EQ(all.size(), FullSuite().size());
}

TEST_F(WorkloadTest, BatchGenerationIsDeterministic) {
  Workload a(SimpleSpec(), as_, 4, 99);
  PhysicalMemory phys2(topo_);
  ThpState thp2;
  AddressSpace as2(phys2, topo_, thp2);
  Workload b(SimpleSpec(), as2, 4, 99);
  std::vector<WorkloadAccess> batch_a;
  std::vector<WorkloadAccess> batch_b;
  for (int t = 0; t < 4; ++t) {
    a.BeginEpoch();
    b.BeginEpoch();
    a.FillBatch(t, 256, batch_a);
    b.FillBatch(t, 256, batch_b);
    ASSERT_EQ(batch_a.size(), batch_b.size());
    for (std::size_t i = 0; i < batch_a.size(); ++i) {
      EXPECT_EQ(batch_a[i].va - a.region_base(0), batch_b[i].va - b.region_base(0));
    }
  }
}

TEST_F(WorkloadTest, SetupTouchesEveryPageExactlyOnce) {
  Workload workload(SimpleSpec(), as_, 4, 7);
  std::unordered_set<std::uint64_t> touched;
  std::vector<WorkloadAccess> batch;
  const Addr base = workload.region_base(0);
  // Drain everything until setup completes.
  for (int epoch = 0; epoch < 10 && !workload.SetupDone(); ++epoch) {
    workload.BeginEpoch();
    for (int t = 0; t < 4; ++t) {
      workload.FillBatch(t, 512, batch);
      for (const auto& access : batch) {
        if (access.va >= base && access.va < base + 4 * kMiB) {
          const std::uint64_t page = (access.va - base) / kBytes4K;
          touched.insert(page);
        }
      }
    }
  }
  EXPECT_TRUE(workload.SetupDone());
  EXPECT_EQ(touched.size(), 4 * kMiB / kBytes4K);
}

TEST_F(WorkloadTest, PartitionedSteadyAccessesStayInOwnSlice) {
  Workload workload(SimpleSpec(), as_, 4, 7);
  std::vector<WorkloadAccess> batch;
  // Finish setup.
  while (!workload.SetupDone()) {
    workload.BeginEpoch();
    for (int t = 0; t < 4; ++t) {
      workload.FillBatch(t, 512, batch);
    }
  }
  const Addr base = workload.region_base(0);
  const std::uint64_t slice_bytes = kMiB;  // 4MiB over 4 threads
  workload.BeginEpoch();
  for (int t = 0; t < 4; ++t) {
    workload.FillBatch(t, 256, batch);
    for (const auto& access : batch) {
      if (access.region != 0) {
        continue;
      }
      const std::uint64_t offset = access.va - base;
      EXPECT_EQ(offset / slice_bytes, static_cast<std::uint64_t>(t))
          << "thread " << t << " escaped its slice (local_fraction=1)";
    }
  }
}

TEST_F(WorkloadTest, HotChunksStayInChunkGeometry) {
  WorkloadSpec spec;
  spec.name = "hot";
  spec.steady_accesses_per_thread = 100;
  RegionSpec region;
  region.name = "chunks";
  region.bytes = 2 * kMiB;
  region.access_share = 1.0;
  region.pattern = PatternKind::kHotChunks;
  region.chunk_bytes = 16 * kKiB;
  region.chunk_stride = 256 * kKiB;
  region.num_chunks = 8;
  region.setup_owner = SetupOwner::kChunkOwner;
  spec.regions = {region};
  Workload workload(spec, as_, 4, 3);
  while (!workload.SetupDone()) {
    workload.BeginEpoch();
    std::vector<WorkloadAccess> batch;
    for (int t = 0; t < 4; ++t) {
      workload.FillBatch(t, 512, batch);
    }
  }
  const Addr base = workload.region_base(0);
  std::vector<WorkloadAccess> batch;
  workload.BeginEpoch();
  for (int t = 0; t < 4; ++t) {
    workload.FillBatch(t, 128, batch);
    for (const auto& access : batch) {
      if (access.region != 0) {
        continue;
      }
      const std::uint64_t offset = access.va - base;
      // Inside a chunk: offset % stride < chunk size.
      EXPECT_LT(offset % (256 * kKiB), 16 * kKiB);
      EXPECT_LT(offset / (256 * kKiB), 8u);
    }
  }
}

TEST_F(WorkloadTest, IncrementalRegionGrowsFreshPagesInOrder) {
  WorkloadSpec spec;
  spec.name = "alloc";
  spec.steady_accesses_per_thread = 2000;
  RegionSpec region;
  region.name = "growing";
  region.bytes = 8 * kMiB;
  region.access_share = 1.0;
  region.incremental = true;
  region.fresh_fraction = 0.5;
  spec.regions = {region};
  Workload workload(spec, as_, 2, 5);
  const Addr base = workload.region_base(0);
  std::vector<WorkloadAccess> batch;
  std::uint64_t max_page_thread0 = 0;
  workload.BeginEpoch();
  workload.FillBatch(0, 64, batch);  // finish scratch setup
  workload.BeginEpoch();
  workload.FillBatch(1, 64, batch);
  workload.BeginEpoch();
  workload.FillBatch(0, 512, batch);
  std::uint64_t fresh_count = 0;
  std::unordered_set<std::uint64_t> seen;
  for (const auto& access : batch) {
    if (access.region != 0) {
      continue;
    }
    const std::uint64_t page = (access.va - base) / kBytes4K;
    // Thread 0's arena is the first half of the region.
    EXPECT_LT(page, 8 * kMiB / kBytes4K / 2);
    if (seen.insert(page).second) {
      ++fresh_count;
      EXPECT_GE(page, max_page_thread0);  // fresh pages appear in order
      max_page_thread0 = page;
    }
  }
  EXPECT_GT(fresh_count, 100u);  // ~50% fresh
}

TEST_F(WorkloadTest, DoneAfterSteadyBudget) {
  WorkloadSpec spec = SimpleSpec();
  spec.steady_accesses_per_thread = 100;
  Workload workload(spec, as_, 2, 1);
  EXPECT_FALSE(workload.Done());
  std::vector<WorkloadAccess> batch;
  for (int epoch = 0; epoch < 50 && !workload.Done(); ++epoch) {
    workload.BeginEpoch();
    for (int t = 0; t < 2; ++t) {
      workload.FillBatch(t, 300, batch);
    }
  }
  EXPECT_TRUE(workload.Done());
  EXPECT_GE(workload.steady_issued(0), 100u);
}

TEST_F(WorkloadTest, ZipfBlockShuffleSpreadsHotRanks) {
  WorkloadSpec spec;
  spec.name = "zipf";
  spec.steady_accesses_per_thread = 100;
  RegionSpec region;
  region.name = "heap";
  region.bytes = 16 * kMiB;  // 4096 pages
  region.access_share = 1.0;
  region.pattern = PatternKind::kZipf;
  region.zipf_s = 1.1;
  region.zipf_block_shuffle = 16;
  spec.regions = {region};
  Workload workload(spec, as_, 2, 11);
  while (!workload.SetupDone()) {
    workload.BeginEpoch();
    std::vector<WorkloadAccess> batch;
    for (int t = 0; t < 2; ++t) {
      workload.FillBatch(t, 2048, batch);
    }
  }
  // Steady accesses must spread across many distinct 2MB windows (with
  // identity layout the hot head would sit in window 0).
  std::set<std::uint64_t> windows;
  std::vector<WorkloadAccess> batch;
  workload.BeginEpoch();
  workload.FillBatch(0, 1024, batch);
  const Addr base = workload.region_base(0);
  for (const auto& access : batch) {
    if (access.region == 0) {
      windows.insert((access.va - base) / kBytes2M);
    }
  }
  EXPECT_GE(windows.size(), 6u);
}

TEST_F(WorkloadTest, FileBackedRegionsAreNotThpEligible) {
  const WorkloadSpec wc = MakeWorkloadSpec(BenchmarkId::kWC, topo_);
  bool found_file_region = false;
  for (const auto& region : wc.regions) {
    if (!region.thp_eligible) {
      found_file_region = true;
    }
  }
  EXPECT_TRUE(found_file_region) << "WC's input must be file-mapped (no THP)";
}

TEST_F(WorkloadTest, CgHasHotChunkRegion) {
  const WorkloadSpec cg = MakeWorkloadSpec(BenchmarkId::kCG_D, Topology::MachineB());
  bool found = false;
  for (const auto& region : cg.regions) {
    if (region.pattern == PatternKind::kHotChunks) {
      found = true;
      // The paper's geometry: chunks coalesce 8-into-1 under 2MB pages.
      EXPECT_EQ(region.chunk_stride, 256 * kKiB);
      EXPECT_LT(region.chunk_bytes, region.chunk_stride);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace numalp
