// Results-pipeline regression tests (DESIGN.md Section 6): the schema is
// the single source of truth (serialize -> parse -> serialize is the
// identity), CSV/JSONL output matches golden strings, GridReport output is
// byte-identical across jobs values, aggregation reproduces the seed-mean
// arithmetic, and the qualitative paper checks pass/fail/skip correctly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/report/aggregate.h"
#include "src/report/checks.h"
#include "src/report/collector.h"
#include "src/report/result_row.h"
#include "src/report/sink.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace numalp::report {
namespace {

// A fully-populated row with awkward values: negative improvement, a
// non-round double, a comma in a string field.
ResultRow GoldenRow() {
  ResultRow row;
  row.bench = "fig1";
  row.machine = "machineB";
  row.workload = "CG.D";
  row.policy = "THP";
  row.variant = "a,b";
  row.seed_index = 2;
  row.seed = 42 + 2 * 7919;
  row.completed = true;
  row.epochs = 17;
  row.total_cycles = 123456789;
  row.measured_cycles = 100000000;
  row.runtime_ms = 61.728394500000001;
  row.improvement_pct = -43.25;
  row.lar_pct = 36.5;
  row.imbalance_pct = 59.0;
  row.pamup_pct = 8.125;
  row.nhp = 3;
  row.psp_pct = 34.0;
  row.walk_l2_miss_pct = 0.1;
  row.steady_fault_share_pct = 1.5;
  row.max_fault_ms = 2.75;
  row.thp_coverage_pct = 99.5;
  row.migrations = 1048;
  row.splits = 4;
  row.promotions = 1;
  row.overhead_pct = 0.79;
  row.est_carrefour_lar_pct = 96.9;
  row.est_split_lar_pct = 100.0;
  row.status = "ok";
  row.fault_alloc_failures = 7;
  row.fault_migration_failures = 5;
  row.fault_split_failures = 1;
  row.fault_truncated_plans = 2;
  row.fault_pressure_epochs = 3;
  row.fault_promote_backoffs = 4;
  row.fault_retried_migrations = 6;
  row.fault_abandoned_pages = 1;
  row.thp_fallback_faults = 9;
  row.frag_index_pct = 37.5;
  row.buddy_largest_free_order = 18;
  row.buddy_free_2m_blocks = 12;
  row.buddy_alloc_failures = 11;
  row.trace_source = "CG.D@machineB#15880";
  row.region_maps = 5;
  row.region_unmaps = 2;
  row.unmapped_bytes = 8388608;
  return row;
}

std::string Serialize(const ResultRow& row) {
  std::string out;
  for (const ResultField& field : ResultSchema()) {
    out += FieldToString(row, field);
    out += '\x1f';
  }
  return out;
}

TEST(ResultSchemaTest, NamesAreUniqueAndTyped) {
  const auto& schema = ResultSchema();
  EXPECT_EQ(schema.size(), 46u);
  for (std::size_t a = 0; a < schema.size(); ++a) {
    for (std::size_t b = a + 1; b < schema.size(); ++b) {
      EXPECT_STRNE(schema[a].name, schema[b].name);
    }
    // Exactly one member pointer set, matching the declared type.
    const ResultField& f = schema[a];
    const int set = (f.s != nullptr) + (f.b != nullptr) + (f.i != nullptr) +
                    (f.u != nullptr) + (f.d != nullptr);
    EXPECT_EQ(set, 1) << f.name;
  }
}

TEST(ResultSchemaTest, FieldStringsRoundTrip) {
  const ResultRow row = GoldenRow();
  ResultRow parsed;
  for (const ResultField& field : ResultSchema()) {
    ASSERT_TRUE(FieldFromString(parsed, field, FieldToString(row, field))) << field.name;
  }
  EXPECT_EQ(Serialize(row), Serialize(parsed));
}

TEST(ResultSchemaTest, DoubleSerializationIsShortestRoundTrip) {
  // Canonical doubles must parse back to the exact same bits.
  const ResultField* dbl_field = nullptr;
  for (const ResultField& candidate : ResultSchema()) {
    if (std::string(candidate.name) == "est_split_lar_pct") {
      dbl_field = &candidate;
    }
  }
  ASSERT_NE(dbl_field, nullptr);
  for (double value : {-43.25, 61.728394500000001, 0.1, 1e-12, 1.0 / 3.0}) {
    ResultRow row;
    const ResultField& field = *dbl_field;
    row.*(field.d) = value;
    ResultRow parsed;
    ASSERT_TRUE(FieldFromString(parsed, field, FieldToString(row, field)));
    EXPECT_EQ(parsed.*(field.d), value);
  }
}

TEST(CsvSinkTest, GoldenOutput) {
  std::ostringstream out;
  CsvSink sink(out);
  sink.Write(GoldenRow());
  sink.Finish();
  EXPECT_EQ(
      out.str(),
      "bench,machine,workload,policy,variant,seed_index,seed,completed,epochs,"
      "total_cycles,measured_cycles,runtime_ms,improvement_pct,lar_pct,imbalance_pct,"
      "pamup_pct,nhp,psp_pct,walk_l2_miss_pct,steady_fault_share_pct,max_fault_ms,"
      "thp_coverage_pct,migrations,splits,promotions,overhead_pct,"
      "est_carrefour_lar_pct,est_split_lar_pct,status,fault_alloc_failures,"
      "fault_migration_failures,fault_split_failures,fault_truncated_plans,"
      "fault_pressure_epochs,fault_promote_backoffs,fault_retried_migrations,"
      "fault_abandoned_pages,thp_fallback_faults,frag_index_pct,"
      "buddy_largest_free_order,buddy_free_2m_blocks,buddy_alloc_failures,"
      "trace_source,region_maps,region_unmaps,unmapped_bytes\n"
      "fig1,machineB,CG.D,THP,\"a,b\",2,15880,true,17,123456789,100000000,"
      "61.7283945,-43.25,36.5,59,8.125,3,34,0.1,1.5,2.75,99.5,1048,4,1,0.79,96.9,100,"
      "ok,7,5,1,2,3,4,6,1,9,37.5,18,12,11,CG.D@machineB#15880,5,2,8388608\n");
}

TEST(JsonlSinkTest, GoldenOutputAndRoundTrip) {
  std::ostringstream out;
  JsonlSink sink(out);
  const ResultRow row = GoldenRow();
  sink.Write(row);
  sink.Finish();
  const std::string line = out.str();
  EXPECT_EQ(line.substr(0, 58),
            "{\"bench\":\"fig1\",\"machine\":\"machineB\",\"workload\":\"CG.D\",\"po");
  EXPECT_EQ(line.back(), '\n');

  ResultRow parsed;
  std::string error;
  ASSERT_TRUE(ParseJsonlLine(line.substr(0, line.size() - 1), &parsed, &error)) << error;
  EXPECT_EQ(Serialize(row), Serialize(parsed));

  // Serialize the parsed row again: byte-identical (canonical form).
  std::ostringstream again;
  JsonlSink sink2(again);
  sink2.Write(parsed);
  EXPECT_EQ(line, again.str());
}

TEST(JsonlParseTest, IgnoresUnknownKeysAndReportsMalformed) {
  ResultRow row;
  std::string error;
  EXPECT_TRUE(ParseJsonlLine(R"({"bench":"x","not_a_field":7,"epochs":3})", &row, &error));
  EXPECT_EQ(row.bench, "x");
  EXPECT_EQ(row.epochs, 3);
  EXPECT_FALSE(ParseJsonlLine(R"({"epochs":"three"})", &row, &error));
  EXPECT_FALSE(ParseJsonlLine("epochs: 3", &row, &error));
}

TEST(MarkdownSinkTest, AlignsColumns) {
  std::ostringstream out;
  MarkdownSink sink(out);
  sink.Write(GoldenRow());
  sink.Finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("| bench |"), std::string::npos);
  EXPECT_NE(text.find("| fig1  |"), std::string::npos);
  EXPECT_NE(text.find("-43.25"), std::string::npos);  // human double formatting
}

SimConfig TinySim() {
  SimConfig sim;
  sim.max_epochs = 4;
  sim.accesses_per_thread_per_epoch = 512;
  return sim;
}

std::string RunGridThroughReport(int jobs) {
  auto out = std::make_unique<std::ostringstream>();
  std::ostringstream& stream = *out;
  ExperimentGrid grid;
  grid.machines = {Topology::Tiny()};
  grid.workloads = {BenchmarkId::kCG_D, BenchmarkId::kWC};
  grid.policies = {PolicyKind::kLinux4K, PolicyKind::kThp, PolicyKind::kCarrefourLp};
  grid.num_seeds = 2;
  grid.sim = TinySim();
  GridReport report(std::make_unique<JsonlSink>(stream), "test", jobs);
  report.Run(grid);
  report.Finish();
  return stream.str();
}

// The acceptance-criteria regression: sink output is byte-identical at any
// jobs value, because the runner reports cells in index order.
TEST(GridReportTest, OutputIsByteIdenticalAcrossJobCounts) {
  const std::string serial = RunGridThroughReport(1);
  const std::string parallel = RunGridThroughReport(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(GridReportTest, RowsCarryCoordinatesAndBaselineImprovement) {
  std::ostringstream stream;
  ExperimentGrid grid;
  grid.machines = {Topology::Tiny()};
  grid.workloads = {BenchmarkId::kWC};
  grid.policies = {PolicyKind::kThp};
  grid.num_seeds = 2;
  grid.sim = TinySim();
  {
    GridReport report(std::make_unique<JsonlSink>(stream), "test", 4);
    report.Run(grid);
  }
  std::istringstream lines(stream.str());
  std::string line;
  std::vector<ResultRow> rows;
  while (std::getline(lines, line)) {
    ResultRow row;
    std::string error;
    ASSERT_TRUE(ParseJsonlLine(line, &row, &error)) << error;
    rows.push_back(row);
  }
  // Per seed: the Linux-4K baseline, then the THP cell.
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].policy, "Linux-4K");
  EXPECT_EQ(rows[0].improvement_pct, 0.0);
  EXPECT_EQ(rows[0].seed_index, 0);
  EXPECT_EQ(rows[1].policy, "THP");
  EXPECT_EQ(rows[1].seed_index, 0);
  EXPECT_EQ(rows[2].seed_index, 1);
  EXPECT_EQ(rows[2].seed, CellSeed(grid.sim.seed, 1));
  EXPECT_EQ(rows[3].policy, "THP");
  EXPECT_EQ(rows[3].bench, "test");
  EXPECT_EQ(rows[3].workload, "WC");

  // The THP improvement matches ImprovementPct against the grid baseline.
  const GridResults results = RunGrid(grid, ExperimentRunner(1));
  EXPECT_EQ(rows[1].improvement_pct,
            ImprovementPct(results.Baseline(0, 0, 0), results.At(0, 0, 0, 0)));
}

TEST(GridReportTest, RunCellsUsesMetaBaselineAndVariant) {
  std::ostringstream stream;
  const Topology topo = Topology::Tiny();
  std::vector<RunSpec> cells(2);
  cells[0].topo = topo;
  cells[0].workload = MakeWorkloadSpec(BenchmarkId::kWC, topo);
  cells[0].policy = MakePolicyConfig(PolicyKind::kLinux4K);
  cells[0].sim = TinySim();
  cells[1] = cells[0];
  cells[1].policy = MakePolicyConfig(PolicyKind::kThp);
  {
    GridReport report(std::make_unique<JsonlSink>(stream), "test", 2);
    report.RunCells(cells, {{"sweep=a", -1, 0}, {"sweep=a", 0, 0}});
  }
  std::istringstream lines(stream.str());
  std::string line;
  std::vector<ResultRow> rows;
  while (std::getline(lines, line)) {
    ResultRow row;
    std::string error;
    ASSERT_TRUE(ParseJsonlLine(line, &row, &error)) << error;
    rows.push_back(row);
  }
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].variant, "sweep=a");
  EXPECT_EQ(rows[0].improvement_pct, 0.0);
  EXPECT_EQ(rows[1].variant, "sweep=a");
  EXPECT_NE(rows[1].improvement_pct, 0.0);
}

ResultRow Row(const std::string& machine, const std::string& workload,
              const std::string& policy, double improvement, double lar = 50.0,
              const std::string& variant = "") {
  ResultRow row;
  row.bench = "fig";
  row.machine = machine;
  row.workload = workload;
  row.policy = policy;
  row.variant = variant;
  row.improvement_pct = improvement;
  row.lar_pct = lar;
  return row;
}

TEST(AggregateTest, MeansMinMaxOverSeeds) {
  const std::vector<ResultRow> rows = {Row("machineB", "CG.D", "THP", -40.0),
                                       Row("machineB", "CG.D", "THP", -46.0),
                                       Row("machineB", "CG.D", "Linux-4K", 0.0)};
  const std::vector<AggregateRow> aggregates = Aggregate(rows);
  ASSERT_EQ(aggregates.size(), 2u);
  EXPECT_EQ(aggregates[0].policy, "THP");  // first appearance order
  EXPECT_EQ(aggregates[0].runs, 2);
  EXPECT_EQ(aggregates[0].mean_improvement_pct, (-40.0 + -46.0) * (1.0 / 2));
  EXPECT_EQ(aggregates[0].min_improvement_pct, -46.0);
  EXPECT_EQ(aggregates[0].max_improvement_pct, -40.0);
}

TEST(AggregateTest, VariantsAreSeparateColumns) {
  const std::vector<ResultRow> rows = {Row("machineB", "CG.D", "THP", -40.0, 50.0, "x=1"),
                                       Row("machineB", "CG.D", "THP", -46.0, 50.0, "x=2")};
  EXPECT_EQ(Aggregate(rows).size(), 2u);
}

TEST(ChecksTest, PassOnPaperShapedRows) {
  std::vector<ResultRow> rows = {
      Row("machineB", "CG.D", "Linux-4K", 0.0, 40.0),
      Row("machineB", "CG.D", "THP", -43.0, 36.0),
      Row("machineB", "CG.D", "Carrefour-2M", -38.0, 38.0),
      Row("machineB", "CG.D", "Carrefour-LP", 2.0, 39.0),
      Row("machineB", "WC", "THP", 109.0),
      Row("machineA", "wrmem", "THP", 51.0),
      Row("machineB", "wrmem", "THP", 80.0),
      Row("machineA", "SSCA.20", "THP", -17.0),
      Row("machineA", "SSCA.20", "Carrefour-2M", 13.0),
      Row("machineA", "UA.B", "Linux-4K", 0.0, 90.0),
      Row("machineA", "UA.B", "THP", -25.0, 61.0),
  };
  const auto results = EvaluatePaperChecks(rows);
  EXPECT_TRUE(AllPassed(results));
  int passed = 0;
  for (const auto& result : results) {
    passed += result.status == CheckStatus::kPass ? 1 : 0;
  }
  EXPECT_EQ(passed, 9);  // every check has its columns
}

TEST(ChecksTest, LpGeqCarrefourAcrossAffectedSet) {
  // Carrefour-LP more than the tolerance band below Carrefour-2M on an
  // affected workload contradicts the paper's "never loses more than a few
  // percent" (Figure 3) and must fail.
  std::vector<ResultRow> rows = {Row("machineA", "LU.B", "Carrefour-2M", -5.0),
                                 Row("machineA", "LU.B", "Carrefour-LP", -40.0)};
  auto results = EvaluatePaperChecks(rows);
  EXPECT_FALSE(AllPassed(results));

  // Within the band: passes.
  rows = {Row("machineA", "LU.B", "Carrefour-2M", -5.0),
          Row("machineA", "LU.B", "Carrefour-LP", -8.0)};
  EXPECT_TRUE(AllPassed(EvaluatePaperChecks(rows)));

  // UA holds the same 6-point band as every other affected column (the old
  // 45-point mass-relocation carve-out is gone)...
  rows = {Row("machineB", "UA.B", "Carrefour-2M", -5.0, 25.0),
          Row("machineB", "UA.B", "Carrefour-LP", -40.0, 70.0)};
  EXPECT_FALSE(AllPassed(EvaluatePaperChecks(rows)));
  // ...and additionally must show the false-sharing recovery: inside the
  // band but with LAR below plain Carrefour's still fails.
  rows = {Row("machineB", "UA.B", "Carrefour-2M", -5.0, 25.0),
          Row("machineB", "UA.B", "Carrefour-LP", -8.0, 12.0)};
  EXPECT_FALSE(AllPassed(EvaluatePaperChecks(rows)));
  rows = {Row("machineB", "UA.B", "Carrefour-2M", -5.0, 25.0),
          Row("machineB", "UA.B", "Carrefour-LP", -8.0, 70.0)};
  EXPECT_TRUE(AllPassed(EvaluatePaperChecks(rows)));
}

TEST(ChecksTest, SummaryRoundTripEvaluatesIdentically) {
  // A written bench_summary.json parses back into groups whose pooled
  // checks agree with the row-level evaluation — the contract behind
  // `numalp_report --from-summary BENCH_fig2_fig3.json --check`.
  const std::vector<ResultRow> rows = {
      Row("machineB", "CG.D", "Linux-4K", 0.0, 40.0),
      Row("machineB", "CG.D", "THP", -43.0, 36.0),
      Row("machineB", "CG.D", "Carrefour-2M", -38.0, 38.0),
      Row("machineB", "CG.D", "Carrefour-LP", 2.0, 39.0),
      Row("machineA", "UA.B", "Linux-4K", 0.0, 90.0),
      Row("machineA", "UA.B", "THP", -25.0, 61.0),
      Row("machineA", "UA.B", "Carrefour-2M", -15.0, 34.0),
      Row("machineA", "UA.B", "Carrefour-LP", -18.0, 85.0),
      Row("machineA", "LU.B", "Carrefour-2M", -5.0, 80.0, "sweep"),  // variant: ignored
  };
  const std::vector<AggregateRow> aggregates = Aggregate(rows);
  std::ostringstream out;
  WriteSummaryJson(out, aggregates);

  std::vector<AggregateRow> parsed;
  std::string error;
  ASSERT_TRUE(ParseSummaryJson(out.str(), &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), aggregates.size());
  EXPECT_EQ(parsed[0].machine, aggregates[0].machine);
  EXPECT_EQ(parsed[0].runs, aggregates[0].runs);
  EXPECT_DOUBLE_EQ(parsed[0].mean_improvement_pct, aggregates[0].mean_improvement_pct);
  EXPECT_DOUBLE_EQ(parsed[0].lar_pct, aggregates[0].lar_pct);

  const auto from_rows = EvaluatePaperChecks(rows);
  const auto from_summary = EvaluatePaperChecks(parsed);
  ASSERT_EQ(from_rows.size(), from_summary.size());
  for (std::size_t i = 0; i < from_rows.size(); ++i) {
    EXPECT_EQ(from_rows[i].name, from_summary[i].name);
    EXPECT_EQ(static_cast<int>(from_rows[i].status),
              static_cast<int>(from_summary[i].status))
        << from_rows[i].name;
  }
  EXPECT_TRUE(AllPassed(from_summary));

  std::vector<AggregateRow> rejected;
  EXPECT_FALSE(ParseSummaryJson("{\"schema\":\"something-else\"}", &rejected, &error));
}

TEST(ChecksTest, FailWhenDataContradictsPaper) {
  // THP *helping* the hot-page workload CG.D on machine B contradicts
  // Figure 1.
  const std::vector<ResultRow> rows = {Row("machineB", "CG.D", "Linux-4K", 0.0),
                                       Row("machineB", "CG.D", "THP", +20.0)};
  const auto results = EvaluatePaperChecks(rows);
  EXPECT_FALSE(AllPassed(results));
}

TEST(ChecksTest, SkipWithoutRequiredColumnsAndIgnoreVariants) {
  // Variant-tagged rows model non-default setups and must not trip checks.
  const std::vector<ResultRow> rows = {
      Row("machineB", "CG.D", "Linux-4K", 0.0, 50.0, "mem8"),
      Row("machineB", "CG.D", "THP", +20.0, 50.0, "mem8")};
  const auto results = EvaluatePaperChecks(rows);
  EXPECT_TRUE(AllPassed(results));
  for (const auto& result : results) {
    EXPECT_EQ(result.status, CheckStatus::kSkip) << result.name;
  }
}

TEST(ChecksTest, BaselineMustBeZero) {
  const std::vector<ResultRow> rows = {Row("machineB", "CG.D", "Linux-4K", 1.0)};
  const auto results = EvaluatePaperChecks(rows);
  EXPECT_FALSE(AllPassed(results));
}

TEST(LoadJsonlTest, SkipsMalformedLinesWithIssues) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "numalp_report_test.jsonl").string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << R"({"bench":"fig1","epochs":3})" << "\n";
    out << "not json\n";
    out << "\n";
    out << R"({"bench":"fig2","epochs":4})" << "\n";
  }
  std::vector<ParseIssue> issues;
  const std::vector<ResultRow> rows = LoadJsonlFile(path, &issues);
  std::filesystem::remove(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].bench, "fig1");
  EXPECT_EQ(rows[1].epochs, 4);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].line, 2);
}

}  // namespace
}  // namespace numalp::report
