// Trace capture/replay tests (DESIGN.md Section 14): binary-format
// round-trips, strict corruption rejection, capture -> replay ResultRow
// byte-identity across shard counts and engines, and the unmap-churn ->
// buddy-fragmentation regression the tracegen profiles exist to drive.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/core/simulation.h"
#include "src/report/result_row.h"
#include "src/topo/topology.h"
#include "src/trace/trace_format.h"
#include "src/trace/trace_reader.h"
#include "src/trace/trace_writer.h"
#include "src/trace/tracegen.h"
#include "src/workloads/spec.h"
#include "src/workloads/trace_workload.h"

namespace numalp {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::vector<std::uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

trace::TraceHeader GoldenHeader() {
  trace::TraceHeader header;
  header.machine = "tiny";
  header.workload = "unit";
  header.seed = 7;
  header.threads = 2;
  header.accesses_per_thread_per_epoch = 8;
  SourceRegion r0;
  r0.base = 1ull << 32;
  r0.bytes = 2 * kMiB;
  r0.thp_eligible = true;
  r0.dram_intensity = 0.625;
  r0.mlp = 2.0;
  SourceRegion r1;
  r1.base = (1ull << 32) + (1ull << 30);
  r1.bytes = 64 * kKiB;
  r1.thp_eligible = false;
  r1.explicit_page = PageSize::k2M;
  r1.dram_intensity = 0.25;
  r1.mlp = 1.0;
  header.regions = {r0, r1};
  return header;
}

void ExpectRegionEq(const SourceRegion& want, const SourceRegion& got) {
  EXPECT_EQ(want.base, got.base);
  EXPECT_EQ(want.bytes, got.bytes);
  EXPECT_EQ(want.thp_eligible, got.thp_eligible);
  EXPECT_EQ(want.explicit_page, got.explicit_page);
  EXPECT_DOUBLE_EQ(want.dram_intensity, got.dram_intensity);
  EXPECT_DOUBLE_EQ(want.mlp, got.mlp);
}

// Writer -> reader golden: the decoded stream must equal what was fed in,
// including negative VA deltas, lifetime events, and the completion marker.
TEST(TraceFormatTest, RoundTripsHeaderEpochsAndLifetimeEvents) {
  const std::string path = TempPath("trace_roundtrip.bin");
  const trace::TraceHeader header = GoldenHeader();

  // Deltas exercise both varint tails: forward strides and a backward jump.
  const std::vector<WorkloadAccess> batch0 = {
      {header.regions[0].base + 4096, 0, false},
      {header.regions[0].base + 8192, 0, true},
      {header.regions[0].base + 64, 0, false},  // negative delta
      {header.regions[1].base + 300, 1, true},
  };
  const std::vector<WorkloadAccess> batch1 = {
      {header.regions[1].base, 1, false},
      {header.regions[1].base + 40960, 1, false},
  };
  RegionMapEvent map_event;
  map_event.region = 2;
  map_event.desc.base = (1ull << 32) + (2ull << 30);
  map_event.desc.bytes = 4 * kMiB;
  map_event.desc.thp_eligible = true;
  map_event.desc.dram_intensity = 0.75;
  map_event.desc.mlp = 4.0;
  RegionUnmapEvent unmap_event;
  unmap_event.region = 1;
  unmap_event.base = header.regions[1].base;
  unmap_event.bytes = header.regions[1].bytes;

  {
    trace::TraceWriter writer(path, header);
    writer.BeginEpoch(/*in_setup=*/true);
    writer.Batch(0, batch0);
    writer.EndEpoch(/*done_after=*/false);
    writer.BeginEpoch(/*in_setup=*/false);
    writer.RegionMap(map_event);
    writer.RegionUnmap(unmap_event);
    writer.Batch(1, batch1);
    writer.EndEpoch(/*done_after=*/true);
    writer.Finish(/*completed=*/true);
  }

  trace::TraceReader reader(path);
  EXPECT_EQ(reader.header().machine, header.machine);
  EXPECT_EQ(reader.header().workload, header.workload);
  EXPECT_EQ(reader.header().seed, header.seed);
  EXPECT_EQ(reader.header().threads, header.threads);
  EXPECT_EQ(reader.header().accesses_per_thread_per_epoch,
            header.accesses_per_thread_per_epoch);
  EXPECT_EQ(reader.header().Provenance(), "unit@tiny#7");
  ASSERT_EQ(reader.header().regions.size(), 2u);
  ExpectRegionEq(header.regions[0], reader.header().regions[0]);
  ExpectRegionEq(header.regions[1], reader.header().regions[1]);

  trace::TraceEpoch epoch;
  ASSERT_TRUE(reader.NextEpoch(&epoch));
  EXPECT_TRUE(epoch.in_setup);
  EXPECT_FALSE(epoch.done_after);
  EXPECT_TRUE(epoch.maps.empty());
  EXPECT_TRUE(epoch.unmaps.empty());
  ASSERT_GE(epoch.batches.size(), 1u);
  ASSERT_EQ(epoch.batches[0].size(), batch0.size());
  for (std::size_t i = 0; i < batch0.size(); ++i) {
    EXPECT_EQ(batch0[i].va, epoch.batches[0][i].va) << "access " << i;
    EXPECT_EQ(batch0[i].region, epoch.batches[0][i].region);
    EXPECT_EQ(batch0[i].write, epoch.batches[0][i].write);
  }

  ASSERT_TRUE(reader.NextEpoch(&epoch));
  EXPECT_FALSE(epoch.in_setup);
  EXPECT_TRUE(epoch.done_after);
  ASSERT_EQ(epoch.maps.size(), 1u);
  EXPECT_EQ(epoch.maps[0].region, map_event.region);
  ExpectRegionEq(map_event.desc, epoch.maps[0].desc);
  ASSERT_EQ(epoch.unmaps.size(), 1u);
  EXPECT_EQ(epoch.unmaps[0].region, unmap_event.region);
  EXPECT_EQ(epoch.unmaps[0].base, unmap_event.base);
  EXPECT_EQ(epoch.unmaps[0].bytes, unmap_event.bytes);
  ASSERT_EQ(epoch.batches.size(), 2u);
  EXPECT_TRUE(epoch.batches[0].empty());
  ASSERT_EQ(epoch.batches[1].size(), batch1.size());
  for (std::size_t i = 0; i < batch1.size(); ++i) {
    EXPECT_EQ(batch1[i].va, epoch.batches[1][i].va) << "access " << i;
  }

  EXPECT_FALSE(reader.NextEpoch(&epoch));
  EXPECT_TRUE(epoch.trace_end);
  EXPECT_TRUE(reader.completed());
  EXPECT_EQ(trace::ReadTraceHeader(path).Provenance(), "unit@tiny#7");
  std::filesystem::remove(path);
}

// An abandoned writer (no Finish) marks the trace incomplete, not corrupt.
TEST(TraceFormatTest, AbandonedWriterRecordsIncomplete) {
  const std::string path = TempPath("trace_abandoned.bin");
  {
    trace::TraceWriter writer(path, GoldenHeader());
    writer.BeginEpoch(/*in_setup=*/false);
    writer.EndEpoch(/*done_after=*/false);
    // Destructor writes the end marker with completed=false.
  }
  trace::TraceReader reader(path);
  trace::TraceEpoch epoch;
  ASSERT_TRUE(reader.NextEpoch(&epoch));
  EXPECT_FALSE(reader.NextEpoch(&epoch));
  EXPECT_FALSE(reader.completed());
  std::filesystem::remove(path);
}

void WriteSmallTrace(const std::string& path) {
  trace::TraceWriter writer(path, GoldenHeader());
  writer.BeginEpoch(/*in_setup=*/false);
  writer.Batch(0, {{(1ull << 32) + 4096, 0, true}});
  writer.EndEpoch(/*done_after=*/true);
  writer.Finish(/*completed=*/true);
}

void DrainTrace(const std::string& path) {
  trace::TraceReader reader(path);
  trace::TraceEpoch epoch;
  while (reader.NextEpoch(&epoch)) {
  }
}

TEST(TraceFormatTest, RejectsBadMagic) {
  const std::string path = TempPath("trace_badmagic.bin");
  WriteSmallTrace(path);
  std::vector<std::uint8_t> bytes = ReadAll(path);
  bytes[0] ^= 0xff;
  WriteAll(path, bytes);
  EXPECT_THROW(DrainTrace(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceFormatTest, RejectsTruncatedFile) {
  const std::string path = TempPath("trace_truncated.bin");
  WriteSmallTrace(path);
  std::vector<std::uint8_t> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 8u);
  bytes.resize(bytes.size() - 5);  // cut into the trailing chunk
  WriteAll(path, bytes);
  EXPECT_THROW(DrainTrace(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceFormatTest, RejectsCorruptChunkPayload) {
  const std::string path = TempPath("trace_corrupt.bin");
  WriteSmallTrace(path);
  std::vector<std::uint8_t> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 2u);
  bytes[bytes.size() - 2] ^= 0x40;  // flip a payload byte -> checksum mismatch
  WriteAll(path, bytes);
  EXPECT_THROW(DrainTrace(path), std::runtime_error);
  std::filesystem::remove(path);
}

// Serializes a run through the real row schema so "byte-identical" means the
// committed CSV/JSONL bytes, not a float-tolerant comparison.
std::string SerializeRow(const RunSpec& spec, const RunResult& run) {
  const report::ResultRow row =
      report::MakeResultRow("trace_test", spec, run, /*baseline=*/nullptr,
                            /*seed_index=*/0, /*clock_ghz=*/2.1);
  std::string out;
  for (const report::ResultField& field : report::ResultSchema()) {
    out += report::FieldToString(row, field);
    out += '|';
  }
  return out;
}

// Capture once, then replay at every shards x engine combination: every
// replayed row must reproduce the capturing run's row byte-for-byte
// (DESIGN.md Section 14's determinism contract).
TEST(TraceCaptureReplayTest, ReplayReproducesCaptureRowAcrossShardsAndEngines) {
  const std::string path = TempPath("trace_capture_cg.bin");
  const Topology topo = Topology::Tiny();

  SimConfig sim;
  sim.seed = 42;
  sim.max_epochs = 6;
  sim.accesses_per_thread_per_epoch = 256;

  RunSpec capture;
  capture.topo = topo;
  capture.workload = MakeWorkloadSpec(BenchmarkId::kWC, topo);
  capture.workload.capture_file = path;
  capture.policy = MakePolicyConfig(PolicyKind::kThp);
  capture.sim = sim;
  Simulation capture_sim(topo, capture.workload, capture.policy, capture.sim);
  const RunResult capture_run = capture_sim.Run();
  const std::string golden = SerializeRow(capture, capture_run);
  EXPECT_NE(capture_run.trace_source.find("@tiny#42"), std::string::npos);

  struct Variant {
    int shards;
    bool reference;
  };
  const std::vector<Variant> variants = {
      {1, false}, {4, false}, {1, true}, {4, true}};
  for (const Variant& v : variants) {
    RunSpec replay;
    replay.topo = topo;
    replay.workload = MakeTraceWorkloadSpec(path);
    replay.policy = MakePolicyConfig(PolicyKind::kThp);
    replay.sim = sim;
    replay.sim.shards = v.shards;
    replay.sim.shards_force = v.shards > 1;
    replay.sim.reference_pipeline = v.reference;
    Simulation replay_sim(topo, replay.workload, replay.policy, replay.sim);
    const RunResult replay_run = replay_sim.Run();
    EXPECT_EQ(golden, SerializeRow(replay, replay_run))
        << "shards=" << v.shards << " reference=" << v.reference;
  }
  std::filesystem::remove(path);
}

// The ckpt-churn profile's mmap/munmap storm must reach the buddy allocator:
// real unmaps, real bytes freed, and a measurably fragmented free list
// compared with the same machine running a churn-free profile.
TEST(TraceChurnTest, CkptChurnUnmapsFragmentTheBuddyAllocator) {
  const Topology topo = Topology::Tiny();
  const std::string churn_path = TempPath("trace_tiny_churn.bin");
  const std::string calm_path = TempPath("trace_tiny_calm.bin");

  trace::TracegenOptions gen;
  gen.topo = topo;
  gen.seed = 42;
  gen.accesses_per_thread = 1024;
  gen.epochs = 40;
  gen.profile = "ckpt-churn";
  trace::GenerateTrace(gen, churn_path);
  gen.profile = "bert";  // steady phases, no checkpoint storm
  trace::GenerateTrace(gen, calm_path);

  SimConfig sim;
  sim.seed = 42;
  sim.max_epochs = 400;
  sim.accesses_per_thread_per_epoch = 1024;

  const auto replay = [&](const std::string& path) {
    Simulation s(topo, MakeTraceWorkloadSpec(path), MakePolicyConfig(PolicyKind::kLinux4K),
                 sim);
    return s.Run();
  };
  const RunResult churn = replay(churn_path);
  const RunResult calm = replay(calm_path);

  EXPECT_TRUE(churn.completed);
  EXPECT_GT(churn.region_maps, 0u);
  EXPECT_GT(churn.region_unmaps, 0u);
  EXPECT_GT(churn.unmapped_bytes, 0u);
  // The storm's interleaved retained pages must leave the free lists more
  // fragmented than the churn-free twin on the same machine and seed.
  EXPECT_GT(churn.frag_index_pct, calm.frag_index_pct);
  EXPECT_GT(churn.frag_index_pct, 0.0);

  std::filesystem::remove(churn_path);
  std::filesystem::remove(calm_path);
}

// Replay refuses a trace recorded for a different thread count: silently
// remapping threads would destroy the byte-identity contract.
TEST(TraceWorkloadTest, RejectsThreadCountMismatch) {
  const std::string path = TempPath("trace_mismatch.bin");
  trace::TracegenOptions gen;
  gen.topo = Topology::MachineA();  // 24 threads; Tiny has 4
  gen.seed = 1;
  gen.accesses_per_thread = 64;
  gen.epochs = 2;
  gen.profile = "bert";
  trace::GenerateTrace(gen, path);

  const Topology tiny = Topology::Tiny();
  PhysicalMemory phys(tiny);
  ThpState thp;
  AddressSpace space(phys, tiny, thp);
  EXPECT_THROW(TraceWorkload(path, space, tiny.num_cores()), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace numalp
