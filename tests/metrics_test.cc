#include <gtest/gtest.h>

#include "src/metrics/numa_metrics.h"
#include "src/topo/topology.h"
#include "src/vm/thp.h"

namespace numalp {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest() : topo_(Topology::Tiny(256 * kMiB)), phys_(topo_), as_(phys_, topo_, thp_) {}

  IbsSample Sample(Addr va, int core, int req_node, int home_node, bool dram = true) {
    IbsSample s;
    s.va = va;
    s.core = static_cast<std::uint16_t>(core);
    s.req_node = static_cast<std::uint8_t>(req_node);
    s.home_node = static_cast<std::uint8_t>(home_node);
    s.dram = dram;
    return s;
  }

  Topology topo_;
  PhysicalMemory phys_;
  ThpState thp_;
  AddressSpace as_;
};

TEST_F(MetricsTest, AggregateAtMappingGranularity) {
  thp_.alloc_enabled = true;
  const Addr big = as_.MmapAnon(4 * kMiB, {});
  as_.Touch(big, 0);  // 2M page
  std::vector<IbsSample> samples;
  samples.push_back(Sample(big + 100, 0, 0, 0));
  samples.push_back(Sample(big + kBytes4K * 300, 1, 1, 0));
  const PageAggMap pages = AggregateSamples(samples, as_, AggGranularity::kMapping);
  ASSERT_EQ(pages.size(), 1u);  // both land in the one 2M page
  const PageAgg& agg = pages.begin()->second;
  EXPECT_EQ(agg.total, 2u);
  EXPECT_EQ(agg.size, PageSize::k2M);
  EXPECT_EQ(agg.DistinctNodes(), 2);
  EXPECT_EQ(agg.SharerCount(), 2);
}

TEST_F(MetricsTest, AggregateAt4KGranularitySeparates) {
  thp_.alloc_enabled = true;
  const Addr big = as_.MmapAnon(4 * kMiB, {});
  as_.Touch(big, 0);
  std::vector<IbsSample> samples;
  samples.push_back(Sample(big + 100, 0, 0, 0));
  samples.push_back(Sample(big + kBytes4K * 300, 1, 1, 0));
  const PageAggMap pages = AggregateSamples(samples, as_, AggGranularity::k4K);
  EXPECT_EQ(pages.size(), 2u);
  for (const auto& [base, agg] : pages) {
    EXPECT_TRUE(agg.SingleNode());
  }
}

TEST_F(MetricsTest, UnmappedSamplesDropped) {
  std::vector<IbsSample> samples;
  samples.push_back(Sample(0xdead0000, 0, 0, 0));
  EXPECT_TRUE(AggregateSamples(samples, as_, AggGranularity::kMapping).empty());
}

TEST_F(MetricsTest, PamupFindsDominantPage) {
  const Addr base = as_.MmapAnon(kMiB, {});
  as_.Touch(base, 0);
  as_.Touch(base + kBytes4K, 0);
  std::vector<IbsSample> samples;
  for (int i = 0; i < 9; ++i) {
    samples.push_back(Sample(base + 64 * i, 0, 0, 0));
  }
  samples.push_back(Sample(base + kBytes4K, 1, 1, 0));
  const PageAggMap pages = AggregateSamples(samples, as_, AggGranularity::kMapping);
  EXPECT_NEAR(PamupPct(pages), 90.0, 0.1);
  EXPECT_EQ(CountHotPages(pages), 2);  // 90% and 10%, both above 6%
  EXPECT_EQ(CountHotPages(pages, 50.0), 1);
}

TEST_F(MetricsTest, PspCountsSharedPageAccesses) {
  const Addr base = as_.MmapAnon(kMiB, {});
  as_.Touch(base, 0);
  as_.Touch(base + kBytes4K, 0);
  std::vector<IbsSample> samples;
  // Page 0: two cores (shared). Page 1: one core.
  samples.push_back(Sample(base, 0, 0, 0));
  samples.push_back(Sample(base + 64, 1, 1, 0));
  samples.push_back(Sample(base + kBytes4K, 0, 0, 0));
  samples.push_back(Sample(base + kBytes4K + 64, 0, 0, 0));
  const PageAggMap pages = AggregateSamples(samples, as_, AggGranularity::kMapping);
  EXPECT_NEAR(PspPct(pages), 50.0, 0.1);
}

TEST_F(MetricsTest, CachedOnlyPagesExcluded) {
  const Addr base = as_.MmapAnon(kMiB, {});
  as_.Touch(base, 0);
  std::vector<IbsSample> samples;
  samples.push_back(Sample(base, 0, 0, 0, /*dram=*/false));
  const PageAggMap pages = AggregateSamples(samples, as_, AggGranularity::kMapping);
  EXPECT_DOUBLE_EQ(PamupPct(pages), 0.0);
  EXPECT_EQ(CountHotPages(pages), 0);
  EXPECT_DOUBLE_EQ(PspPct(pages), 0.0);
}

TEST_F(MetricsTest, LarFromCounters) {
  EpochCounters counters(2, 2);
  counters.cores[0].dram_local = 30;
  counters.cores[0].dram_remote = 10;
  counters.cores[1].dram_local = 10;
  counters.cores[1].dram_remote = 50;
  EXPECT_DOUBLE_EQ(LarPct(counters), 40.0);
}

TEST_F(MetricsTest, WalkMissFraction) {
  EpochCounters counters(1, 2);
  counters.cores[0].walk_l2_miss = 15;
  counters.cores[0].dram_local = 85;
  EXPECT_NEAR(WalkL2MissFraction(counters), 0.15, 1e-9);
}

TEST_F(MetricsTest, MaxFaultTimeShareTakesMaxCore) {
  EpochCounters counters(2, 2);
  counters.cores[0].fault_cycles = 100;
  counters.cores[1].fault_cycles = 400;
  EXPECT_DOUBLE_EQ(MaxFaultTimeShare(counters, 1000), 0.4);
}

TEST_F(MetricsTest, ControllerImbalanceFromNodeRequests) {
  EpochCounters counters(1, 4);
  counters.node_requests = {100, 100, 100, 100};
  EXPECT_DOUBLE_EQ(ControllerImbalancePct(counters), 0.0);
  counters.node_requests = {400, 0, 0, 0};
  EXPECT_NEAR(ControllerImbalancePct(counters), 173.2, 0.1);
}

TEST_F(MetricsTest, MajorityReqNode) {
  PageAgg agg;
  agg.req_node_counts[0] = 3;
  agg.req_node_counts[1] = 7;
  EXPECT_EQ(agg.MajorityReqNode(), 1);
  EXPECT_FALSE(agg.SingleNode());
  EXPECT_EQ(agg.DistinctNodes(), 2);
}

}  // namespace
}  // namespace numalp
