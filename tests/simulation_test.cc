// End-to-end integration tests: the paper's key mechanisms reproduced on
// reduced configurations (machine A, shortened work budgets).
#include <gtest/gtest.h>

#include "src/core/config.h"
#include "src/core/experiment.h"
#include "src/core/simulation.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace numalp {
namespace {

SimConfig FastSim() {
  SimConfig sim;
  sim.accesses_per_thread_per_epoch = 2048;
  sim.max_epochs = 60;
  return sim;
}

WorkloadSpec ShortSpec(BenchmarkId id, const Topology& topo, std::uint64_t budget) {
  WorkloadSpec spec = MakeWorkloadSpec(id, topo);
  spec.steady_accesses_per_thread = budget;
  return spec;
}

RunResult RunShort(const Topology& topo, BenchmarkId id, PolicyKind kind,
                   std::uint64_t budget = 40'000, std::uint64_t seed = 42) {
  SimConfig sim = FastSim();
  sim.seed = seed;
  Simulation simulation(topo, ShortSpec(id, topo, budget), MakePolicyConfig(kind), sim);
  return simulation.Run();
}

TEST(SimulationTest, RunsToCompletionDeterministically) {
  const Topology topo = Topology::MachineA();
  const RunResult a = RunShort(topo, BenchmarkId::kBT_B, PolicyKind::kLinux4K);
  const RunResult b = RunShort(topo, BenchmarkId::kBT_B, PolicyKind::kLinux4K);
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.totals.accesses, b.totals.accesses);
}

TEST(SimulationTest, DifferentSeedsProduceDifferentRuns) {
  const Topology topo = Topology::MachineA();
  const RunResult a = RunShort(topo, BenchmarkId::kBT_B, PolicyKind::kLinux4K, 40'000, 1);
  const RunResult b = RunShort(topo, BenchmarkId::kBT_B, PolicyKind::kLinux4K, 40'000, 2);
  EXPECT_NE(a.total_cycles, b.total_cycles);
}

TEST(SimulationTest, ThpBacksMemoryWithLargePages) {
  const Topology topo = Topology::MachineA();
  const RunResult linux4k = RunShort(topo, BenchmarkId::kBT_B, PolicyKind::kLinux4K);
  const RunResult thp = RunShort(topo, BenchmarkId::kBT_B, PolicyKind::kThp);
  EXPECT_EQ(linux4k.final_thp_coverage, 0.0);
  EXPECT_GT(thp.final_thp_coverage, 0.8);
}

TEST(SimulationTest, ThpEliminatesWalkMisses) {
  const Topology topo = Topology::MachineA();
  const RunResult linux4k = RunShort(topo, BenchmarkId::kIS_D, PolicyKind::kLinux4K);
  const RunResult thp = RunShort(topo, BenchmarkId::kIS_D, PolicyKind::kThp);
  EXPECT_GT(linux4k.WalkL2MissFrac(), 0.02);
  EXPECT_LT(thp.WalkL2MissFrac(), linux4k.WalkL2MissFrac() / 4);
}

TEST(SimulationTest, ThpReducesFaultCount) {
  const Topology topo = Topology::MachineA();
  const RunResult linux4k = RunShort(topo, BenchmarkId::kWC, PolicyKind::kLinux4K);
  const RunResult thp = RunShort(topo, BenchmarkId::kWC, PolicyKind::kThp);
  EXPECT_GT(linux4k.totals.faults_4k, 100u);
  // 2MB faults replace hundreds of 4KB faults in the THP-eligible regions.
  EXPECT_LT(thp.totals.faults_4k, linux4k.totals.faults_4k);
  EXPECT_GT(thp.totals.faults_2m, 0u);
  // And the fault-handler share of runtime collapses (Table 1's WC row).
  EXPECT_LT(thp.SteadyMaxFaultSharePct() + 1.0, linux4k.SteadyMaxFaultSharePct());
}

TEST(SimulationTest, HotPageEffectAppearsUnderThp) {
  // CG's signature (Table 2): NHP 0 -> 3 and a large imbalance jump.
  const Topology topo = Topology::MachineA();
  const RunResult linux4k = RunShort(topo, BenchmarkId::kCG_D, PolicyKind::kLinux4K);
  const RunResult thp = RunShort(topo, BenchmarkId::kCG_D, PolicyKind::kThp);
  EXPECT_EQ(linux4k.Nhp(), 0);
  EXPECT_GE(thp.Nhp(), 2);
  EXPECT_GT(thp.ImbalancePct(), linux4k.ImbalancePct() + 15.0);
  EXPECT_GT(thp.PamupPct(), linux4k.PamupPct() + 4.0);
}

TEST(SimulationTest, CarrefourLpEliminatesHotPages) {
  const Topology topo = Topology::MachineA();
  const RunResult thp = RunShort(topo, BenchmarkId::kCG_D, PolicyKind::kThp);
  const RunResult lp = RunShort(topo, BenchmarkId::kCG_D, PolicyKind::kCarrefourLp);
  EXPECT_GE(thp.Nhp(), 2);
  EXPECT_EQ(lp.Nhp(), 0);
  EXPECT_GT(lp.total_splits, 0u);
  EXPECT_LT(lp.history.back().metrics.imbalance_pct,
            thp.history.back().metrics.imbalance_pct);
}

TEST(SimulationTest, FalseSharingAppearsUnderThpAndLpRestoresLar) {
  // UA's signature (Tables 2-3): PSP jumps, LAR collapses under THP;
  // Carrefour-LP splits and recovers most of the locality.
  const Topology topo = Topology::MachineA();
  const RunResult linux4k = RunShort(topo, BenchmarkId::kUA_B, PolicyKind::kLinux4K);
  const RunResult thp = RunShort(topo, BenchmarkId::kUA_B, PolicyKind::kThp);
  const RunResult lp = RunShort(topo, BenchmarkId::kUA_B, PolicyKind::kCarrefourLp);
  EXPECT_GT(linux4k.LarPct(), 85.0);
  EXPECT_LT(thp.LarPct(), linux4k.LarPct() - 15.0);
  EXPECT_GT(thp.PspPct(), linux4k.PspPct() + 20.0);
  EXPECT_GT(lp.LarPct(), thp.LarPct() + 10.0);
  EXPECT_GT(lp.total_splits, 0u);
}

TEST(SimulationTest, CarrefourFixesMasterInitializedImbalance) {
  // EP's pre-existing imbalance (Figure 5): present under Linux AND THP,
  // repaired by the Carrefour component.
  const Topology topo = Topology::MachineA();
  const RunResult linux4k =
      RunShort(topo, BenchmarkId::kEP_C, PolicyKind::kLinux4K, /*budget=*/120'000);
  const RunResult lp =
      RunShort(topo, BenchmarkId::kEP_C, PolicyKind::kCarrefourLp, /*budget=*/120'000);
  EXPECT_GT(linux4k.ImbalancePct(), 60.0);
  EXPECT_LT(lp.history.back().metrics.imbalance_pct, 30.0);
  // The rebalance pays off (full-length runs show much larger gains; the
  // shortened test budget amortizes less of the migration cost).
  EXPECT_GT(ImprovementPct(linux4k, lp), 2.0);
}

TEST(SimulationTest, PoliciesReportOverheadAndActions) {
  const Topology topo = Topology::MachineA();
  const RunResult lp = RunShort(topo, BenchmarkId::kCG_D, PolicyKind::kCarrefourLp);
  EXPECT_GT(lp.total_policy_overhead, 0u);
  EXPECT_GT(lp.total_migrations, 0u);
  const RunResult linux4k = RunShort(topo, BenchmarkId::kCG_D, PolicyKind::kLinux4K);
  EXPECT_EQ(linux4k.total_policy_overhead, 0u);
  EXPECT_EQ(linux4k.total_migrations, 0u);
}

TEST(SimulationTest, ConservativeOnlyStartsWithSmallPages) {
  const Topology topo = Topology::MachineA();
  const RunResult conservative =
      RunShort(topo, BenchmarkId::kWC, PolicyKind::kConservativeOnly);
  // The run starts on 4KB pages (so 4KB faults dominate the setup phase) and
  // the component enables THP only after observing fault pressure.
  ASSERT_FALSE(conservative.history.empty());
  const RunResult thp = RunShort(topo, BenchmarkId::kWC, PolicyKind::kThp);
  EXPECT_GT(conservative.totals.faults_4k, thp.totals.faults_4k);
  bool enabled_later = false;
  for (const auto& record : conservative.history) {
    enabled_later = enabled_later || record.thp_alloc_enabled;
  }
  EXPECT_TRUE(enabled_later) << "WC's fault pressure must re-enable 2MB allocation";
}

TEST(SimulationTest, Explicit1GPagesCreateExtremeHotPage) {
  // Section 4.4 on a machine with 1GB frames available.
  const Topology topo = Topology::MachineB(/*memory_scale=*/8);
  SimConfig sim = FastSim();
  WorkloadSpec spec = ShortSpec(BenchmarkId::kStreamcluster, topo, 20'000);
  for (auto& region : spec.regions) {
    region.explicit_page = PageSize::k1G;
  }
  Simulation huge(topo, spec, MakePolicyConfig(PolicyKind::kLinux4K), sim);
  const RunResult result = huge.Run();
  EXPECT_GT(result.totals.faults_1g, 0u);
  EXPECT_GT(result.PamupPct(), 30.0);  // nearly everything in one page
  EXPECT_GT(result.ImbalancePct(), 100.0);
}

TEST(SimulationTest, ImprovementPctIsAntisymmetricAroundBaseline) {
  const Topology topo = Topology::MachineA();
  const RunResult a = RunShort(topo, BenchmarkId::kBT_B, PolicyKind::kLinux4K);
  EXPECT_DOUBLE_EQ(ImprovementPct(a, a), 0.0);
}

TEST(SimulationTest, ComparePoliciesAveragesSeeds) {
  const Topology topo = Topology::Tiny(512 * kMiB);
  SimConfig sim = FastSim();
  const auto summaries = ComparePolicies(topo, BenchmarkId::kBT_B,
                                         {PolicyKind::kLinux4K, PolicyKind::kThp}, sim, 2);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_DOUBLE_EQ(summaries[0].mean_improvement_pct, 0.0);  // baseline vs itself
  EXPECT_GE(summaries[0].max_improvement_pct, summaries[0].min_improvement_pct);
  EXPECT_GT(summaries[1].lar_pct, 0.0);
}

// Every policy kind must run to completion on a tiny machine — a smoke sweep
// across the full policy matrix.
class PolicyMatrixTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyMatrixTest, RunsCleanlyOnTinyMachine) {
  const Topology topo = Topology::Tiny(512 * kMiB);
  SimConfig sim = FastSim();
  Simulation simulation(topo, ShortSpec(BenchmarkId::kUA_B, topo, 30'000),
                        MakePolicyConfig(GetParam()), sim);
  const RunResult result = simulation.Run();
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.total_cycles, 0u);
  EXPECT_GT(result.totals.accesses, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyMatrixTest,
                         ::testing::Values(PolicyKind::kLinux4K, PolicyKind::kThp,
                                           PolicyKind::kCarrefour2M,
                                           PolicyKind::kReactiveOnly,
                                           PolicyKind::kConservativeOnly,
                                           PolicyKind::kCarrefourLp));

// Determinism property across the whole policy matrix.
class PolicyDeterminismTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyDeterminismTest, SameSeedSameCycles) {
  const Topology topo = Topology::Tiny(512 * kMiB);
  SimConfig sim = FastSim();
  const WorkloadSpec spec = ShortSpec(BenchmarkId::kCG_D, topo, 20'000);
  Simulation first(topo, spec, MakePolicyConfig(GetParam()), sim);
  Simulation second(topo, spec, MakePolicyConfig(GetParam()), sim);
  const RunResult a = first.Run();
  const RunResult b = second.Run();
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.total_migrations, b.total_migrations);
  EXPECT_EQ(a.total_splits, b.total_splits);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyDeterminismTest,
                         ::testing::Values(PolicyKind::kLinux4K, PolicyKind::kThp,
                                           PolicyKind::kCarrefour2M,
                                           PolicyKind::kCarrefourLp));

}  // namespace
}  // namespace numalp
