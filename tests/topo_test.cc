#include <gtest/gtest.h>

#include "src/topo/topology.h"

namespace numalp {
namespace {

TEST(TopologyTest, MachineAShape) {
  const Topology topo = Topology::MachineA();
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(topo.num_cores(), 24);
  EXPECT_EQ(topo.node(0).num_cores, 6);
  EXPECT_EQ(topo.name(), "machineA");
}

TEST(TopologyTest, MachineBShape) {
  const Topology topo = Topology::MachineB();
  EXPECT_EQ(topo.num_nodes(), 8);
  EXPECT_EQ(topo.num_cores(), 64);
  EXPECT_EQ(topo.node(0).num_cores, 8);
}

TEST(TopologyTest, MemoryScaleDividesDram) {
  const Topology unscaled = Topology::MachineA(1);
  const Topology scaled = Topology::MachineA(48);
  EXPECT_EQ(unscaled.node(0).dram_bytes, 12 * kGiB);
  EXPECT_EQ(scaled.node(0).dram_bytes, 12 * kGiB / 48);
}

TEST(TopologyTest, HopsDiagonalZeroAndSymmetric) {
  for (const Topology& topo : {Topology::MachineA(), Topology::MachineB()}) {
    for (int i = 0; i < topo.num_nodes(); ++i) {
      EXPECT_EQ(topo.Hops(i, i), 0);
      for (int j = 0; j < topo.num_nodes(); ++j) {
        EXPECT_EQ(topo.Hops(i, j), topo.Hops(j, i));
        if (i != j) {
          EXPECT_GE(topo.Hops(i, j), 1);
        }
      }
    }
  }
}

TEST(TopologyTest, MachineAFullyConnected) {
  const Topology topo = Topology::MachineA();
  EXPECT_EQ(topo.max_hops(), 1);
}

TEST(TopologyTest, MachineBHasTwoHopPairs) {
  const Topology topo = Topology::MachineB();
  EXPECT_EQ(topo.max_hops(), 2);
  // Same-socket pairs are direct.
  EXPECT_EQ(topo.Hops(0, 1), 1);
  EXPECT_EQ(topo.Hops(6, 7), 1);
}

TEST(TopologyTest, CoreToNodeMapping) {
  const Topology topo = Topology::MachineB();
  EXPECT_EQ(topo.NodeOfCore(0), 0);
  EXPECT_EQ(topo.NodeOfCore(7), 0);
  EXPECT_EQ(topo.NodeOfCore(8), 1);
  EXPECT_EQ(topo.NodeOfCore(63), 7);
}

TEST(TopologyTest, TotalDram) {
  const Topology topo = Topology::Tiny(64 * kMiB);
  EXPECT_EQ(topo.total_dram_bytes(), 128 * kMiB);
}

TEST(TopologyTest, NodeInfoFirstCore) {
  const Topology topo = Topology::MachineA();
  EXPECT_EQ(topo.node(2).first_core, 12);
  EXPECT_EQ(topo.node(3).id, 3);
}

}  // namespace
}  // namespace numalp
