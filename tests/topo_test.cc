#include <gtest/gtest.h>

#include "src/topo/topology.h"

namespace numalp {
namespace {

TEST(TopologyTest, MachineAShape) {
  const Topology topo = Topology::MachineA();
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(topo.num_cores(), 24);
  EXPECT_EQ(topo.node(0).num_cores, 6);
  EXPECT_EQ(topo.name(), "machineA");
}

TEST(TopologyTest, MachineBShape) {
  const Topology topo = Topology::MachineB();
  EXPECT_EQ(topo.num_nodes(), 8);
  EXPECT_EQ(topo.num_cores(), 64);
  EXPECT_EQ(topo.node(0).num_cores, 8);
}

TEST(TopologyTest, MemoryScaleDividesDram) {
  const Topology unscaled = Topology::MachineA(1);
  const Topology scaled = Topology::MachineA(48);
  EXPECT_EQ(unscaled.node(0).dram_bytes, 12 * kGiB);
  EXPECT_EQ(scaled.node(0).dram_bytes, 12 * kGiB / 48);
}

TEST(TopologyTest, HopsDiagonalZeroAndSymmetric) {
  for (const Topology& topo : {Topology::MachineA(), Topology::MachineB()}) {
    for (int i = 0; i < topo.num_nodes(); ++i) {
      EXPECT_EQ(topo.Hops(i, i), 0);
      for (int j = 0; j < topo.num_nodes(); ++j) {
        EXPECT_EQ(topo.Hops(i, j), topo.Hops(j, i));
        if (i != j) {
          EXPECT_GE(topo.Hops(i, j), 1);
        }
      }
    }
  }
}

TEST(TopologyTest, MachineAFullyConnected) {
  const Topology topo = Topology::MachineA();
  EXPECT_EQ(topo.max_hops(), 1);
}

TEST(TopologyTest, MachineBHasTwoHopPairs) {
  const Topology topo = Topology::MachineB();
  EXPECT_EQ(topo.max_hops(), 2);
  // Same-socket pairs are direct.
  EXPECT_EQ(topo.Hops(0, 1), 1);
  EXPECT_EQ(topo.Hops(6, 7), 1);
}

TEST(TopologyTest, CoreToNodeMapping) {
  const Topology topo = Topology::MachineB();
  EXPECT_EQ(topo.NodeOfCore(0), 0);
  EXPECT_EQ(topo.NodeOfCore(7), 0);
  EXPECT_EQ(topo.NodeOfCore(8), 1);
  EXPECT_EQ(topo.NodeOfCore(63), 7);
}

TEST(TopologyTest, TotalDram) {
  const Topology topo = Topology::Tiny(64 * kMiB);
  EXPECT_EQ(topo.total_dram_bytes(), 128 * kMiB);
}

TEST(TopologyTest, NodeInfoFirstCore) {
  const Topology topo = Topology::MachineA();
  EXPECT_EQ(topo.node(2).first_core, 12);
  EXPECT_EQ(topo.node(3).id, 3);
}

TEST(TopologyTest, PaperMachinesHaveNoFarMemory) {
  for (const Topology& topo : {Topology::MachineA(), Topology::MachineB()}) {
    EXPECT_FALSE(topo.has_far_memory());
    EXPECT_EQ(topo.num_cpu_nodes(), topo.num_nodes());
    for (int n = 0; n < topo.num_nodes(); ++n) {
      EXPECT_FALSE(topo.IsFarMemory(n));
      EXPECT_EQ(topo.cpu_nodes()[static_cast<std::size_t>(n)], n);
      EXPECT_EQ(topo.node(n).extra_latency, 0u);
    }
  }
}

TEST(TopologyTest, Epyc8Shape) {
  const Topology topo = Topology::Epyc8();
  EXPECT_EQ(topo.name(), "epyc8");
  EXPECT_EQ(topo.num_nodes(), 8);
  EXPECT_EQ(topo.num_cores(), 64);
  EXPECT_EQ(topo.num_cpu_nodes(), 8);
  EXPECT_FALSE(topo.has_far_memory());
  EXPECT_EQ(topo.max_hops(), 2);
  // NPS4: quadrants of one socket are 1 hop, crossing the socket is 2.
  EXPECT_EQ(topo.Hops(0, 3), 1);
  EXPECT_EQ(topo.Hops(4, 7), 1);
  EXPECT_EQ(topo.Hops(0, 4), 2);
  EXPECT_EQ(topo.Hops(3, 7), 2);
  EXPECT_EQ(Topology::Epyc8(1).node(0).dram_bytes, 32 * kGiB);
}

TEST(TopologyTest, Snc16Shape) {
  const Topology topo = Topology::Snc16();
  EXPECT_EQ(topo.name(), "snc16");
  EXPECT_EQ(topo.num_nodes(), 16);
  EXPECT_EQ(topo.num_cores(), 64);
  EXPECT_EQ(topo.num_cpu_nodes(), 16);
  EXPECT_EQ(topo.max_hops(), 3);
  // SNC-4 inside a socket: 1 hop. Cross-socket: 1 + ring distance.
  EXPECT_EQ(topo.Hops(0, 3), 1);
  EXPECT_EQ(topo.Hops(0, 4), 2);   // adjacent socket on the ring
  EXPECT_EQ(topo.Hops(0, 8), 3);   // opposite socket
  EXPECT_EQ(topo.Hops(0, 12), 2);  // adjacent the other way around
  for (int i = 0; i < topo.num_nodes(); ++i) {
    EXPECT_EQ(topo.Hops(i, i), 0);
    for (int j = 0; j < topo.num_nodes(); ++j) {
      EXPECT_EQ(topo.Hops(i, j), topo.Hops(j, i));
    }
  }
}

TEST(TopologyTest, CxlFarMemoryTier) {
  const Topology topo = Topology::Cxl();
  EXPECT_EQ(topo.name(), "cxl");
  EXPECT_EQ(topo.num_nodes(), 10);
  EXPECT_EQ(topo.num_cpu_nodes(), 8);
  EXPECT_TRUE(topo.has_far_memory());
  // The compute complex is epyc8-shaped; the two expanders hang off it.
  for (int n = 0; n < 8; ++n) {
    EXPECT_FALSE(topo.IsFarMemory(n));
    EXPECT_EQ(topo.cpu_nodes()[static_cast<std::size_t>(n)], n);
    EXPECT_EQ(topo.node(n).extra_latency, 0u);
  }
  for (int n = 8; n < 10; ++n) {
    EXPECT_TRUE(topo.IsFarMemory(n));
    EXPECT_EQ(topo.node(n).num_cores, 0);
    EXPECT_GT(topo.node(n).extra_latency, 0u);
    EXPECT_GT(topo.node(n).dram_bytes, topo.node(0).dram_bytes);
    for (int c = 0; c < 8; ++c) {
      EXPECT_EQ(topo.Hops(n, c), 2);
    }
  }
  // All 64 cores live on the CPU nodes; core->node never maps to a far node.
  EXPECT_EQ(topo.num_cores(), 64);
  for (int c = 0; c < topo.num_cores(); ++c) {
    EXPECT_LT(topo.NodeOfCore(c), 8);
  }
}

// CoreOfThread's round-robin pinning (simulation.cc) indexes
// cpu_nodes()[t % n].first_core + t / n; the preset core layout must keep
// first_core contiguous across CPU-bearing nodes for that to cover every
// core exactly once.
TEST(TopologyTest, DatacenterFirstCoreLayoutIsContiguous) {
  for (const Topology& topo :
       {Topology::Epyc8(), Topology::Snc16(), Topology::Cxl()}) {
    int expected_first = 0;
    for (const int n : topo.cpu_nodes()) {
      EXPECT_EQ(topo.node(n).first_core, expected_first) << topo.name();
      expected_first += topo.node(n).num_cores;
    }
    EXPECT_EQ(expected_first, topo.num_cores()) << topo.name();
  }
}

}  // namespace
}  // namespace numalp
