// Property-test battery for the sketch-backed profiling front end
// (DESIGN.md Section 11): the cuckoo fingerprint filter and count-min
// sketch against std::unordered_map oracles — zero false negatives, bounded
// false-positive rate across fill factors, deletion that genuinely reclaims
// slots — and the SampleWindow admission pipeline built on them: sketch
// mode at the default threshold is bit-identical to exact mode (the pinned
// contract), admitted aggregates stay integer-exact at higher thresholds,
// and a deliberately undersized filter degrades gracefully (counted
// admission misses, healed aggregates, no crash) while bounding state on a
// sparse footprint.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/count_sketch.h"
#include "src/common/cuckoo_filter.h"
#include "src/common/rng.h"
#include "src/core/config.h"
#include "src/core/simulation.h"
#include "src/metrics/sample_window.h"
#include "src/topo/topology.h"
#include "src/vm/address_space.h"
#include "src/workloads/spec.h"

namespace numalp {
namespace {

// ---------------------------------------------------------------------------
// CuckooFilter vs a multiset oracle.
// ---------------------------------------------------------------------------

// Successful inserts must never be forgotten (a false negative would make
// the sample window leak a live sample's slot), at any fill factor. False
// positives are allowed but must stay within the fingerprint budget: with
// 16-bit fingerprints and 8 candidate slots per probe the theoretical rate
// is ~8 * 2^-16 ~ 0.012%; the 1% assertion leaves two orders of magnitude
// of slack while still catching a broken hash split (fingerprint and bucket
// index drawing on the same bits aliases everything).
TEST(CuckooFilterTest, ZeroFalseNegativesAndBoundedFalsePositives) {
  Rng rng(271828);
  for (const double fill : {0.25, 0.5, 0.75, 0.95}) {
    const std::size_t capacity = 4096;
    CuckooFilter filter(capacity);
    ASSERT_EQ(filter.slot_count(), capacity);
    std::unordered_map<std::uint64_t, int> oracle;
    const auto target = static_cast<std::size_t>(fill * static_cast<double>(capacity));
    while (filter.size() < target) {
      // Mostly unique keys with some repeats, exercising multiset slots.
      const std::uint64_t key = (rng.Uniform(1u << 20)) * kBytes4K;
      if (filter.Insert(key)) {
        oracle[key] += 1;
      }
    }
    for (const auto& [key, count] : oracle) {
      EXPECT_TRUE(filter.Contains(key)) << "fill " << fill << " key " << std::hex << key;
    }
    int false_positives = 0;
    const int probes = 20000;
    for (int i = 0; i < probes; ++i) {
      // Absent keys live in a disjoint address range.
      const std::uint64_t absent = (1ull << 40) + rng.Uniform(1u << 20) * kBytes4K;
      if (oracle.find(absent) == oracle.end() && filter.Contains(absent)) {
        ++false_positives;
      }
    }
    EXPECT_LE(false_positives, probes / 100) << "fill factor " << fill;
  }
}

// Deletion must hand capacity back: at a fill where inserts start failing,
// erasing keys and re-inserting those same keys always succeeds (each erase
// frees a slot in one of the key's two candidate buckets, so the re-insert
// cannot even need the kick chain). This is the property that lets a
// sliding window run forever without accreting filter state.
TEST(CuckooFilterTest, EraseReclaimsSlotsForReinsertionAtCapacity) {
  CuckooFilter filter(1024);
  Rng rng(31337);
  std::vector<std::uint64_t> resident;
  // Fill until the filter refuses an insert (beyond ~95% load the kick
  // chain stops finding room).
  for (;;) {
    const std::uint64_t key = rng.Uniform(1u << 30) * kBytes4K;
    if (!filter.Insert(key)) {
      // A failed insert rolls its displacement chain back: everything
      // previously resident must still be present.
      break;
    }
    resident.push_back(key);
  }
  const std::size_t full_size = filter.size();
  EXPECT_GE(full_size, filter.slot_count() * 9 / 10);
  for (const std::uint64_t key : resident) {
    ASSERT_TRUE(filter.Contains(key));
  }
  // Erase a batch, then re-insert the same keys at capacity.
  const std::size_t batch = resident.size() / 4;
  for (std::size_t i = 0; i < batch; ++i) {
    ASSERT_TRUE(filter.Erase(resident[i])) << i;
  }
  EXPECT_EQ(filter.size(), full_size - batch);
  for (std::size_t i = 0; i < batch; ++i) {
    ASSERT_TRUE(filter.Insert(resident[i])) << "re-insert after erase must succeed " << i;
  }
  EXPECT_EQ(filter.size(), full_size);
}

TEST(CuckooFilterTest, MultisetOccurrencesEraseOneAtATime) {
  CuckooFilter filter(64);
  const std::uint64_t key = 0x42000;
  EXPECT_TRUE(filter.Insert(key));
  EXPECT_TRUE(filter.Insert(key));
  EXPECT_TRUE(filter.Insert(key));
  EXPECT_EQ(filter.size(), 3u);
  EXPECT_TRUE(filter.Erase(key));
  EXPECT_TRUE(filter.Contains(key));
  EXPECT_TRUE(filter.Erase(key));
  EXPECT_TRUE(filter.Erase(key));
  EXPECT_FALSE(filter.Erase(key));
  EXPECT_FALSE(filter.Contains(key));
  EXPECT_EQ(filter.size(), 0u);
}

TEST(CuckooFilterTest, DisabledDefaultRejectsEverything) {
  CuckooFilter filter;
  EXPECT_FALSE(filter.Insert(0x1000));
  EXPECT_FALSE(filter.Contains(0x1000));
  EXPECT_FALSE(filter.Erase(0x1000));
  EXPECT_EQ(filter.bytes(), 0u);
}

// ---------------------------------------------------------------------------
// CountSketch vs an exact counting oracle.
// ---------------------------------------------------------------------------

// The count-min guarantee the admission gate relies on: estimates never
// undershoot the true count (an undershoot would admit late and break the
// "overestimation only moves toward exact" argument), and overshoot stays
// small at the configured width.
TEST(CountSketchTest, NeverUnderestimatesAndOverestimatesAreBounded) {
  CountSketch sketch(4, 4096);
  std::unordered_map<std::uint64_t, std::int64_t> oracle;
  Rng rng(999);
  for (int i = 0; i < 6000; ++i) {
    const std::uint64_t key = rng.Uniform(2000) * kBytes4K;
    sketch.Add(key, +1);
    oracle[key] += 1;
  }
  std::uint64_t total_error = 0;
  for (const auto& [key, count] : oracle) {
    const std::uint64_t estimate = sketch.Estimate(key);
    ASSERT_GE(estimate, static_cast<std::uint64_t>(count)) << std::hex << key;
    total_error += estimate - static_cast<std::uint64_t>(count);
  }
  // 6000 insertions over 4x4096 cells: the classic epsilon*N bound puts the
  // per-key expected overshoot well under 1; allow an average of 2.
  EXPECT_LE(total_error, 2 * oracle.size());
}

// Reversibility — the reason the sketch uses plain (not conservative)
// updates: decrements must exactly undo increments, so a sliding window
// that retires every sample it pushed returns the sketch to its prior
// state bit for bit.
TEST(CountSketchTest, DecrementsExactlyUndoIncrements) {
  CountSketch sketch(4, 1024);
  Rng rng(777);
  std::vector<std::uint64_t> stable;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t key = rng.Uniform(500) * kBytes4K;
    sketch.Add(key, +1);
    stable.push_back(key);
  }
  std::vector<std::uint64_t> before;
  for (const std::uint64_t key : stable) {
    before.push_back(sketch.Estimate(key));
  }
  // A transient burst of other keys, then its exact inverse.
  std::vector<std::uint64_t> burst;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = (1ull << 32) + rng.Uniform(4000) * kBytes4K;
    sketch.Add(key, +1);
    burst.push_back(key);
  }
  for (const std::uint64_t key : burst) {
    sketch.Add(key, -1);
  }
  for (std::size_t i = 0; i < stable.size(); ++i) {
    EXPECT_EQ(sketch.Estimate(stable[i]), before[i]) << i;
  }
}

TEST(CountSketchTest, DisabledDefaultEstimatesZero) {
  CountSketch sketch;
  EXPECT_FALSE(sketch.enabled());
  sketch.Add(0x1000, +1);  // no-op, must not crash
  EXPECT_EQ(sketch.Estimate(0x1000), 0u);
  EXPECT_EQ(sketch.bytes(), 0u);
}

// ---------------------------------------------------------------------------
// SampleWindow: sketch mode vs the exact-mode oracle.
// ---------------------------------------------------------------------------

class SketchWindowTest : public ::testing::Test {
 protected:
  SketchWindowTest() : topo_(Topology::Tiny(256 * kMiB)), phys_(topo_), as_(phys_, topo_, thp_) {
    VmaOptions opts;
    opts.thp_eligible = false;
    region_ = as_.MmapAnon(8 * kMiB, opts);
    for (Addr offset = 0; offset < 8 * kMiB; offset += kBytes4K) {
      as_.Touch(region_ + offset, static_cast<int>((offset >> kShift4K) % 2));
    }
  }

  IbsSample Sample(Addr va, int core, int req_node, bool dram = true) {
    IbsSample s;
    s.va = va;
    s.core = static_cast<std::uint16_t>(core);
    s.req_node = static_cast<std::uint8_t>(req_node);
    s.home_node = 0;
    s.dram = dram;
    return s;
  }

  std::vector<IbsSample> RandomEpoch(Rng& rng, int count) {
    std::vector<IbsSample> samples;
    samples.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      samples.push_back(Sample(region_ + rng.Uniform(8 * kMiB),
                               static_cast<int>(rng.Uniform(4)),
                               static_cast<int>(rng.Uniform(2)), rng.Uniform(4) != 0));
    }
    return samples;
  }

  static void ExpectEqualAggregates(const PageAggMap& got, const PageAggMap& want) {
    ASSERT_EQ(got.size(), want.size());
    for (const auto& [base, agg] : want) {
      const PageAgg* found = got.Find(base);
      ASSERT_NE(found, nullptr) << "missing page " << std::hex << base;
      EXPECT_EQ(found->total, agg.total) << std::hex << base;
      EXPECT_EQ(found->dram, agg.dram) << std::hex << base;
      EXPECT_EQ(found->core_mask, agg.core_mask) << std::hex << base;
      EXPECT_EQ(found->req_node_counts, agg.req_node_counts) << std::hex << base;
    }
  }

  Topology topo_;
  PhysicalMemory phys_;
  ThpState thp_;
  AddressSpace as_;
  Addr region_ = 0;
};

// The pinned identity contract: at the default admission threshold of 1,
// sketch mode reproduces exact mode bit for bit under random churn across
// the window boundary — and its filter and sketch are never populated,
// which is why even absurd sketch knobs (second pass: an 8-slot filter)
// cannot break the identity.
TEST_F(SketchWindowTest, ThresholdOneIsBitIdenticalToExactUnderChurn) {
  ProfileSketchConfig tiny;
  tiny.filter_capacity = 8;
  tiny.sketch_width = 16;
  for (const ProfileSketchConfig& knobs : {ProfileSketchConfig{}, tiny}) {
    SampleWindow exact(/*max_epochs=*/4);
    SampleWindow sketch(/*max_epochs=*/4, /*reference=*/false, ProfileMode::kSketch, knobs);
    Rng rng(4242);
    for (int epoch = 0; epoch < 24; ++epoch) {
      std::vector<IbsSample> samples = RandomEpoch(rng, 200);
      exact.PushEpoch(samples);
      sketch.PushEpoch(std::move(samples));
      ASSERT_EQ(sketch.distinct_pages(), exact.distinct_pages()) << "epoch " << epoch;
      ExpectEqualAggregates(sketch.FoldToMapping(as_), exact.FoldToMapping(as_));
      EXPECT_EQ(sketch.MajorityReqNodeIn(region_, 8 * kMiB),
                exact.MajorityReqNodeIn(region_, 8 * kMiB));
      EXPECT_EQ(sketch.PieceLocalityPctIn(region_, kBytes2M),
                exact.PieceLocalityPctIn(region_, kBytes2M));
      EXPECT_EQ(sketch.filter_occupancy(), 0u);
      EXPECT_EQ(sketch.admission_misses(), 0u);
      // Pages whose last sample left the window are reported for pruning;
      // anything reported must genuinely be gone from the aggregate.
      for (const Addr retired : sketch.retired_pages()) {
        EXPECT_FALSE(sketch.HasSamplesIn(retired, kBytes4K)) << std::hex << retired;
      }
    }
  }
}

// Above threshold 1 the fold is a *subset* of exact mode's — unadmitted
// pages are missing by design — but every admitted page's aggregate must be
// integer-exact (the reconstruction-scan guarantee), and the filter only
// holds live unadmitted samples, so occupancy is bounded by the window's
// sample budget no matter how long the run is.
TEST_F(SketchWindowTest, AdmittedAggregatesAreExactAtHigherThresholds) {
  ProfileSketchConfig knobs;
  knobs.admit_threshold = 3;
  SampleWindow exact(/*max_epochs=*/6);
  SampleWindow sketch(/*max_epochs=*/6, /*reference=*/false, ProfileMode::kSketch, knobs);
  Rng rng(9001);
  const std::size_t samples_per_epoch = 150;
  for (int epoch = 0; epoch < 40; ++epoch) {
    std::vector<IbsSample> samples = RandomEpoch(rng, static_cast<int>(samples_per_epoch));
    exact.PushEpoch(samples);
    sketch.PushEpoch(std::move(samples));

    const PageAggMap exact_fold = exact.FoldToMapping(as_);
    const PageAggMap sketch_fold = sketch.FoldToMapping(as_);
    ASSERT_LE(sketch_fold.size(), exact_fold.size()) << "epoch " << epoch;
    for (const auto& [base, agg] : sketch_fold) {
      const PageAgg* want = exact_fold.Find(base);
      ASSERT_NE(want, nullptr) << std::hex << base;
      EXPECT_EQ(agg.total, want->total) << std::hex << base;
      EXPECT_EQ(agg.dram, want->dram) << std::hex << base;
      EXPECT_EQ(agg.core_mask, want->core_mask) << std::hex << base;
      EXPECT_EQ(agg.req_node_counts, want->req_node_counts) << std::hex << base;
    }
    // Live unadmitted samples can never exceed the window's sample budget.
    EXPECT_LE(sketch.filter_occupancy(), 6 * samples_per_epoch);
    EXPECT_EQ(sketch.admission_misses(), 0u);
  }
}

// Graceful degradation: a filter sized for a tiny fraction of the sampled
// set must keep working — misses are counted (the exposed counter the
// divergence regression pins), admissions heal by scanning the raw window
// (so a page that does admit is still integer-exact), and nothing crashes
// under the retirement stream's over-delivery.
TEST_F(SketchWindowTest, UndersizedFilterDegradesGracefullyWithCountedMisses) {
  ProfileSketchConfig knobs;
  knobs.admit_threshold = 3;
  // A filter sized for a dozen live samples against ~500 in flight; the
  // sketch stays at its default width so estimates remain honest (a
  // saturated sketch would admit everything and never touch the filter).
  knobs.filter_capacity = 16;
  SampleWindow exact(/*max_epochs=*/4);
  SampleWindow sketch(/*max_epochs=*/4, /*reference=*/false, ProfileMode::kSketch, knobs);
  Rng rng(1212);
  const Addr hot = region_;  // one page sampled every epoch from every core
  for (int epoch = 0; epoch < 30; ++epoch) {
    std::vector<IbsSample> samples = RandomEpoch(rng, 120);
    for (int core = 0; core < 4; ++core) {
      samples.push_back(Sample(hot, core, core % 2));
    }
    exact.PushEpoch(samples);
    sketch.PushEpoch(std::move(samples));
    ASSERT_LE(sketch.filter_occupancy(), 16u);
  }
  EXPECT_GT(sketch.admission_misses(), 0u);
  // The hot page crossed the threshold in epoch 0 and must carry the exact
  // aggregate despite the filter thrash around it.
  const PageAggMap exact_fold = exact.FoldToMapping(as_);
  const PageAggMap sketch_fold = sketch.FoldToMapping(as_);
  const PageAgg* want = exact_fold.Find(hot);
  const PageAgg* got = sketch_fold.Find(hot);
  ASSERT_NE(want, nullptr);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->total, want->total);
  EXPECT_EQ(got->dram, want->dram);
  EXPECT_EQ(got->core_mask, want->core_mask);
  EXPECT_EQ(got->req_node_counts, want->req_node_counts);
}

// Bounded state on a sparse footprint: a stream of mostly-fresh pages (the
// TB-scale-footprint stand-in) with one hot page. Exact mode's aggregate
// grows with every page the window has seen; sketch mode's stays pinned to
// the admitted set plus the fixed filter/sketch budget.
TEST_F(SketchWindowTest, SparseStreamStateIsBoundedByAdmissions) {
  ProfileSketchConfig knobs;
  knobs.admit_threshold = 2;
  knobs.filter_capacity = 4096;
  SampleWindow exact(/*max_epochs=*/8);
  SampleWindow sketch(/*max_epochs=*/8, /*reference=*/false, ProfileMode::kSketch, knobs);
  Rng rng(5150);
  Addr fresh = region_;
  const Addr hot = region_ + 8 * kMiB - kBytes4K;
  for (int epoch = 0; epoch < 32; ++epoch) {
    std::vector<IbsSample> samples;
    // 60 never-repeated cold pages per epoch...
    for (int i = 0; i < 60 && fresh < hot; ++i, fresh += kBytes4K) {
      samples.push_back(Sample(fresh, static_cast<int>(rng.Uniform(4)), 0));
    }
    // ...and a hot page sampled twice (crosses the threshold immediately).
    samples.push_back(Sample(hot, 0, 0));
    samples.push_back(Sample(hot, 1, 1));
    exact.PushEpoch(samples);
    sketch.PushEpoch(std::move(samples));
  }
  // Exact tracks every cold page of the sliding window (~8 x 60); sketch
  // tracks only the hot page exactly, cold samples live in the filter.
  EXPECT_GT(exact.distinct_pages(), 400u);
  EXPECT_LE(sketch.distinct_pages(), 4u);
  EXPECT_LE(sketch.filter_occupancy(), 8u * 61u);
  EXPECT_EQ(sketch.admission_misses(), 0u);
  const PageAggMap sketch_fold = sketch.FoldToMapping(as_);
  const PageAggMap exact_fold = exact.FoldToMapping(as_);
  const PageAgg* got = sketch_fold.Find(hot);
  const PageAgg* want = exact_fold.Find(hot);
  ASSERT_NE(got, nullptr);
  ASSERT_NE(want, nullptr);
  EXPECT_EQ(got->total, want->total);
  EXPECT_EQ(got->req_node_counts, want->req_node_counts);
}

// ---------------------------------------------------------------------------
// End-to-end divergence regression on the synthetic sparse workload.
// ---------------------------------------------------------------------------

// A deliberately undersized filter on the sparse-footprint stressor: the
// run must complete (no assert/UB under the sanitizer jobs), expose its
// realized admission-miss rate through the RunResult counter, and still
// reach the same placement decisions — every unadmittable page is strictly
// local and below Carrefour's per-page floor, so dropping it is invisible
// (the argument DESIGN.md Section 11 makes for the profile-sweep bench).
TEST(SparseFootprintDivergenceTest, UndersizedFilterDegradesGracefully) {
  const Topology topo = Topology::Tiny(256 * kMiB);
  WorkloadSpec spec = MakeWorkloadSpec(BenchmarkId::kSparseFootprint, topo);
  spec.steady_accesses_per_thread = 16'000;
  SimConfig sim;
  sim.accesses_per_thread_per_epoch = 1024;
  sim.max_epochs = 48;  // setup first-touches ~8K pages/thread before steady
  sim.ibs_interval = 32;

  Simulation exact(topo, spec, MakePolicyConfig(PolicyKind::kCarrefour2M), sim);
  const RunResult exact_result = exact.Run();
  ASSERT_TRUE(exact_result.completed);
  EXPECT_EQ(exact_result.profile_admission_misses, 0u);

  SimConfig sketch_sim = sim;
  sketch_sim.profile_mode = ProfileMode::kSketch;
  sketch_sim.profile_sketch.admit_threshold = 2;
  sketch_sim.profile_sketch.filter_capacity = 64;
  sketch_sim.profile_sketch.sketch_width = 64;
  Simulation sketch(topo, spec, MakePolicyConfig(PolicyKind::kCarrefour2M), sketch_sim);
  const RunResult sketch_result = sketch.Run();

  ASSERT_TRUE(sketch_result.completed);
  EXPECT_GT(sketch_result.profile_admission_misses, 0u);
  EXPECT_EQ(sketch_result.total_migrations, exact_result.total_migrations);
  EXPECT_EQ(sketch_result.total_splits, exact_result.total_splits);
  EXPECT_EQ(sketch_result.total_promotions, exact_result.total_promotions);
  EXPECT_EQ(sketch_result.measured_cycles, exact_result.measured_cycles);
  EXPECT_LT(sketch_result.profile_peak_entries, exact_result.profile_peak_entries);
}

}  // namespace
}  // namespace numalp
