// Correctness of the hot-path performance structures: the flat map against
// std::unordered_map, the incremental sample window against full
// re-aggregation (across splits / promotions / migrations and the window
// boundary), ranged TLB shootdowns against per-page loops, the pooled page
// table, the translate cache, and fast-vs-reference engine bit-identity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/rng.h"
#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/core/simulation.h"
#include "src/hw/tlb.h"
#include "src/metrics/numa_metrics.h"
#include "src/metrics/sample_window.h"
#include "src/topo/topology.h"
#include "src/vm/address_space.h"
#include "src/workloads/spec.h"

namespace numalp {
namespace {

VmaOptions MakeNoThpOpts() {
  VmaOptions opts;
  opts.thp_eligible = false;
  return opts;
}

// ---------------------------------------------------------------------------
// FlatMap vs std::unordered_map golden equivalence.
// ---------------------------------------------------------------------------

TEST(FlatMapTest, MirrorsUnorderedMapUnderRandomChurn) {
  FlatMap<Addr, std::uint64_t> flat;
  std::unordered_map<Addr, std::uint64_t> reference;
  Rng rng(7);
  for (int op = 0; op < 20000; ++op) {
    const Addr key = rng.Uniform(512) * kBytes4K;  // heavy collisions
    switch (rng.Uniform(4)) {
      case 0:
      case 1:
        flat[key] += op;
        reference[key] += static_cast<std::uint64_t>(op);
        break;
      case 2: {
        const bool flat_erased = flat.Erase(key);
        const bool ref_erased = reference.erase(key) > 0;
        EXPECT_EQ(flat_erased, ref_erased);
        break;
      }
      default: {
        const std::uint64_t* found = flat.Find(key);
        const auto it = reference.find(key);
        ASSERT_EQ(found != nullptr, it != reference.end());
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
      }
    }
  }
  ASSERT_EQ(flat.size(), reference.size());
  for (const auto& [key, value] : flat) {
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(value, it->second);
  }
}

TEST(FlatMapTest, IterationOrderIsInsertionOrderWithoutErase) {
  FlatMap<Addr, int> map;
  const std::vector<Addr> keys = {0x9000, 0x1000, 0x5000, 0x3000};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    map[keys[i]] = static_cast<int>(i);
  }
  std::size_t at = 0;
  for (const auto& [key, value] : map) {
    EXPECT_EQ(key, keys[at]);
    EXPECT_EQ(value, static_cast<int>(at));
    ++at;
  }
}

TEST(FlatSetTest, InsertEraseContains) {
  FlatSet<Addr> set;
  EXPECT_TRUE(set.Insert(42));
  EXPECT_FALSE(set.Insert(42));
  EXPECT_TRUE(set.Contains(42));
  EXPECT_TRUE(set.Erase(42));
  EXPECT_FALSE(set.Erase(42));
  EXPECT_TRUE(set.empty());
}

// Order-sensitive consumers iterate through ForEachPageSorted: equal
// contents must give one canonical visit sequence whatever the build
// history (this is the portability contract of DESIGN.md Section 7).
TEST(FlatMapTest, SortedIterationIsCanonicalAcrossHistories) {
  PageAggMap a;
  PageAggMap b;
  const std::vector<Addr> keys = {0x7000, 0x2000, 0x9000, 0x4000, 0x1000};
  for (const Addr key : keys) {
    a[key].total = key;
  }
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    b[*it].total = *it;
  }
  b[0xdead000].total = 1;  // erase churn perturbs b's dense order
  b.Erase(0xdead000);
  std::vector<Addr> visited_a;
  std::vector<Addr> visited_b;
  ForEachPageSorted(a, [&](Addr key, const PageAgg&) { visited_a.push_back(key); });
  ForEachPageSorted(b, [&](Addr key, const PageAgg&) { visited_b.push_back(key); });
  EXPECT_EQ(visited_a, visited_b);
  EXPECT_TRUE(std::is_sorted(visited_a.begin(), visited_a.end()));
}

// ---------------------------------------------------------------------------
// Incremental window vs full re-aggregation.
// ---------------------------------------------------------------------------

class SampleWindowTest : public ::testing::Test {
 protected:
  SampleWindowTest() : topo_(Topology::Tiny(256 * kMiB)), phys_(topo_), as_(phys_, topo_, thp_) {}

  IbsSample Sample(Addr va, int core, int req_node, bool dram = true) {
    IbsSample s;
    s.va = va;
    s.core = static_cast<std::uint16_t>(core);
    s.req_node = static_cast<std::uint8_t>(req_node);
    s.home_node = 0;
    s.dram = dram;
    return s;
  }

  static void ExpectEqualAggregates(const PageAggMap& got, const PageAggMap& want) {
    ASSERT_EQ(got.size(), want.size());
    for (const auto& [base, agg] : want) {
      const PageAgg* found = got.Find(base);
      ASSERT_NE(found, nullptr) << "missing page " << std::hex << base;
      EXPECT_EQ(found->total, agg.total) << std::hex << base;
      EXPECT_EQ(found->dram, agg.dram) << std::hex << base;
      EXPECT_EQ(found->core_mask, agg.core_mask) << std::hex << base;
      EXPECT_EQ(found->home_node, agg.home_node) << std::hex << base;
      EXPECT_EQ(found->size, agg.size) << std::hex << base;
      EXPECT_EQ(found->req_node_counts, agg.req_node_counts) << std::hex << base;
    }
  }

  Topology topo_;
  PhysicalMemory phys_;
  ThpState thp_;
  AddressSpace as_;
};

TEST_F(SampleWindowTest, IncrementalMatchesReferenceAcrossMappingChurn) {
  thp_.alloc_enabled = true;
  const Addr big = as_.MmapAnon(8 * kMiB, {});
  for (Addr offset = 0; offset < 8 * kMiB; offset += kBytes2M) {
    as_.Touch(big + offset, 0);  // four 2M pages
  }
  const Addr small = as_.MmapAnon(kMiB, MakeNoThpOpts());
  for (Addr offset = 0; offset < kMiB; offset += kBytes4K) {
    as_.Touch(small + offset, static_cast<int>((offset >> kShift4K) % 2));
  }

  SampleWindow fast(/*max_epochs=*/4);
  SampleWindow reference(/*max_epochs=*/4, /*reference=*/true);
  Rng rng(99);
  for (int epoch = 0; epoch < 12; ++epoch) {
    std::vector<IbsSample> samples;
    for (int i = 0; i < 200; ++i) {
      const bool in_big = rng.Uniform(3) != 0;
      const Addr va = in_big ? big + rng.Uniform(8 * kMiB) : small + rng.Uniform(kMiB);
      samples.push_back(Sample(va, static_cast<int>(rng.Uniform(4)),
                               static_cast<int>(rng.Uniform(2)), rng.Uniform(4) != 0));
    }
    fast.PushEpoch(samples);
    reference.PushEpoch(samples);

    // Mutate mappings the way the policies do: the incremental aggregate
    // must track re-bucketing (split), merging (promote) and home changes
    // (migrate) without touching the window itself.
    if (epoch == 2) {
      ASSERT_TRUE(as_.SplitLargePage(big).has_value());
    }
    if (epoch == 4) {
      as_.MigratePage(big + 2 * kBytes2M, 1);
      as_.MigratePage(small, 1);
    }
    if (epoch == 6) {
      ASSERT_TRUE(as_.PromoteWindow(big, 1).has_value());
    }
    if (epoch == 8) {
      as_.MigratePage(big + kBytes4K * 3, 0);  // no-op unless still 4K-mapped
    }

    ExpectEqualAggregates(fast.FoldToMapping(as_), reference.FoldToMapping(as_));
    EXPECT_EQ(fast.epochs(), reference.epochs());
  }
}

// The satellite regression: retiring the oldest epoch at the window
// boundary (the seed's erase(begin())) must leave exactly the last
// `max_epochs` epochs aggregated — counts and sharer masks both.
TEST_F(SampleWindowTest, WindowBoundaryRetiresOldestEpoch) {
  const Addr base = as_.MmapAnon(kMiB, MakeNoThpOpts());
  as_.Touch(base, 0);
  as_.Touch(base + kBytes4K, 0);

  SampleWindow window(/*max_epochs=*/3);
  // Epoch 0 is the only epoch where core 7 touches page 0.
  window.PushEpoch({Sample(base, /*core=*/7, 0), Sample(base + kBytes4K, 1, 1)});
  window.PushEpoch({Sample(base, 0, 0)});
  window.PushEpoch({Sample(base, 1, 0)});
  {
    const PageAggMap folded = window.FoldToMapping(as_);
    const PageAgg* page0 = folded.Find(base);
    ASSERT_NE(page0, nullptr);
    EXPECT_EQ(page0->total, 3u);
    EXPECT_EQ(page0->core_mask, (1ull << 7) | (1ull << 0) | (1ull << 1));
    EXPECT_NE(folded.Find(base + kBytes4K), nullptr);
  }
  // Fourth push: epoch 0 retires; core 7's bit and page 1 must vanish.
  window.PushEpoch({Sample(base, 0, 0)});
  const PageAggMap folded = window.FoldToMapping(as_);
  EXPECT_EQ(window.epochs(), 3u);
  const PageAgg* page0 = folded.Find(base);
  ASSERT_NE(page0, nullptr);
  EXPECT_EQ(page0->total, 3u);
  EXPECT_EQ(page0->core_mask, (1ull << 0) | (1ull << 1));
  EXPECT_EQ(folded.Find(base + kBytes4K), nullptr);
  EXPECT_EQ(window.distinct_pages(), 1u);
}

// ---------------------------------------------------------------------------
// Vectorized TLB vs the scalar reference engine: lookups, O(1) victim
// selection and live-entry bookkeeping must be bit-identical under churn.
// ---------------------------------------------------------------------------

// Drives both engines through an identical operation stream — lookups with
// refill (the engine's miss->insert pattern), precise and ranged
// invalidations, flushes — and pins every observable: hit levels, payloads,
// and the live counters that drive probe-skip decisions. Eviction choices
// are covered transitively: a divergent victim would surface as a divergent
// hit/miss within a few operations on these small arrays.
TEST(TlbEngineIdentityTest, FastMatchesReferenceUnderChurn) {
  const TlbConfig config;
  Tlb fast(config, /*reference=*/false);
  Tlb reference(config, /*reference=*/true);
  Rng rng(1234);
  // A working set far larger than the arrays, mixing page sizes, so sets
  // stay full and the LRU victim path runs constantly.
  const auto random_va = [&](PageSize& size) {
    const std::uint64_t kind = rng.Uniform(8);
    if (kind < 5) {
      size = PageSize::k4K;
      return (0x40000000ull + rng.Uniform(4096) * kBytes4K) + rng.Uniform(64) * 64;
    }
    if (kind < 7) {
      size = PageSize::k2M;
      return (0x80000000ull + rng.Uniform(128) * kBytes2M) + rng.Uniform(512) * 4096;
    }
    size = PageSize::k1G;
    return (0x100000000ull + rng.Uniform(16) * kBytes1G) + rng.Uniform(1024) * 4096;
  };
  for (int op = 0; op < 200000; ++op) {
    const std::uint64_t action = rng.Uniform(100);
    if (action < 90) {
      PageSize size = PageSize::k4K;
      const Addr va = random_va(size);
      const TlbLookup a = fast.Lookup(va);
      const TlbLookup b = reference.Lookup(va);
      ASSERT_EQ(a.level, b.level) << "op " << op << " va " << std::hex << va;
      if (a.level != TlbHitLevel::kMiss) {
        ASSERT_EQ(a.pfn, b.pfn) << "op " << op;
        ASSERT_EQ(a.node, b.node) << "op " << op;
        ASSERT_EQ(a.size, b.size) << "op " << op;
      } else {
        // Miss -> walk -> insert, as the engine does.
        const Addr page = AlignDown(va, BytesOf(size));
        const Pfn pfn = page >> kShift4K;
        const int node = static_cast<int>(rng.Uniform(4));
        fast.Insert(page, size, pfn, node);
        reference.Insert(page, size, pfn, node);
      }
    } else if (action < 95) {
      PageSize size = PageSize::k4K;
      const Addr va = random_va(size);
      const Addr page = AlignDown(va, BytesOf(size));
      fast.InvalidatePage(page, size);
      reference.InvalidatePage(page, size);
    } else if (action < 99) {
      const Addr base = 0x40000000ull + rng.Uniform(8) * kBytes2M;
      fast.InvalidateRange(base, kBytes2M);
      reference.InvalidateRange(base, kBytes2M);
    } else {
      fast.FlushAll();
      reference.FlushAll();
    }
    ASSERT_EQ(fast.DebugOccupancy(), reference.DebugOccupancy()) << "op " << op;
  }
  EXPECT_EQ(fast.lookups(), reference.lookups());
}

// The live-entry audit regression: invalidations (precise and ranged) must
// retire exactly the entries they hit from the probe-skip counters, in both
// engines — a stale count would make Lookup skip (or probe) an array the
// other engine does not, which the churn test above would surface as a
// divergent hit. This pins the counters directly on a hand-built sequence.
TEST(TlbEngineIdentityTest, LiveCountersRetireAcrossInvalidatePaths) {
  for (const bool reference : {false, true}) {
    const TlbConfig config;
    Tlb tlb(config, reference);
    tlb.Insert(0x40000000, PageSize::k4K, 1, 0);
    tlb.Insert(0x40001000, PageSize::k4K, 2, 1);
    tlb.Insert(0x80000000, PageSize::k2M, 3, 0);
    TlbOccupancy occ = tlb.DebugOccupancy();
    EXPECT_EQ(occ.live_4k, 2u) << "reference=" << reference;
    EXPECT_EQ(occ.live_2m, 1u);
    EXPECT_EQ(occ.l2_parity_4k, 2u);
    EXPECT_EQ(occ.l2_parity_2m, 1u);
    tlb.InvalidatePage(0x40000000, PageSize::k4K);
    occ = tlb.DebugOccupancy();
    EXPECT_EQ(occ.live_4k, 1u);
    EXPECT_EQ(occ.l2_parity_4k, 1u);
    // Ranged shootdown across the remaining 4K entry and the 2M page.
    tlb.InvalidateRange(0x40000000, kBytes2M);
    tlb.InvalidateRange(0x80000000, kBytes2M);
    occ = tlb.DebugOccupancy();
    EXPECT_EQ(occ.live_4k, 0u);
    EXPECT_EQ(occ.live_2m, 0u);
    EXPECT_EQ(occ.l2_parity_4k, 0u);
    EXPECT_EQ(occ.l2_parity_2m, 0u);
    // Re-insert after total invalidation: counters must come back exact.
    tlb.Insert(0x40000000, PageSize::k4K, 1, 0);
    EXPECT_EQ(tlb.DebugOccupancy().live_4k, 1u);
    tlb.FlushAll();
    EXPECT_EQ(tlb.DebugOccupancy(), TlbOccupancy{});
  }
}

// ---------------------------------------------------------------------------
// Batched access generation vs the per-call reference generator.
// ---------------------------------------------------------------------------

// Every workload pattern (uniform, zipf with and without block shuffle, hot
// chunks, partitioned, sequential, incremental) plus the setup and barrier
// phases must emit byte-identical access streams from the run-batched
// generator and the seed's one-call-per-access generator.
TEST(BatchedGenerationTest, MatchesReferenceAcrossSuite) {
  const Topology topo = Topology::MachineA();
  for (const BenchmarkId id : {BenchmarkId::kCG_D, BenchmarkId::kUA_B, BenchmarkId::kSSCA,
                               BenchmarkId::kWrmem, BenchmarkId::kSPECjbb,
                               BenchmarkId::kLU_B}) {
    const WorkloadSpec spec = MakeWorkloadSpec(id, topo);
    PhysicalMemory phys_fast(topo);
    ThpState thp_fast;
    AddressSpace as_fast(phys_fast, topo, thp_fast);
    Workload fast(spec, as_fast, topo.num_cores(), 99, /*batched_generation=*/true);
    PhysicalMemory phys_ref(topo);
    ThpState thp_ref;
    AddressSpace as_ref(phys_ref, topo, thp_ref);
    Workload reference(spec, as_ref, topo.num_cores(), 99, /*batched_generation=*/false);

    std::vector<WorkloadAccess> batch_fast;
    std::vector<WorkloadAccess> batch_ref;
    for (int epoch = 0; epoch < 12; ++epoch) {
      fast.BeginEpoch();
      reference.BeginEpoch();
      for (int t = 0; t < topo.num_cores(); ++t) {
        fast.FillBatch(t, 512, batch_fast);
        reference.FillBatch(t, 512, batch_ref);
        ASSERT_EQ(batch_fast.size(), batch_ref.size());
        for (std::size_t i = 0; i < batch_fast.size(); ++i) {
          ASSERT_EQ(batch_fast[i].va, batch_ref[i].va)
              << NameOf(id) << " epoch " << epoch << " thread " << t << " access " << i;
          ASSERT_EQ(batch_fast[i].region, batch_ref[i].region);
          ASSERT_EQ(batch_fast[i].write, batch_ref[i].write);
        }
      }
      ASSERT_EQ(fast.SetupDone(), reference.SetupDone());
    }
  }
}

// ---------------------------------------------------------------------------
// Ranged TLB shootdown vs the per-page loop it replaces.
// ---------------------------------------------------------------------------

TEST(TlbRangeTest, InvalidateRangeMatchesPerPageLoop) {
  const TlbConfig config;
  Tlb ranged(config);
  Tlb per_page(config);
  const Addr window = 0x40000000;  // 2M-aligned
  // Populate both TLBs identically: the window's 512 4K translations plus
  // neighbors on both sides and an unrelated 2M entry.
  const auto fill = [&](Tlb& tlb) {
    for (Addr p = window - 4 * kBytes4K; p < window + kBytes2M + 4 * kBytes4K;
         p += kBytes4K) {
      tlb.Insert(p, PageSize::k4K, p >> kShift4K, 0);
    }
    tlb.Insert(window + 8 * kBytes2M, PageSize::k2M, 12345, 1);
  };
  fill(ranged);
  fill(per_page);
  ranged.InvalidateRange(window, kBytes2M);
  for (Addr p = window; p < window + kBytes2M; p += kBytes4K) {
    per_page.InvalidatePage(p, PageSize::k4K);
  }
  // Probe both with the same sequence; every lookup must agree.
  for (Addr p = window - 4 * kBytes4K; p < window + kBytes2M + 4 * kBytes4K;
       p += kBytes4K) {
    const TlbLookup a = ranged.Lookup(p);
    const TlbLookup b = per_page.Lookup(p);
    EXPECT_EQ(a.level, b.level) << std::hex << p;
    if (a.level != TlbHitLevel::kMiss) {
      EXPECT_EQ(a.pfn, b.pfn);
    }
  }
  EXPECT_EQ(ranged.Lookup(window + 8 * kBytes2M).level,
            per_page.Lookup(window + 8 * kBytes2M).level);
}

// ---------------------------------------------------------------------------
// Pooled page table and translate cache.
// ---------------------------------------------------------------------------

TEST(PageTablePoolTest, SplitPromoteChurnReusesPoolSlots) {
  const Topology topo = Topology::Tiny(256 * kMiB);
  PhysicalMemory phys(topo);
  ThpState thp;
  thp.alloc_enabled = true;
  AddressSpace as(phys, topo, thp);
  const Addr base = as.MmapAnon(4 * kMiB, {});
  as.Touch(base, 0);
  const std::uint64_t tables_before = as.page_table().num_tables();
  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(as.SplitLargePage(base).has_value());
    ASSERT_TRUE(as.PromoteWindow(base, 0).has_value());
  }
  // Every split's PT came from (and went back to) the pool free list: no
  // net growth in live tables, and capacity stopped growing after round 1.
  EXPECT_EQ(as.page_table().num_tables(), tables_before);
  EXPECT_GE(as.page_table().pool_free(), 1u);
  EXPECT_LE(as.page_table().pool_capacity(), tables_before + 2);
}

TEST(TranslateCacheTest, CacheHitsAreInvalidatedByMutations) {
  const Topology topo = Topology::Tiny(256 * kMiB);
  PhysicalMemory phys(topo);
  ThpState thp;
  AddressSpace as(phys, topo, thp);
  const Addr base = as.MmapAnon(kMiB, MakeNoThpOpts());
  as.Touch(base, 0);
  AddressSpace::TranslationCache cache;
  const auto first = as.Translate(base + 100, cache);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->node, 0);
  // Cached repeat: same mapping.
  const auto repeat = as.Translate(base + 200, cache);
  ASSERT_TRUE(repeat.has_value());
  EXPECT_EQ(repeat->pfn, first->pfn);
  // A migration must invalidate the cached line, not serve the stale node.
  ASSERT_TRUE(as.MigratePage(base, 1).has_value());
  const auto after = as.Translate(base + 100, cache);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->node, 1);
  EXPECT_EQ(after->node, as.Translate(base + 100)->node);
}

// ---------------------------------------------------------------------------
// Whole-engine bit-identity: fast vs reference pipeline.
// ---------------------------------------------------------------------------

void ExpectIdenticalRuns(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.measured_cycles, b.measured_cycles);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.total_migrations, b.total_migrations);
  EXPECT_EQ(a.total_splits, b.total_splits);
  EXPECT_EQ(a.total_promotions, b.total_promotions);
  EXPECT_EQ(a.total_policy_overhead, b.total_policy_overhead);
  EXPECT_EQ(a.totals.accesses, b.totals.accesses);
  EXPECT_EQ(a.totals.dram_local, b.totals.dram_local);
  EXPECT_EQ(a.totals.dram_remote, b.totals.dram_remote);
  EXPECT_EQ(a.totals.walk_l2_miss, b.totals.walk_l2_miss);
  EXPECT_EQ(a.node_request_totals, b.node_request_totals);
  EXPECT_EQ(a.final_thp_coverage, b.final_thp_coverage);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_EQ(a.history[e].wall, b.history[e].wall) << "epoch " << e;
    EXPECT_EQ(a.history[e].migrations, b.history[e].migrations) << "epoch " << e;
    EXPECT_EQ(a.history[e].splits, b.history[e].splits) << "epoch " << e;
    EXPECT_EQ(a.history[e].promotions, b.history[e].promotions) << "epoch " << e;
    EXPECT_EQ(a.history[e].metrics.lar_pct, b.history[e].metrics.lar_pct) << "epoch " << e;
    EXPECT_EQ(a.history[e].est_split_lar, b.history[e].est_split_lar) << "epoch " << e;
  }
  // Cumulative page aggregates (drives PAMUP/NHP/PSP reporting).
  ASSERT_EQ(a.cumulative_pages.size(), b.cumulative_pages.size());
  EXPECT_EQ(a.PamupPct(), b.PamupPct());
  EXPECT_EQ(a.Nhp(), b.Nhp());
  EXPECT_EQ(a.PspPct(), b.PspPct());
}

TEST(EngineIdentityTest, FastAndReferencePipelinesAreBitIdentical) {
  const Topology topo = Topology::MachineA();
  // CG.D drives the hot-page path (splits + interleave + promotions); UA.B
  // drives the false-sharing path (shared demotions, split-time placement
  // from the window's 4KB aggregates, hinting-fault migration, and the
  // batched migration accounting).
  for (const BenchmarkId bench : {BenchmarkId::kCG_D, BenchmarkId::kUA_B}) {
    for (const PolicyKind kind :
         {PolicyKind::kThp, PolicyKind::kCarrefour2M, PolicyKind::kCarrefourLp,
          PolicyKind::kConservativeOnly}) {
      SimConfig sim;
      sim.accesses_per_thread_per_epoch = 1024;
      sim.max_epochs = 25;
      WorkloadSpec spec = MakeWorkloadSpec(bench, topo);
      spec.steady_accesses_per_thread = 16'000;

      Simulation fast(topo, spec, MakePolicyConfig(kind), sim);
      const RunResult fast_result = fast.Run();
      sim.reference_pipeline = true;
      Simulation reference(topo, spec, MakePolicyConfig(kind), sim);
      const RunResult reference_result = reference.Run();
      ExpectIdenticalRuns(fast_result, reference_result);
    }
  }
}

// Sketch profile mode at the default admission threshold must reproduce
// exact mode bit for bit on every decision-bearing surface (DESIGN.md
// Section 11's identity argument: the epoch presketch admits every page on
// its first sample, so the exact aggregate sees the identical sample stream
// and the filter/sketch are never consulted). Same cells as the engine
// identity matrix — CG.D's hot-page churn and UA.B's demotion/hinting path —
// plus absurdly small sketch knobs on a second pass, which must not matter
// at threshold 1.
TEST(EngineIdentityTest, SketchProfileModeIsBitIdentical) {
  const Topology topo = Topology::MachineA();
  for (const BenchmarkId bench : {BenchmarkId::kCG_D, BenchmarkId::kUA_B}) {
    for (const PolicyKind kind :
         {PolicyKind::kThp, PolicyKind::kCarrefour2M, PolicyKind::kCarrefourLp,
          PolicyKind::kConservativeOnly}) {
      SimConfig sim;
      sim.accesses_per_thread_per_epoch = 1024;
      sim.max_epochs = 25;
      WorkloadSpec spec = MakeWorkloadSpec(bench, topo);
      spec.steady_accesses_per_thread = 16'000;

      Simulation exact(topo, spec, MakePolicyConfig(kind), sim);
      const RunResult exact_result = exact.Run();

      SimConfig sketch_sim = sim;
      sketch_sim.profile_mode = ProfileMode::kSketch;
      Simulation sketch(topo, spec, MakePolicyConfig(kind), sketch_sim);
      ExpectIdenticalRuns(exact_result, sketch.Run());

      SimConfig tiny_sim = sketch_sim;
      tiny_sim.profile_sketch.filter_capacity = 16;
      tiny_sim.profile_sketch.sketch_width = 16;
      Simulation tiny(topo, spec, MakePolicyConfig(kind), tiny_sim);
      ExpectIdenticalRuns(exact_result, tiny.Run());
    }
  }
}

// The acceptance-criteria regression for the sharded engine (DESIGN.md
// Section 10): every shard count must reproduce the serial engine bit for
// bit, on both the hot-page driver (CG.D) and the UA.B path whose
// migrate-on-touch marks exercise the speculation abort. shards_force
// bypasses the oversubscription clamp so real worker threads run even on a
// saturated (or single-core) test host.
TEST(EngineIdentityTest, ShardCountsAreBitIdentical) {
  const Topology topo = Topology::MachineA();
  for (const BenchmarkId bench : {BenchmarkId::kCG_D, BenchmarkId::kUA_B}) {
    for (const PolicyKind kind : {PolicyKind::kThp, PolicyKind::kCarrefourLp}) {
      SimConfig sim;
      sim.accesses_per_thread_per_epoch = 1024;
      sim.max_epochs = 25;
      WorkloadSpec spec = MakeWorkloadSpec(bench, topo);
      spec.steady_accesses_per_thread = 16'000;

      Simulation serial(topo, spec, MakePolicyConfig(kind), sim);
      const RunResult serial_result = serial.Run();
      for (const int shards : {2, 4, 8}) {
        SimConfig sharded_sim = sim;
        sharded_sim.shards = shards;
        sharded_sim.shards_force = true;
        Simulation sharded(topo, spec, MakePolicyConfig(kind), sharded_sim);
        EXPECT_EQ(sharded.shard_count(), shards);
        ExpectIdenticalRuns(serial_result, sharded.Run());
      }
    }
  }
}

// Datacenter machines and explicitly-1GB-backed workloads ride the same
// identity invariants as the paper machines (DESIGN.md Section 13.2's
// argument: on all-CPU machines the cpu-node refactor is the identity, and
// on far-memory machines every policy draw still happens at the same serial
// sites). Each cell is pinned across all three axes at once: engine
// (fast vs reference), shards (1 vs forced 4), and profile mode
// (exact vs sketch).
TEST(EngineIdentityTest, DatacenterAndOneGigCellsAreBitIdentical) {
  struct Cell {
    Topology topo;
    BenchmarkId bench;
    bool one_gig;
  };
  const std::vector<Cell> cells = {
      {Topology::Epyc8(), BenchmarkId::kCG_D, false},
      {Topology::Snc16(), BenchmarkId::kUA_B, false},
      {Topology::Cxl(), BenchmarkId::kCG_D, false},
      // The vlp_1gb configuration: machine B at memory scale 8 so a node
      // holds several 1GB frames, every region explicitly 1GB-backed.
      {Topology::MachineB(/*memory_scale=*/8), BenchmarkId::kSSCA, true},
  };
  for (const Cell& cell : cells) {
    SimConfig sim;
    sim.accesses_per_thread_per_epoch = 1024;
    sim.max_epochs = 25;
    WorkloadSpec spec = MakeWorkloadSpec(cell.bench, cell.topo);
    spec.steady_accesses_per_thread = 16'000;
    if (cell.one_gig) {
      for (auto& region : spec.regions) {
        region.explicit_page = PageSize::k1G;
      }
    }
    const PolicyConfig policy = MakePolicyConfig(PolicyKind::kCarrefourLp);

    Simulation golden(cell.topo, spec, policy, sim);
    const RunResult golden_result = golden.Run();

    SimConfig ref_sim = sim;
    ref_sim.reference_pipeline = true;
    Simulation reference(cell.topo, spec, policy, ref_sim);
    ExpectIdenticalRuns(golden_result, reference.Run());

    SimConfig shard_sim = sim;
    shard_sim.shards = 4;
    shard_sim.shards_force = true;
    Simulation sharded(cell.topo, spec, policy, shard_sim);
    EXPECT_EQ(sharded.shard_count(), 4);
    ExpectIdenticalRuns(golden_result, sharded.Run());

    SimConfig sketch_sim = sim;
    sketch_sim.profile_mode = ProfileMode::kSketch;
    Simulation sketch(cell.topo, spec, policy, sketch_sim);
    ExpectIdenticalRuns(golden_result, sketch.Run());
  }
}

// The full matrix the oracle CI job enforces, in miniature: a small grid at
// jobs={1,8} x shards={1,4} x profile={exact,sketch} under both engines must
// produce one identical result set — parallelism (between cells or inside
// one) never changes results, and neither does the engine or the profiling
// metadata representation. (Reference x sketch degenerates to reference x
// exact by construction — SampleWindow forces exact under the reference
// pipeline — and the axis keeps that pin honest.)
TEST(EngineIdentityTest, JobsAndEngineAxesAreBitIdentical) {
  ExperimentGrid grid;
  grid.machines = {Topology::MachineA()};
  grid.workloads = {BenchmarkId::kCG_D, BenchmarkId::kUA_B};
  grid.policies = {PolicyKind::kCarrefourLp};
  grid.num_seeds = 2;
  grid.sim.accesses_per_thread_per_epoch = 512;
  grid.sim.max_epochs = 8;

  std::vector<GridResults> all;
  for (const bool reference : {false, true}) {
    for (const ProfileMode mode : {ProfileMode::kExact, ProfileMode::kSketch}) {
      for (const int jobs : {1, 8}) {
        for (const int shards : {1, 4}) {
          ExperimentGrid g = grid;
          g.sim.reference_pipeline = reference;
          g.sim.profile_mode = mode;
          g.sim.shards = shards;
          g.sim.shards_force = true;
          const ExperimentRunner runner(jobs);
          all.push_back(RunGrid(g, runner));
        }
      }
    }
  }
  const GridResults& golden = all.front();
  for (std::size_t v = 1; v < all.size(); ++v) {
    for (int w = 0; w < golden.num_workloads(); ++w) {
      for (int s = 0; s < golden.num_seeds(); ++s) {
        const RunResult& want = golden.At(0, w, 0, s);
        const RunResult& got = all[v].At(0, w, 0, s);
        EXPECT_EQ(got.total_cycles, want.total_cycles)
            << "variant " << v << " workload " << w << " seed " << s;
        EXPECT_EQ(got.measured_cycles, want.measured_cycles);
        EXPECT_EQ(got.total_migrations, want.total_migrations);
        EXPECT_EQ(got.total_splits, want.total_splits);
        EXPECT_EQ(got.totals.dram_local, want.totals.dram_local);
        const RunResult& base_want = golden.Baseline(0, w, s);
        const RunResult& base_got = all[v].Baseline(0, w, s);
        EXPECT_EQ(base_got.total_cycles, base_want.total_cycles);
      }
    }
  }
}

}  // namespace
}  // namespace numalp
