#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/hw/counters.h"
#include "src/hw/ibs.h"
#include "src/hw/interconnect.h"
#include "src/hw/mem_ctrl.h"
#include "src/hw/tlb.h"
#include "src/hw/walker.h"
#include "src/topo/topology.h"

namespace numalp {
namespace {

TEST(TlbTest, MissThenInsertThenHit) {
  Tlb tlb(TlbConfig{});
  EXPECT_EQ(tlb.Lookup(0x5000).level, TlbHitLevel::kMiss);
  tlb.Insert(0x5000, PageSize::k4K, 99, 1);
  const TlbLookup hit = tlb.Lookup(0x5abc);
  EXPECT_EQ(hit.level, TlbHitLevel::kL1);
  EXPECT_EQ(hit.pfn, 99u);
  EXPECT_EQ(hit.node, 1);
  EXPECT_EQ(hit.size, PageSize::k4K);
}

TEST(TlbTest, TwoMegEntryCoversWholeWindow) {
  Tlb tlb(TlbConfig{});
  tlb.Insert(kBytes2M, PageSize::k2M, 512, 0);
  EXPECT_EQ(tlb.Lookup(kBytes2M).level, TlbHitLevel::kL1);
  EXPECT_EQ(tlb.Lookup(kBytes2M + 511 * kBytes4K).level, TlbHitLevel::kL1);
  EXPECT_EQ(tlb.Lookup(2 * kBytes2M).level, TlbHitLevel::kMiss);
}

TEST(TlbTest, L2CatchesL1Eviction) {
  TlbConfig config;
  Tlb tlb(config);
  // Fill far beyond L1 capacity (64 entries) but within L2 (1024).
  for (Addr va = 0; va < 512 * kBytes4K; va += kBytes4K) {
    tlb.Insert(va, PageSize::k4K, va >> kShift4K, 0);
  }
  int l1_hits = 0;
  int l2_hits = 0;
  int misses = 0;
  for (Addr va = 0; va < 512 * kBytes4K; va += kBytes4K) {
    switch (tlb.Lookup(va).level) {
      case TlbHitLevel::kL1:
        ++l1_hits;
        break;
      case TlbHitLevel::kL2:
        ++l2_hits;
        break;
      case TlbHitLevel::kMiss:
        ++misses;
        break;
    }
  }
  EXPECT_GT(l2_hits, 300);  // most survive in L2
  EXPECT_EQ(misses, 0);
  // (L1 hits are possible but not guaranteed: L2-hit refills keep evicting
  // the small L1 during the ascending sweep.)
  (void)l1_hits;
}

TEST(TlbTest, TwoMegReachExceeds4KReach) {
  // Property from the paper's premise: the same TLB covers vastly more
  // address space with 2MB entries.
  Tlb tlb(TlbConfig{});
  for (int i = 0; i < 32; ++i) {
    tlb.Insert(static_cast<Addr>(i) * kBytes2M, PageSize::k2M, 0, 0);
  }
  int hits = 0;
  for (int i = 0; i < 32; ++i) {
    if (tlb.Lookup(static_cast<Addr>(i) * kBytes2M + 12345).level != TlbHitLevel::kMiss) {
      ++hits;
    }
  }
  EXPECT_EQ(hits, 32);  // 64MB of reach from the 2M array alone
}

TEST(TlbTest, InvalidatePageIsPrecise) {
  Tlb tlb(TlbConfig{});
  tlb.Insert(0x1000, PageSize::k4K, 1, 0);
  tlb.Insert(0x2000, PageSize::k4K, 2, 0);
  tlb.InvalidatePage(0x1000, PageSize::k4K);
  EXPECT_EQ(tlb.Lookup(0x1000).level, TlbHitLevel::kMiss);
  EXPECT_EQ(tlb.Lookup(0x2000).level, TlbHitLevel::kL1);
}

TEST(TlbTest, Invalidate2MEntry) {
  Tlb tlb(TlbConfig{});
  tlb.Insert(kBytes2M, PageSize::k2M, 512, 1);
  tlb.InvalidatePage(kBytes2M, PageSize::k2M);
  EXPECT_EQ(tlb.Lookup(kBytes2M + 5).level, TlbHitLevel::kMiss);
}

TEST(TlbTest, FlushAllClearsEverything) {
  Tlb tlb(TlbConfig{});
  tlb.Insert(0x1000, PageSize::k4K, 1, 0);
  tlb.Insert(kBytes2M, PageSize::k2M, 2, 0);
  tlb.Insert(kBytes1G, PageSize::k1G, 3, 0);
  tlb.FlushAll();
  EXPECT_EQ(tlb.Lookup(0x1000).level, TlbHitLevel::kMiss);
  EXPECT_EQ(tlb.Lookup(kBytes2M).level, TlbHitLevel::kMiss);
  EXPECT_EQ(tlb.Lookup(kBytes1G).level, TlbHitLevel::kMiss);
}

TEST(TlbTest, OneGigPagesHaveOwnArray) {
  Tlb tlb(TlbConfig{});
  tlb.Insert(0, PageSize::k1G, 0, 1);
  const TlbLookup hit = tlb.Lookup(kBytes1G - 1);
  EXPECT_EQ(hit.level, TlbHitLevel::kL1);
  EXPECT_EQ(hit.size, PageSize::k1G);
}

// The partitioned L1 arrays isolate capacity per page size: thrashing one
// size class cannot evict another's entries (and 1GB entries, which skip the
// unified L2, survive a 4KB flood that churns L2 too).
TEST(TlbTest, PerSizeCapacityIsolation) {
  const TlbConfig config;
  Tlb tlb(config);
  tlb.Insert(0x1000, PageSize::k4K, 1, 0);
  tlb.Insert(3 * kBytes2M, PageSize::k2M, 2, 0);
  // Flood the 1GB array past its capacity (1 set x 8 ways): the oldest 1GB
  // entry is evicted, the 4KB and 2MB residents are untouched.
  const Addr gig_base = 16 * kBytes1G;
  const int gig_entries = config.l1_1g_sets * config.l1_1g_ways;
  for (int i = 0; i <= gig_entries; ++i) {
    tlb.Insert(gig_base + static_cast<Addr>(i) * kBytes1G, PageSize::k1G,
               100 + static_cast<Pfn>(i), 0);
  }
  EXPECT_EQ(tlb.Lookup(gig_base).level, TlbHitLevel::kMiss);
  EXPECT_EQ(tlb.Lookup(gig_base + static_cast<Addr>(gig_entries) * kBytes1G).level,
            TlbHitLevel::kL1);
  EXPECT_EQ(tlb.Lookup(0x1000).level, TlbHitLevel::kL1);
  EXPECT_EQ(tlb.Lookup(3 * kBytes2M).level, TlbHitLevel::kL1);

  // Now flood 4KB far past the L1-4K and unified-L2 capacity; the surviving
  // 1GB entries (own array, never L2-cached) must all still hit.
  const Addr flood_base = 64 * kBytes1G;
  const int flood = 4 * config.l2_sets * config.l2_ways;
  for (int i = 0; i < flood; ++i) {
    tlb.Insert(flood_base + static_cast<Addr>(i) * kBytes4K, PageSize::k4K,
               1000 + static_cast<Pfn>(i), 0);
  }
  for (int i = 1; i <= gig_entries; ++i) {
    EXPECT_EQ(tlb.Lookup(gig_base + static_cast<Addr>(i) * kBytes1G).level,
              TlbHitLevel::kL1)
        << "1G entry " << i << " evicted by a 4K flood";
  }
}

// InvalidateRange drops every overlapping translation of every size —
// including a 1GB page that merely straddles the range — and nothing else.
TEST(TlbTest, RangedInvalidationSpansPageSizes) {
  Tlb tlb(TlbConfig{});
  const Addr gig = kBytes1G;  // second gigabyte
  tlb.Insert(gig, PageSize::k1G, 10, 0);
  tlb.Insert(gig + 4 * kBytes2M, PageSize::k2M, 11, 0);
  tlb.Insert(gig + kBytes2M + 3 * kBytes4K, PageSize::k4K, 12, 0);
  tlb.Insert(gig + 0x1000, PageSize::k4K, 13, 0);       // below the range
  tlb.Insert(gig + 2 * kBytes1G, PageSize::k4K, 14, 0);  // far above it

  tlb.InvalidateRange(gig + kBytes2M, 8 * kBytes2M);

  EXPECT_EQ(tlb.Lookup(gig + kBytes2M + 3 * kBytes4K).level, TlbHitLevel::kMiss);
  EXPECT_EQ(tlb.Lookup(gig + 4 * kBytes2M + 7).level, TlbHitLevel::kMiss);
  // The 1GB page overlaps the range, so its translation goes too...
  EXPECT_EQ(tlb.Lookup(gig + 100 * kBytes2M).level, TlbHitLevel::kMiss);
  // ...which means the 4KB entry below the range now misses the 1GB backing
  // but keeps its own translation, and the distant entry is untouched.
  EXPECT_EQ(tlb.Lookup(gig + 0x1000).level, TlbHitLevel::kL1);
  EXPECT_EQ(tlb.Lookup(gig + 2 * kBytes1G).level, TlbHitLevel::kL1);
}

// Mixed-size churn with ranged shootdowns: the fast (SWAR/rank-LRU) engine
// and the scalar reference must stay lookup- and occupancy-identical. This
// extends perf_structures_test's churn to the 1GB array and InvalidateRange.
TEST(TlbTest, MixedSizeChurnMatchesReference) {
  Tlb fast(TlbConfig{}, /*reference=*/false);
  Tlb reference(TlbConfig{}, /*reference=*/true);
  Rng rng(20260808);
  const Addr space = 8 * kBytes1G;
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t op = rng.Uniform(100);
    const Addr va = (rng.Uniform(space / kBytes4K)) * kBytes4K;
    if (op < 55) {
      const TlbLookup a = fast.Lookup(va);
      const TlbLookup b = reference.Lookup(va);
      ASSERT_EQ(a.level, b.level) << "step " << i;
      ASSERT_EQ(a.pfn, b.pfn) << "step " << i;
      ASSERT_EQ(a.node, b.node) << "step " << i;
      ASSERT_EQ(a.size, b.size) << "step " << i;
    } else if (op < 85) {
      const std::uint64_t pick = rng.Uniform(3);
      const PageSize size = pick == 0   ? PageSize::k4K
                            : pick == 1 ? PageSize::k2M
                                        : PageSize::k1G;
      const Pfn pfn = rng.Uniform(1u << 20);
      const int node = static_cast<int>(rng.Uniform(16));
      fast.Insert(va, size, pfn, node);
      reference.Insert(va, size, pfn, node);
    } else if (op < 95) {
      const std::uint64_t pick = rng.Uniform(3);
      const PageSize size = pick == 0   ? PageSize::k4K
                            : pick == 1 ? PageSize::k2M
                                        : PageSize::k1G;
      fast.InvalidatePage(va, size);
      reference.InvalidatePage(va, size);
    } else {
      const std::uint64_t bytes = (1 + rng.Uniform(1024)) * kBytes2M;
      fast.InvalidateRange(va, bytes);
      reference.InvalidateRange(va, bytes);
    }
    ASSERT_EQ(fast.DebugOccupancy(), reference.DebugOccupancy()) << "step " << i;
  }
}

TEST(WalkerTest, MissProbabilityMonotonicInTableSize) {
  PageWalker walker(WalkerConfig{});
  double previous = 0.0;
  for (std::uint64_t bytes : {0ull, 4096ull, 1ull << 20, 1ull << 24, 1ull << 30}) {
    const double p = walker.PteMissProbability(bytes);
    EXPECT_GE(p, previous);
    EXPECT_LE(p, 1.0);
    previous = p;
  }
}

TEST(WalkerTest, LargePagesWalkFewerLevels) {
  PageWalker walker(WalkerConfig{});
  Rng rng_a(1);
  Rng rng_b(1);
  Cycles cost_4k = 0;
  Cycles cost_1g = 0;
  for (int i = 0; i < 1000; ++i) {
    cost_4k += walker.Walk(PageSize::k4K, 0, rng_a).cycles;
    cost_1g += walker.Walk(PageSize::k1G, 0, rng_b).cycles;
  }
  EXPECT_LT(cost_1g, cost_4k);
}

TEST(WalkerTest, L2MissRateMatchesProbability) {
  PageWalker walker(WalkerConfig{});
  Rng rng(9);
  const std::uint64_t table_bytes = 4ull << 20;
  const double p = walker.PteMissProbability(table_bytes);
  int misses = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    misses += walker.Walk(PageSize::k4K, table_bytes, rng).l2_miss ? 1 : 0;
  }
  EXPECT_NEAR(misses / static_cast<double>(n), p, 0.01);
}

TEST(MemCtrlTest, BaseLatencyUnderCapacity) {
  MemCtrlModel model(MemCtrlConfig{});
  const std::vector<std::uint64_t> balanced{100, 100, 100, 100};
  for (Cycles latency : model.Latencies(balanced, 1000)) {
    EXPECT_EQ(latency, model.config().base_latency);
  }
}

TEST(MemCtrlTest, OverloadedControllerSlowsDown) {
  MemCtrlModel model(MemCtrlConfig{});
  const std::vector<std::uint64_t> skewed{4000, 100, 100, 100};
  const auto latencies = model.Latencies(skewed, 1000);
  EXPECT_GT(latencies[0], model.config().base_latency);
  EXPECT_EQ(latencies[1], model.config().base_latency);
}

TEST(MemCtrlTest, LatencyCapsAtMaxMultiplier) {
  MemCtrlConfig config;
  MemCtrlModel model(config);
  const Cycles max_latency =
      static_cast<Cycles>(config.max_multiplier * static_cast<double>(config.base_latency));
  EXPECT_EQ(model.LatencyForUtilization(100.0), max_latency);
  // Paper: ~1000 cycles on an overloaded controller vs ~200 balanced.
  EXPECT_GE(max_latency, 1000u);
  EXPECT_EQ(model.LatencyForUtilization(0.5), config.base_latency);
}

TEST(MemCtrlTest, LatencyMonotonicInUtilization) {
  MemCtrlModel model(MemCtrlConfig{});
  Cycles previous = 0;
  for (double u : {0.5, 1.0, 1.2, 1.5, 2.0, 3.0}) {
    const Cycles latency = model.LatencyForUtilization(u);
    EXPECT_GE(latency, previous);
    previous = latency;
  }
}

TEST(InterconnectTest, LocalAccessHasNoHopCost) {
  const Topology topo = Topology::MachineA();
  InterconnectModel model(InterconnectConfig{}, topo);
  const std::vector<std::uint64_t> remote{10, 10, 10, 10};
  const auto latencies = model.RemoteLatencies(remote);
  for (int n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_EQ(latencies[n][n], 0u);
  }
}

TEST(InterconnectTest, TwoHopsCostMore) {
  const Topology topo = Topology::MachineB();
  InterconnectModel model(InterconnectConfig{}, topo);
  const std::vector<std::uint64_t> remote(8, 10);
  const auto latencies = model.RemoteLatencies(remote);
  // Node 0 -> 1 is one hop; find a two-hop destination.
  int two_hop = -1;
  for (int n = 1; n < 8; ++n) {
    if (topo.Hops(0, n) == 2) {
      two_hop = n;
      break;
    }
  }
  ASSERT_NE(two_hop, -1);
  EXPECT_GT(latencies[0][two_hop], latencies[0][1]);
}

TEST(InterconnectTest, CongestedDestinationCostsMore) {
  const Topology topo = Topology::MachineA();
  InterconnectConfig config;
  InterconnectModel model(config, topo);
  const std::vector<std::uint64_t> skewed{1000, 0, 0, 0};
  const std::vector<std::uint64_t> balanced{250, 250, 250, 250};
  const auto hot = model.RemoteLatencies(skewed);
  const auto cool = model.RemoteLatencies(balanced);
  EXPECT_GT(hot[1][0], cool[1][0]);
  // And the factor is capped.
  EXPECT_LE(hot[1][0], static_cast<Cycles>(config.max_factor *
                                           static_cast<double>(config.per_hop) + 1));
}

TEST(IbsTest, SamplingRateMatchesInterval) {
  IbsEngine ibs(2, 4, /*interval=*/64, /*seed=*/1);
  int sampled = 0;
  for (int i = 0; i < 64000; ++i) {
    sampled += ibs.Observe(0x1000, i % 4, 0, 1, true) ? 1 : 0;
  }
  EXPECT_NEAR(sampled, 1000, 10);
}

TEST(IbsTest, SamplesLandInRequestingNodesStore) {
  IbsEngine ibs(2, 2, /*interval=*/1, /*seed=*/2);
  ibs.Observe(0xabc, 0, /*req_node=*/0, /*home_node=*/1, true);
  ibs.Observe(0xdef, 1, /*req_node=*/1, /*home_node=*/0, false);
  EXPECT_EQ(ibs.stores()[0].size(), 1u);
  EXPECT_EQ(ibs.stores()[1].size(), 1u);
  EXPECT_EQ(ibs.stores()[0][0].va, 0xabcu);
  EXPECT_TRUE(ibs.stores()[0][0].dram);
  EXPECT_FALSE(ibs.stores()[1][0].dram);
}

TEST(IbsTest, DrainMovesAndClears) {
  IbsEngine ibs(2, 1, /*interval=*/1, /*seed=*/3);
  for (int i = 0; i < 10; ++i) {
    ibs.Observe(static_cast<Addr>(i), 0, 0, 0, true);
  }
  EXPECT_EQ(ibs.Drain().size(), 10u);
  EXPECT_TRUE(ibs.Drain().empty());
  EXPECT_EQ(ibs.total_samples(), 10u);
}

TEST(CountersTest, AccumulateAndTotals) {
  EpochCounters counters(2, 2);
  counters.cores[0].dram_local = 10;
  counters.cores[0].dram_remote = 5;
  counters.cores[1].walk_l2_miss = 3;
  counters.cores[1].faults_4k = 2;
  counters.node_requests[0] = 12;
  EXPECT_EQ(counters.TotalDram(), 15u);
  EXPECT_EQ(counters.TotalLocal(), 10u);
  EXPECT_EQ(counters.TotalWalkL2Miss(), 3u);
  EXPECT_EQ(counters.TotalFaults(), 2u);
  CoreCounters sum;
  sum.Accumulate(counters.cores[0]);
  sum.Accumulate(counters.cores[1]);
  EXPECT_EQ(sum.dram_accesses(), 15u);
  counters.Reset();
  EXPECT_EQ(counters.TotalDram(), 0u);
  EXPECT_EQ(counters.node_requests[0], 0u);
}

}  // namespace
}  // namespace numalp
