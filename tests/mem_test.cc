#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/mem/buddy_allocator.h"
#include "src/mem/phys_mem.h"
#include "src/topo/topology.h"

namespace numalp {
namespace {

TEST(BuddyTest, AllocFreeRoundtrip) {
  BuddyAllocator buddy(0, 1024);
  const auto pfn = buddy.Alloc(0);
  ASSERT_TRUE(pfn.has_value());
  EXPECT_EQ(buddy.free_frames(), 1023u);
  buddy.Free(*pfn, 0);
  EXPECT_EQ(buddy.free_frames(), 1024u);
  EXPECT_TRUE(buddy.CheckInvariants());
}

TEST(BuddyTest, LowestAddressFirst) {
  BuddyAllocator buddy(0, 1024);
  EXPECT_EQ(*buddy.Alloc(0), 0u);
  EXPECT_EQ(*buddy.Alloc(0), 1u);
  EXPECT_EQ(*buddy.Alloc(0), 2u);
}

TEST(BuddyTest, CoalescesBackToFullBlock) {
  BuddyAllocator buddy(0, 1 << 10);
  std::vector<Pfn> pages;
  for (int i = 0; i < 1 << 10; ++i) {
    pages.push_back(*buddy.Alloc(0));
  }
  EXPECT_EQ(buddy.free_frames(), 0u);
  EXPECT_FALSE(buddy.Alloc(0).has_value());
  for (Pfn pfn : pages) {
    buddy.Free(pfn, 0);
  }
  EXPECT_EQ(buddy.LargestFreeOrder(), 10);
  EXPECT_TRUE(buddy.CheckInvariants());
}

TEST(BuddyTest, LargeOrderAllocation) {
  BuddyAllocator buddy(0, 1 << 18);
  const auto huge = buddy.Alloc(18);  // 1GB
  ASSERT_TRUE(huge.has_value());
  EXPECT_EQ(buddy.free_frames(), 0u);
  buddy.Free(*huge, 18);
  EXPECT_EQ(buddy.free_frames(), 1ull << 18);
}

TEST(BuddyTest, MixedOrdersDoNotOverlap) {
  BuddyAllocator buddy(0, 1 << 12);
  std::set<Pfn> seen;
  std::vector<std::pair<Pfn, int>> blocks;
  for (int order : {0, 3, 9, 0, 5, 9, 0}) {
    const auto pfn = buddy.Alloc(order);
    ASSERT_TRUE(pfn.has_value());
    for (Pfn p = *pfn; p < *pfn + (1ull << order); ++p) {
      EXPECT_TRUE(seen.insert(p).second) << "overlapping allocation at " << p;
    }
    blocks.emplace_back(*pfn, order);
  }
  for (const auto& [pfn, order] : blocks) {
    buddy.Free(pfn, order);
  }
  EXPECT_TRUE(buddy.CheckInvariants());
}

TEST(BuddyTest, SplitAllocatedAllowsPieceFrees) {
  BuddyAllocator buddy(0, 1 << 12);
  const Pfn block = *buddy.Alloc(9);  // 2MB
  buddy.SplitAllocated(block, 9, 0);
  // Free every other piece; the rest stay allocated.
  for (Pfn p = block; p < block + 512; p += 2) {
    buddy.Free(p, 0);
  }
  EXPECT_EQ(buddy.free_frames(), (1ull << 12) - 512 + 256);
  EXPECT_TRUE(buddy.CheckInvariants());
  for (Pfn p = block + 1; p < block + 512; p += 2) {
    buddy.Free(p, 0);
  }
  EXPECT_EQ(buddy.LargestFreeOrder(), 12);
}

TEST(BuddyTest, CanAllocReflectsFragmentation) {
  BuddyAllocator buddy(0, 1 << 10);
  EXPECT_TRUE(buddy.CanAlloc(10));
  const Pfn one = *buddy.Alloc(0);
  EXPECT_FALSE(buddy.CanAlloc(10));
  EXPECT_TRUE(buddy.CanAlloc(9));
  buddy.Free(one, 0);
  EXPECT_TRUE(buddy.CanAlloc(10));
}

TEST(BuddyTest, FragmentationIndex) {
  BuddyAllocator buddy(0, 1 << 10);
  EXPECT_DOUBLE_EQ(buddy.FragmentationIndex(), 0.0);
  // Allocate the whole range as 4K pages and free every other one: free
  // memory is maximally shattered.
  std::vector<Pfn> pages;
  for (int i = 0; i < 1 << 10; ++i) {
    pages.push_back(*buddy.Alloc(0));
  }
  for (std::size_t i = 0; i < pages.size(); i += 2) {
    buddy.Free(pages[i], 0);
  }
  EXPECT_GT(buddy.FragmentationIndex(), 0.99);
}

TEST(BuddyTest, IsAllocatedCoversInteriorFrames) {
  BuddyAllocator buddy(0, 1 << 12);
  const Pfn block = *buddy.Alloc(9);
  EXPECT_TRUE(buddy.IsAllocated(block));
  EXPECT_TRUE(buddy.IsAllocated(block + 17));
  EXPECT_FALSE(buddy.IsAllocated(block + 512));
}

TEST(BuddyTest, NonPowerOfTwoRange) {
  BuddyAllocator buddy(0, 1000);  // not a power of two
  EXPECT_EQ(buddy.free_frames(), 1000u);
  EXPECT_TRUE(buddy.CheckInvariants());
  std::vector<Pfn> all;
  while (auto pfn = buddy.Alloc(0)) {
    all.push_back(*pfn);
  }
  EXPECT_EQ(all.size(), 1000u);
  for (Pfn pfn : all) {
    buddy.Free(pfn, 0);
  }
  EXPECT_TRUE(buddy.CheckInvariants());
}

// Property test: random alloc/free sequences conserve frames and never break
// the allocator's internal invariants.
class BuddyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuddyPropertyTest, RandomOpsPreserveInvariants) {
  Rng rng(GetParam());
  BuddyAllocator buddy(0, 1 << 13);
  std::vector<std::pair<Pfn, int>> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.Bernoulli(0.55)) {
      const int order = static_cast<int>(rng.Uniform(10));
      if (auto pfn = buddy.Alloc(order)) {
        live.emplace_back(*pfn, order);
      }
    } else {
      const std::size_t index = rng.Uniform(live.size());
      auto [pfn, order] = live[index];
      live[index] = live.back();
      live.pop_back();
      if (order > 0 && rng.Bernoulli(0.2)) {
        // Sometimes split in place and free the pieces separately.
        buddy.SplitAllocated(pfn, order, 0);
        for (Pfn p = pfn; p < pfn + (1ull << order); ++p) {
          buddy.Free(p, 0);
        }
      } else {
        buddy.Free(pfn, order);
      }
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(buddy.CheckInvariants()) << "at step " << step;
    }
  }
  for (const auto& [pfn, order] : live) {
    buddy.Free(pfn, order);
  }
  EXPECT_TRUE(buddy.CheckInvariants());
  EXPECT_EQ(buddy.free_frames(), 1ull << 13);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyPropertyTest, ::testing::Values(1, 7, 42, 1234, 98765));

TEST(PhysMemTest, NodeOfPfnPartition) {
  const Topology topo = Topology::MachineA();
  PhysicalMemory phys(topo);
  for (int node = 0; node < topo.num_nodes(); ++node) {
    const auto pfn = phys.AllocOnNode(0, node);
    ASSERT_TRUE(pfn.has_value());
    EXPECT_EQ(phys.NodeOfPfn(*pfn), node);
  }
}

TEST(PhysMemTest, PreferredNodeHonored) {
  PhysicalMemory phys(Topology::Tiny());
  const auto alloc = phys.Alloc(0, 1);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->node, 1);
  EXPECT_FALSE(alloc->fallback);
}

TEST(PhysMemTest, FallbackWhenPreferredFull) {
  PhysicalMemory phys(Topology::Tiny(4 * kMiB));  // 1024 frames per node
  // Exhaust node 0.
  while (phys.AllocOnNode(0, 0).has_value()) {
  }
  const auto alloc = phys.Alloc(0, 0);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->node, 1);
  EXPECT_TRUE(alloc->fallback);
}

TEST(PhysMemTest, StrictAllocFailsWhenNodeFull) {
  PhysicalMemory phys(Topology::Tiny(4 * kMiB));
  while (phys.AllocOnNode(0, 0).has_value()) {
  }
  EXPECT_FALSE(phys.AllocOnNode(0, 0).has_value());
  EXPECT_TRUE(phys.AllocOnNode(0, 1).has_value());
}

TEST(PhysMemTest, FreeBytesAccounting) {
  PhysicalMemory phys(Topology::Tiny(4 * kMiB));
  const std::uint64_t initial = phys.FreeBytesOnNode(0);
  const auto pfn = phys.AllocOnNode(9, 0);
  ASSERT_TRUE(pfn.has_value());
  EXPECT_EQ(phys.FreeBytesOnNode(0), initial - kBytes2M);
  phys.Free(*pfn, 9);
  EXPECT_EQ(phys.FreeBytesOnNode(0), initial);
}

TEST(PhysMemTest, FallbackPrefersCloserNodesOnMachineB) {
  const Topology topo = Topology::MachineB();
  PhysicalMemory phys(topo);
  // Exhaust node 0 at order 0 by allocating everything.
  while (phys.AllocOnNode(0, 0).has_value()) {
  }
  const auto alloc = phys.Alloc(0, 0);
  ASSERT_TRUE(alloc.has_value());
  // The fallback node must be one hop away from node 0 (nodes 1, 2 or 4).
  EXPECT_EQ(topo.Hops(0, alloc->node), 1);
}

}  // namespace
}  // namespace numalp
