#include <gtest/gtest.h>

#include "src/mem/phys_mem.h"
#include "src/topo/topology.h"
#include "src/vm/address_space.h"
#include "src/vm/page_table.h"
#include "src/vm/thp.h"

namespace numalp {
namespace {

class PageTableTest : public ::testing::Test {
 protected:
  PageTableTest() : topo_(Topology::Tiny(256 * kMiB)), phys_(topo_), table_(phys_, 0) {}

  Topology topo_;
  PhysicalMemory phys_;
  PageTable table_;
};

TEST_F(PageTableTest, MapLookup4K) {
  table_.Map(0x1000, 77, PageSize::k4K);
  const auto mapping = table_.Lookup(0x1abc);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(mapping->pfn, 77u);
  EXPECT_EQ(mapping->size, PageSize::k4K);
  EXPECT_EQ(mapping->page_base, 0x1000u);
  EXPECT_FALSE(table_.Lookup(0x2000).has_value());
}

TEST_F(PageTableTest, MapLookup2MAnd1G) {
  table_.Map(5 * kBytes2M, 512, PageSize::k2M);
  table_.Map(3 * kBytes1G, 1 << 18, PageSize::k1G);
  const auto two_m = table_.Lookup(5 * kBytes2M + 12345);
  ASSERT_TRUE(two_m.has_value());
  EXPECT_EQ(two_m->size, PageSize::k2M);
  EXPECT_EQ(two_m->page_base, 5 * kBytes2M);
  const auto one_g = table_.Lookup(3 * kBytes1G + 999999);
  ASSERT_TRUE(one_g.has_value());
  EXPECT_EQ(one_g->size, PageSize::k1G);
}

TEST_F(PageTableTest, MappingCounts) {
  table_.Map(0, 1, PageSize::k4K);
  table_.Map(kBytes4K, 2, PageSize::k4K);
  table_.Map(kBytes1G, 3, PageSize::k2M);
  EXPECT_EQ(table_.num_mappings(PageSize::k4K), 2u);
  EXPECT_EQ(table_.num_mappings(PageSize::k2M), 1u);
  table_.Unmap(0);
  EXPECT_EQ(table_.num_mappings(PageSize::k4K), 1u);
}

TEST_F(PageTableTest, UnmapReclaimsEmptyTables) {
  const std::uint64_t before = table_.table_bytes();
  table_.Map(7 * kBytes1G, 42, PageSize::k4K);
  EXPECT_GT(table_.table_bytes(), before);
  table_.Unmap(7 * kBytes1G);
  EXPECT_EQ(table_.table_bytes(), before);
}

TEST_F(PageTableTest, TableBytesGrowWithFootprint) {
  const std::uint64_t before = table_.table_bytes();
  // 1024 x 4K pages need 2 PT pages plus upper levels.
  for (std::uint64_t i = 0; i < 1024; ++i) {
    table_.Map(i * kBytes4K, i, PageSize::k4K);
  }
  EXPECT_GE(table_.table_bytes(), before + 2 * kBytes4K);
}

TEST_F(PageTableTest, Split2MPreservesPhysicalContiguity) {
  table_.Map(0, 1024, PageSize::k2M);
  ASSERT_TRUE(table_.Split(0));
  EXPECT_EQ(table_.num_mappings(PageSize::k4K), 512u);
  EXPECT_EQ(table_.num_mappings(PageSize::k2M), 0u);
  for (std::uint64_t i = 0; i < 512; ++i) {
    const auto mapping = table_.Lookup(i * kBytes4K);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_EQ(mapping->pfn, 1024 + i);
    EXPECT_EQ(mapping->size, PageSize::k4K);
  }
}

TEST_F(PageTableTest, Split1GYields2MPieces) {
  table_.Map(0, 0, PageSize::k1G);
  ASSERT_TRUE(table_.Split(0));
  EXPECT_EQ(table_.num_mappings(PageSize::k2M), 512u);
  const auto mapping = table_.Lookup(5 * kBytes2M);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(mapping->size, PageSize::k2M);
  EXPECT_EQ(mapping->pfn, 5 * kFramesPer2M);
}

TEST_F(PageTableTest, SplitOf4KFails) {
  table_.Map(0, 9, PageSize::k4K);
  EXPECT_FALSE(table_.Split(0));
}

TEST_F(PageTableTest, Promote2MRequiresFullPopulation) {
  for (std::uint64_t i = 0; i < 511; ++i) {
    table_.Map(i * kBytes4K, i, PageSize::k4K);
  }
  EXPECT_FALSE(table_.Promote2M(0, 4096));
  table_.Map(511 * kBytes4K, 511, PageSize::k4K);
  EXPECT_TRUE(table_.Promote2M(0, 4096));
  const auto mapping = table_.Lookup(100 * kBytes4K);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(mapping->size, PageSize::k2M);
  EXPECT_EQ(mapping->pfn, 4096u);
}

TEST_F(PageTableTest, ReplaceLeafReturnsOldPfn) {
  table_.Map(0, 10, PageSize::k4K);
  EXPECT_EQ(table_.ReplaceLeaf(0, 20), 10u);
  EXPECT_EQ(table_.Lookup(0)->pfn, 20u);
}

TEST_F(PageTableTest, WalkDepthPerSize) {
  EXPECT_EQ(PageTable::WalkDepth(PageSize::k4K), 4);
  EXPECT_EQ(PageTable::WalkDepth(PageSize::k2M), 3);
  EXPECT_EQ(PageTable::WalkDepth(PageSize::k1G), 2);
}

TEST_F(PageTableTest, ForEachMappingInRange) {
  table_.Map(0, 1, PageSize::k4K);
  table_.Map(kBytes4K, 2, PageSize::k4K);
  table_.Map(kBytes2M, 3, PageSize::k2M);
  int count = 0;
  table_.ForEachMappingIn(0, 2 * kBytes2M, [&](const PageTable::Mapping& m) {
    ++count;
    EXPECT_LE(m.page_base, 2 * kBytes2M);
  });
  EXPECT_EQ(count, 3);
  count = 0;
  table_.ForEachMappingIn(kBytes2M, kBytes2M, [&](const PageTable::Mapping&) { ++count; });
  EXPECT_EQ(count, 1);
}

class AddressSpaceTest : public ::testing::Test {
 protected:
  AddressSpaceTest() : topo_(Topology::Tiny(256 * kMiB)), phys_(topo_), as_(phys_, topo_, thp_) {}

  Topology topo_;
  PhysicalMemory phys_;
  ThpState thp_;
  AddressSpace as_;
};

TEST_F(AddressSpaceTest, MmapReturnsAlignedDisjointRegions) {
  const Addr a = as_.MmapAnon(10 * kMiB, {});
  const Addr b = as_.MmapAnon(10 * kMiB, {});
  EXPECT_TRUE(IsAligned(a, kBytes1G));
  EXPECT_TRUE(IsAligned(b, kBytes1G));
  EXPECT_GE(b, a + 10 * kMiB);
}

TEST_F(AddressSpaceTest, TranslateUnmappedIsEmpty) {
  const Addr base = as_.MmapAnon(kMiB, {});
  EXPECT_FALSE(as_.Translate(base).has_value());
}

TEST_F(AddressSpaceTest, FirstTouchAllocates4KOnTouchersNode) {
  const Addr base = as_.MmapAnon(kMiB, {});
  const TouchResult touch = as_.Touch(base + 5000, /*core_node=*/1);
  ASSERT_TRUE(touch.fault.has_value());
  EXPECT_EQ(touch.fault->size, PageSize::k4K);
  EXPECT_EQ(touch.fault->node, 1);
  EXPECT_EQ(touch.mapping.node, 1);
  // Second touch: no fault.
  EXPECT_FALSE(as_.Touch(base + 5001, 0).fault.has_value());
  EXPECT_EQ(as_.mapped_bytes(), kBytes4K);
}

TEST_F(AddressSpaceTest, ThpBacksFaultWith2M) {
  thp_.alloc_enabled = true;
  const Addr base = as_.MmapAnon(8 * kMiB, {});
  const TouchResult touch = as_.Touch(base + 3 * kBytes4K, 0);
  ASSERT_TRUE(touch.fault.has_value());
  EXPECT_EQ(touch.fault->size, PageSize::k2M);
  EXPECT_EQ(as_.pages_2m().size(), 1u);
  EXPECT_EQ(as_.WindowPopulation(base), 512);
  EXPECT_DOUBLE_EQ(as_.LargePageCoverage(), 1.0);
}

TEST_F(AddressSpaceTest, ThpSkipsIneligibleVma) {
  thp_.alloc_enabled = true;
  VmaOptions opts;
  opts.thp_eligible = false;  // file-backed mapping
  const Addr base = as_.MmapAnon(8 * kMiB, opts);
  EXPECT_EQ(as_.Touch(base, 0).fault->size, PageSize::k4K);
}

TEST_F(AddressSpaceTest, ThpSkipsPartiallyPopulatedWindow) {
  const Addr base = as_.MmapAnon(8 * kMiB, {});
  as_.Touch(base, 0);  // 4K while THP off
  thp_.alloc_enabled = true;
  // Same window: already populated -> must stay 4K.
  EXPECT_EQ(as_.Touch(base + kBytes4K, 0).fault->size, PageSize::k4K);
  // Untouched window: 2M.
  EXPECT_EQ(as_.Touch(base + kBytes2M, 0).fault->size, PageSize::k2M);
}

TEST_F(AddressSpaceTest, InterleavePlacementRoundRobins) {
  VmaOptions opts;
  opts.placement = NumaPlacement::kInterleave;
  const Addr base = as_.MmapAnon(kMiB, opts);
  const int first = as_.Touch(base, 0).fault->node;
  const int second = as_.Touch(base + kBytes4K, 0).fault->node;
  EXPECT_NE(first, second);  // two nodes on the tiny machine
}

TEST_F(AddressSpaceTest, Explicit1GPage) {
  VmaOptions opts;
  opts.explicit_page = PageSize::k1G;
  // Tiny topology lacks 1G per node; use a bigger machine for this test.
  const Topology big = Topology::MachineB(/*memory_scale=*/8);
  PhysicalMemory phys(big);
  ThpState thp;
  AddressSpace as(phys, big, thp);
  const Addr base = as.MmapAnon(2 * kBytes1G, opts);
  const TouchResult touch = as.Touch(base + 123456, 3);
  ASSERT_TRUE(touch.fault.has_value());
  EXPECT_EQ(touch.fault->size, PageSize::k1G);
  EXPECT_EQ(as.pages_1g().size(), 1u);
  EXPECT_EQ(touch.mapping.node, 3);
}

TEST_F(AddressSpaceTest, MigratePageMovesAndFreesOld) {
  const Addr base = as_.MmapAnon(kMiB, {});
  as_.Touch(base, 0);
  const std::uint64_t free0 = phys_.FreeBytesOnNode(0);
  const std::uint64_t free1 = phys_.FreeBytesOnNode(1);
  const auto record = as_.MigratePage(base, 1);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->from_node, 0);
  EXPECT_EQ(record->to_node, 1);
  EXPECT_EQ(as_.Translate(base)->node, 1);
  EXPECT_EQ(phys_.FreeBytesOnNode(0), free0 + kBytes4K);
  EXPECT_EQ(phys_.FreeBytesOnNode(1), free1 - kBytes4K);
}

TEST_F(AddressSpaceTest, MigrateToSameNodeIsNoop) {
  const Addr base = as_.MmapAnon(kMiB, {});
  as_.Touch(base, 0);
  EXPECT_FALSE(as_.MigratePage(base, 0).has_value());
}

TEST_F(AddressSpaceTest, SplitLargePageBookkeeping) {
  thp_.alloc_enabled = true;
  const Addr base = as_.MmapAnon(4 * kMiB, {});
  as_.Touch(base, 1);
  ASSERT_EQ(as_.pages_2m().size(), 1u);
  const auto record = as_.SplitLargePage(base);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->pieces, 512);
  EXPECT_TRUE(as_.pages_2m().empty());
  EXPECT_EQ(as_.WindowPopulation(base), 512);
  // Constituent pieces can now migrate independently.
  EXPECT_TRUE(as_.MigratePage(base + 5 * kBytes4K, 0).has_value());
  EXPECT_EQ(as_.Translate(base + 5 * kBytes4K)->node, 0);
  EXPECT_EQ(as_.Translate(base)->node, 1);
}

TEST_F(AddressSpaceTest, SplitOf4KPageFails) {
  const Addr base = as_.MmapAnon(kMiB, {});
  as_.Touch(base, 0);
  EXPECT_FALSE(as_.SplitLargePage(base).has_value());
}

TEST_F(AddressSpaceTest, PromoteWindowConsolidates) {
  const Addr base = as_.MmapAnon(4 * kMiB, {});
  for (std::uint64_t i = 0; i < 512; ++i) {
    as_.Touch(base + i * kBytes4K, 0);
  }
  EXPECT_EQ(as_.WindowPopulation(base), 512);
  const auto record = as_.PromoteWindow(base, 1);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->node, 1);
  EXPECT_EQ(as_.Translate(base + 17 * kBytes4K)->size, PageSize::k2M);
  EXPECT_EQ(as_.Translate(base)->node, 1);
  EXPECT_EQ(as_.pages_2m().size(), 1u);
}

TEST_F(AddressSpaceTest, PromotePartialWindowFails) {
  const Addr base = as_.MmapAnon(4 * kMiB, {});
  as_.Touch(base, 0);
  EXPECT_FALSE(as_.PromoteWindow(base, 0).has_value());
}

TEST_F(AddressSpaceTest, SplitThenPromoteRoundTrips) {
  thp_.alloc_enabled = true;
  const Addr base = as_.MmapAnon(4 * kMiB, {});
  as_.Touch(base, 0);
  ASSERT_TRUE(as_.SplitLargePage(base).has_value());
  const auto record = as_.PromoteWindow(base, 0);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(as_.Translate(base)->size, PageSize::k2M);
  EXPECT_EQ(as_.pages_2m().size(), 1u);
}

class KhugepagedTest : public ::testing::Test {
 protected:
  KhugepagedTest() : topo_(Topology::Tiny(256 * kMiB)), phys_(topo_), as_(phys_, topo_, thp_) {}

  Topology topo_;
  PhysicalMemory phys_;
  ThpState thp_;
  AddressSpace as_;
};

TEST_F(KhugepagedTest, PromotesFullyPopulatedSameNodeWindow) {
  const Addr base = as_.MmapAnon(2 * kMiB, {});
  for (std::uint64_t i = 0; i < 512; ++i) {
    as_.Touch(base + i * kBytes4K, 0);
  }
  KhugepagedScanner scanner(as_);
  const auto promoted = scanner.Scan(1024, 8);
  ASSERT_EQ(promoted.size(), 1u);
  EXPECT_EQ(promoted[0].node, 0);
  EXPECT_EQ(as_.Translate(base)->size, PageSize::k2M);
}

TEST_F(KhugepagedTest, SkipsInterleavedWindow) {
  const Addr base = as_.MmapAnon(2 * kMiB, {});
  // Alternate placement: no majority above 55%.
  for (std::uint64_t i = 0; i < 512; ++i) {
    as_.Touch(base + i * kBytes4K, static_cast<int>(i % 2));
  }
  KhugepagedScanner scanner(as_);
  EXPECT_TRUE(scanner.Scan(1024, 8).empty());
}

TEST_F(KhugepagedTest, RespectsPromotionBudget) {
  const Addr base = as_.MmapAnon(8 * kMiB, {});
  for (std::uint64_t i = 0; i < 4 * 512; ++i) {
    as_.Touch(base + i * kBytes4K, 0);
  }
  KhugepagedScanner scanner(as_);
  EXPECT_EQ(scanner.Scan(1024, 2).size(), 2u);
  EXPECT_EQ(scanner.Scan(1024, 8).size(), 2u);  // cursor resumes
}

TEST_F(KhugepagedTest, SkipsExplicitAndIneligibleVmas) {
  VmaOptions ineligible;
  ineligible.thp_eligible = false;
  const Addr base = as_.MmapAnon(2 * kMiB, ineligible);
  for (std::uint64_t i = 0; i < 512; ++i) {
    as_.Touch(base + i * kBytes4K, 0);
  }
  KhugepagedScanner scanner(as_);
  EXPECT_TRUE(scanner.Scan(1024, 8).empty());
}

}  // namespace
}  // namespace numalp
