// The redesigned reactive cost/decision model (DESIGN.md Section 8):
// hysteresis state-machine goldens, the re-promotion round trip, cost-budget
// demotion ordering under exhaustion, the realized-gain accounting on both
// the migration-gain exit and the split experiment, and fast-vs-reference
// engine bit-identity across the new model knobs. The paper's literal
// Algorithm 1 semantics (the model's ablation baseline) stay pinned in
// carrefour_lp_test.cc.
#include <gtest/gtest.h>

#include "src/core/carrefour_lp.h"
#include "src/core/config.h"
#include "src/core/lar_estimator.h"
#include "src/core/simulation.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace numalp {
namespace {

PageAgg SharedLargePage(std::uint64_t samples, int sharers, PageSize size = PageSize::k2M) {
  PageAgg agg;
  agg.size = size;
  agg.total = samples;
  agg.dram = samples;
  agg.home_node = 0;
  agg.req_node_counts[0] = static_cast<std::uint32_t>(samples / 2);
  agg.req_node_counts[1] = static_cast<std::uint32_t>(samples - samples / 2);
  agg.core_mask = (1ull << sharers) - 1;
  return agg;
}

// Cost inputs generous enough that the veto always approves: the state
// machine is under test, not the economics.
LpCostInputs RichCostInputs() {
  LpCostInputs costs;
  costs.epoch_accesses = 100'000;
  costs.epoch_dram_accesses = 50'000;
  costs.epoch_wall = 1'000'000;
  costs.walk_cycles_4k = 60;
  costs.remote_dram_penalty = 300;
  costs.split_op_cycles = 5'500;
  costs.tlb_4k_reach_pages = 1024 * 24;
  return costs;
}

class LpModelTest : public ::testing::Test {
 protected:
  LpModelTest() : config_(MakePolicyConfig(PolicyKind::kCarrefourLp)) {
    thp_.alloc_enabled = true;
    thp_.promote_enabled = true;
  }

  CarrefourLp MakeLp() { return CarrefourLp(config_, thp_); }

  // A heavily-sampled 4KB page: soaks up sample share so the large pages
  // under test stay below the 6% hot bar (the hot path has its own tests).
  void AddColdBallast(Addr base = 1ull << 40, std::uint64_t samples = 4000) {
    PageAgg ballast;
    ballast.size = PageSize::k4K;
    ballast.total = samples;
    ballast.dram = samples;
    ballast.home_node = 0;
    ballast.req_node_counts[0] = static_cast<std::uint32_t>(samples);
    ballast.core_mask = 1;
    pages_[base] = ballast;
  }

  // An observation whose split estimate massively beats both the measured
  // and the what-if-Carrefour LAR: desire is kOn every epoch.
  LpObservation SplitGainObservation(const PageAggMap& pages, double current = 30.0) {
    LpObservation obs;
    obs.lar.current_pct = current;
    obs.lar.carrefour_pct = current + 2.0;
    obs.lar.carrefour_split_pct = 95.0;
    obs.mapping_pages = &pages;
    obs.num_nodes = 4;
    obs.costs = RichCostInputs();
    return obs;
  }

  ThpState thp_;
  PolicyConfig config_;
  PageAggMap pages_;
};

// --- Hysteresis state machine ----------------------------------------------

TEST_F(LpModelTest, EngagesOnlyAfterPersistentSplitGain) {
  config_.lp_model.split_on_epochs = 3;
  CarrefourLp lp = MakeLp();
  pages_[0] = SharedLargePage(40, 4);
  AddColdBallast();
  for (int epoch = 0; epoch < 2; ++epoch) {
    const LpDecision decision = lp.Step(SplitGainObservation(pages_));
    EXPECT_FALSE(decision.split_pages_flag) << "epoch " << epoch;
    EXPECT_TRUE(decision.split_shared.empty()) << "epoch " << epoch;
  }
  const LpDecision decision = lp.Step(SplitGainObservation(pages_));
  EXPECT_TRUE(decision.split_pages_flag);
  EXPECT_FALSE(decision.split_shared.empty());
  EXPECT_FALSE(thp_.alloc_enabled);
}

TEST_F(LpModelTest, OneNoisyEpochResetsTheOnStreak) {
  config_.lp_model.split_on_epochs = 3;
  CarrefourLp lp = MakeLp();
  pages_[0] = SharedLargePage(40, 4);
  lp.Step(SplitGainObservation(pages_));
  lp.Step(SplitGainObservation(pages_));
  // Neither condition fires this epoch: the streak restarts.
  LpObservation quiet = SplitGainObservation(pages_);
  quiet.lar.carrefour_split_pct = quiet.lar.current_pct + 1.0;
  lp.Step(quiet);
  EXPECT_EQ(lp.stats().on_streak, 0);
  lp.Step(SplitGainObservation(pages_));
  const LpDecision decision = lp.Step(SplitGainObservation(pages_));
  EXPECT_FALSE(decision.split_pages_flag);  // only 2 consecutive kOn epochs
}

TEST_F(LpModelTest, DisengagesAfterQuietPeriodAndReenablesAlloc) {
  config_.lp_model.split_on_epochs = 1;
  config_.lp_model.split_off_epochs = 3;
  // Keep the periodic review out of this test's way.
  config_.lp_model.split_patience_epochs = 100;
  CarrefourLp lp = MakeLp();
  pages_[0] = SharedLargePage(40, 4);
  ASSERT_TRUE(lp.Step(SplitGainObservation(pages_)).split_pages_flag);
  LpObservation quiet = SplitGainObservation(pages_);
  quiet.lar.carrefour_split_pct = quiet.lar.current_pct + 1.0;  // gain gone
  lp.Step(quiet);
  lp.Step(quiet);
  EXPECT_TRUE(lp.split_pages_flag());  // 2 quiet epochs < split_off_epochs
  lp.Step(quiet);
  EXPECT_FALSE(lp.split_pages_flag());  // 3rd quiet epoch disengages
  EXPECT_TRUE(thp_.alloc_enabled);      // re-promotion path re-enabled 2MB
}

// --- Re-promotion round trip -----------------------------------------------

TEST_F(LpModelTest, RepromotionRoundTripDrainsDemotedWindowsInAscendingOrder) {
  config_.lp_model.split_on_epochs = 1;
  config_.lp_model.split_off_epochs = 1;
  config_.lp_model.split_patience_epochs = 100;
  config_.lp_model.repromote_max_per_epoch = 2;
  CarrefourLp lp = MakeLp();
  // Insert out of ascending order: the canonical traversal must not care.
  pages_[3 * kBytes2M] = SharedLargePage(40, 4);
  pages_[1 * kBytes2M] = SharedLargePage(40, 4);
  pages_[2 * kBytes2M] = SharedLargePage(40, 4);
  const LpDecision split = lp.Step(SplitGainObservation(pages_));
  ASSERT_EQ(split.split_shared.size(), 3u);
  EXPECT_EQ(lp.stats().pending_repromotions, 3u);

  // The thrash subsides: the split gain disappears and the mode disengages;
  // demoted windows come back in ascending order, bounded per epoch.
  LpObservation subsided;
  PageAggMap empty;
  subsided.lar.current_pct = 85.0;
  subsided.lar.carrefour_pct = 86.0;
  subsided.lar.carrefour_split_pct = 86.0;
  subsided.mapping_pages = &empty;
  subsided.costs = RichCostInputs();
  const LpDecision first = lp.Step(subsided);
  EXPECT_FALSE(first.split_pages_flag);
  ASSERT_EQ(first.repromote_windows.size(), 2u);
  EXPECT_EQ(first.repromote_windows[0], 1 * kBytes2M);
  EXPECT_EQ(first.repromote_windows[1], 2 * kBytes2M);
  EXPECT_TRUE(thp_.alloc_enabled);
  const LpDecision second = lp.Step(subsided);
  ASSERT_EQ(second.repromote_windows.size(), 1u);
  EXPECT_EQ(second.repromote_windows[0], 3 * kBytes2M);
  EXPECT_EQ(lp.stats().pending_repromotions, 0u);
  EXPECT_TRUE(lp.Step(subsided).repromote_windows.empty());
}

TEST_F(LpModelTest, RepromotionDisabledKeepsWindowsDemoted) {
  config_.lp_model.split_on_epochs = 1;
  config_.lp_model.split_off_epochs = 1;
  config_.lp_model.split_patience_epochs = 100;
  config_.lp_model.repromotion = false;
  CarrefourLp lp = MakeLp();
  pages_[0] = SharedLargePage(40, 4);
  lp.Step(SplitGainObservation(pages_));
  LpObservation subsided;
  PageAggMap empty;
  subsided.lar.current_pct = 85.0;
  subsided.lar.carrefour_pct = 86.0;
  subsided.lar.carrefour_split_pct = 86.0;
  subsided.mapping_pages = &empty;
  for (int epoch = 0; epoch < 4; ++epoch) {
    EXPECT_TRUE(lp.Step(subsided).repromote_windows.empty());
  }
}

// --- Cost-aware engagement and budget --------------------------------------

TEST_F(LpModelTest, CostModelVetoesMarginalSplitPromises) {
  CarrefourLp lp = MakeLp();
  pages_[0] = SharedLargePage(40, 8);
  // Split estimate only a hair over the threshold: after the estimator-bias
  // margin the incremental gain is negative and the engagement is vetoed,
  // however long the signal persists.
  LpObservation obs = SplitGainObservation(pages_, /*current=*/80.0);
  obs.lar.carrefour_pct = 82.0;
  obs.lar.carrefour_split_pct = 88.0;  // +8 > 5-point bar, < 12-point margin
  for (int epoch = 0; epoch < 10; ++epoch) {
    EXPECT_FALSE(lp.Step(obs).split_pages_flag) << "epoch " << epoch;
  }
  EXPECT_GE(lp.stats().cost_vetoes, 10u);
}

TEST_F(LpModelTest, BudgetExhaustionDemotesAscendingPrefix) {
  config_.lp_model.split_on_epochs = 1;
  CarrefourLp lp = MakeLp();
  for (Addr base = 0; base < 20 * kBytes2M; base += kBytes2M) {
    pages_[base] = SharedLargePage(10, 3);
  }
  LpObservation obs = SplitGainObservation(pages_);
  // Budget covers exactly three split operations.
  obs.costs.split_op_cycles = 1'000;
  obs.costs.epoch_wall = 3'000'000;
  config_.lp_model.demotion_budget_frac = 0.001;  // 3000 cycles
  CarrefourLp tight = CarrefourLp(config_, thp_);
  const LpDecision decision = tight.Step(obs);
  ASSERT_EQ(decision.split_shared.size(), 3u);
  // Exhaustion cuts the *tail*: what survives is the ascending-address
  // prefix of the candidate list.
  EXPECT_EQ(decision.split_shared[0].first, 0u * kBytes2M);
  EXPECT_EQ(decision.split_shared[1].first, 1u * kBytes2M);
  EXPECT_EQ(decision.split_shared[2].first, 2u * kBytes2M);
  EXPECT_GE(tight.stats().budget_exhaustions, 1u);
}

TEST_F(LpModelTest, BudgetNeverStarvesTheFirstCandidate) {
  config_.lp_model.split_on_epochs = 1;
  config_.lp_model.demotion_budget_frac = 0.0;  // zero budget
  CarrefourLp lp = MakeLp();
  pages_[0] = SharedLargePage(40, 4);
  pages_[kBytes2M] = SharedLargePage(40, 4);
  AddColdBallast();
  const LpDecision decision = lp.Step(SplitGainObservation(pages_));
  ASSERT_EQ(decision.split_shared.size(), 1u);  // progress, however slow
  EXPECT_EQ(decision.split_shared[0].first, 0u);
}

// --- Realized-gain accounting ----------------------------------------------

TEST_F(LpModelTest, UndeliveredMigrationPromiseExpires) {
  config_.lp_model.split_on_epochs = 1;
  config_.lp_model.mig_gain_patience_epochs = 3;
  CarrefourLp lp = MakeLp();
  pages_[0] = SharedLargePage(40, 4);
  // Migration promises +40 points every epoch but the measured LAR never
  // moves: the kOff suppression must expire after patience runs out and the
  // (huge) split gain takes over.
  LpObservation obs = SplitGainObservation(pages_, /*current=*/30.0);
  obs.lar.carrefour_pct = 70.0;
  obs.lar.carrefour_split_pct = 95.0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    EXPECT_FALSE(lp.Step(obs).split_pages_flag) << "epoch " << epoch;
  }
  // 4th epoch: the promise has sat undelivered past its patience — it
  // expires and the split gain engages the mode.
  EXPECT_TRUE(lp.Step(obs).split_pages_flag);
  EXPECT_GE(lp.stats().expired_mig_promises, 1u);
}

TEST_F(LpModelTest, DeliveredMigrationPromiseKeepsSuppressingSplits) {
  config_.lp_model.split_on_epochs = 1;
  config_.lp_model.mig_gain_patience_epochs = 3;
  CarrefourLp lp = MakeLp();
  pages_[0] = SharedLargePage(40, 4);
  // The measured LAR climbs toward the promise: the suppression re-anchors
  // and never expires.
  for (int epoch = 0; epoch < 10; ++epoch) {
    LpObservation obs = SplitGainObservation(pages_, 30.0 + 8.0 * epoch);
    obs.lar.carrefour_pct = obs.lar.current_pct + 40.0;
    obs.lar.carrefour_split_pct = 99.0;
    EXPECT_FALSE(lp.Step(obs).split_pages_flag) << "epoch " << epoch;
  }
  EXPECT_EQ(lp.stats().expired_mig_promises, 0u);
}

TEST_F(LpModelTest, FailedSplitExperimentRollsBackAndCoolsDown) {
  config_.lp_model.split_on_epochs = 1;
  config_.lp_model.split_patience_epochs = 2;
  config_.lp_model.failed_split_cooldown_epochs = 5;
  CarrefourLp lp = MakeLp();
  pages_[0] = SharedLargePage(40, 4);
  // Split gain promises 65 points; the measured LAR never moves (the SSCA
  // mis-estimation). After the review the mode rolls back...
  ASSERT_TRUE(lp.Step(SplitGainObservation(pages_)).split_pages_flag);
  lp.Step(SplitGainObservation(pages_));
  lp.Step(SplitGainObservation(pages_));
  EXPECT_FALSE(lp.split_pages_flag());
  EXPECT_EQ(lp.stats().failed_engagements, 1u);
  // ...and the same undelivered signal cannot re-engage during the cooldown.
  for (int epoch = 0; epoch < 4; ++epoch) {
    EXPECT_FALSE(lp.Step(SplitGainObservation(pages_)).split_pages_flag);
  }
  // Cooldown over: the signal is allowed another experiment.
  EXPECT_TRUE(lp.Step(SplitGainObservation(pages_)).split_pages_flag);
}

TEST_F(LpModelTest, DeliveringSplitExperimentStaysEngaged) {
  config_.lp_model.split_on_epochs = 1;
  config_.lp_model.split_patience_epochs = 3;
  CarrefourLp lp = MakeLp();
  pages_[0] = SharedLargePage(40, 4);
  // LAR rises 6 points per epoch while engaged: every review passes.
  for (int epoch = 0; epoch < 9; ++epoch) {
    const LpDecision decision = lp.Step(SplitGainObservation(pages_, 30.0 + 6.0 * epoch));
    EXPECT_TRUE(decision.split_pages_flag) << "epoch " << epoch;
  }
  EXPECT_EQ(lp.stats().failed_engagements, 0u);
}

// --- Hot-page discrimination -----------------------------------------------

TEST_F(LpModelTest, WidelySharedHotPageInterleavesNarrowOneLocalizes) {
  CarrefourLp lp = MakeLp();
  PageAgg wide = SharedLargePage(90, 16);
  wide.req_node_counts[0] = 23;
  wide.req_node_counts[1] = 23;
  wide.req_node_counts[2] = 22;
  wide.req_node_counts[3] = 22;
  pages_[0] = wide;                           // hot from every node
  pages_[kBytes2M] = SharedLargePage(80, 2);  // hot but two-sharer
  LpObservation obs = SplitGainObservation(pages_, 40.0);
  obs.lar.carrefour_pct = 41.0;
  obs.lar.carrefour_split_pct = 43.0;  // no split-mode engagement
  const LpDecision decision = lp.Step(obs);
  ASSERT_EQ(decision.split_hot.size(), 1u);
  EXPECT_EQ(decision.split_hot[0].first, 0u);  // interleaved
  ASSERT_EQ(decision.split_shared.size(), 1u);
  EXPECT_EQ(decision.split_shared[0].first, kBytes2M);  // localized
}

// --- Fast vs reference bit-identity across the new knobs --------------------

void ExpectIdenticalRuns(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.measured_cycles, b.measured_cycles);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.total_migrations, b.total_migrations);
  EXPECT_EQ(a.total_splits, b.total_splits);
  EXPECT_EQ(a.total_promotions, b.total_promotions);
  EXPECT_EQ(a.total_policy_overhead, b.total_policy_overhead);
  EXPECT_EQ(a.final_thp_coverage, b.final_thp_coverage);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_EQ(a.history[e].wall, b.history[e].wall) << "epoch " << e;
    EXPECT_EQ(a.history[e].splits, b.history[e].splits) << "epoch " << e;
    EXPECT_EQ(a.history[e].promotions, b.history[e].promotions) << "epoch " << e;
    EXPECT_EQ(a.history[e].migrations, b.history[e].migrations) << "epoch " << e;
  }
}

TEST(LpModelEngineIdentityTest, FastAndReferenceAgreeAcrossModelKnobs) {
  const Topology topo = Topology::MachineA();
  // Each variant toggles one model component off — the ablation axes — plus
  // the full model and the literal Algorithm 1.
  std::vector<LpModelConfig> variants(5);
  variants[1].hysteresis = false;
  variants[2].repromotion = false;
  variants[3].cost_budget = false;
  variants[4] = LpModelConfig::Algorithm1();

  for (std::size_t v = 0; v < variants.size(); ++v) {
    SimConfig sim;
    sim.accesses_per_thread_per_epoch = 1024;
    sim.max_epochs = 25;
    WorkloadSpec spec = MakeWorkloadSpec(BenchmarkId::kUA_B, topo);
    spec.steady_accesses_per_thread = 16'000;
    PolicyConfig policy = MakePolicyConfig(PolicyKind::kCarrefourLp);
    policy.lp_model = variants[v];

    Simulation fast(topo, spec, policy, sim);
    const RunResult fast_result = fast.Run();
    sim.reference_pipeline = true;
    Simulation reference(topo, spec, policy, sim);
    const RunResult reference_result = reference.Run();
    ExpectIdenticalRuns(fast_result, reference_result);
  }
}

}  // namespace
}  // namespace numalp
