// Unit tests for the intra-cell sharding plumbing (DESIGN.md Section 10):
// the oversubscription guard that keeps runner jobs x shards bounded by the
// host, the NUMALP_SHARDS / --shards configuration surface, and the worker
// pool's dispatch protocol. Whole-engine bit-identity across shard counts
// lives in perf_structures_test.cc and runner_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/core/config.h"
#include "src/core/shard.h"
#include "src/core/simulation.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace numalp {
namespace {

TEST(ResolveShardCountTest, ClampsToSimulatedCores) {
  // Force bypasses the host-budget clamp, so the only bound left is the
  // simulated core count (more shards than cores could never get work).
  EXPECT_EQ(ResolveShardCount(8, /*force=*/true, /*num_cores=*/4), 4);
  EXPECT_EQ(ResolveShardCount(3, /*force=*/true, /*num_cores=*/16), 3);
  EXPECT_EQ(ResolveShardCount(0, /*force=*/true, /*num_cores=*/16), 1);
  EXPECT_EQ(ResolveShardCount(-5, /*force=*/true, /*num_cores=*/16), 1);
}

TEST(ResolveShardCountTest, GuardDividesHostBudgetByActiveJobs) {
  // With at least hardware_concurrency runner jobs registered, the per-cell
  // budget is one thread: shards clamp to 1 no matter what was requested.
  const unsigned hw = std::thread::hardware_concurrency();
  const int saturating = static_cast<int>(hw > 0 ? hw : 1);
  {
    const ScopedActiveRunnerJobs guard(saturating);
    EXPECT_EQ(ResolveShardCount(8, /*force=*/false, /*num_cores=*/16), 1);
    // force still bypasses the clamp under the same saturation.
    EXPECT_EQ(ResolveShardCount(8, /*force=*/true, /*num_cores=*/16), 8);
  }
  // Guard registration is scoped: after the destructor the budget is back.
  EXPECT_EQ(ActiveRunnerJobs(), 0);
}

TEST(ResolveShardCountTest, ScopedJobsNest) {
  EXPECT_EQ(ActiveRunnerJobs(), 0);
  {
    const ScopedActiveRunnerJobs outer(3);
    EXPECT_EQ(ActiveRunnerJobs(), 3);
    {
      const ScopedActiveRunnerJobs inner(2);
      EXPECT_EQ(ActiveRunnerJobs(), 5);
    }
    EXPECT_EQ(ActiveRunnerJobs(), 3);
  }
  EXPECT_EQ(ActiveRunnerJobs(), 0);
}

TEST(ShardConfigTest, EnvOverridesParseShardKnobs) {
  ::setenv("NUMALP_SHARDS", "4", 1);
  ::setenv("NUMALP_SHARDS_FORCE", "1", 1);
  const SimConfig sim = WithEnvOverrides(SimConfig{});
  EXPECT_EQ(sim.shards, 4);
  EXPECT_TRUE(sim.shards_force);
  ::unsetenv("NUMALP_SHARDS");
  ::unsetenv("NUMALP_SHARDS_FORCE");
  const SimConfig plain = WithEnvOverrides(SimConfig{});
  EXPECT_EQ(plain.shards, 1);
  EXPECT_FALSE(plain.shards_force);
}

TEST(ShardConfigTest, SimulationReportsEffectiveShardCount) {
  const Topology topo = Topology::Tiny();
  const WorkloadSpec spec = MakeWorkloadSpec(BenchmarkId::kWC, topo);
  SimConfig sim;
  sim.max_epochs = 1;
  sim.accesses_per_thread_per_epoch = 64;

  Simulation serial(topo, spec, MakePolicyConfig(PolicyKind::kLinux4K), sim);
  EXPECT_EQ(serial.shard_count(), 1);

  sim.shards = topo.num_cores() + 7;  // over-ask: clamps to the core count
  sim.shards_force = true;
  Simulation sharded(topo, spec, MakePolicyConfig(PolicyKind::kLinux4K), sim);
  EXPECT_EQ(sharded.shard_count(), topo.num_cores());
}

TEST(ShardPoolTest, RunInvokesEveryWorkerExactlyOnce) {
  ShardPool pool(4);
  EXPECT_EQ(pool.shards(), 4);
  // Repeated dispatches through the same pool: the generation protocol must
  // not lose or double-run a worker on any round.
  for (int round = 0; round < 50; ++round) {
    std::vector<std::atomic<int>> hits(4);
    for (auto& h : hits) {
      h.store(0);
    }
    pool.Run([&](int worker) { hits[static_cast<std::size_t>(worker)].fetch_add(1); });
    for (int w = 0; w < 4; ++w) {
      EXPECT_EQ(hits[static_cast<std::size_t>(w)].load(), 1) << "worker " << w;
    }
  }
}

TEST(ShardPoolTest, SingleShardRunsInline) {
  ShardPool pool(1);
  int calls = 0;
  pool.Run([&](int worker) {
    EXPECT_EQ(worker, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace numalp
