#include <gtest/gtest.h>

#include "src/carrefour/carrefour.h"
#include "src/core/lar_estimator.h"

namespace numalp {
namespace {

PageAgg MakeAgg(std::initializer_list<std::pair<int, int>> node_counts, int home,
                PageSize size = PageSize::k4K, std::uint64_t cores = 1) {
  PageAgg agg;
  for (const auto& [node, count] : node_counts) {
    agg.req_node_counts[static_cast<std::size_t>(node)] =
        static_cast<std::uint32_t>(count);
    agg.total += static_cast<std::uint64_t>(count);
  }
  agg.dram = agg.total;
  agg.home_node = home;
  agg.size = size;
  agg.core_mask = (1ull << cores) - 1;
  return agg;
}

TEST(CarrefourTest, SingleNodePageMigratesToItsNode) {
  Carrefour carrefour(CarrefourConfig{}, {0, 1, 2, 3}, 1);
  PageAggMap pages;
  pages[0x1000] = MakeAgg({{2, 8}}, /*home=*/0);
  const auto plan = carrefour.Plan(pages, 0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].kind, CarrefourAction::Kind::kMigrate);
  EXPECT_EQ(plan[0].target_node, 2);
}

TEST(CarrefourTest, SingleNodePageAlreadyHomeNoAction) {
  Carrefour carrefour(CarrefourConfig{}, {0, 1, 2, 3}, 1);
  PageAggMap pages;
  pages[0x1000] = MakeAgg({{2, 8}}, /*home=*/2);
  EXPECT_TRUE(carrefour.Plan(pages, 0).empty());
}

TEST(CarrefourTest, MultiNodePageInterleavedOnce) {
  Carrefour carrefour(CarrefourConfig{}, {0, 1, 2, 3}, 1);
  PageAggMap pages;
  pages[0x1000] = MakeAgg({{0, 5}, {1, 5}}, /*home=*/0, PageSize::k2M, 2);
  const auto first = carrefour.Plan(pages, 0);
  // Either moved to a random node or (1-in-4) already there.
  EXPECT_LE(first.size(), 1u);
  // Hysteresis: no re-interleave on later epochs.
  EXPECT_TRUE(carrefour.Plan(pages, 1).empty());
  EXPECT_TRUE(carrefour.Plan(pages, 20).empty());
}

TEST(CarrefourTest, MinSamplesFiltersNoise) {
  CarrefourConfig config;
  config.min_samples_per_page = 2;
  config.min_samples_migrate = 4;
  Carrefour carrefour(config, {0, 1, 2, 3}, 1);
  PageAggMap pages;
  pages[0x1000] = MakeAgg({{1, 1}}, /*home=*/0);  // 1 sample: below floor
  pages[0x2000] = MakeAgg({{1, 3}}, /*home=*/0);  // 3 samples: below migrate bar
  EXPECT_TRUE(carrefour.Plan(pages, 0).empty());
  pages[0x3000] = MakeAgg({{1, 4}}, /*home=*/0);  // enough evidence
  EXPECT_EQ(carrefour.Plan(pages, 0).size(), 1u);
}

TEST(CarrefourTest, CooldownBlocksPingPong) {
  CarrefourConfig config;
  config.per_page_cooldown_epochs = 8;
  Carrefour carrefour(config, {0, 1, 2, 3}, 1);
  PageAggMap pages;
  pages[0x1000] = MakeAgg({{2, 8}}, /*home=*/0);
  EXPECT_EQ(carrefour.Plan(pages, 0).size(), 1u);
  // The accessor flips: cooldown suppresses immediate re-migration.
  pages[0x1000] = MakeAgg({{3, 8}}, /*home=*/2);
  EXPECT_TRUE(carrefour.Plan(pages, 4).empty());
  EXPECT_EQ(carrefour.Plan(pages, 9).size(), 1u);
}

TEST(CarrefourTest, ForgetClearsState) {
  Carrefour carrefour(CarrefourConfig{}, {0, 1, 2, 3}, 1);
  PageAggMap pages;
  pages[0x1000] = MakeAgg({{0, 5}, {1, 5}}, /*home=*/3, PageSize::k2M, 2);
  carrefour.Plan(pages, 0);
  carrefour.Forget(0x1000);
  // After Forget, the page may be interleaved again.
  const auto plan = carrefour.Plan(pages, 20);
  EXPECT_LE(plan.size(), 1u);  // interleave target may coincide with home
}

TEST(CarrefourTest, GatingRequiresMemoryIntensity) {
  Carrefour carrefour(CarrefourConfig{}, {0, 1, 2, 3}, 1);
  EXPECT_FALSE(carrefour.ShouldRun(/*lar=*/20.0, /*imbalance=*/90.0, /*dram_rate=*/0.001));
  EXPECT_TRUE(carrefour.ShouldRun(20.0, 90.0, 0.5));
}

TEST(CarrefourTest, GatingTriggersOnLowLarOrHighImbalance) {
  Carrefour carrefour(CarrefourConfig{}, {0, 1, 2, 3}, 1);
  EXPECT_TRUE(carrefour.ShouldRun(/*lar=*/50.0, /*imbalance=*/0.0, 0.5));
  EXPECT_TRUE(carrefour.ShouldRun(/*lar=*/95.0, /*imbalance=*/60.0, 0.5));
  EXPECT_FALSE(carrefour.ShouldRun(/*lar=*/95.0, /*imbalance=*/5.0, 0.5));
}

TEST(CarrefourTest, ActionBudgetRespected) {
  CarrefourConfig config;
  config.max_actions_per_epoch = 3;
  config.min_samples_migrate = 2;
  config.min_samples_per_page = 2;
  Carrefour carrefour(config, {0, 1, 2, 3}, 1);
  PageAggMap pages;
  for (Addr base = 0; base < 10 * kBytes4K; base += kBytes4K) {
    pages[base] = MakeAgg({{1, 4}}, /*home=*/0);
  }
  EXPECT_LE(carrefour.Plan(pages, 0).size(), 3u);
}

TEST(LarEstimatorTest, CarrefourEstimateOnSingleNodePages) {
  PageAggMap pages;
  pages[0x1000] = MakeAgg({{1, 10}}, 0);  // single-node: counts as fully local
  EXPECT_DOUBLE_EQ(EstimateCarrefourLarPct(pages, 4), 100.0);
}

TEST(LarEstimatorTest, CarrefourEstimateOnSharedPages) {
  PageAggMap pages;
  pages[0x1000] = MakeAgg({{0, 5}, {1, 5}}, 0);  // interleaved: 1/N locality
  EXPECT_DOUBLE_EQ(EstimateCarrefourLarPct(pages, 4), 25.0);
}

TEST(LarEstimatorTest, MixtureWeightsBySamples) {
  PageAggMap pages;
  pages[0x1000] = MakeAgg({{1, 30}}, 0);          // 30 samples -> local
  pages[0x2000] = MakeAgg({{0, 5}, {1, 5}}, 0);   // 10 samples -> 25%
  EXPECT_NEAR(EstimateCarrefourLarPct(pages, 4), (30.0 + 10 * 0.25) / 40 * 100, 1e-9);
}

TEST(LarEstimatorTest, SingleSampleOptimismBias) {
  // The paper's mis-estimation mechanism: pages with one sample look
  // single-node, so the estimate saturates toward 100% even for a uniformly
  // shared region.
  PageAggMap pages;
  for (Addr base = 0; base < 64 * kBytes4K; base += kBytes4K) {
    pages[base] = MakeAgg({{static_cast<int>((base >> 12) % 4), 1}}, 0);
  }
  EXPECT_DOUBLE_EQ(EstimateCarrefourLarPct(pages, 4), 100.0);
}

}  // namespace
}  // namespace numalp
