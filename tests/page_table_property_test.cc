// Randomized property tests: the page table and address space stay
// consistent under arbitrary interleavings of map/unmap/split/promote/
// migrate, and physical frames are conserved.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/mem/phys_mem.h"
#include "src/topo/topology.h"
#include "src/vm/address_space.h"
#include "src/vm/page_table.h"

namespace numalp {
namespace {

class PageTablePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageTablePropertyTest, RandomMapUnmapStaysConsistent) {
  const Topology topo = Topology::Tiny(256 * kMiB);
  PhysicalMemory phys(topo);
  PageTable table(phys, 0);
  Rng rng(GetParam());
  // Model: VA slot -> pfn for 4K pages in a 64MB arena.
  std::map<Addr, Pfn> model;
  const std::uint64_t slots = 16384;
  for (int step = 0; step < 5000; ++step) {
    const Addr va = rng.Uniform(slots) * kBytes4K;
    const auto it = model.find(va);
    if (it == model.end()) {
      const Pfn pfn = rng.Uniform(1 << 16);
      table.Map(va, pfn, PageSize::k4K);
      model[va] = pfn;
    } else {
      const PageTable::Mapping removed = table.Unmap(va);
      EXPECT_EQ(removed.pfn, it->second);
      model.erase(it);
    }
  }
  // Every model entry must be visible with the right pfn; probe some
  // unmapped slots too.
  for (const auto& [va, pfn] : model) {
    const auto mapping = table.Lookup(va);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_EQ(mapping->pfn, pfn);
  }
  EXPECT_EQ(table.num_mappings(PageSize::k4K), model.size());
  for (int i = 0; i < 100; ++i) {
    const Addr va = rng.Uniform(slots) * kBytes4K;
    EXPECT_EQ(table.Lookup(va).has_value(), model.count(va) == 1);
  }
  // Unmapping everything reclaims all paging structures except the root.
  while (!model.empty()) {
    table.Unmap(model.begin()->first);
    model.erase(model.begin());
  }
  EXPECT_EQ(table.table_bytes(), kBytes4K);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTablePropertyTest, ::testing::Values(3, 17, 404, 9001));

class AddressSpacePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AddressSpacePropertyTest, RandomPlacementOpsConserveFrames) {
  const Topology topo = Topology::Tiny(256 * kMiB);
  PhysicalMemory phys(topo);
  ThpState thp;
  thp.alloc_enabled = true;
  AddressSpace as(phys, topo, thp);
  Rng rng(GetParam());

  const std::uint64_t total_free_before = phys.TotalFreeBytes();
  const Addr base = as.MmapAnon(64 * kMiB, {});
  // Touch everything (mixture of 2M windows; toggling THP creates a 4K mix).
  for (Addr va = base; va < base + 64 * kMiB; va += kBytes4K) {
    thp.alloc_enabled = rng.Bernoulli(0.7);
    as.Touch(va, static_cast<int>(rng.Uniform(2)));
  }
  // Random placement churn.
  for (int step = 0; step < 2000; ++step) {
    const Addr va = base + rng.Uniform(64 * kMiB / kBytes4K) * kBytes4K;
    const auto mapping = as.Translate(va);
    ASSERT_TRUE(mapping.has_value());
    switch (rng.Uniform(3)) {
      case 0:
        as.MigratePage(mapping->page_base, static_cast<int>(rng.Uniform(2)));
        break;
      case 1:
        as.SplitLargePage(mapping->page_base);
        break;
      case 2: {
        const Addr window = AlignDown(va, kBytes2M);
        as.PromoteWindow(window, static_cast<int>(rng.Uniform(2)));
        break;
      }
    }
    // Whatever happened, the address must still translate and the mapped
    // byte count must be exact.
    ASSERT_TRUE(as.Translate(va).has_value());
    ASSERT_EQ(as.mapped_bytes(), 64 * kMiB + 0u);
  }
  // Frame conservation: free + mapped + paging structures == free before
  // mapping (the root paging frame predates the snapshot, hence +4KB).
  const std::uint64_t paging = as.page_table().table_bytes();
  EXPECT_EQ(phys.TotalFreeBytes() + as.mapped_bytes() + paging, total_free_before + kBytes4K);
  // Large-page bookkeeping agrees with the page table.
  std::uint64_t two_m_count = 0;
  as.page_table().ForEachMappingIn(base, 64 * kMiB, [&](const PageTable::Mapping& m) {
    if (m.size == PageSize::k2M) {
      ++two_m_count;
    }
  });
  EXPECT_EQ(two_m_count, as.pages_2m().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddressSpacePropertyTest, ::testing::Values(5, 23, 777));

}  // namespace
}  // namespace numalp
