// Drift gate for docs/KNOBS.md: re-extracts the knob surface from the source
// tree and fails when the document and the code disagree in either direction.
//
// Extraction rules (mirrors the documented contract in docs/KNOBS.md):
//   - An environment knob is a NUMALP_[A-Z0-9_]+ token appearing inside a
//     string literal anywhere under src/, tools/, or bench/. Unquoted uses
//     (the NUMALP_LOG macro, NUMALP_SRC_* header guards, CMake options) are
//     not env vars and are deliberately invisible to this scan.
//   - A CLI flag is a string literal whose *entire* content is --[a-z0-9-]+.
//     Flags mentioned inside longer help-text strings don't count; the
//     parser's exact-match literal is the source of truth.
//
// The reverse direction keeps the doc honest too: every `NUMALP_*` or
// `--flag` token in backticks in docs/KNOBS.md must still exist in code.
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#ifndef NUMALP_SOURCE_DIR
#error "CMake must define NUMALP_SOURCE_DIR for knobs_doc_test"
#endif

namespace {

namespace fs = std::filesystem;

bool IsEnvChar(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

bool IsFlagLiteral(const std::string& text) {
  if (text.size() < 3 || text[0] != '-' || text[1] != '-') {
    return false;
  }
  for (std::size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-')) {
      return false;
    }
  }
  return true;
}

void HarvestEnvTokens(const std::string& text, std::set<std::string>* out) {
  const std::string needle = "NUMALP_";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    std::size_t end = pos + needle.size();
    while (end < text.size() && IsEnvChar(text[end])) {
      ++end;
    }
    if (end > pos + needle.size()) {
      out->insert(text.substr(pos, end - pos));
    }
    pos = end;
  }
}

// One file's worth of string literals, honoring // and /* */ comments and
// char literals (sink.cc uses '"'). String literals never span lines in this
// codebase (no raw strings), so block-comment state is the only carry-over.
void ScanSourceFile(const fs::path& path, std::set<std::string>* env_knobs,
                    std::set<std::string>* flags) {
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "cannot open " << path;
  std::string line;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        break;  // line comment: rest of line is dead
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (c == '\'') {  // char literal: skip to its close, honoring escapes
        ++i;
        while (i < line.size() && line[i] != '\'') {
          if (line[i] == '\\') {
            ++i;
          }
          ++i;
        }
        continue;
      }
      if (c != '"') {
        continue;
      }
      std::string content;
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) {
          content += line[i + 1];
          i += 2;
        } else {
          content += line[i];
          ++i;
        }
      }
      HarvestEnvTokens(content, env_knobs);
      if (IsFlagLiteral(content)) {
        flags->insert(content);
      }
    }
  }
}

struct KnobSurface {
  std::set<std::string> env_knobs;
  std::set<std::string> flags;
};

KnobSurface ScanSourceTree() {
  KnobSurface surface;
  const fs::path root(NUMALP_SOURCE_DIR);
  for (const char* dir : {"src", "tools", "bench"}) {
    for (const auto& entry : fs::recursive_directory_iterator(root / dir)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      const std::string ext = entry.path().extension().string();
      if (ext != ".cc" && ext != ".h") {
        continue;
      }
      ScanSourceFile(entry.path(), &surface.env_knobs, &surface.flags);
    }
  }
  return surface;
}

// Backtick-delimited tokens in docs/KNOBS.md that look like knobs.
KnobSurface ScanKnobsDoc(const fs::path& doc) {
  KnobSurface surface;
  std::ifstream in(doc);
  EXPECT_TRUE(in.is_open()) << "cannot open " << doc;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::size_t pos = 0;
  while ((pos = text.find('`', pos)) != std::string::npos) {
    const std::size_t close = text.find('`', pos + 1);
    if (close == std::string::npos) {
      break;
    }
    const std::string token = text.substr(pos + 1, close - pos - 1);
    if (token.rfind("NUMALP_", 0) == 0) {
      std::set<std::string> exact;
      HarvestEnvTokens(token, &exact);
      // Only whole-token matches (`NUMALP_*` wildcard prose doesn't count).
      if (exact.size() == 1 && *exact.begin() == token) {
        surface.env_knobs.insert(token);
      }
    } else if (IsFlagLiteral(token)) {
      surface.flags.insert(token);
    }
    pos = close + 1;
  }
  return surface;
}

fs::path DocPath() { return fs::path(NUMALP_SOURCE_DIR) / "docs" / "KNOBS.md"; }

std::string Join(const std::set<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) {
      out += ", ";
    }
    out += item;
  }
  return out;
}

TEST(KnobsDoc, DocumentExists) {
  ASSERT_TRUE(fs::exists(DocPath()))
      << "docs/KNOBS.md is missing; every runtime knob must be documented "
         "there (see the file header for the extraction contract)";
}

TEST(KnobsDoc, ScannerFindsTheKnownSurface) {
  // Canary against a silently broken scanner: these knobs have existed since
  // the surfaces were introduced and a scan that misses them is wrong.
  const KnobSurface source = ScanSourceTree();
  EXPECT_TRUE(source.env_knobs.count("NUMALP_MAX_EPOCHS"));
  EXPECT_TRUE(source.env_knobs.count("NUMALP_REFERENCE_PIPELINE"));
  EXPECT_TRUE(source.env_knobs.count("NUMALP_FAULT_PROFILE"));
  EXPECT_TRUE(source.flags.count("--jobs"));
  EXPECT_TRUE(source.flags.count("--machine"));
  EXPECT_TRUE(source.flags.count("--from-summary"));
  EXPECT_GE(source.env_knobs.size(), 15u);
  EXPECT_GE(source.flags.size(), 30u);
}

TEST(KnobsDoc, EveryEnvKnobIsDocumented) {
  const KnobSurface source = ScanSourceTree();
  const KnobSurface doc = ScanKnobsDoc(DocPath());
  std::set<std::string> missing;
  for (const auto& knob : source.env_knobs) {
    if (!doc.env_knobs.count(knob)) {
      missing.insert(knob);
    }
  }
  EXPECT_TRUE(missing.empty())
      << "env knobs in source but not in docs/KNOBS.md: " << Join(missing);
}

TEST(KnobsDoc, EveryFlagIsDocumented) {
  const KnobSurface source = ScanSourceTree();
  const KnobSurface doc = ScanKnobsDoc(DocPath());
  std::set<std::string> missing;
  for (const auto& flag : source.flags) {
    if (!doc.flags.count(flag)) {
      missing.insert(flag);
    }
  }
  EXPECT_TRUE(missing.empty())
      << "CLI flags in source but not in docs/KNOBS.md: " << Join(missing);
}

TEST(KnobsDoc, NoStaleEnvKnobsInDoc) {
  const KnobSurface source = ScanSourceTree();
  const KnobSurface doc = ScanKnobsDoc(DocPath());
  std::set<std::string> stale;
  for (const auto& knob : doc.env_knobs) {
    if (!source.env_knobs.count(knob)) {
      stale.insert(knob);
    }
  }
  EXPECT_TRUE(stale.empty())
      << "docs/KNOBS.md documents env knobs that no longer exist: "
      << Join(stale);
}

TEST(KnobsDoc, NoStaleFlagsInDoc) {
  const KnobSurface source = ScanSourceTree();
  const KnobSurface doc = ScanKnobsDoc(DocPath());
  std::set<std::string> stale;
  for (const auto& flag : doc.flags) {
    if (!source.flags.count(flag)) {
      stale.insert(flag);
    }
  }
  EXPECT_TRUE(stale.empty())
      << "docs/KNOBS.md documents CLI flags that no longer exist: "
      << Join(stale);
}

}  // namespace
