// ExperimentRunner regression tests: the parallel grid must be a pure
// function of its declaration — identical RunResults at any jobs value, grid
// indexing that matches standalone Simulations, and summaries that reproduce
// the historical serial ComparePolicies arithmetic.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/experiment.h"
#include "src/core/runner.h"
#include "src/core/simulation.h"
#include "src/report/collector.h"
#include "src/report/sink.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace numalp {
namespace {

SimConfig TinySim() {
  SimConfig sim;
  sim.max_epochs = 6;
  sim.accesses_per_thread_per_epoch = 1024;
  return sim;
}

// Field-by-field bit-exact comparison of the results benches consume.
void ExpectIdentical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.machine, b.machine);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.measured_cycles, b.measured_cycles);
  EXPECT_EQ(a.total_migrations, b.total_migrations);
  EXPECT_EQ(a.total_splits, b.total_splits);
  EXPECT_EQ(a.total_promotions, b.total_promotions);
  EXPECT_EQ(a.total_policy_overhead, b.total_policy_overhead);
  EXPECT_EQ(a.final_thp_coverage, b.final_thp_coverage);
  EXPECT_EQ(a.LarPct(), b.LarPct());
  EXPECT_EQ(a.ImbalancePct(), b.ImbalancePct());
  EXPECT_EQ(a.PamupPct(), b.PamupPct());
  EXPECT_EQ(a.Nhp(), b.Nhp());
  EXPECT_EQ(a.PspPct(), b.PspPct());
  EXPECT_EQ(a.WalkL2MissFrac(), b.WalkL2MissFrac());
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].wall, b.history[i].wall);
    EXPECT_EQ(a.history[i].policy_overhead, b.history[i].policy_overhead);
    EXPECT_EQ(a.history[i].migrations, b.history[i].migrations);
    EXPECT_EQ(a.history[i].splits, b.history[i].splits);
    EXPECT_EQ(a.history[i].promotions, b.history[i].promotions);
    EXPECT_EQ(a.history[i].metrics.lar_pct, b.history[i].metrics.lar_pct);
    EXPECT_EQ(a.history[i].metrics.imbalance_pct, b.history[i].metrics.imbalance_pct);
  }
  ASSERT_EQ(a.core_totals.size(), b.core_totals.size());
  for (std::size_t i = 0; i < a.core_totals.size(); ++i) {
    EXPECT_EQ(a.core_totals[i].accesses, b.core_totals[i].accesses);
    EXPECT_EQ(a.core_totals[i].dram_local, b.core_totals[i].dram_local);
    EXPECT_EQ(a.core_totals[i].dram_remote, b.core_totals[i].dram_remote);
    EXPECT_EQ(a.core_totals[i].fault_cycles, b.core_totals[i].fault_cycles);
  }
}

ExperimentGrid TestGrid() {
  ExperimentGrid grid;
  grid.machines = {Topology::Tiny(), Topology::MachineA()};
  grid.workloads = {BenchmarkId::kCG_D, BenchmarkId::kWC};
  grid.policies = {PolicyKind::kLinux4K, PolicyKind::kThp, PolicyKind::kCarrefourLp};
  grid.num_seeds = 2;
  grid.sim = TinySim();
  return grid;
}

TEST(ExperimentRunnerTest, CellSeedMatchesHistoricalDerivation) {
  EXPECT_EQ(CellSeed(42, 0), 42u);
  EXPECT_EQ(CellSeed(42, 1), 42u + 7919u);
  EXPECT_EQ(CellSeed(42, 3), 42u + 3u * 7919u);
}

TEST(ExperimentRunnerTest, JobsDefaultsToAtLeastOne) {
  EXPECT_GE(ExperimentRunner(0).jobs(), 1);
  EXPECT_EQ(ExperimentRunner(5).jobs(), 5);
}

// The acceptance-criteria regression: a grid run with jobs=1 and jobs=8
// produces bit-identical RunResults for every cell.
TEST(ExperimentRunnerTest, GridIsDeterministicAcrossJobCounts) {
  const ExperimentGrid grid = TestGrid();
  const GridResults serial = RunGrid(grid, ExperimentRunner(1));
  const GridResults parallel = RunGrid(grid, ExperimentRunner(8));
  for (int m = 0; m < serial.num_machines(); ++m) {
    for (int w = 0; w < serial.num_workloads(); ++w) {
      for (int s = 0; s < serial.num_seeds(); ++s) {
        ExpectIdentical(serial.Baseline(m, w, s), parallel.Baseline(m, w, s));
        for (int p = 0; p < serial.num_policies(); ++p) {
          ExpectIdentical(serial.At(m, w, p, s), parallel.At(m, w, p, s));
        }
      }
    }
  }
}

// End-to-end determinism across the jobs x shards x profile-mode matrix, at
// the artifact level: the streamed JSONL a bench would write must be
// byte-identical no matter how many grid workers or intra-cell shards ran
// it, and no matter whether the profiler kept exact aggregates or ran the
// sketch admission front end at its bit-identical default threshold (the
// oracle CI job diffs exactly this, at full grid scale). The grid adds UA.B
// — the false-sharing cell whose demotion/hinting path is the historically
// fragile one — on top of TestGrid's CG.D and WC.
TEST(ExperimentRunnerTest, GridJsonlIsByteIdenticalAcrossJobsShardsAndProfileModes) {
  const auto render = [](int jobs, int shards, ProfileMode mode) {
    ExperimentGrid grid = TestGrid();
    grid.workloads.push_back(BenchmarkId::kUA_B);
    grid.sim.shards = shards;
    grid.sim.shards_force = true;  // real worker threads even on a busy host
    grid.sim.profile_mode = mode;
    std::ostringstream out;
    {
      report::GridReport report(std::make_unique<report::JsonlSink>(out), "runner_test", jobs);
      report.Run(grid);
    }
    return out.str();
  };
  const std::string golden = render(/*jobs=*/1, /*shards=*/1, ProfileMode::kExact);
  EXPECT_FALSE(golden.empty());
  for (const int jobs : {1, 8}) {
    for (const int shards : {1, 4}) {
      for (const ProfileMode mode : {ProfileMode::kExact, ProfileMode::kSketch}) {
        if (jobs == 1 && shards == 1 && mode == ProfileMode::kExact) {
          continue;
        }
        EXPECT_EQ(render(jobs, shards, mode), golden)
            << "jobs " << jobs << " shards " << shards << " profile "
            << NameOf(mode);
      }
    }
  }
}

TEST(ExperimentRunnerTest, RunSpecResultsArePositional) {
  const Topology topo = Topology::Tiny();
  const WorkloadSpec spec = MakeWorkloadSpec(BenchmarkId::kWC, topo);
  std::vector<RunSpec> cells;
  for (PolicyKind kind : {PolicyKind::kLinux4K, PolicyKind::kThp, PolicyKind::kCarrefourLp}) {
    RunSpec cell;
    cell.topo = topo;
    cell.workload = spec;
    cell.policy = MakePolicyConfig(kind);
    cell.sim = TinySim();
    cells.push_back(cell);
  }
  const std::vector<RunResult> results = ExperimentRunner(4).Run(cells);
  ASSERT_EQ(results.size(), cells.size());
  EXPECT_EQ(results[0].policy, PolicyKind::kLinux4K);
  EXPECT_EQ(results[1].policy, PolicyKind::kThp);
  EXPECT_EQ(results[2].policy, PolicyKind::kCarrefourLp);
}

// Grid cells match standalone Simulations built from the same coordinates.
TEST(ExperimentRunnerTest, GridCellsMatchStandaloneSimulations) {
  ExperimentGrid grid;
  grid.machines = {Topology::Tiny()};
  grid.workloads = {BenchmarkId::kWC};
  grid.policies = {PolicyKind::kThp};
  grid.num_seeds = 2;
  grid.sim = TinySim();
  const GridResults results = RunGrid(grid, ExperimentRunner(4));

  for (int s = 0; s < 2; ++s) {
    SimConfig seeded = grid.sim;
    seeded.seed = CellSeed(grid.sim.seed, s);
    Simulation expected(grid.machines[0], MakeWorkloadSpec(BenchmarkId::kWC, grid.machines[0]),
                        MakePolicyConfig(PolicyKind::kThp), seeded);
    ExpectIdentical(results.At(0, 0, 0, s), expected.Run());
  }
}

// A requested Linux-4K column aliases the baseline cells instead of
// rerunning them (simulations are deterministic, so sharing is exact).
TEST(ExperimentRunnerTest, Linux4KColumnSharesBaseline) {
  ExperimentGrid grid;
  grid.machines = {Topology::Tiny()};
  grid.workloads = {BenchmarkId::kWC};
  grid.policies = {PolicyKind::kLinux4K, PolicyKind::kThp};
  grid.num_seeds = 2;
  grid.sim = TinySim();
  const GridResults results = RunGrid(grid, ExperimentRunner(2));
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(&results.At(0, 0, 0, s), &results.Baseline(0, 0, s));
  }
  const PolicySummary baseline_summary = results.Summarize(0, 0, 0);
  EXPECT_EQ(baseline_summary.kind, PolicyKind::kLinux4K);
  EXPECT_EQ(baseline_summary.mean_improvement_pct, 0.0);
}

// Summaries reproduce the historical serial arithmetic: accumulate in
// ascending seed order, then divide once.
TEST(ExperimentRunnerTest, SummarizeMatchesManualAggregation) {
  ExperimentGrid grid;
  grid.machines = {Topology::Tiny()};
  grid.workloads = {BenchmarkId::kCG_D};
  grid.policies = {PolicyKind::kThp};
  grid.num_seeds = 3;
  grid.sim = TinySim();
  const GridResults results = RunGrid(grid, ExperimentRunner(8));
  const PolicySummary summary = results.Summarize(0, 0, 0);

  double mean = 0.0;
  double lar = 0.0;
  for (int s = 0; s < 3; ++s) {
    mean += ImprovementPct(results.Baseline(0, 0, s), results.At(0, 0, 0, s));
    lar += results.At(0, 0, 0, s).LarPct();
  }
  // The aggregation multiplies by the reciprocal (as the historical serial
  // code did), which is not bitwise `x / 3.0` — assert the exact arithmetic.
  const double inv = 1.0 / 3.0;
  EXPECT_EQ(summary.mean_improvement_pct, mean * inv);
  EXPECT_EQ(summary.lar_pct, lar * inv);
  EXPECT_EQ(summary.representative.total_cycles, results.At(0, 0, 0, 0).total_cycles);
}

// ComparePolicies is a thin wrapper over the grid: same summaries either way.
TEST(ExperimentRunnerTest, ComparePoliciesMatchesGrid) {
  const Topology topo = Topology::Tiny();
  const std::vector<PolicyKind> policies = {PolicyKind::kLinux4K, PolicyKind::kCarrefourLp};
  const SimConfig sim = TinySim();
  const auto summaries = ComparePolicies(topo, BenchmarkId::kWC, policies, sim,
                                         /*num_seeds=*/2, ExperimentRunner(4));

  ExperimentGrid grid;
  grid.machines = {topo};
  grid.workloads = {BenchmarkId::kWC};
  grid.policies = policies;
  grid.num_seeds = 2;
  grid.sim = sim;
  const auto expected = RunGrid(grid, ExperimentRunner(1)).SummarizeAll(0, 0);
  ASSERT_EQ(summaries.size(), expected.size());
  for (std::size_t p = 0; p < summaries.size(); ++p) {
    EXPECT_EQ(summaries[p].kind, expected[p].kind);
    EXPECT_EQ(summaries[p].mean_improvement_pct, expected[p].mean_improvement_pct);
    EXPECT_EQ(summaries[p].lar_pct, expected[p].lar_pct);
    EXPECT_EQ(summaries[p].overhead_frac, expected[p].overhead_frac);
  }
}

TEST(ExperimentRunnerTest, EnvOverridesParsePositiveValues) {
  SimConfig sim;
  const int default_epochs = sim.max_epochs;
  ASSERT_EQ(unsetenv("NUMALP_MAX_EPOCHS"), 0);
  EXPECT_EQ(WithEnvOverrides(sim).max_epochs, default_epochs);
  ASSERT_EQ(setenv("NUMALP_MAX_EPOCHS", "7", 1), 0);
  EXPECT_EQ(WithEnvOverrides(sim).max_epochs, 7);
  ASSERT_EQ(setenv("NUMALP_MAX_EPOCHS", "-3", 1), 0);
  EXPECT_EQ(WithEnvOverrides(sim).max_epochs, default_epochs);
  ASSERT_EQ(unsetenv("NUMALP_MAX_EPOCHS"), 0);
}

TEST(ExperimentRunnerTest, ProfileModeEnvOverrides) {
  SimConfig sim;
  ASSERT_EQ(unsetenv("NUMALP_PROFILE_MODE"), 0);
  EXPECT_EQ(WithEnvOverrides(sim).profile_mode, ProfileMode::kExact);
  ASSERT_EQ(setenv("NUMALP_PROFILE_MODE", "sketch", 1), 0);
  EXPECT_EQ(WithEnvOverrides(sim).profile_mode, ProfileMode::kSketch);
  ASSERT_EQ(setenv("NUMALP_PROFILE_MODE", "bogus", 1), 0);
  EXPECT_EQ(WithEnvOverrides(sim).profile_mode, ProfileMode::kExact);
  ASSERT_EQ(setenv("NUMALP_PROFILE_THRESHOLD", "3", 1), 0);
  ASSERT_EQ(setenv("NUMALP_PROFILE_FILTER_CAPACITY", "4096", 1), 0);
  const SimConfig overridden = WithEnvOverrides(sim);
  EXPECT_EQ(overridden.profile_sketch.admit_threshold, 3u);
  EXPECT_EQ(overridden.profile_sketch.filter_capacity, 4096u);
  ASSERT_EQ(unsetenv("NUMALP_PROFILE_MODE"), 0);
  ASSERT_EQ(unsetenv("NUMALP_PROFILE_THRESHOLD"), 0);
  ASSERT_EQ(unsetenv("NUMALP_PROFILE_FILTER_CAPACITY"), 0);
}

}  // namespace
}  // namespace numalp
