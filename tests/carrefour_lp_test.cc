#include <gtest/gtest.h>

#include "src/core/carrefour_lp.h"
#include "src/core/config.h"

namespace numalp {
namespace {

PageAgg SharedLargePage(std::uint64_t samples, int sharers, PageSize size = PageSize::k2M) {
  PageAgg agg;
  agg.size = size;
  agg.total = samples;
  agg.dram = samples;
  agg.home_node = 0;
  agg.req_node_counts[0] = static_cast<std::uint32_t>(samples / 2);
  agg.req_node_counts[1] = static_cast<std::uint32_t>(samples - samples / 2);
  agg.core_mask = (1ull << sharers) - 1;
  return agg;
}

class CarrefourLpTest : public ::testing::Test {
 protected:
  // These tests pin the paper's literal Algorithm 1 semantics (immediate
  // engage/disengage, sticky flag, flat demotion cap) — the ablation
  // baseline the cost/decision model layers on. The redesigned model has
  // its own suite in carrefour_lp_model_test.cc.
  static PolicyConfig Algorithm1Config() {
    PolicyConfig config = MakePolicyConfig(PolicyKind::kCarrefourLp);
    config.lp_model = LpModelConfig::Algorithm1();
    return config;
  }

  CarrefourLpTest() : config_(Algorithm1Config()), lp_(config_, thp_) {
    thp_.alloc_enabled = true;
    thp_.promote_enabled = true;
  }

  LpObservation Observe(double walk_frac, double fault_share, double current, double carrefour,
                        double split, const PageAggMap& pages) {
    LpObservation obs;
    obs.walk_l2_miss_frac = walk_frac;
    obs.max_fault_time_share = fault_share;
    obs.lar.current_pct = current;
    obs.lar.carrefour_pct = carrefour;
    obs.lar.carrefour_split_pct = split;
    obs.mapping_pages = &pages;
    return obs;
  }

  ThpState thp_;
  PolicyConfig config_;
  CarrefourLp lp_;
  PageAggMap empty_;
};

TEST_F(CarrefourLpTest, ConservativeEnablesBothOnTlbPressure) {
  thp_.alloc_enabled = false;
  thp_.promote_enabled = false;
  lp_.Step(Observe(/*walk=*/0.10, /*fault=*/0.0, 50, 55, 55, empty_));
  EXPECT_TRUE(thp_.alloc_enabled);
  EXPECT_TRUE(thp_.promote_enabled);
}

TEST_F(CarrefourLpTest, ConservativeEnablesAllocOnlyOnFaultPressure) {
  thp_.alloc_enabled = false;
  thp_.promote_enabled = false;
  // Algorithm 1 lines 7-8: pages already faulted gain nothing from promotion.
  lp_.Step(Observe(/*walk=*/0.0, /*fault=*/0.10, 50, 55, 55, empty_));
  EXPECT_TRUE(thp_.alloc_enabled);
  EXPECT_FALSE(thp_.promote_enabled);
}

TEST_F(CarrefourLpTest, ConservativeIdleBelowThresholds) {
  thp_.alloc_enabled = false;
  thp_.promote_enabled = false;
  lp_.Step(Observe(0.01, 0.01, 90, 91, 91, empty_));
  EXPECT_FALSE(thp_.alloc_enabled);
  EXPECT_FALSE(thp_.promote_enabled);
}

TEST_F(CarrefourLpTest, MigrationGainSuppressesSplitting) {
  PageAggMap pages;
  pages[0] = SharedLargePage(20, 4);
  // Carrefour alone promises +20 points: no split (line 10-11).
  const LpDecision decision = lp_.Step(Observe(0.1, 0.0, 40, 60, 70, pages));
  EXPECT_FALSE(decision.split_pages_flag);
  EXPECT_TRUE(decision.split_shared.empty());
  EXPECT_TRUE(thp_.alloc_enabled);
}

TEST_F(CarrefourLpTest, SplitGainTriggersSharedDemotion) {
  PageAggMap pages;
  pages[0] = SharedLargePage(20, 4);
  pages[kBytes2M] = SharedLargePage(20, 1);  // single-sharer page: not split
  // Carrefour alone: +5 (below 15). Splitting: +10 (above 5) -> split.
  const LpDecision decision = lp_.Step(Observe(0.1, 0.0, 40, 45, 50, pages));
  EXPECT_TRUE(decision.split_pages_flag);
  ASSERT_EQ(decision.split_shared.size(), 1u);
  EXPECT_EQ(decision.split_shared[0].first, 0u);
  EXPECT_FALSE(thp_.alloc_enabled);  // line 17
}

TEST_F(CarrefourLpTest, SplitFlagStickyUntilMigrationGainReturns) {
  PageAggMap pages;
  pages[0] = SharedLargePage(20, 4);
  lp_.Step(Observe(0.0, 0.0, 40, 45, 50, pages));  // sets SPLIT_PAGES
  EXPECT_TRUE(lp_.split_pages_flag());
  // Neither condition fires: the flag keeps its value (Algorithm 1 keeps
  // SPLIT_PAGES state across iterations).
  lp_.Step(Observe(0.0, 0.0, 40, 42, 41, pages));
  EXPECT_TRUE(lp_.split_pages_flag());
  // Migration gain returns: flag clears.
  lp_.Step(Observe(0.0, 0.0, 40, 60, 41, pages));
  EXPECT_FALSE(lp_.split_pages_flag());
}

TEST_F(CarrefourLpTest, HotPagesAlwaysSplit) {
  PageAggMap pages;
  pages[0] = SharedLargePage(95, 4);      // 95% of samples: hot
  pages[kBytes2M] = SharedLargePage(5, 4);  // 5%: below the 6% bar
  // No split-gain; migration gain high (no shared demotion)...
  const LpDecision decision = lp_.Step(Observe(0.0, 0.0, 40, 60, 41, pages));
  // ...but the hot page is split and interleaved regardless (line 19).
  ASSERT_EQ(decision.split_hot.size(), 1u);
  EXPECT_EQ(decision.split_hot[0].first, 0u);
}

TEST_F(CarrefourLpTest, SmallPagesNeverListed) {
  PageAggMap pages;
  PageAgg small = SharedLargePage(100, 4);
  small.size = PageSize::k4K;
  pages[0] = small;
  const LpDecision decision = lp_.Step(Observe(0.0, 0.0, 40, 45, 50, pages));
  EXPECT_TRUE(decision.split_shared.empty());
  EXPECT_TRUE(decision.split_hot.empty());
}

TEST_F(CarrefourLpTest, SharedSplitRateLimit) {
  PolicyConfig config = Algorithm1Config();
  config.max_shared_splits_per_epoch = 4;
  ThpState thp;
  thp.alloc_enabled = true;
  CarrefourLp lp(config, thp);
  PageAggMap pages;
  for (int i = 0; i < 20; ++i) {
    pages[static_cast<Addr>(i) * kBytes2M] = SharedLargePage(10, 3);
  }
  LpObservation obs;
  obs.lar.current_pct = 40;
  obs.lar.carrefour_pct = 45;
  obs.lar.carrefour_split_pct = 60;
  obs.mapping_pages = &pages;
  const LpDecision decision = lp.Step(obs);
  EXPECT_EQ(decision.split_shared.size(), 4u);
}

TEST_F(CarrefourLpTest, OneGigHotPageSplit) {
  PageAggMap pages;
  pages[0] = SharedLargePage(100, 8, PageSize::k1G);
  const LpDecision decision = lp_.Step(Observe(0.0, 0.0, 20, 25, 27, pages));
  ASSERT_EQ(decision.split_hot.size(), 1u);
  EXPECT_EQ(decision.split_hot[0].second, PageSize::k1G);
}

TEST_F(CarrefourLpTest, ComponentsDisabledByPolicyKind) {
  // Carrefour-2M: no LP components; reactive-only: no conservative.
  const PolicyConfig c2m = MakePolicyConfig(PolicyKind::kCarrefour2M);
  EXPECT_FALSE(c2m.use_reactive);
  EXPECT_FALSE(c2m.use_conservative);
  const PolicyConfig reactive = MakePolicyConfig(PolicyKind::kReactiveOnly);
  EXPECT_TRUE(reactive.use_reactive);
  EXPECT_FALSE(reactive.use_conservative);
  const PolicyConfig conservative = MakePolicyConfig(PolicyKind::kConservativeOnly);
  EXPECT_FALSE(conservative.initial_thp_alloc);  // starts with 4KB pages
  EXPECT_TRUE(conservative.use_conservative);
  const PolicyConfig lp = MakePolicyConfig(PolicyKind::kCarrefourLp);
  EXPECT_TRUE(lp.initial_thp_alloc);  // Section 3.2: enable large pages first
  EXPECT_TRUE(lp.use_carrefour && lp.use_reactive && lp.use_conservative);
}

}  // namespace
}  // namespace numalp
