#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/common/zipf.h"

namespace numalp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.Uniform(8)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng forked = a.Fork();
  EXPECT_NE(a.NextU64(), forked.NextU64());
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 0.9);
  double total = 0.0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    total += zipf.Pmf(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotonicallyDecreasing) {
  ZipfSampler zipf(1000, 0.8);
  for (std::uint64_t i = 1; i < 1000; ++i) {
    EXPECT_LE(zipf.Pmf(i), zipf.Pmf(i - 1) + 1e-12);
  }
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfSampler zipf(50, 0.0);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(zipf.Pmf(i), 1.0 / 50, 1e-9);
  }
}

TEST(ZipfTest, SampleMatchesPmf) {
  ZipfSampler zipf(16, 1.0);
  Rng rng(17);
  std::vector<int> counts(16, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), zipf.Pmf(i), 0.01);
  }
}

TEST(ZipfTest, HighSkewConcentratesOnHead) {
  ZipfSampler zipf(10000, 1.2);
  Rng rng(23);
  int head = 0;
  for (int i = 0; i < 10000; ++i) {
    if (zipf.Sample(rng) < 100) {
      ++head;
    }
  }
  EXPECT_GT(head, 5000);
}

TEST(StatsTest, RunningStatBasics) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stat.Add(x);
  }
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(StatsTest, EmptyStatIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.stddev(), 0.0);
}

TEST(StatsTest, ImbalanceOfBalancedLoadIsZero) {
  const std::vector<std::uint64_t> balanced{100, 100, 100, 100};
  EXPECT_DOUBLE_EQ(ImbalancePct(std::span<const std::uint64_t>(balanced)), 0.0);
}

TEST(StatsTest, ImbalanceOfSingleHotNode) {
  // One node takes all traffic on a 4-node machine: stddev/mean = sqrt(3).
  const std::vector<std::uint64_t> skewed{400, 0, 0, 0};
  EXPECT_NEAR(ImbalancePct(std::span<const std::uint64_t>(skewed)), 173.2, 0.1);
}

TEST(StatsTest, ImbalanceEmptyIsZero) {
  const std::vector<std::uint64_t> empty;
  EXPECT_DOUBLE_EQ(ImbalancePct(std::span<const std::uint64_t>(empty)), 0.0);
}

TEST(StatsTest, PercentileExact) {
  const std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 5.5);
}

TEST(StatsTest, HistogramBucketsAndClamping) {
  Histogram histogram(0.0, 10.0, 5);
  histogram.Add(-1.0);  // clamps to bucket 0
  histogram.Add(0.5);
  histogram.Add(9.9);
  histogram.Add(42.0);  // clamps to last bucket
  EXPECT_EQ(histogram.total(), 4u);
  EXPECT_EQ(histogram.bucket_count(0), 2u);
  EXPECT_EQ(histogram.bucket_count(4), 2u);
  EXPECT_DOUBLE_EQ(histogram.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(histogram.bucket_hi(1), 4.0);
}

TEST(UnitsTest, PageSizeHelpers) {
  EXPECT_EQ(BytesOf(PageSize::k4K), 4096u);
  EXPECT_EQ(BytesOf(PageSize::k2M), 2u * 1024 * 1024);
  EXPECT_EQ(BytesOf(PageSize::k1G), 1024u * 1024 * 1024);
  EXPECT_EQ(OrderOf(PageSize::k4K), 0);
  EXPECT_EQ(OrderOf(PageSize::k2M), 9);
  EXPECT_EQ(OrderOf(PageSize::k1G), 18);
  EXPECT_EQ(NameOf(PageSize::k2M), "2M");
}

TEST(UnitsTest, Alignment) {
  EXPECT_EQ(AlignDown(0x201234, kBytes2M), 0x200000u);
  EXPECT_EQ(AlignUp(0x201234, kBytes2M), 0x400000u);
  EXPECT_TRUE(IsAligned(0x400000, kBytes2M));
  EXPECT_FALSE(IsAligned(0x400001, kBytes2M));
  EXPECT_EQ(AlignUp(0x400000, kBytes2M), 0x400000u);
}

// Property sweep: Uniform(bound) stays in range and hits both halves for a
// variety of bounds and seeds.
class RngPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngPropertyTest, UniformInRangeAndSpread) {
  Rng rng(GetParam());
  for (std::uint64_t bound : {2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    bool low = false;
    bool high = false;
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t x = rng.Uniform(bound);
      ASSERT_LT(x, bound);
      low = low || x < bound / 2 + 1;
      high = high || x >= bound / 2;
    }
    EXPECT_TRUE(low);
    EXPECT_TRUE(high);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngPropertyTest,
                         ::testing::Values(1, 2, 3, 99, 12345, 0xdeadbeef));

}  // namespace
}  // namespace numalp
