// Fault injection + runner resilience tests (DESIGN.md Section 12): the
// fault schedule must be a pure function of (config, seed) — byte-identical
// JSONL across jobs x shards x engine under an active profile — the
// Carrefour retry/backoff/abandon state machine must follow its documented
// transitions, a resumed grid must reproduce an uninterrupted run's files
// byte-for-byte, and faults=off must stay inert.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/carrefour/carrefour.h"
#include "src/core/config.h"
#include "src/core/faults.h"
#include "src/core/runner.h"
#include "src/core/simulation.h"
#include "src/mem/phys_mem.h"
#include "src/report/collector.h"
#include "src/report/options.h"
#include "src/report/sink.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace numalp {
namespace {

namespace fs = std::filesystem;

SimConfig TinySim() {
  SimConfig sim;
  sim.max_epochs = 8;
  sim.accesses_per_thread_per_epoch = 1024;
  return sim;
}

// The fault_grace shape at unit-test scale: per (profile, seed) one Linux-4K
// baseline followed by THP and Carrefour-LP cells against it, all rows
// variant-tagged with the profile name.
void BuildFaultCells(const std::vector<FaultProfile>& profiles, int seeds,
                     const SimConfig& base_sim, std::vector<RunSpec>* cells,
                     std::vector<report::GridReport::CellMeta>* meta) {
  const Topology topo = Topology::Tiny();
  for (const FaultProfile profile : profiles) {
    const std::string variant = std::string("faults=") + std::string(NameOf(profile));
    for (int s = 0; s < seeds; ++s) {
      RunSpec base;
      base.topo = topo;
      base.workload = MakeWorkloadSpec(BenchmarkId::kCG_D, topo);
      base.policy = MakePolicyConfig(PolicyKind::kLinux4K);
      base.sim = base_sim;
      base.sim.seed = 42 + static_cast<std::uint64_t>(s);
      base.sim.faults.profile = profile;
      const int baseline = static_cast<int>(cells->size());
      cells->push_back(base);
      meta->push_back({variant, -1, s});
      for (const PolicyKind kind : {PolicyKind::kThp, PolicyKind::kCarrefourLp}) {
        RunSpec cell = base;
        cell.policy = MakePolicyConfig(kind);
        cells->push_back(cell);
        meta->push_back({variant, baseline, s});
      }
    }
  }
}

std::string RenderFaultCells(const std::vector<FaultProfile>& profiles, int jobs,
                             int shards, bool reference_pipeline) {
  SimConfig sim = TinySim();
  sim.shards = shards;
  sim.shards_force = true;  // real worker threads even on a busy host
  sim.reference_pipeline = reference_pipeline;
  std::vector<RunSpec> cells;
  std::vector<report::GridReport::CellMeta> meta;
  BuildFaultCells(profiles, /*seeds=*/2, sim, &cells, &meta);
  std::ostringstream out;
  {
    report::GridReport report(std::make_unique<report::JsonlSink>(out), "faults_test",
                              jobs);
    report.RunCells(cells, meta);
  }
  return out.str();
}

// The acceptance matrix: under active fault profiles the streamed JSONL is
// byte-identical at every jobs x shards combination and under both engines.
// All FaultPlan draws happen at serial points of the epoch loop, so the
// schedule cannot depend on how the work was parallelized.
TEST(FaultDeterminismTest, JsonlByteIdenticalAcrossJobsShardsAndEngines) {
  const std::vector<FaultProfile> profiles = {FaultProfile::kFrag,
                                              FaultProfile::kChurn};
  const std::string golden =
      RenderFaultCells(profiles, /*jobs=*/1, /*shards=*/1, /*reference=*/false);
  EXPECT_FALSE(golden.empty());
  // The fault machinery must actually be active in the golden, or the matrix
  // proves nothing: the frag profile pre-fragments every node's buddy lists.
  EXPECT_NE(golden.find("\"variant\":\"faults=frag\""), std::string::npos);
  EXPECT_EQ(golden.find("\"frag_index_pct\":0,"), std::string::npos);
  for (const int jobs : {1, 8}) {
    for (const int shards : {1, 4}) {
      for (const bool reference : {false, true}) {
        if (jobs == 1 && shards == 1 && !reference) {
          continue;
        }
        EXPECT_EQ(RenderFaultCells(profiles, jobs, shards, reference), golden)
            << "jobs " << jobs << " shards " << shards << " reference "
            << reference;
      }
    }
  }
}

// faults=off is the default-constructed config and must stay inert: rate
// overrides without a profile change nothing, every fault counter stays
// zero, and the bytes match a run that never heard of fault injection.
TEST(FaultDeterminismTest, OffProfileIsByteIdenticalAndInert) {
  const std::string plain =
      RenderFaultCells({FaultProfile::kOff}, /*jobs=*/1, /*shards=*/1, false);

  SimConfig sim = TinySim();
  sim.faults.alloc_fail_pct = 50.0;  // rates without a profile are inert
  sim.faults.migrate_fail_pct = 50.0;
  sim.faults.large_migrate_fail_pct = 50.0;
  sim.faults.pressure_pct = 50.0;
  ASSERT_FALSE(sim.faults.enabled());
  std::vector<RunSpec> cells;
  std::vector<report::GridReport::CellMeta> meta;
  BuildFaultCells({FaultProfile::kOff}, /*seeds=*/2, sim, &cells, &meta);
  std::ostringstream out;
  std::vector<RunResult> results;
  {
    report::GridReport report(std::make_unique<report::JsonlSink>(out), "faults_test",
                              1);
    results = report.RunCells(cells, meta);
  }
  EXPECT_EQ(out.str(), plain);
  for (const RunResult& result : results) {
    EXPECT_EQ(result.status, "ok");
    EXPECT_EQ(result.fault_alloc_failures, 0u);
    EXPECT_EQ(result.fault_migration_failures, 0u);
    EXPECT_EQ(result.fault_truncated_plans, 0u);
    EXPECT_EQ(result.fault_pressure_epochs, 0u);
    EXPECT_EQ(result.thp_fallback_faults, 0u);
  }
}

// --- FaultPlan unit behavior ------------------------------------------------

namespace {

// How many order-9 allocations the machine could serve right now: free
// blocks at order 9 plus higher-order blocks, each worth 2^(order-9)
// order-9 pieces. (Fresh memory sits fully coalesced at high orders, so
// counting order-9 free-list entries alone would read 0 before pinning.)
std::uint64_t Order9Capacity(const PhysicalMemory& phys) {
  std::uint64_t capacity = 0;
  for (int node = 0; node < phys.num_nodes(); ++node) {
    for (int order = 9; order <= kMaxOrder; ++order) {
      capacity += phys.node_allocator(node).FreeBlocksOfOrder(order)
                  << (order - 9);
    }
  }
  return capacity;
}

}  // namespace

TEST(FaultPlanTest, FragPrepareFragmentsBuddyLists) {
  PhysicalMemory phys(Topology::Tiny());
  const std::uint64_t before = Order9Capacity(phys);
  FaultConfig config;
  config.profile = FaultProfile::kFrag;
  FaultPlan plan(config, /*seed=*/42);
  plan.Prepare(phys);
  const std::uint64_t after = Order9Capacity(phys);
  // Pinning one frame inside a chunk destroys that chunk's order-9 block.
  EXPECT_LT(after, before);
  EXPECT_GT(after, 0u);  // scarce, not absent: some chunks stay whole
}

TEST(FaultPlanTest, LargeMigrationsFailFarMoreOftenThanSmall) {
  FaultConfig config;
  config.profile = FaultProfile::kFrag;  // 4KB at 5%, 2MB at 70%
  FaultPlan plan(config, /*seed=*/7);
  int small = 0;
  int large = 0;
  for (int i = 0; i < 400; ++i) {
    small += plan.FailMigration(/*to_node=*/0, /*order=*/0) ? 1 : 0;
    large += plan.FailMigration(/*to_node=*/0, /*order=*/9) ? 1 : 0;
  }
  EXPECT_LT(small, 60);
  EXPECT_GT(large, 200);
  EXPECT_EQ(plan.counters().migration_failures,
            static_cast<std::uint64_t>(small + large));
}

TEST(FaultPlanTest, SameSeedSameSchedule) {
  FaultConfig config;
  config.profile = FaultProfile::kChurn;
  FaultPlan a(config, 99);
  FaultPlan b(config, 99);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.FailLargeAlloc(i % 2), b.FailLargeAlloc(i % 2));
    EXPECT_EQ(a.FailMigration(i % 2, i % 2 == 0 ? 9 : 0),
              b.FailMigration(i % 2, i % 2 == 0 ? 9 : 0));
    EXPECT_EQ(a.PlanBudget(100), b.PlanBudget(100));
  }
  EXPECT_EQ(a.counters().migration_failures, b.counters().migration_failures);
  EXPECT_EQ(a.counters().truncated_plans, b.counters().truncated_plans);
  EXPECT_GT(a.counters().truncated_plans, 0u);  // churn truncates at 25%
}

TEST(FaultPlanTest, PlanBudgetKeepsAtLeastOneMigration) {
  FaultConfig config;
  config.profile = FaultProfile::kChurn;
  FaultPlan plan(config, 3);
  for (int i = 0; i < 200; ++i) {
    const std::size_t budget = plan.PlanBudget(10);
    EXPECT_GE(budget, 1u);
    EXPECT_LE(budget, 10u);
  }
  EXPECT_EQ(plan.PlanBudget(0), 0u);
}

TEST(FaultPlanTest, PromoteBackoffDoublesAndAges) {
  PhysicalMemory phys(Topology::Tiny());
  FaultConfig config;
  config.profile = FaultProfile::kFrag;
  FaultPlan plan(config, 5);
  const Addr window = 0x200000;
  plan.ArmPromoteBackoff(window);
  EXPECT_TRUE(plan.InPromoteBackoff(window));
  // Base backoff is 4 epochs of aging.
  for (int epoch = 0; epoch < 3; ++epoch) {
    plan.BeginEpoch(epoch, phys);
    EXPECT_TRUE(plan.InPromoteBackoff(window)) << "epoch " << epoch;
  }
  plan.BeginEpoch(3, phys);
  EXPECT_FALSE(plan.InPromoteBackoff(window));
  // Re-arming after a second failure doubles the length to 8.
  plan.ArmPromoteBackoff(window);
  for (int epoch = 4; epoch < 11; ++epoch) {
    plan.BeginEpoch(epoch, phys);
    EXPECT_TRUE(plan.InPromoteBackoff(window)) << "epoch " << epoch;
  }
  plan.BeginEpoch(11, phys);
  EXPECT_FALSE(plan.InPromoteBackoff(window));
  EXPECT_EQ(plan.counters().promote_backoffs, 2u);
}

// --- Carrefour retry/backoff/abandon state machine --------------------------

PageAgg SingleNodeAgg(int node, int samples, int home) {
  PageAgg agg;
  agg.req_node_counts[static_cast<std::size_t>(node)] =
      static_cast<std::uint32_t>(samples);
  agg.total = static_cast<std::uint64_t>(samples);
  agg.dram = agg.total;
  agg.home_node = home;
  agg.size = PageSize::k4K;
  agg.core_mask = 1;
  return agg;
}

TEST(CarrefourFaultTest, FailedMigrationBacksOffDoublingThenAbandons) {
  Carrefour carrefour(CarrefourConfig{}, {0, 1, 2, 3}, 1);  // backoff 2, abandon after 3
  PageAggMap pages;
  pages[0x1000] = SingleNodeAgg(/*node=*/2, /*samples=*/8, /*home=*/0);

  ASSERT_EQ(carrefour.Plan(pages, 0).size(), 1u);
  carrefour.NoteMigrationFailure(0x1000, 0);
  EXPECT_EQ(carrefour.retried_migrations(), 1u);
  // First backoff: 2 epochs; the cooldown stamp is cleared so the backoff —
  // not the generic per-page cooldown — schedules the retry.
  EXPECT_TRUE(carrefour.Plan(pages, 1).empty());
  ASSERT_EQ(carrefour.Plan(pages, 2).size(), 1u);

  carrefour.NoteMigrationFailure(0x1000, 2);
  EXPECT_EQ(carrefour.retried_migrations(), 2u);
  // Second backoff doubles to 4 epochs.
  EXPECT_TRUE(carrefour.Plan(pages, 5).empty());
  ASSERT_EQ(carrefour.Plan(pages, 6).size(), 1u);

  // Third consecutive failure: abandoned, never planned again.
  carrefour.NoteMigrationFailure(0x1000, 6);
  EXPECT_EQ(carrefour.abandoned_pages(), 1u);
  EXPECT_TRUE(carrefour.Plan(pages, 20).empty());
  EXPECT_TRUE(carrefour.Plan(pages, 100).empty());

  // A split/unmap forgets the page: it becomes plannable again.
  carrefour.Forget(0x1000);
  EXPECT_EQ(carrefour.Plan(pages, 100).size(), 1u);
}

TEST(CarrefourFaultTest, SuccessResetsFailureStreak) {
  Carrefour carrefour(CarrefourConfig{}, {0, 1, 2, 3}, 1);
  PageAggMap pages;
  pages[0x1000] = SingleNodeAgg(2, 8, 0);

  ASSERT_EQ(carrefour.Plan(pages, 0).size(), 1u);
  carrefour.NoteMigrationFailure(0x1000, 0);
  carrefour.NoteMigrationFailure(0x1000, 2);  // streak 2 of 3
  carrefour.NoteMigrationSuccess(0x1000);     // transient cleared
  // Two more failures reach streak 2, not abandonment.
  carrefour.NoteMigrationFailure(0x1000, 8);
  carrefour.NoteMigrationFailure(0x1000, 12);
  EXPECT_EQ(carrefour.abandoned_pages(), 0u);
  // The third consecutive one abandons.
  carrefour.NoteMigrationFailure(0x1000, 20);
  EXPECT_EQ(carrefour.abandoned_pages(), 1u);
}

// --- Watchdog + retry knobs -------------------------------------------------

TEST(RunnerResilienceTest, DeadlineCancelsOverrunningCell) {
  // A full-size cell (machine A, SSCA.20 at default epoch/access budgets)
  // takes a few hundred milliseconds serially — far past a 30ms deadline,
  // so the watchdog (25ms poll) reliably cancels it mid-run. A Tiny-topology
  // cell would finish before the first poll.
  const Topology topo = Topology::MachineA();
  RunSpec spec;
  spec.topo = topo;
  spec.workload = MakeWorkloadSpec(BenchmarkId::kSSCA, topo);
  spec.policy = MakePolicyConfig(PolicyKind::kThp);
  spec.sim = SimConfig{};

  ExperimentRunner runner(1);
  runner.set_cell_deadline_ms(30);
  runner.set_max_cell_retries(0);
  const std::vector<RunResult> results = runner.Run({spec});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, "deadline");
  EXPECT_FALSE(results[0].completed);
}

TEST(RunnerResilienceTest, EnvKnobsConfigureWatchdogAndRetries) {
  ::setenv("NUMALP_CELL_DEADLINE_MS", "1234", 1);
  ::setenv("NUMALP_CELL_RETRIES", "0", 1);
  {
    ExperimentRunner runner(1);
    EXPECT_EQ(runner.cell_deadline_ms(), 1234);
    EXPECT_EQ(runner.max_cell_retries(), 0);
  }
  ::unsetenv("NUMALP_CELL_DEADLINE_MS");
  ::unsetenv("NUMALP_CELL_RETRIES");
  ExperimentRunner plain(1);
  EXPECT_EQ(plain.cell_deadline_ms(), 0);  // watchdog off by default
  EXPECT_EQ(plain.max_cell_retries(), 1);
}

// --- Checkpoint + resume ----------------------------------------------------

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// Keep the first `keep` '\n'-terminated lines of `bytes`.
std::string LinePrefix(const std::string& bytes, std::size_t keep) {
  std::size_t pos = 0;
  for (std::size_t line = 0; line < keep; ++line) {
    pos = bytes.find('\n', pos);
    if (pos == std::string::npos) {
      return bytes;
    }
    ++pos;
  }
  return bytes.substr(0, pos);
}

// Rewinds an --out-dir bench directory to the state a SIGKILL after
// `cells_done` durable rows leaves behind: files holding the durable prefix
// plus a torn tail of partially flushed bytes, and the manifest the last
// completed Checkpoint() renamed into place.
void EmulateKillAfter(const fs::path& dir, const std::string& bench,
                      std::size_t cells_done) {
  const std::string csv = ReadFile(dir / (bench + ".csv"));
  const std::string jsonl = ReadFile(dir / (bench + ".jsonl"));
  // +1: the CSV carries its header line before the first row.
  const std::string csv_prefix = LinePrefix(csv, cells_done + 1);
  const std::string jsonl_prefix = LinePrefix(jsonl, cells_done);
  std::ostringstream manifest;
  manifest << "{\"version\":1,\"bench\":\"" << bench
           << "\",\"cells_done\":" << cells_done
           << ",\"csv_bytes\":" << csv_prefix.size()
           << ",\"jsonl_bytes\":" << jsonl_prefix.size() << "}\n";
  // Torn tails: the next row's bytes were partially flushed when the
  // process died. Resume must truncate them away.
  WriteFile(dir / (bench + ".csv"), csv_prefix + "faultgrace,torn");
  WriteFile(dir / (bench + ".jsonl"), jsonl_prefix + "{\"bench\":\"torn");
  WriteFile(dir / (bench + ".manifest.json"), manifest.str());
}

report::Options OutDirOptions(const fs::path& dir) {
  report::Options options;
  options.format = "csv";  // stdout stays line-oriented during tests
  options.out_dir = dir.string();
  options.jobs = 2;
  options.sim = TinySim();
  return options;
}

TEST(ResumeTest, ResumedCellRunMatchesUninterruptedByteForByte) {
  const report::ToolInfo info = {"faults_test", "faultgrace", "resume test"};
  const fs::path root = fs::temp_directory_path() / "numalp_faults_test_cells";
  fs::remove_all(root);
  const fs::path full_dir = root / "full";
  const fs::path killed_dir = root / "killed";
  fs::create_directories(full_dir);
  fs::create_directories(killed_dir);

  std::vector<RunSpec> cells;
  std::vector<report::GridReport::CellMeta> meta;
  BuildFaultCells({FaultProfile::kOff, FaultProfile::kFrag}, /*seeds=*/2, TinySim(),
                  &cells, &meta);

  {
    report::GridReport report(OutDirOptions(full_dir), info);
    report.RunCells(cells, meta);
  }

  // The killed run: same bytes, dead after 7 of 12 cells — mid-variant, so
  // the surviving cells' baselines and seed columns come from recovery.
  for (const char* file : {"faultgrace.csv", "faultgrace.jsonl"}) {
    fs::copy_file(full_dir / file, killed_dir / file);
  }
  EmulateKillAfter(killed_dir, "faultgrace", /*cells_done=*/7);

  report::Options resume_options = OutDirOptions(killed_dir);
  resume_options.resume = true;
  {
    report::GridReport report(resume_options, info);
    report.RunCells(cells, meta);
  }

  EXPECT_EQ(ReadFile(killed_dir / "faultgrace.csv"), ReadFile(full_dir / "faultgrace.csv"));
  EXPECT_EQ(ReadFile(killed_dir / "faultgrace.jsonl"),
            ReadFile(full_dir / "faultgrace.jsonl"));
  EXPECT_EQ(ReadFile(killed_dir / "faultgrace.manifest.json"),
            ReadFile(full_dir / "faultgrace.manifest.json"));
  fs::remove_all(root);
}

TEST(ResumeTest, ResumedGridRunMatchesUninterruptedByteForByte) {
  const report::ToolInfo info = {"faults_test", "gridresume", "resume test"};
  const fs::path root = fs::temp_directory_path() / "numalp_faults_test_grid";
  fs::remove_all(root);
  const fs::path full_dir = root / "full";
  const fs::path killed_dir = root / "killed";
  fs::create_directories(full_dir);
  fs::create_directories(killed_dir);

  ExperimentGrid grid;
  grid.machines = {Topology::Tiny()};
  grid.workloads = {BenchmarkId::kCG_D, BenchmarkId::kWC};
  grid.policies = {PolicyKind::kLinux4K, PolicyKind::kThp, PolicyKind::kCarrefourLp};
  grid.num_seeds = 2;
  grid.sim = TinySim();
  grid.sim.faults.profile = FaultProfile::kFrag;

  {
    report::GridReport report(OutDirOptions(full_dir), info);
    report.Run(grid);
  }

  // Die mid-grid: the recovered prefix holds Linux-4K baselines whose cycles
  // later policy cells need for their improvement column.
  for (const char* file : {"gridresume.csv", "gridresume.jsonl"}) {
    fs::copy_file(full_dir / file, killed_dir / file);
  }
  EmulateKillAfter(killed_dir, "gridresume", /*cells_done=*/5);

  report::Options resume_options = OutDirOptions(killed_dir);
  resume_options.resume = true;
  {
    report::GridReport report(resume_options, info);
    report.Run(grid);
  }

  EXPECT_EQ(ReadFile(killed_dir / "gridresume.csv"), ReadFile(full_dir / "gridresume.csv"));
  EXPECT_EQ(ReadFile(killed_dir / "gridresume.jsonl"),
            ReadFile(full_dir / "gridresume.jsonl"));
  EXPECT_EQ(ReadFile(killed_dir / "gridresume.manifest.json"),
            ReadFile(full_dir / "gridresume.manifest.json"));
  fs::remove_all(root);
}

}  // namespace
}  // namespace numalp
