// Page-level false-sharing detector: runs UA under 4KB pages and under THP
// and reports the PSP metric (accesses to pages shared by >= 2 threads) and
// LAR side by side, then shows Carrefour-LP recovering the locality by
// splitting — the paper's Table 2 / Table 3 story for UA. The psp_pct,
// lar_pct, imbalance_pct and splits row fields carry the story.
//
//   ./false_sharing_detector [--machine A|B] [standard flags]
#include <cstdio>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/report/collector.h"
#include "src/report/options.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "false_sharing_detector", "false_sharing",
      "PSP / LAR under 4KB vs THP, and Carrefour-LP recovering the locality",
      "  --machine A|B          machine preset (default A)\n"};
  numalp::Topology topo = numalp::Topology::MachineA();
  const numalp::report::Options options = numalp::report::ParseToolArgs(
      argc, argv, info, {numalp::report::MachineFlag(&topo)});

  if (options.human()) {
    std::printf("UA.B on %s: page-level false sharing under large pages\n\n",
                topo.name().c_str());
  }

  numalp::ExperimentGrid grid;
  grid.machines = {topo};
  grid.workloads = {numalp::BenchmarkId::kUA_B};
  grid.policies = {numalp::PolicyKind::kLinux4K, numalp::PolicyKind::kThp,
                   numalp::PolicyKind::kCarrefour2M, numalp::PolicyKind::kCarrefourLp};
  grid.num_seeds = 1;
  grid.sim = options.sim;

  {
    numalp::report::GridReport report(options, info);
    report.Run(grid);
  }

  if (options.human()) {
    std::printf(
        "\nTHP makes each page span several threads' mesh slices (PSP jumps), so\n"
        "Carrefour-2M can only interleave them — locality stays low. Carrefour-LP\n"
        "demotes the falsely-shared pages and the pieces migrate back to their\n"
        "owners' nodes (LAR recovers, Table 3).\n");
  }
  return 0;
}
