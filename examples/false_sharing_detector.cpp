// Page-level false-sharing detector: runs UA under 4KB pages and under THP
// and reports the PSP metric (accesses to pages shared by >= 2 threads) and
// LAR side by side, then shows Carrefour-LP recovering the locality by
// splitting — the paper's Table 2 / Table 3 story for UA.
//
//   ./false_sharing_detector [machineA|machineB]
#include <cstdio>
#include <string>

#include "src/core/config.h"
#include "src/core/simulation.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

int main(int argc, char** argv) {
  const numalp::Topology topo = (argc > 1 && std::string(argv[1]) == "machineB")
                                    ? numalp::Topology::MachineB()
                                    : numalp::Topology::MachineA();
  const numalp::SimConfig sim = numalp::WithEnvOverrides(numalp::SimConfig{});

  std::printf("UA.B on %s: page-level false sharing under large pages\n\n", topo.name().c_str());
  std::printf("%-14s %8s %8s %8s %10s\n", "config", "PSP%", "LAR%", "imbal%", "splits");
  for (const numalp::PolicyKind kind :
       {numalp::PolicyKind::kLinux4K, numalp::PolicyKind::kThp,
        numalp::PolicyKind::kCarrefour2M, numalp::PolicyKind::kCarrefourLp}) {
    const numalp::RunResult run =
        numalp::RunBenchmark(topo, numalp::BenchmarkId::kUA_B, kind, sim);
    std::printf("%-14s %7.1f%% %7.1f%% %7.1f%% %10llu\n",
                std::string(numalp::NameOf(kind)).c_str(), run.PspPct(), run.LarPct(),
                run.ImbalancePct(), static_cast<unsigned long long>(run.total_splits));
  }
  std::printf(
      "\nTHP makes each page span several threads' mesh slices (PSP jumps), so\n"
      "Carrefour-2M can only interleave them — locality stays low. Carrefour-LP\n"
      "demotes the falsely-shared pages and the pieces migrate back to their\n"
      "owners' nodes (LAR recovers, Table 3).\n");
  return 0;
}
