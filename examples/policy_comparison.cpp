// Policy comparison over a custom workload built directly against the
// library API — the template for users who want to model their *own*
// application instead of the paper's suite. The workload below is a small
// key-value store: a Zipf-hot shared table plus per-connection scratch.
//
//   ./policy_comparison
#include <cstdio>
#include <string>

#include "src/core/config.h"
#include "src/core/simulation.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

int main() {
  const numalp::Topology topo = numalp::Topology::MachineB();

  // Describe the application's memory behaviour as regions.
  numalp::WorkloadSpec spec;
  spec.name = "kv-store";
  spec.steady_accesses_per_thread = 120'000;
  {
    numalp::RegionSpec table;
    table.name = "hash-table";
    table.bytes = 96 * numalp::kMiB;
    table.access_share = 0.7;
    table.pattern = numalp::PatternKind::kZipf;
    table.zipf_s = 0.75;
    table.zipf_block_shuffle = 31;  // hot keys scattered by the allocator
    table.dram_intensity = 0.55;
    spec.regions.push_back(table);

    numalp::RegionSpec connections;
    connections.name = "connection-buffers";
    connections.bytes = static_cast<std::uint64_t>(topo.num_cores()) * 2 * numalp::kMiB;
    connections.access_share = 0.3;
    connections.pattern = numalp::PatternKind::kPartitioned;
    connections.local_fraction = 1.0;
    connections.setup_owner = numalp::SetupOwner::kPartitionOwner;
    connections.dram_intensity = 0.2;
    spec.regions.push_back(connections);
  }

  numalp::SimConfig sim;
  std::printf("custom kv-store workload on %s\n\n", topo.name().c_str());
  std::printf("%-16s %10s %8s %8s %8s %8s\n", "policy", "runtime", "vs-4K", "LAR%",
              "imbal%", "walkmiss");

  numalp::RunResult baseline;
  for (const numalp::PolicyKind kind :
       {numalp::PolicyKind::kLinux4K, numalp::PolicyKind::kThp,
        numalp::PolicyKind::kCarrefour2M, numalp::PolicyKind::kReactiveOnly,
        numalp::PolicyKind::kConservativeOnly, numalp::PolicyKind::kCarrefourLp}) {
    numalp::Simulation simulation(topo, spec, numalp::MakePolicyConfig(kind), sim);
    const numalp::RunResult run = simulation.Run();
    if (kind == numalp::PolicyKind::kLinux4K) {
      baseline = run;
    }
    std::printf("%-16s %8.1fms %+7.1f%% %7.1f %8.1f %7.1f%%\n",
                std::string(numalp::NameOf(kind)).c_str(), run.RuntimeMs(sim.clock_ghz),
                numalp::ImprovementPct(baseline, run), run.LarPct(), run.ImbalancePct(),
                100.0 * run.WalkL2MissFrac());
  }
  return 0;
}
