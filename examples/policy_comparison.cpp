// Policy comparison over a custom workload built directly against the
// library API — the template for users who want to model their *own*
// application instead of the paper's suite. The workload below is a small
// key-value store: a Zipf-hot shared table plus per-connection scratch.
// All six policy runs are declared as RunSpec cells, executed in parallel
// by the ExperimentRunner (--jobs / NUMALP_JOBS), and emitted as ResultRows
// against the Linux-4K cell (--format / --out-dir select the sinks).
//
//   ./policy_comparison [standard flags; --help lists them]
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/report/collector.h"
#include "src/report/options.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "policy_comparison", "policy_comparison",
      "all six policies over a custom kv-store workload model"};
  const numalp::report::Options options = numalp::report::ParseToolArgs(argc, argv, info);
  const numalp::Topology topo = numalp::Topology::MachineB();

  // Describe the application's memory behaviour as regions.
  numalp::WorkloadSpec spec;
  spec.name = "kv-store";
  spec.steady_accesses_per_thread = 120'000;
  {
    numalp::RegionSpec table;
    table.name = "hash-table";
    table.bytes = 96 * numalp::kMiB;
    table.access_share = 0.7;
    table.pattern = numalp::PatternKind::kZipf;
    table.zipf_s = 0.75;
    table.zipf_block_shuffle = 31;  // hot keys scattered by the allocator
    table.dram_intensity = 0.55;
    spec.regions.push_back(table);

    numalp::RegionSpec connections;
    connections.name = "connection-buffers";
    connections.bytes = static_cast<std::uint64_t>(topo.num_cores()) * 2 * numalp::kMiB;
    connections.access_share = 0.3;
    connections.pattern = numalp::PatternKind::kPartitioned;
    connections.local_fraction = 1.0;
    connections.setup_owner = numalp::SetupOwner::kPartitionOwner;
    connections.dram_intensity = 0.2;
    spec.regions.push_back(connections);
  }

  std::vector<numalp::RunSpec> cells;
  std::vector<numalp::report::GridReport::CellMeta> meta;
  for (const numalp::PolicyKind kind :
       {numalp::PolicyKind::kLinux4K, numalp::PolicyKind::kThp,
        numalp::PolicyKind::kCarrefour2M, numalp::PolicyKind::kReactiveOnly,
        numalp::PolicyKind::kConservativeOnly, numalp::PolicyKind::kCarrefourLp}) {
    numalp::RunSpec cell;
    cell.topo = topo;
    cell.workload = spec;
    cell.policy = numalp::MakePolicyConfig(kind);
    cell.sim = options.sim;
    cells.push_back(cell);
    meta.push_back({"", /*baseline=*/0, 0});  // cell 0 is the Linux-4K run
  }

  numalp::report::GridReport report(options, info);
  report.RunCells(cells, meta);
  return 0;
}
