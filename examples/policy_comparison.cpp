// Policy comparison over a custom workload built directly against the
// library API — the template for users who want to model their *own*
// application instead of the paper's suite. The workload below is a small
// key-value store: a Zipf-hot shared table plus per-connection scratch.
// All six policy runs are declared as RunSpec cells and executed in
// parallel by the ExperimentRunner (worker count: NUMALP_JOBS).
//
//   ./policy_comparison
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

int main() {
  const numalp::Topology topo = numalp::Topology::MachineB();

  // Describe the application's memory behaviour as regions.
  numalp::WorkloadSpec spec;
  spec.name = "kv-store";
  spec.steady_accesses_per_thread = 120'000;
  {
    numalp::RegionSpec table;
    table.name = "hash-table";
    table.bytes = 96 * numalp::kMiB;
    table.access_share = 0.7;
    table.pattern = numalp::PatternKind::kZipf;
    table.zipf_s = 0.75;
    table.zipf_block_shuffle = 31;  // hot keys scattered by the allocator
    table.dram_intensity = 0.55;
    spec.regions.push_back(table);

    numalp::RegionSpec connections;
    connections.name = "connection-buffers";
    connections.bytes = static_cast<std::uint64_t>(topo.num_cores()) * 2 * numalp::kMiB;
    connections.access_share = 0.3;
    connections.pattern = numalp::PatternKind::kPartitioned;
    connections.local_fraction = 1.0;
    connections.setup_owner = numalp::SetupOwner::kPartitionOwner;
    connections.dram_intensity = 0.2;
    spec.regions.push_back(connections);
  }

  const numalp::SimConfig sim = numalp::WithEnvOverrides(numalp::SimConfig{});
  const std::vector<numalp::PolicyKind> kinds = {
      numalp::PolicyKind::kLinux4K,          numalp::PolicyKind::kThp,
      numalp::PolicyKind::kCarrefour2M,      numalp::PolicyKind::kReactiveOnly,
      numalp::PolicyKind::kConservativeOnly, numalp::PolicyKind::kCarrefourLp};

  std::vector<numalp::RunSpec> cells;
  for (const numalp::PolicyKind kind : kinds) {
    numalp::RunSpec cell;
    cell.topo = topo;
    cell.workload = spec;
    cell.policy = numalp::MakePolicyConfig(kind);
    cell.sim = sim;
    cells.push_back(cell);
  }
  const std::vector<numalp::RunResult> results = numalp::ExperimentRunner().Run(cells);

  std::printf("custom kv-store workload on %s\n\n", topo.name().c_str());
  std::printf("%-16s %10s %8s %8s %8s %8s\n", "policy", "runtime", "vs-4K", "LAR%",
              "imbal%", "walkmiss");
  const numalp::RunResult& baseline = results[0];
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const numalp::RunResult& run = results[i];
    std::printf("%-16s %8.1fms %+7.1f%% %7.1f %8.1f %7.1f%%\n",
                std::string(numalp::NameOf(kinds[i])).c_str(), run.RuntimeMs(sim.clock_ghz),
                numalp::ImprovementPct(baseline, run), run.LarPct(), run.ImbalancePct(),
                100.0 * run.WalkL2MissFrac());
  }
  return 0;
}
