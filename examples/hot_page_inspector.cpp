// Hot-page inspector: runs a CG-like workload under THP and prints the
// per-page access distribution the way Carrefour-LP's reactive component
// sees it — demonstrating the hot-page effect (Section 3.1) and how the 6%
// threshold identifies the pages that must be split rather than migrated.
// The run itself is also emitted as a ResultRow (nhp carries the count);
// the per-page listing is prose and prints only in the default md mode.
//
//   ./hot_page_inspector [--machine A|B] [standard flags]
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/metrics/numa_metrics.h"
#include "src/report/collector.h"
#include "src/report/options.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "hot_page_inspector", "hot_page",
      "the per-page access distribution behind the hot-page effect",
      "  --machine A|B          machine preset (default B)\n"};
  numalp::Topology topo = numalp::Topology::MachineB();
  const numalp::report::Options options = numalp::report::ParseToolArgs(
      argc, argv, info, {numalp::report::MachineFlag(&topo)});

  // The Linux-4K baseline runs too (concurrently), so the THP row carries a
  // real improvement_pct instead of a fake 0 that would poison the pooled
  // qualitative checks.
  std::vector<numalp::RunSpec> cells(2);
  cells[0].topo = topo;
  cells[0].workload = numalp::MakeWorkloadSpec(numalp::BenchmarkId::kCG_D, topo);
  cells[0].policy = numalp::MakePolicyConfig(numalp::PolicyKind::kLinux4K);
  cells[0].sim = options.sim;
  cells[1] = cells[0];
  cells[1].policy = numalp::MakePolicyConfig(numalp::PolicyKind::kThp);

  numalp::report::GridReport report(options, info);
  const std::vector<numalp::RunResult> results =
      report.RunCells(cells, {{"", -1, 0}, {"", /*baseline=*/0, 0}});
  report.Finish();
  const numalp::RunResult& thp = results[1];
  if (!options.human()) {
    return 0;
  }

  // Sort the run's page aggregates by access share.
  std::uint64_t total = 0;
  std::vector<std::pair<numalp::Addr, const numalp::PageAgg*>> pages;
  for (const auto& [base, agg] : thp.cumulative_pages) {
    if (agg.dram > 0) {
      total += agg.total;
      pages.emplace_back(base, &agg);
    }
  }
  std::sort(pages.begin(), pages.end(),
            [](const auto& a, const auto& b) { return a.second->total > b.second->total; });

  std::printf("\nCG.D under THP on %s: top pages by access share\n", topo.name().c_str());
  std::printf("(hot threshold: >%.0f%% of accesses; %d NUMA nodes)\n\n",
              numalp::kHotPageSharePct, topo.num_nodes());
  std::printf("%4s %-14s %5s %8s %6s %8s %8s\n", "rank", "page", "size", "share%", "node",
              "sharers", "hot?");
  for (std::size_t i = 0; i < std::min<std::size_t>(12, pages.size()); ++i) {
    const auto& [base, agg] = pages[i];
    const double share = 100.0 * static_cast<double>(agg->total) / static_cast<double>(total);
    std::printf("%4zu 0x%012llx %5s %7.2f%% %6d %8d %8s\n", i + 1,
                static_cast<unsigned long long>(base), std::string(NameOf(agg->size)).c_str(),
                share, agg->home_node, agg->SharerCount(),
                share > numalp::kHotPageSharePct ? "HOT" : "");
  }
  std::printf(
      "\nNHP=%d hot pages on %d nodes: fewer hot pages than nodes means no migration\n"
      "or interleaving can balance the controllers — only splitting can (Section 3.1).\n",
      thp.Nhp(), topo.num_nodes());
  return 0;
}
