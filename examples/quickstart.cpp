// Quickstart: run one benchmark on a simulated NUMA machine under the four
// main system configurations and emit the paper's headline metrics as
// ResultRows (an aligned table by default; --format csv|jsonl for machines,
// --out-dir for files).
//
//   ./quickstart [--workload NAME] [--machine A|B] [standard flags]
//
// Defaults to CG.D on machine B — the paper's most dramatic hot-page case
// (THP loses 43% vs 4KB pages; Carrefour-LP wins it back by splitting).
#include <cstdio>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/report/collector.h"
#include "src/report/options.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "quickstart", "quickstart",
      "one benchmark under the four main system configurations",
      "  --workload NAME        benchmark to run (default CG.D; paper suite +"
      " streamcluster)\n"
      "  --machine A|B          machine preset (default B)\n"};
  numalp::BenchmarkId bench = numalp::BenchmarkId::kCG_D;
  numalp::Topology topo = numalp::Topology::MachineB();
  const numalp::report::Options options = numalp::report::ParseToolArgs(
      argc, argv, info,
      {numalp::report::WorkloadFlag(&bench), numalp::report::MachineFlag(&topo)});

  if (options.human()) {
    std::printf("benchmark %s on %s (%d nodes x %d cores)\n\n",
                std::string(numalp::NameOf(bench)).c_str(), topo.name().c_str(),
                topo.num_nodes(), topo.node(0).num_cores);
  }

  numalp::ExperimentGrid grid;
  grid.machines = {topo};
  grid.workloads = {bench};
  grid.policies = {numalp::PolicyKind::kLinux4K, numalp::PolicyKind::kThp,
                   numalp::PolicyKind::kCarrefour2M, numalp::PolicyKind::kCarrefourLp};
  grid.num_seeds = 1;
  grid.sim = options.sim;

  numalp::report::GridReport report(options, info);
  report.Run(grid);
  return 0;
}
