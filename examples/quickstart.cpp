// Quickstart: run one benchmark on a simulated NUMA machine under the four
// main system configurations and print the paper's headline metrics.
//
//   ./quickstart [benchmark] [machineA|machineB]
//
// Defaults to CG.D on machine B — the paper's most dramatic hot-page case
// (THP loses 43% vs 4KB pages; Carrefour-LP wins it back by splitting).
#include <cstdio>
#include <string>

#include "src/core/config.h"
#include "src/core/simulation.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace {

numalp::BenchmarkId ParseBenchmark(const std::string& name) {
  for (numalp::BenchmarkId id : numalp::FullSuite()) {
    if (name == numalp::NameOf(id)) {
      return id;
    }
  }
  if (name == "streamcluster") {
    return numalp::BenchmarkId::kStreamcluster;
  }
  std::fprintf(stderr, "unknown benchmark '%s', using CG.D\n", name.c_str());
  return numalp::BenchmarkId::kCG_D;
}

}  // namespace

int main(int argc, char** argv) {
  const numalp::BenchmarkId bench =
      argc > 1 ? ParseBenchmark(argv[1]) : numalp::BenchmarkId::kCG_D;
  const numalp::Topology topo = (argc > 2 && std::string(argv[2]) == "machineA")
                                    ? numalp::Topology::MachineA()
                                    : numalp::Topology::MachineB();
  const numalp::SimConfig sim = numalp::WithEnvOverrides(numalp::SimConfig{});

  std::printf("benchmark %s on %s (%d nodes x %d cores)\n\n",
              std::string(numalp::NameOf(bench)).c_str(), topo.name().c_str(),
              topo.num_nodes(), topo.node(0).num_cores);
  std::printf("%-14s %10s %8s %7s %7s %7s %6s %7s %7s %5s %6s %6s %6s %5s\n", "policy",
              "runtime", "vs-4K", "LAR%", "imbal%", "PAMUP%", "NHP", "PSP%", "fault%", "ep",
              "migr", "split", "promo", "ovh%");

  const numalp::RunResult base =
      numalp::RunBenchmark(topo, bench, numalp::PolicyKind::kLinux4K, sim);
  for (const numalp::PolicyKind kind :
       {numalp::PolicyKind::kLinux4K, numalp::PolicyKind::kThp,
        numalp::PolicyKind::kCarrefour2M, numalp::PolicyKind::kCarrefourLp}) {
    const numalp::RunResult run =
        kind == numalp::PolicyKind::kLinux4K ? base
                                             : numalp::RunBenchmark(topo, bench, kind, sim);
    std::printf(
        "%-14s %8.1fms %+7.1f%% %7.1f %7.1f %7.1f %6d %7.1f %7.2f %5d %6llu %6llu %6llu %5.1f\n",
        std::string(numalp::NameOf(kind)).c_str(), run.RuntimeMs(sim.clock_ghz),
        numalp::ImprovementPct(base, run), run.LarPct(), run.ImbalancePct(), run.PamupPct(),
        run.Nhp(), run.PspPct(), run.SteadyMaxFaultSharePct(), run.epochs,
        static_cast<unsigned long long>(run.total_migrations),
        static_cast<unsigned long long>(run.total_splits),
        static_cast<unsigned long long>(run.total_promotions),
        100.0 * static_cast<double>(run.total_policy_overhead) /
            static_cast<double>(run.total_cycles));
  }
  std::printf("\ncompleted: %s\n", base.completed ? "yes" : "no");
  return 0;
}
