#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace numalp {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ == 0) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double ImbalancePct(std::span<const double> values) {
  RunningStat stat;
  for (double v : values) {
    stat.Add(v);
  }
  if (stat.count() == 0 || stat.mean() == 0.0) {
    return 0.0;
  }
  return 100.0 * stat.stddev() / stat.mean();
}

double ImbalancePct(std::span<const std::uint64_t> values) {
  RunningStat stat;
  for (std::uint64_t v : values) {
    stat.Add(static_cast<double>(v));
  }
  if (stat.count() == 0 || stat.mean() == 0.0) {
    return 0.0;
  }
  return 100.0 * stat.stddev() / stat.mean();
}

double Percentile(std::span<const double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(buckets)),
      counts_(static_cast<std::size_t>(buckets), 0) {}

void Histogram::Add(double x) {
  int index = static_cast<int>((x - lo_) / width_);
  index = std::clamp(index, 0, num_buckets() - 1);
  ++counts_[static_cast<std::size_t>(index)];
  ++total_;
}

double Histogram::bucket_lo(int i) const { return lo_ + width_ * i; }

double Histogram::bucket_hi(int i) const { return lo_ + width_ * (i + 1); }

}  // namespace numalp
