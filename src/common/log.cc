#include "src/common/log.h"

#include <atomic>
#include <cstdio>

namespace numalp {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  std::fprintf(stderr, "[numalp %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace numalp
