// Cuckoo fingerprint filter (DFF-style) — the membership half of the
// sketch-backed profiling front end (DESIGN.md Section 11).
//
// Stores 16-bit fingerprints in 4-slot buckets; each key has two candidate
// buckets related by the partial-key rule i2 = i1 ^ hash(fp), so an entry
// can be relocated knowing only its fingerprint. Insert, Contains, and
// Erase are constant-time (bounded kick chain), and Erase genuinely frees
// a slot — the property the sliding sample window needs so retired samples
// hand their capacity back and a long run does not accrete state.
//
// Multiset semantics: the same key may be inserted k times and occupies k
// slots; each Erase removes one occurrence. SampleWindow keys the filter by
// 4KB page base and keeps one occurrence per live unadmitted sample, so the
// occupancy count doubles as that page's (approximate) live sample count.
//
// Failure behavior is explicit, not silent: a full filter makes Insert
// return false after rolling back its displacement chain (the filter is
// unchanged), and Erase on an absent key returns false. Fingerprint
// aliasing can make Erase remove a different key's occurrence — callers get
// bounded staleness, never a crash (the count-sketch alongside absorbs this
// with signed counters; see count_sketch.h).
//
// Displacement choices come from an internal splitmix64 stream with a fixed
// seed: the filter is only mutated on the serial epoch boundary, so the
// sequence — and therefore every admission decision downstream — is
// deterministic and independent of host thread count.
#ifndef NUMALP_SRC_COMMON_CUCKOO_FILTER_H_
#define NUMALP_SRC_COMMON_CUCKOO_FILTER_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/flat_map.h"

namespace numalp {

class CuckooFilter {
 public:
  // A default-constructed filter is disabled (zero capacity, every Insert
  // fails); exact-profile-mode windows never touch theirs.
  CuckooFilter() = default;

  // Capacity is a slot count; bucket count rounds it up to a power of two
  // (so the bucket hash reduces with a mask) divided into 4-way buckets.
  explicit CuckooFilter(std::size_t capacity) {
    std::size_t buckets = 1;
    while (buckets * kSlotsPerBucket < capacity) {
      buckets *= 2;
    }
    bucket_mask_ = buckets - 1;
    slots_.assign(buckets * kSlotsPerBucket, kEmpty);
  }

  // False when both candidate buckets are full and the bounded kick chain
  // failed to free a slot; the chain is rolled back so the filter holds
  // exactly what it held before the call.
  bool Insert(std::uint64_t key) {
    if (slots_.empty()) {
      return false;
    }
    const std::uint16_t fp = Fingerprint(key);
    const std::size_t i1 = IndexHash(key);
    const std::size_t i2 = AltIndex(i1, fp);
    if (PlaceInBucket(i1, fp) || PlaceInBucket(i2, fp)) {
      ++size_;
      return true;
    }
    // Both buckets full: displace a random victim and push it toward its
    // alternate bucket, recording each overwrite so failure can undo them.
    std::vector<std::pair<std::size_t, std::uint16_t>> trail;
    std::size_t bucket = (NextRandom() & 1) ? i2 : i1;
    std::uint16_t carried = fp;
    for (int kick = 0; kick < kMaxKicks; ++kick) {
      const std::size_t slot =
          bucket * kSlotsPerBucket + (NextRandom() % kSlotsPerBucket);
      trail.emplace_back(slot, slots_[slot]);
      std::swap(carried, slots_[slot]);
      bucket = AltIndex(bucket, carried);
      if (PlaceInBucket(bucket, carried)) {
        ++size_;
        return true;
      }
    }
    for (auto it = trail.rbegin(); it != trail.rend(); ++it) {
      slots_[it->first] = it->second;
    }
    return false;
  }

  bool Contains(std::uint64_t key) const {
    if (slots_.empty()) {
      return false;
    }
    const std::uint16_t fp = Fingerprint(key);
    const std::size_t i1 = IndexHash(key);
    return FindInBucket(i1, fp) >= 0 || FindInBucket(AltIndex(i1, fp), fp) >= 0;
  }

  // Removes one occurrence; false if neither candidate bucket holds the
  // fingerprint (the key was never tracked, or its slot was lost to
  // aliasing — both read as "not present").
  bool Erase(std::uint64_t key) {
    if (slots_.empty()) {
      return false;
    }
    const std::uint16_t fp = Fingerprint(key);
    const std::size_t i1 = IndexHash(key);
    int slot = FindInBucket(i1, fp);
    std::size_t bucket = i1;
    if (slot < 0) {
      bucket = AltIndex(i1, fp);
      slot = FindInBucket(bucket, fp);
    }
    if (slot < 0) {
      return false;
    }
    slots_[bucket * kSlotsPerBucket + static_cast<std::size_t>(slot)] = kEmpty;
    --size_;
    return true;
  }

  void Clear() {
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  std::size_t slot_count() const { return slots_.size(); }
  std::size_t bytes() const { return slots_.size() * sizeof(std::uint16_t); }

 private:
  static constexpr std::size_t kSlotsPerBucket = 4;
  static constexpr int kMaxKicks = 256;
  static constexpr std::uint16_t kEmpty = 0;

  // Low 16 mix bits, biased off the empty sentinel.
  static std::uint16_t Fingerprint(std::uint64_t key) {
    const std::uint16_t fp = static_cast<std::uint16_t>(FlatHashMix(key));
    return fp == kEmpty ? 1 : fp;
  }

  // Bucket hash draws on distinct mix bits from the fingerprint, otherwise
  // every aliasing pair would also share buckets and alias in both probes.
  std::size_t IndexHash(std::uint64_t key) const {
    return static_cast<std::size_t>(FlatHashMix(key) >> 16) & bucket_mask_;
  }

  std::size_t AltIndex(std::size_t bucket, std::uint16_t fp) const {
    return (bucket ^ static_cast<std::size_t>(FlatHashMix(fp))) & bucket_mask_;
  }

  int FindInBucket(std::size_t bucket, std::uint16_t fp) const {
    const std::size_t base = bucket * kSlotsPerBucket;
    for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
      if (slots_[base + s] == fp) {
        return static_cast<int>(s);
      }
    }
    return -1;
  }

  bool PlaceInBucket(std::size_t bucket, std::uint16_t fp) {
    const std::size_t base = bucket * kSlotsPerBucket;
    for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
      if (slots_[base + s] == kEmpty) {
        slots_[base + s] = fp;
        return true;
      }
    }
    return false;
  }

  std::uint64_t NextRandom() {
    rng_state_ += 0x9e3779b97f4a7c15ull;
    return FlatHashMix(rng_state_);
  }

  std::size_t bucket_mask_ = 0;
  std::size_t size_ = 0;
  std::uint64_t rng_state_ = 0x1905feb14d00full;
  std::vector<std::uint16_t> slots_;
};

}  // namespace numalp

#endif  // NUMALP_SRC_COMMON_CUCKOO_FILTER_H_
