// Count-min sketch with signed counters — the estimation half of the
// sketch-backed profiling front end (DESIGN.md Section 11).
//
// d rows of w counters; a key hashes to one counter per row, Add() bumps all
// d of them, Estimate() takes the minimum. Collisions only ever *inflate* an
// estimate, which is the safe direction for the admission gate in front of
// SampleWindow's exact aggregates: an overestimate admits a page early
// (bringing sketch mode closer to exact mode), never late.
//
// The update is the plain count-min rule, deliberately NOT the
// conservative-update variant: conservative update is not reversible, and
// the sliding sample window retires old epochs by *decrementing* — with
// plain updates every counter is an exact integer sum of the live keys
// hashing to it, so Add(key, -1) on retirement undoes Add(key, +1) on
// insertion and the sketch never accretes state over a long run. Counters
// are signed so cross-key cancellation (an admission purge removing entries
// an aliased key contributed) saturates at Estimate() == 0 instead of
// wrapping.
#ifndef NUMALP_SRC_COMMON_COUNT_SKETCH_H_
#define NUMALP_SRC_COMMON_COUNT_SKETCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/flat_map.h"

namespace numalp {

class CountSketch {
 public:
  // A default-constructed sketch is disabled: Add is a no-op and Estimate
  // returns 0 (exact-profile-mode windows never touch theirs).
  CountSketch() = default;

  // `rows` hash functions over `min_width` counters each (width rounds up to
  // a power of two so the row hash reduces with a mask).
  CountSketch(int rows, std::uint32_t min_width) : rows_(rows) {
    std::uint32_t width = 16;
    while (width < min_width) {
      width *= 2;
    }
    mask_ = width - 1;
    cells_.assign(static_cast<std::size_t>(rows_) * width, 0);
  }

  bool enabled() const { return !cells_.empty(); }

  void Add(std::uint64_t key, std::int32_t delta) {
    const std::size_t width = static_cast<std::size_t>(mask_) + 1;
    for (int r = 0; r < rows_; ++r) {
      cells_[static_cast<std::size_t>(r) * width + (RowHash(key, r) & mask_)] += delta;
    }
  }

  // min over rows, clamped at zero (counters can briefly go negative when a
  // purge cancels entries an aliasing key contributed — see cuckoo_filter.h).
  std::uint64_t Estimate(std::uint64_t key) const {
    if (cells_.empty()) {
      return 0;
    }
    const std::size_t width = static_cast<std::size_t>(mask_) + 1;
    std::int32_t lowest = cells_[RowHash(key, 0) & mask_];
    for (int r = 1; r < rows_; ++r) {
      lowest = std::min(
          lowest, cells_[static_cast<std::size_t>(r) * width + (RowHash(key, r) & mask_)]);
    }
    return lowest < 0 ? 0 : static_cast<std::uint64_t>(lowest);
  }

  void Reset() { std::fill(cells_.begin(), cells_.end(), 0); }

  std::size_t bytes() const { return cells_.size() * sizeof(std::int32_t); }

 private:
  // Per-row keyed hash: the splitmix finalizer over the key xor a row salt.
  // Rows must be pairwise-independent-ish so one hot colliding pair does not
  // collide in every row (the min would then never escape the inflation).
  static std::uint64_t RowHash(std::uint64_t key, int row) {
    return FlatHashMix(key ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(row + 1)));
  }

  int rows_ = 0;
  std::uint32_t mask_ = 0;
  std::vector<std::int32_t> cells_;
};

}  // namespace numalp

#endif  // NUMALP_SRC_COMMON_COUNT_SKETCH_H_
