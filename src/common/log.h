// Minimal leveled logging to stderr. The simulator is a library, so logging
// defaults to warnings only; the experiment harness raises the level with
// --verbose. Each Simulation is single-threaded (it *models* a parallel
// machine deterministically), but the ExperimentRunner executes independent
// simulations concurrently, so the level itself is atomic and messages are
// written with one fprintf call per line.
#ifndef NUMALP_SRC_COMMON_LOG_H_
#define NUMALP_SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace numalp {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void LogMessage(LogLevel level, const std::string& message);

// Stream-style helper: LogStream(LogLevel::kInfo) << "epoch " << i;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace numalp

#define NUMALP_LOG(level) ::numalp::LogStream(level)

#endif  // NUMALP_SRC_COMMON_LOG_H_
