#include "src/common/rng.h"

namespace numalp {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::Uniform(std::uint64_t bound) {
  // Lemire multiply-shift: map a 64-bit draw into [0, bound).
  const unsigned __int128 product =
      static_cast<unsigned __int128>(NextU64()) * static_cast<unsigned __int128>(bound);
  return static_cast<std::uint64_t>(product >> 64);
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace numalp
