#include "src/common/rng.h"

namespace numalp {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

}  // namespace numalp
