// Open-addressing hash containers for the simulation hot path.
//
// FlatMap keeps its items in one contiguous insertion-ordered vector and
// resolves keys through a separate power-of-two probe table of indices, so
//   - iteration is a linear scan of a dense array (no pointer chasing, no
//     per-node allocation — the cache behavior std::unordered_map cannot give),
//   - insertion order is a *defined*, standard-library-independent property
//     (DESIGN.md Section 7: decision code derives its canonical ascending-
//     address order from these maps, so results are portable across stdlibs),
//   - erase is O(1) via swap-with-last (iteration order after an erase is
//     still deterministic, just no longer first-insertion order).
//
// The probe table stores 32-bit item indices (capacity is bounded by
// kMaxItems) with linear probing and tombstones; it rehashes at 7/8 load
// counting tombstones, so probe sequences stay short even under the window
// aggregate's insert/erase churn.
#ifndef NUMALP_SRC_COMMON_FLAT_MAP_H_
#define NUMALP_SRC_COMMON_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace numalp {

// 64-bit finalizer (splitmix64): integer keys arrive with low entropy in the
// high bits (page bases share prefixes), so identity hashing would cluster.
constexpr std::uint64_t FlatHashMix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename Key, typename Value>
class FlatMap {
 public:
  struct Item {
    Key first;
    Value second;
  };
  using iterator = Item*;
  using const_iterator = const Item*;

  FlatMap() = default;

  iterator begin() { return items_.data(); }
  iterator end() { return items_.data() + items_.size(); }
  const_iterator begin() const { return items_.data(); }
  const_iterator end() const { return items_.data() + items_.size(); }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void clear() {
    items_.clear();
    slots_.clear();
    tombstones_ = 0;
  }

  void reserve(std::size_t n) {
    items_.reserve(n);
    if (n * 8 > slots_.size() * 7) {
      Rehash(ProbeCapacityFor(n));
    }
  }

  // Pointer to the value for `key`, or nullptr when absent.
  Value* Find(const Key& key) {
    const std::uint32_t slot = FindSlot(key);
    return slot == kNoSlot ? nullptr : &items_[slots_[slot] & kIndexMask].second;
  }
  const Value* Find(const Key& key) const {
    return const_cast<FlatMap*>(this)->Find(key);
  }
  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  // Inserts a default-constructed value when absent.
  Value& operator[](const Key& key) { return *FindOrInsert(key).first; }

  // Returns (value pointer, inserted?).
  std::pair<Value*, bool> FindOrInsert(const Key& key) {
    GrowIfNeeded();
    const std::uint64_t mask = slots_.size() - 1;
    std::uint64_t probe = FlatHashMix(static_cast<std::uint64_t>(key)) & mask;
    std::uint32_t first_tombstone = kNoSlot;
    while (true) {
      const std::uint32_t stored = slots_[probe];
      if (stored == kEmpty) {
        std::uint32_t target = first_tombstone;
        if (target == kNoSlot) {
          target = static_cast<std::uint32_t>(probe);
        } else {
          --tombstones_;
        }
        slots_[target] = static_cast<std::uint32_t>(items_.size());
        items_.push_back(Item{key, Value{}});
        return {&items_.back().second, true};
      }
      if (stored == kTombstone) {
        if (first_tombstone == kNoSlot) {
          first_tombstone = static_cast<std::uint32_t>(probe);
        }
      } else if (items_[stored & kIndexMask].first == key) {
        return {&items_[stored & kIndexMask].second, false};
      }
      probe = (probe + 1) & mask;
    }
  }

  // Erases `key` when present (swap-with-last). Returns true when erased.
  bool Erase(const Key& key) {
    const std::uint32_t slot = FindSlot(key);
    if (slot == kNoSlot) {
      return false;
    }
    const std::uint32_t index = slots_[slot];
    slots_[slot] = kTombstone;
    ++tombstones_;
    const std::uint32_t last = static_cast<std::uint32_t>(items_.size()) - 1;
    if (index != last) {
      items_[index] = std::move(items_[last]);
      const std::uint32_t moved_slot = FindSlot(items_[index].first);
      assert(moved_slot != kNoSlot);
      slots_[moved_slot] = index;
    }
    items_.pop_back();
    return true;
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::uint32_t kTombstone = 0xfffffffeu;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::uint32_t kIndexMask = 0x3fffffffu;
  static constexpr std::size_t kMaxItems = kIndexMask;

  static std::size_t ProbeCapacityFor(std::size_t items) {
    std::size_t capacity = 16;
    while (items * 8 > capacity * 7) {
      capacity *= 2;
    }
    return capacity;
  }

  std::uint32_t FindSlot(const Key& key) const {
    if (slots_.empty()) {
      return kNoSlot;
    }
    const std::uint64_t mask = slots_.size() - 1;
    std::uint64_t probe = FlatHashMix(static_cast<std::uint64_t>(key)) & mask;
    while (true) {
      const std::uint32_t stored = slots_[probe];
      if (stored == kEmpty) {
        return kNoSlot;
      }
      if (stored != kTombstone && items_[stored & kIndexMask].first == key) {
        return static_cast<std::uint32_t>(probe);
      }
      probe = (probe + 1) & mask;
    }
  }

  void GrowIfNeeded() {
    assert(items_.size() < kMaxItems);
    if ((items_.size() + tombstones_ + 1) * 8 > slots_.size() * 7) {
      Rehash(ProbeCapacityFor(items_.size() + 1));
    }
  }

  void Rehash(std::size_t capacity) {
    slots_.assign(capacity, kEmpty);
    tombstones_ = 0;
    const std::uint64_t mask = capacity - 1;
    for (std::uint32_t i = 0; i < items_.size(); ++i) {
      std::uint64_t probe =
          FlatHashMix(static_cast<std::uint64_t>(items_[i].first)) & mask;
      while (slots_[probe] != kEmpty) {
        probe = (probe + 1) & mask;
      }
      slots_[probe] = i;
    }
  }

  std::vector<Item> items_;
  std::vector<std::uint32_t> slots_;
  std::size_t tombstones_ = 0;
};

// Set counterpart of FlatMap: same storage scheme, keys only.
template <typename Key>
class FlatSet {
 public:
  bool Insert(const Key& key) { return map_.FindOrInsert(key).second; }
  bool Erase(const Key& key) { return map_.Erase(key); }
  bool Contains(const Key& key) const { return map_.Contains(key); }
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& item : map_) {
      fn(item.first);
    }
  }

 private:
  struct Unit {};
  FlatMap<Key, Unit> map_;
};

}  // namespace numalp

#endif  // NUMALP_SRC_COMMON_FLAT_MAP_H_
