// Small statistics helpers used by the metrics module and the test suite.
#ifndef NUMALP_SRC_COMMON_STATS_H_
#define NUMALP_SRC_COMMON_STATS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace numalp {

// Welford online mean / variance accumulator.
class RunningStat {
 public:
  void Add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance / standard deviation (the paper's "imbalance" metric
  // uses the standard deviation of controller request rates).
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Standard deviation of `values` expressed as a percentage of their mean —
// the paper's definition of memory-controller traffic imbalance (Section 2.1).
// Returns 0 for empty input or zero mean.
double ImbalancePct(std::span<const double> values);
double ImbalancePct(std::span<const std::uint64_t> values);

// Exact p-th percentile (0..100) by sorting a copy; fine for metric vectors.
double Percentile(std::span<const double> values, double p);

// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
// first / last bucket. Used by diagnostics and the examples.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double x);
  std::uint64_t bucket_count(int i) const { return counts_[static_cast<std::size_t>(i)]; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  std::uint64_t total() const { return total_; }
  double bucket_lo(int i) const;
  double bucket_hi(int i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace numalp

#endif  // NUMALP_SRC_COMMON_STATS_H_
