// Zipf-distributed integer sampler.
//
// Several workloads in the paper's suite (SPECjbb's heap, SSCA's high-degree
// vertices, the MapReduce intermediate tables) have skewed page popularity;
// we model that skew with a Zipf(s) distribution over page indices. The
// sampler precomputes the CDF once and answers draws with a binary search,
// so per-access cost is O(log n).
#ifndef NUMALP_SRC_COMMON_ZIPF_H_
#define NUMALP_SRC_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace numalp {

class ZipfSampler {
 public:
  // Distribution over {0, .., n-1} with exponent s >= 0 (s == 0 is uniform).
  // Rank 0 is the most popular item.
  ZipfSampler(std::uint64_t n, double s);

  std::uint64_t Sample(Rng& rng) const;

  // Probability mass of rank `i` (used by tests and the LAR estimator tests).
  double Pmf(std::uint64_t i) const;

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  std::uint64_t n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace numalp

#endif  // NUMALP_SRC_COMMON_ZIPF_H_
