// Zipf-distributed integer sampler.
//
// Several workloads in the paper's suite (SPECjbb's heap, SSCA's high-degree
// vertices, the MapReduce intermediate tables) have skewed page popularity;
// we model that skew with a Zipf(s) distribution over page indices. The
// sampler precomputes the CDF once and answers draws with a binary search,
// so per-access cost is O(log n).
#ifndef NUMALP_SRC_COMMON_ZIPF_H_
#define NUMALP_SRC_COMMON_ZIPF_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace numalp {

class ZipfSampler {
 public:
  // Distribution over {0, .., n-1} with exponent s >= 0 (s == 0 is uniform).
  // Rank 0 is the most popular item.
  ZipfSampler(std::uint64_t n, double s);

  // Defined inline: one draw per generated access makes this hot-path code.
  std::uint64_t Sample(Rng& rng) const { return SampleU(rng.NextDouble()); }

  // Batch draw: `out[0..n)` = the next `n` samples, exactly as `n` successive
  // Sample calls would produce them (one shared draw core — SampleU). For
  // fixed-length sample runs (benchmarks, precomputed traces); the engine's
  // interleaved draw sequence uses Sample.
  void SampleRun(Rng& rng, std::uint64_t* out, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = SampleU(rng.NextDouble());
    }
  }

  // Maps one uniform variate u in [0, 1) to its sampled rank.
  std::uint64_t SampleU(double u) const {
    // buckets_ is a power of two and u carries 53 mantissa bits, so
    // u * buckets_ is exact (a pure exponent shift): the truncated cast is
    // the exact floor, always < buckets_ because u < 1.
    const std::uint64_t bucket =
        static_cast<std::uint64_t>(u * static_cast<double>(buckets_));
    // The answer lies in [lo, hi]: identical to lower_bound over the whole
    // CDF (hi itself is returned when the bucket's entries are all below u).
    const auto it = std::lower_bound(cdf_.begin() + hint_[bucket],
                                     cdf_.begin() + hint_[bucket + 1], u);
    const std::uint64_t index = static_cast<std::uint64_t>(it - cdf_.begin());
    return index >= n_ ? n_ - 1 : index;
  }

  // Probability mass of rank `i` (used by tests and the LAR estimator tests).
  double Pmf(std::uint64_t i) const;

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  std::uint64_t n_;
  double s_;
  std::vector<double> cdf_;
  // Bucketed lower_bound hints: hint_[k] is the first rank whose CDF value
  // reaches k/buckets_, so a draw binary-searches one bucket (a handful of
  // ranks), not the whole CDF.
  std::uint64_t buckets_ = 0;
  double bucket_width_ = 0.0;
  std::vector<std::uint32_t> hint_;
};

}  // namespace numalp

#endif  // NUMALP_SRC_COMMON_ZIPF_H_
