// Core scalar types and memory-size constants shared across all numalp modules.
#ifndef NUMALP_SRC_COMMON_UNITS_H_
#define NUMALP_SRC_COMMON_UNITS_H_

#include <cstdint>
#include <string_view>

namespace numalp {

// A virtual or physical byte address in the simulated machine.
using Addr = std::uint64_t;
// A physical frame number (address >> 12). PFNs are global; the owning NUMA
// node is derived from the physical memory map (see mem/phys_mem.h).
using Pfn = std::uint64_t;
// CPU cycles of the simulated machine.
using Cycles = std::uint64_t;

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

inline constexpr int kShift4K = 12;
inline constexpr int kShift2M = 21;
inline constexpr int kShift1G = 30;

inline constexpr std::uint64_t kBytes4K = 1ull << kShift4K;
inline constexpr std::uint64_t kBytes2M = 1ull << kShift2M;
inline constexpr std::uint64_t kBytes1G = 1ull << kShift1G;

// Number of 4KB frames per 2MB / 1GB page.
inline constexpr std::uint64_t kFramesPer2M = kBytes2M / kBytes4K;  // 512
inline constexpr std::uint64_t kFramesPer1G = kBytes1G / kBytes4K;  // 262144

// Hardware page sizes supported by the simulated x86-64 MMU.
enum class PageSize : std::uint8_t {
  k4K = 0,
  k2M = 1,
  k1G = 2,
};

constexpr std::uint64_t BytesOf(PageSize size) {
  switch (size) {
    case PageSize::k4K:
      return kBytes4K;
    case PageSize::k2M:
      return kBytes2M;
    case PageSize::k1G:
      return kBytes1G;
  }
  return kBytes4K;
}

constexpr int ShiftOf(PageSize size) {
  switch (size) {
    case PageSize::k4K:
      return kShift4K;
    case PageSize::k2M:
      return kShift2M;
    case PageSize::k1G:
      return kShift1G;
  }
  return kShift4K;
}

// Buddy-allocator order of one page of the given size (order 0 == 4KB).
constexpr int OrderOf(PageSize size) { return ShiftOf(size) - kShift4K; }

constexpr std::string_view NameOf(PageSize size) {
  switch (size) {
    case PageSize::k4K:
      return "4K";
    case PageSize::k2M:
      return "2M";
    case PageSize::k1G:
      return "1G";
  }
  return "?";
}

constexpr Addr AlignDown(Addr addr, std::uint64_t alignment) {
  return addr & ~(alignment - 1);
}

constexpr Addr AlignUp(Addr addr, std::uint64_t alignment) {
  return (addr + alignment - 1) & ~(alignment - 1);
}

constexpr bool IsAligned(Addr addr, std::uint64_t alignment) {
  return (addr & (alignment - 1)) == 0;
}

}  // namespace numalp

#endif  // NUMALP_SRC_COMMON_UNITS_H_
