#include "src/common/zipf.h"

#include <algorithm>
#include <cmath>

namespace numalp {

namespace {

// Hint-table resolution bounds. The bucket count is a power of two (so
// 1/buckets is an exact double: bucket boundaries compute exactly and the
// bucket→range mapping below is an exact refinement of lower_bound over the
// full CDF), sized so a bucket holds only a handful of ranks even for huge
// weakly-skewed regions, and capped so the table never dwarfs the CDF.
constexpr std::uint64_t kMinHintBuckets = 1 << 12;
constexpr std::uint64_t kMaxHintBuckets = 1 << 20;

std::uint64_t HintBucketsFor(std::uint64_t n) {
  std::uint64_t buckets = kMinHintBuckets;
  while (buckets < n && buckets < kMaxHintBuckets) {
    buckets <<= 1;
  }
  return buckets;
}

}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n == 0 ? 1 : n), s_(s) {
  cdf_.resize(n_);
  double accum = 0.0;
  for (std::uint64_t i = 0; i < n_; ++i) {
    accum += 1.0 / std::pow(static_cast<double>(i + 1), s_);
    cdf_[i] = accum;
  }
  const double total = cdf_.back();
  for (double& c : cdf_) {
    c /= total;
  }
  // hint_[k] = lower_bound(cdf_, k / buckets): Sample then only binary-
  // searches the one bucket its draw lands in. Without this, every draw costs
  // log2(n) cache-missing probes across the full CDF — the dominant cost of
  // the skewed workloads' access generation.
  buckets_ = HintBucketsFor(n_);
  bucket_width_ = 1.0 / static_cast<double>(buckets_);
  hint_.assign(buckets_ + 1, static_cast<std::uint32_t>(n_));
  std::uint64_t k = 0;
  for (std::uint64_t i = 0; i < n_ && k <= buckets_; ++i) {
    while (k <= buckets_ && static_cast<double>(k) * bucket_width_ <= cdf_[i]) {
      hint_[k] = static_cast<std::uint32_t>(i);
      ++k;
    }
  }
}

double ZipfSampler::Pmf(std::uint64_t i) const {
  if (i >= n_) {
    return 0.0;
  }
  const double lo = i == 0 ? 0.0 : cdf_[i - 1];
  return cdf_[i] - lo;
}

}  // namespace numalp
