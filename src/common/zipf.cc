#include "src/common/zipf.h"

#include <algorithm>
#include <cmath>

namespace numalp {

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n == 0 ? 1 : n), s_(s) {
  cdf_.resize(n_);
  double accum = 0.0;
  for (std::uint64_t i = 0; i < n_; ++i) {
    accum += 1.0 / std::pow(static_cast<double>(i + 1), s_);
    cdf_[i] = accum;
  }
  const double total = cdf_.back();
  for (double& c : cdf_) {
    c /= total;
  }
}

std::uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return n_ - 1;
  }
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(std::uint64_t i) const {
  if (i >= n_) {
    return 0.0;
  }
  const double lo = i == 0 ? 0.0 : cdf_[i - 1];
  return cdf_[i] - lo;
}

}  // namespace numalp
