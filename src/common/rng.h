// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the simulator (access streams, IBS sampling,
// cache-miss draws, interleaving targets) is drawn from an explicitly seeded
// Rng so that a (machine, workload, policy, seed) tuple always reproduces the
// same run, which the test suite and the experiment harness rely on.
#ifndef NUMALP_SRC_COMMON_RNG_H_
#define NUMALP_SRC_COMMON_RNG_H_

#include <cstdint>

namespace numalp {

// SplitMix64; used to expand a single seed into a full xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& state);

// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over [0, 2^64).
  std::uint64_t NextU64();

  // Uniform over [0, bound); bound must be > 0. Uses Lemire's multiply-shift
  // reduction (slightly biased for huge bounds, irrelevant at our scales).
  std::uint64_t Uniform(std::uint64_t bound);

  // Uniform over [0.0, 1.0).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Derive an independent stream (for per-thread generators).
  Rng Fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace numalp

#endif  // NUMALP_SRC_COMMON_RNG_H_
