// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the simulator (access streams, IBS sampling,
// cache-miss draws, interleaving targets) is drawn from an explicitly seeded
// Rng so that a (machine, workload, policy, seed) tuple always reproduces the
// same run, which the test suite and the experiment harness rely on.
//
// The draw functions are defined inline: tens of millions of draws per
// simulated second make the call overhead itself a measurable slice of the
// engine's wall clock (the arithmetic is unchanged — identical streams).
#ifndef NUMALP_SRC_COMMON_RNG_H_
#define NUMALP_SRC_COMMON_RNG_H_

#include <cstdint>

namespace numalp {

// SplitMix64; used to expand a single seed into a full xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& state);

// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over [0, 2^64).
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform over [0, bound); bound must be > 0. Uses Lemire's multiply-shift
  // reduction (slightly biased for huge bounds, irrelevant at our scales).
  std::uint64_t Uniform(std::uint64_t bound) {
    const unsigned __int128 product =
        static_cast<unsigned __int128>(NextU64()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(product >> 64);
  }

  // Uniform over [0.0, 1.0): 53 top bits.
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return NextDouble() < p;
  }

  // Batch draw: `out[0..n)` = the next `n` Uniform(bound) variates, exactly
  // as `n` successive Uniform calls would produce them. Fixed-length runs
  // (the workload generator's spin/setup loops) draw through this so the
  // generator state stays in registers across the run instead of being
  // reloaded per call.
  void UniformRun(std::uint64_t bound, std::uint64_t* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = Uniform(bound);
    }
  }

  // Derive an independent stream (for per-thread generators).
  Rng Fork() { return Rng(NextU64()); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4];
};

}  // namespace numalp

#endif  // NUMALP_SRC_COMMON_RNG_H_
