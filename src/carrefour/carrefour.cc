#include "src/carrefour/carrefour.h"

#include <utility>

namespace numalp {

Carrefour::Carrefour(const CarrefourConfig& config, std::vector<int> interleave_nodes,
                     std::uint64_t seed)
    : config_(config), interleave_nodes_(std::move(interleave_nodes)), rng_(seed) {}

bool Carrefour::ShouldRun(double lar_pct, double imbalance_pct,
                          double dram_access_rate) const {
  if (dram_access_rate < config_.min_dram_access_rate) {
    return false;
  }
  return lar_pct < config_.enable_lar_below_pct ||
         imbalance_pct > config_.enable_imbalance_above_pct;
}

std::vector<CarrefourAction> Carrefour::Plan(const PageAggMap& pages, int epoch) {
  std::vector<CarrefourAction> actions;
  ForEachPageSorted(pages, [&](Addr page_base, const PageAgg& agg) {
    if (static_cast<int>(actions.size()) >= config_.max_actions_per_epoch) {
      return;
    }
    // Only pages actually serviced from DRAM matter (cached pages cost
    // nothing wherever they live).
    if (agg.dram == 0 || agg.total < config_.min_samples_per_page) {
      return;
    }
    // Failed-migration state machine: abandoned pages are never re-planned;
    // pages in retry backoff wait for their retry epoch (the backoff, not
    // the generic cooldown, owns a failed page's schedule).
    if (abandoned_.Contains(page_base)) {
      return;
    }
    if (const int* retry = retry_epoch_.Find(page_base)) {
      if (epoch < *retry) {
        return;
      }
    }
    const int* last = last_action_epoch_.Find(page_base);
    if (last != nullptr && epoch - *last < config_.per_page_cooldown_epochs) {
      return;
    }
    if (agg.SingleNode() || agg.MajorityReqSharePct() >= config_.migrate_majority_pct) {
      if (agg.total < config_.min_samples_migrate) {
        return;
      }
      const int target = agg.MajorityReqNode();
      interleaved_.Erase(page_base);
      if (agg.home_node != target) {
        CarrefourAction action;
        action.kind = CarrefourAction::Kind::kMigrate;
        action.page_base = page_base;
        action.size = agg.size;
        action.target_node = target;
        actions.push_back(action);
        last_action_epoch_[page_base] = epoch;
        retry_epoch_.Erase(page_base);
        ++total_migrations_;
      }
    } else {
      // Multi-node page: interleave once (move to a random node); keep it
      // there afterwards to avoid churn.
      if (agg.total < config_.min_samples_interleave) {
        return;
      }
      if (interleaved_.Insert(page_base)) {
        const int target = interleave_nodes_[static_cast<std::size_t>(
            rng_.Uniform(static_cast<std::uint64_t>(interleave_nodes_.size())))];
        if (target != agg.home_node) {
          CarrefourAction action;
          action.kind = CarrefourAction::Kind::kInterleave;
          action.page_base = page_base;
          action.size = agg.size;
          action.target_node = target;
          actions.push_back(action);
          last_action_epoch_[page_base] = epoch;
        }
        ++total_interleaves_;
      }
    }
  });
  return actions;
}

void Carrefour::NoteMigrationFailure(Addr page_base, int epoch) {
  int& streak = failure_streak_[page_base];
  ++streak;
  if (streak >= config_.migrate_abandon_after_failures) {
    if (abandoned_.Insert(page_base)) {
      ++abandoned_count_;
    }
    retry_epoch_.Erase(page_base);
    return;
  }
  // Doubling backoff: 2, 4, 8... epochs from the failed attempt. The stamp
  // Plan() wrote for the attempt is cleared so the backoff — not the generic
  // per-page cooldown — schedules the retry.
  const int backoff = config_.migrate_retry_backoff_epochs << (streak - 1);
  retry_epoch_[page_base] = epoch + backoff;
  last_action_epoch_.Erase(page_base);
  ++retried_migrations_;
}

void Carrefour::ForgetRange(Addr base, std::uint64_t bytes) {
  for (Addr page = base; page < base + bytes; page += kBytes4K) {
    Forget(page);
  }
}

}  // namespace numalp
