#include "src/carrefour/carrefour.h"

namespace numalp {

Carrefour::Carrefour(const CarrefourConfig& config, int num_nodes, std::uint64_t seed)
    : config_(config), num_nodes_(num_nodes), rng_(seed) {}

bool Carrefour::ShouldRun(double lar_pct, double imbalance_pct,
                          double dram_access_rate) const {
  if (dram_access_rate < config_.min_dram_access_rate) {
    return false;
  }
  return lar_pct < config_.enable_lar_below_pct ||
         imbalance_pct > config_.enable_imbalance_above_pct;
}

std::vector<CarrefourAction> Carrefour::Plan(const PageAggMap& pages, int epoch) {
  std::vector<CarrefourAction> actions;
  ForEachPageSorted(pages, [&](Addr page_base, const PageAgg& agg) {
    if (static_cast<int>(actions.size()) >= config_.max_actions_per_epoch) {
      return;
    }
    // Only pages actually serviced from DRAM matter (cached pages cost
    // nothing wherever they live).
    if (agg.dram == 0 || agg.total < config_.min_samples_per_page) {
      return;
    }
    const int* last = last_action_epoch_.Find(page_base);
    if (last != nullptr && epoch - *last < config_.per_page_cooldown_epochs) {
      return;
    }
    if (agg.SingleNode() || agg.MajorityReqSharePct() >= config_.migrate_majority_pct) {
      if (agg.total < config_.min_samples_migrate) {
        return;
      }
      const int target = agg.MajorityReqNode();
      interleaved_.Erase(page_base);
      if (agg.home_node != target) {
        CarrefourAction action;
        action.kind = CarrefourAction::Kind::kMigrate;
        action.page_base = page_base;
        action.size = agg.size;
        action.target_node = target;
        actions.push_back(action);
        last_action_epoch_[page_base] = epoch;
        ++total_migrations_;
      }
    } else {
      // Multi-node page: interleave once (move to a random node); keep it
      // there afterwards to avoid churn.
      if (agg.total < config_.min_samples_interleave) {
        return;
      }
      if (interleaved_.Insert(page_base)) {
        const int target = static_cast<int>(rng_.Uniform(static_cast<std::uint64_t>(num_nodes_)));
        if (target != agg.home_node) {
          CarrefourAction action;
          action.kind = CarrefourAction::Kind::kInterleave;
          action.page_base = page_base;
          action.size = agg.size;
          action.target_node = target;
          actions.push_back(action);
          last_action_epoch_[page_base] = epoch;
        }
        ++total_interleaves_;
      }
    }
  });
  return actions;
}

void Carrefour::ForgetRange(Addr base, std::uint64_t bytes) {
  for (Addr page = base; page < base + bytes; page += kBytes4K) {
    Forget(page);
  }
}

}  // namespace numalp
