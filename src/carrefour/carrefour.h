// Carrefour (Dashti et al., ASPLOS'13): the NUMA-aware page placement
// engine the paper builds on.
//
// Once per epoch, Carrefour inspects the IBS sample aggregates. Pages whose
// samples all come from one node are migrated to that node; pages accessed
// from several nodes are interleaved (migrated once to a random node).
// Hardware-counter thresholds gate the whole engine so it only runs when a
// NUMA problem is visible (low LAR or high controller imbalance on a
// memory-intensive phase) — Section 3.1.
#ifndef NUMALP_SRC_CARREFOUR_CARREFOUR_H_
#define NUMALP_SRC_CARREFOUR_CARREFOUR_H_

#include <cstdint>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/metrics/numa_metrics.h"

namespace numalp {

struct CarrefourConfig {
  // Engine gating: run when LAR < this...
  double enable_lar_below_pct = 80.0;
  // ...or controller imbalance exceeds this...
  double enable_imbalance_above_pct = 35.0;
  // ...provided the application is memory-intensive (DRAM accesses per
  // instruction above this rate).
  double min_dram_access_rate = 0.02;
  // Ignore pages with fewer samples than this (noise floor).
  std::uint32_t min_samples_per_page = 2;
  // Single-node *migration* needs more evidence than interleaving: moving a
  // page toward a single sampled accessor on 2 samples chases noise.
  std::uint32_t min_samples_migrate = 3;
  // A page whose majority node issues at least this share of its sampled
  // accesses is treated as single-node (migrated to the majority) rather
  // than interleaved. The kernel module's literal rule is "any second node
  // interleaves" — sound when per-page statistics reset every second, but
  // over an accumulated decision window a 90/10 page is a migration target,
  // not an interleave candidate. 100 restores the literal rule.
  double migrate_majority_pct = 85.0;
  // Declaring a page *contested* (interleave it) likewise takes evidence: a
  // 1/1 node split is sampling noise, not contest, and interleaving on it
  // randomizes placement the hinting faults just got right. Below this many
  // samples a multi-node page is left alone until the window says more.
  std::uint32_t min_samples_interleave = 6;
  // Migration budget per epoch (rate limiting, like the kernel module).
  int max_actions_per_epoch = 16384;
  // A page migrated in epoch e may not move again before e + cooldown:
  // damps ping-pong of pages whose sampled accessor alternates between
  // epochs (e.g. slice-boundary windows under 2MB pages).
  int per_page_cooldown_epochs = 8;
  // Failed-migration handling (fault injection, DESIGN.md Section 12): a
  // page whose move failed is re-queued after a doubling backoff, and after
  // this many consecutive failures it is abandoned — Carrefour stops
  // planning moves for it (its undelivered locality gain then expires
  // through the LP realized-gain accounting).
  int migrate_retry_backoff_epochs = 2;
  int migrate_abandon_after_failures = 3;
};

struct CarrefourAction {
  enum class Kind : std::uint8_t { kMigrate, kInterleave };
  Kind kind = Kind::kMigrate;
  Addr page_base = 0;
  PageSize size = PageSize::k4K;
  int target_node = 0;
};

class Carrefour {
 public:
  // `interleave_nodes` is the set of valid interleave targets, in id order —
  // the machine's CPU-bearing nodes. Far-memory nodes are excluded:
  // interleaving a contested page onto a CPU-less node buys no controller
  // balance the CPU nodes need and taxes every access with the far tier's
  // extra latency (DESIGN.md Section 13). On all-CPU machines the vector is
  // 0..N-1, and both the RNG draw count and the draw->node mapping are
  // exactly the historical Uniform(num_nodes).
  Carrefour(const CarrefourConfig& config, std::vector<int> interleave_nodes,
            std::uint64_t seed);

  // Counter-based gating decision for this epoch.
  bool ShouldRun(double lar_pct, double imbalance_pct, double dram_access_rate) const;

  // Builds the epoch's migration/interleave plan from page aggregates at the
  // current mapping granularity. Pages are considered in ascending address
  // order (the canonical decision order, DESIGN.md Section 7), so the plan —
  // including which page each interleave RNG draw lands on — depends only on
  // the aggregate's contents, never on map iteration internals. Stateful:
  // remembers interleaved pages so multi-node pages are not re-randomized
  // every epoch, and enforces the per-page migration cooldown.
  std::vector<CarrefourAction> Plan(const PageAggMap& pages, int epoch);

  // Records that a planned move of `page_base` failed to execute (injected
  // fault or full target node). The page is re-queued with a doubling
  // backoff — charged attempts, no delivered locality — and abandoned after
  // migrate_abandon_after_failures consecutive failures. A later successful
  // action (or Forget) clears the failure streak.
  void NoteMigrationFailure(Addr page_base, int epoch);

  // A planned move of `page_base` executed: reset its failure streak so
  // earlier transient failures don't push a now-healthy page toward abandon.
  void NoteMigrationSuccess(Addr page_base) {
    failure_streak_.Erase(page_base);
    retry_epoch_.Erase(page_base);
  }

  // A page's state is forgotten when it is split or unmapped.
  void Forget(Addr page_base) {
    interleaved_.Erase(page_base);
    last_action_epoch_.Erase(page_base);
    failure_streak_.Erase(page_base);
    retry_epoch_.Erase(page_base);
    abandoned_.Erase(page_base);
  }
  // Range form for consolidation: when a 2MB window is promoted back to one
  // huge page, the per-4KB-piece state underneath it (interleave marks,
  // cooldown stamps) describes pages that no longer exist.
  void ForgetRange(Addr base, std::uint64_t bytes);
  void ForgetAll() {
    interleaved_.clear();
    last_action_epoch_.clear();
    failure_streak_.clear();
    retry_epoch_.clear();
    abandoned_.clear();
  }

  std::uint64_t total_migrations() const { return total_migrations_; }
  std::uint64_t total_interleaves() const { return total_interleaves_; }
  // Fault-mode telemetry: re-queued (retried) moves and pages given up on.
  std::uint64_t retried_migrations() const { return retried_migrations_; }
  std::uint64_t abandoned_pages() const { return abandoned_count_; }

  const CarrefourConfig& config() const { return config_; }

 private:
  CarrefourConfig config_;
  std::vector<int> interleave_nodes_;
  Rng rng_;
  FlatSet<Addr> interleaved_;
  FlatMap<Addr, int> last_action_epoch_;
  FlatMap<Addr, int> failure_streak_;  // consecutive failed moves per page
  FlatMap<Addr, int> retry_epoch_;     // earliest epoch a retry may run
  FlatSet<Addr> abandoned_;
  std::uint64_t total_migrations_ = 0;
  std::uint64_t total_interleaves_ = 0;
  std::uint64_t retried_migrations_ = 0;
  std::uint64_t abandoned_count_ = 0;
};

}  // namespace numalp

#endif  // NUMALP_SRC_CARREFOUR_CARREFOUR_H_
