#include "src/vm/page_table.h"

#include <cassert>
#include <cstdlib>

#include "src/common/log.h"

namespace numalp {

PageTable::PageTable(PhysicalMemory& phys, int pt_node) : phys_(phys), pt_node_(pt_node) {
  root_ = NewTable(kTopLevel);
}

PageTable::~PageTable() {
  if (root_ != nullptr) {
    FreeTable(root_.get());
    root_.reset();
  }
}

std::unique_ptr<PageTable::Table> PageTable::NewTable(int level) {
  auto table = std::make_unique<Table>();
  table->level = level;
  const auto alloc = phys_.Alloc(/*order=*/0, pt_node_);
  if (!alloc.has_value()) {
    NUMALP_LOG(LogLevel::kError) << "out of physical memory allocating a paging structure";
    std::abort();
  }
  table->frame = alloc->pfn;
  ++num_tables_;
  return table;
}

void PageTable::FreeTable(Table* table) {
  for (auto& entry : table->entries) {
    if (entry.kind == Entry::Kind::kTable) {
      FreeTable(entry.child.get());
      entry.child.reset();
    }
    entry.kind = Entry::Kind::kEmpty;
  }
  phys_.Free(table->frame, /*order=*/0);
  --num_tables_;
}

PageTable::Entry* PageTable::Descend(Addr va, int target_level, bool create) {
  Table* table = root_.get();
  for (int level = kTopLevel; level > target_level; --level) {
    Entry& entry = table->entries[static_cast<std::size_t>(IndexAt(va, level))];
    if (entry.kind == Entry::Kind::kLeaf) {
      return nullptr;  // blocked by a larger mapping
    }
    if (entry.kind == Entry::Kind::kEmpty) {
      if (!create) {
        return nullptr;
      }
      entry.child = NewTable(level - 1);
      entry.kind = Entry::Kind::kTable;
      ++table->populated;
    }
    table = entry.child.get();
  }
  return &table->entries[static_cast<std::size_t>(IndexAt(va, target_level))];
}

std::optional<PageTable::Mapping> PageTable::Lookup(Addr va) const {
  const Table* table = root_.get();
  for (int level = kTopLevel; level >= 1; --level) {
    const Entry& entry = table->entries[static_cast<std::size_t>(IndexAt(va, level))];
    if (entry.kind == Entry::Kind::kEmpty) {
      return std::nullopt;
    }
    if (entry.kind == Entry::Kind::kLeaf) {
      const PageSize size = LeafSizeAt(level);
      Mapping m;
      m.page_base = AlignDown(va, BytesOf(size));
      m.pfn = entry.pfn;
      m.size = size;
      return m;
    }
    table = entry.child.get();
  }
  return std::nullopt;
}

void PageTable::Map(Addr va, Pfn pfn, PageSize size) {
  const int leaf_level = WalkDepth(PageSize::k4K) - WalkDepth(size) + 1;
  Entry* entry = Descend(va, leaf_level, /*create=*/true);
  assert(entry != nullptr && entry->kind == Entry::Kind::kEmpty);
  entry->kind = Entry::Kind::kLeaf;
  entry->pfn = pfn;
  // Find the owning table to bump its population count.
  Table* table = root_.get();
  for (int level = kTopLevel; level > leaf_level; --level) {
    table = table->entries[static_cast<std::size_t>(IndexAt(va, level))].child.get();
  }
  ++table->populated;
  ++mapping_counts_[static_cast<std::size_t>(size)];
}

PageTable::Mapping PageTable::Unmap(Addr va) {
  // Walk down remembering the path so empty tables can be reclaimed.
  Table* path[kTopLevel + 1] = {};
  Table* table = root_.get();
  int level = kTopLevel;
  for (; level >= 1; --level) {
    path[level] = table;
    Entry& entry = table->entries[static_cast<std::size_t>(IndexAt(va, level))];
    assert(entry.kind != Entry::Kind::kEmpty);
    if (entry.kind == Entry::Kind::kLeaf) {
      const PageSize size = LeafSizeAt(level);
      Mapping removed;
      removed.page_base = AlignDown(va, BytesOf(size));
      removed.pfn = entry.pfn;
      removed.size = size;
      entry.kind = Entry::Kind::kEmpty;
      entry.pfn = 0;
      --table->populated;
      --mapping_counts_[static_cast<std::size_t>(size)];
      // Reclaim now-empty tables bottom-up (never the root).
      for (int l = level; l < kTopLevel; ++l) {
        if (path[l]->populated > 0) {
          break;
        }
        Table* parent = path[l + 1];
        Entry& parent_entry = parent->entries[static_cast<std::size_t>(IndexAt(va, l + 1))];
        FreeTable(parent_entry.child.get());
        parent_entry.child.reset();
        parent_entry.kind = Entry::Kind::kEmpty;
        --parent->populated;
      }
      return removed;
    }
    table = entry.child.get();
  }
  assert(false && "Unmap of unmapped address");
  return Mapping{};
}

bool PageTable::Split(Addr va) {
  // Locate the leaf level of the large page.
  Table* table = root_.get();
  for (int level = kTopLevel; level >= 2; --level) {
    Entry& entry = table->entries[static_cast<std::size_t>(IndexAt(va, level))];
    if (entry.kind == Entry::Kind::kEmpty) {
      return false;
    }
    if (entry.kind == Entry::Kind::kLeaf) {
      const PageSize old_size = LeafSizeAt(level);
      const Pfn base_pfn = entry.pfn;
      auto child = NewTable(level - 1);
      const PageSize child_size = LeafSizeAt(level - 1);
      const std::uint64_t frames_per_child = BytesOf(child_size) / kBytes4K;
      for (int i = 0; i < 512; ++i) {
        Entry& sub = child->entries[static_cast<std::size_t>(i)];
        sub.kind = Entry::Kind::kLeaf;
        sub.pfn = base_pfn + frames_per_child * static_cast<std::uint64_t>(i);
      }
      child->populated = 512;
      entry.kind = Entry::Kind::kTable;
      entry.pfn = 0;
      entry.child = std::move(child);
      --mapping_counts_[static_cast<std::size_t>(old_size)];
      mapping_counts_[static_cast<std::size_t>(child_size)] += 512;
      return true;
    }
    table = entry.child.get();
  }
  return false;  // 4KB leaf: nothing to split
}

bool PageTable::Promote2M(Addr window_base, Pfn new_pfn) {
  assert(IsAligned(window_base, kBytes2M));
  Entry* pd_entry = Descend(window_base, /*target_level=*/2, /*create=*/false);
  if (pd_entry == nullptr || pd_entry->kind != Entry::Kind::kTable) {
    return false;
  }
  Table* pt = pd_entry->child.get();
  if (pt->populated != 512) {
    return false;
  }
  FreeTable(pt);
  pd_entry->child.reset();
  pd_entry->kind = Entry::Kind::kLeaf;
  pd_entry->pfn = new_pfn;
  mapping_counts_[static_cast<std::size_t>(PageSize::k4K)] -= 512;
  ++mapping_counts_[static_cast<std::size_t>(PageSize::k2M)];
  return true;
}

Pfn PageTable::ReplaceLeaf(Addr va, Pfn new_pfn) {
  Table* table = root_.get();
  for (int level = kTopLevel; level >= 1; --level) {
    Entry& entry = table->entries[static_cast<std::size_t>(IndexAt(va, level))];
    assert(entry.kind != Entry::Kind::kEmpty);
    if (entry.kind == Entry::Kind::kLeaf) {
      const Pfn old = entry.pfn;
      entry.pfn = new_pfn;
      return old;
    }
    table = entry.child.get();
  }
  assert(false && "ReplaceLeaf of unmapped address");
  return 0;
}

}  // namespace numalp
