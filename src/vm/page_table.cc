#include "src/vm/page_table.h"

#include <cassert>
#include <cstdlib>

#include "src/common/log.h"

namespace numalp {

PageTable::PageTable(PhysicalMemory& phys, int pt_node) : phys_(phys), pt_node_(pt_node) {
  const std::uint32_t root = NewTable(kTopLevel);
  assert(root == kRootIndex);
  (void)root;
}

PageTable::~PageTable() {
  if (!tables_.empty()) {
    FreeTable(kRootIndex);
  }
}

std::uint32_t PageTable::NewTable(int level) {
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
    tables_[index] = Table{};
  } else {
    index = static_cast<std::uint32_t>(tables_.size());
    tables_.emplace_back();
  }
  Table& table = tables_[index];
  table.level = level;
  const auto alloc = phys_.Alloc(/*order=*/0, pt_node_);
  if (!alloc.has_value()) {
    NUMALP_LOG(LogLevel::kError) << "out of physical memory allocating a paging structure";
    std::abort();
  }
  table.frame = alloc->pfn;
  ++num_tables_;
  return index;
}

void PageTable::FreeTable(std::uint32_t index) {
  Table& table = tables_[index];
  for (auto& entry : table.entries) {
    if (entry.kind == Entry::Kind::kTable) {
      FreeTable(entry.child);
      entry.child = kNoChild;
    }
    entry.kind = Entry::Kind::kEmpty;
  }
  phys_.Free(table.frame, /*order=*/0);
  --num_tables_;
  free_.push_back(index);
}

PageTable::Entry* PageTable::Descend(Addr va, int target_level, bool create) {
  std::uint32_t table_index = kRootIndex;
  for (int level = kTopLevel; level > target_level; --level) {
    Entry& entry =
        tables_[table_index].entries[static_cast<std::size_t>(IndexAt(va, level))];
    if (entry.kind == Entry::Kind::kLeaf) {
      return nullptr;  // blocked by a larger mapping
    }
    if (entry.kind == Entry::Kind::kEmpty) {
      if (!create) {
        return nullptr;
      }
      // NewTable may reallocate the pool: re-resolve the entry afterwards.
      const std::uint32_t child = NewTable(level - 1);
      Entry& fresh =
          tables_[table_index].entries[static_cast<std::size_t>(IndexAt(va, level))];
      fresh.child = child;
      fresh.kind = Entry::Kind::kTable;
      ++tables_[table_index].populated;
      table_index = child;
      continue;
    }
    table_index = entry.child;
  }
  return &tables_[table_index].entries[static_cast<std::size_t>(IndexAt(va, target_level))];
}

std::optional<PageTable::Mapping> PageTable::Lookup(Addr va) const {
  const Table* table = &tables_[kRootIndex];
  for (int level = kTopLevel; level >= 1; --level) {
    const Entry& entry = table->entries[static_cast<std::size_t>(IndexAt(va, level))];
    if (entry.kind == Entry::Kind::kEmpty) {
      return std::nullopt;
    }
    if (entry.kind == Entry::Kind::kLeaf) {
      const PageSize size = LeafSizeAt(level);
      Mapping m;
      m.page_base = AlignDown(va, BytesOf(size));
      m.pfn = entry.pfn;
      m.size = size;
      return m;
    }
    table = &tables_[entry.child];
  }
  return std::nullopt;
}

void PageTable::Map(Addr va, Pfn pfn, PageSize size) {
  const int leaf_level = WalkDepth(PageSize::k4K) - WalkDepth(size) + 1;
  Entry* entry = Descend(va, leaf_level, /*create=*/true);
  assert(entry != nullptr && entry->kind == Entry::Kind::kEmpty);
  entry->kind = Entry::Kind::kLeaf;
  entry->pfn = pfn;
  // Find the owning table to bump its population count.
  std::uint32_t table_index = kRootIndex;
  for (int level = kTopLevel; level > leaf_level; --level) {
    table_index =
        tables_[table_index].entries[static_cast<std::size_t>(IndexAt(va, level))].child;
  }
  ++tables_[table_index].populated;
  ++mapping_counts_[static_cast<std::size_t>(size)];
}

PageTable::Mapping PageTable::Unmap(Addr va) {
  // Walk down remembering the path so empty tables can be reclaimed.
  std::uint32_t path[kTopLevel + 1] = {};
  std::uint32_t table_index = kRootIndex;
  int level = kTopLevel;
  for (; level >= 1; --level) {
    path[level] = table_index;
    Entry& entry =
        tables_[table_index].entries[static_cast<std::size_t>(IndexAt(va, level))];
    assert(entry.kind != Entry::Kind::kEmpty);
    if (entry.kind == Entry::Kind::kLeaf) {
      const PageSize size = LeafSizeAt(level);
      Mapping removed;
      removed.page_base = AlignDown(va, BytesOf(size));
      removed.pfn = entry.pfn;
      removed.size = size;
      entry.kind = Entry::Kind::kEmpty;
      entry.pfn = 0;
      --tables_[table_index].populated;
      --mapping_counts_[static_cast<std::size_t>(size)];
      // Reclaim now-empty tables bottom-up (never the root).
      for (int l = level; l < kTopLevel; ++l) {
        if (tables_[path[l]].populated > 0) {
          break;
        }
        Table& parent = tables_[path[l + 1]];
        Entry& parent_entry =
            parent.entries[static_cast<std::size_t>(IndexAt(va, l + 1))];
        FreeTable(parent_entry.child);
        parent_entry.child = kNoChild;
        parent_entry.kind = Entry::Kind::kEmpty;
        --parent.populated;
      }
      return removed;
    }
    table_index = entry.child;
  }
  assert(false && "Unmap of unmapped address");
  return Mapping{};
}

bool PageTable::Split(Addr va) {
  // Locate the leaf level of the large page.
  std::uint32_t table_index = kRootIndex;
  for (int level = kTopLevel; level >= 2; --level) {
    const Entry& entry =
        tables_[table_index].entries[static_cast<std::size_t>(IndexAt(va, level))];
    if (entry.kind == Entry::Kind::kEmpty) {
      return false;
    }
    if (entry.kind == Entry::Kind::kLeaf) {
      const PageSize old_size = LeafSizeAt(level);
      const Pfn base_pfn = entry.pfn;
      const std::uint32_t child_index = NewTable(level - 1);
      Table& child = tables_[child_index];
      const PageSize child_size = LeafSizeAt(level - 1);
      const std::uint64_t frames_per_child = BytesOf(child_size) / kBytes4K;
      for (int i = 0; i < 512; ++i) {
        Entry& sub = child.entries[static_cast<std::size_t>(i)];
        sub.kind = Entry::Kind::kLeaf;
        sub.pfn = base_pfn + frames_per_child * static_cast<std::uint64_t>(i);
      }
      child.populated = 512;
      // Re-resolve: NewTable may have moved the pool.
      Entry& parent =
          tables_[table_index].entries[static_cast<std::size_t>(IndexAt(va, level))];
      parent.kind = Entry::Kind::kTable;
      parent.pfn = 0;
      parent.child = child_index;
      --mapping_counts_[static_cast<std::size_t>(old_size)];
      mapping_counts_[static_cast<std::size_t>(child_size)] += 512;
      return true;
    }
    table_index = entry.child;
  }
  return false;  // 4KB leaf: nothing to split
}

bool PageTable::Promote2M(Addr window_base, Pfn new_pfn) {
  assert(IsAligned(window_base, kBytes2M));
  Entry* pd_entry = Descend(window_base, /*target_level=*/2, /*create=*/false);
  if (pd_entry == nullptr || pd_entry->kind != Entry::Kind::kTable) {
    return false;
  }
  if (tables_[pd_entry->child].populated != 512) {
    return false;
  }
  FreeTable(pd_entry->child);
  pd_entry->child = kNoChild;
  pd_entry->kind = Entry::Kind::kLeaf;
  pd_entry->pfn = new_pfn;
  mapping_counts_[static_cast<std::size_t>(PageSize::k4K)] -= 512;
  ++mapping_counts_[static_cast<std::size_t>(PageSize::k2M)];
  return true;
}

Pfn PageTable::ReplaceLeaf(Addr va, Pfn new_pfn) {
  std::uint32_t table_index = kRootIndex;
  for (int level = kTopLevel; level >= 1; --level) {
    Entry& entry =
        tables_[table_index].entries[static_cast<std::size_t>(IndexAt(va, level))];
    assert(entry.kind != Entry::Kind::kEmpty);
    if (entry.kind == Entry::Kind::kLeaf) {
      const Pfn old = entry.pfn;
      entry.pfn = new_pfn;
      return old;
    }
    table_index = entry.child;
  }
  assert(false && "ReplaceLeaf of unmapped address");
  return 0;
}

}  // namespace numalp
