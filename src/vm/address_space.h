// A process address space: VMAs, demand paging with first-touch / interleave
// NUMA placement, THP-backed anonymous faults, and the page-placement
// operations (migrate / split / promote) that Carrefour and Carrefour-LP
// drive at runtime.
#ifndef NUMALP_SRC_VM_ADDRESS_SPACE_H_
#define NUMALP_SRC_VM_ADDRESS_SPACE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/units.h"
#include "src/mem/phys_mem.h"
#include "src/topo/topology.h"
#include "src/vm/migrate.h"
#include "src/vm/page_table.h"
#include "src/vm/thp.h"

namespace numalp {

class FaultPlan;

enum class NumaPlacement : std::uint8_t {
  kFirstTouch,  // Linux default: allocate on the faulting core's node
  kInterleave,  // round-robin pages across nodes
};

struct VmaOptions {
  std::string name;
  bool thp_eligible = true;  // anonymous memory; mapped files are not (Section 2.1)
  // When set, the VMA is backed by explicit huge pages of this size at fault
  // time regardless of ThpState (the libhugetlbfs 1GB path of Section 4.4).
  std::optional<PageSize> explicit_page;
  NumaPlacement placement = NumaPlacement::kFirstTouch;
};

struct Vma {
  Addr base = 0;
  std::uint64_t bytes = 0;
  VmaOptions opts;
  std::uint64_t interleave_cursor = 0;
};

struct TranslateResult {
  Addr page_base = 0;
  Pfn pfn = 0;
  PageSize size = PageSize::k4K;
  int node = 0;
};

struct FaultInfo {
  PageSize size = PageSize::k4K;
  std::uint64_t bytes = 0;
  int node = 0;
  bool fallback = false;  // preferred node was full
};

struct TouchResult {
  TranslateResult mapping;
  std::optional<FaultInfo> fault;
};

class AddressSpace {
 public:
  AddressSpace(PhysicalMemory& phys, const Topology& topo, ThpState& thp);

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Reserves `bytes` of anonymous VA space (1GB-aligned base; no physical
  // allocation until touched). Returns the VMA base address.
  Addr MmapAnon(std::uint64_t bytes, VmaOptions opts);

  // munmap: removes every mapping inside [base, base + bytes) — freeing the
  // frames back through the buddy allocator, where they coalesce as far as
  // neighbouring live allocations permit — and drops VMAs fully covered by
  // the range. This is how long-lived mmap/munmap churn produces real
  // free-list fragmentation (DESIGN.md §14). Partially covered mappings
  // (a large page straddling the boundary) are freed whole, like Linux
  // splitting-then-unmapping; callers unmap at VMA granularity.
  struct UnmapStats {
    std::uint64_t pages_4k = 0;
    std::uint64_t pages_2m = 0;
    std::uint64_t pages_1g = 0;
    std::uint64_t freed_bytes = 0;
  };
  UnmapStats MunmapRange(Addr base, std::uint64_t bytes);

  std::optional<TranslateResult> Translate(Addr va) const;

  // A caller-owned mapping cache for Translate-heavy loops (the per-core
  // simulation hot path, sample aggregation, the window fold). Direct-mapped
  // lines hold recent successful translations — 4KB mappings indexed by
  // their 4KB page, larger mappings by 2MB window — each valid while no
  // *existing* mapping has changed (`generation()` tracks migrate / split /
  // promote / unmap; faults map fresh VAs and cannot stale a cached
  // translation, so they leave the generation alone). A hit skips the
  // radix-table walk entirely; the result is identical to an uncached
  // Translate by construction.
  struct TranslationCache {
    static constexpr std::size_t kLines = 512;
    struct Line {
      std::uint64_t generation = ~0ull;
      std::uint64_t bytes = 0;  // 0 = empty line
      TranslateResult mapping;
    };
    std::array<Line, kLines> lines;
  };
  std::optional<TranslateResult> Translate(Addr va, TranslationCache& cache) const {
    TranslationCache::Line& fine =
        cache.lines[(va >> kShift4K) & (TranslationCache::kLines - 1)];
    if (fine.generation == mutation_gen_ && va - fine.mapping.page_base < fine.bytes) {
      return fine.mapping;
    }
    TranslationCache::Line& coarse =
        cache.lines[(va >> kShift2M) & (TranslationCache::kLines - 1)];
    if (coarse.generation == mutation_gen_ && va - coarse.mapping.page_base < coarse.bytes) {
      return coarse.mapping;
    }
    const auto mapping = Translate(va);
    if (mapping.has_value()) {
      TranslationCache::Line& line = mapping->size == PageSize::k4K ? fine : coarse;
      line.generation = mutation_gen_;
      line.bytes = BytesOf(mapping->size);
      line.mapping = *mapping;
    }
    return mapping;
  }

  // Incremented whenever an existing mapping is modified or removed;
  // TranslationCache lines from an older generation are dead.
  std::uint64_t generation() const { return mutation_gen_; }

  // Translates `va`, taking a demand fault if unmapped. `core_node` is the
  // NUMA node of the touching core (first-touch target).
  TouchResult Touch(Addr va, int core_node);

  // --- Placement operations used by the policies -------------------------

  // Moves the page covering `page_base` to `target_node`. Fails (nullopt)
  // when the page is already there or the target node has no room.
  std::optional<MigrationRecord> MigratePage(Addr page_base, int target_node);

  // Demotes a large page in place (2MB -> 4KB pieces, 1GB -> 2MB pieces).
  std::optional<SplitRecord> SplitLargePage(Addr page_base);

  // Consolidates a fully-populated, 4KB-mapped 2MB window into one huge page
  // on `target_node` (khugepaged's operation).
  std::optional<PromotionRecord> PromoteWindow(Addr window_base, int target_node);

  // --- Introspection ------------------------------------------------------

  // Bases of live 2MB / 1GB pages (iterated by splitting policies).
  const std::set<Addr>& pages_2m() const { return pages_2m_; }
  const std::set<Addr>& pages_1g() const { return pages_1g_; }

  const std::vector<Vma>& vmas() const { return vmas_; }
  const PageTable& page_table() const { return page_table_; }
  const ThpState& thp() const { return thp_; }
  const Topology& topology() const { return topo_; }
  PhysicalMemory& phys() { return phys_; }

  // 4KB pages mapped inside a 2MB window (512 once fully populated or backed
  // by a huge page).
  int WindowPopulation(Addr window_base) const;

  std::uint64_t mapped_bytes() const { return mapped_bytes_; }
  // Fraction of mapped bytes backed by 2MB or 1GB pages.
  double LargePageCoverage() const;

  // Installs the cell's fault schedule (nullptr = no faults, the default).
  // With a plan installed, huge-page allocations at fault/promote time and
  // page migrations consult it and degrade gracefully: THP faults fall back
  // to 4KB, failed promotions arm a retry backoff, failed migrations return
  // nullopt like a full target node would.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  // 2MB THP faults that fell back to 4KB because of an injected or genuine
  // huge-page allocation failure.
  std::uint64_t thp_fallback_faults() const { return thp_fallback_faults_; }

 private:
  Vma* FindVma(Addr va);
  const Vma* FindVma(Addr va) const;
  int PlacementNode(Vma& vma, int core_node);
  void NoteMapped(Addr page_base, PageSize size);
  void NoteUnmapped(Addr page_base, PageSize size);

  PhysicalMemory& phys_;
  const Topology& topo_;
  ThpState& thp_;
  PageTable page_table_;
  std::vector<Vma> vmas_;  // sorted by base
  Addr next_base_ = 1ull << 32;
  FlatMap<Addr, int> window_pop_;
  std::set<Addr> pages_2m_;
  std::set<Addr> pages_1g_;
  std::uint64_t mapped_bytes_ = 0;
  std::uint64_t mutation_gen_ = 0;
  FaultPlan* fault_plan_ = nullptr;
  std::uint64_t thp_fallback_faults_ = 0;
};

}  // namespace numalp

#endif  // NUMALP_SRC_VM_ADDRESS_SPACE_H_
