#include "src/vm/thp.h"

#include <array>
#include <cstdint>

#include "src/vm/address_space.h"

namespace numalp {

namespace {

// Up to 8 nodes on the paper's machines; sized generously.
constexpr int kMaxNodes = 16;

}  // namespace

KhugepagedScanner::KhugepagedScanner(AddressSpace& address_space)
    : address_space_(address_space) {}

std::optional<int> WindowPromotionTarget(AddressSpace& address_space, Addr window_base) {
  if (address_space.WindowPopulation(window_base) != static_cast<int>(kFramesPer2M) ||
      address_space.pages_2m().count(window_base) != 0) {
    return std::nullopt;
  }
  // Majority node of the constituent 4KB frames.
  std::array<int, kMaxNodes> node_counts{};
  address_space.page_table().ForEachMappingIn(
      window_base, kBytes2M, [&](const PageTable::Mapping& m) {
        if (m.size == PageSize::k4K) {
          ++node_counts[static_cast<std::size_t>(address_space.phys().NodeOfPfn(m.pfn))];
        }
      });
  int majority = 0;
  int total_frames = 0;
  for (int n = 0; n < kMaxNodes; ++n) {
    total_frames += node_counts[static_cast<std::size_t>(n)];
    if (n > 0 && node_counts[static_cast<std::size_t>(n)] >
                     node_counts[static_cast<std::size_t>(majority)]) {
      majority = n;
    }
  }
  // Anti-oscillation guard (kPromoteMajorityPct): windows whose frames are
  // spread across nodes were placed on purpose (interleaved by Carrefour / a
  // hot-page split, or localized piece-by-piece after a false-sharing
  // split); re-promoting them onto one node would recreate the page the
  // policy just fixed.
  if (total_frames == 0 ||
      node_counts[static_cast<std::size_t>(majority)] * 100 <
          total_frames * kPromoteMajorityPct) {
    return std::nullopt;
  }
  return majority;
}

std::vector<PromotionRecord> KhugepagedScanner::Scan(
    int max_windows, int max_promotions, const std::function<bool(Addr)>& skip_window) {
  std::vector<PromotionRecord> promoted;
  const auto& vmas = address_space_.vmas();
  if (vmas.empty()) {
    return promoted;
  }
  int examined = 0;
  // Resume from the cursor; stop after one full pass or when budgets run out.
  std::size_t vma_index = vma_cursor_ >= vmas.size() ? 0 : vma_cursor_;
  std::uint64_t window = window_cursor_;
  std::size_t vmas_visited = 0;
  while (examined < max_windows && static_cast<int>(promoted.size()) < max_promotions &&
         vmas_visited <= vmas.size()) {
    const Vma& vma = vmas[vma_index];
    const Addr first_window = AlignUp(vma.base, kBytes2M);
    const Addr end = vma.base + vma.bytes;
    const std::uint64_t num_windows =
        end > first_window ? (end - first_window) / kBytes2M : 0;
    const bool eligible = vma.opts.thp_eligible && !vma.opts.explicit_page.has_value();
    while (eligible && window < num_windows && examined < max_windows &&
           static_cast<int>(promoted.size()) < max_promotions) {
      const Addr base = first_window + window * kBytes2M;
      ++window;
      ++examined;
      if (skip_window && skip_window(base)) {
        continue;
      }
      const auto target = WindowPromotionTarget(address_space_, base);
      if (!target.has_value()) {
        continue;
      }
      if (auto record = address_space_.PromoteWindow(base, *target)) {
        promoted.push_back(*record);
      } else {
        // Allocation failed on a window the promotion rule accepted: leave
        // it at 4KB and keep scanning. PromoteWindow armed a retry backoff
        // when a fault plan is active, so the next passes skip it until the
        // backoff expires instead of re-failing every epoch.
        ++promotion_failures_;
      }
    }
    if (window >= num_windows || !eligible) {
      window = 0;
      vma_index = (vma_index + 1) % vmas.size();
      ++vmas_visited;
    } else {
      break;  // window budget exhausted mid-VMA
    }
  }
  vma_cursor_ = vma_index;
  window_cursor_ = window;
  return promoted;
}

}  // namespace numalp
