// Records describing page-placement operations (migration, demotion,
// promotion). The operations themselves live on AddressSpace; these records
// flow back to the simulation engine, which charges their cycle costs and
// performs TLB shootdowns.
#ifndef NUMALP_SRC_VM_MIGRATE_H_
#define NUMALP_SRC_VM_MIGRATE_H_

#include <cstdint>

#include "src/common/units.h"

namespace numalp {

struct MigrationRecord {
  Addr page_base = 0;
  PageSize size = PageSize::k4K;
  int from_node = 0;
  int to_node = 0;
  std::uint64_t bytes = 0;
};

struct SplitRecord {
  Addr page_base = 0;
  PageSize from_size = PageSize::k2M;
  int pieces = 512;
};

struct PromotionRecord {
  Addr window_base = 0;
  int node = 0;
  std::uint64_t bytes_copied = 0;
};

}  // namespace numalp

#endif  // NUMALP_SRC_VM_MIGRATE_H_
