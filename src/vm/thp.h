// Transparent Huge Page state and the khugepaged-style promotion scanner.
//
// ThpState is the runtime toggle pair Carrefour-LP manipulates (Algorithm 1):
// `alloc_enabled` backs anonymous faults with 2MB pages when possible;
// `promote_enabled` lets the background scanner consolidate fully-populated
// 2MB windows of 4KB pages into a huge page (the paper sets the promotion
// check frequency to 10ms; we expose a per-epoch window budget instead).
#ifndef NUMALP_SRC_VM_THP_H_
#define NUMALP_SRC_VM_THP_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace numalp {

class AddressSpace;
struct PromotionRecord;

struct ThpState {
  bool alloc_enabled = false;
  bool promote_enabled = false;
};

class KhugepagedScanner {
 public:
  explicit KhugepagedScanner(AddressSpace& address_space);

  // Scans up to `max_windows` candidate 2MB windows (resuming from the last
  // cursor position) and promotes up to `max_promotions` fully-populated,
  // 4KB-mapped windows onto their majority node. Returns what was promoted;
  // the caller charges copy costs and performs TLB shootdowns.
  std::vector<PromotionRecord> Scan(int max_windows, int max_promotions);

 private:
  AddressSpace& address_space_;
  std::size_t vma_cursor_ = 0;
  std::uint64_t window_cursor_ = 0;
};

}  // namespace numalp

#endif  // NUMALP_SRC_VM_THP_H_
