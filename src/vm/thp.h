// Transparent Huge Page state and the khugepaged-style promotion scanner.
//
// ThpState is the runtime toggle pair Carrefour-LP manipulates (Algorithm 1):
// `alloc_enabled` backs anonymous faults with 2MB pages when possible;
// `promote_enabled` lets the background scanner consolidate fully-populated
// 2MB windows of 4KB pages into a huge page (the paper sets the promotion
// check frequency to 10ms; we expose a per-epoch window budget instead).
#ifndef NUMALP_SRC_VM_THP_H_
#define NUMALP_SRC_VM_THP_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/units.h"

namespace numalp {

class AddressSpace;
struct PromotionRecord;

struct ThpState {
  bool alloc_enabled = false;
  bool promote_enabled = false;
};

// Anti-oscillation guard shared by khugepaged and the reactive re-promotion
// path: a 2MB window consolidates only when at least this share of its 4KB
// frames already lives on one node. Anything more spread was placed
// deliberately — interleaved hot pieces, or locality splits whose pieces
// settled on their accessors' nodes — and re-coalescing it would recreate
// the page the policy just fixed.
inline constexpr int kPromoteMajorityPct = 80;

// The promotion rule itself, shared by khugepaged's scan and the reactive
// re-promotion path: the node to consolidate `window_base` onto, or nullopt
// when the window is not promotable (under-populated, already huge, or
// spread past the kPromoteMajorityPct guard).
std::optional<int> WindowPromotionTarget(AddressSpace& address_space, Addr window_base);

class KhugepagedScanner {
 public:
  explicit KhugepagedScanner(AddressSpace& address_space);

  // Scans up to `max_windows` candidate 2MB windows (resuming from the last
  // cursor position) and promotes up to `max_promotions` fully-populated,
  // 4KB-mapped windows onto their majority node. Returns what was promoted;
  // the caller charges copy costs and performs TLB shootdowns.
  // `skip_window`, when set, vetoes individual windows — the engine uses it
  // to keep the scanner off windows whose split pieces still await
  // hinting-fault placement (consolidating mid-flux would undo the split
  // before the placement it exists for could happen).
  std::vector<PromotionRecord> Scan(int max_windows, int max_promotions,
                                    const std::function<bool(Addr)>& skip_window = {});

  // Promotable windows whose PromoteWindow still failed — under fault
  // injection, the huge-page allocation failing. The window stays 4KB-mapped
  // and (when a FaultPlan armed a backoff) is skipped until its retry epoch;
  // the cursor moves on so the scan budget isn't burned re-trying it.
  std::uint64_t promotion_failures() const { return promotion_failures_; }

 private:
  AddressSpace& address_space_;
  std::size_t vma_cursor_ = 0;
  std::uint64_t window_cursor_ = 0;
  std::uint64_t promotion_failures_ = 0;
};

}  // namespace numalp

#endif  // NUMALP_SRC_VM_THP_H_
