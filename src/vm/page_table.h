// Four-level x86-64 style radix page table.
//
// Paging structures are themselves backed by simulated physical frames, so
// the table's resident footprint (`table_bytes()`) is a real, measurable
// quantity — it drives the page-walker's L2-miss probability exactly the way
// large page tables drive TLB-miss cost in the paper (Section 3.2.2).
//
// Leaf levels: PT (4KB), PD (2MB), PDPT (1GB). The table supports in-place
// demotion (Split: 2MB -> 512 x 4KB, 1GB -> 512 x 2MB) and promotion
// (Promote2M), the two mechanisms Carrefour-LP toggles at runtime.
//
// Host-side layout: tables live in one pool (a contiguous vector indexed by
// 32-bit handles with a free list) instead of per-node heap allocations, and
// entries store a pool index rather than a unique_ptr — 16 bytes per entry
// instead of 24, no allocator traffic on map/unmap churn, and lookups walk
// one arena instead of four scattered heap blocks. None of this changes the
// *modeled* walk cost (hw/walker.h); it only makes the simulator faster.
#ifndef NUMALP_SRC_VM_PAGE_TABLE_H_
#define NUMALP_SRC_VM_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/units.h"
#include "src/mem/phys_mem.h"

namespace numalp {

class PageTable {
 public:
  struct Mapping {
    Addr page_base = 0;
    Pfn pfn = 0;  // first 4KB frame of the page
    PageSize size = PageSize::k4K;
  };

  // `pt_node` is where paging-structure frames are allocated (with fallback).
  PageTable(PhysicalMemory& phys, int pt_node);
  ~PageTable();

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  std::optional<Mapping> Lookup(Addr va) const;

  // Maps a page of `size` covering `va` (va is rounded down). The slot must
  // be unmapped. Allocates intermediate tables as needed.
  void Map(Addr va, Pfn pfn, PageSize size);

  // Unmaps the page covering `va`; empty intermediate tables are reclaimed.
  // Returns the removed mapping.
  Mapping Unmap(Addr va);

  // Demotes a large-page leaf in place: 2MB -> 512 4KB leaves, or 1GB -> 512
  // 2MB leaves, preserving the physical block (constituent PFNs are
  // contiguous). Returns false if `va` is not mapped by a large page.
  bool Split(Addr va);

  // Replaces a fully-populated PT (512 x 4KB) with a single 2MB leaf mapping
  // `new_pfn`. The caller owns freeing the old data frames. Returns false if
  // the region is not a fully-populated 4KB-mapped window.
  bool Promote2M(Addr window_base, Pfn new_pfn);

  // Points an existing leaf at a new physical block of the same size
  // (page migration). Returns the old PFN.
  Pfn ReplaceLeaf(Addr va, Pfn new_pfn);

  // Resident bytes of paging structures (drives walker L2-miss probability).
  std::uint64_t table_bytes() const { return num_tables_ * kBytes4K; }

  std::uint64_t num_mappings(PageSize size) const {
    return mapping_counts_[static_cast<std::size_t>(size)];
  }

  // Pool occupancy, for tests: live tables and reusable free slots.
  std::uint64_t num_tables() const { return num_tables_; }
  std::size_t pool_capacity() const { return tables_.size(); }
  std::size_t pool_free() const { return free_.size(); }

  // Number of levels a hardware walk traverses to translate a page of `size`:
  // 4KB -> 4, 2MB -> 3, 1GB -> 2.
  static int WalkDepth(PageSize size) {
    switch (size) {
      case PageSize::k4K:
        return 4;
      case PageSize::k2M:
        return 3;
      case PageSize::k1G:
        return 2;
    }
    return 4;
  }

  // Invokes fn(const Mapping&) for every mapping intersecting
  // [base, base + bytes).
  template <typename Fn>
  void ForEachMappingIn(Addr base, std::uint64_t bytes, Fn&& fn) const {
    ForEachImpl(kRootIndex, kTopLevel, /*table_base=*/0, base, base + bytes, fn);
  }

 private:
  static constexpr int kTopLevel = 4;
  static constexpr std::uint32_t kRootIndex = 0;
  static constexpr std::uint32_t kNoChild = 0xffffffffu;

  struct Entry {
    enum class Kind : std::uint8_t { kEmpty, kTable, kLeaf };
    Pfn pfn = 0;                   // leaf only
    std::uint32_t child = kNoChild;  // pool index, table only
    Kind kind = Kind::kEmpty;
  };

  struct Table {
    std::array<Entry, 512> entries;
    Pfn frame = 0;  // simulated physical frame backing this structure
    std::int32_t level = 0;  // 4 = PML4 .. 1 = PT
    std::int32_t populated = 0;
  };

  static int IndexAt(Addr va, int level) {
    return static_cast<int>((va >> (kShift4K + 9 * (level - 1))) & 0x1ff);
  }
  static PageSize LeafSizeAt(int level) {
    return level == 1 ? PageSize::k4K : (level == 2 ? PageSize::k2M : PageSize::k1G);
  }

  // Pool allocation: reuses a free-list slot or grows the vector. The
  // returned index is stable; Table references are NOT (growth reallocates),
  // so callers re-index after any allocation.
  std::uint32_t NewTable(int level);
  void FreeTable(std::uint32_t index);
  // Returns the entry for va at `target_level`, creating tables on the way
  // when `create` is set; nullptr if the path is blocked by a leaf or absent.
  Entry* Descend(Addr va, int target_level, bool create);

  template <typename Fn>
  void ForEachImpl(std::uint32_t table_index, int level, Addr table_base, Addr lo,
                   Addr hi, Fn&& fn) const {
    const Table& table = tables_[table_index];
    const std::uint64_t span = 1ull << (kShift4K + 9 * (level - 1));
    for (int i = 0; i < 512; ++i) {
      const auto& entry = table.entries[static_cast<std::size_t>(i)];
      if (entry.kind == Entry::Kind::kEmpty) {
        continue;
      }
      const Addr entry_base = table_base + span * static_cast<std::uint64_t>(i);
      if (entry_base >= hi || entry_base + span <= lo) {
        continue;
      }
      if (entry.kind == Entry::Kind::kTable) {
        ForEachImpl(entry.child, level - 1, entry_base, lo, hi, fn);
      } else {
        Mapping m;
        m.page_base = entry_base;
        m.pfn = entry.pfn;
        m.size = LeafSizeAt(level);
        fn(m);
      }
    }
  }

  PhysicalMemory& phys_;
  int pt_node_;
  std::vector<Table> tables_;       // pool; index 0 is the root (PML4)
  std::vector<std::uint32_t> free_;  // recycled pool slots
  std::uint64_t num_tables_ = 0;
  std::array<std::uint64_t, 3> mapping_counts_{};
};

}  // namespace numalp

#endif  // NUMALP_SRC_VM_PAGE_TABLE_H_
