#include "src/vm/address_space.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>

#include "src/common/log.h"
#include "src/core/faults.h"

namespace numalp {

AddressSpace::AddressSpace(PhysicalMemory& phys, const Topology& topo, ThpState& thp)
    : phys_(phys), topo_(topo), thp_(thp), page_table_(phys, /*pt_node=*/0) {}

Addr AddressSpace::MmapAnon(std::uint64_t bytes, VmaOptions opts) {
  const std::uint64_t aligned = AlignUp(bytes, kBytes4K);
  Vma vma;
  vma.base = next_base_;
  vma.bytes = aligned;
  vma.opts = std::move(opts);
  // 1GB-aligned bases with a guard gap keep large-page windows of distinct
  // VMAs from sharing paging structures accidentally.
  next_base_ = AlignUp(next_base_ + aligned + kBytes1G, kBytes1G);
  vmas_.push_back(std::move(vma));
  return vmas_.back().base;
}

AddressSpace::UnmapStats AddressSpace::MunmapRange(Addr base, std::uint64_t bytes) {
  UnmapStats stats;
  // Collect first: Unmap mutates the radix table under the iterator.
  std::vector<PageTable::Mapping> mappings;
  page_table_.ForEachMappingIn(base, bytes, [&](const PageTable::Mapping& m) {
    mappings.push_back(m);
  });
  for (const auto& m : mappings) {
    page_table_.Unmap(m.page_base);
    phys_.Free(m.pfn, OrderOf(m.size));
    NoteUnmapped(m.page_base, m.size);
    switch (m.size) {
      case PageSize::k4K:
        ++stats.pages_4k;
        break;
      case PageSize::k2M:
        ++stats.pages_2m;
        break;
      case PageSize::k1G:
        ++stats.pages_1g;
        break;
    }
    stats.freed_bytes += BytesOf(m.size);
  }
  vmas_.erase(std::remove_if(vmas_.begin(), vmas_.end(),
                             [&](const Vma& vma) {
                               return vma.base >= base &&
                                      vma.base + vma.bytes <= base + bytes;
                             }),
              vmas_.end());
  return stats;
}

Vma* AddressSpace::FindVma(Addr va) {
  for (auto& vma : vmas_) {
    if (va >= vma.base && va < vma.base + vma.bytes) {
      return &vma;
    }
  }
  return nullptr;
}

const Vma* AddressSpace::FindVma(Addr va) const {
  return const_cast<AddressSpace*>(this)->FindVma(va);
}

std::optional<TranslateResult> AddressSpace::Translate(Addr va) const {
  const auto mapping = page_table_.Lookup(va);
  if (!mapping.has_value()) {
    return std::nullopt;
  }
  TranslateResult result;
  result.page_base = mapping->page_base;
  result.pfn = mapping->pfn;
  result.size = mapping->size;
  result.node = phys_.NodeOfPfn(mapping->pfn);
  return result;
}

int AddressSpace::PlacementNode(Vma& vma, int core_node) {
  if (vma.opts.placement == NumaPlacement::kInterleave) {
    // Round-robin over CPU-bearing nodes only: a CPU-less far-memory node is
    // never an interleave target (DESIGN.md Section 13). On all-CPU machines
    // cpu_nodes() is 0..N-1 and the cursor arithmetic is the historical
    // cursor % num_nodes.
    const std::vector<int>& cpu = topo_.cpu_nodes();
    return cpu[static_cast<std::size_t>(vma.interleave_cursor++ %
                                        static_cast<std::uint64_t>(cpu.size()))];
  }
  return core_node;
}

void AddressSpace::NoteMapped(Addr page_base, PageSize size) {
  // Deliberately no mutation_gen_ bump: mapping a previously-unmapped page
  // cannot invalidate any cached translation (caches hold only successful
  // translations, and re-mapping a once-unmapped VA goes through
  // NoteUnmapped first). Faults are the most frequent mutation by far;
  // leaving them out keeps the translate caches warm through fault storms.
  mapped_bytes_ += BytesOf(size);
  switch (size) {
    case PageSize::k4K:
      ++window_pop_[AlignDown(page_base, kBytes2M)];
      break;
    case PageSize::k2M:
      window_pop_[page_base] = static_cast<int>(kFramesPer2M);
      pages_2m_.insert(page_base);
      break;
    case PageSize::k1G:
      for (Addr w = page_base; w < page_base + kBytes1G; w += kBytes2M) {
        window_pop_[w] = static_cast<int>(kFramesPer2M);
      }
      pages_1g_.insert(page_base);
      break;
  }
}

void AddressSpace::NoteUnmapped(Addr page_base, PageSize size) {
  ++mutation_gen_;
  mapped_bytes_ -= BytesOf(size);
  switch (size) {
    case PageSize::k4K:
      --window_pop_[AlignDown(page_base, kBytes2M)];
      break;
    case PageSize::k2M:
      window_pop_[page_base] = 0;
      pages_2m_.erase(page_base);
      break;
    case PageSize::k1G:
      for (Addr w = page_base; w < page_base + kBytes1G; w += kBytes2M) {
        window_pop_[w] = 0;
      }
      pages_1g_.erase(page_base);
      break;
  }
}

TouchResult AddressSpace::Touch(Addr va, int core_node) {
  if (auto mapping = Translate(va)) {
    return TouchResult{*mapping, std::nullopt};
  }
  Vma* vma = FindVma(va);
  if (vma == nullptr) {
    NUMALP_LOG(LogLevel::kError) << "segfault: touch of unmapped VA " << va;
    throw std::runtime_error("segfault: touch of unmapped VA");
  }
  const int target = PlacementNode(*vma, core_node);
  FaultInfo fault;

  // Explicit huge pages (libhugetlbfs-style, Section 4.4) bypass THP state.
  // An injected allocation failure degrades to the 4KB path below — the
  // hugetlbfs reservation ran dry, the mapping survives at base pages.
  if (vma->opts.explicit_page.has_value() &&
      !(fault_plan_ != nullptr &&
        fault_plan_->FailLargeAlloc(target, OrderOf(*vma->opts.explicit_page)))) {
    const PageSize size = *vma->opts.explicit_page;
    const Addr base = AlignDown(va, BytesOf(size));
    const auto alloc = phys_.Alloc(OrderOf(size), target);
    if (!alloc.has_value()) {
      NUMALP_LOG(LogLevel::kError) << "out of memory for explicit " << NameOf(size) << " page";
      throw std::runtime_error("out of memory for explicit huge page");
    }
    page_table_.Map(base, alloc->pfn, size);
    NoteMapped(base, size);
    fault.size = size;
    fault.bytes = BytesOf(size);
    fault.node = alloc->node;
    fault.fallback = alloc->fallback;
    return TouchResult{*Translate(va), fault};
  }

  // THP path: back the fault with a 2MB page when the whole aligned window
  // lies inside the VMA, nothing in it is mapped yet, and the target node has
  // a free 2MB block. Injected or genuine huge-allocation failure falls
  // through to the 4KB path (Linux's THP fault fallback).
  if (thp_.alloc_enabled && vma->opts.thp_eligible) {
    const Addr window = AlignDown(va, kBytes2M);
    const bool window_in_vma = window >= vma->base && window + kBytes2M <= vma->base + vma->bytes;
    if (window_in_vma && WindowPopulation(window) == 0) {
      const bool injected = fault_plan_ != nullptr && fault_plan_->FailLargeAlloc(target);
      if (!injected) {
        if (auto pfn = phys_.AllocOnNode(OrderOf(PageSize::k2M), target)) {
          page_table_.Map(window, *pfn, PageSize::k2M);
          NoteMapped(window, PageSize::k2M);
          fault.size = PageSize::k2M;
          fault.bytes = kBytes2M;
          fault.node = target;
          fault.fallback = false;
          return TouchResult{*Translate(va), fault};
        }
      }
      // Injected *or organic* (fragmented buddy) huge-allocation failure:
      // count it either way — churn-driven fragmentation produces these with
      // no fault plan installed.
      ++thp_fallback_faults_;
    }
  }

  // Base-page fault.
  const Addr base = AlignDown(va, kBytes4K);
  const auto alloc = phys_.Alloc(/*order=*/0, target);
  if (!alloc.has_value()) {
    NUMALP_LOG(LogLevel::kError) << "out of physical memory on 4K fault";
    throw std::runtime_error("out of physical memory on 4K fault");
  }
  page_table_.Map(base, alloc->pfn, PageSize::k4K);
  NoteMapped(base, PageSize::k4K);
  fault.size = PageSize::k4K;
  fault.bytes = kBytes4K;
  fault.node = alloc->node;
  fault.fallback = alloc->fallback;
  return TouchResult{*Translate(va), fault};
}

std::optional<MigrationRecord> AddressSpace::MigratePage(Addr page_base, int target_node) {
  const auto mapping = page_table_.Lookup(page_base);
  if (!mapping.has_value() || mapping->page_base != page_base) {
    return std::nullopt;
  }
  const int from = phys_.NodeOfPfn(mapping->pfn);
  if (from == target_node) {
    return std::nullopt;
  }
  const int order = OrderOf(mapping->size);
  if (fault_plan_ != nullptr && fault_plan_->FailMigration(target_node, order)) {
    return std::nullopt;  // injected failure: page stays where it is
  }
  const auto new_pfn = phys_.AllocOnNode(order, target_node);
  if (!new_pfn.has_value()) {
    return std::nullopt;  // target node full: skip, like Linux migrate_pages
  }
  const Pfn old_pfn = page_table_.ReplaceLeaf(page_base, *new_pfn);
  ++mutation_gen_;
  phys_.Free(old_pfn, order);
  MigrationRecord record;
  record.page_base = page_base;
  record.size = mapping->size;
  record.from_node = from;
  record.to_node = target_node;
  record.bytes = BytesOf(mapping->size);
  return record;
}

std::optional<SplitRecord> AddressSpace::SplitLargePage(Addr page_base) {
  const auto mapping = page_table_.Lookup(page_base);
  if (!mapping.has_value() || mapping->page_base != page_base ||
      mapping->size == PageSize::k4K) {
    return std::nullopt;
  }
  if (!page_table_.Split(page_base)) {
    return std::nullopt;
  }
  ++mutation_gen_;
  SplitRecord record;
  record.page_base = page_base;
  record.from_size = mapping->size;
  record.pieces = 512;
  if (mapping->size == PageSize::k2M) {
    phys_.SplitAllocated(mapping->pfn, OrderOf(PageSize::k2M), OrderOf(PageSize::k4K));
    pages_2m_.erase(page_base);
    // window_pop_ stays at 512: the window is still fully populated.
  } else {
    phys_.SplitAllocated(mapping->pfn, OrderOf(PageSize::k1G), OrderOf(PageSize::k2M));
    pages_1g_.erase(page_base);
    for (Addr w = page_base; w < page_base + kBytes1G; w += kBytes2M) {
      pages_2m_.insert(w);
    }
  }
  return record;
}

std::optional<PromotionRecord> AddressSpace::PromoteWindow(Addr window_base, int target_node) {
  assert(IsAligned(window_base, kBytes2M));
  if (WindowPopulation(window_base) != static_cast<int>(kFramesPer2M) ||
      pages_2m_.count(window_base) != 0) {
    return std::nullopt;
  }
  // Collect the 512 constituent 4KB frames; bail out if any mapping is not 4KB.
  std::vector<Pfn> old_frames;
  old_frames.reserve(kFramesPer2M);
  bool all_4k = true;
  page_table_.ForEachMappingIn(window_base, kBytes2M, [&](const PageTable::Mapping& m) {
    if (m.size != PageSize::k4K) {
      all_4k = false;
    } else {
      old_frames.push_back(m.pfn);
    }
  });
  if (!all_4k || old_frames.size() != kFramesPer2M) {
    return std::nullopt;
  }
  // Huge-page allocation for the consolidated window: an injected or genuine
  // failure arms a doubling retry backoff so khugepaged stops burning scan
  // budget on a window the allocator cannot serve yet.
  if (fault_plan_ != nullptr && fault_plan_->FailLargeAlloc(target_node)) {
    fault_plan_->ArmPromoteBackoff(window_base);
    return std::nullopt;
  }
  const auto new_pfn = phys_.AllocOnNode(OrderOf(PageSize::k2M), target_node);
  if (!new_pfn.has_value()) {
    if (fault_plan_ != nullptr) {
      fault_plan_->ArmPromoteBackoff(window_base);
    }
    return std::nullopt;
  }
  if (!page_table_.Promote2M(window_base, *new_pfn)) {
    phys_.Free(*new_pfn, OrderOf(PageSize::k2M));
    return std::nullopt;
  }
  ++mutation_gen_;  // 512 cached 4KB translations of the window just died
  for (Pfn pfn : old_frames) {
    phys_.Free(pfn, /*order=*/0);
  }
  // Bookkeeping: 512 x 4KB out, one 2MB in.
  mapped_bytes_ -= kFramesPer2M * kBytes4K;
  NoteMapped(window_base, PageSize::k2M);
  PromotionRecord record;
  record.window_base = window_base;
  record.node = target_node;
  record.bytes_copied = kBytes2M;
  return record;
}

int AddressSpace::WindowPopulation(Addr window_base) const {
  const int* population = window_pop_.Find(window_base);
  return population == nullptr ? 0 : *population;
}

double AddressSpace::LargePageCoverage() const {
  if (mapped_bytes_ == 0) {
    return 0.0;
  }
  const std::uint64_t large = static_cast<std::uint64_t>(pages_2m_.size()) * kBytes2M +
                              static_cast<std::uint64_t>(pages_1g_.size()) * kBytes1G;
  return static_cast<double>(large) / static_cast<double>(mapped_bytes_);
}

}  // namespace numalp
