// Binary buddy allocator over a contiguous physical frame range.
//
// This is the per-node page-frame allocator of the simulated OS. It supports
// orders 0 (4KB) through 18 (1GB), coalescing on free, and — crucial for
// Carrefour-LP — *splitting an allocated block in place*: when a 2MB page is
// demoted to 4KB pages, the physical block stays where it is but its
// bookkeeping becomes 512 order-0 allocations so the constituent frames can
// later be migrated and freed independently.
#ifndef NUMALP_SRC_MEM_BUDDY_ALLOCATOR_H_
#define NUMALP_SRC_MEM_BUDDY_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/common/units.h"

namespace numalp {

// Largest supported order: 2^18 frames * 4KB = 1GB.
inline constexpr int kMaxOrder = 18;

class BuddyAllocator {
 public:
  // Manages frames [base_pfn, base_pfn + num_frames). base_pfn must be
  // aligned to 2^kMaxOrder so buddy arithmetic works on global PFNs.
  BuddyAllocator(Pfn base_pfn, std::uint64_t num_frames);

  BuddyAllocator(const BuddyAllocator&) = delete;
  BuddyAllocator& operator=(const BuddyAllocator&) = delete;
  BuddyAllocator(BuddyAllocator&&) = default;
  BuddyAllocator& operator=(BuddyAllocator&&) = default;

  // Allocates 2^order contiguous frames; returns the first PFN, or nullopt
  // when no sufficiently large block is free. Lowest-address block is chosen
  // deterministically.
  std::optional<Pfn> Alloc(int order);

  // Allocates the specific block [pfn, pfn + 2^order), splitting whatever
  // free ancestor block contains it. Returns false when any part of it is
  // already allocated. Used by fault injection to pin frames at chosen
  // addresses so fragmentation is real buddy state, not a coin flip.
  bool AllocSpecific(Pfn pfn, int order);

  // Frees a block previously returned by Alloc (or produced by
  // SplitAllocated). Coalesces with free buddies.
  void Free(Pfn pfn, int order);

  // Rewrites the bookkeeping of an allocated block of `from_order` at `pfn`
  // into 2^(from_order - to_order) allocated blocks of `to_order`. No frames
  // move; this models THP demotion (2MB -> 512 x 4KB).
  void SplitAllocated(Pfn pfn, int from_order, int to_order);

  // True if a block of at least `order` is free (used by the THP fault path
  // to decide whether a 2MB allocation is possible without fallback).
  bool CanAlloc(int order) const;

  bool IsAllocated(Pfn pfn) const;

  std::uint64_t free_frames() const { return free_frames_; }
  std::uint64_t total_frames() const { return total_frames_; }
  Pfn base_pfn() const { return base_pfn_; }
  Pfn end_pfn() const { return base_pfn_ + total_frames_; }

  // -1 when nothing is free.
  int LargestFreeOrder() const;

  // Fragmentation telemetry for fault-run explainability: free blocks of one
  // order, and how many Alloc calls have failed over the allocator's life.
  std::uint64_t FreeBlocksOfOrder(int order) const {
    return free_lists_[static_cast<std::size_t>(order)].size();
  }
  std::uint64_t alloc_failures() const { return alloc_failures_; }

  // 0 = one maximal free block; ->1 as free memory shatters into small
  // blocks. Defined as 1 - largest_free_block_frames / free_frames.
  double FragmentationIndex() const;

  // Internal-consistency check used by the property tests: free lists are
  // disjoint, aligned, inside the range, and disjoint from allocations.
  bool CheckInvariants() const;

 private:
  Pfn BuddyOf(Pfn pfn, int order) const { return ((pfn - base_pfn_) ^ (1ull << order)) + base_pfn_; }

  Pfn base_pfn_;
  std::uint64_t total_frames_;
  std::uint64_t free_frames_ = 0;
  std::uint64_t alloc_failures_ = 0;
  // Free blocks per order, keyed by first PFN (ordered: deterministic,
  // lowest-address-first allocation like Linux's free lists).
  std::vector<std::set<Pfn>> free_lists_;
  // Allocated blocks: first PFN -> order. Kept for validation and splits.
  std::map<Pfn, int> allocated_;
};

}  // namespace numalp

#endif  // NUMALP_SRC_MEM_BUDDY_ALLOCATOR_H_
