// Machine-wide physical memory: one buddy allocator per NUMA node plus the
// PFN -> node map and Linux-style allocation fallback ordered by hop distance.
#ifndef NUMALP_SRC_MEM_PHYS_MEM_H_
#define NUMALP_SRC_MEM_PHYS_MEM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/units.h"
#include "src/mem/buddy_allocator.h"
#include "src/topo/topology.h"

namespace numalp {

struct PhysAlloc {
  Pfn pfn = 0;
  int node = 0;
  bool fallback = false;  // true when the preferred node was full
};

class PhysicalMemory {
 public:
  explicit PhysicalMemory(const Topology& topo);

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  // Allocates 2^order frames, preferring `preferred_node` and falling back to
  // other nodes in increasing hop distance (ties by node id), like the Linux
  // zonelist order. Returns nullopt only when every node is exhausted.
  std::optional<PhysAlloc> Alloc(int order, int preferred_node);

  // Strictly on `node`; no fallback.
  std::optional<Pfn> AllocOnNode(int order, int node);

  void Free(Pfn pfn, int order);

  // Demotes an allocated block's bookkeeping in place (see BuddyAllocator).
  void SplitAllocated(Pfn pfn, int from_order, int to_order);

  int NodeOfPfn(Pfn pfn) const {
    return static_cast<int>(pfn >> node_shift_);
  }

  const BuddyAllocator& node_allocator(int node) const {
    return allocators_[static_cast<std::size_t>(node)];
  }

  // Mutable access for fault injection (FaultPlan pins frames and hoards
  // blocks directly on a node's allocator, bypassing the fallback order).
  BuddyAllocator& mutable_node_allocator(int node) { return allocator(node); }

  std::uint64_t FreeBytesOnNode(int node) const;
  std::uint64_t TotalFreeBytes() const;
  bool CanAllocOnNode(int order, int node) const;

  int num_nodes() const { return static_cast<int>(allocators_.size()); }

 private:
  BuddyAllocator& allocator(int node) { return allocators_[static_cast<std::size_t>(node)]; }

  const Topology& topo_;
  std::vector<BuddyAllocator> allocators_;
  // PFN space gives each node a power-of-two stride so NodeOfPfn is a shift.
  int node_shift_ = 0;
  // Fallback order per preferred node (preferred first, then by hops).
  std::vector<std::vector<int>> fallback_order_;
};

}  // namespace numalp

#endif  // NUMALP_SRC_MEM_PHYS_MEM_H_
