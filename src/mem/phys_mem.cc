#include "src/mem/phys_mem.h"

#include <algorithm>
#include <cassert>

namespace numalp {

namespace {

int CeilLog2(std::uint64_t x) {
  int bits = 0;
  while ((1ull << bits) < x) {
    ++bits;
  }
  return bits;
}

}  // namespace

PhysicalMemory::PhysicalMemory(const Topology& topo) : topo_(topo) {
  std::uint64_t max_frames = 0;
  for (int n = 0; n < topo.num_nodes(); ++n) {
    max_frames = std::max(max_frames, topo.node(n).dram_bytes / kBytes4K);
  }
  // Stride: power of two, at least one max-order block, covering every node.
  node_shift_ = std::max(kMaxOrder, CeilLog2(max_frames));
  allocators_.reserve(static_cast<std::size_t>(topo.num_nodes()));
  for (int n = 0; n < topo.num_nodes(); ++n) {
    const Pfn base = static_cast<Pfn>(n) << node_shift_;
    allocators_.emplace_back(base, topo.node(n).dram_bytes / kBytes4K);
  }
  fallback_order_.resize(static_cast<std::size_t>(topo.num_nodes()));
  for (int from = 0; from < topo.num_nodes(); ++from) {
    auto& order = fallback_order_[static_cast<std::size_t>(from)];
    for (int to = 0; to < topo.num_nodes(); ++to) {
      order.push_back(to);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return topo.Hops(from, a) < topo.Hops(from, b); });
  }
}

std::optional<PhysAlloc> PhysicalMemory::Alloc(int order, int preferred_node) {
  for (int node : fallback_order_[static_cast<std::size_t>(preferred_node)]) {
    if (auto pfn = allocator(node).Alloc(order)) {
      return PhysAlloc{*pfn, node, node != preferred_node};
    }
  }
  return std::nullopt;
}

std::optional<Pfn> PhysicalMemory::AllocOnNode(int order, int node) {
  return allocator(node).Alloc(order);
}

void PhysicalMemory::Free(Pfn pfn, int order) { allocator(NodeOfPfn(pfn)).Free(pfn, order); }

void PhysicalMemory::SplitAllocated(Pfn pfn, int from_order, int to_order) {
  allocator(NodeOfPfn(pfn)).SplitAllocated(pfn, from_order, to_order);
}

std::uint64_t PhysicalMemory::FreeBytesOnNode(int node) const {
  return node_allocator(node).free_frames() * kBytes4K;
}

std::uint64_t PhysicalMemory::TotalFreeBytes() const {
  std::uint64_t total = 0;
  for (const auto& alloc : allocators_) {
    total += alloc.free_frames() * kBytes4K;
  }
  return total;
}

bool PhysicalMemory::CanAllocOnNode(int order, int node) const {
  return node_allocator(node).CanAlloc(order);
}

}  // namespace numalp
