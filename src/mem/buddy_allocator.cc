#include "src/mem/buddy_allocator.h"

#include <cassert>

#include "src/common/log.h"

namespace numalp {

BuddyAllocator::BuddyAllocator(Pfn base_pfn, std::uint64_t num_frames)
    : base_pfn_(base_pfn), total_frames_(num_frames), free_lists_(kMaxOrder + 1) {
  assert(IsAligned(base_pfn, 1ull << kMaxOrder));
  // Greedily cover [base, base+num_frames) with maximal aligned free blocks.
  Pfn cursor = base_pfn_;
  std::uint64_t remaining = num_frames;
  while (remaining > 0) {
    int order = kMaxOrder;
    while (order > 0 && (((cursor - base_pfn_) & ((1ull << order) - 1)) != 0 ||
                         (1ull << order) > remaining)) {
      --order;
    }
    free_lists_[static_cast<std::size_t>(order)].insert(cursor);
    cursor += 1ull << order;
    remaining -= 1ull << order;
  }
  free_frames_ = num_frames;
}

std::optional<Pfn> BuddyAllocator::Alloc(int order) {
  assert(order >= 0 && order <= kMaxOrder);
  // Find the smallest free order >= requested.
  int found = -1;
  for (int o = order; o <= kMaxOrder; ++o) {
    if (!free_lists_[static_cast<std::size_t>(o)].empty()) {
      found = o;
      break;
    }
  }
  if (found < 0) {
    ++alloc_failures_;
    return std::nullopt;
  }
  auto& list = free_lists_[static_cast<std::size_t>(found)];
  const Pfn block = *list.begin();
  list.erase(list.begin());
  // Split down to the requested order, returning the low half each time.
  for (int o = found; o > order; --o) {
    const Pfn upper_half = block + (1ull << (o - 1));
    free_lists_[static_cast<std::size_t>(o - 1)].insert(upper_half);
  }
  allocated_[block] = order;
  free_frames_ -= 1ull << order;
  return block;
}

bool BuddyAllocator::AllocSpecific(Pfn pfn, int order) {
  assert(order >= 0 && order <= kMaxOrder);
  assert(((pfn - base_pfn_) & ((1ull << order) - 1)) == 0);
  // Find the free ancestor block containing the target, smallest first.
  for (int o = order; o <= kMaxOrder; ++o) {
    const Pfn ancestor = ((pfn - base_pfn_) & ~((1ull << o) - 1)) + base_pfn_;
    auto& list = free_lists_[static_cast<std::size_t>(o)];
    const auto it = list.find(ancestor);
    if (it == list.end()) {
      continue;
    }
    list.erase(it);
    // Split down toward the target, freeing the half that doesn't contain it.
    Pfn block = ancestor;
    for (int oo = o; oo > order; --oo) {
      const Pfn upper_half = block + (1ull << (oo - 1));
      if (pfn >= upper_half) {
        free_lists_[static_cast<std::size_t>(oo - 1)].insert(block);
        block = upper_half;
      } else {
        free_lists_[static_cast<std::size_t>(oo - 1)].insert(upper_half);
      }
    }
    allocated_[block] = order;
    free_frames_ -= 1ull << order;
    return true;
  }
  ++alloc_failures_;
  return false;
}

void BuddyAllocator::Free(Pfn pfn, int order) {
  const auto it = allocated_.find(pfn);
  assert(it != allocated_.end() && it->second == order);
  allocated_.erase(it);
  free_frames_ += 1ull << order;
  // Coalesce upward while the buddy is free.
  Pfn block = pfn;
  int o = order;
  while (o < kMaxOrder) {
    const Pfn buddy = BuddyOf(block, o);
    auto& list = free_lists_[static_cast<std::size_t>(o)];
    const auto buddy_it = list.find(buddy);
    if (buddy_it == list.end()) {
      break;
    }
    list.erase(buddy_it);
    block = block < buddy ? block : buddy;
    ++o;
  }
  free_lists_[static_cast<std::size_t>(o)].insert(block);
}

void BuddyAllocator::SplitAllocated(Pfn pfn, int from_order, int to_order) {
  assert(to_order < from_order);
  const auto it = allocated_.find(pfn);
  assert(it != allocated_.end() && it->second == from_order);
  allocated_.erase(it);
  const std::uint64_t step = 1ull << to_order;
  for (Pfn p = pfn; p < pfn + (1ull << from_order); p += step) {
    allocated_[p] = to_order;
  }
}

bool BuddyAllocator::CanAlloc(int order) const {
  for (int o = order; o <= kMaxOrder; ++o) {
    if (!free_lists_[static_cast<std::size_t>(o)].empty()) {
      return true;
    }
  }
  return false;
}

bool BuddyAllocator::IsAllocated(Pfn pfn) const {
  // Exact block starts only; constituent frames of a larger block are covered
  // by searching the predecessor entry.
  auto it = allocated_.upper_bound(pfn);
  if (it == allocated_.begin()) {
    return false;
  }
  --it;
  return pfn < it->first + (1ull << it->second);
}

int BuddyAllocator::LargestFreeOrder() const {
  for (int o = kMaxOrder; o >= 0; --o) {
    if (!free_lists_[static_cast<std::size_t>(o)].empty()) {
      return o;
    }
  }
  return -1;
}

double BuddyAllocator::FragmentationIndex() const {
  if (free_frames_ == 0) {
    return 0.0;
  }
  const int largest = LargestFreeOrder();
  const double largest_frames = static_cast<double>(1ull << largest);
  return 1.0 - largest_frames / static_cast<double>(free_frames_);
}

bool BuddyAllocator::CheckInvariants() const {
  std::uint64_t counted_free = 0;
  for (int o = 0; o <= kMaxOrder; ++o) {
    for (Pfn pfn : free_lists_[static_cast<std::size_t>(o)]) {
      if (pfn < base_pfn_ || pfn + (1ull << o) > end_pfn()) {
        return false;
      }
      if (((pfn - base_pfn_) & ((1ull << o) - 1)) != 0) {
        return false;
      }
      if (IsAllocated(pfn)) {
        return false;
      }
      counted_free += 1ull << o;
    }
  }
  std::uint64_t counted_alloc = 0;
  for (const auto& [pfn, order] : allocated_) {
    counted_alloc += 1ull << order;
  }
  return counted_free == free_frames_ && counted_free + counted_alloc == total_frames_;
}

}  // namespace numalp
