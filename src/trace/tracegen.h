// Phase-structured trace synthesis (DESIGN.md §14).
//
// Generates binary traces from embedded phase profiles modeled on real DL
// and HPC applications: a shared hot working set (weights / force tables)
// plus streaming activations, punctuated by mmap-lifetime churn — checkpoint
// buffers and shuffle/data-loader double buffers that are mapped, streamed
// through once, and unmapped, each leaving a small retained log/metadata
// region pinned behind it. The retained pages puncture otherwise-coalescable
// 2MB frames, so replaying the churn fragments the buddy allocator for real
// (the paper's abstracted-away THP pathology). Footprints scale with the
// target machine's DRAM, so any preset (including Tiny, for tests) works.
#ifndef NUMALP_SRC_TRACE_TRACEGEN_H_
#define NUMALP_SRC_TRACE_TRACEGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/topo/topology.h"

namespace numalp::trace {

struct TracegenOptions {
  std::string profile;  // one of TracegenProfiles()
  Topology topo = Topology::MachineA();
  std::uint64_t seed = 42;
  std::uint32_t accesses_per_thread = 4096;  // per epoch, must match replay
  // 0 = the profile's default duration. Smoke harnesses shrink this; the
  // phase schedule compresses proportionally.
  int epochs = 0;
};

// Embedded profile names: "ckpt-churn" (the flagship checkpoint-storm
// profile the thp-degrades-under-mmap-churn check runs on), "bert",
// "resnet50", "lammps", "namd".
const std::vector<std::string>& TracegenProfiles();

// Synthesizes the trace into `out_path`. The recorded workload name is
// "trace:<profile>" and the recorded machine/threads are the preset's.
// Throws std::runtime_error on unknown profile or I/O failure.
void GenerateTrace(const TracegenOptions& options, const std::string& out_path);

}  // namespace numalp::trace

#endif  // NUMALP_SRC_TRACE_TRACEGEN_H_
