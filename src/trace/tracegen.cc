#include "src/trace/tracegen.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/trace/trace_writer.h"
#include "src/workloads/access_source.h"

namespace numalp::trace {
namespace {

// One embedded phase profile. Footprints are fractions of the target
// machine's total DRAM so the same profile stresses every preset (including
// Tiny in unit tests) at the same footprint-to-DRAM ratio.
struct Profile {
  const char* name;
  int default_epochs;
  double model_frac;    // shared hot set (weights / force tables), THP-backed
  double model_zipf_s;  // page-popularity skew of the hot set
  double act_frac;      // streaming activations / neighbor lists
  double model_share;   // fraction of steady accesses hitting the hot set
  double write_fraction;
  // Checkpoint storm: one big mapped-streamed-unmapped buffer sized as a
  // fraction of (DRAM - persistent footprint). 0 = no storm.
  double storm_frac;
  int storm_epoch;
  // One retained log page is touched per this many buffer pages; the
  // retained region outlives the buffer and punctures its 2MB windows.
  std::uint32_t retained_interval;
  // Recurring shuffle / data-loader double-buffer churn.
  int cycle_interval;  // epochs between cycles; 0 = none
  double cycle_frac;   // of total DRAM
  // Late THP-eligible growth (optimizer states materializing after the
  // storm): its first-touch 2MB faults meet a fragmented buddy allocator.
  double growth_frac;  // of total DRAM; 0 = none
  int growth_epoch;
};

// Mixes modeled on the public phase behavior of the named applications:
// BERT-style training (large embedding/weight set, periodic shuffle),
// ResNet-50 (activation-heavy, data-loader churn), LAMMPS and NAMD
// (neighbor-list rebuild cycles). ckpt-churn is the flagship: a checkpoint
// storm plus retained logs engineered to fragment nearly every order-9
// window, followed by THP-eligible growth that must fault through the debris.
constexpr Profile kProfiles[] = {
    {"ckpt-churn", 120, 0.10, 1.05, 0.06, 0.60, 0.30, 0.94, 6, 256, 10, 0.05, 0.10, 16},
    {"bert", 100, 0.12, 0.90, 0.08, 0.55, 0.25, 0.0, 0, 256, 16, 0.04, 0.0, 0},
    {"resnet50", 100, 0.06, 0.80, 0.10, 0.45, 0.30, 0.0, 0, 256, 12, 0.04, 0.0, 0},
    {"lammps", 100, 0.04, 0.70, 0.14, 0.35, 0.35, 0.0, 0, 256, 20, 0.06, 0.0, 0},
    {"namd", 100, 0.05, 1.00, 0.12, 0.40, 0.30, 0.0, 0, 256, 15, 0.03, 0.0, 0},
};

const Profile* FindProfile(const std::string& name) {
  for (const Profile& profile : kProfiles) {
    if (name == profile.name) {
      return &profile;
    }
  }
  return nullptr;
}

// A steady-state region the uniform access pool draws from (activations,
// plus the growth region once its first touch completes).
struct PoolRegion {
  int region = 0;
  Addr base = 0;
  std::uint64_t pages = 0;
};

// A buffer being streamed through by all threads in parallel, each owning a
// contiguous page slice (so replayed first-touch lands per-node runs, like a
// real parallel checkpoint writer). Optionally interleaves retained-log
// touches and unmaps itself when every slice completes.
struct ChurnTask {
  int buffer_region = -1;
  Addr buffer_base = 0;
  std::uint64_t buffer_pages = 0;
  std::uint64_t buffer_bytes = 0;
  int retained_region = -1;
  Addr retained_base = 0;
  std::uint64_t retained_pages = 0;
  std::uint32_t retained_interval = 0;
  bool unmap_when_done = true;
  bool join_pool_when_done = false;
  std::vector<std::uint64_t> cursor;       // per-thread pages streamed so far
  std::vector<std::uint64_t> slice_begin;  // per-thread slice [begin, end)
  std::vector<std::uint64_t> slice_end;

  bool ThreadDone(int t) const {
    const auto i = static_cast<std::size_t>(t);
    return slice_begin[i] + cursor[i] >= slice_end[i];
  }
  bool Done() const {
    for (int t = 0; t < static_cast<int>(cursor.size()); ++t) {
      if (!ThreadDone(t)) {
        return false;
      }
    }
    return true;
  }
};

class Generator {
 public:
  Generator(const Profile& profile, const TracegenOptions& options)
      : profile_(profile),
        threads_(options.topo.num_cores()),
        per_thread_(options.accesses_per_thread),
        steady_epochs_(options.epochs > 0 ? options.epochs : profile.default_epochs),
        total_dram_(options.topo.total_dram_bytes()),
        seeder_(options.seed) {
    if (threads_ <= 0 || per_thread_ < 4) {
      throw std::runtime_error("tracegen: need >= 1 thread and >= 4 accesses per thread");
    }
    // Compress the phase schedule proportionally when the caller shortens
    // the run (smoke harnesses), keeping every phase present.
    const double stretch =
        static_cast<double>(steady_epochs_) / static_cast<double>(profile.default_epochs);
    if (profile.storm_frac > 0.0) {
      storm_epoch_ = std::max(1, static_cast<int>(profile.storm_epoch * stretch));
    }
    if (profile.growth_frac > 0.0) {
      growth_epoch_ = std::max(storm_epoch_ + 2, static_cast<int>(profile.growth_epoch * stretch));
    }
    if (profile.cycle_interval > 0) {
      cycle_interval_ = std::max(2, static_cast<int>(profile.cycle_interval * stretch));
    }

    const std::uint64_t model_bytes = SizeFrac(profile.model_frac);
    const std::uint64_t act_bytes = SizeFrac(profile.act_frac);
    growth_bytes_ = profile.growth_frac > 0.0 ? SizeFrac(profile.growth_frac) : 0;
    // The hot set: Zipf-popular pages clustered at the region start, so the
    // hottest 4KB pages share a handful of 2MB frames (the paper's
    // false-page-sharing pathology under THP).
    model_region_ = AddRegion(model_bytes, /*thp=*/true, 0.65, 1.2);
    act_region_ = AddRegion(act_bytes, /*thp=*/true, 0.45, 4.0);
    model_pages_ = regions_[static_cast<std::size_t>(model_region_)].bytes / kBytes4K;
    act_pages_ = regions_[static_cast<std::size_t>(act_region_)].bytes / kBytes4K;
    pool_.push_back({act_region_, regions_[static_cast<std::size_t>(act_region_)].base,
                     act_pages_});
    zipf_ = std::make_unique<ZipfSampler>(model_pages_, profile.model_zipf_s);
    for (int t = 0; t < threads_; ++t) {
      thread_rngs_.push_back(seeder_.Fork());
    }
  }

  TraceHeader Header(const TracegenOptions& options) const {
    TraceHeader header;
    header.machine = options.topo.name();
    header.workload = std::string("trace:") + profile_.name;
    header.seed = options.seed;
    header.threads = static_cast<std::uint32_t>(threads_);
    header.accesses_per_thread_per_epoch = per_thread_;
    header.regions = regions_;  // the churn regions arrive as RegionMap events
    return header;
  }

  void Run(TraceWriter& writer) {
    WriteSetupEpochs(writer);
    for (int e = 0; e < steady_epochs_; ++e) {
      std::vector<RegionMapEvent> maps = ScheduleEpoch(e);
      writer.BeginEpoch(/*in_setup=*/false);
      for (const RegionMapEvent& event : maps) {
        writer.RegionMap(event);
      }
      std::vector<WorkloadAccess> batch;
      for (int t = 0; t < threads_; ++t) {
        FillSteadyBatch(t, &batch);
        writer.Batch(t, batch);
      }
      RetireFinishedTasks(writer);
      writer.EndEpoch(/*done_after=*/e + 1 == steady_epochs_);
    }
    writer.Finish(/*completed=*/true);
  }

 private:
  std::uint64_t SizeFrac(double frac) const {
    const auto bytes = static_cast<std::uint64_t>(static_cast<double>(total_dram_) * frac);
    return std::max(AlignUp(bytes, kBytes2M), kBytes2M);
  }

  // Mirrors AddressSpace::MmapAnon's deterministic VA placement so the
  // recorded bases match what replay's fresh address space will return.
  Addr MapVa(std::uint64_t bytes) {
    const std::uint64_t aligned = AlignUp(bytes, kBytes4K);
    const Addr base = next_base_;
    next_base_ = AlignUp(next_base_ + aligned + kBytes1G, kBytes1G);
    return base;
  }

  int AddRegion(std::uint64_t bytes, bool thp, double intensity, double mlp) {
    if (regions_.size() >= 256) {
      throw std::runtime_error("tracegen: profile needs > 256 regions");
    }
    SourceRegion region;
    region.bytes = AlignUp(bytes, kBytes4K);
    region.base = MapVa(region.bytes);
    region.thp_eligible = thp;
    region.dram_intensity = intensity;
    region.mlp = mlp;
    regions_.push_back(region);
    return static_cast<int>(regions_.size()) - 1;
  }

  // Setup: first-touch every persistent page, round-robin page p -> thread
  // p % T (the synthetic generators' kRoundRobinPage owner), as many
  // in_setup epochs as the footprint needs. Threads that exhaust their share
  // re-touch their own pages so every batch stays full.
  void WriteSetupEpochs(TraceWriter& writer) {
    const std::uint64_t total_pages = model_pages_ + act_pages_;
    const std::uint64_t per_thread_pages =
        (total_pages + static_cast<std::uint64_t>(threads_) - 1) /
        static_cast<std::uint64_t>(threads_);
    const int setup_epochs = static_cast<int>(
        (per_thread_pages + per_thread_ - 1) / per_thread_);
    std::vector<WorkloadAccess> batch;
    for (int s = 0; s < setup_epochs; ++s) {
      writer.BeginEpoch(/*in_setup=*/true);
      for (int t = 0; t < threads_; ++t) {
        batch.clear();
        const std::uint64_t owned =
            (total_pages - static_cast<std::uint64_t>(t) +
             static_cast<std::uint64_t>(threads_) - 1) /
            static_cast<std::uint64_t>(threads_);
        for (std::uint32_t i = 0; i < per_thread_; ++i) {
          std::uint64_t k = static_cast<std::uint64_t>(s) * per_thread_ + i;
          if (owned == 0) {
            break;
          }
          if (k >= owned) {
            k %= owned;  // re-touch own pages once done
          }
          const std::uint64_t page =
              static_cast<std::uint64_t>(t) + k * static_cast<std::uint64_t>(threads_);
          batch.push_back(PersistentPageAccess(page));
        }
        writer.Batch(t, batch);
      }
      writer.EndEpoch(/*done_after=*/false);
    }
  }

  WorkloadAccess PersistentPageAccess(std::uint64_t page) const {
    WorkloadAccess access;
    if (page < model_pages_) {
      access.va = regions_[static_cast<std::size_t>(model_region_)].base + page * kBytes4K;
      access.region = static_cast<std::uint8_t>(model_region_);
    } else {
      access.va = regions_[static_cast<std::size_t>(act_region_)].base +
                  (page - model_pages_) * kBytes4K;
      access.region = static_cast<std::uint8_t>(act_region_);
    }
    access.write = true;  // first touch
    return access;
  }

  // Decides which lifetime events fire this epoch and returns the map events
  // to record (the matching regions were just added to regions_).
  std::vector<RegionMapEvent> ScheduleEpoch(int e) {
    std::vector<RegionMapEvent> maps;
    if (e == storm_epoch_) {
      const std::uint64_t persistent =
          model_pages_ * kBytes4K + act_pages_ * kBytes4K + growth_bytes_;
      const std::uint64_t free_bytes = total_dram_ > persistent ? total_dram_ - persistent : 0;
      const auto storm_bytes =
          static_cast<std::uint64_t>(static_cast<double>(free_bytes) * profile_.storm_frac);
      StartChurn(storm_bytes, /*retained=*/true, /*unmap=*/true, /*join_pool=*/false, &maps);
    } else if (cycle_interval_ > 0 && e > 0 && e % cycle_interval_ == 0 &&
               e != growth_epoch_ && active_.empty()) {
      StartChurn(SizeFrac(profile_.cycle_frac), /*retained=*/true, /*unmap=*/true,
                 /*join_pool=*/false, &maps);
    }
    if (e == growth_epoch_) {
      StartChurn(growth_bytes_, /*retained=*/false, /*unmap=*/false, /*join_pool=*/true, &maps);
    }
    return maps;
  }

  void StartChurn(std::uint64_t bytes, bool retained, bool unmap, bool join_pool,
                  std::vector<RegionMapEvent>* maps) {
    if (bytes < kBytes4K) {
      return;
    }
    ChurnTask task;
    // Growth is THP-eligible by design (its 2MB faults are the probe);
    // transient I/O buffers and retained logs are 4KB-grained, which is what
    // lets freed buffer frames interleave with pinned log frames.
    const bool thp = join_pool;
    task.buffer_region = AddRegion(bytes, thp, join_pool ? 0.5 : 0.7, join_pool ? 4.0 : 8.0);
    const SourceRegion& buffer = regions_[static_cast<std::size_t>(task.buffer_region)];
    task.buffer_base = buffer.base;
    task.buffer_bytes = buffer.bytes;
    task.buffer_pages = buffer.bytes / kBytes4K;
    maps->push_back({task.buffer_region, buffer});
    if (retained) {
      task.retained_interval = profile_.retained_interval;
      task.retained_pages = std::max<std::uint64_t>(1, task.buffer_pages / task.retained_interval);
      task.retained_region =
          AddRegion(task.retained_pages * kBytes4K, /*thp=*/false, 0.6, 2.0);
      const SourceRegion& log = regions_[static_cast<std::size_t>(task.retained_region)];
      task.retained_base = log.base;
      maps->push_back({task.retained_region, log});
    }
    task.unmap_when_done = unmap;
    task.join_pool_when_done = join_pool;
    const std::uint64_t slice =
        (task.buffer_pages + static_cast<std::uint64_t>(threads_) - 1) /
        static_cast<std::uint64_t>(threads_);
    for (int t = 0; t < threads_; ++t) {
      const std::uint64_t begin =
          std::min(static_cast<std::uint64_t>(t) * slice, task.buffer_pages);
      task.slice_begin.push_back(begin);
      task.slice_end.push_back(std::min(begin + slice, task.buffer_pages));
      task.cursor.push_back(0);
    }
    active_.push_back(std::move(task));
  }

  ChurnTask* ActiveTaskFor(int t) {
    for (ChurnTask& task : active_) {
      if (!task.ThreadDone(t)) {
        return &task;
      }
    }
    return nullptr;
  }

  void ChurnTouch(ChurnTask& task, int t, std::vector<WorkloadAccess>* batch) {
    const auto i = static_cast<std::size_t>(t);
    const std::uint64_t global = task.slice_begin[i] + task.cursor[i];
    batch->push_back({task.buffer_base + global * kBytes4K,
                      static_cast<std::uint8_t>(task.buffer_region), true});
    ++task.cursor[i];
    if (task.retained_region >= 0 && (global + 1) % task.retained_interval == 0) {
      const std::uint64_t log_page =
          std::min(global / task.retained_interval, task.retained_pages - 1);
      batch->push_back({task.retained_base + log_page * kBytes4K,
                        static_cast<std::uint8_t>(task.retained_region), true});
    }
  }

  WorkloadAccess SteadyAccess(int t, Rng& rng) {
    WorkloadAccess access;
    if (rng.NextDouble() < profile_.model_share) {
      const std::uint64_t page = zipf_->Sample(rng);
      access.va = regions_[static_cast<std::size_t>(model_region_)].base + page * kBytes4K +
                  rng.Uniform(kBytes4K / 64) * 64;
      access.region = static_cast<std::uint8_t>(model_region_);
    } else {
      const PoolRegion& pool = PickPool(rng);
      const std::uint64_t slice = std::max<std::uint64_t>(
          1, pool.pages / static_cast<std::uint64_t>(threads_));
      std::uint64_t page;
      if (rng.NextDouble() < 0.8) {
        // Mostly thread-local streaming (each thread works its own slice).
        page = std::min(static_cast<std::uint64_t>(t) * slice + rng.Uniform(slice),
                        pool.pages - 1);
      } else {
        page = rng.Uniform(pool.pages);
      }
      access.va = pool.base + page * kBytes4K + rng.Uniform(kBytes4K / 64) * 64;
      access.region = static_cast<std::uint8_t>(pool.region);
    }
    access.write = rng.Bernoulli(profile_.write_fraction);
    return access;
  }

  const PoolRegion& PickPool(Rng& rng) {
    std::uint64_t total = 0;
    for (const PoolRegion& pool : pool_) {
      total += pool.pages;
    }
    std::uint64_t x = rng.Uniform(total);
    for (const PoolRegion& pool : pool_) {
      if (x < pool.pages) {
        return pool;
      }
      x -= pool.pages;
    }
    return pool_.back();
  }

  void FillSteadyBatch(int t, std::vector<WorkloadAccess>* batch) {
    batch->clear();
    Rng& rng = thread_rngs_[static_cast<std::size_t>(t)];
    while (batch->size() < per_thread_) {
      ChurnTask* task = ActiveTaskFor(t);
      // A churn touch may carry a piggybacked retained-log touch; keep two
      // slots free so the pair never splits across epochs.
      if (task != nullptr && batch->size() + 2 <= per_thread_) {
        ChurnTouch(*task, t, batch);
      } else {
        batch->push_back(SteadyAccess(t, rng));
      }
    }
  }

  void RetireFinishedTasks(TraceWriter& writer) {
    for (std::size_t i = 0; i < active_.size();) {
      ChurnTask& task = active_[i];
      if (!task.Done()) {
        ++i;
        continue;
      }
      if (task.unmap_when_done) {
        writer.RegionUnmap({task.buffer_region, task.buffer_base, task.buffer_bytes});
      }
      if (task.join_pool_when_done) {
        pool_.push_back({task.buffer_region, task.buffer_base, task.buffer_pages});
      }
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  const Profile& profile_;
  const int threads_;
  const std::uint32_t per_thread_;
  const int steady_epochs_;
  const std::uint64_t total_dram_;
  Rng seeder_;
  std::vector<Rng> thread_rngs_;

  Addr next_base_ = 1ull << 32;
  std::vector<SourceRegion> regions_;
  int model_region_ = -1;
  int act_region_ = -1;
  std::uint64_t model_pages_ = 0;
  std::uint64_t act_pages_ = 0;
  std::uint64_t growth_bytes_ = 0;
  std::unique_ptr<ZipfSampler> zipf_;
  std::vector<PoolRegion> pool_;
  std::vector<ChurnTask> active_;

  int storm_epoch_ = -1;
  int growth_epoch_ = -1;
  int cycle_interval_ = 0;
};

}  // namespace

const std::vector<std::string>& TracegenProfiles() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const Profile& profile : kProfiles) {
      names.emplace_back(profile.name);
    }
    return names;
  }();
  return kNames;
}

void GenerateTrace(const TracegenOptions& options, const std::string& out_path) {
  const Profile* profile = FindProfile(options.profile);
  if (profile == nullptr) {
    std::string valid;
    for (const std::string& name : TracegenProfiles()) {
      valid += valid.empty() ? name : ", " + name;
    }
    throw std::runtime_error("tracegen: unknown profile '" + options.profile +
                             "' (valid: " + valid + ")");
  }
  Generator generator(*profile, options);
  TraceWriter writer(out_path, generator.Header(options));
  generator.Run(writer);
}

}  // namespace numalp::trace
