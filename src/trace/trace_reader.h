// Bulk-ingesting reader for the binary trace format (trace_format.h).
//
// Chunks carry explicit lengths, so the reader never scans for record
// boundaries: it issues one large sequential read per chunk (the bulk-scan
// ingest idiom) and keeps two chunk buffers — while the epoch loop consumes
// the decoded front chunk, the next one has already been read into the back
// buffer. The swap is synchronous (no background thread: deterministic, and
// clean under TSan); the win is that file I/O happens in chunk-sized slabs
// off the per-access path, not that it overlaps compute.
//
// Corruption handling is strict: a bad magic/version, a checksum mismatch, an
// oversized length prefix, or a truncated chunk all throw std::runtime_error.
#ifndef NUMALP_SRC_TRACE_TRACE_READER_H_
#define NUMALP_SRC_TRACE_TRACE_READER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/trace/trace_format.h"

namespace numalp::trace {

class TraceReader {
 public:
  // Opens `path`, validates magic/version, decodes the header chunk and
  // prefetches the first epoch chunk. Throws std::runtime_error on any
  // I/O or format error.
  explicit TraceReader(const std::string& path);
  ~TraceReader();

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  const TraceHeader& header() const { return header_; }

  // Decodes the next chunk into *out and prefetches the one after it.
  // Returns false (with out->trace_end set) once the trace-end marker is
  // reached; after that every call returns false.
  bool NextEpoch(TraceEpoch* out);

  // Valid once NextEpoch returned false: did the recorded run complete?
  bool completed() const { return completed_; }

 private:
  // Reads one framed chunk into `buffer` (checksum-verified).
  void ReadChunkInto(std::vector<std::uint8_t>* buffer);
  void DecodeEpoch(const std::vector<std::uint8_t>& payload, TraceEpoch* out) const;

  std::string path_;
  TraceHeader header_;
  std::FILE* file_ = nullptr;
  std::vector<std::uint8_t> front_;
  std::vector<std::uint8_t> back_;
  bool end_seen_ = false;
  bool completed_ = false;
};

// Reads and returns just the header of `path` (provenance for option
// parsing and replay validation) without ingesting the stream.
TraceHeader ReadTraceHeader(const std::string& path);

}  // namespace numalp::trace

#endif  // NUMALP_SRC_TRACE_TRACE_READER_H_
