// Records an access stream into the binary trace format (trace_format.h).
//
// The writer is fed at the simulation's *serial* commit points only — the
// per-epoch batch-fill loop runs single-threaded regardless of shard count or
// engine, so capture observes the identical stream at every jobs × shards ×
// engine combination and adds zero synchronization to the parallel slices
// (the bounded-overhead capture lesson: the recorder must not distort the
// workload being recorded).
#ifndef NUMALP_SRC_TRACE_TRACE_WRITER_H_
#define NUMALP_SRC_TRACE_TRACE_WRITER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/trace/trace_format.h"

namespace numalp::trace {

class TraceWriter {
 public:
  // Opens `path` and writes magic + version + the header chunk. Throws
  // std::runtime_error on I/O failure.
  TraceWriter(const std::string& path, const TraceHeader& header);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  const TraceHeader& header() const { return header_; }

  // One epoch = one chunk. Events accumulate in the payload buffer between
  // BeginEpoch and EndEpoch; EndEpoch frames and flushes the chunk.
  void BeginEpoch(bool in_setup);
  void RegionMap(const RegionMapEvent& event);
  void RegionUnmap(const RegionUnmapEvent& event);
  void Batch(int thread, const std::vector<WorkloadAccess>& accesses);
  void EndEpoch(bool done_after);

  // Writes the trace-end chunk and closes the file. Implicitly called (with
  // completed=false) by the destructor if the caller never finished.
  void Finish(bool completed);

 private:
  void WriteChunk();

  std::string path_;
  TraceHeader header_;
  std::FILE* file_ = nullptr;
  std::vector<std::uint8_t> payload_;
};

}  // namespace numalp::trace

#endif  // NUMALP_SRC_TRACE_TRACE_WRITER_H_
