#include "src/trace/trace_writer.h"

#include <stdexcept>

namespace numalp::trace {

TraceWriter::TraceWriter(const std::string& path, const TraceHeader& header)
    : path_(path), header_(header) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("trace: cannot open for writing: " + path);
  }
  std::uint32_t version = kTraceVersion;
  if (std::fwrite(kTraceMagic, 1, sizeof(kTraceMagic), file_) != sizeof(kTraceMagic) ||
      std::fwrite(&version, sizeof(version), 1, file_) != 1) {
    throw std::runtime_error("trace: short write: " + path);
  }
  payload_.clear();
  PutString(payload_, header_.machine);
  PutString(payload_, header_.workload);
  PutU64(payload_, header_.seed);
  PutU32(payload_, header_.threads);
  PutU32(payload_, header_.accesses_per_thread_per_epoch);
  PutVarint(payload_, header_.regions.size());
  for (const auto& region : header_.regions) {
    PutRegion(payload_, region);
  }
  WriteChunk();
}

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) {
    try {
      Finish(/*completed=*/false);
    } catch (...) {
      // Destructors must not throw; an unfinished trace is already marked
      // incomplete by its missing/false trace-end chunk.
    }
  }
}

void TraceWriter::BeginEpoch(bool in_setup) {
  payload_.clear();
  PutU8(payload_, static_cast<std::uint8_t>(EventKind::kEpochBegin));
  PutU8(payload_, in_setup ? 1 : 0);
}

void TraceWriter::RegionMap(const RegionMapEvent& event) {
  PutU8(payload_, static_cast<std::uint8_t>(EventKind::kRegionMap));
  PutVarint(payload_, static_cast<std::uint64_t>(event.region));
  PutRegion(payload_, event.desc);
}

void TraceWriter::RegionUnmap(const RegionUnmapEvent& event) {
  PutU8(payload_, static_cast<std::uint8_t>(EventKind::kRegionUnmap));
  PutVarint(payload_, static_cast<std::uint64_t>(event.region));
  PutU64(payload_, event.base);
  PutVarint(payload_, event.bytes);
}

void TraceWriter::Batch(int thread, const std::vector<WorkloadAccess>& accesses) {
  PutU8(payload_, static_cast<std::uint8_t>(EventKind::kBatch));
  PutVarint(payload_, static_cast<std::uint64_t>(thread));
  PutVarint(payload_, accesses.size());
  Addr prev = 0;
  for (const auto& access : accesses) {
    PutU8(payload_, access.region);
    const std::int64_t delta =
        static_cast<std::int64_t>(access.va) - static_cast<std::int64_t>(prev);
    PutVarint(payload_, (ZigZag(delta) << 1) | (access.write ? 1 : 0));
    prev = access.va;
  }
}

void TraceWriter::EndEpoch(bool done_after) {
  PutU8(payload_, static_cast<std::uint8_t>(EventKind::kEpochEnd));
  PutU8(payload_, done_after ? 1 : 0);
  WriteChunk();
}

void TraceWriter::Finish(bool completed) {
  if (file_ == nullptr) {
    return;
  }
  payload_.clear();
  PutU8(payload_, static_cast<std::uint8_t>(EventKind::kTraceEnd));
  PutU8(payload_, completed ? 1 : 0);
  WriteChunk();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    throw std::runtime_error("trace: close failed: " + path_);
  }
}

void TraceWriter::WriteChunk() {
  const std::uint32_t len = static_cast<std::uint32_t>(payload_.size());
  const std::uint64_t hash = Fnv1a(payload_.data(), payload_.size());
  if (std::fwrite(&len, sizeof(len), 1, file_) != 1 ||
      std::fwrite(&hash, sizeof(hash), 1, file_) != 1 ||
      (len != 0 && std::fwrite(payload_.data(), 1, len, file_) != len)) {
    throw std::runtime_error("trace: short write: " + path_);
  }
  payload_.clear();
}

}  // namespace numalp::trace
