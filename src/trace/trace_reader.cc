#include "src/trace/trace_reader.h"

#include <algorithm>
#include <stdexcept>

namespace numalp::trace {
namespace {

void DecodeHeader(const std::vector<std::uint8_t>& payload, TraceHeader* out) {
  Cursor cursor{payload.data(), payload.size(), 0};
  out->machine = cursor.String();
  out->workload = cursor.String();
  out->seed = cursor.U64();
  out->threads = cursor.U32();
  out->accesses_per_thread_per_epoch = cursor.U32();
  const std::uint64_t region_count = cursor.Varint();
  if (region_count > 256) {
    throw std::runtime_error("trace: implausible region count in header");
  }
  out->regions.clear();
  out->regions.reserve(region_count);
  for (std::uint64_t r = 0; r < region_count; ++r) {
    out->regions.push_back(GetRegion(cursor));
  }
}

bool IsTraceEnd(const std::vector<std::uint8_t>& payload) {
  return !payload.empty() &&
         payload[0] == static_cast<std::uint8_t>(EventKind::kTraceEnd);
}

}  // namespace

TraceReader::TraceReader(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    throw std::runtime_error("trace: cannot open: " + path);
  }
  char magic[sizeof(kTraceMagic)];
  std::uint32_t version = 0;
  if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
      std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("trace: bad magic: " + path);
  }
  if (std::fread(&version, sizeof(version), 1, file_) != 1 || version != kTraceVersion) {
    throw std::runtime_error("trace: unsupported version: " + path);
  }
  std::vector<std::uint8_t> header_chunk;
  ReadChunkInto(&header_chunk);
  DecodeHeader(header_chunk, &header_);
  // Prime the double buffer: the chunk the first NextEpoch will decode, plus
  // — unless that chunk is already the end marker — the one after it.
  ReadChunkInto(&front_);
  if (!IsTraceEnd(front_)) {
    ReadChunkInto(&back_);
  }
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool TraceReader::NextEpoch(TraceEpoch* out) {
  *out = TraceEpoch{};
  if (end_seen_) {
    out->trace_end = true;
    out->completed = completed_;
    return false;
  }
  DecodeEpoch(front_, out);
  if (out->trace_end) {
    end_seen_ = true;
    completed_ = out->completed;
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
    return false;
  }
  // Rotate the double buffer: the prefetched back chunk becomes current, and
  // unless it is the end marker the next chunk is read behind it.
  std::swap(front_, back_);
  back_.clear();
  if (!IsTraceEnd(front_)) {
    ReadChunkInto(&back_);
  }
  return true;
}

void TraceReader::ReadChunkInto(std::vector<std::uint8_t>* buffer) {
  std::uint32_t len = 0;
  std::uint64_t hash = 0;
  if (std::fread(&len, sizeof(len), 1, file_) != 1 ||
      std::fread(&hash, sizeof(hash), 1, file_) != 1) {
    throw std::runtime_error("trace: truncated (missing chunk frame): " + path_);
  }
  if (len > kMaxChunkBytes) {
    throw std::runtime_error("trace: corrupt chunk length: " + path_);
  }
  buffer->resize(len);
  if (len != 0 && std::fread(buffer->data(), 1, len, file_) != len) {
    throw std::runtime_error("trace: truncated chunk: " + path_);
  }
  if (Fnv1a(buffer->data(), buffer->size()) != hash) {
    throw std::runtime_error("trace: chunk checksum mismatch: " + path_);
  }
}

void TraceReader::DecodeEpoch(const std::vector<std::uint8_t>& payload,
                              TraceEpoch* out) const {
  Cursor cursor{payload.data(), payload.size(), 0};
  bool begun = false;
  while (!cursor.AtEnd()) {
    const auto kind = static_cast<EventKind>(cursor.U8());
    switch (kind) {
      case EventKind::kTraceEnd:
        out->trace_end = true;
        out->completed = cursor.U8() != 0;
        return;
      case EventKind::kEpochBegin:
        begun = true;
        out->in_setup = cursor.U8() != 0;
        break;
      case EventKind::kRegionMap: {
        RegionMapEvent event;
        event.region = static_cast<int>(cursor.Varint());
        event.desc = GetRegion(cursor);
        out->maps.push_back(event);
        break;
      }
      case EventKind::kRegionUnmap: {
        RegionUnmapEvent event;
        event.region = static_cast<int>(cursor.Varint());
        event.base = cursor.U64();
        event.bytes = cursor.Varint();
        out->unmaps.push_back(event);
        break;
      }
      case EventKind::kBatch: {
        const std::uint64_t thread = cursor.Varint();
        if (thread >= header_.threads) {
          throw std::runtime_error("trace: batch for out-of-range thread: " + path_);
        }
        const std::uint64_t count = cursor.Varint();
        // Every access is >= 2 encoded bytes; a count past that bound is a
        // corrupt varint, not a big batch.
        if (count > (cursor.size - cursor.pos + 1) / 2) {
          throw std::runtime_error("trace: corrupt batch count: " + path_);
        }
        if (out->batches.size() <= thread) {
          out->batches.resize(static_cast<std::size_t>(header_.threads));
        }
        auto& batch = out->batches[thread];
        batch.clear();
        batch.reserve(count);
        Addr prev = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
          WorkloadAccess access;
          access.region = cursor.U8();
          const std::uint64_t packed = cursor.Varint();
          access.write = (packed & 1) != 0;
          access.va = static_cast<Addr>(static_cast<std::int64_t>(prev) +
                                        UnZigZag(packed >> 1));
          prev = access.va;
          batch.push_back(access);
        }
        break;
      }
      case EventKind::kEpochEnd:
        if (!begun) {
          throw std::runtime_error("trace: epoch chunk without EpochBegin: " + path_);
        }
        out->done_after = cursor.U8() != 0;
        return;
      default:
        throw std::runtime_error("trace: unknown event kind: " + path_);
    }
    if (!begun) {
      throw std::runtime_error("trace: epoch chunk without EpochBegin: " + path_);
    }
  }
  throw std::runtime_error("trace: epoch chunk without EpochEnd: " + path_);
}

TraceHeader ReadTraceHeader(const std::string& path) {
  TraceReader reader(path);
  return reader.header();
}

}  // namespace numalp::trace
