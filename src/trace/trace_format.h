// Compact binary access-trace format (DESIGN.md §14).
//
// Layout: an 8-byte magic + u32 version, then a sequence of *chunks*, each
// framed as [u32 payload_len][u64 fnv1a(payload)][payload]. Chunk 0 is the
// header (machine/workload/seed provenance + the initial region table); every
// later chunk is one epoch (or the final trace-end marker). The per-chunk
// length prefix is what lets TraceReader bulk-ingest with large sequential
// reads and double-buffer chunks ahead of the epoch loop; the checksum makes
// truncation and corruption loud instead of silently replaying garbage.
//
// Epoch payloads are event sequences:
//   kEpochBegin  u8 in_setup
//   kRegionMap   varint region, u64 base, varint bytes, u8 flags,
//                f64 dram_intensity, f64 mlp
//   kRegionUnmap varint region, u64 base, varint bytes
//   kBatch       varint thread, varint count, then per access:
//                u8 region, varint((zigzag(va - prev_va) << 1) | write)
//   kEpochEnd    u8 done_after
//   kTraceEnd    u8 completed
//
// Accesses are delta-encoded against the previous VA of the same batch
// (access_index is implicit in position, the thread is the batch's): spatial
// locality makes most deltas fit in 1-3 varint bytes.
#ifndef NUMALP_SRC_TRACE_TRACE_FORMAT_H_
#define NUMALP_SRC_TRACE_TRACE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/workloads/access_source.h"

namespace numalp::trace {

inline constexpr char kTraceMagic[8] = {'N', 'U', 'M', 'A', 'L', 'P', 'T', 'R'};
inline constexpr std::uint32_t kTraceVersion = 1;
// Backstop against nonsense length prefixes in corrupt files.
inline constexpr std::uint32_t kMaxChunkBytes = 1u << 28;

enum class EventKind : std::uint8_t {
  kEpochBegin = 1,
  kRegionMap = 2,
  kRegionUnmap = 3,
  kBatch = 4,
  kEpochEnd = 5,
  kTraceEnd = 6,
};

// Versioned provenance: which cell produced this stream.
struct TraceHeader {
  std::string machine;
  std::string workload;
  std::uint64_t seed = 0;
  std::uint32_t threads = 0;
  std::uint32_t accesses_per_thread_per_epoch = 0;
  std::vector<SourceRegion> regions;  // regions live at epoch 0

  // The stable provenance tag carried into ResultRow.trace_source by both
  // the capturing run and every replay of the file.
  std::string Provenance() const {
    return workload + "@" + machine + "#" + std::to_string(seed);
  }
};

// One decoded epoch chunk.
struct TraceEpoch {
  bool trace_end = false;  // final marker chunk, not an epoch
  bool completed = false;  // valid when trace_end
  bool in_setup = false;
  bool done_after = false;
  std::vector<RegionMapEvent> maps;
  std::vector<RegionUnmapEvent> unmaps;
  // Indexed by thread; absent threads have empty batches.
  std::vector<std::vector<WorkloadAccess>> batches;
};

inline std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

inline std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// --- Encoding into a byte buffer -----------------------------------------

inline void PutU8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

inline void PutFixed(std::vector<std::uint8_t>& out, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + n);
}

inline void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  PutFixed(out, &v, sizeof(v));  // host order; the format is single-host
}

inline void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  PutFixed(out, &v, sizeof(v));
}

inline void PutF64(std::vector<std::uint8_t>& out, double v) {
  PutFixed(out, &v, sizeof(v));
}

inline void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void PutString(std::vector<std::uint8_t>& out, const std::string& s) {
  PutVarint(out, s.size());
  PutFixed(out, s.data(), s.size());
}

// --- Decoding from a byte buffer -----------------------------------------

struct Cursor {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;

  bool AtEnd() const { return pos >= size; }
  void Need(std::size_t n) const {
    if (pos + n > size) {
      throw std::runtime_error("trace: truncated chunk payload");
    }
  }
  std::uint8_t U8() {
    Need(1);
    return data[pos++];
  }
  void Fixed(void* out, std::size_t n) {
    Need(n);
    std::memcpy(out, data + pos, n);
    pos += n;
  }
  std::uint32_t U32() {
    std::uint32_t v;
    Fixed(&v, sizeof(v));
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v;
    Fixed(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v;
    Fixed(&v, sizeof(v));
    return v;
  }
  std::uint64_t Varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const std::uint8_t byte = U8();
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        return v;
      }
      shift += 7;
      if (shift >= 64) {
        throw std::runtime_error("trace: overlong varint");
      }
    }
  }
  std::string String() {
    const std::uint64_t n = Varint();
    Need(n);
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }
};

// --- Region descriptor packing -------------------------------------------

inline std::uint8_t RegionFlags(const SourceRegion& r) {
  std::uint8_t flags = r.thp_eligible ? 1 : 0;
  if (r.explicit_page.has_value()) {
    flags |= static_cast<std::uint8_t>((*r.explicit_page == PageSize::k2M ? 1 : 2) << 1);
  }
  return flags;
}

inline void ApplyRegionFlags(std::uint8_t flags, SourceRegion* r) {
  r->thp_eligible = (flags & 1) != 0;
  const std::uint8_t explicit_bits = (flags >> 1) & 3;
  if (explicit_bits == 1) {
    r->explicit_page = PageSize::k2M;
  } else if (explicit_bits == 2) {
    r->explicit_page = PageSize::k1G;
  } else {
    r->explicit_page.reset();
  }
}

inline void PutRegion(std::vector<std::uint8_t>& out, const SourceRegion& r) {
  PutU64(out, r.base);
  PutVarint(out, r.bytes);
  PutU8(out, RegionFlags(r));
  PutF64(out, r.dram_intensity);
  PutF64(out, r.mlp);
}

inline SourceRegion GetRegion(Cursor& cursor) {
  SourceRegion r;
  r.base = cursor.U64();
  r.bytes = cursor.Varint();
  ApplyRegionFlags(cursor.U8(), &r);
  r.dram_intensity = cursor.F64();
  r.mlp = cursor.F64();
  return r;
}

}  // namespace numalp::trace

#endif  // NUMALP_SRC_TRACE_TRACE_FORMAT_H_
