#include "src/workloads/workload.h"

#include <algorithm>
#include <cassert>

#include "src/common/log.h"

namespace numalp {

double WorkloadSpec::TotalShare() const {
  double total = 0.0;
  for (const auto& region : regions) {
    total += region.access_share;
  }
  return total;
}

Workload::Workload(const WorkloadSpec& spec, AddressSpace& address_space, int num_threads,
                   std::uint64_t seed, bool batched_generation)
    : spec_(spec), num_threads_(num_threads), batched_(batched_generation) {
  assert(num_threads_ > 0);
  // Map every region plus an implicit per-thread scratch page (threads spin
  // there while waiting for the setup barrier).
  regions_.reserve(spec_.regions.size() + 1);
  for (const auto& region_spec : spec_.regions) {
    RegionRt rt;
    rt.spec = &spec_.regions[static_cast<std::size_t>(&region_spec - spec_.regions.data())];
    VmaOptions opts;
    opts.name = region_spec.name;
    opts.thp_eligible = region_spec.thp_eligible;
    opts.explicit_page = region_spec.explicit_page;
    rt.base = address_space.MmapAnon(region_spec.bytes, opts);
    rt.vma_bytes = AlignUp(region_spec.bytes, kBytes4K);
    rt.pages = region_spec.bytes / kBytes4K;
    rt.slice_pages = rt.pages / static_cast<std::uint64_t>(num_threads_);
    if (region_spec.pattern == PatternKind::kZipf) {
      rt.zipf.emplace(rt.pages, region_spec.zipf_s);
      const int blocks = region_spec.zipf_block_shuffle;
      if (blocks > 1 && rt.pages >= static_cast<std::uint64_t>(blocks)) {
        rt.zipf_stride = rt.pages / static_cast<std::uint64_t>(blocks);
      }
    }
    if (region_spec.pattern == PatternKind::kHotChunks) {
      rt.chunks = region_spec.num_chunks > 0 ? region_spec.num_chunks : num_threads_;
      rt.chunk_pages = std::max<std::uint64_t>(1, region_spec.chunk_bytes / kBytes4K);
      rt.stride_pages = std::max<std::uint64_t>(rt.chunk_pages,
                                                region_spec.chunk_stride / kBytes4K);
      assert(static_cast<std::uint64_t>(rt.chunks) * rt.stride_pages <= rt.pages);
    }
    regions_.push_back(std::move(rt));
  }
  // Scratch region: one private 4KB page per thread.
  {
    RegionRt rt;
    static const RegionSpec kScratchSpec = [] {
      RegionSpec s;
      s.name = "scratch";
      s.dram_intensity = 0.01;
      s.access_share = 0.0;
      return s;
    }();
    rt.spec = &kScratchSpec;
    VmaOptions opts;
    opts.name = "scratch";
    opts.thp_eligible = false;
    rt.base = address_space.MmapAnon(static_cast<std::uint64_t>(num_threads_) * kBytes4K, opts);
    rt.vma_bytes = static_cast<std::uint64_t>(num_threads_) * kBytes4K;
    rt.pages = static_cast<std::uint64_t>(num_threads_);
    rt.slice_pages = 1;
    scratch_region_ = static_cast<int>(regions_.size());
    scratch_base_ = rt.base;
    regions_.push_back(std::move(rt));
  }

  // Per-thread state + setup queues.
  Rng seeder(seed);
  threads_.resize(static_cast<std::size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    ThreadRt& thread = threads_[static_cast<std::size_t>(t)];
    thread.rng = seeder.Fork();
    thread.seq_cursor.assign(regions_.size(), 0);
    thread.alloc_cursor.assign(regions_.size(), 0);
    // Desynchronize streaming phases: threads of a real program do not sweep
    // their slices in lockstep, so each sequential cursor starts at a random
    // position within its slice.
    for (std::size_t r = 0; r < regions_.size(); ++r) {
      if (regions_[r].spec->pattern == PatternKind::kSequential &&
          regions_[r].slice_pages > 0) {
        thread.seq_cursor[r] = thread.rng.Uniform(regions_[r].slice_pages);
      }
    }
    // Scratch page first so the spin target exists immediately.
    thread.setup.emplace_back(static_cast<std::uint32_t>(scratch_region_),
                              static_cast<std::uint64_t>(t));
  }
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const RegionRt& region = regions_[r];
    if (region.spec->incremental || static_cast<int>(r) == scratch_region_) {
      continue;
    }
    switch (region.spec->setup_owner) {
      case SetupOwner::kRoundRobinPage:
        for (std::uint64_t p = 0; p < region.pages; ++p) {
          threads_[static_cast<std::size_t>(p % static_cast<std::uint64_t>(num_threads_))]
              .setup.emplace_back(static_cast<std::uint32_t>(r), p);
        }
        break;
      case SetupOwner::kPartitionOwner:
        for (int t = 0; t < num_threads_; ++t) {
          const std::uint64_t lo = static_cast<std::uint64_t>(t) * region.slice_pages;
          for (std::uint64_t p = lo; p < lo + region.slice_pages; ++p) {
            threads_[static_cast<std::size_t>(t)].setup.emplace_back(
                static_cast<std::uint32_t>(r), p);
          }
        }
        break;
      case SetupOwner::kChunkOwner:
        for (int c = 0; c < region.chunks; ++c) {
          const int owner = c % num_threads_;
          const std::uint64_t lo = static_cast<std::uint64_t>(c) * region.stride_pages;
          for (std::uint64_t p = lo; p < lo + region.chunk_pages; ++p) {
            threads_[static_cast<std::size_t>(owner)].setup.emplace_back(
                static_cast<std::uint32_t>(r), p);
          }
        }
        break;
      case SetupOwner::kThreadZero:
        for (std::uint64_t p = 0; p < region.pages; ++p) {
          threads_[0].setup.emplace_back(static_cast<std::uint32_t>(r), p);
        }
        break;
    }
  }
  // Randomly rotate each thread's setup queue (keeping the scratch page
  // first): on real machines the winner of a first-touch race for a shared
  // 2MB window is effectively random among the threads whose data it spans;
  // without this, deterministic thread ordering would always hand shared
  // windows to the lowest thread id.
  for (auto& thread : threads_) {
    auto& queue = thread.setup;
    if (queue.size() > 2) {
      const std::size_t offset = 1 + thread.rng.Uniform(queue.size() - 1);
      std::rotate(queue.begin() + 1, queue.begin() + static_cast<std::ptrdiff_t>(offset),
                  queue.end());
    }
  }
  setup_remaining_threads_ = num_threads_;

  // Steady-state region selection CDF.
  const double total_share = spec_.TotalShare();
  double accum = 0.0;
  share_cdf_.assign(regions_.size(), 1.0);
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    accum += regions_[r].spec->access_share / (total_share > 0 ? total_share : 1.0);
    share_cdf_[r] = accum;
  }
  share_cdf_.back() = 1.0;
}

Addr Workload::PageVa(const RegionRt& region, std::uint64_t page, Rng& rng) const {
  // Random cache-line-aligned offset inside the 4KB page.
  return region.base + page * kBytes4K + rng.Uniform(kBytes4K / 64) * 64;
}

void Workload::BeginEpoch() { barrier_this_epoch_ = setup_remaining_threads_ > 0; }

void Workload::FillBatch(int thread, std::size_t n, std::vector<WorkloadAccess>& out) {
  out.clear();
  out.reserve(n);
  ThreadRt& state = threads_[static_cast<std::size_t>(thread)];
  std::size_t produced = 0;
  // Setup phase: drain this thread's first-touch queue.
  while (state.setup_cursor < state.setup.size() && produced < n) {
    const auto [region_index, page] = state.setup[state.setup_cursor++];
    const RegionRt& region = regions_[region_index];
    WorkloadAccess access;
    access.va = PageVa(region, page, state.rng);
    access.region = static_cast<std::uint8_t>(region_index);
    access.write = true;  // initialization writes
    out.push_back(access);
    ++produced;
    if (state.setup_cursor == state.setup.size()) {
      --setup_remaining_threads_;
    }
  }
  // Barrier: for the whole epoch in which any thread still initializes,
  // finished threads spin on their scratch page instead of racing ahead and
  // first-touching pages that belong to another thread's init loop.
  const bool barrier = barrier_this_epoch_;
  if (barrier) {
    const Addr spin_page = scratch_base_ + static_cast<std::uint64_t>(thread) * kBytes4K;
    const std::uint8_t region = static_cast<std::uint8_t>(scratch_region_);
    if (batched_ && produced < n) {
      // The spin accesses consume one offset draw each and nothing else: a
      // fixed-length run, drawn through the batch API in one sweep.
      std::uint64_t offsets[64];
      Rng rng = state.rng;
      while (produced < n) {
        const std::size_t run = std::min<std::size_t>(64, n - produced);
        rng.UniformRun(kBytes4K / 64, offsets, run);
        for (std::size_t i = 0; i < run; ++i) {
          out.push_back(WorkloadAccess{spin_page + offsets[i] * 64, region, false});
        }
        produced += run;
      }
      state.rng = rng;
      return;
    }
    while (produced < n) {
      WorkloadAccess access;
      access.va = spin_page + state.rng.Uniform(kBytes4K / 64) * 64;
      access.region = region;
      access.write = false;
      out.push_back(access);
      ++produced;
    }
    return;
  }
  if (produced < n) {
    const std::size_t steady = n - produced;
    if (batched_) {
      SteadyRun(thread, steady, out);
    } else {
      for (std::size_t i = 0; i < steady; ++i) {
        out.push_back(SteadyAccess(thread));
      }
    }
    state.steady_issued += steady;
  }
}

void Workload::SteadyRun(int thread, std::size_t count, std::vector<WorkloadAccess>& out) {
  ThreadRt& state = threads_[static_cast<std::size_t>(thread)];
  // The RNG state lives in registers for the whole batch; every variate is
  // drawn in the exact order SteadyAccess draws it (region select, pattern
  // draws, intra-page offset, write flag), so the stream is byte-identical.
  Rng rng = state.rng;
  const double* cdf = share_cdf_.data();
  const std::size_t last_region = regions_.size() - 1;
  const double write_fraction = spec_.write_fraction;
  std::size_t remaining = count;

  std::size_t region_index = 0;
  {
    const double u = rng.NextDouble();
    while (region_index < last_region && cdf[region_index] <= u) {
      ++region_index;
    }
  }
  while (remaining > 0) {
    RegionRt& region = regions_[region_index];
    const RegionSpec& rspec = *region.spec;
    const Addr base = region.base;
    const std::uint8_t rid = static_cast<std::uint8_t>(region_index);
    // One run: accesses keep landing in this region until the region draw
    // moves. The pattern dispatch and region tables are paid per run, and
    // the whole draw/emit chain stays in one tight loop.
    const auto emit = [&](std::uint64_t page) {
      WorkloadAccess access;
      access.va = base + page * kBytes4K + rng.Uniform(kBytes4K / 64) * 64;
      access.region = rid;
      access.write = rng.Bernoulli(write_fraction);
      out.push_back(access);
    };
    // Draws the next access's region; true while the run continues.
    const auto advance = [&]() -> bool {
      if (--remaining == 0) {
        return false;
      }
      const double u = rng.NextDouble();
      std::size_t next = 0;
      while (next < last_region && cdf[next] <= u) {
        ++next;
      }
      if (next == region_index) {
        return true;
      }
      region_index = next;
      return false;
    };

    if (rspec.incremental) {
      std::uint64_t& cursor = state.alloc_cursor[region_index];
      const std::uint64_t slice_lo =
          static_cast<std::uint64_t>(thread) * region.slice_pages;
      do {
        const bool can_grow = cursor < region.slice_pages;
        const bool fresh = can_grow && (cursor == 0 || rng.Bernoulli(rspec.fresh_fraction));
        std::uint64_t page;
        if (fresh) {
          page = slice_lo + cursor;
          ++cursor;
        } else {
          page = slice_lo + rng.Uniform(std::max<std::uint64_t>(1, cursor));
        }
        emit(page);
      } while (advance());
      continue;
    }
    switch (rspec.pattern) {
      case PatternKind::kUniform:
        do {
          emit(rng.Uniform(region.pages));
        } while (advance());
        break;
      case PatternKind::kZipf: {
        const ZipfSampler& zipf = *region.zipf;
        const std::uint64_t stride = region.zipf_stride;
        const std::uint64_t blocks =
            static_cast<std::uint64_t>(rspec.zipf_block_shuffle);
        const std::uint64_t pages = region.pages;
        do {
          const std::uint64_t rank = zipf.Sample(rng);
          std::uint64_t page;
          if (stride != 0) {
            page = (rank % blocks) * stride + rank / blocks;
            if (page >= pages) {
              page = rank;  // tail ranks past the blocked area map identically
            }
          } else {
            page = rank;
          }
          emit(page);
        } while (advance());
        break;
      }
      case PatternKind::kHotChunks: {
        const std::uint64_t chunks = static_cast<std::uint64_t>(region.chunks);
        do {
          const std::uint64_t chunk = rng.Uniform(chunks);
          emit(chunk * region.stride_pages + rng.Uniform(region.chunk_pages));
        } while (advance());
        break;
      }
      case PatternKind::kPartitioned: {
        const double local_fraction = rspec.local_fraction;
        const std::uint64_t slice_pages = region.slice_pages;
        const std::uint64_t bound = std::max<std::uint64_t>(1, slice_pages);
        do {
          std::uint64_t slice = static_cast<std::uint64_t>(thread);
          if (!rng.Bernoulli(local_fraction)) {
            const int neighbor =
                rng.Bernoulli(0.5) ? thread + 1 : thread + num_threads_ - 1;
            slice = static_cast<std::uint64_t>(neighbor % num_threads_);
          }
          emit(slice * slice_pages + rng.Uniform(bound));
        } while (advance());
        break;
      }
      case PatternKind::kSequential: {
        std::uint64_t& cursor = state.seq_cursor[region_index];
        const std::uint64_t slice_lo =
            static_cast<std::uint64_t>(thread) * region.slice_pages;
        const std::uint64_t slice_pages = std::max<std::uint64_t>(1, region.slice_pages);
        do {
          const std::uint64_t page = slice_lo + cursor;
          // The cursor-advance draw precedes the offset/write draws, exactly
          // as in SteadyAccess.
          if (rng.Bernoulli(1.0 / 16)) {
            cursor = (cursor + 1) % slice_pages;
          }
          emit(page);
        } while (advance());
        break;
      }
    }
  }
  state.rng = rng;
}

WorkloadAccess Workload::SteadyAccess(int thread) {
  ThreadRt& state = threads_[static_cast<std::size_t>(thread)];
  Rng& rng = state.rng;
  // Region by access share.
  const double u = rng.NextDouble();
  std::size_t region_index = 0;
  while (region_index + 1 < share_cdf_.size() && share_cdf_[region_index] <= u) {
    ++region_index;
  }
  const RegionRt& region = regions_[region_index];
  const RegionSpec& rspec = *region.spec;

  std::uint64_t page = 0;
  if (rspec.incremental) {
    std::uint64_t& cursor = state.alloc_cursor[region_index];
    const std::uint64_t slice_lo =
        static_cast<std::uint64_t>(thread) * region.slice_pages;
    const bool can_grow = cursor < region.slice_pages;
    const bool fresh = can_grow && (cursor == 0 || rng.Bernoulli(rspec.fresh_fraction));
    if (fresh) {
      page = slice_lo + cursor;
      ++cursor;
    } else {
      page = slice_lo + rng.Uniform(std::max<std::uint64_t>(1, cursor));
    }
  } else {
    switch (rspec.pattern) {
      case PatternKind::kUniform:
        page = rng.Uniform(region.pages);
        break;
      case PatternKind::kZipf: {
        const std::uint64_t rank = region.zipf->Sample(rng);
        if (region.zipf_stride != 0) {
          const std::uint64_t blocks =
              static_cast<std::uint64_t>(rspec.zipf_block_shuffle);
          page = (rank % blocks) * region.zipf_stride + rank / blocks;
          if (page >= region.pages) {
            page = rank;  // tail ranks past the blocked area map identically
          }
        } else {
          // Identity rank -> page: hot pages cluster at the region start,
          // the way early-allocated hot objects cluster in heaps.
          page = rank;
        }
        break;
      }
      case PatternKind::kHotChunks: {
        const std::uint64_t chunk = rng.Uniform(static_cast<std::uint64_t>(region.chunks));
        page = chunk * region.stride_pages + rng.Uniform(region.chunk_pages);
        break;
      }
      case PatternKind::kPartitioned: {
        std::uint64_t slice = static_cast<std::uint64_t>(thread);
        if (!rng.Bernoulli(rspec.local_fraction)) {
          // Boundary sharing with a neighbouring thread's slice.
          const int neighbor = rng.Bernoulli(0.5) ? thread + 1 : thread + num_threads_ - 1;
          slice = static_cast<std::uint64_t>(neighbor % num_threads_);
        }
        page = slice * region.slice_pages + rng.Uniform(std::max<std::uint64_t>(1, region.slice_pages));
        break;
      }
      case PatternKind::kSequential: {
        std::uint64_t& cursor = state.seq_cursor[region_index];
        const std::uint64_t slice_lo =
            static_cast<std::uint64_t>(thread) * region.slice_pages;
        page = slice_lo + cursor;
        // A stream touches ~16 cache lines per page before moving on, so the
        // page advances once per ~16 modelled accesses (TLB-realistic).
        if (rng.Bernoulli(1.0 / 16)) {
          cursor = (cursor + 1) % std::max<std::uint64_t>(1, region.slice_pages);
        }
        break;
      }
    }
  }
  WorkloadAccess access;
  access.va = PageVa(region, page, rng);
  access.region = static_cast<std::uint8_t>(region_index);
  access.write = rng.Bernoulli(spec_.write_fraction);
  return access;
}

bool Workload::Done() const {
  for (const auto& thread : threads_) {
    if (thread.steady_issued < spec_.steady_accesses_per_thread) {
      return false;
    }
  }
  return true;
}

std::uint64_t Workload::footprint_bytes() const {
  std::uint64_t total = 0;
  for (const auto& region : regions_) {
    total += region.pages * kBytes4K;
  }
  return total;
}

}  // namespace numalp
