// AccessSource that replays a recorded binary trace (DESIGN.md §14).
//
// The replayed stream is byte-identical to the captured one: batches come
// back exactly as recorded, region VMAs are re-created at the recorded bases
// (MmapAnon is deterministic for a fresh AddressSpace, which replay
// verifies), and the recorded setup/steady split and completion point are
// honored. Lifetime events make this the first source whose regions die
// mid-run: RegionUnmap events flow back to the simulation, which applies
// them through AddressSpace::MunmapRange — real frames return to the buddy
// allocator and long-lived churn fragments it organically.
#ifndef NUMALP_SRC_WORKLOADS_TRACE_WORKLOAD_H_
#define NUMALP_SRC_WORKLOADS_TRACE_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/trace/trace_reader.h"
#include "src/vm/address_space.h"
#include "src/workloads/access_source.h"
#include "src/workloads/spec.h"

namespace numalp {

class TraceWorkload : public AccessSource {
 public:
  // Opens the trace and maps its epoch-0 region table into `address_space`
  // (which must be fresh: recorded bases are validated against the actual
  // MmapAnon results). Throws std::runtime_error on format errors or a
  // thread-count mismatch with the recorded machine.
  TraceWorkload(const std::string& path, AddressSpace& address_space, int num_threads);

  void BeginEpoch() override;
  void FillBatch(int thread, std::size_t n, std::vector<WorkloadAccess>& out) override;
  bool Done() const override;
  bool SetupDone() const override;

  int num_threads() const override { return num_threads_; }
  int num_regions() const override { return static_cast<int>(regions_.size()); }
  SourceRegion region(int r) const override {
    return regions_[static_cast<std::size_t>(r)];
  }
  std::uint64_t footprint_bytes() const override { return footprint_bytes_; }

  void DrainMapEvents(std::vector<RegionMapEvent>* out) override;
  void DrainUnmapEvents(std::vector<RegionUnmapEvent>* out) override;

  const trace::TraceHeader& header() const { return reader_.header(); }

 private:
  void MapRegion(int region_id, const SourceRegion& desc);

  trace::TraceReader reader_;
  AddressSpace& address_space_;
  int num_threads_ = 0;
  std::vector<SourceRegion> regions_;  // by id; unmapped ids keep their entry
  std::uint64_t footprint_bytes_ = 0;
  trace::TraceEpoch current_;
  trace::TraceEpoch next_;
  bool next_valid_ = false;
  bool started_ = false;    // BeginEpoch called at least once
  bool exhausted_ = false;  // replay ran past the recorded epochs
};

// Builds the WorkloadSpec for `--workload trace:FILE`: reads the header so
// the replayed rows keep the recorded workload name as their coordinate.
WorkloadSpec MakeTraceWorkloadSpec(const std::string& trace_file);

}  // namespace numalp

#endif  // NUMALP_SRC_WORKLOADS_TRACE_WORKLOAD_H_
