// Synthetic models of the paper's benchmark suite.
//
// Each model encodes the stream properties the paper measures for that
// benchmark (Table 1, Table 2): footprint, allocation intensity, partitioning
// and sharing, hot chunks, and popularity skew. Footprints are the paper's
// real footprints divided by the repository-wide 1/48 memory scale, keeping
// every footprint-to-DRAM and footprint-to-TLB-reach ratio intact.
// EXPERIMENTS.md records, per benchmark, the paper's observed numbers next to
// the numbers these models reproduce.
#include "src/workloads/spec.h"

#include <cassert>

namespace numalp {

namespace {

RegionSpec Region(std::string name, std::uint64_t bytes, double share, PatternKind pattern,
                  double dram_intensity) {
  RegionSpec region;
  region.name = std::move(name);
  region.bytes = bytes;
  region.access_share = share;
  region.pattern = pattern;
  region.dram_intensity = dram_intensity;
  return region;
}

}  // namespace

std::string_view NameOf(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kBT_B:
      return "BT.B";
    case BenchmarkId::kCG_D:
      return "CG.D";
    case BenchmarkId::kDC_A:
      return "DC.A";
    case BenchmarkId::kEP_C:
      return "EP.C";
    case BenchmarkId::kFT_C:
      return "FT.C";
    case BenchmarkId::kIS_D:
      return "IS.D";
    case BenchmarkId::kLU_B:
      return "LU.B";
    case BenchmarkId::kMG_D:
      return "MG.D";
    case BenchmarkId::kSP_B:
      return "SP.B";
    case BenchmarkId::kUA_B:
      return "UA.B";
    case BenchmarkId::kUA_C:
      return "UA.C";
    case BenchmarkId::kWC:
      return "WC";
    case BenchmarkId::kWR:
      return "WR";
    case BenchmarkId::kKmeans:
      return "Kmeans";
    case BenchmarkId::kMatrixMultiply:
      return "MatrixMultiply";
    case BenchmarkId::kPca:
      return "pca";
    case BenchmarkId::kWrmem:
      return "wrmem";
    case BenchmarkId::kSSCA:
      return "SSCA.20";
    case BenchmarkId::kSPECjbb:
      return "SPECjbb";
    case BenchmarkId::kStreamcluster:
      return "streamcluster";
    case BenchmarkId::kSparseFootprint:
      return "sparse-footprint";
  }
  return "?";
}

WorkloadSpec MakeWorkloadSpec(BenchmarkId id, const Topology& topo) {
  // Partitioned working sets are sized per thread so that per-slice geometry
  // (the ratio of a thread's block to the 2MB window) matches the real
  // benchmarks: the "unaffected" suite gets window-aligned slices of a few
  // MiB; UA/LU (and streamcluster under 1GB pages) keep deliberately fine
  // slices because page-level false sharing is their story.
  const std::uint64_t T = static_cast<std::uint64_t>(topo.num_cores());
  WorkloadSpec spec;
  spec.name = std::string(NameOf(id));

  switch (id) {
    case BenchmarkId::kBT_B: {
      // Block-tridiagonal solver: cleanly partitioned, cache-friendly.
      // THP: small TLB win; no NUMA change.
      auto grid = Region("grid", T * 8 * kMiB, 0.85, PatternKind::kSequential, 0.35);
      grid.setup_owner = SetupOwner::kPartitionOwner;
      auto faces = Region("faces", 8 * kMiB, 0.15, PatternKind::kUniform, 0.3);
      spec.regions = {grid, faces};
      break;
    }
    case BenchmarkId::kCG_D: {
      // Conjugate gradient, class D. Matrix rows stream privately per
      // thread (whole 2MB windows each); the reduction/communication
      // vectors are 16KB chunks spread 256KB apart that *every* thread
      // hammers. Under 4KB pages the chunks are 28 distinct page groups
      // spread across nodes (near-perfect balance); THP coalesces each
      // group of 8 into one 2MB page -> 3 hot pages, fewer than the node
      // count: the hot-page effect (Table 2: PAMUP 0% -> 8%, NHP 0 -> 3,
      // imbalance 1% -> 59%).
      auto rows = Region("matrix-rows", T * 6 * kMiB, 0.37, PatternKind::kSequential, 0.4);
      rows.setup_owner = SetupOwner::kPartitionOwner;
      auto vec = Region("x-vector", 8 * kMiB, 0.08, PatternKind::kUniform, 0.6);
      auto vectors = Region("hot-vectors", 6 * kMiB, 0.55, PatternKind::kHotChunks, 0.9);
      vectors.chunk_bytes = 16 * kKiB;
      vectors.chunk_stride = 256 * kKiB;
      vectors.num_chunks = 24;
      vectors.setup_owner = SetupOwner::kChunkOwner;
      spec.regions = {rows, vec, vectors};
      break;
    }
    case BenchmarkId::kDC_A: {
      auto cube = Region("cube", T * 4 * kMiB, 0.8, PatternKind::kSequential, 0.2);
      cube.setup_owner = SetupOwner::kPartitionOwner;
      auto views = Region("views", 16 * kMiB, 0.2, PatternKind::kUniform, 0.25);
      views.mlp = 2.0;
      spec.regions = {cube, views};
      break;
    }
    case BenchmarkId::kEP_C: {
      // Embarrassingly parallel in compute, but the shared constants table
      // is initialized by the master thread: a pre-existing NUMA imbalance
      // that THP neither causes nor cures — Carrefour(-LP) fixes it
      // (Figure 5).
      auto table = Region("shared-table", 2 * kMiB, 0.5, PatternKind::kUniform, 0.5);
      table.setup_owner = SetupOwner::kThreadZero;
      auto priv = Region("private", T * 2 * kMiB, 0.5, PatternKind::kPartitioned, 0.05);
      priv.local_fraction = 1.0;
      priv.setup_owner = SetupOwner::kPartitionOwner;
      spec.regions = {table, priv};
      break;
    }
    case BenchmarkId::kFT_C: {
      // 3-D FFT: large streaming transposes; modest TLB benefit from THP.
      auto data = Region("fft-grid", T * 10 * kMiB, 0.85, PatternKind::kSequential, 0.6);
      data.setup_owner = SetupOwner::kPartitionOwner;
      auto twiddle = Region("twiddle", 4 * kMiB, 0.15, PatternKind::kUniform, 0.2);
      spec.regions = {data, twiddle};
      break;
    }
    case BenchmarkId::kIS_D: {
      // Integer bucket sort, 34GB in the paper: uniformly random scatter
      // over a huge array — heavy TLB pressure, naturally balanced.
      auto keys = Region("keys", 700 * kMiB, 0.75, PatternKind::kUniform, 0.75);
      keys.mlp = 4.0;  // independent scatter: walks almost fully overlapped
      auto buckets = Region("buckets", T * 2 * kMiB, 0.25, PatternKind::kPartitioned, 0.4);
      buckets.local_fraction = 0.9;
      buckets.setup_owner = SetupOwner::kPartitionOwner;
      spec.regions = {keys, buckets};
      break;
    }
    case BenchmarkId::kLU_B: {
      // LU factorization, class B: small per-thread row blocks. Fine slices
      // mean 2MB pages span several threads' rows (PSP rises under THP) but
      // the blocked kernel rarely misses to DRAM, so the *effect* is small
      // — the workload where Carrefour-LP splitting is mostly overhead
      // (Section 4.3: -3.5% vs Carrefour-2M).
      // Blocked streaming over unaligned 8.25MiB row blocks: ~24% of each
      // block's bytes share a 2MB window with a neighbour.
      auto matrix =
          Region("lu-matrix", T * 8448 * kKiB, 0.88, PatternKind::kSequential, 0.22);
      matrix.setup_owner = SetupOwner::kPartitionOwner;
      auto pivots = Region("pivot-rows", 16 * kMiB, 0.12, PatternKind::kUniform, 0.2);
      spec.regions = {matrix, pivots};
      break;
    }
    case BenchmarkId::kMG_D: {
      auto grids = Region("multigrid", T * 12 * kMiB, 0.9, PatternKind::kSequential, 0.5);
      grids.setup_owner = SetupOwner::kPartitionOwner;
      auto coarse = Region("coarse", 6 * kMiB, 0.1, PatternKind::kUniform, 0.3);
      spec.regions = {grids, coarse};
      break;
    }
    case BenchmarkId::kSP_B: {
      // Scalar pentadiagonal: like BT plus a master-initialized coefficient
      // array (pre-existing imbalance Carrefour repairs, Figure 5).
      auto grid = Region("grid", T * 8 * kMiB, 0.7, PatternKind::kSequential, 0.35);
      grid.setup_owner = SetupOwner::kPartitionOwner;
      auto coeffs = Region("coeffs", 10 * kMiB, 0.3, PatternKind::kUniform, 0.5);
      coeffs.setup_owner = SetupOwner::kThreadZero;
      spec.regions = {grid, coeffs};
      break;
    }
    case BenchmarkId::kUA_B:
    case BenchmarkId::kUA_C: {
      // Unstructured adaptive mesh: each thread owns a fine slice of the
      // element arrays (a few hundred KB). 4KB pages are effectively
      // private (LAR ~90%); a 2MB page spans many slices -> page-level
      // false sharing (Table 2: PSP 16% -> 70%), which migration cannot fix
      // — only splitting can.
      // Mesh slices of ~1.25MiB (2.5MiB for class C): a 2MB page spans ~1.6
      // slices, so roughly half of each page's accesses come from the
      // non-owning neighbour — LAR ~90% -> ~65% under THP, like Table 3.
      const bool class_c = id == BenchmarkId::kUA_C;
      auto mesh = Region("mesh", T * (class_c ? 2560 : 1280) * kKiB, 0.8,
                         PatternKind::kPartitioned, class_c ? 0.35 : 0.4);
      mesh.local_fraction = 0.93;
      mesh.setup_owner = SetupOwner::kPartitionOwner;
      auto bulk = Region("bulk", T * (class_c ? 4 : 2) * kMiB, 0.2,
                         PatternKind::kSequential, 0.25);
      bulk.setup_owner = SetupOwner::kPartitionOwner;
      spec.regions = {mesh, bulk};
      break;
    }
    case BenchmarkId::kWC: {
      // Metis word count: the input is file-mapped (THP does not back it,
      // Section 2.1), the intermediate tables grow relentlessly — 37.6% of
      // 4KB-page runtime is the page-fault handler (Table 1), which is
      // THP's big win here (+109% on machine B).
      auto input = Region("input(file)", T * 1536 * kKiB, 0.25, PatternKind::kSequential, 0.3);
      input.thp_eligible = false;
      input.setup_owner = SetupOwner::kPartitionOwner;
      auto intermediate =
          Region("intermediate", T * 5 * kMiB, 0.55, PatternKind::kUniform, 0.5);
      intermediate.incremental = true;
      intermediate.fresh_fraction = 1.0 / 48;
      auto hash = Region("hash-head", 24 * kMiB, 0.2, PatternKind::kZipf, 0.6);
      hash.zipf_s = 0.7;
      hash.zipf_block_shuffle = 31;
      hash.setup_owner = SetupOwner::kThreadZero;
      spec.regions = {input, intermediate, hash};
      spec.steady_accesses_per_thread = 100'000;
      break;
    }
    case BenchmarkId::kWR: {
      auto input = Region("input(file)", T * 1280 * kKiB, 0.3, PatternKind::kSequential, 0.3);
      input.thp_eligible = false;
      input.setup_owner = SetupOwner::kPartitionOwner;
      auto intermediate =
          Region("intermediate", T * 4 * kMiB, 0.5, PatternKind::kUniform, 0.5);
      intermediate.incremental = true;
      intermediate.fresh_fraction = 1.0 / 96;
      auto index = Region("index", 20 * kMiB, 0.2, PatternKind::kZipf, 0.55);
      index.zipf_s = 0.6;
      index.zipf_block_shuffle = 31;
      spec.regions = {input, intermediate, index};
      spec.steady_accesses_per_thread = 100'000;
      break;
    }
    case BenchmarkId::kKmeans: {
      auto points = Region("points", T * 6 * kMiB, 0.8, PatternKind::kSequential, 0.4);
      points.setup_owner = SetupOwner::kPartitionOwner;
      auto centroids = Region("centroids", 1 * kMiB, 0.2, PatternKind::kUniform, 0.15);
      spec.regions = {points, centroids};
      break;
    }
    case BenchmarkId::kMatrixMultiply: {
      // Blocked GEMM: the shared B matrix has a popular band, so THP
      // coarsens placement and worsens imbalance >15% — but blocking keeps
      // DRAM intensity low, so performance barely moves (affected set of
      // Figure 2 with near-zero deltas).
      auto a = Region("A", T * 2 * kMiB, 0.3, PatternKind::kSequential, 0.25);
      a.setup_owner = SetupOwner::kPartitionOwner;
      auto b = Region("B", 64 * kMiB, 0.4, PatternKind::kZipf, 0.3);
      b.zipf_s = 0.5;
      b.zipf_block_shuffle = 23;
      b.mlp = 4.0;  // blocked GEMM prefetches; walks overlap
      auto c = Region("C", T * 2 * kMiB, 0.3, PatternKind::kSequential, 0.25);
      c.setup_owner = SetupOwner::kPartitionOwner;
      spec.regions = {a, b, c};
      break;
    }
    case BenchmarkId::kPca: {
      // Mean/covariance over a matrix initialized by the master thread:
      // pre-existing imbalance, large Carrefour(-LP) upside (Figure 5).
      auto matrix = Region("matrix", 64 * kMiB, 0.65, PatternKind::kUniform, 0.5);
      matrix.setup_owner = SetupOwner::kThreadZero;
      auto cov = Region("cov", T * 2 * kMiB, 0.35, PatternKind::kPartitioned, 0.3);
      cov.local_fraction = 0.9;
      cov.setup_owner = SetupOwner::kPartitionOwner;
      spec.regions = {matrix, cov};
      break;
    }
    case BenchmarkId::kWrmem: {
      // In-memory reverse index: allocation-heavy like WC (THP +51%), and
      // the hot index head makes THP worsen imbalance >15% (affected set).
      auto intermediate =
          Region("intermediate", T * 6 * kMiB, 0.6, PatternKind::kUniform, 0.5);
      intermediate.incremental = true;
      intermediate.fresh_fraction = 1.0 / 96;
      auto index = Region("index-head", 30 * kMiB, 0.25, PatternKind::kZipf, 0.6);
      index.zipf_s = 0.65;
      index.zipf_block_shuffle = 31;
      auto keys = Region("keys", T * 2 * kMiB, 0.15, PatternKind::kPartitioned, 0.35);
      keys.local_fraction = 0.9;
      keys.setup_owner = SetupOwner::kPartitionOwner;
      spec.regions = {intermediate, index, keys};
      spec.steady_accesses_per_thread = 100'000;
      break;
    }
    case BenchmarkId::kSSCA: {
      // SSCA v2.2 graph kernels, scale 20: random edge traversal over a
      // huge adjacency structure (15% of L2 misses are PTE fetches under
      // 4KB, Table 1) plus hot hub vertices scattered by the allocator
      // whose popularity THP coarsens into controller imbalance
      // (8% -> 52% on machine A) — fixable by interleaving the hot windows.
      auto adjacency = Region("adjacency", 160 * kMiB, 0.6, PatternKind::kUniform, 0.7);
      auto vertices = Region("vertex-props", 18 * kMiB, 0.4, PatternKind::kZipf, 0.6);
      vertices.zipf_s = 0.75;
      vertices.zipf_block_shuffle = 47;
      spec.regions = {adjacency, vertices};
      break;
    }
    case BenchmarkId::kSPECjbb: {
      // Warehouse heap: Zipf object popularity spread over the heap by the
      // allocator, all-thread sharing (inherently low LAR), plus a growing
      // nursery. THP removes the page-table-walk misses (7% -> 0, Table 1)
      // but coarsens placement: imbalance 16% -> 39% — fixable by
      // Carrefour-2M (Table 2), after which the TLB benefit materializes.
      auto heap = Region("heap", 120 * kMiB, 0.85, PatternKind::kZipf, 0.7);
      heap.zipf_s = 0.85;
      heap.zipf_block_shuffle = 23;
      heap.mlp = 5.0;
      auto nursery = Region("nursery", T * kMiB, 0.15, PatternKind::kUniform, 0.4);
      nursery.incremental = true;
      nursery.fresh_fraction = 0.001;
      spec.regions = {heap, nursery};
      break;
    }
    case BenchmarkId::kStreamcluster: {
      // PARSEC streamcluster (Section 4.4 only): ~4MB per-thread point
      // blocks. 2MB pages stay essentially private (no degradation,
      // footnote 6); a 1GB page spans ~256 blocks — catastrophic false
      // sharing and a single hot page (4x slowdown in the paper).
      auto points = Region("points", T * 4 * kMiB, 0.85, PatternKind::kPartitioned, 0.55);
      points.local_fraction = 0.95;
      points.setup_owner = SetupOwner::kPartitionOwner;
      auto centers = Region("centers", 2 * kMiB, 0.15, PatternKind::kUniform, 0.5);
      spec.regions = {points, centers};
      break;
    }
    case BenchmarkId::kSparseFootprint: {
      // Synthetic sparse-footprint stressor (DESIGN.md Section 11; not a
      // paper benchmark, not in FullSuite). The cold region models a
      // TB-scale footprint at the repo's memory scale: 32MiB per thread of
      // strictly-local partitioned data touched near-uniformly, so almost
      // every sample lands on a page with at most one live sample in the
      // window — the population that makes exact profiling state grow with
      // the footprint while contributing nothing to placement (every cold
      // page is local and below Carrefour's per-page minimums). Slices are
      // whole 2MB windows (region bases are 1GB-aligned, 32MiB per slice),
      // so no cold window is ever shared between nodes. The hot chunks are
      // the actionable part: a small master-initialized set every thread
      // hammers several samples per epoch — dense enough to cross any
      // reasonable admission threshold on first sight.
      auto cold = Region("cold-footprint", T * 32 * kMiB, 0.85, PatternKind::kPartitioned, 0.3);
      cold.local_fraction = 1.0;
      cold.setup_owner = SetupOwner::kPartitionOwner;
      auto hot = Region("hot-set", 2 * kMiB, 0.15, PatternKind::kHotChunks, 0.9);
      hot.chunk_bytes = 8 * kKiB;
      hot.chunk_stride = 256 * kKiB;
      hot.num_chunks = 8;
      hot.setup_owner = SetupOwner::kThreadZero;
      spec.regions = {cold, hot};
      break;
    }
  }
  return spec;
}

std::vector<BenchmarkId> FullSuite() {
  return {BenchmarkId::kBT_B,   BenchmarkId::kCG_D,           BenchmarkId::kDC_A,
          BenchmarkId::kEP_C,   BenchmarkId::kFT_C,           BenchmarkId::kIS_D,
          BenchmarkId::kLU_B,   BenchmarkId::kMG_D,           BenchmarkId::kSP_B,
          BenchmarkId::kUA_B,   BenchmarkId::kUA_C,           BenchmarkId::kWC,
          BenchmarkId::kWR,     BenchmarkId::kKmeans,         BenchmarkId::kMatrixMultiply,
          BenchmarkId::kPca,    BenchmarkId::kWrmem,          BenchmarkId::kSSCA,
          BenchmarkId::kSPECjbb};
}

std::vector<BenchmarkId> AffectedSubset() {
  return {BenchmarkId::kCG_D,  BenchmarkId::kLU_B,           BenchmarkId::kUA_B,
          BenchmarkId::kUA_C,  BenchmarkId::kMatrixMultiply, BenchmarkId::kWrmem,
          BenchmarkId::kSSCA,  BenchmarkId::kSPECjbb};
}

std::vector<BenchmarkId> UnaffectedSubset() {
  return {BenchmarkId::kBT_B, BenchmarkId::kDC_A,   BenchmarkId::kEP_C,
          BenchmarkId::kFT_C, BenchmarkId::kIS_D,   BenchmarkId::kMG_D,
          BenchmarkId::kSP_B, BenchmarkId::kWC,     BenchmarkId::kWR,
          BenchmarkId::kKmeans, BenchmarkId::kPca};
}

}  // namespace numalp
