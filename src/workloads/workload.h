// Runtime workload instance: mmaps its regions into an AddressSpace and
// generates per-thread access batches (setup phase first, then steady state)
// from deterministic per-thread PRNG streams.
#ifndef NUMALP_SRC_WORKLOADS_WORKLOAD_H_
#define NUMALP_SRC_WORKLOADS_WORKLOAD_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/common/zipf.h"
#include "src/vm/address_space.h"
#include "src/workloads/access_source.h"
#include "src/workloads/spec.h"

namespace numalp {

class Workload : public AccessSource {
 public:
  // `batched_generation` selects the run-batched steady-state generator
  // (default): accesses are produced in per-region runs with the RNG state,
  // region tables and pattern dispatch hoisted out of the per-access path.
  // `false` keeps the seed's one-call-per-access generator (the reference
  // engine). Both draw the identical variate sequence and emit byte-identical
  // access streams (tests/perf_structures_test.cc pins this).
  Workload(const WorkloadSpec& spec, AddressSpace& address_space, int num_threads,
           std::uint64_t seed, bool batched_generation = true);

  // Marks an epoch boundary: latches whether any thread still has setup
  // (first-touch) work. While latched, threads that finish their queue spin
  // on their private scratch page until the next epoch — like workers
  // parked on a barrier while the master initializes.
  void BeginEpoch() override;

  // Appends `n` accesses for `thread` to `out` (cleared first). Consumes the
  // thread's setup queue before switching to steady-state draws.
  void FillBatch(int thread, std::size_t n, std::vector<WorkloadAccess>& out) override;

  // True once every thread has issued its steady-state budget.
  bool Done() const override;

  // True once every thread has drained its setup (first-touch) queue.
  bool SetupDone() const override { return setup_remaining_threads_ == 0; }

  // DRAM intensity of region index `region` (the engine's cache model).
  double dram_intensity(int region) const {
    return regions_[static_cast<std::size_t>(region)].spec->dram_intensity;
  }
  // Memory-level parallelism of the region (scales exposed walk cost).
  double mlp(int region) const {
    return regions_[static_cast<std::size_t>(region)].spec->mlp;
  }

  const WorkloadSpec& spec() const { return spec_; }
  int num_threads() const override { return num_threads_; }
  // Region count including the internal scratch region (region ids in
  // emitted accesses are < num_regions()).
  int num_regions() const override { return static_cast<int>(regions_.size()); }
  SourceRegion region(int r) const override {
    const RegionRt& rt = regions_[static_cast<std::size_t>(r)];
    SourceRegion desc;
    desc.base = rt.base;
    desc.bytes = rt.vma_bytes;
    desc.thp_eligible = rt.spec->thp_eligible;
    desc.explicit_page = rt.spec->explicit_page;
    desc.dram_intensity = rt.spec->dram_intensity;
    desc.mlp = rt.spec->mlp;
    return desc;
  }
  Addr region_base(int region) const {
    return regions_[static_cast<std::size_t>(region)].base;
  }
  std::uint64_t steady_issued(int thread) const {
    return threads_[static_cast<std::size_t>(thread)].steady_issued;
  }
  // Total footprint the workload can touch (bytes).
  std::uint64_t footprint_bytes() const override;

 private:
  struct RegionRt {
    const RegionSpec* spec = nullptr;
    Addr base = 0;
    std::uint64_t vma_bytes = 0;  // mapped VMA size (4KB-aligned)
    std::uint64_t pages = 0;      // 4KB pages
    std::optional<ZipfSampler> zipf;
    std::uint64_t slice_pages = 0;  // partitioned / sequential / incremental
    std::uint64_t zipf_stride = 0;  // block-shuffle stride (0 = identity layout)
    int chunks = 0;
    std::uint64_t chunk_pages = 0;
    std::uint64_t stride_pages = 0;
  };
  struct ThreadRt {
    Rng rng{0};
    // Setup queue: flat list of (region, page) indices this thread must
    // first-touch, consumed in order.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> setup;
    std::size_t setup_cursor = 0;
    std::uint64_t steady_issued = 0;
    std::vector<std::uint64_t> seq_cursor;    // kSequential per region
    std::vector<std::uint64_t> alloc_cursor;  // incremental growth per region
  };

  WorkloadAccess SteadyAccess(int thread);
  // Batched steady-state generator: appends `count` accesses for `thread`,
  // consuming the exact variate sequence SteadyAccess would.
  void SteadyRun(int thread, std::size_t count, std::vector<WorkloadAccess>& out);
  Addr PageVa(const RegionRt& region, std::uint64_t page, Rng& rng) const;

  WorkloadSpec spec_;
  int num_threads_;
  bool batched_;
  std::vector<RegionRt> regions_;
  std::vector<ThreadRt> threads_;
  std::vector<double> share_cdf_;
  Addr scratch_base_ = 0;
  int scratch_region_ = 0;
  int setup_remaining_threads_ = 0;
  bool barrier_this_epoch_ = true;
};

}  // namespace numalp

#endif  // NUMALP_SRC_WORKLOADS_WORKLOAD_H_
