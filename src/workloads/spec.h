// Declarative workload model.
//
// The paper attributes every observed effect to measurable properties of the
// benchmarks' memory streams: footprint (TLB pressure), allocation intensity
// (page-fault cost), per-thread partitioning (first-touch locality and
// page-level false sharing), hot chunks coalescing into few large pages (the
// hot-page effect), and popularity skew clustered at low addresses (THP
// imbalance). A WorkloadSpec expresses a benchmark as a set of regions with
// those properties; suite.cc instantiates the paper's 20 benchmarks.
#ifndef NUMALP_SRC_WORKLOADS_SPEC_H_
#define NUMALP_SRC_WORKLOADS_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/units.h"
#include "src/topo/topology.h"
#include "src/vm/address_space.h"

namespace numalp {

enum class PatternKind : std::uint8_t {
  kUniform,     // uniform random over the region (graph traversal, bucket sort)
  kZipf,        // Zipf-popular pages clustered at the region start (heaps,
                // hash tables: hot objects are allocated early and adjacent)
  kHotChunks,   // all threads hammer a small set of fixed-address chunks
                // (reduction vectors, communication buffers) — the paper's
                // hot-page generator once chunks coalesce into one large page
  kPartitioned, // each thread owns a contiguous slice, with boundary sharing
  kSequential,  // each thread streams through its slice in order
};

// Which thread performs the first touch of each page during the setup phase.
enum class SetupOwner : std::uint8_t {
  kRoundRobinPage,  // parallel init loop: page p touched by thread p % T
  kPartitionOwner,  // each thread initializes its own slice
  kChunkOwner,      // chunk c initialized by thread c % T
  kThreadZero,      // master-thread initialization (the classic NUMA trap)
};

struct RegionSpec {
  std::string name;
  std::uint64_t bytes = 0;
  // Fraction of steady-state accesses that target this region.
  double access_share = 0.0;
  PatternKind pattern = PatternKind::kUniform;
  double zipf_s = 0.8;  // kZipf skew
  // kZipf layout: 0 = hot ranks cluster at the region start (early-allocated
  // hot objects, maximal THP coarsening). B > 0 = block-interleaved layout:
  // rank r lands on page (r % B) * (pages / B) + r / B, spreading the hot
  // head over B spaced pages — hot *pages* still coalesce into hot 2MB
  // windows under THP, but no single window dominates (heaps and vertex
  // arrays whose hot objects are scattered by the allocator).
  int zipf_block_shuffle = 0;
  double local_fraction = 0.9;  // kPartitioned: P(access own slice)
  std::uint64_t chunk_bytes = 16 * kKiB;    // kHotChunks geometry
  std::uint64_t chunk_stride = 256 * kKiB;  // chunk c starts at c * stride
  int num_chunks = 0;                       // 0 -> one per thread
  // Probability that a DRAM request (cache miss) results from an access to
  // this region; abstracts the cache hierarchy per region (documented in
  // DESIGN.md Section 3).
  double dram_intensity = 0.5;
  // Memory-level parallelism: how many translations the core overlaps when
  // accessing this region. Exposed page-walk cost divides by this —
  // independent scatters (bucket sort, blocked GEMM) hide walks almost
  // entirely; pointer chasing (graphs, Java heaps) exposes them.
  double mlp = 1.0;
  SetupOwner setup_owner = SetupOwner::kRoundRobinPage;
  bool thp_eligible = true;  // false for file-backed mappings (THP skips them)
  std::optional<PageSize> explicit_page;  // libhugetlbfs-style 2MB/1GB backing
  // Allocation-intensive region: pages are first touched gradually during the
  // steady state (per-thread arenas), not in the setup phase.
  bool incremental = false;
  double fresh_fraction = 0.5;  // incremental: P(access touches a fresh page)
};

struct WorkloadSpec {
  std::string name;
  // Steady-state work budget per thread; the run ends when every thread has
  // issued this many steady accesses (setup touches are extra).
  std::uint64_t steady_accesses_per_thread = 120'000;
  double write_fraction = 0.3;
  std::vector<RegionSpec> regions;
  // Trace replay: when set, the simulation ignores `regions` and replays the
  // recorded stream via TraceWorkload (DESIGN.md §14). `name` carries the
  // recorded workload name so replayed rows keep the original coordinates.
  std::string trace_file;
  // Trace capture: when set, the simulation records its access stream (at the
  // serial batch-commit points) into this file via TraceWriter.
  std::string capture_file;

  // Sum of access shares (regions are normalized against this).
  double TotalShare() const;
};

// The paper's benchmark suite (Section 2.1): NAS, Metis MapReduce, SSCA v2.2,
// SPECjbb, plus streamcluster for the 1GB-page study (Section 4.4).
enum class BenchmarkId {
  kBT_B,
  kCG_D,
  kDC_A,
  kEP_C,
  kFT_C,
  kIS_D,
  kLU_B,
  kMG_D,
  kSP_B,
  kUA_B,
  kUA_C,
  kWC,
  kWR,
  kKmeans,
  kMatrixMultiply,
  kPca,
  kWrmem,
  kSSCA,
  kSPECjbb,
  kStreamcluster,
  // Synthetic sparse-footprint stressor (not a paper benchmark, and not part
  // of FullSuite): a huge thread-partitioned cold region touched nearly
  // uniformly — stand-in for TB-scale footprints where exact per-4KB
  // profiling state explodes — plus a small all-thread hot-chunk set that
  // carries every actionable placement decision. Cold pages are strictly
  // local and below every Carrefour threshold, so a sketch profile that
  // drops them makes the same decisions exact mode makes while tracking an
  // order of magnitude less state (the perf_hotpath --profile-sweep claim).
  kSparseFootprint,
};

std::string_view NameOf(BenchmarkId id);

// Builds the synthetic model of `id` for a machine with `topo`. Footprints
// are pre-scaled by the repository's global 1/48 memory scale (DESIGN.md).
WorkloadSpec MakeWorkloadSpec(BenchmarkId id, const Topology& topo);

// Figure 1's full suite (everything except streamcluster).
std::vector<BenchmarkId> FullSuite();
// Figures 2-4: applications whose LAR or imbalance is degraded > 15% by THP.
std::vector<BenchmarkId> AffectedSubset();
// Figure 5: the remaining applications.
std::vector<BenchmarkId> UnaffectedSubset();

}  // namespace numalp

#endif  // NUMALP_SRC_WORKLOADS_SPEC_H_
