// The access-stream abstraction the simulation consumes (DESIGN.md §14).
//
// An AccessSource produces the per-thread epoch batches the engine executes,
// plus region metadata for the cost model and — new with trace replay —
// mmap-lifetime events: regions can appear (RegionMap) and disappear
// (RegionUnmap) at epoch boundaries, which is how long-lived mmap/munmap
// churn reaches the buddy allocator and produces real free-list
// fragmentation. Two implementations exist: the synthetic generators
// (workload.h, the paper's benchmark models) and TraceWorkload
// (trace_workload.h), which replays a recorded binary trace.
#ifndef NUMALP_SRC_WORKLOADS_ACCESS_SOURCE_H_
#define NUMALP_SRC_WORKLOADS_ACCESS_SOURCE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/units.h"

namespace numalp {

struct WorkloadAccess {
  Addr va = 0;
  std::uint8_t region = 0;
  bool write = false;
};

// Region metadata the engine needs per emitted `WorkloadAccess::region` id:
// the cost model reads dram_intensity/mlp, the trace capture path records
// the full descriptor so replay can reconstruct the identical VMA.
struct SourceRegion {
  Addr base = 0;
  std::uint64_t bytes = 0;  // VMA size (4KB-aligned)
  bool thp_eligible = true;
  std::optional<PageSize> explicit_page;  // libhugetlbfs-style backing
  double dram_intensity = 0.5;
  double mlp = 1.0;
};

// A region mapped mid-run (mmap churn). The source performs the MmapAnon
// itself during BeginEpoch (the batch it emits may touch the region); the
// simulation drains the event for churn accounting and trace capture.
struct RegionMapEvent {
  int region = 0;  // the id accesses will carry
  SourceRegion desc;
};

// A region whose lifetime ended this epoch. The *simulation* applies it at
// the epoch boundary (AddressSpace::MunmapRange frees the frames through the
// buddy allocator and shoots down stale TLB entries) — unmap is a shared-
// state mutation and belongs with the other serialized epoch-end work.
struct RegionUnmapEvent {
  int region = 0;
  Addr base = 0;
  std::uint64_t bytes = 0;
};

class AccessSource {
 public:
  virtual ~AccessSource() = default;

  // Marks an epoch boundary. Sources with lifetime events apply this epoch's
  // RegionMap mmaps here (before any FillBatch) and stage the events for
  // DrainMapEvents.
  virtual void BeginEpoch() = 0;

  // Appends up to `n` accesses for `thread` to `out` (cleared first).
  virtual void FillBatch(int thread, std::size_t n, std::vector<WorkloadAccess>& out) = 0;

  // True once the stream is exhausted (checked after each epoch).
  virtual bool Done() const = 0;

  // True once the setup (first-touch) phase is over. Queried *before*
  // BeginEpoch each epoch; capture records the answer per epoch so replay
  // reproduces the setup/steady split exactly.
  virtual bool SetupDone() const = 0;

  virtual int num_threads() const = 0;
  // Region ids in emitted accesses are < num_regions(); the count can grow
  // across epochs as RegionMap events arrive.
  virtual int num_regions() const = 0;
  virtual SourceRegion region(int r) const = 0;
  // Total bytes of every region ever mapped (monotonic under churn).
  virtual std::uint64_t footprint_bytes() const = 0;

  // Lifetime events staged since the last drain (empty for the synthetic
  // generators, whose regions live for the whole run). Map events are
  // drained right after BeginEpoch; unmap events at the epoch's end.
  virtual void DrainMapEvents(std::vector<RegionMapEvent>* out) { out->clear(); }
  virtual void DrainUnmapEvents(std::vector<RegionUnmapEvent>* out) { out->clear(); }
};

}  // namespace numalp

#endif  // NUMALP_SRC_WORKLOADS_ACCESS_SOURCE_H_
