#include "src/workloads/trace_workload.h"

#include <algorithm>
#include <stdexcept>

namespace numalp {

TraceWorkload::TraceWorkload(const std::string& path, AddressSpace& address_space,
                             int num_threads)
    : reader_(path), address_space_(address_space), num_threads_(num_threads) {
  const trace::TraceHeader& header = reader_.header();
  if (static_cast<int>(header.threads) != num_threads) {
    throw std::runtime_error("trace: recorded for " + std::to_string(header.threads) +
                             " threads, machine has " + std::to_string(num_threads));
  }
  regions_.reserve(header.regions.size());
  for (std::size_t r = 0; r < header.regions.size(); ++r) {
    MapRegion(static_cast<int>(r), header.regions[r]);
  }
  next_valid_ = reader_.NextEpoch(&next_);
}

void TraceWorkload::MapRegion(int region_id, const SourceRegion& desc) {
  if (region_id != static_cast<int>(regions_.size()) || region_id >= 256) {
    throw std::runtime_error("trace: non-sequential or overflowing region id");
  }
  VmaOptions opts;
  opts.name = "trace-region-" + std::to_string(region_id);
  opts.thp_eligible = desc.thp_eligible;
  opts.explicit_page = desc.explicit_page;
  const Addr base = address_space_.MmapAnon(desc.bytes, opts);
  if (base != desc.base) {
    // MmapAnon is deterministic, so this only happens when the address space
    // is not fresh — replay composed with something else that mmaps first.
    throw std::runtime_error("trace: replayed VMA base mismatch (address space not fresh)");
  }
  regions_.push_back(desc);
  footprint_bytes_ += desc.bytes;
}

bool TraceWorkload::SetupDone() const {
  if (!next_valid_) {
    return true;
  }
  return !next_.in_setup;
}

void TraceWorkload::BeginEpoch() {
  started_ = true;
  if (!next_valid_) {
    // Replay configured for more epochs than were recorded: emit an empty
    // final epoch and report Done after it.
    exhausted_ = true;
    current_ = trace::TraceEpoch{};
    current_.done_after = true;
    return;
  }
  current_ = std::move(next_);
  for (const auto& event : current_.maps) {
    MapRegion(event.region, event.desc);
  }
  next_valid_ = reader_.NextEpoch(&next_);
}

void TraceWorkload::FillBatch(int thread, std::size_t n,
                              std::vector<WorkloadAccess>& out) {
  out.clear();
  const auto t = static_cast<std::size_t>(thread);
  if (t >= current_.batches.size()) {
    return;
  }
  const auto& batch = current_.batches[t];
  const std::size_t count = std::min(n, batch.size());
  out.assign(batch.begin(), batch.begin() + static_cast<std::ptrdiff_t>(count));
}

bool TraceWorkload::Done() const {
  if (exhausted_) {
    return true;
  }
  return started_ && current_.done_after;
}

void TraceWorkload::DrainMapEvents(std::vector<RegionMapEvent>* out) {
  *out = current_.maps;
}

void TraceWorkload::DrainUnmapEvents(std::vector<RegionUnmapEvent>* out) {
  *out = current_.unmaps;
}

WorkloadSpec MakeTraceWorkloadSpec(const std::string& trace_file) {
  const trace::TraceHeader header = trace::ReadTraceHeader(trace_file);
  WorkloadSpec spec;
  spec.name = header.workload;
  spec.trace_file = trace_file;
  return spec;
}

}  // namespace numalp
