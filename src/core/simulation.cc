#include "src/core/simulation.h"

#include <algorithm>
#include <cassert>

#include "src/common/log.h"
#include "src/common/stats.h"
#include "src/workloads/trace_workload.h"

namespace numalp {

namespace {

void MergePages(PageAggMap& into, const PageAggMap& from) {
  for (const auto& [base, agg] : from) {
    PageAgg& target = into[base];
    target.size = agg.size;
    target.home_node = agg.home_node;
    target.total += agg.total;
    target.dram += agg.dram;
    target.core_mask |= agg.core_mask;
    for (int n = 0; n < kMaxNodes; ++n) {
      target.req_node_counts[static_cast<std::size_t>(n)] +=
          agg.req_node_counts[static_cast<std::size_t>(n)];
    }
  }
}

}  // namespace

double RunResult::LarPct() const {
  const std::uint64_t dram = totals.dram_accesses();
  return dram == 0
             ? 100.0
             : 100.0 * static_cast<double>(totals.dram_local) / static_cast<double>(dram);
}

double RunResult::ImbalancePct() const {
  return numalp::ImbalancePct(std::span<const std::uint64_t>(node_request_totals));
}

double RunResult::WalkL2MissFrac() const {
  const std::uint64_t walk = totals.walk_l2_miss;
  const std::uint64_t data = totals.dram_accesses();
  const std::uint64_t sum = walk + data;
  return sum == 0 ? 0.0 : static_cast<double>(walk) / static_cast<double>(sum);
}

double RunResult::MaxFaultTimeSharePct() const {
  if (total_cycles == 0) {
    return 0.0;
  }
  Cycles max_fault = 0;
  for (const auto& core : core_totals) {
    max_fault = std::max(max_fault, core.fault_cycles);
  }
  return 100.0 * static_cast<double>(max_fault) / static_cast<double>(total_cycles);
}

double RunResult::SteadyMaxFaultSharePct() const {
  double weighted = 0.0;
  Cycles wall = 0;
  for (const EpochRecord& record : history) {
    if (record.in_setup) {
      continue;
    }
    weighted += record.metrics.max_fault_time_share * static_cast<double>(record.wall);
    wall += record.wall;
  }
  return wall == 0 ? 0.0 : 100.0 * weighted / static_cast<double>(wall);
}

double RunResult::MaxFaultTimeMs(double clock_ghz) const {
  Cycles max_fault = 0;
  for (const auto& core : core_totals) {
    max_fault = std::max(max_fault, core.fault_cycles);
  }
  return static_cast<double>(max_fault) / (clock_ghz * 1e6);
}

double RunResult::PamupPct() const { return numalp::PamupPct(cumulative_pages); }

int RunResult::Nhp() const { return CountHotPages(cumulative_pages); }

double RunResult::PspPct() const { return numalp::PspPct(cumulative_pages); }

double RunResult::RuntimeMs(double clock_ghz) const {
  return static_cast<double>(total_cycles) / (clock_ghz * 1e6);
}

double ImprovementPct(const RunResult& baseline, const RunResult& run) {
  const Cycles base = baseline.measured_cycles > 0 ? baseline.measured_cycles
                                                   : baseline.total_cycles;
  const Cycles mine = run.measured_cycles > 0 ? run.measured_cycles : run.total_cycles;
  if (mine == 0) {
    return 0.0;
  }
  return 100.0 * (static_cast<double>(base) / static_cast<double>(mine) - 1.0);
}

Simulation::Simulation(const Topology& topo, const WorkloadSpec& workload,
                       const PolicyConfig& policy, const SimConfig& sim)
    : topo_(topo),
      workload_spec_(workload),
      policy_(policy),
      sim_(sim),
      phys_(topo_),
      address_space_(std::make_unique<AddressSpace>(phys_, topo_, thp_state_)),
      walker_(sim_.walker),
      mem_ctrl_(sim_.mem_ctrl),
      interconnect_(sim_.interconnect, topo_),
      ibs_(topo_.num_nodes(), topo_.num_cores(), sim_.ibs_interval, sim_.seed ^ 0x1b5u),
      counters_(topo_.num_cores(), topo_.num_nodes()),
      policy_rng_(sim_.seed ^ 0x9e37u),
      carrefour_(policy_.carrefour, topo_.cpu_nodes(), sim_.seed ^ 0xc4fu),
      khugepaged_(*address_space_),
      window_(kSampleWindowEpochs, sim_.reference_pipeline, sim_.profile_mode,
              sim_.profile_sketch) {
  // The epoch presketch exists only where it is consumed: sketch profile
  // mode, fast engine, and a policy stack that actually pushes the window.
  // All of these are fixed at construction, so every shard count and every
  // epoch take the same branch — the determinism argument needs that.
  const bool window_consumed =
      policy_.use_carrefour || policy_.use_reactive || policy_.use_conservative;
  presketch_enabled_ = !sim_.reference_pipeline &&
                       sim_.profile_mode == ProfileMode::kSketch && window_consumed;
  if (presketch_enabled_) {
    epoch_presketch_ =
        CountSketch(sim_.profile_sketch.sketch_rows, sim_.profile_sketch.sketch_width);
  }
  thp_state_.alloc_enabled = policy_.initial_thp_alloc;
  thp_state_.promote_enabled = policy_.initial_thp_promote;
  // Fault injection (DESIGN.md Section 12): the plan pins its fragmentation
  // into the buddy allocators *before* the workload exists, so even the
  // setup phase's first-touch storm contends with it — exactly like a
  // machine that fragmented before the application launched. With faults
  // off, fault_plan_ stays null and no fault branch below ever draws from
  // an RNG or touches allocator state.
  if (sim_.faults.enabled()) {
    fault_plan_ = std::make_unique<FaultPlan>(sim_.faults, sim_.seed);
    fault_plan_->Prepare(phys_);
    address_space_->set_fault_plan(fault_plan_.get());
  }
  // The access source: trace replay when the spec names a trace file,
  // otherwise the synthetic generator. The reference engine keeps the seed's
  // per-call access generator and the scalar TLB probe/install algorithms
  // (the fast engine's run-batched generator and vectorized TLB are
  // value-identical; perf_hotpath --compare times the two sides of each A/B).
  if (!workload_spec_.trace_file.empty()) {
    auto replay = std::make_unique<TraceWorkload>(workload_spec_.trace_file, *address_space_,
                                                  topo_.num_cores());
    trace_provenance_ = replay->header().Provenance();
    workload_ = std::move(replay);
  } else {
    workload_ = std::make_unique<Workload>(workload_spec_, *address_space_, topo_.num_cores(),
                                           sim_.seed, !sim_.reference_pipeline);
  }
  if (!workload_spec_.capture_file.empty()) {
    trace::TraceHeader header;
    header.machine = topo_.name();
    header.workload = workload_spec_.name;
    header.seed = sim_.seed;
    header.threads = static_cast<std::uint32_t>(topo_.num_cores());
    header.accesses_per_thread_per_epoch =
        static_cast<std::uint32_t>(sim_.accesses_per_thread_per_epoch);
    for (int r = 0; r < workload_->num_regions(); ++r) {
      header.regions.push_back(workload_->region(r));
    }
    capture_ = std::make_unique<trace::TraceWriter>(workload_spec_.capture_file, header);
    if (trace_provenance_.empty()) {
      trace_provenance_ = header.Provenance();
    }
  }
  shard_ctx_.reserve(static_cast<std::size_t>(topo_.num_cores()));
  Rng seeder(sim_.seed ^ 0x7777u);
  for (int c = 0; c < topo_.num_cores(); ++c) {
    shard_ctx_.emplace_back(sim_.tlb, sim_.reference_pipeline, topo_.num_nodes(), c,
                            topo_.NodeOfCore(c));
    shard_ctx_.back().rng = seeder.Fork();
  }
  shard_count_ = ResolveShardCount(sim_.shards, sim_.shards_force, topo_.num_cores());
  if (shard_count_ > 1) {
    shard_pool_ = std::make_unique<ShardPool>(shard_count_);
  }
  region_mlp_.reserve(static_cast<std::size_t>(workload_->num_regions()));
  region_intensity_.reserve(static_cast<std::size_t>(workload_->num_regions()));
  for (int r = 0; r < workload_->num_regions(); ++r) {
    const SourceRegion region = workload_->region(r);
    region_mlp_.push_back(region.mlp);
    region_intensity_.push_back(region.dram_intensity);
  }
  if (policy_.use_reactive || policy_.use_conservative) {
    lp_ = std::make_unique<CarrefourLp>(policy_, thp_state_);
  }
}

Simulation::~Simulation() = default;

int Simulation::CoreOfThread(int thread) const {
  // Round-robin thread pinning across CPU-bearing nodes (the natural Linux
  // scatter the paper's workloads run under): thread t -> node t % N. On
  // all-CPU machines cpu_nodes() is 0..N-1 with first_core = node *
  // cores_per_node, so this is exactly the seed's
  // (t % nodes) * cores_per_node + t / nodes; far-memory nodes have no
  // cores and simply never appear in the rotation.
  const std::vector<int>& cpu = topo_.cpu_nodes();
  const int n = static_cast<int>(cpu.size());
  const NodeInfo& node = topo_.node(cpu[static_cast<std::size_t>(thread % n)]);
  return node.first_core + thread / n;
}

template <bool kSpeculative>
bool Simulation::ProcessSlice(ShardContext& ctx, const WorkloadAccess* accesses,
                              std::size_t count, std::size_t base_index) {
  // Per-core state hoisted once per slice instead of re-resolved per access;
  // the counters the common (TLB-hit) path touches, the RNG state and the
  // IBS countdown additionally live in locals for the slice, so the loop's
  // steady state runs register-to-register (the sums written back are the
  // same integers the per-access stores accumulated).
  const int core = ctx.core;
  const int node = ctx.node;
  CoreCounters& cc = counters_.cores[static_cast<std::size_t>(core)];
  Rng rng = ctx.rng;
  Tlb& tlb = ctx.tlb;
  AddressSpace::TranslationCache& translate_cache = ctx.translate_cache;
  // Speculative slices redirect the *shared* per-node counters into the
  // context's delta scratch; the commit folds them in canonical core order
  // (they are integer sums — fold order is the serial order).
  std::uint64_t* node_requests = kSpeculative ? ctx.spec_node_requests.data()
                                              : counters_.node_requests.data();
  std::uint64_t* node_incoming_remote = kSpeculative
                                            ? ctx.spec_node_incoming_remote.data()
                                            : counters_.node_incoming_remote.data();
  std::uint64_t* core_requests =
      counters_.core_node_requests[static_cast<std::size_t>(core)].data();
  const double* region_intensity = region_intensity_.data();
  const Cycles cpu_per_access = sim_.costs.cpu_per_access;
  std::uint64_t ibs_countdown = ibs_.countdown(core);
  const std::uint64_t ibs_interval = ibs_.interval();
  Cycles exec_cycles = 0;
  std::uint64_t dram_local = 0;
  std::uint64_t dram_remote = 0;

  for (std::size_t i = 0; i < count; ++i) {
    const WorkloadAccess& access = accesses[i];
    Cycles cost = cpu_per_access;

    int home = 0;
    const TlbLookup hit = tlb.Lookup(access.va);
    if (hit.level == TlbHitLevel::kL1) {
      home = hit.node;
    } else if (hit.level == TlbHitLevel::kL2) {
      ++cc.tlb_l1_miss;
      ++cc.tlb_l2_hit;
      cost += sim_.costs.tlb_l2_hit;
      home = hit.node;
    } else {
      ++cc.tlb_l1_miss;
      auto mapping = address_space_->Translate(access.va, translate_cache);
      if (!mapping.has_value()) {
        // Demand fault: the first shared-state mutation a slice can make —
        // the new mapping, the first-touch placement race and the
        // page-table growth (which feeds every core's walk-miss draws) must
        // be globally visible in program order. A speculative slice stops
        // *before* mutating anything; the window is rolled back and
        // replayed serially.
        if constexpr (kSpeculative) {
          return false;
        }
        const TouchResult touch = address_space_->Touch(access.va, node);
        const FaultInfo& fault = *touch.fault;
        switch (fault.size) {
          case PageSize::k4K:
            ++cc.faults_4k;
            break;
          case PageSize::k2M:
            ++cc.faults_2m;
            break;
          case PageSize::k1G:
            ++cc.faults_1g;
            break;
        }
        cc.fault_bytes += fault.bytes;
        FaultCycleParts& parts = ctx.fault_parts;
        parts.fixed += sim_.costs.fault_fixed;
        parts.zero += static_cast<Cycles>(sim_.costs.fault_zero_per_byte *
                                          static_cast<double>(fault.bytes));
        mapping = touch.mapping;
      }
      if (!migrate_on_touch_.empty()) {
        const Addr piece = AlignDown(access.va, BytesOf(mapping->size));
        if constexpr (kSpeculative) {
          // A hint-mark hit consumes the mark (and may migrate the piece) —
          // shared mutations. A miss is exactly the serial Erase-returns-
          // false path: no mutation, so speculation may continue.
          if (migrate_on_touch_.Contains(piece)) {
            return false;
          }
        } else if (migrate_on_touch_.Erase(piece)) {
          if (mapping->node != node) {
            if (auto moved = address_space_->MigratePage(piece, node)) {
              cost += sim_.costs.fault_fixed / 2;  // hinting fault on this core
              // Kernel-side cost: the copied bytes accrue per page; the fixed
              // setup charge is applied per batch at the epoch boundary (the
              // per-node worker migrates its hinting-fault backlog as batched
              // page lists, not one syscall-priced operation per page).
              hint_kernel_cycles_ += static_cast<Cycles>(sim_.costs.migrate_per_byte *
                                                         static_cast<double>(moved->bytes));
              ++hint_migrations_;
              mapping = address_space_->Translate(access.va, translate_cache);
            }
          }
        }
      }
      ++cc.tlb_walks;
      const WalkResult walk =
          walker_.Walk(mapping->size, address_space_->page_table().table_bytes(), rng);
      const double mlp = region_mlp_[access.region];
      cost += mlp > 1.0 ? static_cast<Cycles>(static_cast<double>(walk.cycles) / mlp)
                        : walk.cycles;
      if (walk.l2_miss) {
        ++cc.walk_l2_miss;
      }
      tlb.Insert(mapping->page_base, mapping->size, mapping->pfn, mapping->node);
      home = mapping->node;
    }

    // Does this access reach DRAM? (Per-region cache abstraction.)
    const double intensity = region_intensity[access.region];
    const bool dram = rng.Bernoulli(intensity);
    if (dram) {
      ++node_requests[static_cast<std::size_t>(home)];
      ++core_requests[static_cast<std::size_t>(home)];
      if (home == node) {
        ++dram_local;
      } else {
        ++dram_remote;
        ++node_incoming_remote[static_cast<std::size_t>(home)];
      }
    }
    if (--ibs_countdown == 0) {
      ibs_countdown = ibs_interval;
      if constexpr (kSpeculative) {
        // The engine's per-node sample stores are shared; queue the sample
        // with its absolute access index and let the apply phase replay it
        // in serial (round, thread) order.
        ctx.pending_samples.push_back(
            ShardContext::PendingSample{access.va, base_index + i, home, dram});
        if (presketch_enabled_) {
          ctx.spec_sketch_pages.push_back(AlignDown(access.va, kBytes4K));
        }
      } else {
        ibs_.Sample(access.va, core, node, home, dram);
        if (presketch_enabled_) {
          epoch_presketch_.Add(AlignDown(access.va, kBytes4K), +1);
        }
      }
    }
    exec_cycles += cost;
  }

  cc.accesses += count;
  cc.exec_cycles += exec_cycles;
  cc.dram_local += dram_local;
  cc.dram_remote += dram_remote;
  ibs_.countdown(core) = ibs_countdown;
  ctx.rng = rng;
  return true;
}

void Simulation::ExecuteEpochAccesses(bool epoch_in_setup) {
  const std::size_t accesses = sim_.accesses_per_thread_per_epoch;
  const std::size_t num_rounds = (accesses + kSliceAccesses - 1) / kSliceAccesses;
  // Setup epochs are one long first-touch storm: nearly every window would
  // abort on a fault, so don't bother speculating. This is a property of the
  // simulation state, not of the shard count — every shard count takes the
  // same branch here, which the determinism argument needs.
  if (shard_pool_ == nullptr || epoch_in_setup) {
    RunRoundsSerial(0, num_rounds);
    return;
  }
  std::size_t round = 0;
  while (round < num_rounds) {
    if (serial_penalty_rounds_ > 0) {
      const std::size_t span = std::min(serial_penalty_rounds_, num_rounds - round);
      RunRoundsSerial(round, round + span);
      serial_penalty_rounds_ -= span;
      round += span;
      continue;
    }
    const std::size_t span = std::min(window_rounds_, num_rounds - round);
    if (TrySpeculativeWindow(round, round + span)) {
      window_rounds_ = std::min(kMaxWindowRounds, window_rounds_ * 2);
    } else {
      // Replay the window with the unchanged serial engine, then stay serial
      // for a penalty span: aborts cluster (fault bursts, post-split lazy
      // placement), and a failed window costs a full snapshot + partial run
      // + rollback on top of the replay.
      RunRoundsSerial(round, round + span);
      serial_penalty_rounds_ = 4 * window_rounds_;
      window_rounds_ = std::max(kMinWindowRounds, window_rounds_ / 2);
    }
    round += span;
  }
}

void Simulation::RunRoundsSerial(std::size_t first_round, std::size_t last_round) {
  const std::size_t accesses = sim_.accesses_per_thread_per_epoch;
  for (std::size_t r = first_round; r < last_round; ++r) {
    const std::size_t offset = r * kSliceAccesses;
    const std::size_t slice_end = std::min(offset + kSliceAccesses, accesses);
    for (int t = 0; t < topo_.num_cores(); ++t) {
      ShardContext& ctx = shard_ctx_[static_cast<std::size_t>(CoreOfThread(t))];
      const std::size_t end = std::min(slice_end, ctx.batch.size());
      if (offset < end) {
        ProcessSlice<false>(ctx, ctx.batch.data() + offset, end - offset, offset);
      }
    }
  }
}

bool Simulation::TrySpeculativeWindow(std::size_t first_round, std::size_t last_round) {
  spec_failed_.store(false, std::memory_order_relaxed);
  const std::size_t accesses = sim_.accesses_per_thread_per_epoch;
  const std::size_t offset = first_round * kSliceAccesses;
  const std::size_t window_end = std::min(last_round * kSliceAccesses, accesses);
  const int cores = topo_.num_cores();
  const int shards = shard_pool_->shards();
  shard_pool_->Run([&](int worker) {
    // Snapshot every assigned core before running any of them: a failed
    // window restores all contexts, including ones this worker never
    // started (their snapshot equals their live state — restoring is a
    // no-op, which keeps the rollback branch-free).
    for (int t = worker; t < cores; t += shards) {
      SnapshotShard(shard_ctx_[static_cast<std::size_t>(CoreOfThread(t))]);
    }
    for (int t = worker; t < cores; t += shards) {
      if (spec_failed_.load(std::memory_order_relaxed)) {
        return;  // early bail: the window is already doomed
      }
      ShardContext& ctx = shard_ctx_[static_cast<std::size_t>(CoreOfThread(t))];
      const std::size_t end = std::min(window_end, ctx.batch.size());
      if (offset >= end) {
        continue;
      }
      // The whole window as one contiguous mega-slice: with no shared-state
      // mutation inside the window, a thread's consecutive serial slices
      // see exactly the state this single call sees, so the concatenation
      // is access-for-access identical.
      if (!ProcessSlice<true>(ctx, ctx.batch.data() + offset, end - offset, offset)) {
        spec_failed_.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  if (spec_failed_.load(std::memory_order_relaxed)) {
    for (ShardContext& ctx : shard_ctx_) {
      RestoreShard(ctx);
    }
    return false;
  }
  CommitWindow(first_round, last_round);
  return true;
}

void Simulation::SnapshotShard(ShardContext& ctx) {
  ctx.tlb_backup = ctx.tlb;
  ctx.rng_backup = ctx.rng;
  ctx.cc_backup = counters_.cores[static_cast<std::size_t>(ctx.core)];
  ctx.core_node_requests_backup = counters_.core_node_requests[static_cast<std::size_t>(ctx.core)];
  ctx.ibs_countdown_backup = ibs_.countdown(ctx.core);
}

void Simulation::RestoreShard(ShardContext& ctx) {
  ctx.tlb = ctx.tlb_backup;
  ctx.rng = ctx.rng_backup;
  counters_.cores[static_cast<std::size_t>(ctx.core)] = ctx.cc_backup;
  counters_.core_node_requests[static_cast<std::size_t>(ctx.core)] = ctx.core_node_requests_backup;
  ibs_.countdown(ctx.core) = ctx.ibs_countdown_backup;
  std::fill(ctx.spec_node_requests.begin(), ctx.spec_node_requests.end(), 0);
  std::fill(ctx.spec_node_incoming_remote.begin(), ctx.spec_node_incoming_remote.end(), 0);
  ctx.pending_samples.clear();
  ctx.pending_cursor = 0;
  ctx.spec_sketch_pages.clear();
}

void Simulation::CommitWindow(std::size_t first_round, std::size_t last_round) {
  // Fold the shared-counter deltas. These are integer sums, so any fold
  // order produces the serial totals; canonical core order keeps it
  // auditable.
  for (ShardContext& ctx : shard_ctx_) {
    for (int n = 0; n < topo_.num_nodes(); ++n) {
      const auto idx = static_cast<std::size_t>(n);
      counters_.node_requests[idx] += ctx.spec_node_requests[idx];
      counters_.node_incoming_remote[idx] += ctx.spec_node_incoming_remote[idx];
      ctx.spec_node_requests[idx] = 0;
      ctx.spec_node_incoming_remote[idx] = 0;
    }
    // Presketch deltas fold here too (sketch profile mode): counted sums,
    // so the canonical core order reproduces the serial additions exactly.
    for (const Addr page : ctx.spec_sketch_pages) {
      epoch_presketch_.Add(page, +1);
    }
    ctx.spec_sketch_pages.clear();
  }
  // Replay pending IBS samples into the engine in exact serial order: the
  // serial loop runs (round, thread) and a thread's samples within a round
  // are ordered by access index, so draining each thread's queue up to the
  // round boundary reproduces the per-node store contents byte for byte.
  const std::size_t accesses = sim_.accesses_per_thread_per_epoch;
  for (std::size_t r = first_round; r < last_round; ++r) {
    const std::size_t round_end = std::min((r + 1) * kSliceAccesses, accesses);
    for (int t = 0; t < topo_.num_cores(); ++t) {
      ShardContext& ctx = shard_ctx_[static_cast<std::size_t>(CoreOfThread(t))];
      while (ctx.pending_cursor < ctx.pending_samples.size() &&
             ctx.pending_samples[ctx.pending_cursor].index < round_end) {
        const ShardContext::PendingSample& sample = ctx.pending_samples[ctx.pending_cursor];
        ibs_.Sample(sample.va, ctx.core, ctx.node, sample.home, sample.dram);
        ++ctx.pending_cursor;
      }
    }
  }
  for (ShardContext& ctx : shard_ctx_) {
    ctx.pending_samples.clear();
    ctx.pending_cursor = 0;
  }
}

Cycles Simulation::RunPolicies(Cycles wall_so_far, EpochRecord& record) {
  // Kernel page work (migrations, splits, promotions, shootdowns) runs on
  // per-node worker threads (Section 4.3: "all work generated by an
  // interrupt is performed independently on each node"), so its wall-clock
  // charge is divided by the node count; IBS interrupt time is paid on each
  // sampling core, so it divides across cores.
  Cycles kernel_cycles = 0;
  Cycles overhead = 0;
  std::vector<IbsSample> fresh = ibs_.Drain();
  const std::size_t fresh_count = fresh.size();
  const PageAggMap fresh_pages =
      AggregateSamples(fresh, *address_space_, AggGranularity::kMapping);
  record.metrics = ComputeNumaMetrics(counters_, fresh_pages, std::max<Cycles>(wall_so_far, 1));
  MergePages(cumulative_pages_, fresh_pages);
  // Policy decisions accumulate samples over a sliding window of epochs: the
  // kernel module keeps per-page statistics continuously, and at realistic
  // IBS rates a single second yields too few samples per page to act on.
  // The window aggregate is maintained incrementally (add newest epoch,
  // retire oldest) and folded to the current mapping granularity on demand —
  // per-epoch cost no longer scales with window length x samples per epoch.
  // Runs with no page-placement policy never consume the window aggregate,
  // so they skip its maintenance entirely (the reference engine keeps the
  // seed's always-on behavior; the fold result is identical and unused).
  const bool window_consumed = policy_.use_carrefour || lp_ != nullptr;
  PageAggMap pages;
  if (window_consumed || sim_.reference_pipeline) {
    if (presketch_enabled_) {
      window_.PushEpoch(std::move(fresh), &epoch_presketch_);
      epoch_presketch_.Reset();
    } else {
      window_.PushEpoch(std::move(fresh));
    }
    // Sketch mode prunes the mirrored Carrefour state along with the window
    // (DESIGN.md Section 11): a 2MB window whose last live sample just
    // retired carries per-page placement statistics nothing will read again
    // until it is re-sampled — and re-sampling rebuilds them. Inert on the
    // paper grids (their runs never outlive the 512-epoch window, so nothing
    // retires), it is what bounds Carrefour's state on long sparse runs.
    if (policy_.use_carrefour && !window_.retired_pages().empty()) {
      std::vector<Addr> retired_windows;
      retired_windows.reserve(window_.retired_pages().size());
      for (const Addr base : window_.retired_pages()) {
        retired_windows.push_back(AlignDown(base, kBytes2M));
      }
      std::sort(retired_windows.begin(), retired_windows.end());
      retired_windows.erase(std::unique(retired_windows.begin(), retired_windows.end()),
                            retired_windows.end());
      for (const Addr w : retired_windows) {
        if (!window_.HasSamplesIn(w, kBytes2M)) {
          carrefour_.ForgetRange(w, kBytes2M);
        }
      }
    }
    pages = window_.FoldToMapping(*address_space_);
  }

  std::vector<std::pair<Addr, PageSize>> shootdowns;
  std::vector<std::pair<Addr, std::uint64_t>> shootdown_ranges;
  // Batched page-list accounting for the policy migration passes (DESIGN.md
  // Section 8.4): the per-node workers drain a pass's migrations as page
  // lists — one fixed setup and one shootdown IPI broadcast per
  // `migrate_batch_pages` pages (migrate_pages + mmu_gather semantics) —
  // while the copied bytes always accrue per page. Splits and promotions
  // stay individually priced.
  const auto batched_migrate_cycles = [this](std::uint64_t pages,
                                             std::uint64_t bytes) -> Cycles {
    if (pages == 0) {
      return 0;
    }
    const std::uint64_t batch = std::max<std::uint64_t>(1, sim_.costs.migrate_batch_pages);
    const std::uint64_t lists = (pages + batch - 1) / batch;
    return static_cast<Cycles>(lists) *
               (sim_.costs.migrate_fixed + sim_.costs.shootdown_per_op) +
           static_cast<Cycles>(sim_.costs.migrate_per_byte * static_cast<double>(bytes));
  };
  bool did_split = false;
  const bool any_policy =
      policy_.use_carrefour || policy_.use_reactive || policy_.use_conservative;
  if (any_policy) {
    overhead += sim_.costs.policy_fixed_per_epoch +
                static_cast<Cycles>(fresh_count) * sim_.costs.per_ibs_sample /
                    static_cast<Cycles>(topo_.num_cores());
  }

  std::vector<Addr> repromote_windows;
  if (lp_ != nullptr) {
    LpObservation observation;
    observation.walk_l2_miss_frac = record.metrics.walk_l2_miss_frac;
    observation.max_fault_time_share = record.metrics.max_fault_time_share;
    // Estimates use the iteration's own samples (the paper estimates each
    // second from that second's IBS data); placement uses the accumulated
    // per-page statistics. The window owns the fresh samples now — no copy.
    // The LAR calculus sees only nodes that can be interleave targets or
    // sample sources: CPU nodes. On all-CPU machines this is num_nodes()
    // exactly; with a far tier, counting CPU-less nodes would overstate the
    // interleave spread (1/N locality over nodes no interleave ever lands
    // on) and make the hot-page "accessed from every node" test unreachable.
    observation.lar = EstimateLar(window_.latest_samples(), *address_space_, fresh_pages,
                                  topo_.num_cpu_nodes());
    observation.mapping_pages = &pages;
    observation.num_nodes = topo_.num_cpu_nodes();
    observation.window = &window_;
    // Cost-model inputs (DESIGN.md Section 8): the decision engine predicts
    // with the same constants the engine charges — the walker's expected 4KB
    // walk at the current page-table footprint, the interconnect's per-hop
    // penalty, and this epoch's measured access/wall counters.
    observation.costs.epoch_accesses = counters_.TotalAccesses();
    observation.costs.epoch_dram_accesses = counters_.TotalDram();
    observation.costs.epoch_wall = wall_so_far;
    observation.costs.walk_cycles_4k = walker_.ExpectedWalkCycles(
        PageSize::k4K, address_space_->page_table().table_bytes());
    observation.costs.remote_dram_penalty = remote_dram_premium_;
    observation.costs.split_op_cycles = sim_.costs.split_fixed + sim_.costs.shootdown_per_op;
    observation.costs.tlb_4k_reach_pages = static_cast<std::uint64_t>(sim_.tlb.l2_sets) *
                                           static_cast<std::uint64_t>(sim_.tlb.l2_ways) *
                                           static_cast<std::uint64_t>(topo_.num_cores());
    // Realized-gain discount (fault injection only): how much of what
    // Carrefour planned recently actually executed. 1.0 with faults off.
    if (fault_plan_ != nullptr && fault_mig_attempted_ > 0) {
      observation.migration_success_rate =
          static_cast<double>(fault_mig_executed_) /
          static_cast<double>(fault_mig_attempted_);
    }
    record.est_current_lar = observation.lar.current_pct;
    record.est_carrefour_lar = observation.lar.carrefour_pct;
    record.est_split_lar = observation.lar.carrefour_split_pct;

    const LpDecision decision = lp_->Step(observation);
    // Hot pages first (Algorithm 1 line 19): split, then interleave the
    // constituent pages across nodes — migration alone cannot balance fewer
    // hot pages than nodes. A hot page is usually also shared, so handling
    // it before the shared-page pass preserves the interleave.
    for (const auto& entry : decision.split_hot) {
      const Addr base = entry.first;
      const PageSize size = entry.second;
      if (fault_plan_ != nullptr && fault_plan_->FailSplit()) {
        // Injected demotion failure: the 2MB mapping stays intact, and the
        // decision engine re-requests the still-hot page next epoch — the
        // retry re-arms itself through the unchanged estimates.
        continue;
      }
      if (!address_space_->SplitLargePage(base)) {
        continue;
      }
      kernel_cycles += sim_.costs.split_fixed + sim_.costs.shootdown_per_op;
      ++record.splits;
      carrefour_.Forget(base);
      if (sim_.reference_pipeline) {
        shootdowns.emplace_back(base, size);
      } else {
        // One ranged shootdown covers the stale large-page translation and
        // every piece the interleave loop below migrates.
        shootdown_ranges.emplace_back(base, BytesOf(size));
      }
      did_split = true;
      const PageSize piece = size == PageSize::k1G ? PageSize::k2M : PageSize::k4K;
      const std::uint64_t step = BytesOf(piece);
      std::uint64_t interleaved_pages = 0;
      std::uint64_t interleaved_bytes = 0;
      // Interleave targets are CPU nodes only: spreading a hot page's pieces
      // onto a CXL expander trades controller balance it doesn't need for a
      // flat latency tax on every access (DESIGN.md Section 13). The draw
      // count and the draw->node mapping are unchanged on all-CPU machines.
      const std::vector<int>& cpu = topo_.cpu_nodes();
      for (Addr p = base; p < base + BytesOf(size); p += step) {
        const int target = cpu[static_cast<std::size_t>(
            policy_rng_.Uniform(static_cast<std::uint64_t>(cpu.size())))];
        if (auto moved = address_space_->MigratePage(p, target)) {
          ++interleaved_pages;
          interleaved_bytes += moved->bytes;
          ++record.migrations;
          if (sim_.reference_pipeline) {
            shootdowns.emplace_back(p, piece);
          }
        }
      }
      kernel_cycles += batched_migrate_cycles(interleaved_pages, interleaved_bytes);
    }
    // Shared large pages (lines 15-18).
    for (const auto& entry : decision.split_shared) {
      const Addr base = entry.first;
      if (fault_plan_ != nullptr && fault_plan_->FailSplit()) {
        continue;  // as above: mapping intact, re-requested next epoch
      }
      if (address_space_->SplitLargePage(base)) {
        kernel_cycles += sim_.costs.split_fixed + sim_.costs.shootdown_per_op;
        ++record.splits;
        carrefour_.Forget(base);
        shootdowns.emplace_back(base, entry.second);
        did_split = true;
        const PageSize piece_size =
            entry.second == PageSize::k1G ? PageSize::k2M : PageSize::k4K;
        const std::uint64_t piece_step = BytesOf(piece_size);
        // Split-time placement (DESIGN.md Section 8.4): the window's own
        // per-4KB sample aggregates already say who uses each piece, so
        // sampled pieces move to their majority-requester node *now*, as one
        // batched relocation — the kernel walks the window once (one fixed
        // charge per batch plus the copied bytes), and the pieces have no
        // cached translations yet (the stale large-page entry was just shot
        // down), so no per-piece shootdowns accrue. The old everything-lazy
        // path paid a fault plus a full single-page migration for every
        // piece — the mass-relocation transient UA.B could not amortize.
        // Every piece additionally keeps a hinting-fault mark: a correctly
        // pre-placed piece consumes its mark for free (the toucher is
        // local), while a piece a sparse sample misplaced is corrected by
        // its very next toucher instead of waiting for Carrefour's
        // sample-threshold crawl.
        std::uint64_t relocated_pages = 0;
        std::uint64_t relocated_bytes = 0;
        for (Addr p = base; p < base + BytesOf(entry.second); p += piece_step) {
          migrate_on_touch_.Insert(p);
          const auto target = window_.MajorityReqNodeIn(
              p, piece_step, sim_.costs.split_place_min_samples);
          if (!target.has_value()) {
            continue;
          }
          if (auto moved = address_space_->MigratePage(p, *target)) {
            ++relocated_pages;
            relocated_bytes += moved->bytes;
            ++record.migrations;
          }
        }
        kernel_cycles += batched_migrate_cycles(relocated_pages, relocated_bytes);
      }
    }
    repromote_windows = std::move(decision.repromote_windows);
  }

  // Carrefour migration/interleave pass (Algorithm 1 line 20). If pages were
  // split this epoch, re-aggregate so the plan sees the new granularity.
  if (policy_.use_carrefour) {
    const std::uint64_t accesses = counters_.TotalAccesses();
    const double dram_rate =
        accesses == 0
            ? 0.0
            : static_cast<double>(counters_.TotalDram()) / static_cast<double>(accesses);
    if (carrefour_.ShouldRun(record.metrics.lar_pct, record.metrics.imbalance_pct, dram_rate)) {
      const PageAggMap* plan_pages = &pages;
      PageAggMap reaggregated;
      if (did_split) {
        // Re-fold so the plan sees the post-split granularity (the 4KB window
        // aggregate itself needed no re-bucketing: splits do not move 4KB
        // windows across 4KB boundaries).
        reaggregated = window_.FoldToMapping(*address_space_);
        plan_pages = &reaggregated;
      }
      auto plan = carrefour_.Plan(*plan_pages, record.epoch);
      if (fault_plan_ != nullptr) {
        fault_mig_attempted_ += plan.size();
        // Partial completion: the per-node workers ran out of epoch budget
        // mid-list. The truncated tail is re-queued through the failure
        // backoff — charged attempts, no delivered locality.
        const std::size_t budget = fault_plan_->PlanBudget(plan.size());
        if (budget < plan.size()) {
          for (std::size_t i = budget; i < plan.size(); ++i) {
            carrefour_.NoteMigrationFailure(plan[i].page_base, record.epoch);
          }
          plan.resize(budget);
        }
      }
      std::uint64_t plan_pages_moved = 0;
      std::uint64_t plan_bytes_moved = 0;
      std::uint64_t plan_failed_attempts = 0;
      for (const CarrefourAction& action : plan) {
        if (auto moved = address_space_->MigratePage(action.page_base, action.target_node)) {
          ++plan_pages_moved;
          plan_bytes_moved += moved->bytes;
          ++record.migrations;
          shootdowns.emplace_back(moved->page_base, moved->size);
          if (fault_plan_ != nullptr) {
            ++fault_mig_executed_;
            carrefour_.NoteMigrationSuccess(action.page_base);
          }
        } else if (fault_plan_ != nullptr) {
          // Actionable failure (injected fault or full target node) versus
          // benign no-op: the retry machinery owns the page only if it still
          // exists at this exact base and still sits off-target.
          const auto mapping = address_space_->Translate(action.page_base);
          if (mapping.has_value() && mapping->page_base == action.page_base &&
              mapping->node != action.target_node) {
            carrefour_.NoteMigrationFailure(action.page_base, record.epoch);
            ++plan_failed_attempts;
          }
        }
      }
      kernel_cycles += batched_migrate_cycles(plan_pages_moved, plan_bytes_moved);
      // Failed attempts still paid their list setup and shootdown broadcast;
      // only the copy was skipped.
      kernel_cycles += batched_migrate_cycles(plan_failed_attempts, 0);
    }
  }

  // Reactive re-promotion (DESIGN.md Section 8): consolidate the windows the
  // decision engine handed back, under khugepaged's own rule (majority node,
  // anti-oscillation guard). Like khugepaged promotions, these land after
  // this epoch's placement pass — next epoch's fold sees the new granularity.
  for (const Addr base : repromote_windows) {
    if (fault_plan_ != nullptr && fault_plan_->InPromoteBackoff(base)) {
      continue;  // a recent 2MB allocation failure put this window in backoff
    }
    const auto target = WindowPromotionTarget(*address_space_, base);
    if (!target.has_value()) {
      continue;  // under-populated or interleaved window: khugepaged may
                 // consolidate it later, once lazy placement fills it in
    }
    if (auto promo = address_space_->PromoteWindow(base, *target)) {
      kernel_cycles += sim_.costs.promote_fixed +
                       static_cast<Cycles>(sim_.costs.promote_per_byte *
                                           static_cast<double>(promo->bytes_copied)) +
                       sim_.costs.shootdown_per_op;
      ++record.promotions;
      // The per-4KB-piece policy state underneath the window is stale now:
      // the pieces no longer exist, and their pending lazy migrations must
      // not move the consolidated huge page.
      carrefour_.ForgetRange(base, kBytes2M);
      if (!migrate_on_touch_.empty()) {
        for (Addr p = base; p < base + kBytes2M; p += kBytes4K) {
          migrate_on_touch_.Erase(p);
        }
      }
      if (sim_.reference_pipeline) {
        for (Addr p = base; p < base + kBytes2M; p += kBytes4K) {
          shootdowns.emplace_back(p, PageSize::k4K);
        }
      } else {
        shootdown_ranges.emplace_back(base, kBytes2M);
      }
    }
  }

  // khugepaged runs only while THP is enabled (splitting disables allocation,
  // which parks the scanner too — otherwise it would undo every split). The
  // hot-page localize path splits *without* disabling allocation, so the
  // scanner additionally skips windows whose pieces still await
  // hinting-fault placement: at split time all frames sit on one node, and
  // consolidating before the pieces scatter would undo the split in the
  // same epoch (and leave stale migrate-on-touch marks that could wholesale-
  // migrate the consolidated page).
  if (thp_state_.promote_enabled && thp_state_.alloc_enabled) {
    const auto skip_in_flux = [this](Addr base) {
      // Windows whose 2MB allocation recently failed sit out their backoff
      // before khugepaged retries them (fault injection only).
      if (fault_plan_ != nullptr && fault_plan_->InPromoteBackoff(base)) {
        return true;
      }
      if (migrate_on_touch_.empty()) {
        return false;
      }
      for (Addr p = base; p < base + kBytes2M; p += kBytes4K) {
        if (migrate_on_touch_.Contains(p)) {
          return true;
        }
      }
      return false;
    };
    const auto promotions = khugepaged_.Scan(sim_.promote_scan_windows,
                                             sim_.promote_max_per_epoch, skip_in_flux);
    for (const PromotionRecord& promo : promotions) {
      kernel_cycles += sim_.costs.promote_fixed +
                       static_cast<Cycles>(sim_.costs.promote_per_byte *
                                           static_cast<double>(promo.bytes_copied)) +
                       sim_.costs.shootdown_per_op;
    }
    record.promotions += promotions.size();
    for (const PromotionRecord& promo : promotions) {
      // The 512 stale 4KB translations of the consolidated window, as one
      // ranged shootdown (the reference engine queues them one by one).
      if (sim_.reference_pipeline) {
        for (Addr p = promo.window_base; p < promo.window_base + kBytes2M; p += kBytes4K) {
          shootdowns.emplace_back(p, PageSize::k4K);
        }
      } else {
        shootdown_ranges.emplace_back(promo.window_base, kBytes2M);
      }
    }
  }

  for (ShardContext& ctx : shard_ctx_) {
    for (const auto& [page_base, size] : shootdowns) {
      ctx.tlb.InvalidatePage(page_base, size);
    }
    for (const auto& [base, bytes] : shootdown_ranges) {
      ctx.tlb.InvalidateRange(base, bytes);
    }
  }
  // Kernel work parallelizes across the nodes that have CPUs to run it
  // (identical to num_nodes() on every all-CPU machine).
  overhead += static_cast<Cycles>(static_cast<double>(kernel_cycles) /
                                  (static_cast<double>(topo_.num_cpu_nodes()) *
                                   sim_.costs.kernel_time_scale));
  return overhead;
}

RunResult Simulation::Run() {
  RunResult result;
  result.workload = workload_spec_.name;
  result.machine = topo_.name();
  result.policy = policy_.kind;
  result.core_totals.resize(static_cast<std::size_t>(topo_.num_cores()));
  result.node_request_totals.assign(static_cast<std::size_t>(topo_.num_nodes()), 0);
  std::vector<RegionMapEvent> map_events;
  std::vector<RegionUnmapEvent> unmap_events;

  for (int epoch = 0; epoch < sim_.max_epochs; ++epoch) {
    // Cooperative watchdog cancellation, checked only at epoch boundaries:
    // a cancelled run is a deterministic prefix of the uncancelled one, so
    // everything recorded up to here is still exact.
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      result.status = "deadline";
      break;
    }
    if (fault_plan_ != nullptr) {
      fault_plan_->BeginEpoch(epoch, phys_);
    }
    counters_.Reset();
    for (ShardContext& ctx : shard_ctx_) {
      ctx.fault_parts = FaultCycleParts{};
    }
    const bool epoch_in_setup = !workload_->SetupDone();
    if (!epoch_in_setup && !steady_transition_done_) {
      steady_transition_done_ = true;
      // The setup phase's first-touch storm is over. Its samples — cross-node
      // touches of windows that are now settled — would otherwise dominate
      // the decision window (and Carrefour's interleave memory) for the whole
      // run, which is seconds long where the paper's are minutes: the paper's
      // benchmarks measure steady state, so the policies decide on it too.
      window_.Clear();
      carrefour_.ForgetAll();
    }

    // Generate every thread's batch, then execute them in round-robin slices:
    // threads run concurrently on the real machine, so first-touch races
    // (which thread faults a shared 2MB window first) must interleave at a
    // fine grain rather than letting thread 0 win everything (see
    // kSliceAccesses). Batch generation stays serial — the workload mutates
    // shared setup bookkeeping — and thread t's batch lands in the context
    // of its pinned core.
    workload_->BeginEpoch();
    // Mid-epoch RegionMap events (mmap churn — trace sources only): the
    // source performed the MmapAnon itself inside BeginEpoch; here the new
    // regions enter the per-region cost tables, the churn counters, and the
    // capture stream.
    workload_->DrainMapEvents(&map_events);
    result.region_maps += map_events.size();
    for (int r = static_cast<int>(region_mlp_.size()); r < workload_->num_regions(); ++r) {
      const SourceRegion region = workload_->region(r);
      region_mlp_.push_back(region.mlp);
      region_intensity_.push_back(region.dram_intensity);
    }
    if (capture_ != nullptr) {
      // The serial capture point: batch generation below is single-threaded
      // at every shard count and in both engines, so the recorded stream is
      // invariant across jobs × shards × engine (DESIGN.md §14).
      capture_->BeginEpoch(epoch_in_setup);
      for (const auto& event : map_events) {
        capture_->RegionMap(event);
      }
    }
    for (int t = 0; t < topo_.num_cores(); ++t) {
      auto& batch = shard_ctx_[static_cast<std::size_t>(CoreOfThread(t))].batch;
      workload_->FillBatch(t, sim_.accesses_per_thread_per_epoch, batch);
      if (capture_ != nullptr) {
        capture_->Batch(t, batch);
      }
    }
    ExecuteEpochAccesses(epoch_in_setup);

    // Page-table-lock contention: the fixed part of fault cost scales with
    // the number of cores faulting concurrently this epoch ([3] in the
    // paper; why THP's 512x fewer faults matter beyond zeroing).
    int faulting_cores = 0;
    for (const auto& core : counters_.cores) {
      if (core.faults_4k + core.faults_2m + core.faults_1g > 0) {
        ++faulting_cores;
      }
    }
    const double contention =
        std::min(sim_.costs.fault_contention_max,
                 1.0 + sim_.costs.fault_contention_slope * std::max(0, faulting_cores - 1));
    for (int c = 0; c < topo_.num_cores(); ++c) {
      const FaultCycleParts& parts = shard_ctx_[static_cast<std::size_t>(c)].fault_parts;
      counters_.cores[static_cast<std::size_t>(c)].fault_cycles =
          parts.zero + static_cast<Cycles>(static_cast<double>(parts.fixed) * contention);
    }

    // Resolve DRAM latencies from this epoch's controller load distribution.
    const std::uint64_t ctrl_capacity = static_cast<std::uint64_t>(
        sim_.mem_ctrl.capacity_fraction *
        static_cast<double>(topo_.num_cores()) *
        static_cast<double>(sim_.accesses_per_thread_per_epoch) /
        static_cast<double>(topo_.num_nodes()));
    auto latencies = mem_ctrl_.Latencies(counters_.node_requests, ctrl_capacity);
    // Far-memory service premium (DESIGN.md Section 13): a CXL expander
    // serves every request — local traffic does not exist, it has no cores —
    // at a flat extra latency on top of its queueing model. Zero on every
    // all-CPU preset, so the addition is a no-op there.
    for (int n = 0; n < topo_.num_nodes(); ++n) {
      latencies[static_cast<std::size_t>(n)] += topo_.node(n).extra_latency;
    }
    const auto remote =
        interconnect_.RemoteLatencies(counters_.node_incoming_remote);
    for (int c = 0; c < topo_.num_cores(); ++c) {
      const int node = topo_.NodeOfCore(c);
      Cycles dram_cycles = 0;
      for (int n = 0; n < topo_.num_nodes(); ++n) {
        const std::uint64_t requests =
            counters_.core_node_requests[static_cast<std::size_t>(c)][static_cast<std::size_t>(n)];
        if (requests == 0) {
          continue;
        }
        Cycles per_request = latencies[static_cast<std::size_t>(n)];
        if (n != node) {
          per_request += remote[static_cast<std::size_t>(node)][static_cast<std::size_t>(n)];
        }
        dram_cycles += requests * per_request;
      }
      counters_.cores[static_cast<std::size_t>(c)].dram_cycles = dram_cycles;
    }

    // Measured remote premium for the reactive cost model: averaged over this
    // epoch's actual remote traffic, what one remote access cost beyond a
    // local one — the hop latency plus the destination controller's queueing
    // delta. Floors at the configured hop cost when there was no remote
    // traffic (or congestion happened to favor the remote node).
    {
      double premium_sum = 0.0;
      std::uint64_t remote_requests = 0;
      for (int c = 0; c < topo_.num_cores(); ++c) {
        const int node = topo_.NodeOfCore(c);
        for (int n = 0; n < topo_.num_nodes(); ++n) {
          if (n == node) {
            continue;
          }
          const std::uint64_t requests =
              counters_.core_node_requests[static_cast<std::size_t>(c)]
                                          [static_cast<std::size_t>(n)];
          if (requests == 0) {
            continue;
          }
          remote_requests += requests;
          premium_sum +=
              static_cast<double>(requests) *
              (static_cast<double>(remote[static_cast<std::size_t>(node)]
                                         [static_cast<std::size_t>(n)]) +
               static_cast<double>(latencies[static_cast<std::size_t>(n)]) -
               static_cast<double>(latencies[static_cast<std::size_t>(node)]));
        }
      }
      const double floor = static_cast<double>(sim_.interconnect.per_hop);
      remote_dram_premium_ = static_cast<Cycles>(
          remote_requests == 0
              ? floor
              : std::max(floor, premium_sum / static_cast<double>(remote_requests)));
    }

    Cycles wall = 0;
    for (const auto& core : counters_.cores) {
      wall = std::max(wall, core.total_cycles());
    }

    EpochRecord record;
    record.epoch = epoch;
    record.in_setup = epoch_in_setup;
    Cycles overhead = RunPolicies(wall, record);
    // Batched hinting-fault accounting: the epoch's hint migrations carry
    // their per-byte copy costs (accrued in ProcessSlice) plus one fixed
    // setup and shootdown charge per batch of `migrate_batch_pages` pages —
    // the per-node worker moves its backlog as page lists, not one priced
    // syscall per page. (The on-core minor-fault charge is unbatchable and
    // was paid inline.)
    if (hint_migrations_ > 0) {
      const std::uint64_t batch = std::max<std::uint64_t>(1, sim_.costs.migrate_batch_pages);
      hint_kernel_cycles_ += (sim_.costs.migrate_fixed + sim_.costs.shootdown_per_op) *
                             ((hint_migrations_ + batch - 1) / batch);
    }
    overhead += static_cast<Cycles>(static_cast<double>(hint_kernel_cycles_) /
                                    (static_cast<double>(topo_.num_cpu_nodes()) *
                                     sim_.costs.kernel_time_scale));
    record.migrations += hint_migrations_;
    hint_kernel_cycles_ = 0;
    hint_migrations_ = 0;
    wall += overhead;
    record.wall = wall;
    record.policy_overhead = overhead;
    record.thp_coverage = address_space_->LargePageCoverage();
    record.thp_alloc_enabled = thp_state_.alloc_enabled;
    record.thp_promote_enabled = thp_state_.promote_enabled;

    result.total_cycles += wall;
    if (!epoch_in_setup) {
      result.measured_cycles += wall;
    }
    result.total_policy_overhead += overhead;
    result.total_migrations += record.migrations;
    result.total_splits += record.splits;
    result.total_promotions += record.promotions;
    for (int c = 0; c < topo_.num_cores(); ++c) {
      result.core_totals[static_cast<std::size_t>(c)].Accumulate(
          counters_.cores[static_cast<std::size_t>(c)]);
    }
    for (int n = 0; n < topo_.num_nodes(); ++n) {
      result.node_request_totals[static_cast<std::size_t>(n)] +=
          counters_.node_requests[static_cast<std::size_t>(n)];
    }
    result.history.push_back(record);

    // Epoch-end RegionUnmap events (munmap churn): frames go back through
    // the buddy allocator — where long-lived churn fragments the free lists
    // for real — and every core's TLB entries for the range die. Serialized
    // epoch-end work, like the policy mutations above. The munmap syscall's
    // own kernel time is not modeled; the churn's effect is allocator-side
    // (DESIGN.md §14).
    workload_->DrainUnmapEvents(&unmap_events);
    for (const auto& event : unmap_events) {
      if (capture_ != nullptr) {
        capture_->RegionUnmap(event);
      }
      const AddressSpace::UnmapStats stats =
          address_space_->MunmapRange(event.base, event.bytes);
      result.unmapped_bytes += stats.freed_bytes;
      ++result.region_unmaps;
      for (ShardContext& ctx : shard_ctx_) {
        ctx.tlb.InvalidateRange(event.base, event.bytes);
      }
    }

    const bool done = workload_->Done();
    if (capture_ != nullptr) {
      capture_->EndEpoch(done);
    }
    if (done) {
      result.completed = true;
      break;
    }
  }

  result.epochs = static_cast<int>(result.history.size());
  for (const auto& core : result.core_totals) {
    result.totals.Accumulate(core);
  }
  result.final_thp_coverage = address_space_->LargePageCoverage();
  if (fault_plan_ != nullptr) {
    const FaultCounters& fc = fault_plan_->counters();
    result.fault_alloc_failures = fc.alloc_failures;
    result.fault_migration_failures = fc.migration_failures;
    result.fault_split_failures = fc.split_failures;
    result.fault_truncated_plans = fc.truncated_plans;
    result.fault_pressure_epochs = fc.pressure_epochs;
    result.fault_promote_backoffs = fc.promote_backoffs;
    result.fault_retried_migrations = carrefour_.retried_migrations();
    result.fault_abandoned_pages = carrefour_.abandoned_pages();
  }
  // Unconditional (not fault-gated): churn-driven organic huge-allocation
  // failures happen with no fault plan installed.
  result.thp_fallback_faults = address_space_->thp_fallback_faults();
  result.trace_source = trace_provenance_;
  if (capture_ != nullptr) {
    capture_->Finish(result.completed);
  }
  // Buddy fragmentation telemetry (filled on every run, faults or not):
  // worst per-node fragmentation, the largest order any node can still
  // serve, and the machine's residual 2MB allocation capacity.
  constexpr int kOrder2M = 9;  // 2^9 frames * 4KB = 2MB
  for (int n = 0; n < phys_.num_nodes(); ++n) {
    const BuddyAllocator& alloc = phys_.node_allocator(n);
    result.frag_index_pct =
        std::max(result.frag_index_pct, 100.0 * alloc.FragmentationIndex());
    result.buddy_largest_free_order =
        std::max(result.buddy_largest_free_order, alloc.LargestFreeOrder());
    for (int o = kOrder2M; o <= kMaxOrder; ++o) {
      result.buddy_free_2m_blocks += alloc.FreeBlocksOfOrder(o)
                                     << (o - kOrder2M);
    }
    result.buddy_alloc_failures += alloc.alloc_failures();
  }
  result.profile_peak_entries = window_.peak_entries();
  result.profile_state_bytes = window_.peak_state_bytes();
  result.profile_admission_misses = window_.admission_misses();
  result.cumulative_pages = std::move(cumulative_pages_);
  cumulative_pages_ = PageAggMap{};
  return result;
}

RunResult RunBenchmark(const Topology& topo, BenchmarkId bench, PolicyKind kind,
                       const SimConfig& sim) {
  const WorkloadSpec spec = MakeWorkloadSpec(bench, topo);
  const PolicyConfig policy = MakePolicyConfig(kind);
  Simulation simulation(topo, spec, policy, sim);
  return simulation.Run();
}

}  // namespace numalp
