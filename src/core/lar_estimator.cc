#include "src/core/lar_estimator.h"

namespace numalp {

double EstimateCarrefourLarPct(const PageAggMap& pages, int num_nodes) {
  // Accumulate in integers scaled by num_nodes (one exact division at the
  // end) so the estimate is independent of map iteration order — a
  // floating-point running sum would pick up different rounding under
  // different insertion histories.
  std::uint64_t total = 0;
  std::uint64_t local_scaled = 0;  // expected-local samples, times num_nodes
  for (const auto& [base, agg] : pages) {
    if (agg.dram == 0) {
      continue;
    }
    total += agg.total;
    if (agg.SingleNode()) {
      // Migrated to its one requesting node: all accesses local.
      local_scaled += agg.total * static_cast<std::uint64_t>(num_nodes);
    } else {
      // Interleaved to a random node: expected locality 1/N.
      local_scaled += agg.total;
    }
  }
  return total == 0 ? 100.0
                    : 100.0 * static_cast<double>(local_scaled) /
                          (static_cast<double>(num_nodes) * static_cast<double>(total));
}

double PostSplitTlbMissRate(double cap, std::uint64_t tlb_slot_demand,
                            std::uint64_t tlb_reach_pages) {
  const double pages = static_cast<double>(tlb_slot_demand);
  const double reach = static_cast<double>(tlb_reach_pages);
  if (pages + reach <= 0.0) {
    return 0.0;
  }
  return cap * pages / (pages + reach);
}

Cycles PredictedThrashCyclesPerEpoch(const LpCostInputs& inputs, double access_share,
                                     double miss_rate) {
  return static_cast<Cycles>(access_share * static_cast<double>(inputs.epoch_accesses) *
                             miss_rate * static_cast<double>(inputs.walk_cycles_4k));
}

Cycles PredictedLarGainCyclesPerEpoch(const LpCostInputs& inputs, double lar_gain_pct) {
  if (lar_gain_pct <= 0.0) {
    return 0;
  }
  return static_cast<Cycles>(lar_gain_pct / 100.0 *
                             static_cast<double>(inputs.epoch_dram_accesses) *
                             static_cast<double>(inputs.remote_dram_penalty));
}

LarEstimates EstimateLar(std::span<const IbsSample> samples,
                         const AddressSpace& address_space,
                         const PageAggMap& mapping_pages, int num_nodes) {
  LarEstimates estimates;
  // Current LAR over DRAM-serviced samples.
  std::uint64_t dram = 0;
  std::uint64_t dram_local = 0;
  for (const IbsSample& sample : samples) {
    if (!sample.dram) {
      continue;
    }
    ++dram;
    if (sample.req_node == sample.home_node) {
      ++dram_local;
    }
  }
  estimates.dram_samples = dram;
  estimates.current_pct =
      dram == 0 ? 100.0 : 100.0 * static_cast<double>(dram_local) / static_cast<double>(dram);
  estimates.carrefour_pct = EstimateCarrefourLarPct(mapping_pages, num_nodes);
  const PageAggMap pages_4k = AggregateSamples(samples, address_space, AggGranularity::k4K);
  estimates.carrefour_split_pct = EstimateCarrefourLarPct(pages_4k, num_nodes);
  return estimates;
}

}  // namespace numalp
