#include "src/core/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "src/core/shard.h"

namespace numalp {

std::uint64_t CellSeed(std::uint64_t base_seed, int seed_index) {
  return base_seed + static_cast<std::uint64_t>(seed_index) * 7919;
}

int JobsFromEnv() { return static_cast<int>(PositiveEnvInt("NUMALP_JOBS")); }

ExperimentRunner::ExperimentRunner(int jobs) {
  if (jobs <= 0) {
    jobs = JobsFromEnv();
  }
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  jobs_ = std::max(1, jobs);
  cell_deadline_ms_ = static_cast<std::int64_t>(PositiveEnvInt("NUMALP_CELL_DEADLINE_MS"));
  // Raw parse (not PositiveEnvInt): 0 retries is a legitimate setting.
  if (const char* env = std::getenv("NUMALP_CELL_RETRIES")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 0) {
      max_cell_retries_ = static_cast<int>(value);
    }
  }
}

namespace {

// One per worker: the watchdog thread scans these and raises `cancel` when a
// cell overruns its armed deadline. deadline_ns == 0 means idle.
struct WatchdogSlot {
  std::atomic<bool> cancel{false};
  std::atomic<std::int64_t> deadline_ns{0};
};

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::vector<RunResult> ExperimentRunner::Run(const std::vector<RunSpec>& cells) const {
  std::vector<RunResult> results(cells.size());
  const std::size_t skip = std::min(skip_prefix_, cells.size());

  const int workers =
      std::max(1, std::min<int>(jobs_, static_cast<int>(cells.size() - skip)));
  std::vector<WatchdogSlot> slots(static_cast<std::size_t>(workers));
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  if (cell_deadline_ms_ > 0) {
    watchdog = std::thread([&]() {
      while (!watchdog_stop.load(std::memory_order_relaxed)) {
        const std::int64_t now = NowNs();
        for (WatchdogSlot& slot : slots) {
          const std::int64_t deadline = slot.deadline_ns.load(std::memory_order_relaxed);
          if (deadline != 0 && now > deadline) {
            slot.cancel.store(true, std::memory_order_relaxed);
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  }

  // Cell-failure isolation: a cell that throws or gets cancelled by the
  // watchdog is retried up to max_cell_retries_ times (each attempt is a
  // fresh Simulation, so a successful retry is the exact deterministic
  // result); when the budget runs out, a stub row with the cell's
  // coordinates and a "failed:"/"deadline" status is recorded and the grid
  // carries on. Results are deterministic either way: the outcome of a cell
  // never depends on other cells.
  auto run_cell = [&](std::size_t i, WatchdogSlot& slot) {
    const RunSpec& spec = cells[i];
    for (int attempt = 0;; ++attempt) {
      try {
        Simulation simulation(spec.topo, spec.workload, spec.policy, spec.sim);
        if (cell_deadline_ms_ > 0) {
          slot.cancel.store(false, std::memory_order_relaxed);
          simulation.set_cancel_flag(&slot.cancel);
          slot.deadline_ns.store(NowNs() + cell_deadline_ms_ * 1'000'000,
                                 std::memory_order_relaxed);
        }
        RunResult result = simulation.Run();
        slot.deadline_ns.store(0, std::memory_order_relaxed);
        if (result.status == "deadline" && attempt < max_cell_retries_) {
          continue;
        }
        results[i] = std::move(result);
        return;
      } catch (const std::exception& e) {
        slot.deadline_ns.store(0, std::memory_order_relaxed);
        if (attempt < max_cell_retries_) {
          continue;
        }
        RunResult failed;
        failed.workload = spec.workload.name;
        failed.machine = spec.topo.name();
        failed.policy = spec.policy.kind;
        failed.status = std::string("failed: ") + e.what();
        results[i] = std::move(failed);
        return;
      }
    }
  };

  // Register this runner's worker count with the oversubscription guard for
  // the duration of the grid: simulations created inside run_cell clamp
  // their intra-cell shard count to the host budget divided by the active
  // jobs (src/core/shard.h), so grid-level and intra-cell parallelism never
  // multiply into more threads than the host has.
  const ScopedActiveRunnerJobs jobs_guard(std::max(1, workers));
  if (workers <= 1 || cells.size() - skip <= 1) {
    for (std::size_t i = skip; i < cells.size(); ++i) {
      run_cell(i, slots[0]);
      if (observer_) {
        observer_(i, cells[i], results[i]);
      }
    }
  } else {
    // Observer plumbing: workers mark completed cells and flush the
    // contiguous done-prefix under the mutex, so the observer sees cells in
    // ascending index order no matter which worker finished them. A cell's
    // result is published by its worker before it takes the mutex, so the
    // flusher reads it safely.
    std::mutex emit_mutex;
    std::vector<char> done(cells.size(), 0);
    std::size_t next_to_emit = skip;

    std::atomic<std::size_t> next{skip};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w]() {
        WatchdogSlot& slot = slots[static_cast<std::size_t>(w)];
        for (std::size_t i = next.fetch_add(1); i < cells.size(); i = next.fetch_add(1)) {
          run_cell(i, slot);
          if (observer_) {
            const std::lock_guard<std::mutex> lock(emit_mutex);
            done[i] = 1;
            while (next_to_emit < cells.size() && done[next_to_emit]) {
              observer_(next_to_emit, cells[next_to_emit], results[next_to_emit]);
              ++next_to_emit;
            }
          }
        }
      });
    }
    for (std::thread& worker : pool) {
      worker.join();
    }
  }

  if (watchdog.joinable()) {
    watchdog_stop.store(true, std::memory_order_relaxed);
    watchdog.join();
  }
  return results;
}

int GridResults::CellIndex(int machine, int workload, int policy, int seed) const {
  return cell_index_[static_cast<std::size_t>(
      ((machine * num_workloads_ + workload) * num_policies_ + policy) * num_seeds_ + seed)];
}

int GridResults::BaselineIndex(int machine, int workload, int seed) const {
  return baseline_index_[static_cast<std::size_t>(
      (machine * num_workloads_ + workload) * num_seeds_ + seed)];
}

const RunResult& GridResults::At(int machine, int workload, int policy, int seed) const {
  return results_[static_cast<std::size_t>(CellIndex(machine, workload, policy, seed))];
}

const RunResult& GridResults::Baseline(int machine, int workload, int seed) const {
  return results_[static_cast<std::size_t>(BaselineIndex(machine, workload, seed))];
}

PolicySummary GridResults::Summarize(int machine, int workload, int policy) const {
  PolicySummary summary;
  summary.kind = policies_[static_cast<std::size_t>(policy)];
  summary.min_improvement_pct = 1e30;
  summary.max_improvement_pct = -1e30;
  for (int seed = 0; seed < num_seeds_; ++seed) {
    const RunResult& baseline = Baseline(machine, workload, seed);
    const RunResult& run = At(machine, workload, policy, seed);
    const double improvement = ImprovementPct(baseline, run);
    summary.mean_improvement_pct += improvement;
    summary.min_improvement_pct = std::min(summary.min_improvement_pct, improvement);
    summary.max_improvement_pct = std::max(summary.max_improvement_pct, improvement);
    summary.lar_pct += run.LarPct();
    summary.imbalance_pct += run.ImbalancePct();
    summary.pamup_pct += run.PamupPct();
    summary.nhp += run.Nhp();
    summary.psp_pct += run.PspPct();
    summary.walk_l2_miss_frac += run.WalkL2MissFrac();
    summary.steady_fault_share_pct += run.SteadyMaxFaultSharePct();
    summary.max_fault_ms += run.MaxFaultTimeMs(clock_ghz_);
    summary.overhead_frac += run.total_cycles == 0
                                 ? 0.0
                                 : static_cast<double>(run.total_policy_overhead) /
                                       static_cast<double>(run.total_cycles);
    if (seed == 0) {
      summary.representative = run;
    }
  }
  const double inv = 1.0 / static_cast<double>(num_seeds_);
  summary.mean_improvement_pct *= inv;
  summary.lar_pct *= inv;
  summary.imbalance_pct *= inv;
  summary.pamup_pct *= inv;
  summary.nhp *= inv;
  summary.psp_pct *= inv;
  summary.walk_l2_miss_frac *= inv;
  summary.steady_fault_share_pct *= inv;
  summary.max_fault_ms *= inv;
  summary.overhead_frac *= inv;
  return summary;
}

std::vector<PolicySummary> GridResults::SummarizeAll(int machine, int workload) const {
  std::vector<PolicySummary> summaries;
  summaries.reserve(static_cast<std::size_t>(num_policies_));
  for (int policy = 0; policy < num_policies_; ++policy) {
    summaries.push_back(Summarize(machine, workload, policy));
  }
  return summaries;
}

namespace internal {

// The caller hands each GridResults its own slice of the executed results,
// so the recorded indices are relative to this grid's slice start.
void ExpandGrid(const ExperimentGrid& grid, std::vector<RunSpec>& cells, GridResults& out) {
  out.policies_ = grid.policies;
  out.num_machines_ = static_cast<int>(grid.machines.size());
  out.num_workloads_ = static_cast<int>(grid.workloads.size());
  out.num_policies_ = static_cast<int>(grid.policies.size());
  out.num_seeds_ = grid.num_seeds;
  out.clock_ghz_ = grid.sim.clock_ghz;
  out.cell_index_.assign(static_cast<std::size_t>(out.num_machines_) *
                             static_cast<std::size_t>(out.num_workloads_) *
                             static_cast<std::size_t>(out.num_policies_) *
                             static_cast<std::size_t>(out.num_seeds_),
                         -1);
  out.baseline_index_.assign(static_cast<std::size_t>(out.num_machines_) *
                                 static_cast<std::size_t>(out.num_workloads_) *
                                 static_cast<std::size_t>(out.num_seeds_),
                             -1);

  const std::size_t slice_start = cells.size();
  for (int m = 0; m < out.num_machines_; ++m) {
    for (int w = 0; w < out.num_workloads_; ++w) {
      const Topology& topo = grid.machines[static_cast<std::size_t>(m)];
      const WorkloadSpec workload =
          MakeWorkloadSpec(grid.workloads[static_cast<std::size_t>(w)], topo);
      for (int s = 0; s < out.num_seeds_; ++s) {
        SimConfig seeded = grid.sim;
        seeded.seed = CellSeed(grid.sim.seed, s);

        RunSpec baseline;
        baseline.topo = topo;
        baseline.workload = workload;
        baseline.policy = MakePolicyConfig(PolicyKind::kLinux4K);
        baseline.sim = seeded;
        const int baseline_cell = static_cast<int>(cells.size() - slice_start);
        cells.push_back(baseline);
        out.baseline_index_[static_cast<std::size_t>(
            (m * out.num_workloads_ + w) * out.num_seeds_ + s)] = baseline_cell;

        for (int p = 0; p < out.num_policies_; ++p) {
          const PolicyKind kind = grid.policies[static_cast<std::size_t>(p)];
          const std::size_t flat = static_cast<std::size_t>(
              ((m * out.num_workloads_ + w) * out.num_policies_ + p) * out.num_seeds_ + s);
          // Simulations are deterministic, so a Linux-4K column would be
          // bit-identical to the baseline cell: share it instead of rerunning.
          if (kind == PolicyKind::kLinux4K) {
            out.cell_index_[flat] = baseline_cell;
            continue;
          }
          RunSpec cell;
          cell.topo = topo;
          cell.workload = workload;
          cell.policy = MakePolicyConfig(kind);
          cell.sim = seeded;
          out.cell_index_[flat] = static_cast<int>(cells.size() - slice_start);
          cells.push_back(cell);
        }
      }
    }
  }
}

}  // namespace internal

std::vector<GridResults> RunGrids(const std::vector<ExperimentGrid>& grids,
                                  const ExperimentRunner& runner) {
  std::vector<GridResults> out(grids.size());
  std::vector<RunSpec> cells;
  std::vector<std::size_t> slice_starts;
  for (std::size_t g = 0; g < grids.size(); ++g) {
    slice_starts.push_back(cells.size());
    internal::ExpandGrid(grids[g], cells, out[g]);
  }
  const std::vector<RunResult> results = runner.Run(cells);
  for (std::size_t g = 0; g < grids.size(); ++g) {
    const std::size_t begin = slice_starts[g];
    const std::size_t end = g + 1 < grids.size() ? slice_starts[g + 1] : results.size();
    out[g].results_.assign(results.begin() + static_cast<std::ptrdiff_t>(begin),
                           results.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return out;
}

GridResults RunGrid(const ExperimentGrid& grid, const ExperimentRunner& runner) {
  std::vector<GridResults> results = RunGrids({grid}, runner);
  return std::move(results.front());
}

}  // namespace numalp
