#include "src/core/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "src/core/shard.h"

namespace numalp {

std::uint64_t CellSeed(std::uint64_t base_seed, int seed_index) {
  return base_seed + static_cast<std::uint64_t>(seed_index) * 7919;
}

int JobsFromEnv() { return static_cast<int>(PositiveEnvInt("NUMALP_JOBS")); }

ExperimentRunner::ExperimentRunner(int jobs) {
  if (jobs <= 0) {
    jobs = JobsFromEnv();
  }
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  jobs_ = std::max(1, jobs);
}

std::vector<RunResult> ExperimentRunner::Run(const std::vector<RunSpec>& cells) const {
  std::vector<RunResult> results(cells.size());
  auto run_cell = [&](std::size_t i) {
    Simulation simulation(cells[i].topo, cells[i].workload, cells[i].policy, cells[i].sim);
    results[i] = simulation.Run();
  };

  const int workers = std::min<int>(jobs_, static_cast<int>(cells.size()));
  // Register this runner's worker count with the oversubscription guard for
  // the duration of the grid: simulations created inside run_cell clamp
  // their intra-cell shard count to the host budget divided by the active
  // jobs (src/core/shard.h), so grid-level and intra-cell parallelism never
  // multiply into more threads than the host has.
  const ScopedActiveRunnerJobs jobs_guard(std::max(1, workers));
  if (workers <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      run_cell(i);
      if (observer_) {
        observer_(i, cells[i], results[i]);
      }
    }
    return results;
  }

  // Observer plumbing: workers mark completed cells and flush the contiguous
  // done-prefix under the mutex, so the observer sees cells in ascending
  // index order no matter which worker finished them. A cell's result is
  // published by its worker before it takes the mutex, so the flusher reads
  // it safely.
  std::mutex emit_mutex;
  std::vector<char> done(cells.size(), 0);
  std::size_t next_to_emit = 0;

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&]() {
      for (std::size_t i = next.fetch_add(1); i < cells.size(); i = next.fetch_add(1)) {
        run_cell(i);
        if (observer_) {
          const std::lock_guard<std::mutex> lock(emit_mutex);
          done[i] = 1;
          while (next_to_emit < cells.size() && done[next_to_emit]) {
            observer_(next_to_emit, cells[next_to_emit], results[next_to_emit]);
            ++next_to_emit;
          }
        }
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
  return results;
}

int GridResults::CellIndex(int machine, int workload, int policy, int seed) const {
  return cell_index_[static_cast<std::size_t>(
      ((machine * num_workloads_ + workload) * num_policies_ + policy) * num_seeds_ + seed)];
}

int GridResults::BaselineIndex(int machine, int workload, int seed) const {
  return baseline_index_[static_cast<std::size_t>(
      (machine * num_workloads_ + workload) * num_seeds_ + seed)];
}

const RunResult& GridResults::At(int machine, int workload, int policy, int seed) const {
  return results_[static_cast<std::size_t>(CellIndex(machine, workload, policy, seed))];
}

const RunResult& GridResults::Baseline(int machine, int workload, int seed) const {
  return results_[static_cast<std::size_t>(BaselineIndex(machine, workload, seed))];
}

PolicySummary GridResults::Summarize(int machine, int workload, int policy) const {
  PolicySummary summary;
  summary.kind = policies_[static_cast<std::size_t>(policy)];
  summary.min_improvement_pct = 1e30;
  summary.max_improvement_pct = -1e30;
  for (int seed = 0; seed < num_seeds_; ++seed) {
    const RunResult& baseline = Baseline(machine, workload, seed);
    const RunResult& run = At(machine, workload, policy, seed);
    const double improvement = ImprovementPct(baseline, run);
    summary.mean_improvement_pct += improvement;
    summary.min_improvement_pct = std::min(summary.min_improvement_pct, improvement);
    summary.max_improvement_pct = std::max(summary.max_improvement_pct, improvement);
    summary.lar_pct += run.LarPct();
    summary.imbalance_pct += run.ImbalancePct();
    summary.pamup_pct += run.PamupPct();
    summary.nhp += run.Nhp();
    summary.psp_pct += run.PspPct();
    summary.walk_l2_miss_frac += run.WalkL2MissFrac();
    summary.steady_fault_share_pct += run.SteadyMaxFaultSharePct();
    summary.max_fault_ms += run.MaxFaultTimeMs(clock_ghz_);
    summary.overhead_frac += run.total_cycles == 0
                                 ? 0.0
                                 : static_cast<double>(run.total_policy_overhead) /
                                       static_cast<double>(run.total_cycles);
    if (seed == 0) {
      summary.representative = run;
    }
  }
  const double inv = 1.0 / static_cast<double>(num_seeds_);
  summary.mean_improvement_pct *= inv;
  summary.lar_pct *= inv;
  summary.imbalance_pct *= inv;
  summary.pamup_pct *= inv;
  summary.nhp *= inv;
  summary.psp_pct *= inv;
  summary.walk_l2_miss_frac *= inv;
  summary.steady_fault_share_pct *= inv;
  summary.max_fault_ms *= inv;
  summary.overhead_frac *= inv;
  return summary;
}

std::vector<PolicySummary> GridResults::SummarizeAll(int machine, int workload) const {
  std::vector<PolicySummary> summaries;
  summaries.reserve(static_cast<std::size_t>(num_policies_));
  for (int policy = 0; policy < num_policies_; ++policy) {
    summaries.push_back(Summarize(machine, workload, policy));
  }
  return summaries;
}

namespace internal {

// The caller hands each GridResults its own slice of the executed results,
// so the recorded indices are relative to this grid's slice start.
void ExpandGrid(const ExperimentGrid& grid, std::vector<RunSpec>& cells, GridResults& out) {
  out.policies_ = grid.policies;
  out.num_machines_ = static_cast<int>(grid.machines.size());
  out.num_workloads_ = static_cast<int>(grid.workloads.size());
  out.num_policies_ = static_cast<int>(grid.policies.size());
  out.num_seeds_ = grid.num_seeds;
  out.clock_ghz_ = grid.sim.clock_ghz;
  out.cell_index_.assign(static_cast<std::size_t>(out.num_machines_) *
                             static_cast<std::size_t>(out.num_workloads_) *
                             static_cast<std::size_t>(out.num_policies_) *
                             static_cast<std::size_t>(out.num_seeds_),
                         -1);
  out.baseline_index_.assign(static_cast<std::size_t>(out.num_machines_) *
                                 static_cast<std::size_t>(out.num_workloads_) *
                                 static_cast<std::size_t>(out.num_seeds_),
                             -1);

  const std::size_t slice_start = cells.size();
  for (int m = 0; m < out.num_machines_; ++m) {
    for (int w = 0; w < out.num_workloads_; ++w) {
      const Topology& topo = grid.machines[static_cast<std::size_t>(m)];
      const WorkloadSpec workload =
          MakeWorkloadSpec(grid.workloads[static_cast<std::size_t>(w)], topo);
      for (int s = 0; s < out.num_seeds_; ++s) {
        SimConfig seeded = grid.sim;
        seeded.seed = CellSeed(grid.sim.seed, s);

        RunSpec baseline;
        baseline.topo = topo;
        baseline.workload = workload;
        baseline.policy = MakePolicyConfig(PolicyKind::kLinux4K);
        baseline.sim = seeded;
        const int baseline_cell = static_cast<int>(cells.size() - slice_start);
        cells.push_back(baseline);
        out.baseline_index_[static_cast<std::size_t>(
            (m * out.num_workloads_ + w) * out.num_seeds_ + s)] = baseline_cell;

        for (int p = 0; p < out.num_policies_; ++p) {
          const PolicyKind kind = grid.policies[static_cast<std::size_t>(p)];
          const std::size_t flat = static_cast<std::size_t>(
              ((m * out.num_workloads_ + w) * out.num_policies_ + p) * out.num_seeds_ + s);
          // Simulations are deterministic, so a Linux-4K column would be
          // bit-identical to the baseline cell: share it instead of rerunning.
          if (kind == PolicyKind::kLinux4K) {
            out.cell_index_[flat] = baseline_cell;
            continue;
          }
          RunSpec cell;
          cell.topo = topo;
          cell.workload = workload;
          cell.policy = MakePolicyConfig(kind);
          cell.sim = seeded;
          out.cell_index_[flat] = static_cast<int>(cells.size() - slice_start);
          cells.push_back(cell);
        }
      }
    }
  }
}

}  // namespace internal

std::vector<GridResults> RunGrids(const std::vector<ExperimentGrid>& grids,
                                  const ExperimentRunner& runner) {
  std::vector<GridResults> out(grids.size());
  std::vector<RunSpec> cells;
  std::vector<std::size_t> slice_starts;
  for (std::size_t g = 0; g < grids.size(); ++g) {
    slice_starts.push_back(cells.size());
    internal::ExpandGrid(grids[g], cells, out[g]);
  }
  const std::vector<RunResult> results = runner.Run(cells);
  for (std::size_t g = 0; g < grids.size(); ++g) {
    const std::size_t begin = slice_starts[g];
    const std::size_t end = g + 1 < grids.size() ? slice_starts[g + 1] : results.size();
    out[g].results_.assign(results.begin() + static_cast<std::ptrdiff_t>(begin),
                           results.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return out;
}

GridResults RunGrid(const ExperimentGrid& grid, const ExperimentRunner& runner) {
  std::vector<GridResults> results = RunGrids({grid}, runner);
  return std::move(results.front());
}

}  // namespace numalp
