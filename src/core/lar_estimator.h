// What-if LAR estimation from IBS samples (Section 3.2.1).
//
// Given the epoch's samples, estimate the local access ratio that would be
// obtained (a) right now, (b) after running Carrefour at the current page
// granularity, and (c) after splitting every large page to 4KB and then
// running Carrefour. Single-node pages are assumed migrated to their node
// (all accesses become local); multi-node pages are assumed interleaved to a
// random node (expected locality 1/num_nodes).
//
// Fidelity note: with realistic sampling rates most 4KB sub-pages of a large
// page carry zero or one sample, so estimate (c) systematically over-predicts
// the post-split LAR — exactly the mis-estimation failure the paper reports
// for SSCA (predicted 59%, actual 25%, Section 4.1) and the reason the
// conservative component exists.
#ifndef NUMALP_SRC_CORE_LAR_ESTIMATOR_H_
#define NUMALP_SRC_CORE_LAR_ESTIMATOR_H_

#include <span>

#include "src/hw/ibs.h"
#include "src/metrics/numa_metrics.h"
#include "src/vm/address_space.h"

namespace numalp {

struct LarEstimates {
  double current_pct = 0.0;
  double carrefour_pct = 0.0;        // migrate/interleave at current granularity
  double carrefour_split_pct = 0.0;  // same, after demoting every large page
  std::uint64_t dram_samples = 0;
};

// `mapping_pages` must be AggregateSamples(samples, as, kMapping); the 4KB
// view is computed internally.
LarEstimates EstimateLar(std::span<const IbsSample> samples,
                         const AddressSpace& address_space,
                         const PageAggMap& mapping_pages, int num_nodes);

// Expected LAR if every page in `pages` were placed by Carrefour's rule.
double EstimateCarrefourLarPct(const PageAggMap& pages, int num_nodes);

}  // namespace numalp

#endif  // NUMALP_SRC_CORE_LAR_ESTIMATOR_H_
