// What-if LAR estimation from IBS samples (Section 3.2.1).
//
// Given the epoch's samples, estimate the local access ratio that would be
// obtained (a) right now, (b) after running Carrefour at the current page
// granularity, and (c) after splitting every large page to 4KB and then
// running Carrefour. Single-node pages are assumed migrated to their node
// (all accesses become local); multi-node pages are assumed interleaved to a
// random node (expected locality 1/num_nodes).
//
// Fidelity note: with realistic sampling rates most 4KB sub-pages of a large
// page carry zero or one sample, so estimate (c) systematically over-predicts
// the post-split LAR — exactly the mis-estimation failure the paper reports
// for SSCA (predicted 59%, actual 25%, Section 4.1) and the reason the
// conservative component exists.
#ifndef NUMALP_SRC_CORE_LAR_ESTIMATOR_H_
#define NUMALP_SRC_CORE_LAR_ESTIMATOR_H_

#include <span>

#include "src/hw/ibs.h"
#include "src/metrics/numa_metrics.h"
#include "src/vm/address_space.h"

namespace numalp {

struct LarEstimates {
  double current_pct = 0.0;
  double carrefour_pct = 0.0;        // migrate/interleave at current granularity
  double carrefour_split_pct = 0.0;  // same, after demoting every large page
  std::uint64_t dram_samples = 0;
};

// `mapping_pages` must be AggregateSamples(samples, as, kMapping); the 4KB
// view is computed internally.
LarEstimates EstimateLar(std::span<const IbsSample> samples,
                         const AddressSpace& address_space,
                         const PageAggMap& mapping_pages, int num_nodes);

// Expected LAR if every page in `pages` were placed by Carrefour's rule.
double EstimateCarrefourLarPct(const PageAggMap& pages, int num_nodes);

// --- Post-split 4KB-thrash cost model (DESIGN.md Section 8) ----------------
//
// The reactive component's cost/benefit vocabulary. The inputs come from the
// simulator's own cost models — walk cycles from the PageWalker the engine
// charges per miss, the remote penalty from the interconnect model, wall and
// access counts from the epoch's measured counters — so the decision engine
// predicts with exactly the constants the simulation will charge.
struct LpCostInputs {
  std::uint64_t epoch_accesses = 0;       // app accesses this epoch, all cores
  std::uint64_t epoch_dram_accesses = 0;  // the DRAM-reaching subset
  Cycles epoch_wall = 0;                  // app portion of the epoch's wall
  Cycles walk_cycles_4k = 0;   // expected cost of one 4KB walk (PageWalker)
  // Extra cycles one remote DRAM access cost this epoch beyond a local one,
  // measured from the epoch's resolved latency tables (hop latency plus the
  // destination controller's queueing premium) — the value of one LAR point
  // under congestion is much larger than the bare hop.
  Cycles remote_dram_penalty = 0;
  Cycles split_op_cycles = 0;  // one-time kernel cost of one split
  // 4KB translations the machine's TLBs can hold in total (per-core unified
  // L2 entries x cores): the thrash a demotion causes depends on whether the
  // demoted footprint still fits this reach.
  std::uint64_t tlb_4k_reach_pages = 0;
};

// Saturating post-split TLB miss probability. `tlb_slot_demand` is the
// demoted footprint weighted by how many cores cache it (pages x sharing
// cores: a boundary window split between two threads occupies two TLBs, a
// globally-hot one occupies all of them), competing for `tlb_reach_pages`
// machine-wide slots; saturates at `cap` with the same half-saturation shape
// as the walker's PTE-miss curve. A few demoted windows still fit the TLBs
// and cost little; demoting dozens of widely-shared ones overwhelms them and
// every access walks.
double PostSplitTlbMissRate(double cap, std::uint64_t tlb_slot_demand,
                            std::uint64_t tlb_reach_pages);

// Predicted extra cycles per epoch after demoting a page that carries
// `access_share` of the sampled accesses: its accesses stop hitting the 2MB
// TLB arrays and miss at 4KB reach with probability `miss_rate`, each miss
// paying one 4KB walk. This is the steady-state 4KB-thrash regime the
// simulator enters after a split — modeled here with the same walker cost it
// charges there.
Cycles PredictedThrashCyclesPerEpoch(const LpCostInputs& inputs, double access_share,
                                     double miss_rate);

// Predicted cycles saved per epoch by `lar_gain_pct` points of LAR
// improvement: that fraction of DRAM accesses stops paying the remote
// interconnect penalty.
Cycles PredictedLarGainCyclesPerEpoch(const LpCostInputs& inputs, double lar_gain_pct);

}  // namespace numalp

#endif  // NUMALP_SRC_CORE_LAR_ESTIMATOR_H_
