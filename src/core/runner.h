// Parallel experiment execution: a declarative (machine x workload x policy
// x seed) grid evaluated on a thread pool. Every cell is one independent
// Simulation whose seed is a pure function of its grid coordinates, so a grid
// produces bit-identical results at any --jobs value (DESIGN.md Section 5).
#ifndef NUMALP_SRC_CORE_RUNNER_H_
#define NUMALP_SRC_CORE_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/config.h"
#include "src/core/simulation.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace numalp {

// One fully-resolved grid cell: a single Simulation run. The low-level unit
// for sweeps the declarative grid cannot express (threshold or sampling-rate
// ablations, explicit 1GB paging).
struct RunSpec {
  Topology topo = Topology::Tiny();
  WorkloadSpec workload;
  PolicyConfig policy;
  SimConfig sim;  // sim.seed is the cell's final, fully-derived seed
};

// Seed of the grid cell with seed axis index `seed_index`, derived from the
// grid's base seed. A pure function of the coordinates — never of execution
// order — which is what makes parallel grids deterministic.
std::uint64_t CellSeed(std::uint64_t base_seed, int seed_index);

// Parses the NUMALP_JOBS environment variable (0 when unset/invalid).
int JobsFromEnv();

// Observes cell completions during ExperimentRunner::Run. Invoked once per
// cell in ascending cell-index order — cell i+1 is reported only after cell
// i, regardless of the worker count or execution order — which is what lets
// the report sinks (src/report/) stream rows at the point of completion
// while staying byte-identical at any --jobs value (DESIGN.md Section 6).
using RunObserver =
    std::function<void(std::size_t index, const RunSpec& spec, const RunResult& result)>;

class ExperimentRunner {
 public:
  // jobs <= 0 selects NUMALP_JOBS from the environment, falling back to the
  // hardware concurrency.
  explicit ExperimentRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  // Registers the completion observer (replacing any previous one). A cell
  // is reported as soon as it and every lower-indexed cell have finished;
  // calls are serialized and never concurrent.
  void set_observer(RunObserver observer) { observer_ = std::move(observer); }

  // Resilience knobs (DESIGN.md Section 12). A cell that throws or overruns
  // its soft deadline is retried up to `retries` times; when the budget is
  // exhausted it is recorded as a stub RunResult (status "failed: <what>" or
  // "deadline") instead of killing the grid. deadline_ms <= 0 (the default)
  // disables the watchdog entirely — no watchdog thread is started.
  void set_cell_deadline_ms(std::int64_t deadline_ms) { cell_deadline_ms_ = deadline_ms; }
  void set_max_cell_retries(int retries) { max_cell_retries_ = retries < 0 ? 0 : retries; }
  std::int64_t cell_deadline_ms() const { return cell_deadline_ms_; }
  int max_cell_retries() const { return max_cell_retries_; }

  // Resume support: cells [0, skip) are treated as already recorded — they
  // are not executed and not reported to the observer (their slots in the
  // returned vector stay default-constructed). Because the observer contract
  // is ascending-index delivery, a crashed grid's recorded cells are always
  // exactly such a prefix.
  void set_skip_prefix(std::size_t skip) { skip_prefix_ = skip; }

  // Executes every cell and returns results positionally: results[i] belongs
  // to cells[i] regardless of which worker ran it or in which order.
  std::vector<RunResult> Run(const std::vector<RunSpec>& cells) const;

 private:
  int jobs_ = 1;
  RunObserver observer_;
  std::int64_t cell_deadline_ms_ = 0;
  int max_cell_retries_ = 1;
  std::size_t skip_prefix_ = 0;
};

// Seed-aggregated view of one (machine, workload, policy) column against the
// per-seed Linux-4K baseline — the numbers behind Figures 1-5 and Tables 1-3.
struct PolicySummary {
  PolicyKind kind = PolicyKind::kLinux4K;
  // Mean performance improvement over the Linux-4K baseline (per-seed
  // pairing, then averaged) — the y-axis of Figures 1-5.
  double mean_improvement_pct = 0.0;
  double min_improvement_pct = 0.0;
  double max_improvement_pct = 0.0;
  // Seed-averaged paper metrics.
  double lar_pct = 0.0;
  double imbalance_pct = 0.0;
  double pamup_pct = 0.0;
  double nhp = 0.0;
  double psp_pct = 0.0;
  double walk_l2_miss_frac = 0.0;
  double steady_fault_share_pct = 0.0;
  double max_fault_ms = 0.0;
  double overhead_frac = 0.0;  // policy overhead / total cycles
  // The full result of the first seed (for callers needing history).
  RunResult representative;
};

// Declarative experiment grid. Cells are the cross product of the four axes;
// a Linux-4K baseline is always run per (machine, workload, seed) so every
// cell can report improvement against its own seed's baseline.
struct ExperimentGrid {
  std::vector<Topology> machines;
  std::vector<BenchmarkId> workloads;
  std::vector<PolicyKind> policies;
  int num_seeds = 3;
  SimConfig sim;
};

// Results of a grid run, indexed by the grid's axis positions.
class GridResults;

namespace internal {
// Appends `grid`'s cells to `cells` and fills `out`'s index tables with
// positions relative to the start of the grid's slice.
void ExpandGrid(const ExperimentGrid& grid, std::vector<RunSpec>& cells, GridResults& out);
}  // namespace internal

class GridResults {
 public:
  const RunResult& At(int machine, int workload, int policy, int seed) const;
  const RunResult& Baseline(int machine, int workload, int seed) const;

  // Seed-aggregation identical to the historical serial ComparePolicies():
  // accumulate in ascending seed order, then divide — keeping even the
  // floating-point rounding reproducible.
  PolicySummary Summarize(int machine, int workload, int policy) const;
  std::vector<PolicySummary> SummarizeAll(int machine, int workload) const;

  int num_machines() const { return num_machines_; }
  int num_workloads() const { return num_workloads_; }
  int num_policies() const { return num_policies_; }
  int num_seeds() const { return num_seeds_; }

 private:
  friend std::vector<GridResults> RunGrids(const std::vector<ExperimentGrid>& grids,
                                           const ExperimentRunner& runner);
  friend void internal::ExpandGrid(const ExperimentGrid& grid, std::vector<RunSpec>& cells,
                                   GridResults& out);

  int CellIndex(int machine, int workload, int policy, int seed) const;
  int BaselineIndex(int machine, int workload, int seed) const;

  std::vector<PolicyKind> policies_;
  std::vector<int> cell_index_;      // [m][w][p][s] -> position in results_
  std::vector<int> baseline_index_;  // [m][w][s] -> position in results_
  std::vector<RunResult> results_;
  int num_machines_ = 0;
  int num_workloads_ = 0;
  int num_policies_ = 0;
  int num_seeds_ = 0;
  double clock_ghz_ = 2.0;
};

// Expands `grid` into cells (sharing each seed's baseline with any requested
// Linux-4K column), executes them on `runner`, and indexes the results.
GridResults RunGrid(const ExperimentGrid& grid,
                    const ExperimentRunner& runner = ExperimentRunner());

// Runs several grids' cells on one shared pool — for tables that mix
// (machine, workload) pairs a single cross product cannot express — and
// returns one GridResults per input grid.
std::vector<GridResults> RunGrids(const std::vector<ExperimentGrid>& grids,
                                  const ExperimentRunner& runner = ExperimentRunner());

}  // namespace numalp

#endif  // NUMALP_SRC_CORE_RUNNER_H_
