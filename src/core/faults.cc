#include "src/core/faults.h"

#include <algorithm>

#include "src/mem/phys_mem.h"

namespace numalp {

namespace {

// Frame pinned inside a fragmented 2MB chunk: offset 256 (the chunk's
// midpoint) so neither half of the order-9 block can coalesce.
constexpr std::uint64_t kPinOffset = kFramesPer2M / 2;

// Backoff schedule for failed promotions: 4 epochs, doubling to a cap.
constexpr int kBackoffBaseEpochs = 4;
constexpr int kBackoffCapEpochs = 32;

// Pressure episodes hoard order-9 blocks; bounded so an episode stresses a
// node without starving the workload outright.
constexpr int kHoardOrder = 9;  // 2MB blocks
constexpr int kOrder1G = 18;    // order of a 1GB page
constexpr std::size_t kHoardMaxBlocks = 128;
constexpr int kPressureMinEpochs = 3;
constexpr std::uint64_t kPressureExtraEpochs = 8;

// Churn rotates pins every period: some pins release, a few new chunks
// get broken.
constexpr int kChurnPeriodEpochs = 16;
constexpr double kChurnReleaseP = 0.25;
constexpr int kChurnNewPinsPerNode = 4;

double RateOrDefault(double pct_override, double profile_default) {
  return pct_override < 0.0 ? profile_default : pct_override / 100.0;
}

}  // namespace

std::string_view NameOf(FaultProfile profile) {
  switch (profile) {
    case FaultProfile::kOff:
      return "off";
    case FaultProfile::kFrag:
      return "frag";
    case FaultProfile::kPressure:
      return "pressure";
    case FaultProfile::kChurn:
      return "churn";
  }
  return "?";
}

std::optional<FaultProfile> ParseFaultProfile(std::string_view name) {
  if (name == "off") {
    return FaultProfile::kOff;
  }
  if (name == "frag") {
    return FaultProfile::kFrag;
  }
  if (name == "pressure") {
    return FaultProfile::kPressure;
  }
  if (name == "churn") {
    return FaultProfile::kChurn;
  }
  return std::nullopt;
}

FaultPlan::FaultPlan(const FaultConfig& config, std::uint64_t seed)
    : profile_(config.profile), rng_(seed ^ 0xFA17ull) {
  // Profile defaults; explicit rate overrides (in percent) win.
  switch (profile_) {
    case FaultProfile::kOff:
      break;
    case FaultProfile::kFrag:
      // Pin enough chunks that order-9 contiguity is scarce without being
      // absent: huge pages still allocate while free memory lasts, but the
      // contiguity a 2MB migration needs on its target node mostly isn't
      // there (large_migrate_fail_p_), and allocation storms start failing
      // organically once the unpinned chunks run out.
      pin_rate_ = 0.35;
      alloc_fail_p_ = RateOrDefault(config.alloc_fail_pct, 0.0);
      migrate_fail_p_ = RateOrDefault(config.migrate_fail_pct, 0.05);
      large_migrate_fail_p_ = RateOrDefault(config.large_migrate_fail_pct, 0.70);
      pressure_enter_p_ = RateOrDefault(config.pressure_pct, 0.0);
      truncate_p_ = 0.10;
      break;
    case FaultProfile::kPressure:
      alloc_fail_p_ = RateOrDefault(config.alloc_fail_pct, 0.02);
      migrate_fail_p_ = RateOrDefault(config.migrate_fail_pct, 0.02);
      large_migrate_fail_p_ = RateOrDefault(config.large_migrate_fail_pct, 0.10);
      pressure_enter_p_ = RateOrDefault(config.pressure_pct, 0.05);
      truncate_p_ = 0.15;
      break;
    case FaultProfile::kChurn:
      pin_rate_ = 0.50;
      churn_ = true;
      alloc_fail_p_ = RateOrDefault(config.alloc_fail_pct, 0.05);
      migrate_fail_p_ = RateOrDefault(config.migrate_fail_pct, 0.10);
      large_migrate_fail_p_ = RateOrDefault(config.large_migrate_fail_pct, 0.60);
      pressure_enter_p_ = RateOrDefault(config.pressure_pct, 0.0);
      truncate_p_ = 0.25;
      break;
  }
}

void FaultPlan::EnsureNodes(int num_nodes) {
  const auto n = static_cast<std::size_t>(num_nodes);
  if (pins_.size() < n) {
    pins_.resize(n);
    hoard_.resize(n);
    pressure_until_.resize(n, -1);
  }
}

void FaultPlan::Prepare(PhysicalMemory& phys) {
  EnsureNodes(phys.num_nodes());
  if (pin_rate_ <= 0.0) {
    return;
  }
  for (int node = 0; node < phys.num_nodes(); ++node) {
    BuddyAllocator& alloc = phys.mutable_node_allocator(node);
    const Pfn base = alloc.base_pfn();
    const std::uint64_t chunks = alloc.total_frames() / kFramesPer2M;
    for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
      if (!rng_.Bernoulli(pin_rate_)) {
        continue;
      }
      const Pfn pin = base + chunk * kFramesPer2M + kPinOffset;
      if (alloc.AllocSpecific(pin, 0)) {
        pins_[static_cast<std::size_t>(node)].push_back(pin);
      }
    }
  }
}

void FaultPlan::RotatePins(PhysicalMemory& phys) {
  for (int node = 0; node < phys.num_nodes(); ++node) {
    BuddyAllocator& alloc = phys.mutable_node_allocator(node);
    std::vector<Pfn>& pins = pins_[static_cast<std::size_t>(node)];
    std::vector<Pfn> kept;
    kept.reserve(pins.size());
    for (const Pfn pin : pins) {
      if (rng_.Bernoulli(kChurnReleaseP)) {
        alloc.Free(pin, 0);
      } else {
        kept.push_back(pin);
      }
    }
    pins = std::move(kept);
    const std::uint64_t chunks = alloc.total_frames() / kFramesPer2M;
    for (int i = 0; i < kChurnNewPinsPerNode && chunks > 0; ++i) {
      const std::uint64_t chunk = rng_.Uniform(chunks);
      const Pfn pin = alloc.base_pfn() + chunk * kFramesPer2M + kPinOffset;
      if (alloc.AllocSpecific(pin, 0)) {
        pins.push_back(pin);
      }
    }
  }
}

void FaultPlan::BeginEpoch(int epoch, PhysicalMemory& phys) {
  EnsureNodes(phys.num_nodes());

  // Age promotion backoffs (iteration order is FlatMap insertion order —
  // deterministic and stdlib-independent).
  std::vector<Addr> expired;
  for (auto& item : backoff_remaining_) {
    if (--item.second <= 0) {
      expired.push_back(item.first);
    }
  }
  for (const Addr base : expired) {
    backoff_remaining_.Erase(base);
  }

  if (churn_ && epoch > 0 && epoch % kChurnPeriodEpochs == 0) {
    RotatePins(phys);
  }

  for (int node = 0; node < phys.num_nodes(); ++node) {
    const auto n = static_cast<std::size_t>(node);
    // End an episode whose time is up: release the hoard.
    if (pressure_until_[n] >= 0 && epoch >= pressure_until_[n]) {
      BuddyAllocator& alloc = phys.mutable_node_allocator(node);
      for (const Pfn pfn : hoard_[n]) {
        alloc.Free(pfn, kHoardOrder);
      }
      hoard_[n].clear();
      pressure_until_[n] = -1;
    }
    // Maybe start one: hoard up to a quarter of the node's free memory in
    // 2MB blocks, so huge allocations and migrations toward this node fail
    // from real allocator state for a few epochs.
    if (pressure_until_[n] < 0 && pressure_enter_p_ > 0.0 &&
        rng_.Bernoulli(pressure_enter_p_)) {
      BuddyAllocator& alloc = phys.mutable_node_allocator(node);
      const std::uint64_t budget_frames = alloc.free_frames() / 4;
      std::size_t max_blocks = static_cast<std::size_t>(
          budget_frames >> kHoardOrder);
      max_blocks = std::min(max_blocks, kHoardMaxBlocks);
      for (std::size_t i = 0; i < max_blocks; ++i) {
        const std::optional<Pfn> pfn = alloc.Alloc(kHoardOrder);
        if (!pfn) {
          break;
        }
        hoard_[n].push_back(*pfn);
      }
      if (!hoard_[n].empty()) {
        pressure_until_[n] =
            epoch + kPressureMinEpochs +
            static_cast<int>(rng_.Uniform(kPressureExtraEpochs));
      }
    }
    if (pressure_until_[n] >= 0) {
      ++counters_.pressure_epochs;
    }
  }
}

bool FaultPlan::NodeUnderPressure(int node) const {
  const auto n = static_cast<std::size_t>(node);
  return n < pressure_until_.size() && pressure_until_[n] >= 0;
}

bool FaultPlan::FailLargeAlloc(int node, int order) {
  double p = alloc_fail_p_;
  if (order >= kOrder1G) {
    // Order-18 contiguity is categorically scarcer than order-9: scale the
    // background rate (plain multiply — no libm, identical on every
    // toolchain) and cap it. The order-9 path is bit-for-bit the
    // pre-1GB-awareness code.
    p = std::min(1.0, p * 8.0);
  }
  if (NodeUnderPressure(node)) {
    p += order >= kOrder1G ? 0.85 : 0.50;
  }
  if (rng_.Bernoulli(p)) {
    ++counters_.alloc_failures;
    return true;
  }
  return false;
}

bool FaultPlan::FailMigration(int to_node, int order) {
  double p = order >= kHoardOrder ? large_migrate_fail_p_ : migrate_fail_p_;
  if (order >= kOrder1G) {
    // A 1GB move needs an order-18 run on the target node on top of the
    // 2MB-class failure modes.
    p = std::min(1.0, p + 0.25);
  }
  if (NodeUnderPressure(to_node)) {
    p += 0.35;
  }
  if (rng_.Bernoulli(p)) {
    ++counters_.migration_failures;
    return true;
  }
  return false;
}

bool FaultPlan::FailSplit() {
  // Demotion only fails under fragmentation-style profiles (the split's
  // page-table allocation failing); modeled with a small fixed rate.
  const double p = (profile_ == FaultProfile::kFrag || churn_) ? 0.02 : 0.0;
  if (rng_.Bernoulli(p)) {
    ++counters_.split_failures;
    return true;
  }
  return false;
}

std::size_t FaultPlan::PlanBudget(std::size_t planned) {
  if (planned == 0 || truncate_p_ <= 0.0 || !rng_.Bernoulli(truncate_p_)) {
    return planned;
  }
  ++counters_.truncated_plans;
  // Keep at least one migration so truncation models partial completion,
  // not silent plan loss.
  return 1 + static_cast<std::size_t>(rng_.Uniform(planned));
}

void FaultPlan::ArmPromoteBackoff(Addr window_base) {
  int& len = backoff_len_[window_base];
  len = len == 0 ? kBackoffBaseEpochs : std::min(len * 2, kBackoffCapEpochs);
  backoff_remaining_[window_base] = len;
  ++counters_.promote_backoffs;
}

bool FaultPlan::InPromoteBackoff(Addr window_base) const {
  return backoff_remaining_.Contains(window_base);
}

}  // namespace numalp
