#include "src/core/experiment.h"

#include <algorithm>

namespace numalp {

std::vector<PolicySummary> ComparePolicies(const Topology& topo, BenchmarkId bench,
                                           const std::vector<PolicyKind>& policies,
                                           const SimConfig& sim, int num_seeds) {
  std::vector<PolicySummary> summaries(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    summaries[p].kind = policies[p];
    summaries[p].min_improvement_pct = 1e30;
    summaries[p].max_improvement_pct = -1e30;
  }
  for (int seed_index = 0; seed_index < num_seeds; ++seed_index) {
    SimConfig seeded = sim;
    seeded.seed = sim.seed + static_cast<std::uint64_t>(seed_index) * 7919;
    const RunResult baseline = RunBenchmark(topo, bench, PolicyKind::kLinux4K, seeded);
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const RunResult run = policies[p] == PolicyKind::kLinux4K
                                ? baseline
                                : RunBenchmark(topo, bench, policies[p], seeded);
      PolicySummary& summary = summaries[p];
      const double improvement = ImprovementPct(baseline, run);
      summary.mean_improvement_pct += improvement;
      summary.min_improvement_pct = std::min(summary.min_improvement_pct, improvement);
      summary.max_improvement_pct = std::max(summary.max_improvement_pct, improvement);
      summary.lar_pct += run.LarPct();
      summary.imbalance_pct += run.ImbalancePct();
      summary.pamup_pct += run.PamupPct();
      summary.nhp += run.Nhp();
      summary.psp_pct += run.PspPct();
      summary.walk_l2_miss_frac += run.WalkL2MissFrac();
      summary.steady_fault_share_pct += run.SteadyMaxFaultSharePct();
      summary.max_fault_ms += run.MaxFaultTimeMs(sim.clock_ghz);
      summary.overhead_frac += run.total_cycles == 0
                                   ? 0.0
                                   : static_cast<double>(run.total_policy_overhead) /
                                         static_cast<double>(run.total_cycles);
      if (seed_index == 0) {
        summary.representative = run;
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(num_seeds);
  for (PolicySummary& summary : summaries) {
    summary.mean_improvement_pct *= inv;
    summary.lar_pct *= inv;
    summary.imbalance_pct *= inv;
    summary.pamup_pct *= inv;
    summary.nhp *= inv;
    summary.psp_pct *= inv;
    summary.walk_l2_miss_frac *= inv;
    summary.steady_fault_share_pct *= inv;
    summary.max_fault_ms *= inv;
    summary.overhead_frac *= inv;
  }
  return summaries;
}

}  // namespace numalp
