#include "src/core/experiment.h"

namespace numalp {

std::vector<PolicySummary> ComparePolicies(const Topology& topo, BenchmarkId bench,
                                           const std::vector<PolicyKind>& policies,
                                           const SimConfig& sim, int num_seeds,
                                           const ExperimentRunner& runner) {
  ExperimentGrid grid;
  grid.machines = {topo};
  grid.workloads = {bench};
  grid.policies = policies;
  grid.num_seeds = num_seeds;
  grid.sim = sim;
  return RunGrid(grid, runner).SummarizeAll(0, 0);
}

}  // namespace numalp
