// Experiment harness shared by the bench binaries: runs a benchmark under a
// set of policies across several seeds (first-touch races and interleave
// targets are stochastic, exactly like reruns on real hardware) and reports
// seed-averaged improvements plus representative metrics.
#ifndef NUMALP_SRC_CORE_EXPERIMENT_H_
#define NUMALP_SRC_CORE_EXPERIMENT_H_

#include <vector>

#include "src/core/config.h"
#include "src/core/simulation.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace numalp {

struct PolicySummary {
  PolicyKind kind = PolicyKind::kLinux4K;
  // Mean performance improvement over the Linux-4K baseline (per-seed
  // pairing, then averaged) — the y-axis of Figures 1-5.
  double mean_improvement_pct = 0.0;
  double min_improvement_pct = 0.0;
  double max_improvement_pct = 0.0;
  // Seed-averaged paper metrics.
  double lar_pct = 0.0;
  double imbalance_pct = 0.0;
  double pamup_pct = 0.0;
  double nhp = 0.0;
  double psp_pct = 0.0;
  double walk_l2_miss_frac = 0.0;
  double steady_fault_share_pct = 0.0;
  double max_fault_ms = 0.0;
  double overhead_frac = 0.0;  // policy overhead / total cycles
  // The full result of the first seed (for callers needing history).
  RunResult representative;
};

// Runs `bench` on `topo` under each policy (plus the Linux-4K baseline) for
// `num_seeds` seeds and summarizes. The baseline itself can be requested as
// one of `policies` (its improvement is 0 by construction only for itself).
std::vector<PolicySummary> ComparePolicies(const Topology& topo, BenchmarkId bench,
                                           const std::vector<PolicyKind>& policies,
                                           const SimConfig& sim, int num_seeds = 3);

}  // namespace numalp

#endif  // NUMALP_SRC_CORE_EXPERIMENT_H_
