// Experiment harness shared by the bench binaries: runs a benchmark under a
// set of policies across several seeds (first-touch races and interleave
// targets are stochastic, exactly like reruns on real hardware) and reports
// seed-averaged improvements plus representative metrics.
//
// This is a convenience wrapper over the grid subsystem in src/core/runner.h;
// benches needing more than one (machine, benchmark) pair should declare an
// ExperimentGrid directly so the whole sweep shares one thread pool.
#ifndef NUMALP_SRC_CORE_EXPERIMENT_H_
#define NUMALP_SRC_CORE_EXPERIMENT_H_

#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/core/simulation.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace numalp {

// Runs `bench` on `topo` under each policy (plus the Linux-4K baseline) for
// `num_seeds` seeds and summarizes. The baseline itself can be requested as
// one of `policies` (its improvement is 0 by construction only for itself).
// Cells execute in parallel on `runner`'s thread pool.
std::vector<PolicySummary> ComparePolicies(const Topology& topo, BenchmarkId bench,
                                           const std::vector<PolicyKind>& policies,
                                           const SimConfig& sim, int num_seeds = 3,
                                           const ExperimentRunner& runner = ExperimentRunner());

}  // namespace numalp

#endif  // NUMALP_SRC_CORE_EXPERIMENT_H_
