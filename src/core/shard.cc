#include "src/core/shard.h"

#include <algorithm>
#include <atomic>

namespace numalp {

namespace {
std::atomic<int> g_active_runner_jobs{0};
}  // namespace

int ActiveRunnerJobs() { return g_active_runner_jobs.load(std::memory_order_relaxed); }

ScopedActiveRunnerJobs::ScopedActiveRunnerJobs(int jobs) : jobs_(std::max(0, jobs)) {
  g_active_runner_jobs.fetch_add(jobs_, std::memory_order_relaxed);
}

ScopedActiveRunnerJobs::~ScopedActiveRunnerJobs() {
  g_active_runner_jobs.fetch_sub(jobs_, std::memory_order_relaxed);
}

int ResolveShardCount(int requested, bool force, int num_cores) {
  int shards = std::min(std::max(1, requested), std::max(1, num_cores));
  if (force || shards <= 1) {
    return shards;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const int host = hw > 0 ? static_cast<int>(hw) : 1;
  const int jobs = std::max(1, ActiveRunnerJobs());
  return std::min(shards, std::max(1, host / jobs));
}

ShardPool::ShardPool(int shards) : shards_(std::max(1, shards)) {
  threads_.reserve(static_cast<std::size_t>(shards_ - 1));
  for (int w = 1; w < shards_; ++w) {
    threads_.emplace_back([this, w]() { WorkerLoop(w); });
  }
}

ShardPool::~ShardPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ShardPool::Run(const std::function<void(int)>& fn) {
  if (shards_ <= 1) {
    fn(0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    outstanding_ = shards_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this]() { return outstanding_ == 0; });
  job_ = nullptr;
}

void ShardPool::WorkerLoop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [this, seen]() { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
      job = job_;
    }
    (*job)(worker);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --outstanding_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace numalp
