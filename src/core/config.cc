#include "src/core/config.h"

namespace numalp {

std::string_view NameOf(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLinux4K:
      return "Linux-4K";
    case PolicyKind::kThp:
      return "THP";
    case PolicyKind::kCarrefour2M:
      return "Carrefour-2M";
    case PolicyKind::kReactiveOnly:
      return "Reactive";
    case PolicyKind::kConservativeOnly:
      return "Conservative";
    case PolicyKind::kCarrefourLp:
      return "Carrefour-LP";
  }
  return "?";
}

PolicyConfig MakePolicyConfig(PolicyKind kind) {
  PolicyConfig config;
  config.kind = kind;
  switch (kind) {
    case PolicyKind::kLinux4K:
      break;
    case PolicyKind::kThp:
      config.initial_thp_alloc = true;
      config.initial_thp_promote = true;
      break;
    case PolicyKind::kCarrefour2M:
      config.initial_thp_alloc = true;
      config.initial_thp_promote = true;
      config.use_carrefour = true;
      break;
    case PolicyKind::kReactiveOnly:
      config.initial_thp_alloc = true;
      config.initial_thp_promote = true;
      config.use_carrefour = true;
      config.use_reactive = true;
      break;
    case PolicyKind::kConservativeOnly:
      // "The original Carrefour runtime (working on 4kB pages) together with
      // the conservative component" (Section 4.1).
      config.use_carrefour = true;
      config.use_conservative = true;
      break;
    case PolicyKind::kCarrefourLp:
      // "It is more practical and involves less overhead to enable large
      // pages in the beginning and disable them later" (Section 3.2).
      config.initial_thp_alloc = true;
      config.initial_thp_promote = true;
      config.use_carrefour = true;
      config.use_reactive = true;
      config.use_conservative = true;
      break;
  }
  return config;
}

}  // namespace numalp
