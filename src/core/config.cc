#include "src/core/config.h"

#include <cstdlib>

namespace numalp {

std::string_view NameOf(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLinux4K:
      return "Linux-4K";
    case PolicyKind::kThp:
      return "THP";
    case PolicyKind::kCarrefour2M:
      return "Carrefour-2M";
    case PolicyKind::kReactiveOnly:
      return "Reactive";
    case PolicyKind::kConservativeOnly:
      return "Conservative";
    case PolicyKind::kCarrefourLp:
      return "Carrefour-LP";
  }
  return "?";
}

std::string_view NameOf(ProfileMode mode) {
  switch (mode) {
    case ProfileMode::kExact:
      return "exact";
    case ProfileMode::kSketch:
      return "sketch";
  }
  return "?";
}

bool ParseProfileMode(std::string_view text, ProfileMode* out) {
  if (text == "exact") {
    *out = ProfileMode::kExact;
    return true;
  }
  if (text == "sketch") {
    *out = ProfileMode::kSketch;
    return true;
  }
  return false;
}

PolicyConfig MakePolicyConfig(PolicyKind kind) {
  PolicyConfig config;
  config.kind = kind;
  switch (kind) {
    case PolicyKind::kLinux4K:
      break;
    case PolicyKind::kThp:
      config.initial_thp_alloc = true;
      config.initial_thp_promote = true;
      break;
    case PolicyKind::kCarrefour2M:
      config.initial_thp_alloc = true;
      config.initial_thp_promote = true;
      config.use_carrefour = true;
      break;
    case PolicyKind::kReactiveOnly:
      config.initial_thp_alloc = true;
      config.initial_thp_promote = true;
      config.use_carrefour = true;
      config.use_reactive = true;
      break;
    case PolicyKind::kConservativeOnly:
      // "The original Carrefour runtime (working on 4kB pages) together with
      // the conservative component" (Section 4.1).
      config.use_carrefour = true;
      config.use_conservative = true;
      break;
    case PolicyKind::kCarrefourLp:
      // "It is more practical and involves less overhead to enable large
      // pages in the beginning and disable them later" (Section 3.2).
      config.initial_thp_alloc = true;
      config.initial_thp_promote = true;
      config.use_carrefour = true;
      config.use_reactive = true;
      config.use_conservative = true;
      break;
  }
  return config;
}

long long PositiveEnvInt(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return 0;
  }
  const long long parsed = std::atoll(value);
  return parsed > 0 ? parsed : 0;
}

SimConfig WithEnvOverrides(SimConfig sim) {
  if (const long long epochs = PositiveEnvInt("NUMALP_MAX_EPOCHS"); epochs > 0) {
    sim.max_epochs = static_cast<int>(epochs);
  }
  if (const long long accesses = PositiveEnvInt("NUMALP_ACCESSES_PER_EPOCH"); accesses > 0) {
    sim.accesses_per_thread_per_epoch = static_cast<std::uint64_t>(accesses);
  }
  if (const long long seed = PositiveEnvInt("NUMALP_SEED"); seed > 0) {
    sim.seed = static_cast<std::uint64_t>(seed);
  }
  if (PositiveEnvInt("NUMALP_REFERENCE_PIPELINE") > 0) {
    sim.reference_pipeline = true;
  }
  if (const long long shards = PositiveEnvInt("NUMALP_SHARDS"); shards > 0) {
    sim.shards = static_cast<int>(shards);
  }
  if (PositiveEnvInt("NUMALP_SHARDS_FORCE") > 0) {
    sim.shards_force = true;
  }
  if (const char* mode = std::getenv("NUMALP_PROFILE_MODE"); mode != nullptr) {
    ParseProfileMode(mode, &sim.profile_mode);
  }
  if (const long long threshold = PositiveEnvInt("NUMALP_PROFILE_THRESHOLD"); threshold > 0) {
    sim.profile_sketch.admit_threshold = static_cast<std::uint64_t>(threshold);
  }
  if (const long long capacity = PositiveEnvInt("NUMALP_PROFILE_FILTER_CAPACITY");
      capacity > 0) {
    sim.profile_sketch.filter_capacity = static_cast<std::uint64_t>(capacity);
  }
  if (const long long width = PositiveEnvInt("NUMALP_PROFILE_SKETCH_WIDTH"); width > 0) {
    sim.profile_sketch.sketch_width = static_cast<std::uint32_t>(width);
  }
  if (const char* profile = std::getenv("NUMALP_FAULT_PROFILE"); profile != nullptr) {
    if (const auto parsed = ParseFaultProfile(profile)) {
      sim.faults.profile = *parsed;
    }
  }
  // Rate overrides are percentages and may legitimately be 0, so presence is
  // checked directly instead of through PositiveEnvInt.
  if (const char* pct = std::getenv("NUMALP_FAULT_ALLOC_PCT"); pct != nullptr) {
    sim.faults.alloc_fail_pct = std::strtod(pct, nullptr);
  }
  if (const char* pct = std::getenv("NUMALP_FAULT_MIGRATE_PCT"); pct != nullptr) {
    sim.faults.migrate_fail_pct = std::strtod(pct, nullptr);
  }
  if (const char* pct = std::getenv("NUMALP_FAULT_LARGE_MIGRATE_PCT"); pct != nullptr) {
    sim.faults.large_migrate_fail_pct = std::strtod(pct, nullptr);
  }
  if (const char* pct = std::getenv("NUMALP_FAULT_PRESSURE_PCT"); pct != nullptr) {
    sim.faults.pressure_pct = std::strtod(pct, nullptr);
  }
  return sim;
}

}  // namespace numalp
