// Carrefour-LP: large-page extensions to Carrefour (Algorithm 1), with the
// reactive component grown from the paper's literal transcription into a
// cost-aware decision engine (DESIGN.md Section 8).
//
// Reactive component (lines 10-19 of Algorithm 1, plus the cost model): from
// IBS samples, estimate the LAR that Carrefour alone would deliver versus
// Carrefour plus demoting every large page. Migration-only gains > 15 points
// suppress splitting; split gains > 5 points request it. On top of the
// thresholds, three model components (each independently switchable via
// LpModelConfig):
//   * hysteresis — the split-gain condition must persist for several epochs
//     before demotion engages, and stay absent before it disengages;
//   * a cost budget — engagement requires the predicted LAR-gain cycles to
//     beat the predicted post-split 4KB-thrash cycles, and each epoch's
//     demotions are bounded by a cycle budget priced by the same model;
//   * re-promotion — 2MB windows demoted during a transient return to large
//     pages once the mode disengages.
// Hot pages (>6% of accesses) are always split and their pieces interleaved —
// migration cannot balance fewer hot pages than nodes.
//
// Conservative component (lines 4-9): re-enable 2MB allocation (and
// promotion) when the counters show TLB pressure (>5% of L2 misses are PTE
// fetches) or page-fault overhead (>5% of any core's time).
#ifndef NUMALP_SRC_CORE_CARREFOUR_LP_H_
#define NUMALP_SRC_CORE_CARREFOUR_LP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/flat_map.h"
#include "src/core/config.h"
#include "src/core/lar_estimator.h"
#include "src/metrics/numa_metrics.h"
#include "src/metrics/sample_window.h"
#include "src/vm/thp.h"

namespace numalp {

struct LpObservation {
  double walk_l2_miss_frac = 0.0;
  double max_fault_time_share = 0.0;
  LarEstimates lar;
  const PageAggMap* mapping_pages = nullptr;
  int num_nodes = 0;  // for the hot-page interleave-vs-localize decision
  // The engine's sample window, for piece-granularity queries (the hot-page
  // discrimination reads per-4KB locality; null falls back to the
  // distinct-node heuristic).
  const SampleWindow* window = nullptr;
  // Cost-model inputs, filled by the simulator from its own cost models and
  // the epoch's measured counters. All-zero (the default) bypasses the cost
  // model: threshold-only decisions, flat demotion cap.
  LpCostInputs costs;
  // Realized-gain discount under fault injection: the measured fraction of
  // recently planned Carrefour moves that actually executed. The
  // migration-gain exit (Algorithm 1 line 10) scales its predicted gain by
  // this — when moves mostly fail, "Carrefour alone will fix it" stops
  // suppressing the split path. Exactly 1.0 (the default, and always the
  // value with faults off) leaves every estimate bit-identical.
  double migration_success_rate = 1.0;
};

struct LpDecision {
  // Shared large pages to demote (line 16).
  std::vector<std::pair<Addr, PageSize>> split_shared;
  // Hot large pages to demote and interleave (line 19).
  std::vector<std::pair<Addr, PageSize>> split_hot;
  // 2MB windows to consolidate back to a huge page: previously demoted
  // windows whose split-mode transient has subsided.
  std::vector<Addr> repromote_windows;
  bool split_pages_flag = false;
  bool alloc_enabled_after = false;
  bool promote_enabled_after = false;
};

// Introspection for tests and the ablation bench.
struct LpEngineStats {
  int on_streak = 0;   // consecutive epochs the split-gain condition held
  int off_streak = 0;  // consecutive epochs it did not (while engaged)
  std::uint64_t cost_vetoes = 0;        // engagements blocked by the cost model
  std::uint64_t budget_exhaustions = 0; // epochs where the budget cut demotion short
  std::uint64_t expired_mig_promises = 0;  // migration-gain exits that never delivered
  std::uint64_t failed_engagements = 0;    // split experiments reviewed and rolled back
  std::size_t pending_repromotions = 0; // demoted windows awaiting re-promotion
};

class CarrefourLp {
 public:
  // Mutates `thp` exactly like the kernel implementation toggles THP sysfs
  // state. Which components run comes from `config`; the reactive model's
  // shape comes from `config.lp_model`.
  CarrefourLp(const PolicyConfig& config, ThpState& thp);

  LpDecision Step(const LpObservation& observation);

  bool split_pages_flag() const { return split_pages_; }
  const LpEngineStats& stats() const { return stats_; }

 private:
  // What this epoch's estimates ask for, before hysteresis.
  enum class SplitDesire : std::uint8_t {
    kOff,      // migration-only gain clears its bar: do not split
    kOn,       // split gain clears its bar (and the cost model approves)
    kNeutral,  // neither condition fires
  };

  SplitDesire EvaluateDesire(const LpObservation& observation,
                             const std::vector<std::pair<Addr, const PageAgg*>>& shared,
                             std::uint64_t total_samples);
  void UpdateSplitMode(SplitDesire desire, double current_lar_pct);

  PolicyConfig config_;
  ThpState& thp_;
  bool split_pages_ = false;
  LpEngineStats stats_;
  // 2MB windows demoted by the reactive component (split_shared), kept for
  // the re-promotion path; the value is the window's TLB-slot demand
  // (pieces x sharing cores) so the thrash model prices the already-demoted
  // footprint exactly. 1GB demotions leave 2MB pieces and are not tracked.
  FlatMap<Addr, std::uint32_t> demoted_windows_;
  std::uint64_t demoted_slot_demand_ = 0;  // sum of demoted_windows_ values
  // Realized-gain accounting for the migration-gain exit: how long the
  // current promise has gone undelivered, and the measured LAR when it began.
  int mig_promise_streak_ = 0;
  double mig_promise_baseline_lar_ = 0.0;
  // Split-side review state: LAR at the last engagement review, epochs since,
  // and the re-engagement cooldown after a failed experiment.
  double engage_baseline_lar_ = 0.0;
  int engaged_epochs_ = 0;
  int split_cooldown_ = 0;
  // Realized-gain budget staging: a fresh engagement is an unconfirmed
  // experiment and demotes at the probation rate; once a review measures the
  // promised LAR actually materializing, the full budget opens up and the
  // remaining shared set drains fast (the transient is strictly cheaper
  // compressed than stretched). A failed review resets to probation.
  bool engagement_confirmed_ = false;
};

}  // namespace numalp

#endif  // NUMALP_SRC_CORE_CARREFOUR_LP_H_
