// Carrefour-LP: large-page extensions to Carrefour (Algorithm 1).
//
// Reactive component (lines 10-19): from IBS samples, estimate the LAR that
// Carrefour alone would deliver versus Carrefour plus demoting every large
// page. If migration alone promises a >15-point gain, do not split; if
// splitting promises a >5-point gain, demote all *shared* large pages and
// stop allocating 2MB pages. Hot pages (>6% of accesses) are always split
// and their pieces interleaved — migration cannot balance fewer hot pages
// than nodes.
//
// Conservative component (lines 4-9): re-enable 2MB allocation (and
// promotion) when the counters show TLB pressure (>5% of L2 misses are PTE
// fetches) or page-fault overhead (>5% of any core's time).
#ifndef NUMALP_SRC_CORE_CARREFOUR_LP_H_
#define NUMALP_SRC_CORE_CARREFOUR_LP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/config.h"
#include "src/core/lar_estimator.h"
#include "src/metrics/numa_metrics.h"
#include "src/vm/thp.h"

namespace numalp {

struct LpObservation {
  double walk_l2_miss_frac = 0.0;
  double max_fault_time_share = 0.0;
  LarEstimates lar;
  const PageAggMap* mapping_pages = nullptr;
};

struct LpDecision {
  // Shared large pages to demote (line 16).
  std::vector<std::pair<Addr, PageSize>> split_shared;
  // Hot large pages to demote and interleave (line 19).
  std::vector<std::pair<Addr, PageSize>> split_hot;
  bool split_pages_flag = false;
  bool alloc_enabled_after = false;
  bool promote_enabled_after = false;
};

class CarrefourLp {
 public:
  // Mutates `thp` exactly like the kernel implementation toggles THP sysfs
  // state. Which components run comes from `config`.
  CarrefourLp(const PolicyConfig& config, ThpState& thp);

  LpDecision Step(const LpObservation& observation);

  bool split_pages_flag() const { return split_pages_; }

 private:
  PolicyConfig config_;
  ThpState& thp_;
  bool split_pages_ = false;
};

}  // namespace numalp

#endif  // NUMALP_SRC_CORE_CARREFOUR_LP_H_
