#include "src/core/carrefour_lp.h"

namespace numalp {

CarrefourLp::CarrefourLp(const PolicyConfig& config, ThpState& thp)
    : config_(config), thp_(thp) {}

LpDecision CarrefourLp::Step(const LpObservation& observation) {
  LpDecision decision;

  // --- Conservative component (Algorithm 1, lines 4-9) ---------------------
  if (config_.use_conservative) {
    if (observation.walk_l2_miss_frac > config_.walk_miss_threshold) {
      thp_.alloc_enabled = true;
      thp_.promote_enabled = true;
    } else if (observation.max_fault_time_share > config_.fault_time_threshold) {
      // Faults hurt, but pages already faulted in gain nothing from
      // promotion — enable allocation only (Section 3.2.2).
      thp_.alloc_enabled = true;
    }
  }

  // --- Reactive component (lines 10-14) ------------------------------------
  if (config_.use_reactive) {
    const LarEstimates& lar = observation.lar;
    if (lar.carrefour_pct - lar.current_pct > config_.lar_gain_carrefour_pct) {
      split_pages_ = false;
    } else if (lar.carrefour_split_pct - lar.current_pct > config_.lar_gain_split_pct) {
      split_pages_ = true;
    }

    // Lines 15-18: demote all shared large pages when splitting is on or 2MB
    // allocation is off (pages promoted meanwhile must not linger). The
    // demotion budget is filled in ascending address order (the canonical
    // decision order), so which pages make the per-epoch cut does not depend
    // on map iteration internals.
    if (split_pages_ || !thp_.alloc_enabled) {
      ForEachPageSorted(*observation.mapping_pages,
                        [&](Addr page_base, const PageAgg& agg) {
                          if (static_cast<int>(decision.split_shared.size()) >=
                              config_.max_shared_splits_per_epoch) {
                            return;
                          }
                          if (agg.size != PageSize::k4K && agg.dram > 0 &&
                              agg.SharerCount() >= 2) {
                            decision.split_shared.emplace_back(page_base, agg.size);
                          }
                        });
      thp_.alloc_enabled = false;
    }

    // Line 19: hot large pages are split and interleaved unconditionally
    // (also in canonical order: the split sequence drives the caller's
    // piece-placement RNG).
    std::uint64_t total_samples = 0;
    for (const auto& [page_base, agg] : *observation.mapping_pages) {
      if (agg.dram > 0) {
        total_samples += agg.total;
      }
    }
    if (total_samples > 0) {
      ForEachPageSorted(
          *observation.mapping_pages, [&](Addr page_base, const PageAgg& agg) {
            if (agg.size == PageSize::k4K || agg.dram == 0) {
              return;
            }
            const double share =
                100.0 * static_cast<double>(agg.total) / static_cast<double>(total_samples);
            if (share > config_.hot_page_share_pct) {
              decision.split_hot.emplace_back(page_base, agg.size);
            }
          });
    }
  }

  decision.split_pages_flag = split_pages_;
  decision.alloc_enabled_after = thp_.alloc_enabled;
  decision.promote_enabled_after = thp_.promote_enabled;
  return decision;
}

}  // namespace numalp
