#include "src/core/carrefour_lp.h"

#include <algorithm>

namespace numalp {

CarrefourLp::CarrefourLp(const PolicyConfig& config, ThpState& thp)
    : config_(config), thp_(thp) {}

CarrefourLp::SplitDesire CarrefourLp::EvaluateDesire(
    const LpObservation& observation,
    const std::vector<std::pair<Addr, const PageAgg*>>& shared,
    std::uint64_t total_samples) {
  const LarEstimates& lar = observation.lar;
  const LpModelConfig& model = config_.lp_model;
  bool carrefour_trusted = true;
  // Fault-mode realized-gain discount: the what-if Carrefour estimate
  // assumes every planned move executes; when the machine is failing
  // migrations, only the delivered fraction of the gain is credible. The
  // branch is taken only when the rate actually dropped, so a fault-free
  // run (rate exactly 1.0) evaluates the untouched estimate bit-for-bit.
  double carrefour_pct = lar.carrefour_pct;
  if (observation.migration_success_rate < 1.0) {
    carrefour_pct = lar.current_pct + (lar.carrefour_pct - lar.current_pct) *
                                          observation.migration_success_rate;
  }
  if (carrefour_pct - lar.current_pct > config_.lar_gain_carrefour_pct) {
    // Line 10: migration alone promises enough — but the promise must be
    // credible. Under sparse sampling the what-if estimate over-predicts
    // persistently (one sample per page reads as "single-node, migratable"),
    // so with the model on, the exit holds only while the measured LAR is
    // actually moving toward the promise; a promise that sits undelivered
    // for `mig_gain_patience_epochs` expires — the split condition is
    // evaluated instead, with the benefit anchored to the *measured* LAR
    // rather than the discredited estimate.
    if (!model.hysteresis) {
      return SplitDesire::kOff;
    }
    if (mig_promise_streak_ == 0 ||
        lar.current_pct >=
            mig_promise_baseline_lar_ + 0.5 * config_.lar_gain_carrefour_pct) {
      // New promise, or the last one delivered: re-anchor and keep trusting.
      mig_promise_baseline_lar_ = lar.current_pct;
      mig_promise_streak_ = 1;
      return SplitDesire::kOff;
    }
    ++mig_promise_streak_;
    if (mig_promise_streak_ <= model.mig_gain_patience_epochs) {
      return SplitDesire::kOff;
    }
    ++stats_.expired_mig_promises;
    carrefour_trusted = false;  // fall through to the split condition
  } else {
    mig_promise_streak_ = 0;
  }
  if (lar.carrefour_split_pct - lar.current_pct <= config_.lar_gain_split_pct) {
    return SplitDesire::kNeutral;
  }
  // A recently failed split experiment suppresses re-engagement: the same
  // signal that just measurably under-delivered is not a reason to demote
  // the same pages again.
  if (model.hysteresis && !split_pages_ && split_cooldown_ > 0) {
    return SplitDesire::kNeutral;
  }
  // Line 12's threshold fires. The cost model gets a veto on *engagement*:
  // the split estimate is known to over-predict (Section 4.1's SSCA case), so
  // the LAR points splitting adds over what migration alone achieves must be
  // worth more cycles than the post-split 4KB thrash of demoting the shared
  // set. Once engaged, the per-epoch budget takes over as the limiter.
  if (model.cost_budget && observation.costs.epoch_accesses > 0 && !split_pages_) {
    const double anchor = carrefour_trusted
                              ? std::max(lar.current_pct, carrefour_pct)
                              : lar.current_pct;
    const double incremental =
        lar.carrefour_split_pct - anchor - model.split_estimate_margin_pct;
    const Cycles benefit = PredictedLarGainCyclesPerEpoch(observation.costs, incremental);
    // Thrash of demoting the whole shared set, on top of what is already
    // demoted: the miss rate saturates with the TLB-slot demand, so a
    // handful of narrowly-shared windows (UA's false-sharing boundaries)
    // price cheap while mass demotion of widely-shared pages (LU, SPECjbb)
    // prices at full walk cost.
    std::uint64_t slot_demand = demoted_slot_demand_;
    for (const auto& [base, agg] : shared) {
      if (agg->size == PageSize::k2M) {
        slot_demand += kFramesPer2M * static_cast<std::uint64_t>(agg->SharerCount());
      }
    }
    const double miss_rate =
        PostSplitTlbMissRate(model.post_split_tlb_miss_rate, slot_demand,
                             observation.costs.tlb_4k_reach_pages);
    Cycles cost = 0;
    for (const auto& [base, agg] : shared) {
      const double share = total_samples == 0 ? 0.0
                                              : static_cast<double>(agg->total) /
                                                    static_cast<double>(total_samples);
      cost += PredictedThrashCyclesPerEpoch(observation.costs, share, miss_rate);
      cost += static_cast<Cycles>(static_cast<double>(observation.costs.split_op_cycles) /
                                  model.split_payback_epochs);
    }
    if (benefit <= cost) {
      ++stats_.cost_vetoes;
      return SplitDesire::kNeutral;  // not kOff: a veto must not drive disengage
    }
  }
  return SplitDesire::kOn;
}

void CarrefourLp::UpdateSplitMode(SplitDesire desire, double current_lar_pct) {
  if (desire == SplitDesire::kOn) {
    ++stats_.on_streak;
    stats_.off_streak = 0;
  } else {
    stats_.on_streak = 0;
    if (split_pages_) {
      ++stats_.off_streak;
    }
  }

  const LpModelConfig& model = config_.lp_model;
  if (!model.hysteresis) {
    // Algorithm 1's literal transitions: engage on split gain, disengage on
    // migration gain, sticky otherwise.
    if (desire == SplitDesire::kOn) {
      split_pages_ = true;
    } else if (desire == SplitDesire::kOff) {
      split_pages_ = false;
    }
    return;
  }
  if (!split_pages_) {
    if (stats_.on_streak >= model.split_on_epochs) {
      split_pages_ = true;
      stats_.off_streak = 0;
      engage_baseline_lar_ = current_lar_pct;
      engaged_epochs_ = 0;
      engagement_confirmed_ = false;  // a fresh experiment starts on probation
    }
    return;
  }
  // Engagement is a reviewed experiment: every split_patience_epochs the
  // measured LAR must have moved since the last review, or the promised gain
  // is not materializing (SSCA's mis-estimation) — roll the mode back and
  // suppress re-engagement.
  ++engaged_epochs_;
  // Early confirmation: the probation gate does not wait for the scheduled
  // review — the moment the measured LAR clears the realized-gain bar, the
  // experiment has proven itself and the confirmed budget opens (UA's gain
  // shows within an epoch or two of the first demotions; SSCA's never
  // arrives and keeps probation until the rollback review). The baseline
  // ratchets to the confirmed level and the review clock restarts.
  if (!engagement_confirmed_ &&
      current_lar_pct >=
          engage_baseline_lar_ + model.min_realized_split_gain_pct) {
    engagement_confirmed_ = true;
    engage_baseline_lar_ = current_lar_pct;
    engaged_epochs_ = 0;
  }
  if (engaged_epochs_ >= model.split_patience_epochs) {
    // An unconfirmed engagement must *deliver* the promised gain by its
    // review or roll back (SSCA's mis-estimation). A confirmed engagement
    // already delivered; its reviews only require the gain be *retained* —
    // LAR saturates at the workload's locality ceiling, so demanding
    // another +gain every window would mislabel a real, held recovery as a
    // failed experiment.
    const double review_bar =
        engagement_confirmed_
            ? engage_baseline_lar_ - model.min_realized_split_gain_pct
            : engage_baseline_lar_ + model.min_realized_split_gain_pct;
    if (current_lar_pct < review_bar) {
      split_pages_ = false;
      ++stats_.failed_engagements;
      split_cooldown_ = model.failed_split_cooldown_epochs;
      stats_.on_streak = 0;
      stats_.off_streak = 0;
      engagement_confirmed_ = false;
      return;
    }
    engage_baseline_lar_ = std::max(engage_baseline_lar_, current_lar_pct);
    engaged_epochs_ = 0;
    engagement_confirmed_ = true;  // the promised gain is materializing
  }
  if (stats_.off_streak >= model.split_off_epochs) {
    // Hysteresis smooths both edges: the split-gain signal (or a credible
    // migration-gain exit) must persist for split_off_epochs before the mode
    // disengages — the transient has genuinely subsided. The confirmed
    // budget was earned by *this* engagement; the next one starts on
    // probation again.
    split_pages_ = false;
    stats_.on_streak = 0;
    stats_.off_streak = 0;
    engagement_confirmed_ = false;
  }
}

LpDecision CarrefourLp::Step(const LpObservation& observation) {
  LpDecision decision;

  // --- Conservative component (Algorithm 1, lines 4-9) ---------------------
  if (config_.use_conservative) {
    if (observation.walk_l2_miss_frac > config_.walk_miss_threshold) {
      thp_.alloc_enabled = true;
      thp_.promote_enabled = true;
    } else if (observation.max_fault_time_share > config_.fault_time_threshold) {
      // Faults hurt, but pages already faulted in gain nothing from
      // promotion — enable allocation only (Section 3.2.2).
      thp_.alloc_enabled = true;
    }
  }

  // --- Reactive component (lines 10-19 + the cost model) --------------------
  if (config_.use_reactive) {
    const LpModelConfig& model = config_.lp_model;

    // One canonical ascending-address pass collects everything the decision
    // stages consume: the total sample mass and the shared-large-page
    // demotion candidates. Every LP read shares this iteration contract —
    // nothing below touches map internals order.
    std::uint64_t total_samples = 0;
    std::vector<std::pair<Addr, const PageAgg*>> shared;
    ForEachPageSorted(*observation.mapping_pages,
                      [&](Addr page_base, const PageAgg& agg) {
                        if (agg.dram == 0) {
                          return;
                        }
                        total_samples += agg.total;
                        if (agg.size != PageSize::k4K && agg.SharerCount() >= 2) {
                          shared.emplace_back(page_base, &agg);
                        }
                      });

    if (split_cooldown_ > 0) {
      --split_cooldown_;
    }
    UpdateSplitMode(EvaluateDesire(observation, shared, total_samples),
                    observation.lar.current_pct);

    // Re-promotion path: the mode disengaged, so the transient that justified
    // splitting has subsided — re-enable 2MB allocation and hand the demoted
    // windows back, a bounded batch per epoch in ascending address order.
    // (Runs before the demotion branch so the disengage epoch does not demote
    // under the stale !alloc_enabled condition.)
    if (model.repromotion && !split_pages_ && !demoted_windows_.empty()) {
      thp_.alloc_enabled = true;
      std::vector<Addr> pending;
      pending.reserve(demoted_windows_.size());
      for (const auto& [base, demand] : demoted_windows_) {
        pending.push_back(base);
      }
      std::sort(pending.begin(), pending.end());
      const std::size_t batch = std::min<std::size_t>(
          pending.size(), static_cast<std::size_t>(model.repromote_max_per_epoch));
      for (std::size_t i = 0; i < batch; ++i) {
        decision.repromote_windows.push_back(pending[i]);
        demoted_slot_demand_ -= *demoted_windows_.Find(pending[i]);
        demoted_windows_.Erase(pending[i]);
      }
    }

    // Lines 15-18: demote shared large pages when splitting is on or 2MB
    // allocation is off (pages promoted meanwhile must not linger). With the
    // cost model on, the per-epoch limit is a cycle budget for the split
    // operations themselves — splitting is heavyweight work under the page
    // table lock, bounded to a fraction of the epoch's wall — instead of a
    // flat page count. (The *thrash* economics of demoting the set were
    // already judged by the engagement veto; re-charging them here would
    // stretch the demotion transient across the whole run.)
    if (split_pages_ || !thp_.alloc_enabled) {
      const bool use_budget = model.cost_budget && observation.costs.epoch_accesses > 0;
      // Realized-gain staging: probation rate until a review confirms the
      // gain, then the confirmed rate drains the rest of the set fast.
      const double budget_frac = engagement_confirmed_
                                     ? model.demotion_budget_confirmed_frac
                                     : model.demotion_budget_frac;
      const Cycles budget =
          use_budget ? static_cast<Cycles>(budget_frac *
                                           static_cast<double>(observation.costs.epoch_wall))
                     : 0;
      Cycles spent = 0;
      bool exhausted = false;
      for (const auto& [page_base, agg] : shared) {
        if (use_budget) {
          // The budget bounds the demotion *rate*, it never starves it: the
          // first candidate of an epoch always fits (mirrors the kernel,
          // which makes progress however slow the budget).
          if (!decision.split_shared.empty() &&
              spent + observation.costs.split_op_cycles > budget) {
            exhausted = true;
            break;
          }
          spent += observation.costs.split_op_cycles;
        } else if (static_cast<int>(decision.split_shared.size()) >=
                   config_.max_shared_splits_per_epoch) {
          exhausted = true;
          break;
        }
        decision.split_shared.emplace_back(page_base, agg->size);
        if (agg->size == PageSize::k2M) {
          const auto [demand, inserted] = demoted_windows_.FindOrInsert(page_base);
          if (inserted) {
            *demand = static_cast<std::uint32_t>(
                kFramesPer2M * static_cast<std::uint64_t>(agg->SharerCount()));
            demoted_slot_demand_ += *demand;
          }
        }
      }
      if (exhausted) {
        ++stats_.budget_exhaustions;
      }
      thp_.alloc_enabled = false;
    }

    // Line 19: hot large pages are split unconditionally (also in canonical
    // order: the split sequence drives the caller's piece-placement RNG).
    // The cost model refines *what happens to the pieces*: interleaving is
    // the right fix only for a page hammered from every node (CG's reduction
    // chunks — migration cannot balance fewer hot pages than nodes); a page
    // over the hot bar but accessed from few nodes is a false-sharing window
    // (UA's mesh boundaries), and its pieces belong with their accessors —
    // split it like a shared page and let the hinting faults localize them.
    if (total_samples > 0) {
      ForEachPageSorted(
          *observation.mapping_pages, [&](Addr page_base, const PageAgg& agg) {
            if (agg.size == PageSize::k4K || agg.dram == 0) {
              return;
            }
            const double share =
                100.0 * static_cast<double>(agg.total) / static_cast<double>(total_samples);
            if (share <= config_.hot_page_share_pct) {
              return;
            }
            // Interleave-vs-localize: a page over the hot bar is only a
            // CG-style hot page — migration cannot balance it, interleave
            // its pieces — when the pieces *themselves* are contested. A
            // false-sharing window (UA's mesh boundaries) also collects
            // accessors from many nodes, but each of its 4KB pieces is
            // dominated by one node; splitting it and placing pieces with
            // their users recovers locality that interleaving would destroy.
            // The window's per-4KB aggregates separate the two directly; a
            // sampleless page falls back to the distinct-node heuristic.
            bool interleave = !model.cost_budget || observation.num_nodes <= 0 ||
                              agg.DistinctNodes() >= observation.num_nodes;
            if (model.cost_budget && observation.window != nullptr) {
              const double piece_locality =
                  observation.window->PieceLocalityPctIn(page_base, BytesOf(agg.size));
              if (piece_locality >= 0.0) {
                interleave = piece_locality < model.hot_localize_piece_majority_pct;
              }
            }
            if (interleave) {
              decision.split_hot.emplace_back(page_base, agg.size);
              return;
            }
            for (const auto& [base, size] : decision.split_shared) {
              if (base == page_base) {
                return;  // already demoted by the shared pass this epoch
              }
            }
            decision.split_shared.emplace_back(page_base, agg.size);
          });
    }

    stats_.pending_repromotions = demoted_windows_.size();
  }

  decision.split_pages_flag = split_pages_;
  decision.alloc_enabled_after = thp_.alloc_enabled;
  decision.promote_enabled_after = thp_.promote_enabled;
  return decision;
}

}  // namespace numalp
