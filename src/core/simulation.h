// The experiment kernel: runs one workload on one simulated machine under one
// policy configuration and produces the run's cycle count plus every metric
// the paper reports (DESIGN.md Section 3 describes the epoch model).
#ifndef NUMALP_SRC_CORE_SIMULATION_H_
#define NUMALP_SRC_CORE_SIMULATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/carrefour/carrefour.h"
#include "src/common/rng.h"
#include "src/core/carrefour_lp.h"
#include "src/core/config.h"
#include "src/core/shard.h"
#include "src/hw/counters.h"
#include "src/hw/ibs.h"
#include "src/hw/interconnect.h"
#include "src/hw/mem_ctrl.h"
#include "src/hw/tlb.h"
#include "src/hw/walker.h"
#include "src/mem/phys_mem.h"
#include "src/metrics/numa_metrics.h"
#include "src/metrics/sample_window.h"
#include "src/topo/topology.h"
#include "src/trace/trace_writer.h"
#include "src/vm/address_space.h"
#include "src/vm/thp.h"
#include "src/workloads/access_source.h"
#include "src/workloads/workload.h"

namespace numalp {

struct EpochRecord {
  int epoch = 0;
  Cycles wall = 0;             // includes policy overhead
  Cycles policy_overhead = 0;  // sampling + migration + split + promotion work
  bool in_setup = false;       // some thread was still first-touching memory
  NumaMetrics metrics;
  double thp_coverage = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t splits = 0;
  std::uint64_t promotions = 0;
  bool thp_alloc_enabled = false;
  bool thp_promote_enabled = false;
  // Reactive-component estimates (when active).
  double est_current_lar = 0.0;
  double est_carrefour_lar = 0.0;
  double est_split_lar = 0.0;
};

struct RunResult {
  std::string workload;
  std::string machine;
  PolicyKind policy = PolicyKind::kLinux4K;
  bool completed = false;
  int epochs = 0;
  Cycles total_cycles = 0;
  // Wall cycles of steady-state (non-setup) epochs: what the paper's
  // benchmarks report (NAS excludes initialization, SPECjbb measures
  // steady throughput). Metis-style allocation happens *during* the steady
  // phase and stays included.
  Cycles measured_cycles = 0;
  std::vector<EpochRecord> history;

  // Cumulative counters (per core and machine-wide).
  std::vector<CoreCounters> core_totals;
  CoreCounters totals;
  std::vector<std::uint64_t> node_request_totals;
  std::uint64_t total_migrations = 0;
  std::uint64_t total_splits = 0;
  std::uint64_t total_promotions = 0;
  Cycles total_policy_overhead = 0;
  // IBS page aggregates merged over the whole run (mapping granularity).
  PageAggMap cumulative_pages;
  double final_thp_coverage = 0.0;

  // Cell health (DESIGN.md Section 12): "ok", "deadline" (the watchdog
  // cancelled the run at an epoch boundary), or "failed: <reason>" (the
  // runner caught an exception and recorded this stub row instead of
  // killing the grid).
  std::string status = "ok";
  // Fault-injection telemetry (all zero with faults off).
  std::uint64_t fault_alloc_failures = 0;
  std::uint64_t fault_migration_failures = 0;
  std::uint64_t fault_split_failures = 0;
  std::uint64_t fault_truncated_plans = 0;
  std::uint64_t fault_pressure_epochs = 0;
  std::uint64_t fault_promote_backoffs = 0;
  std::uint64_t fault_retried_migrations = 0;
  std::uint64_t fault_abandoned_pages = 0;
  std::uint64_t thp_fallback_faults = 0;
  // mmap-lifetime churn (trace sources only; zero for the generators):
  // regions mapped/unmapped mid-run and bytes returned to the buddy
  // allocator through AddressSpace::MunmapRange.
  std::uint64_t region_maps = 0;
  std::uint64_t region_unmaps = 0;
  std::uint64_t unmapped_bytes = 0;
  // Stream provenance ("workload@machine#seed" from the trace header) when
  // this run captured or replayed a trace; empty otherwise. Identical for a
  // capturing run and every replay of its file — part of the byte-identity
  // contract (DESIGN.md §14).
  std::string trace_source;
  // Buddy-allocator fragmentation telemetry at run end (filled on every
  // run): worst per-node fragmentation index, largest free order across
  // nodes, how many 2MB blocks the free lists could still serve, and how
  // many Alloc calls failed over the run.
  double frag_index_pct = 0.0;
  int buddy_largest_free_order = -1;
  std::uint64_t buddy_free_2m_blocks = 0;
  std::uint64_t buddy_alloc_failures = 0;

  // Profiler state accounting (DESIGN.md Section 11). Deliberately NOT part
  // of ResultRow/JSONL output: profile modes must stay byte-identical on the
  // report surface whenever their decisions are identical, and these fields
  // differ by construction (sketch mode carries a fixed filter+sketch
  // budget). The profile-sweep bench reads them directly.
  std::uint64_t profile_peak_entries = 0;     // exact-aggregate entry high-water
  std::uint64_t profile_state_bytes = 0;      // peak entries + filter/sketch bytes
  std::uint64_t profile_admission_misses = 0; // samples the full filter dropped

  // --- Paper-metric helpers ----------------------------------------------
  double LarPct() const;
  double ImbalancePct() const;
  double WalkL2MissFrac() const;
  // Max over cores of (fault handler cycles / total run cycles), as a %.
  double MaxFaultTimeSharePct() const;
  // Same metric restricted to steady-state epochs (the paper's benchmarks
  // amortize their startup over minutes of execution; our runs are seconds,
  // so the one-time first-touch storm would otherwise dominate).
  double SteadyMaxFaultSharePct() const;
  // Max over cores of fault-handler time in milliseconds.
  double MaxFaultTimeMs(double clock_ghz) const;
  double PamupPct() const;
  int Nhp() const;
  double PspPct() const;
  double RuntimeMs(double clock_ghz) const;
};

// Performance improvement of `run` over `baseline` in percent, the y-axis of
// Figures 1-5 ("perf. improvement relative to default Linux").
double ImprovementPct(const RunResult& baseline, const RunResult& run);

class Simulation {
 public:
  Simulation(const Topology& topo, const WorkloadSpec& workload, const PolicyConfig& policy,
             const SimConfig& sim);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  RunResult Run();

  // Accessors for tests that drive epochs manually.
  AddressSpace& address_space() { return *address_space_; }
  ThpState& thp_state() { return thp_state_; }
  const Topology& topology() const { return topo_; }
  // Effective intra-cell shard count after the oversubscription clamp
  // (DESIGN.md Section 10); 1 = the serial engine.
  int shard_count() const { return shard_count_; }
  // The cell's fault schedule, or nullptr with faults off.
  const FaultPlan* fault_plan() const { return fault_plan_.get(); }

  // Cooperative cancellation for the runner's watchdog: when the flag goes
  // true, Run() stops at the next epoch boundary and records status
  // "deadline". Checked only between epochs, so a cancelled run is still a
  // deterministic prefix of the uncancelled one.
  void set_cancel_flag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

 private:
  // Accesses per round-robin slice. 32: coarser slices would let one thread
  // first-touch tens of 2MB windows "before" its peers, which no concurrent
  // machine does (see ExecuteEpochAccesses).
  static constexpr std::size_t kSliceAccesses = 32;
  // Speculative-window controller bounds, in rounds (one round = every
  // thread running one kSliceAccesses slice).
  static constexpr std::size_t kMinWindowRounds = 8;
  static constexpr std::size_t kMaxWindowRounds = 256;

  int CoreOfThread(int thread) const;
  // Executes one slice of a thread's access batch on the context's core.
  // Batching hoists the per-core state (counters, RNG, TLB, translate
  // cache) and the per-region cost tables out of the per-access path; each
  // access is processed exactly as the seed's per-call engine did.
  //
  // kSpeculative runs the identical access arithmetic against frozen shared
  // state: mutations of shared counters are redirected to the context's
  // delta scratch, IBS samples queue as pending (tagged with
  // `base_index + i` for serial-order replay), and the slice aborts —
  // returns false — at the first access that would mutate shared state (a
  // demand fault or a migrate-on-touch hint hit). The serial instantiation
  // always returns true.
  template <bool kSpeculative>
  bool ProcessSlice(ShardContext& ctx, const WorkloadAccess* accesses, std::size_t count,
                    std::size_t base_index);
  // Runs every thread's epoch batch in round-robin kSliceAccesses slices —
  // serially when shard_count() == 1 or during the setup fault storm,
  // otherwise as speculative parallel windows with serial fallback.
  void ExecuteEpochAccesses(bool epoch_in_setup);
  // The seed's serial interleaving of rounds [first, last) — the reference
  // semantics every parallel window must (and, committed, provably does)
  // reproduce, and the replay path for failed windows.
  void RunRoundsSerial(std::size_t first_round, std::size_t last_round);
  // One speculative window over rounds [first, last): snapshot per-core
  // state, run each core's window slice in parallel against the frozen
  // shared state, then either commit the per-shard logs serially (no slice
  // aborted — the window provably equals the serial interleaving) or roll
  // every core back and report false for serial replay.
  bool TrySpeculativeWindow(std::size_t first_round, std::size_t last_round);
  void SnapshotShard(ShardContext& ctx);
  void RestoreShard(ShardContext& ctx);
  // Serialized apply phase of a committed window: fold the contexts' shared-
  // counter deltas in canonical core order and replay pending IBS samples
  // in serial (round, thread) order.
  void CommitWindow(std::size_t first_round, std::size_t last_round);
  // Runs the policy stack at the epoch boundary; returns overhead cycles and
  // fills the epoch record. `wall_so_far` is the app portion of the epoch.
  Cycles RunPolicies(Cycles wall_so_far, EpochRecord& record);

  Topology topo_;
  WorkloadSpec workload_spec_;
  PolicyConfig policy_;
  SimConfig sim_;

  PhysicalMemory phys_;
  ThpState thp_state_;
  std::unique_ptr<AddressSpace> address_space_;
  // The access stream: a synthetic generator (Workload) or a trace replay
  // (TraceWorkload), selected by WorkloadSpec::trace_file. The epoch loop
  // consumes the AccessSource interface only.
  std::unique_ptr<AccessSource> workload_;
  // Trace capture (WorkloadSpec::capture_file): records the stream at the
  // serial batch-fill points of the epoch loop (DESIGN.md §14).
  std::unique_ptr<trace::TraceWriter> capture_;
  // "workload@machine#seed" from the trace header when capturing or
  // replaying; lands in RunResult::trace_source.
  std::string trace_provenance_;
  PageWalker walker_;
  MemCtrlModel mem_ctrl_;
  InterconnectModel interconnect_;
  IbsEngine ibs_;
  EpochCounters counters_;
  Rng policy_rng_;

  Carrefour carrefour_;
  std::unique_ptr<CarrefourLp> lp_;
  KhugepagedScanner khugepaged_;
  // Fault injection (DESIGN.md Section 12); null with faults off — every
  // fault branch in the epoch loop is gated on this, so the default
  // configuration executes the exact pre-fault instruction stream.
  std::unique_ptr<FaultPlan> fault_plan_;
  const std::atomic<bool>* cancel_ = nullptr;
  // Carrefour-plan execution stats for the LP realized-gain discount
  // (maintained only under fault injection).
  std::uint64_t fault_mig_attempted_ = 0;
  std::uint64_t fault_mig_executed_ = 0;

  // Carrefour keeps per-page statistics for the lifetime of the run (the
  // kernel module never resets them); bound the window only as a safety cap.
  static constexpr std::size_t kSampleWindowEpochs = 512;

  PageAggMap cumulative_pages_;
  // Incrementally maintained sliding window over the last
  // kSampleWindowEpochs epochs of IBS samples (reference mode re-aggregates
  // from scratch instead; results are identical).
  SampleWindow window_;
  // Sketch profile mode's epoch presketch (DESIGN.md Section 11): the
  // current epoch's sampled 4KB page bases, counted as they are sampled so
  // PushEpoch's admission test sees the whole epoch without an extra pass.
  // Speculative slices stage their additions in ShardContext::
  // spec_sketch_pages and CommitWindow folds them (commutative sums — the
  // shard-count identity argument of Section 10 covers them unchanged).
  // Maintained only when the window is actually consumed in sketch mode.
  CountSketch epoch_presketch_;
  bool presketch_enabled_ = false;
  // One execution context per core, owning every piece of slice-local state
  // (TLB, RNG, translation cache, fault accounting, the core's thread's
  // batch, and the speculative-window scratch/snapshot). Indexed by core;
  // thread t's batch lives in the context of CoreOfThread(t) — the pinning
  // is a bijection.
  std::vector<ShardContext> shard_ctx_;
  // The sharded engine (DESIGN.md Section 10). shard_count_ == 1 (the
  // default, and the clamped result on saturated hosts) takes the pure
  // serial path; the pool exists only when it is > 1.
  int shard_count_ = 1;
  std::unique_ptr<ShardPool> shard_pool_;
  std::atomic<bool> spec_failed_{false};
  // Adaptive window controller: grow on committed windows, shrink and fall
  // back to serial for a penalty span after a failed one. Deterministic —
  // window success depends only on simulation state, never on scheduling —
  // so the window boundaries (and therefore everything) are identical at
  // any shard count.
  std::size_t window_rounds_ = kMinWindowRounds;
  std::size_t serial_penalty_rounds_ = 0;
  // Per-region cost tables hoisted out of the access loop.
  std::vector<double> region_mlp_;
  std::vector<double> region_intensity_;
  // Pages demoted by the reactive component are placed lazily: the next
  // touch migrates the piece to the toucher's node (NUMA hinting-fault
  // placement — per-4KB-piece IBS evidence would take minutes to gather).
  FlatSet<Addr> migrate_on_touch_;
  Cycles hint_kernel_cycles_ = 0;
  std::uint64_t hint_migrations_ = 0;
  // Measured extra cost of one remote DRAM access this epoch (hop latency
  // plus destination queueing premium, averaged over the epoch's actual
  // remote traffic) — the reactive cost model's benefit side (DESIGN.md §8).
  Cycles remote_dram_premium_ = 0;
  // One-shot setup→steady transition: the decision window and Carrefour's
  // placement memory are cleared of the first-touch storm (DESIGN.md §8).
  bool steady_transition_done_ = false;
};

// Convenience wrapper used by benches and examples: builds the named
// workload on `topo`, runs it under `kind`, returns the result.
RunResult RunBenchmark(const Topology& topo, BenchmarkId bench, PolicyKind kind,
                       const SimConfig& sim);

}  // namespace numalp

#endif  // NUMALP_SRC_CORE_SIMULATION_H_
