// Intra-cell core sharding (DESIGN.md Section 10): the per-core execution
// context owning all slice-local simulation state, the persistent worker
// pool that runs speculative parallel windows over those contexts, and the
// process-global oversubscription guard that keeps grid-level parallelism
// (ExperimentRunner jobs) and intra-cell parallelism (shards) from
// multiplying into more threads than the host has.
#ifndef NUMALP_SRC_CORE_SHARD_H_
#define NUMALP_SRC_CORE_SHARD_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/hw/counters.h"
#include "src/hw/tlb.h"
#include "src/vm/address_space.h"
#include "src/workloads/workload.h"

namespace numalp {

// Per-page-fault cycle accounting, split so the fixed (page-table-lock)
// part can be scaled by the epoch's measured fault concurrency while the
// zeroing part stays per-byte (simulation.cc's epoch-end contention pass).
struct FaultCycleParts {
  Cycles fixed = 0;
  Cycles zero = 0;
};

// One simulated core's slice-local state, consolidated from what were
// parallel per-core vectors in Simulation: everything ProcessSlice mutates
// that belongs to exactly one core lives here, so a shard worker touches
// only its own contexts during the parallel window and the shared
// structures stay read-only until the serialized apply phase.
struct ShardContext {
  ShardContext(const TlbConfig& tlb_config, bool reference, int num_nodes, int core_id,
               int node_id)
      : tlb(tlb_config, reference),
        tlb_backup(tlb_config, reference),
        core(core_id),
        node(node_id) {
    spec_node_requests.assign(static_cast<std::size_t>(num_nodes), 0);
    spec_node_incoming_remote.assign(static_cast<std::size_t>(num_nodes), 0);
  }

  // --- Slice-local engine state (owned, mutated in place) -----------------
  Tlb tlb;
  Rng rng{0};
  AddressSpace::TranslationCache translate_cache;
  FaultCycleParts fault_parts;
  std::vector<WorkloadAccess> batch;  // this core's thread's epoch batch

  // --- Speculative-window scratch -----------------------------------------
  // Shared-counter mutations a speculative slice would have made are
  // redirected here as deltas and folded into EpochCounters at commit, in
  // canonical core order (integer sums — any order is the serial order).
  std::vector<std::uint64_t> spec_node_requests;
  std::vector<std::uint64_t> spec_node_incoming_remote;
  // IBS samples fired during a speculative window, tagged with the access's
  // absolute index in the epoch so the apply phase can replay them into the
  // engine's per-node stores in exact serial (round, thread) order.
  struct PendingSample {
    Addr va = 0;
    std::uint64_t index = 0;
    int home = 0;
    bool dram = false;
  };
  std::vector<PendingSample> pending_samples;
  std::size_t pending_cursor = 0;
  // Sketch-profile-mode presketch delta: the 4KB page bases this core's
  // speculative samples would have added to the engine's epoch presketch
  // (simulation.h). Kept sparse — a window carries only a handful of samples
  // per core, so folding a list of bases at commit is far cheaper than
  // merging per-shard sketch arrays — and folded in canonical core order
  // like the counter deltas (commutative integer sums: any order is the
  // serial order). Cleared on commit and on rollback.
  std::vector<Addr> spec_sketch_pages;

  // --- Window snapshot (rollback target when speculation fails) -----------
  Tlb tlb_backup;
  Rng rng_backup{0};
  CoreCounters cc_backup;
  std::vector<std::uint64_t> core_node_requests_backup;
  std::uint64_t ibs_countdown_backup = 0;

  int core = 0;
  int node = 0;
};

// --- Oversubscription guard -------------------------------------------------

// Worker threads the ExperimentRunner currently has running, process-wide.
// Simulations consult it when resolving their effective shard count so
// NUMALP_JOBS=8 with 4 shards does not become 32 threads.
int ActiveRunnerJobs();

// RAII registration of a runner's worker count for the guard's lifetime.
class ScopedActiveRunnerJobs {
 public:
  explicit ScopedActiveRunnerJobs(int jobs);
  ~ScopedActiveRunnerJobs();

  ScopedActiveRunnerJobs(const ScopedActiveRunnerJobs&) = delete;
  ScopedActiveRunnerJobs& operator=(const ScopedActiveRunnerJobs&) = delete;

 private:
  int jobs_;
};

// Effective shard count for one Simulation: `requested` clamped to the
// simulated core count and — unless `force` — to the host thread budget
// (hardware concurrency divided by the active runner jobs). Shards never
// change results, so clamping is always safe; `force` exists for scaling
// measurements and determinism tests that must spawn real workers anyway.
int ResolveShardCount(int requested, bool force, int num_cores);

// --- Worker pool -------------------------------------------------------------

// A persistent pool of `shards - 1` helper threads plus the calling thread,
// dispatching one job per parallel window. Condvar-parked between windows
// (epochs are short; busy-spinning would burn the very cores the shards are
// supposed to use), created once per Simulation.
class ShardPool {
 public:
  explicit ShardPool(int shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int shards() const { return shards_; }

  // Invokes fn(worker) for worker in [0, shards); fn(0) runs on the calling
  // thread. Returns after every invocation has finished (the apply phase
  // needs a barrier: it reads what the workers wrote).
  void Run(const std::function<void(int)>& fn);

 private:
  void WorkerLoop(int worker);

  int shards_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int outstanding_ = 0;
  bool stop_ = false;
};

}  // namespace numalp

#endif  // NUMALP_SRC_CORE_SHARD_H_
