// Simulation and policy configuration for an experiment run.
#ifndef NUMALP_SRC_CORE_CONFIG_H_
#define NUMALP_SRC_CORE_CONFIG_H_

#include <cstdint>
#include <string_view>

#include "src/carrefour/carrefour.h"
#include "src/hw/interconnect.h"
#include "src/hw/mem_ctrl.h"
#include "src/hw/tlb.h"
#include "src/hw/walker.h"

namespace numalp {

// Cycle costs of the simulated machine and OS (2GHz reference clock).
struct CostModel {
  Cycles cpu_per_access = 3;  // pipeline + cache-hit cost of one access
  Cycles tlb_l2_hit = 7;

  // Page faults: fixed kernel-entry/locking cost (subject to contention on
  // the page-table lock, Boyd-Wickizer et al. [3]) plus page zeroing.
  Cycles fault_fixed = 3500;
  double fault_zero_per_byte = 0.25;
  double fault_contention_slope = 0.05;  // per additional concurrently-faulting core
  double fault_contention_max = 4.0;

  // Policy mechanics (charged to the epoch's wall time as kernel overhead).
  Cycles migrate_fixed = 3000;
  double migrate_per_byte = 0.12;
  Cycles split_fixed = 2500;
  Cycles promote_fixed = 4000;
  double promote_per_byte = 0.12;
  Cycles shootdown_per_op = 3000;
  Cycles per_ibs_sample = 300;  // interrupt + processing, on the sampling core
  Cycles policy_fixed_per_epoch = 10'000;
  // Calibration of kernel page-work wall charges. A simulated epoch stands
  // for one second (~2e9 cycles) but simulates ~1e6 cycles of accesses, while
  // sampled page counts shrink far less, so naive charging overstates
  // relative overhead; this divisor recovers the paper's measured 1-4%
  // Carrefour overhead (Section 4.2).
  double kernel_time_scale = 4.0;
};

struct SimConfig {
  std::uint64_t seed = 42;
  std::uint64_t accesses_per_thread_per_epoch = 4096;
  int max_epochs = 600;
  std::uint64_t ibs_interval = 128;  // one sample per N accesses per core
  double clock_ghz = 2.0;           // converts cycles to wall time in reports
  // khugepaged budget per epoch. The paper polls every 10ms (~100 scans per
  // 1s epoch) but Linux's scanner consolidates only a handful of windows per
  // wake; promotion is deliberately slow, which also bounds the
  // split/promote oscillation the paper discusses in Section 4.3.
  int promote_scan_windows = 256;
  int promote_max_per_epoch = 1;
  // Run the seed's slow sampling pipeline (full window re-aggregation every
  // epoch, per-page shootdowns) instead of the incremental engine. Results
  // are bit-identical either way — the reference path exists as the
  // correctness oracle and the wall-clock baseline for BENCH_perf.json
  // (env: NUMALP_REFERENCE_PIPELINE=1).
  bool reference_pipeline = false;

  TlbConfig tlb;
  WalkerConfig walker;
  MemCtrlConfig mem_ctrl;
  InterconnectConfig interconnect;
  CostModel costs;
};

// The six system configurations evaluated in the paper (Figures 1-5).
enum class PolicyKind : std::uint8_t {
  kLinux4K,           // default Linux, 4KB pages
  kThp,               // Linux with transparent huge pages
  kCarrefour2M,       // THP + Carrefour, no large-page awareness
  kReactiveOnly,      // THP + Carrefour + reactive splitting component
  kConservativeOnly,  // 4KB start + Carrefour + conservative enabling component
  kCarrefourLp,       // the full system (Algorithm 1)
};

std::string_view NameOf(PolicyKind kind);

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kLinux4K;
  bool initial_thp_alloc = false;
  bool initial_thp_promote = false;
  bool use_carrefour = false;
  bool use_reactive = false;
  bool use_conservative = false;
  CarrefourConfig carrefour;
  // Carrefour-LP thresholds (Algorithm 1).
  double walk_miss_threshold = 0.05;       // line 4
  double fault_time_threshold = 0.05;      // line 7
  double lar_gain_carrefour_pct = 15.0;    // line 10
  double lar_gain_split_pct = 5.0;         // line 12
  double hot_page_share_pct = 6.0;         // line 19 (Section 3.1 footnote)
  // Demotion rate limit: splitting is a heavyweight operation under the page
  // table lock (Section 4.3 mentions the scalability concern), so shared
  // pages are demoted in bounded batches per iteration.
  int max_shared_splits_per_epoch = 32;
};

PolicyConfig MakePolicyConfig(PolicyKind kind);

// Parses environment variable `name` as a positive integer; returns 0 when
// unset, non-numeric, or non-positive.
long long PositiveEnvInt(const char* name);

// Applies environment overrides to `sim` and returns it: NUMALP_MAX_EPOCHS
// and NUMALP_ACCESSES_PER_EPOCH bound run length (the ctest smoke tests use
// them to keep the examples and CLI driver fast), NUMALP_SEED replaces the
// base seed. Unset or non-positive variables leave the field untouched.
SimConfig WithEnvOverrides(SimConfig sim);

}  // namespace numalp

#endif  // NUMALP_SRC_CORE_CONFIG_H_
