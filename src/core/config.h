// Simulation and policy configuration for an experiment run.
#ifndef NUMALP_SRC_CORE_CONFIG_H_
#define NUMALP_SRC_CORE_CONFIG_H_

#include <cstdint>
#include <string_view>

#include "src/carrefour/carrefour.h"
#include "src/core/faults.h"
#include "src/hw/interconnect.h"
#include "src/hw/mem_ctrl.h"
#include "src/hw/tlb.h"
#include "src/hw/walker.h"

namespace numalp {

// Cycle costs of the simulated machine and OS (2GHz reference clock).
struct CostModel {
  Cycles cpu_per_access = 3;  // pipeline + cache-hit cost of one access
  Cycles tlb_l2_hit = 7;

  // Page faults: fixed kernel-entry/locking cost (subject to contention on
  // the page-table lock, Boyd-Wickizer et al. [3]) plus page zeroing.
  Cycles fault_fixed = 3500;
  double fault_zero_per_byte = 0.25;
  double fault_contention_slope = 0.05;  // per additional concurrently-faulting core
  double fault_contention_max = 4.0;

  // Policy mechanics (charged to the epoch's wall time as kernel overhead).
  Cycles migrate_fixed = 3000;
  double migrate_per_byte = 0.12;
  // Policy-driven page migrations (the Carrefour plan, post-split piece
  // placement/interleave, and the epoch's NUMA hinting-fault backlog) are
  // executed by the per-node kernel workers as batched page lists — one
  // list setup and one shootdown IPI broadcast per batch (migrate_pages +
  // mmu_gather semantics), not one syscall-priced operation per page. The
  // fixed and shootdown charges divide across a batch of this many pages;
  // the copied bytes always accrue per page. Ad-hoc single-page operations
  // (splits, promotions) keep their full per-op charges.
  std::uint64_t migrate_batch_pages = 16;
  // Split-time piece placement (DESIGN.md Section 8.4) trusts a piece's
  // window majority once it rests on at least this many samples; pieces
  // below the bar keep hinting-fault (next-toucher) placement. Even a
  // single sample is a recorded toucher — exactly the evidence a hinting
  // fault would act on, minus the fault — so the default trusts it;
  // raising the bar shifts work back to the hinting path.
  std::uint64_t split_place_min_samples = 1;
  Cycles split_fixed = 2500;
  Cycles promote_fixed = 4000;
  double promote_per_byte = 0.12;
  Cycles shootdown_per_op = 3000;
  Cycles per_ibs_sample = 300;  // interrupt + processing, on the sampling core
  Cycles policy_fixed_per_epoch = 10'000;
  // Calibration of kernel page-work wall charges. A simulated epoch stands
  // for one second (~2e9 cycles) but simulates ~1e6 cycles of accesses, while
  // sampled page counts shrink far less, so naive charging overstates
  // relative overhead; this divisor recovers the paper's measured 1-4%
  // Carrefour overhead (Section 4.2).
  double kernel_time_scale = 4.0;
};

// Profiling metadata mode (DESIGN.md Section 11). kExact keeps the seed
// behavior: every sampled 4KB page owns an exact aggregate in the sampling
// window, so tracked state grows with the touched footprint. kSketch puts a
// cuckoo-fingerprint filter + count-min sketch in front of the exact map and
// admits a page only once its estimated live sample count reaches the
// admission threshold — state becomes O(sampled hot set) + a fixed sketch
// budget. At the default threshold of 1 every sampled page admits on its
// first sample, which makes sketch mode bit-identical to exact mode (the
// correctness contract the identity tests pin); thresholds >= 2 trade
// cold-page visibility for bounded state.
enum class ProfileMode : std::uint8_t {
  kExact,
  kSketch,
};

std::string_view NameOf(ProfileMode mode);

// Parses "exact"/"sketch"; returns false (leaving `out` untouched) on
// anything else.
bool ParseProfileMode(std::string_view text, ProfileMode* out);

// Capacity knobs for ProfileMode::kSketch (env/flag overridable; see
// WithEnvOverrides and --profile-* in the CLI).
struct ProfileSketchConfig {
  // Estimated live samples a page needs before it is admitted into the
  // exact aggregate map. 1 = admit on first sample (bit-identical to exact
  // mode); >= 2 bounds state on sparse footprints.
  std::uint64_t admit_threshold = 1;
  // Fingerprint-filter slots: one per live *unadmitted* sample. When full,
  // further unadmitted samples go untracked (counted, never crashing).
  std::uint64_t filter_capacity = 1u << 16;
  // Count-min geometry for the persistent estimate.
  int sketch_rows = 4;
  std::uint32_t sketch_width = 1u << 12;
};

struct SimConfig {
  std::uint64_t seed = 42;
  std::uint64_t accesses_per_thread_per_epoch = 4096;
  int max_epochs = 600;
  std::uint64_t ibs_interval = 128;  // one sample per N accesses per core
  double clock_ghz = 2.0;           // converts cycles to wall time in reports
  // khugepaged budget per epoch. The paper polls every 10ms (~100 scans per
  // 1s epoch) but Linux's scanner consolidates only a handful of windows per
  // wake; promotion is deliberately slow, which also bounds the
  // split/promote oscillation the paper discusses in Section 4.3.
  int promote_scan_windows = 256;
  int promote_max_per_epoch = 1;
  // Run the seed's slow sampling pipeline (full window re-aggregation every
  // epoch, per-page shootdowns) instead of the incremental engine. Results
  // are bit-identical either way — the reference path exists as the
  // correctness oracle and the wall-clock baseline for BENCH_perf.json
  // (env: NUMALP_REFERENCE_PIPELINE=1).
  bool reference_pipeline = false;
  // Intra-cell worker threads for the sharded epoch engine (DESIGN.md
  // Section 10): the epoch's access rounds execute as speculative parallel
  // windows over per-core shard contexts, committed only when provably
  // equal to the serial interleaving. Results are bit-identical at any
  // value; only host wall-clock changes. <= 1 runs the serial engine. The
  // effective count is clamped to the host budget (hardware concurrency
  // divided by active ExperimentRunner jobs) so grid parallelism and shard
  // parallelism cannot multiply into oversubscription
  // (env: NUMALP_SHARDS).
  int shards = 1;
  // Bypass the oversubscription clamp and spawn exactly `shards` workers —
  // for scaling measurements and the determinism tests, which must exercise
  // real cross-thread windows even on small or busy hosts
  // (env: NUMALP_SHARDS_FORCE=1).
  bool shards_force = false;
  // Profiling metadata mode + sketch capacity knobs (see ProfileMode above;
  // env: NUMALP_PROFILE_MODE={exact,sketch}, NUMALP_PROFILE_THRESHOLD,
  // NUMALP_PROFILE_FILTER_CAPACITY, NUMALP_PROFILE_SKETCH_WIDTH). The
  // reference pipeline always profiles exactly regardless of this setting —
  // it re-aggregates raw epochs every epoch and never held incremental
  // state to bound.
  ProfileMode profile_mode = ProfileMode::kExact;
  ProfileSketchConfig profile_sketch;
  // Deterministic fault injection (DESIGN.md Section 12; env:
  // NUMALP_FAULT_PROFILE={off,frag,pressure,churn} with NUMALP_FAULT_ALLOC_PCT,
  // NUMALP_FAULT_MIGRATE_PCT, NUMALP_FAULT_PRESSURE_PCT rate overrides). Off
  // by default: no FaultPlan is constructed and runs are byte-identical to
  // fault-free builds.
  FaultConfig faults;

  TlbConfig tlb;
  WalkerConfig walker;
  MemCtrlConfig mem_ctrl;
  InterconnectConfig interconnect;
  CostModel costs;
};

// The six system configurations evaluated in the paper (Figures 1-5).
enum class PolicyKind : std::uint8_t {
  kLinux4K,           // default Linux, 4KB pages
  kThp,               // Linux with transparent huge pages
  kCarrefour2M,       // THP + Carrefour, no large-page awareness
  kReactiveOnly,      // THP + Carrefour + reactive splitting component
  kConservativeOnly,  // 4KB start + Carrefour + conservative enabling component
  kCarrefourLp,       // the full system (Algorithm 1)
};

std::string_view NameOf(PolicyKind kind);

// Cost/decision model of the redesigned reactive component (DESIGN.md
// Section 8). Each feature switches off independently so
// bench/ablation_lp_model.cc can attribute the fidelity fix to its parts;
// with all three off the component degrades to the original Algorithm 1
// transcription (threshold-only, sticky split flag, flat demotion cap).
struct LpModelConfig {
  // Hysteresis on the split-mode state machine: the split-gain condition must
  // persist for `split_on_epochs` before demotion engages, and must stay
  // absent for `split_off_epochs` before the mode disengages — one noisy
  // epoch of over-predicted split LAR no longer triggers mass demotion.
  bool hysteresis = true;
  int split_on_epochs = 3;
  int split_off_epochs = 5;
  // Realized-gain accounting on the migration-gain exit (Algorithm 1 line
  // 10): a "Carrefour alone will gain >15 points" prediction suppresses
  // splitting only while it is credible. If the promise persists this many
  // epochs without the measured LAR actually improving, it expires — the
  // estimate is a sparse-sampling artifact (the same mis-estimation the
  // paper reports for SSCA) — and the split condition is evaluated instead.
  int mig_gain_patience_epochs = 4;
  // Realized-gain accounting on the split side: engagement is an experiment.
  // Until confirmed, the measured LAR must improve by at least
  // `min_realized_split_gain_pct` points within `split_patience_epochs` of
  // engaging (checked every epoch — confirmation fires as soon as the gain
  // shows), or the mode disengages (re-promoting what it demoted) and
  // re-engagement is suppressed for `failed_split_cooldown_epochs` — the
  // SSCA case, where the estimator promises 59% and delivers 25% (Section
  // 4.1), stops burning split work on a promise that measurably does not
  // materialize. A *confirmed* engagement already delivered; its later
  // reviews only require the gain be retained (LAR not fall more than the
  // same margin below the confirmed level) — LAR saturates at the
  // workload's locality ceiling, so demanding a fresh gain every review
  // would mislabel a real, held recovery as a failed experiment.
  int split_patience_epochs = 8;
  double min_realized_split_gain_pct = 5.0;
  int failed_split_cooldown_epochs = 50;
  // Re-promotion: 2MB windows the reactive component demoted return to large
  // pages once the mode disengages (the transient that justified splitting
  // has subsided), instead of thrashing at 4KB for the rest of the run.
  bool repromotion = true;
  int repromote_max_per_epoch = 16;
  // Cost-aware engagement and demotion budget: split mode engages only when
  // the predicted LAR-gain cycles beat the predicted post-split 4KB-thrash
  // cycles (see PredictedThrashCyclesPerEpoch), and each epoch's demotions
  // are bounded by a cycle budget priced by that same model — measured
  // walk cost and epoch wall time, not a flat page count.
  bool cost_budget = true;
  // Demotion rate: splits per epoch are bounded by a fraction of the epoch's
  // app wall cycles, priced at split_op_cycles each. The rate is staged by
  // realized gain (DESIGN.md Section 8.4): an engagement demotes at the
  // probation fraction until its first review measures the promised LAR
  // actually arriving — a mis-estimated experiment (SSCA) is rolled back
  // having spent little — after which the confirmed fraction drains the
  // remaining shared set in a handful of epochs, because with the
  // relocation work batch-priced (migrate_batch_pages) a compressed
  // transient is strictly cheaper than stretching low-locality epochs
  // across the run, which is what a flat 2% drip did to UA.B.
  double demotion_budget_frac = 0.02;           // probation (unconfirmed)
  double demotion_budget_confirmed_frac = 0.10; // after a passed review
  double split_payback_epochs = 10.0;  // amortization horizon for one-time split cost
  // Known bias of the what-if split estimator: with realistic sampling most
  // 4KB sub-pages carry 0-1 samples, so the post-split LAR prediction runs
  // high (the paper measures a 34-point error on SSCA, Section 4.1). The
  // benefit side of the veto discounts the predicted gain by this margin —
  // marginal split promises (LU's 10-point mirage) die here, massive ones
  // (UA's 60-point false-sharing recovery) survive.
  double split_estimate_margin_pct = 12.0;
  // P(TLB miss) assumed for a demoted page's accesses: 512 4KB entries
  // replacing one 2MB entry overwhelm the 4KB arrays for any page hot
  // enough to be a demotion candidate.
  double post_split_tlb_miss_rate = 0.5;
  // Hot-page interleave-vs-localize discrimination: a hot page whose
  // sampled 4KB pieces are each dominated by one node (piece locality at or
  // above this percentage) is a false-sharing window — split it and place
  // pieces with their users — while contested pieces mark a true hot page
  // whose pieces must interleave. CG's hammered chunks score near
  // 100/num_nodes; UA's mesh windows score near its ~93% slice locality.
  double hot_localize_piece_majority_pct = 60.0;

  // The un-redesigned reactive component, for ablation and for the unit
  // tests that pin the paper's literal Algorithm 1 semantics.
  static LpModelConfig Algorithm1() {
    LpModelConfig model;
    model.hysteresis = false;
    model.repromotion = false;
    model.cost_budget = false;
    return model;
  }
};

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kLinux4K;
  bool initial_thp_alloc = false;
  bool initial_thp_promote = false;
  bool use_carrefour = false;
  bool use_reactive = false;
  bool use_conservative = false;
  CarrefourConfig carrefour;
  // Carrefour-LP thresholds (Algorithm 1).
  double walk_miss_threshold = 0.05;       // line 4
  double fault_time_threshold = 0.05;      // line 7
  double lar_gain_carrefour_pct = 15.0;    // line 10
  double lar_gain_split_pct = 5.0;         // line 12
  double hot_page_share_pct = 6.0;         // line 19 (Section 3.1 footnote)
  // Demotion rate limit when the cost-aware budget is disabled: splitting is
  // a heavyweight operation under the page table lock (Section 4.3 mentions
  // the scalability concern), so shared pages are demoted in bounded batches
  // per iteration.
  int max_shared_splits_per_epoch = 32;
  // The reactive component's cost/decision model.
  LpModelConfig lp_model;
};

PolicyConfig MakePolicyConfig(PolicyKind kind);

// Parses environment variable `name` as a positive integer; returns 0 when
// unset, non-numeric, or non-positive.
long long PositiveEnvInt(const char* name);

// Applies environment overrides to `sim` and returns it: NUMALP_MAX_EPOCHS
// and NUMALP_ACCESSES_PER_EPOCH bound run length (the ctest smoke tests use
// them to keep the examples and CLI driver fast), NUMALP_SEED replaces the
// base seed, NUMALP_SHARDS sets the intra-cell shard count (and
// NUMALP_SHARDS_FORCE=1 bypasses the oversubscription clamp). Unset or
// non-positive variables leave the field untouched. NUMALP_PROFILE_MODE
// ("exact"/"sketch") selects the profiling metadata mode, with
// NUMALP_PROFILE_THRESHOLD, NUMALP_PROFILE_FILTER_CAPACITY, and
// NUMALP_PROFILE_SKETCH_WIDTH overriding the sketch knobs.
SimConfig WithEnvOverrides(SimConfig sim);

}  // namespace numalp

#endif  // NUMALP_SRC_CORE_CONFIG_H_
