// Deterministic fault injection for the simulated machine.
//
// A FaultPlan is seeded from the cell seed and drives three failure families
// the paper's policies implicitly assume away: 2MB/1GB allocation failures
// (driven by *real* buddy-allocator fragmentation — the frag profile pins
// single 4KB frames inside most 2MB-aligned chunks so huge-page allocations
// genuinely fail from buddy state, not from a coin flip), failed and partial
// page migrations, and transient node-pressure episodes that temporarily
// hoard a node's free memory. All draws happen at serial points of the epoch
// loop (never inside speculative shard slices), so a fault schedule is
// bit-identical at every --shards/--jobs setting and under both engines
// (DESIGN.md Section 12). With profile off (the default) no FaultPlan is
// constructed and behavior is byte-identical to a fault-free build.
#ifndef NUMALP_SRC_CORE_FAULTS_H_
#define NUMALP_SRC_CORE_FAULTS_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/rng.h"
#include "src/common/units.h"

namespace numalp {

class PhysicalMemory;

// What kind of adversity the simulated machine is under.
//   off      - no faults (default; byte-identical to pre-fault builds)
//   frag     - long-lived buddy fragmentation: pinned frames break up a
//              third of the 2MB chunks, so order-9 contiguity is scarce —
//              large allocations fail organically under footprint pressure
//              and 2MB migrations (which need a contiguous run on the
//              target node) mostly fail
//   pressure - transient per-node memory-pressure episodes plus a low
//              background migration-failure rate
//   churn    - rotating fragmentation + high migration failure + partial
//              migration plans (the hostile-datacenter profile)
enum class FaultProfile : std::uint8_t {
  kOff = 0,
  kFrag = 1,
  kPressure = 2,
  kChurn = 3,
};

std::string_view NameOf(FaultProfile profile);
std::optional<FaultProfile> ParseFaultProfile(std::string_view name);

// Per-cell fault configuration. Rates are percentages; a negative value
// means "use the profile's default", so profiles stay one-word knobs and
// rate overrides remain possible (--fault-alloc-pct etc.).
struct FaultConfig {
  FaultProfile profile = FaultProfile::kOff;
  double alloc_fail_pct = -1.0;    // extra huge-page alloc failure, % per attempt
  double migrate_fail_pct = -1.0;  // 4KB migration failure, % per page move
  // 2MB+ migration failure, % per move: moving a large page needs an
  // order-9 contiguous run on the target node, which fragmentation makes
  // scarce, so profiles default this well above the 4KB rate.
  double large_migrate_fail_pct = -1.0;
  double pressure_pct = -1.0;      // pressure-episode entry, % per node per epoch

  bool enabled() const { return profile != FaultProfile::kOff; }
};

// Everything a fault run needs to explain itself on the ResultRow.
struct FaultCounters {
  std::uint64_t alloc_failures = 0;      // injected huge-page alloc failures
  std::uint64_t migration_failures = 0;  // injected per-page migration failures
  std::uint64_t split_failures = 0;      // injected demotion failures
  std::uint64_t truncated_plans = 0;     // migration plans cut short
  std::uint64_t pressure_epochs = 0;     // node-epochs spent under pressure
  std::uint64_t promote_backoffs = 0;    // windows armed for promotion backoff
};

// The deterministic fault schedule of one cell. Constructed only when the
// profile is not kOff; every consumer holds a nullable pointer and treats
// nullptr as "no faults".
class FaultPlan {
 public:
  FaultPlan(const FaultConfig& config, std::uint64_t seed);

  // Called once, right after physical memory exists and before the workload
  // touches anything: the frag/churn profiles pin one 4KB frame inside a
  // Bernoulli(pin rate) subset of every node's 2MB-aligned chunks, making
  // the buddy allocator genuinely unable to serve most order-9 requests.
  // Costs one frame per pinned chunk (~0.2% of memory).
  void Prepare(PhysicalMemory& phys);

  // Called at the top of every epoch, in serial order: starts/ends pressure
  // episodes (hoarding/releasing large blocks on a node), rotates pins under
  // churn, and ages promotion backoffs.
  void BeginEpoch(int epoch, PhysicalMemory& phys);

  // Injection points, each consulted at exactly one serial site. A true
  // return means "this operation fails now"; counters are bumped here so
  // callers only handle the degradation path.
  //
  // Before AllocOnNode(order >= 9). `order` is the requested buddy order:
  // 9 (2MB, the default — every pre-1GB call site) keeps the historical
  // rate; 18 (1GB) multiplies it — an order-18 reservation needs 512
  // contiguous 2MB runs, so any fragmentation pressure that occasionally
  // denies a 2MB block almost always denies a 1GB one. One Bernoulli draw
  // either way, so the schedule stays aligned across page sizes.
  bool FailLargeAlloc(int node, int order = 9);
  // Before each page move; `order` is the page's buddy order (0 = 4KB,
  // 9 = 2MB, 18 = 1GB), which selects the 4KB vs large-page failure rate;
  // 1GB moves fail more often still (target-node order-18 contiguity).
  bool FailMigration(int to_node, int order);
  bool FailSplit();  // before each 2MB demotion

  // Partial completion: how many of `planned` migrations this epoch's plan
  // is actually allowed to attempt. Returns `planned` unless the schedule
  // truncates it.
  std::size_t PlanBudget(std::size_t planned);

  // Promotion retry/backoff: a window whose 2MB allocation failed backs off
  // for a doubling number of epochs (4, 8, ... capped) before khugepaged or
  // the repromote path may try it again.
  void ArmPromoteBackoff(Addr window_base);
  bool InPromoteBackoff(Addr window_base) const;

  bool NodeUnderPressure(int node) const;

  const FaultCounters& counters() const { return counters_; }

 private:
  void EnsureNodes(int num_nodes);
  void RotatePins(PhysicalMemory& phys);

  FaultProfile profile_;
  Rng rng_;

  // Effective rates (fractions, not percentages), resolved from the profile
  // defaults and any explicit overrides at construction.
  double pin_rate_ = 0.0;       // fraction of 2MB chunks pinned at Prepare
  double alloc_fail_p_ = 0.0;   // extra probabilistic huge-alloc failure
  double migrate_fail_p_ = 0.0; // per-page 4KB migration failure
  double large_migrate_fail_p_ = 0.0;  // per-page 2MB+ migration failure
  double pressure_enter_p_ = 0.0;  // per-node per-epoch episode entry
  double truncate_p_ = 0.0;     // per-epoch plan truncation
  bool churn_ = false;          // rotate pins while running

  // Per-node state (index = node id), sized on first contact with phys.
  std::vector<std::vector<Pfn>> pins_;    // pinned order-0 frames
  std::vector<std::vector<Pfn>> hoard_;   // order-9 blocks held by an episode
  std::vector<int> pressure_until_;       // epoch the episode ends (-1 = none)

  // window base -> epochs of backoff remaining, and the last armed length
  // (doubles on repeated failure).
  FlatMap<Addr, int> backoff_remaining_;
  FlatMap<Addr, int> backoff_len_;

  FaultCounters counters_;
};

}  // namespace numalp

#endif  // NUMALP_SRC_CORE_FAULTS_H_
