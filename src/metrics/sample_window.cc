#include "src/metrics/sample_window.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace numalp {

SampleWindow::SampleWindow(std::size_t max_epochs, bool reference, ProfileMode mode,
                           const ProfileSketchConfig& sketch)
    : max_epochs_(max_epochs),
      reference_(reference),
      mode_(reference ? ProfileMode::kExact : mode) {
  assert(max_epochs_ > 0);
  if (mode_ == ProfileMode::kSketch) {
    admit_threshold_ = sketch.admit_threshold;
    filter_ = CuckooFilter(static_cast<std::size_t>(sketch.filter_capacity));
    sketch_ = CountSketch(sketch.sketch_rows, sketch.sketch_width);
    scratch_presketch_ = CountSketch(sketch.sketch_rows, sketch.sketch_width);
  }
}

void SampleWindow::Apply(const IbsSample& sample, int direction) {
  const Addr base = AlignDown(sample.va, kBytes4K);
  if (direction > 0) {
    PageAgg& agg = window_4k_[base];
    agg.total += 1;
    agg.dram += sample.dram ? 1u : 0u;
    agg.req_node_counts[sample.req_node] += 1;
    std::uint32_t& core_count = core_counts_[CoreCountKey(base, sample.core)];
    if (core_count++ == 0) {
      agg.core_mask |= 1ull << (sample.core % 64);
    }
    return;
  }
  PageAgg* agg = window_4k_.Find(base);
  assert(agg != nullptr && agg->total > 0);
  agg->total -= 1;
  agg->dram -= sample.dram ? 1u : 0u;
  agg->req_node_counts[sample.req_node] -= 1;
  const std::uint64_t core_key = CoreCountKey(base, sample.core);
  std::uint32_t* core_count = core_counts_.Find(core_key);
  assert(core_count != nullptr && *core_count > 0);
  if (--*core_count == 0) {
    core_counts_.Erase(core_key);
    agg->core_mask &= ~(1ull << (sample.core % 64));
  }
  if (agg->total == 0) {
    assert(agg->core_mask == 0);
    window_4k_.Erase(base);
  }
}

void SampleWindow::ApplySketched(const IbsSample& sample, std::span<const IbsSample> epoch,
                                 std::size_t index, const CountSketch& presketch) {
  const Addr base = AlignDown(sample.va, kBytes4K);
  if (window_4k_.Find(base) != nullptr) {
    Apply(sample, +1);
    return;
  }
  // Admission estimate: live tracked samples from prior epochs plus *all* of
  // this epoch's samples for the page (the presketch makes admission eager —
  // a page destined to cross the threshold this epoch is admitted at its
  // first sample, so its epoch-end aggregate equals exact mode's). Both
  // sketches only ever overestimate, which admits early — toward exact
  // behavior, never away from it.
  if (sketch_.Estimate(base) + presketch.Estimate(base) >= admit_threshold_) {
    AdmitPage(base, epoch, index);
    Apply(sample, +1);
    return;
  }
  if (filter_.Insert(base)) {
    sketch_.Add(base, +1);
  } else {
    // Filter full: the sample stays live but untracked. Count it — the
    // divergence regression asserts this counter — and remember that
    // admissions can no longer trust the filter to witness emptiness.
    ++admission_misses_;
    ++missed_live_;
  }
}

void SampleWindow::AdmitPage(Addr base, std::span<const IbsSample> epoch, std::size_t prefix) {
  std::int32_t purged = 0;
  while (filter_.Erase(base)) {
    ++purged;
  }
  if (purged > 0) {
    sketch_.Add(base, -purged);
  }
  // Reconstruct the page's exact aggregate by scanning the raw window.
  // Skip the scan when provably nothing is live for this page: the purge
  // found no filter occurrences and no sample anywhere went untracked. At
  // admit_threshold 1 this always holds (pages admit on their very first
  // sample), which keeps the identity path O(1) per sample.
  if (purged == 0 && missed_live_ == 0) {
    return;
  }
  // The scan re-applies with the same commutative integer ops incremental
  // maintenance uses, so the rebuilt aggregate is bit-equal to what exact
  // mode holds — and it heals samples the full filter failed to track.
  for (const auto& epoch_samples : epochs_) {
    for (const IbsSample& sample : epoch_samples) {
      if (AlignDown(sample.va, kBytes4K) == base) {
        Apply(sample, +1);
      }
    }
  }
  for (std::size_t i = 0; i < prefix; ++i) {
    if (AlignDown(epoch[i].va, kBytes4K) == base) {
      Apply(epoch[i], +1);
    }
  }
}

void SampleWindow::RetireSketched(const IbsSample& sample) {
  const Addr base = AlignDown(sample.va, kBytes4K);
  PageAgg* agg = window_4k_.Find(base);
  if (agg == nullptr) {
    // Retiring a sample of a never-admitted page: return its slot. A failed
    // erase means the occurrence was lost — either this sample missed the
    // full filter, or fingerprint aliasing let another page's purge take it
    // — so settle the miss debt instead.
    if (filter_.Erase(base)) {
      sketch_.Add(base, -1);
    } else if (missed_live_ > 0) {
      --missed_live_;
    }
    return;
  }
  // Admitted page: Apply(sample, -1) with saturation in place of the exact
  // mode's asserts. Under filter exhaustion a page admits with whatever
  // samples the scan could see, and the retirement stream may then
  // over-deliver; decrements must clamp, not wrap.
  if (agg->total > 0) {
    agg->total -= 1;
  }
  if (sample.dram && agg->dram > 0) {
    agg->dram -= 1;
  }
  if (agg->req_node_counts[sample.req_node] > 0) {
    agg->req_node_counts[sample.req_node] -= 1;
  }
  const std::uint64_t core_key = CoreCountKey(base, sample.core);
  if (std::uint32_t* core_count = core_counts_.Find(core_key)) {
    if (--*core_count == 0) {
      core_counts_.Erase(core_key);
      agg->core_mask &= ~(1ull << (sample.core % 64));
    }
  }
  if (agg->total == 0) {
    window_4k_.Erase(base);
    retired_pages_.push_back(base);
  }
}

void SampleWindow::Clear() {
  epochs_.clear();
  window_4k_.clear();
  core_counts_.clear();
  ref_window_4k_.clear();
  ref_4k_valid_ = false;
  filter_.Clear();
  sketch_.Reset();
  retired_pages_.clear();
  missed_live_ = 0;
}

void SampleWindow::PushEpoch(std::vector<IbsSample> samples, const CountSketch* presketch) {
  ref_4k_valid_ = false;
  retired_pages_.clear();
  if (!reference_) {
    if (mode_ == ProfileMode::kSketch) {
      const CountSketch* pre = presketch;
      if (pre == nullptr) {
        scratch_presketch_.Reset();
        for (const IbsSample& sample : samples) {
          scratch_presketch_.Add(AlignDown(sample.va, kBytes4K), +1);
        }
        pre = &scratch_presketch_;
      }
      const std::span<const IbsSample> epoch(samples);
      for (std::size_t i = 0; i < samples.size(); ++i) {
        ApplySketched(samples[i], epoch, i, *pre);
      }
    } else {
      for (const IbsSample& sample : samples) {
        Apply(sample, +1);
      }
    }
  }
  epochs_.push_back(std::move(samples));
  if (epochs_.size() > max_epochs_) {
    if (!reference_) {
      for (const IbsSample& sample : epochs_.front()) {
        if (mode_ == ProfileMode::kSketch) {
          RetireSketched(sample);
        } else {
          Apply(sample, -1);
        }
      }
    }
    epochs_.pop_front();
  }
  peak_4k_entries_ = std::max(peak_4k_entries_, window_4k_.size());
  peak_core_entries_ = std::max(peak_core_entries_, core_counts_.size());
}

PageAggMap SampleWindow::FoldToMapping(const AddressSpace& address_space) const {
  if (reference_) {
    // The seed engine's computation, verbatim: concatenate every epoch and
    // aggregate from scratch (the wall-clock and bit-identity baseline).
    std::vector<IbsSample> samples;
    for (const auto& epoch_samples : epochs_) {
      samples.insert(samples.end(), epoch_samples.begin(), epoch_samples.end());
    }
    return AggregateSamples(samples, address_space, AggGranularity::kMapping);
  }
  // Fold in ascending 4KB-base order: containing mappings are disjoint and
  // ordered, so the folded map's dense storage comes out ascending too —
  // ForEachPageSorted's linear fast path engages for every decision pass,
  // and consecutive 4KB bases share a mapping, so the translate cache turns
  // most translations into a range check. The fold *contents* are
  // order-independent (integer merges); only the storage order changes.
  std::vector<const PageAggMap::Item*> order;
  order.reserve(window_4k_.size());
  for (const auto& item : window_4k_) {
    order.push_back(&item);
  }
  std::sort(order.begin(), order.end(),
            [](const PageAggMap::Item* a, const PageAggMap::Item* b) {
              return a->first < b->first;
            });
  PageAggMap folded;
  AddressSpace::TranslationCache cache;
  for (const PageAggMap::Item* item : order) {
    const auto& [base, agg] = *item;
    const auto mapping = address_space.Translate(base, cache);
    if (!mapping.has_value()) {
      continue;  // page was unmapped since sampling: reference drops it too
    }
    PageAgg& out = folded[mapping->page_base];
    out.size = mapping->size;
    out.home_node = mapping->node;
    out.total += agg.total;
    out.dram += agg.dram;
    out.core_mask |= agg.core_mask;
    for (int n = 0; n < kMaxNodes; ++n) {
      out.req_node_counts[static_cast<std::size_t>(n)] +=
          agg.req_node_counts[static_cast<std::size_t>(n)];
    }
  }
  return folded;
}

const FlatMap<Addr, PageAgg>& SampleWindow::Map4K() const {
  if (!reference_) {
    return window_4k_;
  }
  if (!ref_4k_valid_) {
    // Rebuild from the raw epochs: the same integer sums Apply maintains
    // incrementally (a full rebuild ORs core bits directly — no retirement
    // bookkeeping needed — and produces the identical mask).
    ref_window_4k_.clear();
    for (const auto& epoch_samples : epochs_) {
      for (const IbsSample& sample : epoch_samples) {
        PageAgg& agg = ref_window_4k_[AlignDown(sample.va, kBytes4K)];
        agg.total += 1;
        agg.dram += sample.dram ? 1u : 0u;
        agg.req_node_counts[sample.req_node] += 1;
        agg.core_mask |= 1ull << (sample.core % 64);
      }
    }
    ref_4k_valid_ = true;
  }
  return ref_window_4k_;
}

namespace {

// Invokes fn(agg) for every sampled 4KB piece in [base, base + bytes).
// Narrow ranges (a 4KB or 2MB piece) probe per page; ranges wider than the
// window's population (a 1GB candidate over a sparse window) iterate the
// sampled pieces instead, so the cost is O(min(range pages, sampled
// pieces)). The consumers below compute commutative integer sums or
// existence, so the visit order difference cannot change their results.
template <typename Fn>
void ForEach4KIn(const FlatMap<Addr, PageAgg>& map, Addr base, std::uint64_t bytes, Fn&& fn) {
  if (bytes / kBytes4K > map.size()) {
    for (const auto& [page, agg] : map) {
      if (page >= base && page - base < bytes) {
        fn(agg);
      }
    }
    return;
  }
  for (Addr p = base; p < base + bytes; p += kBytes4K) {
    if (const PageAgg* agg = map.Find(p)) {
      fn(*agg);
    }
  }
}

}  // namespace

std::optional<int> SampleWindow::MajorityReqNodeIn(Addr base, std::uint64_t bytes,
                                                   std::uint64_t min_samples) const {
  std::array<std::uint64_t, kMaxNodes> counts{};
  std::uint64_t total = 0;
  ForEach4KIn(Map4K(), base, bytes, [&](const PageAgg& agg) {
    total += agg.total;
    for (int n = 0; n < kMaxNodes; ++n) {
      counts[static_cast<std::size_t>(n)] += agg.req_node_counts[static_cast<std::size_t>(n)];
    }
  });
  if (total < min_samples || total == 0) {
    return std::nullopt;
  }
  int best = 0;
  for (int n = 1; n < kMaxNodes; ++n) {
    if (counts[static_cast<std::size_t>(n)] > counts[static_cast<std::size_t>(best)]) {
      best = n;
    }
  }
  return best;
}

double SampleWindow::PieceLocalityPctIn(Addr base, std::uint64_t bytes) const {
  std::uint64_t majority = 0;
  std::uint64_t total = 0;
  ForEach4KIn(Map4K(), base, bytes, [&](const PageAgg& agg) {
    std::uint32_t piece_majority = 0;
    std::uint64_t piece_total = 0;
    for (int n = 0; n < kMaxNodes; ++n) {
      const std::uint32_t count = agg.req_node_counts[static_cast<std::size_t>(n)];
      piece_majority = std::max(piece_majority, count);
      piece_total += count;
    }
    majority += piece_majority;
    total += piece_total;
  });
  if (total == 0) {
    return -1.0;
  }
  return 100.0 * static_cast<double>(majority) / static_cast<double>(total);
}

bool SampleWindow::HasSamplesIn(Addr base, std::uint64_t bytes) const {
  bool any = false;
  ForEach4KIn(Map4K(), base, bytes, [&](const PageAgg& agg) {
    any = any || agg.total > 0;
  });
  return any;
}

std::size_t SampleWindow::peak_state_bytes() const {
  // Storage cost per aggregate entry: the dense item plus one index slot —
  // the same flat-map layout in both modes, so the exact-vs-sketch ratio is
  // apples to apples.
  const std::size_t agg_entry =
      sizeof(FlatMap<Addr, PageAgg>::Item) + sizeof(std::uint32_t);
  const std::size_t core_entry =
      sizeof(FlatMap<std::uint64_t, std::uint32_t>::Item) + sizeof(std::uint32_t);
  return peak_4k_entries_ * agg_entry + peak_core_entries_ * core_entry +
         filter_.bytes() + sketch_.bytes();
}

std::span<const IbsSample> SampleWindow::latest_samples() const {
  if (epochs_.empty()) {
    return {};
  }
  return std::span<const IbsSample>(epochs_.back());
}

}  // namespace numalp
