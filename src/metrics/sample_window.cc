#include "src/metrics/sample_window.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace numalp {

SampleWindow::SampleWindow(std::size_t max_epochs, bool reference)
    : max_epochs_(max_epochs), reference_(reference) {
  assert(max_epochs_ > 0);
}

void SampleWindow::Apply(const IbsSample& sample, int direction) {
  const Addr base = AlignDown(sample.va, kBytes4K);
  if (direction > 0) {
    PageAgg& agg = window_4k_[base];
    agg.total += 1;
    agg.dram += sample.dram ? 1u : 0u;
    agg.req_node_counts[sample.req_node] += 1;
    std::uint32_t& core_count = core_counts_[CoreCountKey(base, sample.core)];
    if (core_count++ == 0) {
      agg.core_mask |= 1ull << (sample.core % 64);
    }
    return;
  }
  PageAgg* agg = window_4k_.Find(base);
  assert(agg != nullptr && agg->total > 0);
  agg->total -= 1;
  agg->dram -= sample.dram ? 1u : 0u;
  agg->req_node_counts[sample.req_node] -= 1;
  const std::uint64_t core_key = CoreCountKey(base, sample.core);
  std::uint32_t* core_count = core_counts_.Find(core_key);
  assert(core_count != nullptr && *core_count > 0);
  if (--*core_count == 0) {
    core_counts_.Erase(core_key);
    agg->core_mask &= ~(1ull << (sample.core % 64));
  }
  if (agg->total == 0) {
    assert(agg->core_mask == 0);
    window_4k_.Erase(base);
  }
}

void SampleWindow::Clear() {
  epochs_.clear();
  window_4k_.clear();
  core_counts_.clear();
  ref_window_4k_.clear();
  ref_4k_valid_ = false;
}

void SampleWindow::PushEpoch(std::vector<IbsSample> samples) {
  ref_4k_valid_ = false;
  if (!reference_) {
    for (const IbsSample& sample : samples) {
      Apply(sample, +1);
    }
  }
  epochs_.push_back(std::move(samples));
  if (epochs_.size() > max_epochs_) {
    if (!reference_) {
      for (const IbsSample& sample : epochs_.front()) {
        Apply(sample, -1);
      }
    }
    epochs_.pop_front();
  }
}

PageAggMap SampleWindow::FoldToMapping(const AddressSpace& address_space) const {
  if (reference_) {
    // The seed engine's computation, verbatim: concatenate every epoch and
    // aggregate from scratch (the wall-clock and bit-identity baseline).
    std::vector<IbsSample> samples;
    for (const auto& epoch_samples : epochs_) {
      samples.insert(samples.end(), epoch_samples.begin(), epoch_samples.end());
    }
    return AggregateSamples(samples, address_space, AggGranularity::kMapping);
  }
  // Fold in ascending 4KB-base order: containing mappings are disjoint and
  // ordered, so the folded map's dense storage comes out ascending too —
  // ForEachPageSorted's linear fast path engages for every decision pass,
  // and consecutive 4KB bases share a mapping, so the translate cache turns
  // most translations into a range check. The fold *contents* are
  // order-independent (integer merges); only the storage order changes.
  std::vector<const PageAggMap::Item*> order;
  order.reserve(window_4k_.size());
  for (const auto& item : window_4k_) {
    order.push_back(&item);
  }
  std::sort(order.begin(), order.end(),
            [](const PageAggMap::Item* a, const PageAggMap::Item* b) {
              return a->first < b->first;
            });
  PageAggMap folded;
  AddressSpace::TranslationCache cache;
  for (const PageAggMap::Item* item : order) {
    const auto& [base, agg] = *item;
    const auto mapping = address_space.Translate(base, cache);
    if (!mapping.has_value()) {
      continue;  // page was unmapped since sampling: reference drops it too
    }
    PageAgg& out = folded[mapping->page_base];
    out.size = mapping->size;
    out.home_node = mapping->node;
    out.total += agg.total;
    out.dram += agg.dram;
    out.core_mask |= agg.core_mask;
    for (int n = 0; n < kMaxNodes; ++n) {
      out.req_node_counts[static_cast<std::size_t>(n)] +=
          agg.req_node_counts[static_cast<std::size_t>(n)];
    }
  }
  return folded;
}

const FlatMap<Addr, PageAgg>& SampleWindow::Map4K() const {
  if (!reference_) {
    return window_4k_;
  }
  if (!ref_4k_valid_) {
    // Rebuild from the raw epochs: the same integer sums Apply maintains
    // incrementally (a full rebuild ORs core bits directly — no retirement
    // bookkeeping needed — and produces the identical mask).
    ref_window_4k_.clear();
    for (const auto& epoch_samples : epochs_) {
      for (const IbsSample& sample : epoch_samples) {
        PageAgg& agg = ref_window_4k_[AlignDown(sample.va, kBytes4K)];
        agg.total += 1;
        agg.dram += sample.dram ? 1u : 0u;
        agg.req_node_counts[sample.req_node] += 1;
        agg.core_mask |= 1ull << (sample.core % 64);
      }
    }
    ref_4k_valid_ = true;
  }
  return ref_window_4k_;
}

namespace {

// Invokes fn(agg) for every sampled 4KB piece in [base, base + bytes).
// Narrow ranges (a 4KB or 2MB piece) probe per page; ranges wider than the
// window's population (a 1GB candidate over a sparse window) iterate the
// sampled pieces instead, so the cost is O(min(range pages, sampled
// pieces)). Both consumers below compute commutative integer sums, so the
// visit order difference cannot change their results.
template <typename Fn>
void ForEach4KIn(const FlatMap<Addr, PageAgg>& map, Addr base, std::uint64_t bytes, Fn&& fn) {
  if (bytes / kBytes4K > map.size()) {
    for (const auto& [page, agg] : map) {
      if (page >= base && page - base < bytes) {
        fn(agg);
      }
    }
    return;
  }
  for (Addr p = base; p < base + bytes; p += kBytes4K) {
    if (const PageAgg* agg = map.Find(p)) {
      fn(*agg);
    }
  }
}

}  // namespace

std::optional<int> SampleWindow::MajorityReqNodeIn(Addr base, std::uint64_t bytes,
                                                   std::uint64_t min_samples) const {
  std::array<std::uint64_t, kMaxNodes> counts{};
  std::uint64_t total = 0;
  ForEach4KIn(Map4K(), base, bytes, [&](const PageAgg& agg) {
    total += agg.total;
    for (int n = 0; n < kMaxNodes; ++n) {
      counts[static_cast<std::size_t>(n)] += agg.req_node_counts[static_cast<std::size_t>(n)];
    }
  });
  if (total < min_samples || total == 0) {
    return std::nullopt;
  }
  int best = 0;
  for (int n = 1; n < kMaxNodes; ++n) {
    if (counts[static_cast<std::size_t>(n)] > counts[static_cast<std::size_t>(best)]) {
      best = n;
    }
  }
  return best;
}

double SampleWindow::PieceLocalityPctIn(Addr base, std::uint64_t bytes) const {
  std::uint64_t majority = 0;
  std::uint64_t total = 0;
  ForEach4KIn(Map4K(), base, bytes, [&](const PageAgg& agg) {
    std::uint32_t piece_majority = 0;
    std::uint64_t piece_total = 0;
    for (int n = 0; n < kMaxNodes; ++n) {
      const std::uint32_t count = agg.req_node_counts[static_cast<std::size_t>(n)];
      piece_majority = std::max(piece_majority, count);
      piece_total += count;
    }
    majority += piece_majority;
    total += piece_total;
  });
  if (total == 0) {
    return -1.0;
  }
  return 100.0 * static_cast<double>(majority) / static_cast<double>(total);
}

std::span<const IbsSample> SampleWindow::latest_samples() const {
  if (epochs_.empty()) {
    return {};
  }
  return std::span<const IbsSample>(epochs_.back());
}

}  // namespace numalp
