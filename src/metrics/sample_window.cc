#include "src/metrics/sample_window.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace numalp {

SampleWindow::SampleWindow(std::size_t max_epochs, bool reference)
    : max_epochs_(max_epochs), reference_(reference) {
  assert(max_epochs_ > 0);
}

void SampleWindow::Apply(const IbsSample& sample, int direction) {
  const Addr base = AlignDown(sample.va, kBytes4K);
  if (direction > 0) {
    PageAgg& agg = window_4k_[base];
    agg.total += 1;
    agg.dram += sample.dram ? 1u : 0u;
    agg.req_node_counts[sample.req_node] += 1;
    std::uint32_t& core_count = core_counts_[CoreCountKey(base, sample.core)];
    if (core_count++ == 0) {
      agg.core_mask |= 1ull << (sample.core % 64);
    }
    return;
  }
  PageAgg* agg = window_4k_.Find(base);
  assert(agg != nullptr && agg->total > 0);
  agg->total -= 1;
  agg->dram -= sample.dram ? 1u : 0u;
  agg->req_node_counts[sample.req_node] -= 1;
  const std::uint64_t core_key = CoreCountKey(base, sample.core);
  std::uint32_t* core_count = core_counts_.Find(core_key);
  assert(core_count != nullptr && *core_count > 0);
  if (--*core_count == 0) {
    core_counts_.Erase(core_key);
    agg->core_mask &= ~(1ull << (sample.core % 64));
  }
  if (agg->total == 0) {
    assert(agg->core_mask == 0);
    window_4k_.Erase(base);
  }
}

void SampleWindow::Clear() {
  epochs_.clear();
  window_4k_.clear();
  core_counts_.clear();
}

void SampleWindow::PushEpoch(std::vector<IbsSample> samples) {
  if (!reference_) {
    for (const IbsSample& sample : samples) {
      Apply(sample, +1);
    }
  }
  epochs_.push_back(std::move(samples));
  if (epochs_.size() > max_epochs_) {
    if (!reference_) {
      for (const IbsSample& sample : epochs_.front()) {
        Apply(sample, -1);
      }
    }
    epochs_.pop_front();
  }
}

PageAggMap SampleWindow::FoldToMapping(const AddressSpace& address_space) const {
  if (reference_) {
    // The seed engine's computation, verbatim: concatenate every epoch and
    // aggregate from scratch (the wall-clock and bit-identity baseline).
    std::vector<IbsSample> samples;
    for (const auto& epoch_samples : epochs_) {
      samples.insert(samples.end(), epoch_samples.begin(), epoch_samples.end());
    }
    return AggregateSamples(samples, address_space, AggGranularity::kMapping);
  }
  // Fold in ascending 4KB-base order: containing mappings are disjoint and
  // ordered, so the folded map's dense storage comes out ascending too —
  // ForEachPageSorted's linear fast path engages for every decision pass,
  // and consecutive 4KB bases share a mapping, so the translate cache turns
  // most translations into a range check. The fold *contents* are
  // order-independent (integer merges); only the storage order changes.
  std::vector<const PageAggMap::Item*> order;
  order.reserve(window_4k_.size());
  for (const auto& item : window_4k_) {
    order.push_back(&item);
  }
  std::sort(order.begin(), order.end(),
            [](const PageAggMap::Item* a, const PageAggMap::Item* b) {
              return a->first < b->first;
            });
  PageAggMap folded;
  AddressSpace::TranslationCache cache;
  for (const PageAggMap::Item* item : order) {
    const auto& [base, agg] = *item;
    const auto mapping = address_space.Translate(base, cache);
    if (!mapping.has_value()) {
      continue;  // page was unmapped since sampling: reference drops it too
    }
    PageAgg& out = folded[mapping->page_base];
    out.size = mapping->size;
    out.home_node = mapping->node;
    out.total += agg.total;
    out.dram += agg.dram;
    out.core_mask |= agg.core_mask;
    for (int n = 0; n < kMaxNodes; ++n) {
      out.req_node_counts[static_cast<std::size_t>(n)] +=
          agg.req_node_counts[static_cast<std::size_t>(n)];
    }
  }
  return folded;
}

std::span<const IbsSample> SampleWindow::latest_samples() const {
  if (epochs_.empty()) {
    return {};
  }
  return std::span<const IbsSample>(epochs_.back());
}

}  // namespace numalp
