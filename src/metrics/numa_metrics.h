// The paper's NUMA measurement vocabulary, computed from hardware counters
// and IBS samples:
//   LAR        local access ratio: % of DRAM accesses serviced by the
//              requesting core's node (Section 2.2).
//   Imbalance  stddev of per-controller request rates, % of mean.
//   PAMUP      % of (DRAM-sampled) accesses going to the most-used page.
//   NHP        number of hot pages: pages with > 6% of total accesses
//              (Section 3.1, footnote 3).
//   PSP        % of accesses to pages touched by >= 2 threads.
//   plus the conservative component's inputs: fraction of L2 misses caused
//   by page-table walks, and the max per-core share of time spent in the
//   page-fault handler.
#ifndef NUMALP_SRC_METRICS_NUMA_METRICS_H_
#define NUMALP_SRC_METRICS_NUMA_METRICS_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/units.h"
#include "src/hw/counters.h"
#include "src/hw/ibs.h"
#include "src/vm/address_space.h"

namespace numalp {

inline constexpr int kMaxNodes = 16;
inline constexpr double kHotPageSharePct = 6.0;

// Granularity at which samples are folded into pages.
enum class AggGranularity {
  kMapping,  // the page size actually backing the address (what the OS sees)
  k4K,       // force 4KB pages (the "what if we split" view)
  k2M,       // force 2MB windows
};

struct PageAgg {
  std::array<std::uint32_t, kMaxNodes> req_node_counts{};
  std::uint64_t total = 0;
  std::uint64_t dram = 0;
  std::uint64_t core_mask = 0;  // bitmask of cores that touched the page
  int home_node = -1;           // current physical placement (-1 if unmapped)
  PageSize size = PageSize::k4K;

  int DistinctNodes() const;
  // Node issuing most sampled accesses to this page.
  int MajorityReqNode() const;
  // Share of the sampled accesses issued by the majority node, in percent
  // (100 when the page has no samples).
  double MajorityReqSharePct() const;
  bool SingleNode() const { return DistinctNodes() == 1; }
  int SharerCount() const;
};

// Flat open-addressing map (src/common/flat_map.h): contiguous storage, no
// per-node allocation. Iteration order is deterministic but unspecified;
// decision code that consumes RNG or budgets while iterating must use
// ForEachPageSorted for the canonical ascending-address order (DESIGN.md
// Section 7), so results do not depend on map internals.
using PageAggMap = FlatMap<Addr, PageAgg>;

// Invokes fn(Addr, const PageAgg&) for every page in ascending address
// order. This is the iteration contract for every order-sensitive consumer
// (Carrefour planning, Carrefour-LP split selection): two maps with equal
// contents always produce the same visit sequence, whatever the insertion
// or erase history that built them. Skips the sort when the map's dense
// storage is already ascending (the window fold emits pages in address
// order, making this a linear scan in the steady state).
template <typename Fn>
void ForEachPageSorted(const PageAggMap& pages, Fn&& fn) {
  const auto ascending = [](const PageAggMap::Item& a, const PageAggMap::Item& b) {
    return a.first < b.first;
  };
  if (std::is_sorted(pages.begin(), pages.end(), ascending)) {
    for (const auto& item : pages) {
      fn(item.first, item.second);
    }
    return;
  }
  std::vector<const PageAggMap::Item*> order;
  order.reserve(pages.size());
  for (const auto& item : pages) {
    order.push_back(&item);
  }
  std::sort(order.begin(), order.end(),
            [](const PageAggMap::Item* a, const PageAggMap::Item* b) {
              return a->first < b->first;
            });
  for (const PageAggMap::Item* item : order) {
    fn(item->first, item->second);
  }
}

// Folds samples into per-page aggregates at the requested granularity.
// Samples for unmapped addresses are dropped.
PageAggMap AggregateSamples(std::span<const IbsSample> samples,
                            const AddressSpace& address_space, AggGranularity granularity);

struct NumaMetrics {
  double lar_pct = 0.0;
  double imbalance_pct = 0.0;
  double pamup_pct = 0.0;
  int nhp = 0;
  double psp_pct = 0.0;
  double walk_l2_miss_frac = 0.0;     // of all L2 misses
  double max_fault_time_share = 0.0;  // max over cores of fault cycles / wall
};

// LAR from counters (exact) plus sample-derived page metrics at the current
// mapping granularity. `epoch_wall` is the wall time the fault share is
// computed against.
NumaMetrics ComputeNumaMetrics(const EpochCounters& counters, const PageAggMap& pages,
                               Cycles epoch_wall);

// Individual helpers (used by tests and the estimators).
double LarPct(const EpochCounters& counters);
double ControllerImbalancePct(const EpochCounters& counters);
double WalkL2MissFraction(const EpochCounters& counters);
double MaxFaultTimeShare(const EpochCounters& counters, Cycles epoch_wall);
double PamupPct(const PageAggMap& pages);
int CountHotPages(const PageAggMap& pages, double threshold_pct = kHotPageSharePct);
double PspPct(const PageAggMap& pages);

}  // namespace numalp

#endif  // NUMALP_SRC_METRICS_NUMA_METRICS_H_
