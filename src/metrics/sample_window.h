// Epoch-incremental IBS sample window (the RunPolicies hot path).
//
// Policies act on a sliding window of epochs' samples. The seed engine
// re-concatenated and re-aggregated the whole window every epoch —
// O(window_epochs x samples_per_epoch) hash-and-translate work per epoch,
// quadratic over a run. SampleWindow keeps a running aggregate at 4KB
// granularity instead and updates it by adding the newest epoch and
// subtracting the oldest, so per-epoch cost is O(samples_per_epoch +
// distinct_pages) no matter how long the window is.
//
// 4KB is the one granularity that never re-buckets: every mapping-size page
// is a union of aligned 4KB windows, so splits, promotions and migrations
// leave the running aggregate untouched. The mapping-granularity view that
// the policies consume is derived on demand by FoldToMapping, which
// translates each 4KB base against the *current* address space — exactly
// what full re-aggregation computed, including the post-split re-bucketing
// path (just fold again after splitting).
//
// Sharer masks are ORs and cannot be subtracted, so the window additionally
// keeps a per-(page, core-bit) sample count; a bit clears when its count
// hits zero. All updates are integer-exact: FoldToMapping is bit-identical
// to AggregateSamples over the concatenated window (reference mode runs
// that very computation — tests/perf_structures_test.cc holds the two
// equal; SimConfig::reference_pipeline switches the whole engine over).
//
// ProfileMode::kSketch (DESIGN.md Section 11) puts a cuckoo-fingerprint
// filter + count-min sketch in front of the exact aggregate: a page's
// samples are tracked only as a filter occurrence + sketch increment until
// the page's estimated live sample count reaches the admission threshold,
// at which point its exact aggregate is reconstructed from the raw epochs
// (integer ops commute, so the reconstruction equals what incremental
// maintenance would have produced) and its filter entries are purged.
// Retiring an unadmitted sample erases its filter occurrence and decrements
// the sketch, so the front end holds state only for *live* unadmitted
// samples — O(sampled set), never O(touched footprint). At the default
// threshold of 1 every page admits on its first sample and the filter and
// sketch are never populated at all, which is why sketch mode is
// bit-identical to exact mode there (the identity-test contract).
#ifndef NUMALP_SRC_METRICS_SAMPLE_WINDOW_H_
#define NUMALP_SRC_METRICS_SAMPLE_WINDOW_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "src/common/count_sketch.h"
#include "src/common/cuckoo_filter.h"
#include "src/common/flat_map.h"
#include "src/core/config.h"
#include "src/hw/ibs.h"
#include "src/metrics/numa_metrics.h"
#include "src/vm/address_space.h"

namespace numalp {

class SampleWindow {
 public:
  // `max_epochs`: sliding-window length (the safety cap; Carrefour's kernel
  // module never resets its per-page statistics). `reference`: keep only the
  // raw per-epoch sample lists and make FoldToMapping re-aggregate the whole
  // window from scratch — the seed engine's behavior, preserved as the
  // bit-identity oracle and wall-clock baseline; it always profiles exactly
  // (`mode` is ignored), since it holds no incremental state to bound.
  explicit SampleWindow(std::size_t max_epochs, bool reference = false,
                        ProfileMode mode = ProfileMode::kExact,
                        const ProfileSketchConfig& sketch = {});

  // Appends one epoch of samples and retires the oldest epoch once more
  // than `max_epochs` are held (matching the seed's push-then-trim order).
  // In sketch mode `presketch` is the epoch's own sample-count sketch (every
  // sample of `samples` added at 4KB granularity) so the admission test sees
  // the whole epoch eagerly; pass nullptr to have the window build it
  // internally — the engine passes the one it accumulated during execution
  // to spare the extra pass.
  void PushEpoch(std::vector<IbsSample> samples,
                 const CountSketch* presketch = nullptr);

  // The mapping-granularity aggregate of every sample in the window,
  // translated against the current address space. Equal to
  // AggregateSamples(<concatenated window>, address_space, kMapping).
  PageAggMap FoldToMapping(const AddressSpace& address_space) const;

  // Empties the window — stored epochs, running aggregate, sharer counts,
  // and the sketch front end's live state (cumulative counters and
  // high-water marks persist). The engine calls this once, at the
  // setup→steady transition: the paper's benchmarks exclude initialization,
  // and a 60-epoch run would otherwise carry the first-touch storm's
  // cross-node samples in every policy decision for the rest of the run
  // (DESIGN.md Section 8).
  void Clear();

  // The most recently pushed epoch's samples (the per-iteration estimator
  // input; valid until the next PushEpoch).
  std::span<const IbsSample> latest_samples() const;

  // Majority requester node over the window's samples falling in
  // [base, base + bytes), summed at 4KB granularity — the split-time piece
  // placement query (DESIGN.md Section 8.4): pieces of a demoted shared page
  // land on the node that issued most of their sampled accesses. Ties go to
  // the lowest node (PageAgg::MajorityReqNode's convention); nullopt when the
  // range carries fewer than `min_samples` samples — a one-sample "majority"
  // is noise, and misplacing a piece costs a round trip. Identical in both
  // engines: the fast engine reads the running 4KB aggregate, the reference
  // engine folds its raw epochs to the same counts (lazily, cached until the
  // window changes).
  std::optional<int> MajorityReqNodeIn(Addr base, std::uint64_t bytes,
                                       std::uint64_t min_samples = 1) const;

  // Piece-level locality of [base, base + bytes): over the range's sampled
  // 4KB pieces, the percentage of samples issued by each piece's own
  // majority node (sum of per-piece majority counts / sum of totals). A
  // false-sharing window scores high — every piece is dominated by one
  // accessor — while a genuinely hot page (CG's reduction chunks, hammered
  // from every node) scores near 100/num_nodes. This is the hot-page
  // interleave-vs-localize discriminator (DESIGN.md Section 8.4). Returns
  // -1 when the range has no samples. Identical in both engines.
  double PieceLocalityPctIn(Addr base, std::uint64_t bytes) const;

  // True when any aggregated sample falls in [base, base + bytes) — the
  // Carrefour state-pruning probe (a fully retired 2MB window with no
  // remaining samples can forget its mirrored per-page statistics).
  bool HasSamplesIn(Addr base, std::uint64_t bytes) const;

  // 4KB bases whose aggregates were fully retired by the most recent
  // PushEpoch (sketch mode only; always empty in exact and reference
  // modes). The engine uses these to prune the mirrored Carrefour state so
  // long sparse runs don't accrete it.
  const std::vector<Addr>& retired_pages() const { return retired_pages_; }

  std::size_t epochs() const { return epochs_.size(); }
  // Distinct 4KB pages currently aggregated (0 in reference mode).
  std::size_t distinct_pages() const { return window_4k_.size(); }

  ProfileMode profile_mode() const { return mode_; }
  // Live unadmitted samples currently tracked by the fingerprint filter.
  std::size_t filter_occupancy() const { return filter_.size(); }
  // Samples that could not be tracked because the filter was full
  // (cumulative over the run — the graceful-degradation counter; 0 in
  // exact mode and whenever the filter is sized to the sampled set).
  std::uint64_t admission_misses() const { return admission_misses_; }
  // High-water mark of exact-aggregate entries (4KB aggregates +
  // per-(page, core-bit) counts), cumulative over the run.
  std::size_t peak_entries() const { return peak_4k_entries_ + peak_core_entries_; }
  // High-water tracked-state bytes: peak exact entries at their storage
  // cost plus the (fixed) filter + sketch budget — the number the
  // profile-sweep bench records for the state-reduction claim.
  std::size_t peak_state_bytes() const;

 private:
  // Running 4KB aggregate entry. home_node/size of PageAgg are not
  // maintained here (FoldToMapping re-derives both from the live mapping).
  void Apply(const IbsSample& sample, int direction);

  // Sketch-mode insert: admitted pages update exactly; unadmitted samples
  // park in the filter + sketch until the admission estimate (persistent
  // sketch + this epoch's presketch) crosses the threshold.
  void ApplySketched(const IbsSample& sample, std::span<const IbsSample> epoch,
                     std::size_t index, const CountSketch& presketch);

  // Purges the page's filter/sketch entries and reconstructs its exact
  // aggregate from the raw window (prior epochs plus the first `prefix`
  // samples of the epoch currently being pushed).
  void AdmitPage(Addr base, std::span<const IbsSample> epoch, std::size_t prefix);

  // Sketch-mode retirement of one oldest-epoch sample. Identical to
  // Apply(sample, -1) for healthily admitted pages, but saturates instead
  // of asserting — under filter exhaustion a page can be admitted with
  // fewer reconstructed samples than are truly live, and the retirement
  // stream then over-delivers.
  void RetireSketched(const IbsSample& sample);

  // The window's 4KB aggregate map (reference mode rebuilds its cached copy
  // from the raw epochs first).
  const FlatMap<Addr, PageAgg>& Map4K() const;

  static std::uint64_t CoreCountKey(Addr page_4k, int core) {
    return (page_4k >> kShift4K) << 6 | static_cast<std::uint64_t>(core % 64);
  }

  std::size_t max_epochs_;
  bool reference_;
  ProfileMode mode_;
  std::deque<std::vector<IbsSample>> epochs_;
  FlatMap<Addr, PageAgg> window_4k_;
  // Samples per (4KB page, core bit) — makes the OR'd core_mask retirable.
  FlatMap<std::uint64_t, std::uint32_t> core_counts_;
  // Reference mode's view of window_4k_, rebuilt from the raw epochs on
  // demand (invalidated by PushEpoch/Clear).
  mutable FlatMap<Addr, PageAgg> ref_window_4k_;
  mutable bool ref_4k_valid_ = false;

  // Sketch front end (allocated only in sketch mode; see file comment).
  std::uint64_t admit_threshold_ = 1;
  CuckooFilter filter_;
  CountSketch sketch_;
  CountSketch scratch_presketch_;
  std::vector<Addr> retired_pages_;
  std::uint64_t admission_misses_ = 0;
  // Live samples the filter had no room for. While nonzero, admissions
  // cannot trust "no filter entries" to mean "no live samples" and must
  // scan the raw window; an upper bound (reconstruction heals misses
  // without attribution), which only costs scans, never correctness.
  std::uint64_t missed_live_ = 0;
  std::size_t peak_4k_entries_ = 0;
  std::size_t peak_core_entries_ = 0;
};

}  // namespace numalp

#endif  // NUMALP_SRC_METRICS_SAMPLE_WINDOW_H_
