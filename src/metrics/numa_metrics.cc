#include "src/metrics/numa_metrics.h"

#include <algorithm>
#include <bit>

#include "src/common/stats.h"

namespace numalp {

int PageAgg::DistinctNodes() const {
  int distinct = 0;
  for (std::uint32_t c : req_node_counts) {
    if (c > 0) {
      ++distinct;
    }
  }
  return distinct;
}

int PageAgg::MajorityReqNode() const {
  int best = 0;
  for (int n = 1; n < kMaxNodes; ++n) {
    if (req_node_counts[static_cast<std::size_t>(n)] >
        req_node_counts[static_cast<std::size_t>(best)]) {
      best = n;
    }
  }
  return best;
}

double PageAgg::MajorityReqSharePct() const {
  std::uint64_t total_reqs = 0;
  for (std::uint32_t c : req_node_counts) {
    total_reqs += c;
  }
  if (total_reqs == 0) {
    return 100.0;
  }
  return 100.0 *
         static_cast<double>(
             req_node_counts[static_cast<std::size_t>(MajorityReqNode())]) /
         static_cast<double>(total_reqs);
}

int PageAgg::SharerCount() const { return std::popcount(core_mask); }

PageAggMap AggregateSamples(std::span<const IbsSample> samples,
                            const AddressSpace& address_space, AggGranularity granularity) {
  PageAggMap pages;
  // Samples arrive with strong page locality; the one-line cache turns the
  // common repeat-translation into a range check (identical results).
  AddressSpace::TranslationCache cache;
  for (const IbsSample& sample : samples) {
    Addr page_base = 0;
    PageSize size = PageSize::k4K;
    int home_node = -1;
    const auto mapping = address_space.Translate(sample.va, cache);
    if (!mapping.has_value()) {
      continue;  // page was unmapped between sampling and aggregation
    }
    switch (granularity) {
      case AggGranularity::kMapping:
        page_base = mapping->page_base;
        size = mapping->size;
        home_node = mapping->node;
        break;
      case AggGranularity::k4K: {
        page_base = AlignDown(sample.va, kBytes4K);
        size = PageSize::k4K;
        // Home of the constituent 4KB frame (inside a large page the block is
        // physically contiguous, so it is the large page's node).
        home_node = mapping->node;
        break;
      }
      case AggGranularity::k2M:
        page_base = AlignDown(sample.va, kBytes2M);
        size = PageSize::k2M;
        home_node = mapping->node;
        break;
    }
    PageAgg& agg = pages[page_base];
    agg.size = size;
    agg.home_node = home_node;
    ++agg.total;
    if (sample.dram) {
      ++agg.dram;
    }
    ++agg.req_node_counts[sample.req_node];
    if (sample.core < 64) {
      agg.core_mask |= 1ull << sample.core;
    } else {
      agg.core_mask |= 1ull << (sample.core % 64);
    }
  }
  return pages;
}

double LarPct(const EpochCounters& counters) {
  std::uint64_t local = 0;
  std::uint64_t total = 0;
  for (const auto& core : counters.cores) {
    local += core.dram_local;
    total += core.dram_accesses();
  }
  return total == 0 ? 100.0 : 100.0 * static_cast<double>(local) / static_cast<double>(total);
}

double ControllerImbalancePct(const EpochCounters& counters) {
  return ImbalancePct(std::span<const std::uint64_t>(counters.node_requests));
}

double WalkL2MissFraction(const EpochCounters& counters) {
  // L2 misses ~= DRAM-serviced data accesses + PTE fetches that missed L2.
  const std::uint64_t walk = counters.TotalWalkL2Miss();
  const std::uint64_t data = counters.TotalDram();
  const std::uint64_t total = walk + data;
  return total == 0 ? 0.0 : static_cast<double>(walk) / static_cast<double>(total);
}

double MaxFaultTimeShare(const EpochCounters& counters, Cycles epoch_wall) {
  if (epoch_wall == 0) {
    return 0.0;
  }
  double max_share = 0.0;
  for (const auto& core : counters.cores) {
    max_share = std::max(
        max_share, static_cast<double>(core.fault_cycles) / static_cast<double>(epoch_wall));
  }
  return max_share;
}

double PamupPct(const PageAggMap& pages) {
  std::uint64_t total = 0;
  std::uint64_t most_used = 0;
  for (const auto& [base, agg] : pages) {
    if (agg.dram == 0) {
      continue;  // the paper ignores pages never serviced from DRAM
    }
    total += agg.total;
    most_used = std::max<std::uint64_t>(most_used, agg.total);
  }
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(most_used) / static_cast<double>(total);
}

int CountHotPages(const PageAggMap& pages, double threshold_pct) {
  std::uint64_t total = 0;
  for (const auto& [base, agg] : pages) {
    if (agg.dram > 0) {
      total += agg.total;
    }
  }
  if (total == 0) {
    return 0;
  }
  int hot = 0;
  for (const auto& [base, agg] : pages) {
    if (agg.dram == 0) {
      continue;
    }
    const double share = 100.0 * static_cast<double>(agg.total) / static_cast<double>(total);
    if (share > threshold_pct) {
      ++hot;
    }
  }
  return hot;
}

double PspPct(const PageAggMap& pages) {
  std::uint64_t total = 0;
  std::uint64_t shared = 0;
  for (const auto& [base, agg] : pages) {
    if (agg.dram == 0) {
      continue;
    }
    total += agg.total;
    if (agg.SharerCount() >= 2) {
      shared += agg.total;
    }
  }
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(shared) / static_cast<double>(total);
}

NumaMetrics ComputeNumaMetrics(const EpochCounters& counters, const PageAggMap& pages,
                               Cycles epoch_wall) {
  NumaMetrics metrics;
  metrics.lar_pct = LarPct(counters);
  metrics.imbalance_pct = ControllerImbalancePct(counters);
  metrics.pamup_pct = PamupPct(pages);
  metrics.nhp = CountHotPages(pages);
  metrics.psp_pct = PspPct(pages);
  metrics.walk_l2_miss_frac = WalkL2MissFraction(counters);
  metrics.max_fault_time_share = MaxFaultTimeShare(counters, epoch_wall);
  return metrics;
}

}  // namespace numalp
