#include "src/hw/interconnect.h"

#include <algorithm>

namespace numalp {

std::vector<std::vector<Cycles>> InterconnectModel::RemoteLatencies(
    std::span<const std::uint64_t> incoming_remote) const {
  const int nodes = topo_.num_nodes();
  std::uint64_t total = 0;
  for (std::uint64_t r : incoming_remote) {
    total += r;
  }
  std::vector<double> factor(static_cast<std::size_t>(nodes), 1.0);
  if (total > 0) {
    for (int n = 0; n < nodes; ++n) {
      const double share = static_cast<double>(incoming_remote[static_cast<std::size_t>(n)]) /
                           static_cast<double>(total);
      const double over = std::max(0.0, share * static_cast<double>(nodes) - 1.0);
      factor[static_cast<std::size_t>(n)] =
          std::min(config_.max_factor, 1.0 + config_.congestion_weight * over);
    }
  }
  std::vector<std::vector<Cycles>> latency(
      static_cast<std::size_t>(nodes), std::vector<Cycles>(static_cast<std::size_t>(nodes), 0));
  for (int src = 0; src < nodes; ++src) {
    for (int dst = 0; dst < nodes; ++dst) {
      const double hops = static_cast<double>(topo_.Hops(src, dst));
      latency[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)] =
          static_cast<Cycles>(static_cast<double>(config_.per_hop) * hops *
                              factor[static_cast<std::size_t>(dst)]);
    }
  }
  return latency;
}

}  // namespace numalp
