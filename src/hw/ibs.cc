#include "src/hw/ibs.h"

namespace numalp {

IbsEngine::IbsEngine(int num_nodes, int num_cores, std::uint64_t interval, std::uint64_t seed)
    : interval_(interval == 0 ? 1 : interval) {
  stores_.resize(static_cast<std::size_t>(num_nodes));
  countdown_.resize(static_cast<std::size_t>(num_cores));
  Rng rng(seed);
  for (auto& c : countdown_) {
    c = 1 + rng.Uniform(interval_);  // staggered phases
  }
}

void IbsEngine::TakeSample(Addr va, int core, int req_node, int home_node, bool dram) {
  IbsSample sample;
  sample.va = va;
  sample.core = static_cast<std::uint16_t>(core);
  sample.req_node = static_cast<std::uint8_t>(req_node);
  sample.home_node = static_cast<std::uint8_t>(home_node);
  sample.dram = dram;
  stores_[static_cast<std::size_t>(req_node)].push_back(sample);
  ++total_samples_;
}

std::vector<IbsSample> IbsEngine::Drain() {
  std::vector<IbsSample> all;
  std::size_t total = 0;
  for (const auto& store : stores_) {
    total += store.size();
  }
  all.reserve(total);
  for (auto& store : stores_) {
    all.insert(all.end(), store.begin(), store.end());
    store.clear();
  }
  return all;
}

}  // namespace numalp
