// Instruction-Based Sampling engine.
//
// AMD IBS tags every Nth retired op and reports, for memory ops, the data
// virtual address, whether DRAM serviced the access, and which node did so.
// Carrefour consumes exactly that tuple. Samples land in per-node stores —
// the paper's fix for the lock-contention scalability problem they hit with
// a centralized store on the 64-core machine (Section 4.3).
#ifndef NUMALP_SRC_HW_IBS_H_
#define NUMALP_SRC_HW_IBS_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace numalp {

struct IbsSample {
  Addr va = 0;
  std::uint16_t core = 0;
  std::uint8_t req_node = 0;   // node of the core issuing the access
  std::uint8_t home_node = 0;  // node whose DRAM holds the page
  bool dram = false;           // serviced from DRAM (not a cache)
};

class IbsEngine {
 public:
  // One sample every `interval` observed accesses per core (deterministic
  // stride with a per-core phase so cores do not sample in lockstep).
  IbsEngine(int num_nodes, int num_cores, std::uint64_t interval, std::uint64_t seed);

  // Called for every simulated access; cheap counter decrement in the common
  // case (defined inline — this sits on the per-access hot path). Returns
  // true when the access was sampled.
  bool Observe(Addr va, int core, int req_node, int home_node, bool dram) {
    auto& countdown = countdown_[static_cast<std::size_t>(core)];
    if (--countdown > 0) {
      return false;
    }
    countdown = interval_;
    TakeSample(va, core, req_node, home_node, dram);
    return true;
  }

  // Direct access to one core's sampling countdown, for callers that batch
  // accesses and keep the counter in a register across the batch (the
  // engine's slice loop). Semantics are exactly Observe's: decrement per
  // access, sample (and reload with interval()) when it reaches zero.
  std::uint64_t& countdown(int core) { return countdown_[static_cast<std::size_t>(core)]; }

  // The rare sampled path, for batched callers (see countdown()).
  void Sample(Addr va, int core, int req_node, int home_node, bool dram) {
    TakeSample(va, core, req_node, home_node, dram);
  }

  // Samples collected since the last Drain, store-ordered per node.
  const std::vector<std::vector<IbsSample>>& stores() const { return stores_; }

  // Moves all samples out (policy runs once per epoch).
  std::vector<IbsSample> Drain();

  std::uint64_t interval() const { return interval_; }
  std::uint64_t total_samples() const { return total_samples_; }

 private:
  // The rare sampled path (store append), kept out of line.
  void TakeSample(Addr va, int core, int req_node, int home_node, bool dram);

  std::uint64_t interval_;
  std::vector<std::uint64_t> countdown_;  // per core
  std::vector<std::vector<IbsSample>> stores_;
  std::uint64_t total_samples_ = 0;
};

}  // namespace numalp

#endif  // NUMALP_SRC_HW_IBS_H_
