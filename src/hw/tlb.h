// Two-level set-associative TLB with separate L1 arrays per page size and a
// unified L2, modelled after the AMD family 10h/15h designs in the paper's
// testbeds. Entries carry the translation payload (PFN + home node) so the
// simulation engine can resolve a hit without touching the page table.
//
// Host-side layout: tags and payloads live in separate parallel arrays
// (structure-of-arrays), and set selection uses power-of-two masking when the
// configuration allows (all shipped configs do). On top of that the fast
// engine keeps two per-set summary words (DESIGN.md Section 9):
//
//  * a signature word — one byte per way, an 8-bit digest of the way's tag —
//    so a probe compares every way of a set in one word-parallel (SWAR)
//    sweep: XOR against the replicated probe signature, zero-byte detect,
//    then verify the (usually unique) candidate against the full tag. The
//    full tags stay authoritative; signatures only prune.
//  * an LRU word — one byte per way holding the way's recency rank
//    (0 = MRU … ways-1 = LRU), a permutation maintained word-parallel on
//    every touch — plus an occupancy bitmask, so victim selection is O(1):
//    lowest empty way when one exists, else the unique rank-(ways-1) way.
//
// Both are value-identical to the scalar reference: the rank permutation
// orders ways exactly as the reference's per-entry timestamps do (touch
// ticks are distinct within an array, so the timestamp minimum is unique and
// equals the rank maximum), and the occupancy mask reproduces the
// first-empty-way scan. The scalar probe loop and the timestamp LRU scan are
// kept verbatim as the reference engine (`Tlb(config, /*reference=*/true)`,
// selected by NUMALP_REFERENCE_PIPELINE=1), which also retires the
// timestamp-wrap hazard from the fast engine entirely — ranks are bounded,
// no tick counter exists to wrap. tests/perf_structures_test.cc churns both
// modes against each other and holds lookups, evictions and the live-entry
// bookkeeping identical.
#ifndef NUMALP_SRC_HW_TLB_H_
#define NUMALP_SRC_HW_TLB_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace numalp {

struct TlbConfig {
  // 64-entry L1 DTLB for 4KB pages (16 sets x 4 ways).
  int l1_4k_sets = 16;
  int l1_4k_ways = 4;
  // 32-entry L1 for 2MB pages.
  int l1_2m_sets = 8;
  int l1_2m_ways = 4;
  // 8-entry fully-associative array for 1GB pages.
  int l1_1g_sets = 1;
  int l1_1g_ways = 8;
  // 1024-entry unified L2 (4KB + 2MB; 1GB entries are not L2-cached,
  // matching the era's hardware).
  int l2_sets = 128;
  int l2_ways = 8;
};

enum class TlbHitLevel : std::uint8_t { kL1, kL2, kMiss };

struct TlbLookup {
  TlbHitLevel level = TlbHitLevel::kMiss;
  Pfn pfn = 0;       // valid when level != kMiss
  int node = 0;      // home NUMA node of the page
  PageSize size = PageSize::k4K;
};

// Live-entry bookkeeping snapshot (tests pin fast == reference on it).
struct TlbOccupancy {
  std::uint64_t live_4k = 0;
  std::uint64_t live_2m = 0;
  std::uint64_t live_1g = 0;
  std::uint64_t l2_parity_4k = 0;
  std::uint64_t l2_parity_2m = 0;

  bool operator==(const TlbOccupancy&) const = default;
};

class Tlb {
 public:
  // `reference` selects the scalar probe loop and timestamp-scan LRU (the
  // seed engine's algorithms); the default is the vectorized fast engine.
  // Both produce bit-identical lookups, evictions and counters.
  explicit Tlb(const TlbConfig& config, bool reference = false);

  // Probes all arrays in parallel (4KB / 2MB / 1GB VPNs).
  TlbLookup Lookup(Addr va);

  // Installs a translation in L1 (and L2 for 4KB/2MB).
  void Insert(Addr va, PageSize size, Pfn pfn, int node);

  // Precise shootdown of one page's translation (all arrays that could hold
  // it). This is what an OS TLB shootdown IPI does; flushing everything on
  // every policy action would overcharge policies by a full refill storm.
  void InvalidatePage(Addr page_base, PageSize size);

  // Ranged shootdown: drops every cached translation (any page size, both
  // levels) whose page overlaps [base, base + bytes). Equivalent to — and
  // far cheaper than — looping InvalidatePage over each constituent page:
  // one pass over the arrays instead of per-page probes. Batches the 512
  // stale 4KB invalidations a 2MB promotion broadcasts, and the piece-wise
  // storms after a hot-page split.
  void InvalidateRange(Addr base, std::uint64_t bytes);

  void FlushAll();

  std::uint64_t lookups() const { return lookups_; }

  TlbOccupancy DebugOccupancy() const {
    return TlbOccupancy{l1_4k_.live, l1_2m_.live, l1_1g_.live, l2_.live_parity[0],
                        l2_.live_parity[1]};
  }

 private:
  static constexpr std::uint64_t kInvalidTag = ~0ull;
  static constexpr std::size_t kNoEntry = ~static_cast<std::size_t>(0);
  static constexpr std::uint64_t kLoBytes = 0x0101010101010101ull;
  static constexpr std::uint64_t kHiBits = 0x8080808080808080ull;

  struct Payload {
    Pfn pfn = 0;
    std::uint32_t node = 0;
  };

  struct Array {
    int sets = 0;
    int ways = 0;
    // Set selection: hardware-style power-of-two masking when `sets` allows
    // it (every shipped TlbConfig does), falling back to modulo. The two are
    // value-identical for power-of-two set counts; the mask form keeps an
    // integer division out of the per-access probe loop.
    std::uint64_t set_mask = 0;
    bool pow2_sets = false;
    int sig_shift = 0;             // signature = byte of (tag >> sig_shift)
    std::uint64_t way_hi_bits = 0; // kHiBits restricted to the first `ways` bytes
    std::vector<std::uint64_t> tags;       // sets * ways, kInvalidTag = empty
    std::vector<Payload> payloads;         // parallel to tags
    std::vector<std::uint64_t> last_used;  // reference engine: LRU timestamps
    std::vector<std::uint64_t> sig;        // fast engine: per-set signature word
    std::vector<std::uint64_t> lru;        // fast engine: per-set rank word
    std::vector<std::uint8_t> occ;         // fast engine: per-set occupancy mask
    // Occupancy tracking: an array (or, for the unified L2, a tag-parity
    // class — bit 0 encodes the page size) with no live entries cannot hit,
    // so Lookup skips the probe entirely. Workloads touch one page size
    // almost exclusively, making half the probe work vanish.
    std::uint64_t live = 0;
    std::uint64_t live_parity[2] = {0, 0};

    void Init(int s, int w, bool reference);
    std::uint64_t SetIndex(std::uint64_t value) const {
      return pow2_sets ? (value & set_mask) : value % static_cast<std::uint64_t>(sets);
    }

    std::uint8_t Sig(std::uint64_t tag) const {
      return static_cast<std::uint8_t>(tag >> sig_shift);
    }

    // --- Reference engine: scalar probe and timestamp LRU ------------------
    // Index of `tag` within the set, or kNoEntry (first matching way).
    std::size_t Find(std::uint64_t tag, std::uint64_t set_index) const {
      const std::size_t base = set_index * static_cast<std::size_t>(ways);
      for (int w = 0; w < ways; ++w) {
        if (tags[base + static_cast<std::size_t>(w)] == tag) {
          return base + static_cast<std::size_t>(w);
        }
      }
      return kNoEntry;
    }
    void Install(std::uint64_t tag, std::uint64_t set_index, Pfn pfn, int node,
                 std::uint64_t tick);

    // --- Fast engine: SWAR probe and rank LRU ------------------------------
    // Bytes of `word` equal to `byte`, as a mask of their high bits (may
    // carry false positives directly above a true match — candidates are
    // verified against the full tags — but never false negatives).
    static std::uint64_t ByteEqMask(std::uint64_t word, std::uint8_t byte) {
      const std::uint64_t x = word ^ (kLoBytes * byte);
      return (x - kLoBytes) & ~x & kHiBits;
    }
    std::size_t FindFast(std::uint64_t tag, std::uint64_t set_index) const {
      std::uint64_t cand = ByteEqMask(sig[set_index], Sig(tag)) & way_hi_bits;
      const std::size_t base = set_index * static_cast<std::size_t>(ways);
      while (cand != 0) {
        const std::size_t w = static_cast<std::size_t>(__builtin_ctzll(cand)) >> 3;
        if (tags[base + w] == tag) {
          return base + w;
        }
        cand &= cand - 1;
      }
      return kNoEntry;
    }
    // Promotes way `w` to MRU: ranks below the way's current rank shift up
    // by one, word-parallel. Bytes past `ways` hold ranks >= ways forever
    // (they start there and can never be below a valid rank), so the update
    // never disturbs them.
    void TouchRank(std::uint64_t set_index, std::size_t w) {
      std::uint64_t word = lru[set_index];
      const std::uint64_t r = (word >> (8 * w)) & 0xFF;
      if (r == 0) {
        return;  // already MRU (the common repeated-hit case)
      }
      // Per-byte unsigned b < r (all ranks < 0x80): 0x80 + b - r keeps its
      // high bit exactly when b >= r, with no cross-byte borrow.
      const std::uint64_t lt = ~((word | kHiBits) - kLoBytes * r) & kHiBits;
      word += lt >> 7;
      word &= ~(0xFFull << (8 * w));
      lru[set_index] = word;
    }
    void InstallFast(std::uint64_t tag, std::uint64_t set_index, Pfn pfn, int node);

    void Flush();
  };

  TlbLookup LookupReference(Addr va);
  TlbLookup LookupFast(Addr va);

  bool reference_;
  Array l1_4k_;
  Array l1_2m_;
  Array l1_1g_;
  Array l2_;  // tag includes the page size
  std::uint64_t tick_ = 0;  // reference engine only
  std::uint64_t lookups_ = 0;
};


// Hot-path definitions (one Lookup per simulated access; inlined into the
// engine's access loop — behavior identical to the out-of-line form).
inline void Tlb::Array::Install(std::uint64_t tag, std::uint64_t set_index, Pfn pfn, int node,
                         std::uint64_t tick) {
  const std::size_t base = set_index * static_cast<std::size_t>(ways);
  std::size_t victim = base;
  for (int w = 0; w < ways; ++w) {
    const std::size_t at = base + static_cast<std::size_t>(w);
    if (tags[at] == kInvalidTag) {
      victim = at;
      break;
    }
    if (last_used[at] < last_used[victim]) {
      victim = at;
    }
  }
  if (tags[victim] == kInvalidTag) {
    ++live;
  } else {
    --live_parity[tags[victim] & 1];
  }
  ++live_parity[tag & 1];
  tags[victim] = tag;
  payloads[victim].pfn = pfn;
  payloads[victim].node = static_cast<std::uint32_t>(node);
  last_used[victim] = tick;
}

inline void Tlb::Array::InstallFast(std::uint64_t tag, std::uint64_t set_index, Pfn pfn,
                                    int node) {
  const std::uint8_t full = static_cast<std::uint8_t>((1u << ways) - 1);
  const std::uint8_t valid = occ[set_index];
  std::size_t w;
  if (valid != full) {
    // Same victim as the reference's scan: the lowest-index empty way.
    w = static_cast<std::size_t>(
        __builtin_ctz(static_cast<unsigned>(~valid & full)));
    occ[set_index] = static_cast<std::uint8_t>(valid | (1u << w));
    ++live;
  } else {
    // Full set: evict the unique rank-(ways-1) way — the reference's
    // timestamp minimum (touch ticks are distinct, so the minimum is unique
    // and recency rank order equals timestamp order).
    const std::uint64_t at_lru =
        ByteEqMask(lru[set_index], static_cast<std::uint8_t>(ways - 1)) & way_hi_bits;
    w = static_cast<std::size_t>(__builtin_ctzll(at_lru)) >> 3;
    --live_parity[tags[set_index * static_cast<std::size_t>(ways) + w] & 1];
  }
  ++live_parity[tag & 1];
  const std::size_t at = set_index * static_cast<std::size_t>(ways) + w;
  tags[at] = tag;
  payloads[at].pfn = pfn;
  payloads[at].node = static_cast<std::uint32_t>(node);
  const std::uint64_t byte_shift = 8 * w;
  sig[set_index] =
      (sig[set_index] & ~(0xFFull << byte_shift)) |
      (static_cast<std::uint64_t>(Sig(tag)) << byte_shift);
  TouchRank(set_index, w);
}

inline TlbLookup Tlb::LookupReference(Addr va) {
  ++tick_;
  const std::uint64_t vpn4k = va >> kShift4K;
  const std::uint64_t vpn2m = va >> kShift2M;
  const std::uint64_t vpn1g = va >> kShift1G;

  if (l1_4k_.live != 0) {
    if (std::size_t at = l1_4k_.Find(vpn4k, l1_4k_.SetIndex(vpn4k)); at != kNoEntry) {
      Payload& p = l1_4k_.payloads[at];
      l1_4k_.last_used[at] = tick_;
      return TlbLookup{TlbHitLevel::kL1, p.pfn, static_cast<int>(p.node), PageSize::k4K};
    }
  }
  if (l1_2m_.live != 0) {
    if (std::size_t at = l1_2m_.Find(vpn2m, l1_2m_.SetIndex(vpn2m)); at != kNoEntry) {
      Payload& p = l1_2m_.payloads[at];
      l1_2m_.last_used[at] = tick_;
      return TlbLookup{TlbHitLevel::kL1, p.pfn, static_cast<int>(p.node), PageSize::k2M};
    }
  }
  if (l1_1g_.live != 0) {
    if (std::size_t at = l1_1g_.Find(vpn1g, l1_1g_.SetIndex(vpn1g)); at != kNoEntry) {
      Payload& p = l1_1g_.payloads[at];
      l1_1g_.last_used[at] = tick_;
      return TlbLookup{TlbHitLevel::kL1, p.pfn, static_cast<int>(p.node), PageSize::k1G};
    }
  }
  // Unified L2: tags disambiguate page size.
  const std::uint64_t l2_tag_4k = (vpn4k << 1) | 0;
  const std::uint64_t l2_tag_2m = (vpn2m << 1) | 1;
  if (l2_.live_parity[0] != 0) {
    if (std::size_t at = l2_.Find(l2_tag_4k, l2_.SetIndex(vpn4k)); at != kNoEntry) {
      Payload& p = l2_.payloads[at];
      l2_.last_used[at] = tick_;
      l1_4k_.Install(vpn4k, l1_4k_.SetIndex(vpn4k), p.pfn, static_cast<int>(p.node), tick_);
      return TlbLookup{TlbHitLevel::kL2, p.pfn, static_cast<int>(p.node), PageSize::k4K};
    }
  }
  if (l2_.live_parity[1] != 0) {
    if (std::size_t at = l2_.Find(l2_tag_2m, l2_.SetIndex(vpn2m)); at != kNoEntry) {
      Payload& p = l2_.payloads[at];
      l2_.last_used[at] = tick_;
      l1_2m_.Install(vpn2m, l1_2m_.SetIndex(vpn2m), p.pfn, static_cast<int>(p.node), tick_);
      return TlbLookup{TlbHitLevel::kL2, p.pfn, static_cast<int>(p.node), PageSize::k2M};
    }
  }
  return TlbLookup{};
}

inline TlbLookup Tlb::LookupFast(Addr va) {
  const std::uint64_t vpn4k = va >> kShift4K;
  const std::uint64_t vpn2m = va >> kShift2M;
  const std::uint64_t vpn1g = va >> kShift1G;

  if (l1_4k_.live != 0) {
    const std::uint64_t set = l1_4k_.SetIndex(vpn4k);
    if (std::size_t at = l1_4k_.FindFast(vpn4k, set); at != kNoEntry) {
      Payload& p = l1_4k_.payloads[at];
      l1_4k_.TouchRank(set, at - set * static_cast<std::size_t>(l1_4k_.ways));
      return TlbLookup{TlbHitLevel::kL1, p.pfn, static_cast<int>(p.node), PageSize::k4K};
    }
  }
  if (l1_2m_.live != 0) {
    const std::uint64_t set = l1_2m_.SetIndex(vpn2m);
    if (std::size_t at = l1_2m_.FindFast(vpn2m, set); at != kNoEntry) {
      Payload& p = l1_2m_.payloads[at];
      l1_2m_.TouchRank(set, at - set * static_cast<std::size_t>(l1_2m_.ways));
      return TlbLookup{TlbHitLevel::kL1, p.pfn, static_cast<int>(p.node), PageSize::k2M};
    }
  }
  if (l1_1g_.live != 0) {
    const std::uint64_t set = l1_1g_.SetIndex(vpn1g);
    if (std::size_t at = l1_1g_.FindFast(vpn1g, set); at != kNoEntry) {
      Payload& p = l1_1g_.payloads[at];
      l1_1g_.TouchRank(set, at - set * static_cast<std::size_t>(l1_1g_.ways));
      return TlbLookup{TlbHitLevel::kL1, p.pfn, static_cast<int>(p.node), PageSize::k1G};
    }
  }
  // Unified L2: tags disambiguate page size.
  const std::uint64_t l2_tag_4k = (vpn4k << 1) | 0;
  const std::uint64_t l2_tag_2m = (vpn2m << 1) | 1;
  if (l2_.live_parity[0] != 0) {
    const std::uint64_t set = l2_.SetIndex(vpn4k);
    if (std::size_t at = l2_.FindFast(l2_tag_4k, set); at != kNoEntry) {
      Payload& p = l2_.payloads[at];
      l2_.TouchRank(set, at - set * static_cast<std::size_t>(l2_.ways));
      l1_4k_.InstallFast(vpn4k, l1_4k_.SetIndex(vpn4k), p.pfn, static_cast<int>(p.node));
      return TlbLookup{TlbHitLevel::kL2, p.pfn, static_cast<int>(p.node), PageSize::k4K};
    }
  }
  if (l2_.live_parity[1] != 0) {
    const std::uint64_t set = l2_.SetIndex(vpn2m);
    if (std::size_t at = l2_.FindFast(l2_tag_2m, set); at != kNoEntry) {
      Payload& p = l2_.payloads[at];
      l2_.TouchRank(set, at - set * static_cast<std::size_t>(l2_.ways));
      l1_2m_.InstallFast(vpn2m, l1_2m_.SetIndex(vpn2m), p.pfn, static_cast<int>(p.node));
      return TlbLookup{TlbHitLevel::kL2, p.pfn, static_cast<int>(p.node), PageSize::k2M};
    }
  }
  return TlbLookup{};
}

inline TlbLookup Tlb::Lookup(Addr va) {
  ++lookups_;
  return reference_ ? LookupReference(va) : LookupFast(va);
}

inline void Tlb::Insert(Addr va, PageSize size, Pfn pfn, int node) {
  if (reference_) {
    ++tick_;
    switch (size) {
      case PageSize::k4K: {
        const std::uint64_t vpn = va >> kShift4K;
        l1_4k_.Install(vpn, l1_4k_.SetIndex(vpn), pfn, node, tick_);
        l2_.Install((vpn << 1) | 0, l2_.SetIndex(vpn), pfn, node, tick_);
        break;
      }
      case PageSize::k2M: {
        const std::uint64_t vpn = va >> kShift2M;
        l1_2m_.Install(vpn, l1_2m_.SetIndex(vpn), pfn, node, tick_);
        l2_.Install((vpn << 1) | 1, l2_.SetIndex(vpn), pfn, node, tick_);
        break;
      }
      case PageSize::k1G: {
        const std::uint64_t vpn = va >> kShift1G;
        l1_1g_.Install(vpn, l1_1g_.SetIndex(vpn), pfn, node, tick_);
        break;
      }
    }
    return;
  }
  switch (size) {
    case PageSize::k4K: {
      const std::uint64_t vpn = va >> kShift4K;
      l1_4k_.InstallFast(vpn, l1_4k_.SetIndex(vpn), pfn, node);
      l2_.InstallFast((vpn << 1) | 0, l2_.SetIndex(vpn), pfn, node);
      break;
    }
    case PageSize::k2M: {
      const std::uint64_t vpn = va >> kShift2M;
      l1_2m_.InstallFast(vpn, l1_2m_.SetIndex(vpn), pfn, node);
      l2_.InstallFast((vpn << 1) | 1, l2_.SetIndex(vpn), pfn, node);
      break;
    }
    case PageSize::k1G: {
      const std::uint64_t vpn = va >> kShift1G;
      l1_1g_.InstallFast(vpn, l1_1g_.SetIndex(vpn), pfn, node);
      break;
    }
  }
}

}  // namespace numalp

#endif  // NUMALP_SRC_HW_TLB_H_
