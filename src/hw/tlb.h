// Two-level set-associative TLB with separate L1 arrays per page size and a
// unified L2, modelled after the AMD family 10h/15h designs in the paper's
// testbeds. Entries carry the translation payload (PFN + home node) so the
// simulation engine can resolve a hit without touching the page table.
#ifndef NUMALP_SRC_HW_TLB_H_
#define NUMALP_SRC_HW_TLB_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace numalp {

struct TlbConfig {
  // 64-entry L1 DTLB for 4KB pages (16 sets x 4 ways).
  int l1_4k_sets = 16;
  int l1_4k_ways = 4;
  // 32-entry L1 for 2MB pages.
  int l1_2m_sets = 8;
  int l1_2m_ways = 4;
  // 8-entry fully-associative array for 1GB pages.
  int l1_1g_sets = 1;
  int l1_1g_ways = 8;
  // 1024-entry unified L2 (4KB + 2MB; 1GB entries are not L2-cached,
  // matching the era's hardware).
  int l2_sets = 128;
  int l2_ways = 8;
};

enum class TlbHitLevel : std::uint8_t { kL1, kL2, kMiss };

struct TlbLookup {
  TlbHitLevel level = TlbHitLevel::kMiss;
  Pfn pfn = 0;       // valid when level != kMiss
  int node = 0;      // home NUMA node of the page
  PageSize size = PageSize::k4K;
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  // Probes all arrays in parallel (4KB / 2MB / 1GB VPNs).
  TlbLookup Lookup(Addr va);

  // Installs a translation in L1 (and L2 for 4KB/2MB).
  void Insert(Addr va, PageSize size, Pfn pfn, int node);

  // Precise shootdown of one page's translation (all arrays that could hold
  // it). This is what an OS TLB shootdown IPI does; flushing everything on
  // every policy action would overcharge policies by a full refill storm.
  void InvalidatePage(Addr page_base, PageSize size);

  void FlushAll();

  std::uint64_t lookups() const { return lookups_; }

 private:
  struct Entry {
    std::uint64_t tag = kInvalidTag;
    Pfn pfn = 0;
    std::uint32_t node = 0;
    std::uint64_t last_used = 0;
  };
  struct Array {
    int sets = 0;
    int ways = 0;
    std::vector<Entry> entries;  // sets * ways

    void Init(int s, int w);
    Entry* Find(std::uint64_t tag, std::uint64_t set_index);
    void Install(std::uint64_t tag, std::uint64_t set_index, Pfn pfn, int node,
                 std::uint64_t tick);
    void Flush();
  };

  static constexpr std::uint64_t kInvalidTag = ~0ull;

  Array l1_4k_;
  Array l1_2m_;
  Array l1_1g_;
  Array l2_;  // tag includes the page size
  std::uint64_t tick_ = 0;
  std::uint64_t lookups_ = 0;
};

}  // namespace numalp

#endif  // NUMALP_SRC_HW_TLB_H_
