// Two-level set-associative TLB with separate L1 arrays per page size and a
// unified L2, modelled after the AMD family 10h/15h designs in the paper's
// testbeds. Entries carry the translation payload (PFN + home node) so the
// simulation engine can resolve a hit without touching the page table.
//
// Host-side layout: tags and payloads live in separate parallel arrays
// (structure-of-arrays). A probe — the single hottest operation in the
// whole simulator — then scans a dense run of 8-byte tags (a 4-way set is
// half a cache line) and touches the payload only on a hit. Set selection
// uses power-of-two masking when the configuration allows (all shipped
// configs do); both changes are invisible to the modeled behavior.
#ifndef NUMALP_SRC_HW_TLB_H_
#define NUMALP_SRC_HW_TLB_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace numalp {

struct TlbConfig {
  // 64-entry L1 DTLB for 4KB pages (16 sets x 4 ways).
  int l1_4k_sets = 16;
  int l1_4k_ways = 4;
  // 32-entry L1 for 2MB pages.
  int l1_2m_sets = 8;
  int l1_2m_ways = 4;
  // 8-entry fully-associative array for 1GB pages.
  int l1_1g_sets = 1;
  int l1_1g_ways = 8;
  // 1024-entry unified L2 (4KB + 2MB; 1GB entries are not L2-cached,
  // matching the era's hardware).
  int l2_sets = 128;
  int l2_ways = 8;
};

enum class TlbHitLevel : std::uint8_t { kL1, kL2, kMiss };

struct TlbLookup {
  TlbHitLevel level = TlbHitLevel::kMiss;
  Pfn pfn = 0;       // valid when level != kMiss
  int node = 0;      // home NUMA node of the page
  PageSize size = PageSize::k4K;
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  // Probes all arrays in parallel (4KB / 2MB / 1GB VPNs).
  TlbLookup Lookup(Addr va);

  // Installs a translation in L1 (and L2 for 4KB/2MB).
  void Insert(Addr va, PageSize size, Pfn pfn, int node);

  // Precise shootdown of one page's translation (all arrays that could hold
  // it). This is what an OS TLB shootdown IPI does; flushing everything on
  // every policy action would overcharge policies by a full refill storm.
  void InvalidatePage(Addr page_base, PageSize size);

  // Ranged shootdown: drops every cached translation (any page size, both
  // levels) whose page overlaps [base, base + bytes). Equivalent to — and
  // far cheaper than — looping InvalidatePage over each constituent page:
  // one pass over the arrays instead of per-page probes. Batches the 512
  // stale 4KB invalidations a 2MB promotion broadcasts, and the piece-wise
  // storms after a hot-page split.
  void InvalidateRange(Addr base, std::uint64_t bytes);

  void FlushAll();

  std::uint64_t lookups() const { return lookups_; }

 private:
  static constexpr std::uint64_t kInvalidTag = ~0ull;
  static constexpr std::size_t kNoEntry = ~static_cast<std::size_t>(0);

  struct Payload {
    Pfn pfn = 0;
    std::uint32_t node = 0;
  };

  struct Array {
    int sets = 0;
    int ways = 0;
    // Set selection: hardware-style power-of-two masking when `sets` allows
    // it (every shipped TlbConfig does), falling back to modulo. The two are
    // value-identical for power-of-two set counts; the mask form keeps an
    // integer division out of the per-access probe loop.
    std::uint64_t set_mask = 0;
    bool pow2_sets = false;
    std::vector<std::uint64_t> tags;       // sets * ways, kInvalidTag = empty
    std::vector<Payload> payloads;         // parallel to tags
    std::vector<std::uint64_t> last_used;  // parallel to tags (LRU victim scan)
    // Occupancy tracking: an array (or, for the unified L2, a tag-parity
    // class — bit 0 encodes the page size) with no live entries cannot hit,
    // so Lookup skips the probe entirely. Workloads touch one page size
    // almost exclusively, making half the probe work vanish.
    std::uint64_t live = 0;
    std::uint64_t live_parity[2] = {0, 0};

    void Init(int s, int w);
    std::uint64_t SetIndex(std::uint64_t value) const {
      return pow2_sets ? (value & set_mask) : value % static_cast<std::uint64_t>(sets);
    }
    // Index of `tag` within the set, or kNoEntry.
    std::size_t Find(std::uint64_t tag, std::uint64_t set_index) const {
      const std::size_t base = set_index * static_cast<std::size_t>(ways);
      for (int w = 0; w < ways; ++w) {
        if (tags[base + static_cast<std::size_t>(w)] == tag) {
          return base + static_cast<std::size_t>(w);
        }
      }
      return kNoEntry;
    }
    void Install(std::uint64_t tag, std::uint64_t set_index, Pfn pfn, int node,
                 std::uint64_t tick);
    void Flush();
  };

  Array l1_4k_;
  Array l1_2m_;
  Array l1_1g_;
  Array l2_;  // tag includes the page size
  std::uint64_t tick_ = 0;
  std::uint64_t lookups_ = 0;
};


// Hot-path definitions (one Lookup per simulated access; inlined into the
// engine's access loop — behavior identical to the out-of-line form).
inline void Tlb::Array::Install(std::uint64_t tag, std::uint64_t set_index, Pfn pfn, int node,
                         std::uint64_t tick) {
  const std::size_t base = set_index * static_cast<std::size_t>(ways);
  std::size_t victim = base;
  for (int w = 0; w < ways; ++w) {
    const std::size_t at = base + static_cast<std::size_t>(w);
    if (tags[at] == kInvalidTag) {
      victim = at;
      break;
    }
    if (last_used[at] < last_used[victim]) {
      victim = at;
    }
  }
  if (tags[victim] == kInvalidTag) {
    ++live;
  } else {
    --live_parity[tags[victim] & 1];
  }
  ++live_parity[tag & 1];
  tags[victim] = tag;
  payloads[victim].pfn = pfn;
  payloads[victim].node = static_cast<std::uint32_t>(node);
  last_used[victim] = tick;
}

inline TlbLookup Tlb::Lookup(Addr va) {
  ++lookups_;
  ++tick_;
  const std::uint64_t vpn4k = va >> kShift4K;
  const std::uint64_t vpn2m = va >> kShift2M;
  const std::uint64_t vpn1g = va >> kShift1G;

  if (l1_4k_.live != 0) {
    if (std::size_t at = l1_4k_.Find(vpn4k, l1_4k_.SetIndex(vpn4k)); at != kNoEntry) {
      Payload& p = l1_4k_.payloads[at];
      l1_4k_.last_used[at] = tick_;
      return TlbLookup{TlbHitLevel::kL1, p.pfn, static_cast<int>(p.node), PageSize::k4K};
    }
  }
  if (l1_2m_.live != 0) {
    if (std::size_t at = l1_2m_.Find(vpn2m, l1_2m_.SetIndex(vpn2m)); at != kNoEntry) {
      Payload& p = l1_2m_.payloads[at];
      l1_2m_.last_used[at] = tick_;
      return TlbLookup{TlbHitLevel::kL1, p.pfn, static_cast<int>(p.node), PageSize::k2M};
    }
  }
  if (l1_1g_.live != 0) {
    if (std::size_t at = l1_1g_.Find(vpn1g, l1_1g_.SetIndex(vpn1g)); at != kNoEntry) {
      Payload& p = l1_1g_.payloads[at];
      l1_1g_.last_used[at] = tick_;
      return TlbLookup{TlbHitLevel::kL1, p.pfn, static_cast<int>(p.node), PageSize::k1G};
    }
  }
  // Unified L2: tags disambiguate page size.
  const std::uint64_t l2_tag_4k = (vpn4k << 1) | 0;
  const std::uint64_t l2_tag_2m = (vpn2m << 1) | 1;
  if (l2_.live_parity[0] != 0) {
    if (std::size_t at = l2_.Find(l2_tag_4k, l2_.SetIndex(vpn4k)); at != kNoEntry) {
      Payload& p = l2_.payloads[at];
      l2_.last_used[at] = tick_;
      l1_4k_.Install(vpn4k, l1_4k_.SetIndex(vpn4k), p.pfn, static_cast<int>(p.node), tick_);
      return TlbLookup{TlbHitLevel::kL2, p.pfn, static_cast<int>(p.node), PageSize::k4K};
    }
  }
  if (l2_.live_parity[1] != 0) {
    if (std::size_t at = l2_.Find(l2_tag_2m, l2_.SetIndex(vpn2m)); at != kNoEntry) {
      Payload& p = l2_.payloads[at];
      l2_.last_used[at] = tick_;
      l1_2m_.Install(vpn2m, l1_2m_.SetIndex(vpn2m), p.pfn, static_cast<int>(p.node), tick_);
      return TlbLookup{TlbHitLevel::kL2, p.pfn, static_cast<int>(p.node), PageSize::k2M};
    }
  }
  return TlbLookup{};
}

inline void Tlb::Insert(Addr va, PageSize size, Pfn pfn, int node) {
  ++tick_;
  switch (size) {
    case PageSize::k4K: {
      const std::uint64_t vpn = va >> kShift4K;
      l1_4k_.Install(vpn, l1_4k_.SetIndex(vpn), pfn, node, tick_);
      l2_.Install((vpn << 1) | 0, l2_.SetIndex(vpn), pfn, node, tick_);
      break;
    }
    case PageSize::k2M: {
      const std::uint64_t vpn = va >> kShift2M;
      l1_2m_.Install(vpn, l1_2m_.SetIndex(vpn), pfn, node, tick_);
      l2_.Install((vpn << 1) | 1, l2_.SetIndex(vpn), pfn, node, tick_);
      break;
    }
    case PageSize::k1G: {
      const std::uint64_t vpn = va >> kShift1G;
      l1_1g_.Install(vpn, l1_1g_.SetIndex(vpn), pfn, node, tick_);
      break;
    }
  }
}

}  // namespace numalp

#endif  // NUMALP_SRC_HW_TLB_H_
