// Hardware page-table walker cost model.
//
// On a TLB miss the walker traverses the radix tree (4 levels for 4KB pages,
// 3 for 2MB, 2 for 1GB). Upper levels are almost always held by the paging-
// structure caches; the leaf PTE fetch, however, competes with application
// data for the L2 cache, and its miss probability grows with the resident
// page-table footprint. This is the mechanism behind the paper's key
// conservative-component metric, "fraction of L2 misses caused by page table
// walks" (Section 3.2.2): large pages shrink the page table, which both
// lowers TLB miss counts and makes each remaining walk cheaper.
#ifndef NUMALP_SRC_HW_WALKER_H_
#define NUMALP_SRC_HW_WALKER_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace numalp {

struct WalkerConfig {
  // Hardware walks overlap with out-of-order execution, so these are
  // *effective* (exposed) costs, considerably below the raw fetch latency.
  Cycles per_level = 10;          // paging-structure-cache / L1 hit per level
  Cycles pte_l2_hit = 8;          // leaf PTE found in L2
  Cycles pte_l2_miss_extra = 100; // leaf PTE fetched from L3/DRAM
  // PTE L2-miss probability: p = floor + span * T / (T + half_sat) where T is
  // the resident page-table footprint in bytes. Saturates at floor + span.
  double miss_floor = 0.02;
  double miss_span = 0.45;
  double half_sat_bytes = 2.0 * 1024 * 1024;
};

struct WalkResult {
  Cycles cycles = 0;
  bool l2_miss = false;  // counts toward "L2 misses due to page table walks"
};

class PageWalker {
 public:
  explicit PageWalker(const WalkerConfig& config) : config_(config) {}

  // One hardware walk for a page of `size` with `table_bytes` of resident
  // paging structures. Deterministic given the Rng stream. Defined inline:
  // one call per TLB miss puts this on the engine's hot path.
  WalkResult Walk(PageSize size, std::uint64_t table_bytes, Rng& rng) const {
    WalkResult result;
    // Walk depth by leaf level (PageTable::WalkDepth, restated here to keep
    // the hw layer free of vm includes): 4KB -> 4, 2MB -> 3, 1GB -> 2.
    const int levels = size == PageSize::k4K ? 4 : (size == PageSize::k2M ? 3 : 2);
    result.cycles = config_.per_level * static_cast<Cycles>(levels - 1);
    if (rng.Bernoulli(PteMissProbability(table_bytes))) {
      result.l2_miss = true;
      result.cycles += config_.pte_l2_hit + config_.pte_l2_miss_extra;
    } else {
      result.cycles += config_.pte_l2_hit;
    }
    return result;
  }

  // Probability-weighted cost of one walk: the reactive decision engine's
  // view of the same model Walk() charges stochastically (DESIGN.md §8).
  Cycles ExpectedWalkCycles(PageSize size, std::uint64_t table_bytes) const {
    const int levels = size == PageSize::k4K ? 4 : (size == PageSize::k2M ? 3 : 2);
    return config_.per_level * static_cast<Cycles>(levels - 1) + config_.pte_l2_hit +
           static_cast<Cycles>(PteMissProbability(table_bytes) *
                               static_cast<double>(config_.pte_l2_miss_extra));
  }

  double PteMissProbability(std::uint64_t table_bytes) const {
    const double t = static_cast<double>(table_bytes);
    return config_.miss_floor + config_.miss_span * t / (t + config_.half_sat_bytes);
  }

  const WalkerConfig& config() const { return config_; }

 private:
  WalkerConfig config_;
};

}  // namespace numalp

#endif  // NUMALP_SRC_HW_WALKER_H_
