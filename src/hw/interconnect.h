// HyperTransport interconnect model: remote accesses pay a per-hop latency,
// inflated when the destination node receives a disproportionate share of
// the machine's remote traffic (link congestion toward a hot node).
#ifndef NUMALP_SRC_HW_INTERCONNECT_H_
#define NUMALP_SRC_HW_INTERCONNECT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/units.h"
#include "src/topo/topology.h"

namespace numalp {

struct InterconnectConfig {
  Cycles per_hop = 40;
  // Congestion: latency factor 1 + weight * max(0, share * nodes - 1) where
  // `share` is the destination's fraction of all remote traffic.
  double congestion_weight = 0.4;
  double max_factor = 2.0;
};

class InterconnectModel {
 public:
  InterconnectModel(const InterconnectConfig& config, const Topology& topo)
      : config_(config), topo_(topo) {}

  // Per-destination-node extra latency for one remote access, given this
  // epoch's per-node incoming remote request counts. Entry [src][dst].
  std::vector<std::vector<Cycles>> RemoteLatencies(
      std::span<const std::uint64_t> incoming_remote) const;

  const InterconnectConfig& config() const { return config_; }

 private:
  InterconnectConfig config_;
  const Topology& topo_;
};

}  // namespace numalp

#endif  // NUMALP_SRC_HW_INTERCONNECT_H_
