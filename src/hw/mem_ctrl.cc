#include "src/hw/mem_ctrl.h"

#include <algorithm>

namespace numalp {

Cycles MemCtrlModel::LatencyForUtilization(double utilization) const {
  // utilization is the controller's load relative to its provisioned
  // capacity: <= 1 serves at base latency, then queueing grows the latency
  // linearly until saturation at `saturation_utilization`.
  const double u = std::max(0.0, utilization);
  double multiplier = 1.0;
  if (u > 1.0) {
    const double t = std::min(1.0, (u - 1.0) / (config_.saturation_utilization - 1.0));
    multiplier = 1.0 + (config_.max_multiplier - 1.0) * t;
  }
  return static_cast<Cycles>(static_cast<double>(config_.base_latency) * multiplier);
}

std::vector<Cycles> MemCtrlModel::Latencies(std::span<const std::uint64_t> node_requests,
                                            std::uint64_t capacity) const {
  const int nodes = static_cast<int>(node_requests.size());
  std::vector<Cycles> latencies(static_cast<std::size_t>(nodes), config_.base_latency);
  if (nodes == 0 || capacity == 0) {
    return latencies;
  }
  for (int n = 0; n < nodes; ++n) {
    const double u = static_cast<double>(node_requests[static_cast<std::size_t>(n)]) /
                     static_cast<double>(capacity);
    latencies[static_cast<std::size_t>(n)] = LatencyForUtilization(u);
  }
  return latencies;
}

}  // namespace numalp
