// Hardware performance counters: per-core and per-node event counts gathered
// each epoch, mirroring what the paper reads from the AMD PMU (L2 misses from
// page-table walks, memory-controller request rates, local/remote DRAM
// accesses) plus the OS-side fault accounting.
#ifndef NUMALP_SRC_HW_COUNTERS_H_
#define NUMALP_SRC_HW_COUNTERS_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace numalp {

struct CoreCounters {
  std::uint64_t accesses = 0;
  std::uint64_t dram_local = 0;
  std::uint64_t dram_remote = 0;
  std::uint64_t tlb_l1_miss = 0;  // missed L1, any outcome
  std::uint64_t tlb_l2_hit = 0;
  std::uint64_t tlb_walks = 0;    // full walks (L2 missed too)
  std::uint64_t walk_l2_miss = 0; // leaf PTE fetches that missed L2
  std::uint64_t faults_4k = 0;
  std::uint64_t faults_2m = 0;
  std::uint64_t faults_1g = 0;
  std::uint64_t fault_bytes = 0;
  Cycles exec_cycles = 0;   // compute + TLB + walk cycles (DRAM added at epoch end)
  Cycles dram_cycles = 0;   // filled in by the epoch-end latency resolution
  Cycles fault_cycles = 0;  // page-fault handler time

  void Accumulate(const CoreCounters& other);
  std::uint64_t dram_accesses() const { return dram_local + dram_remote; }
  Cycles total_cycles() const { return exec_cycles + dram_cycles + fault_cycles; }
};

struct EpochCounters {
  explicit EpochCounters(int num_cores, int num_nodes);

  void Reset();

  std::vector<CoreCounters> cores;
  // DRAM requests per memory controller (the imbalance metric's input).
  std::vector<std::uint64_t> node_requests;
  // Remote DRAM requests arriving at each node (interconnect congestion).
  std::vector<std::uint64_t> node_incoming_remote;
  // Requests issued by core c to node n; resolved into dram_cycles at epoch
  // end once controller latencies are known.
  std::vector<std::vector<std::uint64_t>> core_node_requests;

  std::uint64_t TotalAccesses() const;
  std::uint64_t TotalDram() const;
  std::uint64_t TotalLocal() const;
  std::uint64_t TotalWalkL2Miss() const;
  std::uint64_t TotalFaults() const;
};

}  // namespace numalp

#endif  // NUMALP_SRC_HW_COUNTERS_H_
