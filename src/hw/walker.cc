#include "src/hw/walker.h"

#include "src/vm/page_table.h"

namespace numalp {

double PageWalker::PteMissProbability(std::uint64_t table_bytes) const {
  const double t = static_cast<double>(table_bytes);
  return config_.miss_floor + config_.miss_span * t / (t + config_.half_sat_bytes);
}

WalkResult PageWalker::Walk(PageSize size, std::uint64_t table_bytes, Rng& rng) const {
  WalkResult result;
  const int levels = PageTable::WalkDepth(size);
  result.cycles = config_.per_level * static_cast<Cycles>(levels - 1);
  if (rng.Bernoulli(PteMissProbability(table_bytes))) {
    result.l2_miss = true;
    result.cycles += config_.pte_l2_hit + config_.pte_l2_miss_extra;
  } else {
    result.cycles += config_.pte_l2_hit;
  }
  return result;
}

}  // namespace numalp
