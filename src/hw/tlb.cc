#include "src/hw/tlb.h"

namespace numalp {

void Tlb::Array::Init(int s, int w) {
  sets = s;
  ways = w;
  entries.assign(static_cast<std::size_t>(s) * static_cast<std::size_t>(w), Entry{});
}

Tlb::Entry* Tlb::Array::Find(std::uint64_t tag, std::uint64_t set_index) {
  Entry* base = &entries[set_index * static_cast<std::size_t>(ways)];
  for (int w = 0; w < ways; ++w) {
    if (base[w].tag == tag) {
      return &base[w];
    }
  }
  return nullptr;
}

void Tlb::Array::Install(std::uint64_t tag, std::uint64_t set_index, Pfn pfn, int node,
                         std::uint64_t tick) {
  Entry* base = &entries[set_index * static_cast<std::size_t>(ways)];
  Entry* victim = &base[0];
  for (int w = 0; w < ways; ++w) {
    if (base[w].tag == kInvalidTag) {
      victim = &base[w];
      break;
    }
    if (base[w].last_used < victim->last_used) {
      victim = &base[w];
    }
  }
  victim->tag = tag;
  victim->pfn = pfn;
  victim->node = static_cast<std::uint32_t>(node);
  victim->last_used = tick;
}

void Tlb::Array::Flush() {
  for (auto& entry : entries) {
    entry.tag = kInvalidTag;
  }
}

Tlb::Tlb(const TlbConfig& config) {
  l1_4k_.Init(config.l1_4k_sets, config.l1_4k_ways);
  l1_2m_.Init(config.l1_2m_sets, config.l1_2m_ways);
  l1_1g_.Init(config.l1_1g_sets, config.l1_1g_ways);
  l2_.Init(config.l2_sets, config.l2_ways);
}

TlbLookup Tlb::Lookup(Addr va) {
  ++lookups_;
  ++tick_;
  const std::uint64_t vpn4k = va >> kShift4K;
  const std::uint64_t vpn2m = va >> kShift2M;
  const std::uint64_t vpn1g = va >> kShift1G;

  if (Entry* e = l1_4k_.Find(vpn4k, vpn4k % static_cast<std::uint64_t>(l1_4k_.sets))) {
    e->last_used = tick_;
    return TlbLookup{TlbHitLevel::kL1, e->pfn, static_cast<int>(e->node), PageSize::k4K};
  }
  if (Entry* e = l1_2m_.Find(vpn2m, vpn2m % static_cast<std::uint64_t>(l1_2m_.sets))) {
    e->last_used = tick_;
    return TlbLookup{TlbHitLevel::kL1, e->pfn, static_cast<int>(e->node), PageSize::k2M};
  }
  if (Entry* e = l1_1g_.Find(vpn1g, vpn1g % static_cast<std::uint64_t>(l1_1g_.sets))) {
    e->last_used = tick_;
    return TlbLookup{TlbHitLevel::kL1, e->pfn, static_cast<int>(e->node), PageSize::k1G};
  }
  // Unified L2: tags disambiguate page size.
  const std::uint64_t l2_tag_4k = (vpn4k << 1) | 0;
  const std::uint64_t l2_tag_2m = (vpn2m << 1) | 1;
  if (Entry* e = l2_.Find(l2_tag_4k, vpn4k % static_cast<std::uint64_t>(l2_.sets))) {
    e->last_used = tick_;
    l1_4k_.Install(vpn4k, vpn4k % static_cast<std::uint64_t>(l1_4k_.sets), e->pfn,
                   static_cast<int>(e->node), tick_);
    return TlbLookup{TlbHitLevel::kL2, e->pfn, static_cast<int>(e->node), PageSize::k4K};
  }
  if (Entry* e = l2_.Find(l2_tag_2m, vpn2m % static_cast<std::uint64_t>(l2_.sets))) {
    e->last_used = tick_;
    l1_2m_.Install(vpn2m, vpn2m % static_cast<std::uint64_t>(l1_2m_.sets), e->pfn,
                   static_cast<int>(e->node), tick_);
    return TlbLookup{TlbHitLevel::kL2, e->pfn, static_cast<int>(e->node), PageSize::k2M};
  }
  return TlbLookup{};
}

void Tlb::Insert(Addr va, PageSize size, Pfn pfn, int node) {
  ++tick_;
  switch (size) {
    case PageSize::k4K: {
      const std::uint64_t vpn = va >> kShift4K;
      l1_4k_.Install(vpn, vpn % static_cast<std::uint64_t>(l1_4k_.sets), pfn, node, tick_);
      l2_.Install((vpn << 1) | 0, vpn % static_cast<std::uint64_t>(l2_.sets), pfn, node, tick_);
      break;
    }
    case PageSize::k2M: {
      const std::uint64_t vpn = va >> kShift2M;
      l1_2m_.Install(vpn, vpn % static_cast<std::uint64_t>(l1_2m_.sets), pfn, node, tick_);
      l2_.Install((vpn << 1) | 1, vpn % static_cast<std::uint64_t>(l2_.sets), pfn, node, tick_);
      break;
    }
    case PageSize::k1G: {
      const std::uint64_t vpn = va >> kShift1G;
      l1_1g_.Install(vpn, 0, pfn, node, tick_);
      break;
    }
  }
}

void Tlb::InvalidatePage(Addr page_base, PageSize size) {
  auto clear = [](Array& array, std::uint64_t tag, std::uint64_t set_index) {
    if (Entry* e = array.Find(tag, set_index)) {
      e->tag = kInvalidTag;
    }
  };
  switch (size) {
    case PageSize::k4K: {
      const std::uint64_t vpn = page_base >> kShift4K;
      clear(l1_4k_, vpn, vpn % static_cast<std::uint64_t>(l1_4k_.sets));
      clear(l2_, (vpn << 1) | 0, vpn % static_cast<std::uint64_t>(l2_.sets));
      break;
    }
    case PageSize::k2M: {
      const std::uint64_t vpn = page_base >> kShift2M;
      clear(l1_2m_, vpn, vpn % static_cast<std::uint64_t>(l1_2m_.sets));
      clear(l2_, (vpn << 1) | 1, vpn % static_cast<std::uint64_t>(l2_.sets));
      break;
    }
    case PageSize::k1G: {
      const std::uint64_t vpn = page_base >> kShift1G;
      clear(l1_1g_, vpn, 0);
      break;
    }
  }
}

void Tlb::FlushAll() {
  l1_4k_.Flush();
  l1_2m_.Flush();
  l1_1g_.Flush();
  l2_.Flush();
}

}  // namespace numalp
