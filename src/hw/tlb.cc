#include "src/hw/tlb.h"

namespace numalp {

void Tlb::Array::Init(int s, int w) {
  sets = s;
  ways = w;
  pow2_sets = s > 0 && (static_cast<unsigned>(s) & (static_cast<unsigned>(s) - 1)) == 0;
  set_mask = pow2_sets ? static_cast<std::uint64_t>(s) - 1 : 0;
  const std::size_t n = static_cast<std::size_t>(s) * static_cast<std::size_t>(w);
  tags.assign(n, kInvalidTag);
  payloads.assign(n, Payload{});
  last_used.assign(n, 0);
  live = 0;
  live_parity[0] = live_parity[1] = 0;
}

void Tlb::Array::Flush() {
  for (auto& tag : tags) {
    tag = kInvalidTag;
  }
  live = 0;
  live_parity[0] = live_parity[1] = 0;
}

Tlb::Tlb(const TlbConfig& config) {
  l1_4k_.Init(config.l1_4k_sets, config.l1_4k_ways);
  l1_2m_.Init(config.l1_2m_sets, config.l1_2m_ways);
  l1_1g_.Init(config.l1_1g_sets, config.l1_1g_ways);
  l2_.Init(config.l2_sets, config.l2_ways);
}

void Tlb::InvalidatePage(Addr page_base, PageSize size) {
  const auto clear = [](Array& array, std::uint64_t tag, std::uint64_t set_index) {
    if (const std::size_t at = array.Find(tag, set_index); at != kNoEntry) {
      array.tags[at] = kInvalidTag;
      --array.live;
      --array.live_parity[tag & 1];
    }
  };
  switch (size) {
    case PageSize::k4K: {
      const std::uint64_t vpn = page_base >> kShift4K;
      clear(l1_4k_, vpn, l1_4k_.SetIndex(vpn));
      clear(l2_, (vpn << 1) | 0, l2_.SetIndex(vpn));
      break;
    }
    case PageSize::k2M: {
      const std::uint64_t vpn = page_base >> kShift2M;
      clear(l1_2m_, vpn, l1_2m_.SetIndex(vpn));
      clear(l2_, (vpn << 1) | 1, l2_.SetIndex(vpn));
      break;
    }
    case PageSize::k1G: {
      const std::uint64_t vpn = page_base >> kShift1G;
      clear(l1_1g_, vpn, l1_1g_.SetIndex(vpn));
      break;
    }
  }
}

void Tlb::InvalidateRange(Addr base, std::uint64_t bytes) {
  const Addr end = base + bytes;
  const auto sweep = [&](Array& array, int va_shift) {
    for (auto& tag : array.tags) {
      if (tag == kInvalidTag) {
        continue;
      }
      const Addr va = tag << va_shift;
      const std::uint64_t span = 1ull << va_shift;
      if (va < end && va + span > base) {
        --array.live;
        --array.live_parity[tag & 1];
        tag = kInvalidTag;
      }
    }
  };
  sweep(l1_4k_, kShift4K);
  sweep(l1_2m_, kShift2M);
  sweep(l1_1g_, kShift1G);
  // The unified L2 packs the page size into tag bit 0.
  for (auto& tag : l2_.tags) {
    if (tag == kInvalidTag) {
      continue;
    }
    const int va_shift = (tag & 1) != 0 ? kShift2M : kShift4K;
    const Addr va = (tag >> 1) << va_shift;
    const std::uint64_t span = 1ull << va_shift;
    if (va < end && va + span > base) {
      --l2_.live;
      --l2_.live_parity[tag & 1];
      tag = kInvalidTag;
    }
  }
}

void Tlb::FlushAll() {
  l1_4k_.Flush();
  l1_2m_.Flush();
  l1_1g_.Flush();
  l2_.Flush();
}

}  // namespace numalp
