#include "src/hw/tlb.h"

namespace numalp {

void Tlb::Array::Init(int s, int w, bool reference) {
  sets = s;
  ways = w;
  pow2_sets = s > 0 && (static_cast<unsigned>(s) & (static_cast<unsigned>(s) - 1)) == 0;
  set_mask = pow2_sets ? static_cast<std::uint64_t>(s) - 1 : 0;
  const std::size_t n = static_cast<std::size_t>(s) * static_cast<std::size_t>(w);
  tags.assign(n, kInvalidTag);
  payloads.assign(n, Payload{});
  live = 0;
  live_parity[0] = live_parity[1] = 0;
  if (reference) {
    last_used.assign(n, 0);
    return;
  }
  // Signature: the byte of the tag just above the set-index bits, so tags
  // that collide into one set (equal low bits) still get distinct digests
  // for nearby pages. Non-pow2 set counts fall back to the low byte.
  sig_shift = 0;
  if (pow2_sets) {
    int bits = 0;
    while ((1 << bits) < s) {
      ++bits;
    }
    sig_shift = bits;
  }
  way_hi_bits = kHiBits >> (8 * (8 - w));
  sig.assign(static_cast<std::size_t>(s), 0);
  occ.assign(static_cast<std::size_t>(s), 0);
  // Ranks start as the identity permutation; bytes past `ways` keep ranks
  // >= ways forever and never interfere with the word-parallel updates.
  lru.assign(static_cast<std::size_t>(s), 0x0706050403020100ull);
}

void Tlb::Array::Flush() {
  for (auto& tag : tags) {
    tag = kInvalidTag;
  }
  if (!occ.empty()) {
    for (auto& mask : occ) {
      mask = 0;
    }
  }
  live = 0;
  live_parity[0] = live_parity[1] = 0;
}

Tlb::Tlb(const TlbConfig& config, bool reference) : reference_(reference) {
  // The summary words hold one byte per way; wider configurations (none
  // shipped) use the scalar reference engine, which has no width limit.
  if (config.l1_4k_ways > 8 || config.l1_2m_ways > 8 || config.l1_1g_ways > 8 ||
      config.l2_ways > 8) {
    reference_ = true;
  }
  l1_4k_.Init(config.l1_4k_sets, config.l1_4k_ways, reference_);
  l1_2m_.Init(config.l1_2m_sets, config.l1_2m_ways, reference_);
  l1_1g_.Init(config.l1_1g_sets, config.l1_1g_ways, reference_);
  l2_.Init(config.l2_sets, config.l2_ways, reference_);
}

void Tlb::InvalidatePage(Addr page_base, PageSize size) {
  const auto clear = [this](Array& array, std::uint64_t tag, std::uint64_t set_index) {
    const std::size_t at = reference_ ? array.Find(tag, set_index)
                                      : array.FindFast(tag, set_index);
    if (at == kNoEntry) {
      return;
    }
    array.tags[at] = kInvalidTag;
    --array.live;
    --array.live_parity[tag & 1];
    if (!array.occ.empty()) {
      const std::size_t w = at - set_index * static_cast<std::size_t>(array.ways);
      array.occ[set_index] = static_cast<std::uint8_t>(array.occ[set_index] & ~(1u << w));
    }
  };
  switch (size) {
    case PageSize::k4K: {
      const std::uint64_t vpn = page_base >> kShift4K;
      clear(l1_4k_, vpn, l1_4k_.SetIndex(vpn));
      clear(l2_, (vpn << 1) | 0, l2_.SetIndex(vpn));
      break;
    }
    case PageSize::k2M: {
      const std::uint64_t vpn = page_base >> kShift2M;
      clear(l1_2m_, vpn, l1_2m_.SetIndex(vpn));
      clear(l2_, (vpn << 1) | 1, l2_.SetIndex(vpn));
      break;
    }
    case PageSize::k1G: {
      const std::uint64_t vpn = page_base >> kShift1G;
      clear(l1_1g_, vpn, l1_1g_.SetIndex(vpn));
      break;
    }
  }
}

void Tlb::InvalidateRange(Addr base, std::uint64_t bytes) {
  const Addr end = base + bytes;
  // Clears entry (set, w) of `array`, maintaining every live-entry summary.
  const auto drop = [](Array& array, std::size_t set, std::size_t w, std::uint64_t tag) {
    array.tags[set * static_cast<std::size_t>(array.ways) + w] = kInvalidTag;
    --array.live;
    --array.live_parity[tag & 1];
    if (!array.occ.empty()) {
      array.occ[set] = static_cast<std::uint8_t>(array.occ[set] & ~(1u << w));
    }
  };
  const auto sweep = [&](Array& array, int va_shift) {
    if (array.live == 0) {
      return;
    }
    const std::size_t ways = static_cast<std::size_t>(array.ways);
    for (std::size_t set = 0; set < static_cast<std::size_t>(array.sets); ++set) {
      for (std::size_t w = 0; w < ways; ++w) {
        const std::uint64_t tag = array.tags[set * ways + w];
        if (tag == kInvalidTag) {
          continue;
        }
        const Addr va = tag << va_shift;
        const std::uint64_t span = 1ull << va_shift;
        if (va < end && va + span > base) {
          drop(array, set, w, tag);
        }
      }
    }
  };
  sweep(l1_4k_, kShift4K);
  sweep(l1_2m_, kShift2M);
  sweep(l1_1g_, kShift1G);
  // The unified L2 packs the page size into tag bit 0.
  if (l2_.live != 0) {
    const std::size_t ways = static_cast<std::size_t>(l2_.ways);
    for (std::size_t set = 0; set < static_cast<std::size_t>(l2_.sets); ++set) {
      for (std::size_t w = 0; w < ways; ++w) {
        const std::uint64_t tag = l2_.tags[set * ways + w];
        if (tag == kInvalidTag) {
          continue;
        }
        const int va_shift = (tag & 1) != 0 ? kShift2M : kShift4K;
        const Addr va = (tag >> 1) << va_shift;
        const std::uint64_t span = 1ull << va_shift;
        if (va < end && va + span > base) {
          drop(l2_, set, w, tag);
        }
      }
    }
  }
}

void Tlb::FlushAll() {
  l1_4k_.Flush();
  l1_2m_.Flush();
  l1_1g_.Flush();
  l2_.Flush();
}

}  // namespace numalp
