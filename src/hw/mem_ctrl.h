// Memory-controller queueing model.
//
// The paper (and Dashti et al. [6]) report that an overloaded controller
// serves requests at ~1000 cycles versus ~200 when load is balanced. We model
// per-node service latency as a convex function of the node's share of the
// epoch's total DRAM traffic: a node serving its fair share (1/num_nodes)
// runs at base latency; latency rises quadratically once the node's
// utilization exceeds the provisioned headroom, capped at `max_multiplier`.
#ifndef NUMALP_SRC_HW_MEM_CTRL_H_
#define NUMALP_SRC_HW_MEM_CTRL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/units.h"

namespace numalp {

struct MemCtrlConfig {
  Cycles base_latency = 200;
  // Absolute per-controller capacity per epoch, expressed as a fraction of
  // (machine accesses per epoch / nodes): a controller saturates only when
  // its absolute request rate is high — imbalance in a low-intensity
  // workload is harmless (the paper's WC runs at 147% imbalance and still
  // gains +109% from THP).
  double capacity_fraction = 1.0;
  double max_multiplier = 5.5;  // 200 -> 1100 cycles fully overloaded
  // Utilization at which the latency multiplier reaches its cap.
  double saturation_utilization = 2.0;
};

class MemCtrlModel {
 public:
  explicit MemCtrlModel(const MemCtrlConfig& config) : config_(config) {}

  // Average service latency per node for an epoch with the given per-node
  // request counts. `capacity` is the per-controller request capacity for
  // the epoch (computed by the engine from the epoch's access volume).
  std::vector<Cycles> Latencies(std::span<const std::uint64_t> node_requests,
                                std::uint64_t capacity) const;

  Cycles LatencyForUtilization(double utilization) const;

  const MemCtrlConfig& config() const { return config_; }

 private:
  MemCtrlConfig config_;
};

}  // namespace numalp

#endif  // NUMALP_SRC_HW_MEM_CTRL_H_
