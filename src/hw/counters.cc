#include "src/hw/counters.h"

namespace numalp {

void CoreCounters::Accumulate(const CoreCounters& other) {
  accesses += other.accesses;
  dram_local += other.dram_local;
  dram_remote += other.dram_remote;
  tlb_l1_miss += other.tlb_l1_miss;
  tlb_l2_hit += other.tlb_l2_hit;
  tlb_walks += other.tlb_walks;
  walk_l2_miss += other.walk_l2_miss;
  faults_4k += other.faults_4k;
  faults_2m += other.faults_2m;
  faults_1g += other.faults_1g;
  fault_bytes += other.fault_bytes;
  exec_cycles += other.exec_cycles;
  dram_cycles += other.dram_cycles;
  fault_cycles += other.fault_cycles;
}

EpochCounters::EpochCounters(int num_cores, int num_nodes)
    : cores(static_cast<std::size_t>(num_cores)),
      node_requests(static_cast<std::size_t>(num_nodes), 0),
      node_incoming_remote(static_cast<std::size_t>(num_nodes), 0),
      core_node_requests(static_cast<std::size_t>(num_cores),
                         std::vector<std::uint64_t>(static_cast<std::size_t>(num_nodes), 0)) {}

void EpochCounters::Reset() {
  for (auto& core : cores) {
    core = CoreCounters{};
  }
  for (auto& r : node_requests) {
    r = 0;
  }
  for (auto& r : node_incoming_remote) {
    r = 0;
  }
  for (auto& row : core_node_requests) {
    for (auto& r : row) {
      r = 0;
    }
  }
}

std::uint64_t EpochCounters::TotalAccesses() const {
  std::uint64_t total = 0;
  for (const auto& core : cores) {
    total += core.accesses;
  }
  return total;
}

std::uint64_t EpochCounters::TotalDram() const {
  std::uint64_t total = 0;
  for (const auto& core : cores) {
    total += core.dram_accesses();
  }
  return total;
}

std::uint64_t EpochCounters::TotalLocal() const {
  std::uint64_t total = 0;
  for (const auto& core : cores) {
    total += core.dram_local;
  }
  return total;
}

std::uint64_t EpochCounters::TotalWalkL2Miss() const {
  std::uint64_t total = 0;
  for (const auto& core : cores) {
    total += core.walk_l2_miss;
  }
  return total;
}

std::uint64_t EpochCounters::TotalFaults() const {
  std::uint64_t total = 0;
  for (const auto& core : cores) {
    total += core.faults_4k + core.faults_2m + core.faults_1g;
  }
  return total;
}

}  // namespace numalp
