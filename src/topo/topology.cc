#include "src/topo/topology.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "src/common/log.h"

namespace numalp {

namespace {

// Fully connected hop matrix: one hop between any two distinct nodes.
std::vector<std::vector<int>> FullyConnected(int nodes) {
  std::vector<std::vector<int>> hops(static_cast<std::size_t>(nodes),
                                     std::vector<int>(static_cast<std::size_t>(nodes), 1));
  for (int i = 0; i < nodes; ++i) {
    hops[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0;
  }
  return hops;
}

// Opteron 6200 4-socket ladder: each socket holds two nodes (dies). Dies on
// the same socket are one hop apart; each die has direct HT links to three
// remote dies and reaches the remaining four in two hops. We reproduce that
// connectivity pattern with a ring-plus-chords layout.
std::vector<std::vector<int>> InterlagosLadder() {
  constexpr int kNodes = 8;
  auto hops = std::vector<std::vector<int>>(kNodes, std::vector<int>(kNodes, 2));
  auto link = [&hops](int a, int b) {
    hops[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 1;
    hops[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = 1;
  };
  for (int i = 0; i < kNodes; ++i) {
    hops[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0;
  }
  // Same-socket pairs.
  link(0, 1);
  link(2, 3);
  link(4, 5);
  link(6, 7);
  // Cross-socket HT links (one die of each socket to one die of the next).
  link(0, 2);
  link(1, 3);
  link(0, 4);
  link(1, 5);
  link(2, 6);
  link(3, 7);
  link(4, 6);
  link(5, 7);
  return hops;
}

}  // namespace

Topology::Topology(std::string name, int nodes, int cores_per_node,
                   std::uint64_t dram_bytes_per_node, std::vector<std::vector<int>> hops)
    : name_(std::move(name)), hops_(std::move(hops)) {
  nodes_.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    NodeInfo info;
    info.id = i;
    info.first_core = i * cores_per_node;
    info.num_cores = cores_per_node;
    info.dram_bytes = dram_bytes_per_node;
    nodes_.push_back(info);
  }
  num_cores_ = nodes * cores_per_node;
  core_to_node_.resize(static_cast<std::size_t>(num_cores_));
  for (int c = 0; c < num_cores_; ++c) {
    core_to_node_[static_cast<std::size_t>(c)] = c / cores_per_node;
  }
  for (const auto& row : hops_) {
    for (int h : row) {
      max_hops_ = std::max(max_hops_, h);
    }
  }
}

Topology Topology::MachineA(std::uint64_t memory_scale) {
  const std::uint64_t dram = 12 * kGiB / std::max<std::uint64_t>(1, memory_scale);
  return Topology("machineA", /*nodes=*/4, /*cores_per_node=*/6, dram, FullyConnected(4));
}

Topology Topology::MachineB(std::uint64_t memory_scale) {
  const std::uint64_t dram = 64 * kGiB / std::max<std::uint64_t>(1, memory_scale);
  return Topology("machineB", /*nodes=*/8, /*cores_per_node=*/8, dram, InterlagosLadder());
}

Topology Topology::Tiny(std::uint64_t dram_bytes_per_node) {
  return Topology("tiny", /*nodes=*/2, /*cores_per_node=*/2, dram_bytes_per_node,
                  FullyConnected(2));
}

std::uint64_t Topology::total_dram_bytes() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node.dram_bytes;
  }
  return total;
}

}  // namespace numalp
