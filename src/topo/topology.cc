#include "src/topo/topology.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "src/common/log.h"

namespace numalp {

namespace {

// Fully connected hop matrix: one hop between any two distinct nodes.
std::vector<std::vector<int>> FullyConnected(int nodes) {
  std::vector<std::vector<int>> hops(static_cast<std::size_t>(nodes),
                                     std::vector<int>(static_cast<std::size_t>(nodes), 1));
  for (int i = 0; i < nodes; ++i) {
    hops[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0;
  }
  return hops;
}

// Opteron 6200 4-socket ladder: each socket holds two nodes (dies). Dies on
// the same socket are one hop apart; each die has direct HT links to three
// remote dies and reaches the remaining four in two hops. We reproduce that
// connectivity pattern with a ring-plus-chords layout.
std::vector<std::vector<int>> InterlagosLadder() {
  constexpr int kNodes = 8;
  auto hops = std::vector<std::vector<int>>(kNodes, std::vector<int>(kNodes, 2));
  auto link = [&hops](int a, int b) {
    hops[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 1;
    hops[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = 1;
  };
  for (int i = 0; i < kNodes; ++i) {
    hops[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0;
  }
  // Same-socket pairs.
  link(0, 1);
  link(2, 3);
  link(4, 5);
  link(6, 7);
  // Cross-socket HT links (one die of each socket to one die of the next).
  link(0, 2);
  link(1, 3);
  link(0, 4);
  link(1, 5);
  link(2, 6);
  link(3, 7);
  link(4, 6);
  link(5, 7);
  return hops;
}

// Two-socket EPYC in NPS4 mode: four NUMA domains (CCD quadrants) per
// socket. Domains of one socket share the on-package fabric (one hop); any
// cross-socket access crosses the inter-socket link (two hops).
std::vector<std::vector<int>> EpycTwoSocket() {
  constexpr int kNodes = 8;
  constexpr int kPerSocket = 4;
  auto hops = std::vector<std::vector<int>>(kNodes, std::vector<int>(kNodes, 0));
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      if (a == b) {
        continue;
      }
      hops[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          (a / kPerSocket == b / kPerSocket) ? 1 : 2;
    }
  }
  return hops;
}

// Four-socket Xeon with sub-NUMA clustering: four clusters per socket (one
// hop apart on the mesh), sockets on a UPI ring — adjacent sockets add one
// ring step (two hops total), opposite sockets add two (three hops).
std::vector<std::vector<int>> SncRing16() {
  constexpr int kNodes = 16;
  constexpr int kPerSocket = 4;
  constexpr int kSockets = kNodes / kPerSocket;
  auto hops = std::vector<std::vector<int>>(kNodes, std::vector<int>(kNodes, 0));
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      if (a == b) {
        continue;
      }
      const int sa = a / kPerSocket;
      const int sb = b / kPerSocket;
      if (sa == sb) {
        hops[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 1;
        continue;
      }
      const int ring = std::min((sa - sb + kSockets) % kSockets,
                                (sb - sa + kSockets) % kSockets);
      hops[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 1 + ring;
    }
  }
  return hops;
}

}  // namespace

void Topology::FinishInit() {
  num_cores_ = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeInfo& info = nodes_[i];
    info.id = static_cast<int>(i);
    info.first_core = num_cores_;
    num_cores_ += info.num_cores;
    if (info.num_cores > 0) {
      cpu_nodes_.push_back(info.id);
    }
  }
  core_to_node_.resize(static_cast<std::size_t>(num_cores_));
  for (const NodeInfo& info : nodes_) {
    for (int c = 0; c < info.num_cores; ++c) {
      core_to_node_[static_cast<std::size_t>(info.first_core + c)] = info.id;
    }
  }
  for (const auto& row : hops_) {
    for (int h : row) {
      max_hops_ = std::max(max_hops_, h);
    }
  }
}

Topology::Topology(std::string name, int nodes, int cores_per_node,
                   std::uint64_t dram_bytes_per_node, std::vector<std::vector<int>> hops)
    : name_(std::move(name)), hops_(std::move(hops)) {
  nodes_.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    NodeInfo info;
    info.num_cores = cores_per_node;
    info.dram_bytes = dram_bytes_per_node;
    nodes_.push_back(info);
  }
  FinishInit();
}

Topology::Topology(std::string name, std::vector<NodeInfo> nodes,
                   std::vector<std::vector<int>> hops)
    : name_(std::move(name)), nodes_(std::move(nodes)), hops_(std::move(hops)) {
  FinishInit();
}

Topology Topology::MachineA(std::uint64_t memory_scale) {
  const std::uint64_t dram = 12 * kGiB / std::max<std::uint64_t>(1, memory_scale);
  return Topology("machineA", /*nodes=*/4, /*cores_per_node=*/6, dram, FullyConnected(4));
}

Topology Topology::MachineB(std::uint64_t memory_scale) {
  const std::uint64_t dram = 64 * kGiB / std::max<std::uint64_t>(1, memory_scale);
  return Topology("machineB", /*nodes=*/8, /*cores_per_node=*/8, dram, InterlagosLadder());
}

Topology Topology::Epyc8(std::uint64_t memory_scale) {
  const std::uint64_t dram = 32 * kGiB / std::max<std::uint64_t>(1, memory_scale);
  return Topology("epyc8", /*nodes=*/8, /*cores_per_node=*/8, dram, EpycTwoSocket());
}

Topology Topology::Snc16(std::uint64_t memory_scale) {
  const std::uint64_t dram = 16 * kGiB / std::max<std::uint64_t>(1, memory_scale);
  return Topology("snc16", /*nodes=*/16, /*cores_per_node=*/4, dram, SncRing16());
}

Topology Topology::Cxl(std::uint64_t memory_scale) {
  const std::uint64_t scale = std::max<std::uint64_t>(1, memory_scale);
  // epyc8 compute complex with tighter local DRAM (half of epyc8 per node),
  // so realistic footprints actually spill into the expanders...
  std::vector<NodeInfo> nodes(8);
  for (NodeInfo& info : nodes) {
    info.num_cores = 8;
    info.dram_bytes = 16 * kGiB / scale;
  }
  // ...plus two CXL Type-3 expanders: no cores, generous capacity, and a
  // flat extra service latency in the ~150ns class (measured CXL memory
  // adds 2-3x local DRAM latency; 400 cycles on top of the 200-cycle base
  // lands in that band).
  for (int i = 0; i < 2; ++i) {
    NodeInfo far;
    far.num_cores = 0;
    far.dram_bytes = 64 * kGiB / scale;
    far.far_memory = true;
    far.extra_latency = 400;
    nodes.push_back(far);
  }
  // CPU nodes keep the EPYC shape; every CPU node reaches either expander
  // through the host bridge + switch (two hops). The expanders never talk to
  // each other (no cores), but the matrix still needs a finite entry.
  auto hops = std::vector<std::vector<int>>(10, std::vector<int>(10, 0));
  for (int a = 0; a < 10; ++a) {
    for (int b = 0; b < 10; ++b) {
      if (a == b) {
        continue;
      }
      const bool far_a = a >= 8;
      const bool far_b = b >= 8;
      if (!far_a && !far_b) {
        hops[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
            (a / 4 == b / 4) ? 1 : 2;
      } else {
        hops[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 2;
      }
    }
  }
  return Topology("cxl", std::move(nodes), std::move(hops));
}

Topology Topology::Tiny(std::uint64_t dram_bytes_per_node) {
  return Topology("tiny", /*nodes=*/2, /*cores_per_node=*/2, dram_bytes_per_node,
                  FullyConnected(2));
}

std::uint64_t Topology::total_dram_bytes() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node.dram_bytes;
  }
  return total;
}

}  // namespace numalp
