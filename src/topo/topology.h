// NUMA machine topology: nodes, cores, DRAM capacities, interconnect hops.
//
// Presets reproduce the paper's two evaluation machines (Section 2.1):
//   Machine A: 2x AMD Opteron 6164 HE -> 4 NUMA nodes, 6 cores + 12GB each.
//   Machine B: 4x AMD Opteron 6272   -> 8 NUMA nodes, 8 cores + 64GB each.
// Both use HyperTransport 3.0 links; A is fully connected, B needs up to two
// hops between sockets (the Opteron 6200 "Interlagos" ladder layout).
//
// DRAM capacities are divided by MachineConfig::memory_scale (default 48) so
// experiments keep the paper's footprint-to-DRAM ratios while the simulator's
// bookkeeping stays small; workload footprints are scaled identically.
#ifndef NUMALP_SRC_TOPO_TOPOLOGY_H_
#define NUMALP_SRC_TOPO_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace numalp {

struct NodeInfo {
  int id = 0;
  int first_core = 0;
  int num_cores = 0;
  std::uint64_t dram_bytes = 0;
};

class Topology {
 public:
  // Uniform topology: `nodes` nodes with `cores_per_node` cores and
  // `dram_bytes_per_node` DRAM each, plus an explicit hop matrix.
  Topology(std::string name, int nodes, int cores_per_node, std::uint64_t dram_bytes_per_node,
           std::vector<std::vector<int>> hops);

  // Paper presets. `memory_scale` divides the per-node DRAM (>= 1).
  static Topology MachineA(std::uint64_t memory_scale = 48);
  static Topology MachineB(std::uint64_t memory_scale = 48);
  // A tiny 2-node machine for unit tests.
  static Topology Tiny(std::uint64_t dram_bytes_per_node = 64 * kMiB);

  const std::string& name() const { return name_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_cores() const { return num_cores_; }
  const NodeInfo& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }

  int NodeOfCore(int core) const { return core_to_node_[static_cast<std::size_t>(core)]; }

  // Interconnect hop count between nodes (0 when equal).
  int Hops(int from, int to) const {
    return hops_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  }
  int max_hops() const { return max_hops_; }

  std::uint64_t total_dram_bytes() const;

 private:
  std::string name_;
  std::vector<NodeInfo> nodes_;
  std::vector<int> core_to_node_;
  std::vector<std::vector<int>> hops_;
  int num_cores_ = 0;
  int max_hops_ = 0;
};

}  // namespace numalp

#endif  // NUMALP_SRC_TOPO_TOPOLOGY_H_
