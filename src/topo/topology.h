// NUMA machine topology: nodes, cores, DRAM capacities, interconnect hops.
//
// Presets reproduce the paper's two evaluation machines (Section 2.1):
//   Machine A: 2x AMD Opteron 6164 HE -> 4 NUMA nodes, 6 cores + 12GB each.
//   Machine B: 4x AMD Opteron 6272   -> 8 NUMA nodes, 8 cores + 64GB each.
// Both use HyperTransport 3.0 links; A is fully connected, B needs up to two
// hops between sockets (the Opteron 6200 "Interlagos" ladder layout).
//
// Datacenter presets (DESIGN.md Section 13) extend the evaluation beyond the
// paper's hardware:
//   epyc8:  2-socket EPYC in NPS4 mode -> 8 NUMA nodes, 8 cores + 32GB each;
//           intra-socket dies one hop, cross-socket two.
//   snc16:  4-socket Xeon with sub-NUMA clustering -> 16 nodes, 4 cores +
//           16GB each; clusters of a socket one hop, UPI ring between
//           sockets adds one hop per ring step (up to three total).
//   cxl:    epyc8 plus two CPU-less CXL far-memory expanders: allocatable
//           capacity, no cores, and a flat extra DRAM latency on every
//           access they serve (NodeInfo::extra_latency).
//
// DRAM capacities are divided by MachineConfig::memory_scale (default 48) so
// experiments keep the paper's footprint-to-DRAM ratios while the simulator's
// bookkeeping stays small; workload footprints are scaled identically.
#ifndef NUMALP_SRC_TOPO_TOPOLOGY_H_
#define NUMALP_SRC_TOPO_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace numalp {

struct NodeInfo {
  int id = 0;
  int first_core = 0;
  int num_cores = 0;
  std::uint64_t dram_bytes = 0;
  // Far-memory (CXL-style) node: zero cores, allocatable capacity, and a
  // flat extra service latency added to every DRAM access it serves. Far
  // nodes never originate traffic and are excluded from interleave target
  // sets (interleaving onto a CPU-less node is pure latency tax — DESIGN.md
  // Section 13); they still absorb capacity spill through the buddy
  // allocator's hop-ordered fallback.
  bool far_memory = false;
  Cycles extra_latency = 0;
};

class Topology {
 public:
  // Uniform topology: `nodes` nodes with `cores_per_node` cores and
  // `dram_bytes_per_node` DRAM each, plus an explicit hop matrix.
  Topology(std::string name, int nodes, int cores_per_node, std::uint64_t dram_bytes_per_node,
           std::vector<std::vector<int>> hops);

  // Non-uniform topology: explicit per-node shapes (far-memory nodes, mixed
  // capacities). Node ids and first_core fields are recomputed from the
  // vector order; CPU nodes must carry equal core counts (thread pinning
  // round-robins across them).
  Topology(std::string name, std::vector<NodeInfo> nodes, std::vector<std::vector<int>> hops);

  // Paper presets. `memory_scale` divides the per-node DRAM (>= 1).
  static Topology MachineA(std::uint64_t memory_scale = 48);
  static Topology MachineB(std::uint64_t memory_scale = 48);
  // Datacenter presets (DESIGN.md Section 13).
  static Topology Epyc8(std::uint64_t memory_scale = 48);
  static Topology Snc16(std::uint64_t memory_scale = 48);
  static Topology Cxl(std::uint64_t memory_scale = 48);
  // A tiny 2-node machine for unit tests.
  static Topology Tiny(std::uint64_t dram_bytes_per_node = 64 * kMiB);

  const std::string& name() const { return name_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_cores() const { return num_cores_; }
  const NodeInfo& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }

  int NodeOfCore(int core) const { return core_to_node_[static_cast<std::size_t>(core)]; }

  // CPU-bearing nodes, in id order. On all-CPU machines this is simply
  // 0..num_nodes-1, which is what keeps the datacenter-aware placement and
  // interleave paths bit-identical to the pre-CXL engine on every paper
  // preset.
  const std::vector<int>& cpu_nodes() const { return cpu_nodes_; }
  int num_cpu_nodes() const { return static_cast<int>(cpu_nodes_.size()); }
  bool IsFarMemory(int node) const {
    return nodes_[static_cast<std::size_t>(node)].far_memory;
  }
  bool has_far_memory() const { return num_cpu_nodes() != num_nodes(); }

  // Interconnect hop count between nodes (0 when equal).
  int Hops(int from, int to) const {
    return hops_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  }
  int max_hops() const { return max_hops_; }

  std::uint64_t total_dram_bytes() const;

 private:
  void FinishInit();

  std::string name_;
  std::vector<NodeInfo> nodes_;
  std::vector<int> core_to_node_;
  std::vector<int> cpu_nodes_;
  std::vector<std::vector<int>> hops_;
  int num_cores_ = 0;
  int max_hops_ = 0;
};

}  // namespace numalp

#endif  // NUMALP_SRC_TOPO_TOPOLOGY_H_
