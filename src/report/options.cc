#include "src/report/options.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "src/report/sink.h"

namespace numalp::report {

namespace {

void PrintUsage(std::FILE* out, const ToolInfo& info) {
  std::fprintf(out, "%s — %s\n\n", info.name, info.description);
  std::fprintf(out,
               "usage: %s [options]\n"
               "  --format md|csv|jsonl  stdout format (default: md, an aligned table)\n"
               "  --out-dir DIR          also write DIR/%s.csv and DIR/%s.jsonl\n"
               "  --jobs N               worker threads (default: NUMALP_JOBS, then cores)\n"
               "  --seed N               base seed of the sweep's seed axis\n"
               "  --epochs N             cap epochs per run (NUMALP_MAX_EPOCHS)\n"
               "  --accesses N           accesses per thread per epoch"
               " (NUMALP_ACCESSES_PER_EPOCH)\n"
               "  --shards N             intra-cell shard threads per simulation"
               " (NUMALP_SHARDS);\n"
               "                         clamped to the host budget unless forced,"
               " never changes results\n"
               "  --profile-mode M       profiling metadata: exact | sketch"
               " (NUMALP_PROFILE_MODE;\n"
               "                         default exact; sketch at the default"
               " threshold of 1 is\n"
               "                         bit-identical, >= 2 bounds state on sparse"
               " footprints)\n"
               "  --profile-threshold N  sketch admission threshold"
               " (NUMALP_PROFILE_THRESHOLD)\n"
               "  --profile-capacity N   sketch filter slots"
               " (NUMALP_PROFILE_FILTER_CAPACITY)\n"
               "  --fault-profile P      deterministic fault injection: off |"
               " frag | pressure |\n"
               "                         churn (NUMALP_FAULT_PROFILE; default"
               " off — byte-identical\n"
               "                         to a build without fault support)\n"
               "  --fault-alloc-pct X    override the profile's large-page"
               " allocation failure %%\n"
               "                         (NUMALP_FAULT_ALLOC_PCT)\n"
               "  --fault-migrate-pct X  override the profile's 4KB migration"
               " failure %% (NUMALP_FAULT_MIGRATE_PCT)\n"
               "  --fault-large-migrate-pct X  override the profile's 2MB"
               " migration failure %%\n"
               "                         (NUMALP_FAULT_LARGE_MIGRATE_PCT; needs"
               " target-node contiguity,\n"
               "                         so profiles default it well above the"
               " 4KB rate)\n"
               "  --fault-pressure-pct X override the profile's node-pressure"
               " entry %% (NUMALP_FAULT_PRESSURE_PCT)\n"
               "  --resume               continue a crashed --out-dir grid"
               " from its manifest;\n"
               "                         completed cells are skipped and the"
               " final files are\n"
               "                         byte-identical to an uninterrupted"
               " run\n"
               "  --cell-deadline-ms N   watchdog soft deadline per grid cell"
               " (NUMALP_CELL_DEADLINE_MS;\n"
               "                         0 disables, the default)\n"
               "  --cell-retries N       retry budget for failed or overrun"
               " cells\n"
               "                         (NUMALP_CELL_RETRIES; default 1)\n"
               "  --help                 this message\n",
               info.name, info.bench_id, info.bench_id);
  if (info.extra_usage != nullptr && info.extra_usage[0] != '\0') {
    std::fprintf(out, "%s", info.extra_usage);
  }
}

}  // namespace

Options ParseToolArgs(int argc, char** argv, const ToolInfo& info,
                      const std::vector<ExtraFlag>& extras) {
  Options options;
  options.sim = WithEnvOverrides(SimConfig{});

  auto fail = [&]() {
    PrintUsage(stderr, info);
    std::exit(2);
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        fail();
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout, info);
      std::exit(0);
    } else if (arg == "--format") {
      options.format = next();
      if (!IsKnownFormat(options.format)) {
        fail();
      }
    } else if (arg == "--out-dir") {
      options.out_dir = next();
    } else if (arg == "--jobs") {
      options.jobs = std::atoi(next());
    } else if (arg == "--seed") {
      options.sim.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--epochs") {
      options.sim.max_epochs = std::atoi(next());
    } else if (arg == "--accesses") {
      options.sim.accesses_per_thread_per_epoch = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--shards") {
      options.sim.shards = std::atoi(next());
    } else if (arg == "--profile-mode") {
      if (!ParseProfileMode(next(), &options.sim.profile_mode)) {
        fail();
      }
    } else if (arg == "--profile-threshold") {
      options.sim.profile_sketch.admit_threshold = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--profile-capacity") {
      options.sim.profile_sketch.filter_capacity = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--fault-profile") {
      const auto profile = ParseFaultProfile(next());
      if (!profile) {
        fail();
      }
      options.sim.faults.profile = *profile;
    } else if (arg == "--fault-alloc-pct") {
      options.sim.faults.alloc_fail_pct = std::strtod(next(), nullptr);
    } else if (arg == "--fault-migrate-pct") {
      options.sim.faults.migrate_fail_pct = std::strtod(next(), nullptr);
    } else if (arg == "--fault-large-migrate-pct") {
      options.sim.faults.large_migrate_fail_pct = std::strtod(next(), nullptr);
    } else if (arg == "--fault-pressure-pct") {
      options.sim.faults.pressure_pct = std::strtod(next(), nullptr);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--cell-deadline-ms") {
      options.cell_deadline_ms = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--cell-retries") {
      options.cell_retries = std::atoi(next());
    } else {
      bool handled = false;
      for (const ExtraFlag& extra : extras) {
        if (arg == extra.flag) {
          const char* value = extra.takes_value ? next() : nullptr;
          if (!extra.handle(value)) {
            fail();
          }
          handled = true;
          break;
        }
      }
      if (!handled) {
        fail();
      }
    }
  }
  return options;
}

std::optional<BenchmarkId> ParseWorkloadName(const std::string& name) {
  for (BenchmarkId id : FullSuite()) {
    if (name == NameOf(id)) {
      return id;
    }
  }
  if (name == "streamcluster" || name == NameOf(BenchmarkId::kStreamcluster)) {
    return BenchmarkId::kStreamcluster;
  }
  if (name == NameOf(BenchmarkId::kSparseFootprint)) {
    return BenchmarkId::kSparseFootprint;
  }
  return std::nullopt;
}

std::string KnownWorkloadNames() {
  std::string names;
  auto add = [&names](std::string_view name) {
    if (!names.empty()) {
      names += " ";
    }
    names += name;
  };
  for (BenchmarkId id : FullSuite()) {
    add(NameOf(id));
  }
  add(NameOf(BenchmarkId::kStreamcluster));
  add(NameOf(BenchmarkId::kSparseFootprint));
  return names;
}

std::optional<PolicyKind> ParsePolicyName(const std::string& name) {
  if (name == "linux" || name == "linux-4k") {
    return PolicyKind::kLinux4K;
  }
  if (name == "thp") {
    return PolicyKind::kThp;
  }
  if (name == "carrefour-2m" || name == "carrefour") {
    return PolicyKind::kCarrefour2M;
  }
  if (name == "reactive") {
    return PolicyKind::kReactiveOnly;
  }
  if (name == "conservative") {
    return PolicyKind::kConservativeOnly;
  }
  if (name == "carrefour-lp" || name == "lp") {
    return PolicyKind::kCarrefourLp;
  }
  return std::nullopt;
}

std::optional<Topology> ParseMachineName(const std::string& name) {
  if (name == "A" || name == "machineA") {
    return Topology::MachineA();
  }
  if (name == "B" || name == "machineB") {
    return Topology::MachineB();
  }
  if (name == "epyc8") {
    return Topology::Epyc8();
  }
  if (name == "snc16") {
    return Topology::Snc16();
  }
  if (name == "cxl") {
    return Topology::Cxl();
  }
  return std::nullopt;
}

namespace {

template <typename T, typename Parse>
ExtraFlag AssigningFlag(const char* flag, T* out, Parse parse) {
  return {flag, true, [out, parse](const char* value) {
            const auto parsed = parse(value);
            if (parsed) {
              *out = *parsed;
            }
            return parsed.has_value();
          }};
}

}  // namespace

ExtraFlag WorkloadFlag(BenchmarkId* out, std::string* trace_file) {
  return {"--workload", true, [out, trace_file](const char* value) {
            const std::string name = value;
            if (name.rfind("trace:", 0) == 0) {
              if (trace_file == nullptr) {
                std::fprintf(stderr, "%s: this tool does not support trace replay\n",
                             value);
                return false;
              }
              *trace_file = name.substr(6);
              return !trace_file->empty();
            }
            const auto parsed = ParseWorkloadName(name);
            if (!parsed) {
              std::fprintf(stderr,
                           "unknown workload '%s'; valid names: %s%s\n", value,
                           KnownWorkloadNames().c_str(),
                           trace_file != nullptr
                               ? ", or trace:FILE (replay a recorded trace)"
                               : "");
              return false;
            }
            *out = *parsed;
            return true;
          }};
}

ExtraFlag MachineFlag(Topology* out) {
  return AssigningFlag("--machine", out, ParseMachineName);
}

ExtraFlag PolicyFlag(PolicyKind* out) {
  return AssigningFlag("--policy", out, ParsePolicyName);
}

}  // namespace numalp::report
