// GridReport: the glue between a bench's declared sweep and its result
// sinks. It registers a RunObserver on the ExperimentRunner so every grid
// cell is captured as a ResultRow at the point of completion, in
// grid-coordinate order regardless of --jobs (the runner reports cells in
// ascending index order; DESIGN.md Section 6). Rows carry the improvement
// against their same-seed Linux-4K baseline: grid expansion places each
// baseline before its policy cells, so the baseline's cycles are always
// cached by the time a policy cell streams.
#ifndef NUMALP_SRC_REPORT_COLLECTOR_H_
#define NUMALP_SRC_REPORT_COLLECTOR_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/runner.h"
#include "src/report/options.h"
#include "src/report/sink.h"

namespace numalp::report {

class GridReport {
 public:
  // CLI constructor: builds the stdout sink from --format plus, when
  // --out-dir was given, <out_dir>/<bench_id>.csv and .jsonl file sinks
  // (creating the directory). Prints to stderr and exits 2 on I/O errors.
  //
  // With --out-dir the grid is checkpointed (DESIGN.md Section 12): after
  // every row both files are flushed and <bench_id>.manifest.json is
  // rewritten atomically (tmp + rename) with the done-cell count and the
  // durable byte offsets. With --resume, a manifest left by a killed run is
  // read back: the files are truncated to their recorded offsets (dropping
  // any torn tail), the completed prefix of cells is skipped, and streaming
  // state (baselines, seed counters) is rebuilt from the recovered rows —
  // the finished files are byte-identical to an uninterrupted run. The
  // GridResults/RunResult values returned for skipped cells are
  // default-constructed; resume mode regenerates the row files, not
  // in-process summaries.
  GridReport(const Options& options, const ToolInfo& info);

  // Test/embedding constructor: writes rows to `sink` only.
  GridReport(std::unique_ptr<ResultSink> sink, std::string bench_id, int jobs = 0);

  ~GridReport();  // calls Finish()

  GridReport(const GridReport&) = delete;
  GridReport& operator=(const GridReport&) = delete;

  // Runs the grid(s) with streaming capture; every cell (baselines
  // included) becomes one row. Row seed_index is the cell's position on the
  // grid's seed axis.
  GridResults Run(const ExperimentGrid& grid);
  std::vector<GridResults> Run(const std::vector<ExperimentGrid>& grids);

  // Flat cell lists, for sweeps the declarative grid cannot express.
  struct CellMeta {
    std::string variant;  // sweep-point tag recorded on the row
    // Index of the cell's Linux-4K baseline within the same list; must be
    // less than the cell's own index (cells stream in order). -1 = the cell
    // is its own baseline (improvement 0).
    int baseline = -1;
    int seed_index = 0;
  };
  std::vector<RunResult> RunCells(const std::vector<RunSpec>& cells,
                                  const std::vector<CellMeta>& meta);
  // Convenience: default meta (no variant, no baseline) for every cell.
  std::vector<RunResult> RunCells(const std::vector<RunSpec>& cells);

  // Flushes the sinks (markdown prints its aligned table here). Idempotent;
  // the destructor calls it.
  void Finish();

 private:
  void EmitGridCell(const RunSpec& spec, const RunResult& result);
  // Flushes the file sinks and rewrites the manifest (tmp + rename); no-op
  // without --out-dir.
  void Checkpoint();
  // Reads the manifest, truncates the files to their durable offsets, loads
  // the recovered rows and rebuilds the grid streaming state.
  void LoadResumeState();
  // Arms the runner's skip prefix for a run over `cells_in_run` cells and
  // returns how many of them are already recovered.
  std::size_t TakeResumeSkip(std::size_t cells_in_run);

  std::string bench_id_;
  std::unique_ptr<MultiSink> sinks_;
  ExperimentRunner runner_;
  bool finished_ = false;

  // Streaming state for grid runs.
  struct BaselineCycles {
    std::uint64_t total = 0;
    std::uint64_t measured = 0;
  };
  std::map<std::string, BaselineCycles> baselines_;  // (machine|workload|seed)
  std::map<std::string, int> seen_;                  // row count per column key

  // Checkpoint/resume state (--out-dir only).
  bool checkpointing_ = false;
  std::string csv_path_;
  std::string jsonl_path_;
  std::string manifest_path_;
  std::unique_ptr<std::ofstream> csv_stream_;
  std::unique_ptr<std::ofstream> jsonl_stream_;
  std::size_t cells_done_ = 0;  // rows durably recorded (cumulative)
  std::vector<ResultRow> resume_rows_;  // rows recovered by --resume
  std::size_t resume_remaining_ = 0;    // recovered rows not yet skipped
  std::size_t resume_consumed_ = 0;     // cursor into resume_rows_
};

}  // namespace numalp::report

#endif  // NUMALP_SRC_REPORT_COLLECTOR_H_
