// The typed unit of the results pipeline: one ResultRow per executed grid
// cell, carrying the cell's coordinates (bench, machine, workload, policy,
// variant, seed) and every metric the paper reports, flattened from the
// RunResult and its EpochRecords. Field names and units are the JSONL/CSV
// schema documented in DESIGN.md Section 6; ResultSchema() is the single
// source of truth that the sinks (sink.h) and the aggregator's parser
// (aggregate.h) both consume, so serialization and parsing cannot diverge.
#ifndef NUMALP_SRC_REPORT_RESULT_ROW_H_
#define NUMALP_SRC_REPORT_RESULT_ROW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/runner.h"
#include "src/core/simulation.h"

namespace numalp::report {

struct ResultRow {
  // Coordinates: where in the reproduction this run belongs.
  std::string bench;     // emitting figure/table id, e.g. "fig1"
  std::string machine;   // topology name, e.g. "machineB"
  std::string workload;  // workload name, e.g. "CG.D"
  std::string policy;    // PolicyKind name, e.g. "Carrefour-LP"
  std::string variant;   // sweep-point tag, e.g. "ibs=1/64"; "" for grid cells
  int seed_index = 0;    // position on the grid's seed axis
  std::uint64_t seed = 0;  // the fully-derived simulation seed

  // Run shape.
  bool completed = false;
  int epochs = 0;
  std::uint64_t total_cycles = 0;
  std::uint64_t measured_cycles = 0;  // steady-state (non-setup) epochs only
  double runtime_ms = 0.0;
  double improvement_pct = 0.0;  // vs the same-seed Linux-4K baseline

  // Paper metrics (Sections 2.2 / 3.1 vocabulary).
  double lar_pct = 0.0;
  double imbalance_pct = 0.0;
  double pamup_pct = 0.0;
  int nhp = 0;
  double psp_pct = 0.0;
  double walk_l2_miss_pct = 0.0;
  double steady_fault_share_pct = 0.0;
  double max_fault_ms = 0.0;
  double thp_coverage_pct = 0.0;

  // Policy activity, summed over the run's EpochRecords.
  std::uint64_t migrations = 0;
  std::uint64_t splits = 0;
  std::uint64_t promotions = 0;
  double overhead_pct = 0.0;  // policy overhead / total cycles

  // Reactive-component LAR estimates: mean over steady epochs where the
  // estimator ran (0 when the reactive component was inactive).
  double est_carrefour_lar_pct = 0.0;
  double est_split_lar_pct = 0.0;

  // Cell health and fault-injection telemetry (DESIGN.md Section 12).
  // status: "ok", "deadline" (watchdog cancelled), or "failed: <reason>".
  // The fault_* counters are zero with faults off; the buddy_* fields are
  // filled on every run and explain fault-mode behavior (why 2MB
  // allocations failed) in numalp_report output.
  std::string status = "ok";
  std::uint64_t fault_alloc_failures = 0;
  std::uint64_t fault_migration_failures = 0;
  std::uint64_t fault_split_failures = 0;
  std::uint64_t fault_truncated_plans = 0;
  std::uint64_t fault_pressure_epochs = 0;
  std::uint64_t fault_promote_backoffs = 0;
  std::uint64_t fault_retried_migrations = 0;
  std::uint64_t fault_abandoned_pages = 0;
  std::uint64_t thp_fallback_faults = 0;
  double frag_index_pct = 0.0;
  int buddy_largest_free_order = -1;
  std::uint64_t buddy_free_2m_blocks = 0;
  std::uint64_t buddy_alloc_failures = 0;

  // Trace provenance and mmap-lifetime churn (DESIGN.md Section 14).
  // trace_source is "workload@machine#seed" from the trace header when the
  // run captured or replayed a trace, "" otherwise — a capture and its
  // replay carry the same value, keeping their rows byte-identical.
  std::string trace_source;
  std::uint64_t region_maps = 0;    // regions mapped after the run began
  std::uint64_t region_unmaps = 0;  // regions whose lifetime ended mid-run
  std::uint64_t unmapped_bytes = 0;
};

enum class FieldType { kString, kBool, kInt, kUint, kDouble };

// One schema entry: a name, a unit (for documentation; "" = dimensionless
// or a count), and the member it maps to. Exactly one member pointer is
// non-null, matching `type`.
struct ResultField {
  const char* name;
  const char* unit;
  FieldType type;
  std::string ResultRow::* s = nullptr;
  bool ResultRow::* b = nullptr;
  int ResultRow::* i = nullptr;
  std::uint64_t ResultRow::* u = nullptr;
  double ResultRow::* d = nullptr;
};

// The schema, in serialization order (coordinates first, then metrics).
const std::vector<ResultField>& ResultSchema();

// Canonical value serialization: doubles use the shortest round-trip form
// (std::to_chars), integers are decimal, bools are "true"/"false". Both the
// CSV and JSONL sinks emit exactly these strings, which is what makes
// serialize -> parse -> serialize the identity.
std::string FieldToString(const ResultRow& row, const ResultField& field);

// Parses `text` into the field; returns false on a malformed value.
bool FieldFromString(ResultRow& row, const ResultField& field, const std::string& text);

// Canonical shortest-round-trip double formatting (exposed for the sinks).
std::string CanonicalDouble(double value);

// JSON string-value escaping shared by every JSON writer (the JSONL sink
// and the aggregate/summary writers must not diverge).
std::string JsonEscape(const std::string& value);

// Flattens one executed cell into a row. `baseline` is the cell's same-seed
// Linux-4K baseline (improvement_pct is 0 when null or when the run is its
// own baseline); `clock_ghz` converts cycle counts to milliseconds.
ResultRow MakeResultRow(const std::string& bench, const RunSpec& spec, const RunResult& run,
                        const RunResult* baseline, int seed_index, double clock_ghz,
                        const std::string& variant = "");

}  // namespace numalp::report

#endif  // NUMALP_SRC_REPORT_RESULT_ROW_H_
