#include "src/report/collector.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>

#include "src/report/aggregate.h"
#include "src/report/result_row.h"

namespace numalp::report {

namespace {

// A stand-in baseline carrying only the cycle counts ImprovementPct reads.
RunResult CyclesOnly(std::uint64_t total, std::uint64_t measured) {
  RunResult result;
  result.total_cycles = total;
  result.measured_cycles = measured;
  return result;
}

}  // namespace

GridReport::GridReport(const Options& options, const ToolInfo& info)
    : bench_id_(info.bench_id), sinks_(std::make_unique<MultiSink>()),
      runner_(options.jobs) {
  if (options.cell_deadline_ms >= 0) {
    runner_.set_cell_deadline_ms(options.cell_deadline_ms);
  }
  if (options.cell_retries >= 0) {
    runner_.set_max_cell_retries(options.cell_retries);
  }
  sinks_->Add(MakeSink(options.format, std::cout));
  if (!options.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "%s: cannot create %s: %s\n", info.name, options.out_dir.c_str(),
                   ec.message().c_str());
      std::exit(2);
    }
    const std::string stem = options.out_dir + "/" + std::string(info.bench_id);
    csv_path_ = stem + ".csv";
    jsonl_path_ = stem + ".jsonl";
    manifest_path_ = stem + ".manifest.json";
    if (options.resume) {
      LoadResumeState();
    }
    const auto csv_size = std::filesystem::file_size(csv_path_, ec);
    const bool csv_has_content = !ec && csv_size > 0;
    csv_stream_ = std::make_unique<std::ofstream>(csv_path_, std::ios::app);
    jsonl_stream_ = std::make_unique<std::ofstream>(jsonl_path_, std::ios::app);
    if (!*csv_stream_ || !*jsonl_stream_) {
      std::fprintf(stderr, "%s: cannot open %s.{csv,jsonl}\n", info.name, stem.c_str());
      std::exit(2);
    }
    sinks_->Add(std::make_unique<CsvSink>(*csv_stream_, /*write_header=*/!csv_has_content));
    sinks_->Add(std::make_unique<JsonlSink>(*jsonl_stream_));
    checkpointing_ = true;
  }
}

GridReport::GridReport(std::unique_ptr<ResultSink> sink, std::string bench_id, int jobs)
    : bench_id_(std::move(bench_id)), sinks_(std::make_unique<MultiSink>()), runner_(jobs) {
  sinks_->Add(std::move(sink));
}

GridReport::~GridReport() { Finish(); }

void GridReport::Checkpoint() {
  if (!checkpointing_) {
    return;
  }
  csv_stream_->flush();
  jsonl_stream_->flush();
  ++cells_done_;
  const std::string tmp = manifest_path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << "{\"version\":1,\"bench\":\"" << JsonEscape(bench_id_)
        << "\",\"cells_done\":" << cells_done_
        << ",\"csv_bytes\":" << static_cast<std::uint64_t>(csv_stream_->tellp())
        << ",\"jsonl_bytes\":" << static_cast<std::uint64_t>(jsonl_stream_->tellp())
        << "}\n";
  }
  // The rename is what makes a row durable: a kill at any point leaves
  // either the old manifest (the new row's bytes become a torn tail that
  // resume truncates away) or the new one (the row is fully flushed first).
  std::error_code ec;
  std::filesystem::rename(tmp, manifest_path_, ec);
}

void GridReport::LoadResumeState() {
  std::ifstream manifest(manifest_path_);
  if (!manifest) {
    return;  // no manifest: nothing recorded, run from scratch
  }
  std::string line;
  std::getline(manifest, line);
  const auto field = [&line](const char* key) -> std::uint64_t {
    const std::size_t pos = line.find(key);
    if (pos == std::string::npos) {
      return 0;
    }
    return std::strtoull(line.c_str() + pos + std::strlen(key), nullptr, 10);
  };
  const std::uint64_t cells_done = field("\"cells_done\":");
  const std::uint64_t csv_bytes = field("\"csv_bytes\":");
  const std::uint64_t jsonl_bytes = field("\"jsonl_bytes\":");
  if (cells_done == 0) {
    return;
  }
  // Drop any torn tail past the durable offsets. A file shorter than its
  // recorded offset means the manifest and data are inconsistent (manual
  // tampering); start over rather than resize-extend with zeros.
  std::error_code ec;
  const auto csv_size = std::filesystem::file_size(csv_path_, ec);
  if (ec || csv_size < csv_bytes) {
    return;
  }
  const auto jsonl_size = std::filesystem::file_size(jsonl_path_, ec);
  if (ec || jsonl_size < jsonl_bytes) {
    return;
  }
  std::filesystem::resize_file(csv_path_, csv_bytes, ec);
  if (ec) {
    return;
  }
  std::filesystem::resize_file(jsonl_path_, jsonl_bytes, ec);
  if (ec) {
    return;
  }
  resume_rows_ = LoadJsonlFile(jsonl_path_, nullptr);
  if (resume_rows_.size() > cells_done) {
    resume_rows_.resize(cells_done);
  }
  cells_done_ = resume_rows_.size();
  resume_remaining_ = resume_rows_.size();
  // Rebuild the streaming state EmitGridCell accumulated over the recovered
  // grid rows (RunCells rows carry a variant tag and keep their own
  // positional state, rebuilt per call from resume_rows_).
  for (const ResultRow& row : resume_rows_) {
    if (!row.variant.empty()) {
      continue;
    }
    const std::string base_key =
        row.machine + "|" + row.workload + "|" + std::to_string(row.seed);
    if (row.policy == "Linux-4K") {
      baselines_[base_key] = BaselineCycles{row.total_cycles, row.measured_cycles};
    }
    seen_[row.machine + "|" + row.workload + "|" + row.policy]++;
  }
}

std::size_t GridReport::TakeResumeSkip(std::size_t cells_in_run) {
  const std::size_t skip = std::min(resume_remaining_, cells_in_run);
  resume_remaining_ -= skip;
  runner_.set_skip_prefix(skip);
  return skip;
}

namespace {

// Cells a declarative grid expands to (runner.cc ExpandGrid): one baseline
// per (machine, workload, seed) plus one cell per non-Linux-4K policy.
std::size_t GridCellCount(const ExperimentGrid& grid) {
  std::size_t extra = 0;
  for (const PolicyKind kind : grid.policies) {
    if (kind != PolicyKind::kLinux4K) {
      ++extra;
    }
  }
  return grid.machines.size() * grid.workloads.size() *
         static_cast<std::size_t>(grid.num_seeds) * (1 + extra);
}

}  // namespace

void GridReport::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  sinks_->Finish();
}

// Grid cells carry their coordinates in the RunSpec itself: the machine,
// workload and policy name the column, the seed names the axis position
// (rows of one column stream in ascending seed order, so the column's row
// count is the seed index), and a kLinux4K cell is by construction the
// (machine, workload, seed) baseline of everything that follows it.
void GridReport::EmitGridCell(const RunSpec& spec, const RunResult& result) {
  const std::string base_key =
      result.machine + "|" + result.workload + "|" + std::to_string(spec.sim.seed);
  ResultRow row;
  if (result.policy == PolicyKind::kLinux4K) {
    baselines_[base_key] = BaselineCycles{result.total_cycles, result.measured_cycles};
    row = MakeResultRow(bench_id_, spec, result, nullptr, 0, spec.sim.clock_ghz);
  } else {
    const auto it = baselines_.find(base_key);
    const RunResult baseline =
        it != baselines_.end() ? CyclesOnly(it->second.total, it->second.measured)
                               : RunResult{};
    row = MakeResultRow(bench_id_, spec, result, it != baselines_.end() ? &baseline : nullptr,
                        0, spec.sim.clock_ghz);
  }
  const std::string column_key =
      result.machine + "|" + result.workload + "|" + row.policy;
  row.seed_index = seen_[column_key]++;
  sinks_->Write(row);
  Checkpoint();
}

GridResults GridReport::Run(const ExperimentGrid& grid) {
  resume_consumed_ += TakeResumeSkip(GridCellCount(grid));
  runner_.set_observer([this](std::size_t, const RunSpec& spec, const RunResult& result) {
    EmitGridCell(spec, result);
  });
  GridResults results = RunGrid(grid, runner_);
  runner_.set_observer(nullptr);
  return results;
}

std::vector<GridResults> GridReport::Run(const std::vector<ExperimentGrid>& grids) {
  std::size_t total = 0;
  for (const ExperimentGrid& grid : grids) {
    total += GridCellCount(grid);
  }
  resume_consumed_ += TakeResumeSkip(total);
  runner_.set_observer([this](std::size_t, const RunSpec& spec, const RunResult& result) {
    EmitGridCell(spec, result);
  });
  std::vector<GridResults> results = RunGrids(grids, runner_);
  runner_.set_observer(nullptr);
  return results;
}

std::vector<RunResult> GridReport::RunCells(const std::vector<RunSpec>& cells,
                                            const std::vector<CellMeta>& meta) {
  // Cells stream in index order, so each cell's baseline (a lower index) has
  // already been recorded here when the cell's row is built. On resume the
  // skipped prefix's cycle counts come from the recovered rows (one row per
  // cell, positionally), so a surviving cell whose baseline was recovered
  // still reports the exact improvement.
  const std::size_t skip = TakeResumeSkip(cells.size());
  std::vector<BaselineCycles> emitted(cells.size());
  for (std::size_t i = 0; i < skip; ++i) {
    const ResultRow& row = resume_rows_[resume_consumed_ + i];
    emitted[i] = BaselineCycles{row.total_cycles, row.measured_cycles};
  }
  resume_consumed_ += skip;
  runner_.set_observer(
      [this, &meta, &emitted](std::size_t i, const RunSpec& spec, const RunResult& result) {
        emitted[i] = BaselineCycles{result.total_cycles, result.measured_cycles};
        const CellMeta& cell_meta = i < meta.size() ? meta[i] : CellMeta{};
        RunResult baseline;
        const bool has_baseline =
            cell_meta.baseline >= 0 && static_cast<std::size_t>(cell_meta.baseline) < i;
        if (has_baseline) {
          const BaselineCycles& cycles = emitted[static_cast<std::size_t>(cell_meta.baseline)];
          baseline = CyclesOnly(cycles.total, cycles.measured);
        }
        sinks_->Write(MakeResultRow(bench_id_, spec, result,
                                    has_baseline ? &baseline : nullptr, cell_meta.seed_index,
                                    spec.sim.clock_ghz, cell_meta.variant));
        Checkpoint();
      });
  std::vector<RunResult> results = runner_.Run(cells);
  runner_.set_observer(nullptr);
  return results;
}

std::vector<RunResult> GridReport::RunCells(const std::vector<RunSpec>& cells) {
  return RunCells(cells, std::vector<CellMeta>(cells.size()));
}

}  // namespace numalp::report
