#include "src/report/collector.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "src/report/result_row.h"

namespace numalp::report {

namespace {

// A stand-in baseline carrying only the cycle counts ImprovementPct reads.
RunResult CyclesOnly(std::uint64_t total, std::uint64_t measured) {
  RunResult result;
  result.total_cycles = total;
  result.measured_cycles = measured;
  return result;
}

}  // namespace

GridReport::GridReport(const Options& options, const ToolInfo& info)
    : bench_id_(info.bench_id), sinks_(std::make_unique<MultiSink>()),
      runner_(options.jobs) {
  sinks_->Add(MakeSink(options.format, std::cout));
  if (!options.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "%s: cannot create %s: %s\n", info.name, options.out_dir.c_str(),
                   ec.message().c_str());
      std::exit(2);
    }
    for (const char* format : {"csv", "jsonl"}) {
      const std::string path =
          options.out_dir + "/" + std::string(info.bench_id) + "." + format;
      std::string error;
      auto sink = OpenFileSink(format, path, &error);
      if (sink == nullptr) {
        std::fprintf(stderr, "%s: %s\n", info.name, error.c_str());
        std::exit(2);
      }
      sinks_->Add(std::move(sink));
    }
  }
}

GridReport::GridReport(std::unique_ptr<ResultSink> sink, std::string bench_id, int jobs)
    : bench_id_(std::move(bench_id)), sinks_(std::make_unique<MultiSink>()), runner_(jobs) {
  sinks_->Add(std::move(sink));
}

GridReport::~GridReport() { Finish(); }

void GridReport::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  sinks_->Finish();
}

// Grid cells carry their coordinates in the RunSpec itself: the machine,
// workload and policy name the column, the seed names the axis position
// (rows of one column stream in ascending seed order, so the column's row
// count is the seed index), and a kLinux4K cell is by construction the
// (machine, workload, seed) baseline of everything that follows it.
void GridReport::EmitGridCell(const RunSpec& spec, const RunResult& result) {
  const std::string base_key =
      result.machine + "|" + result.workload + "|" + std::to_string(spec.sim.seed);
  ResultRow row;
  if (result.policy == PolicyKind::kLinux4K) {
    baselines_[base_key] = BaselineCycles{result.total_cycles, result.measured_cycles};
    row = MakeResultRow(bench_id_, spec, result, nullptr, 0, spec.sim.clock_ghz);
  } else {
    const auto it = baselines_.find(base_key);
    const RunResult baseline =
        it != baselines_.end() ? CyclesOnly(it->second.total, it->second.measured)
                               : RunResult{};
    row = MakeResultRow(bench_id_, spec, result, it != baselines_.end() ? &baseline : nullptr,
                        0, spec.sim.clock_ghz);
  }
  const std::string column_key =
      result.machine + "|" + result.workload + "|" + row.policy;
  row.seed_index = seen_[column_key]++;
  sinks_->Write(row);
}

GridResults GridReport::Run(const ExperimentGrid& grid) {
  runner_.set_observer([this](std::size_t, const RunSpec& spec, const RunResult& result) {
    EmitGridCell(spec, result);
  });
  GridResults results = RunGrid(grid, runner_);
  runner_.set_observer(nullptr);
  return results;
}

std::vector<GridResults> GridReport::Run(const std::vector<ExperimentGrid>& grids) {
  runner_.set_observer([this](std::size_t, const RunSpec& spec, const RunResult& result) {
    EmitGridCell(spec, result);
  });
  std::vector<GridResults> results = RunGrids(grids, runner_);
  runner_.set_observer(nullptr);
  return results;
}

std::vector<RunResult> GridReport::RunCells(const std::vector<RunSpec>& cells,
                                            const std::vector<CellMeta>& meta) {
  // Cells stream in index order, so each cell's baseline (a lower index) has
  // already been recorded here when the cell's row is built.
  std::vector<BaselineCycles> emitted(cells.size());
  runner_.set_observer(
      [this, &meta, &emitted](std::size_t i, const RunSpec& spec, const RunResult& result) {
        emitted[i] = BaselineCycles{result.total_cycles, result.measured_cycles};
        const CellMeta& cell_meta = i < meta.size() ? meta[i] : CellMeta{};
        RunResult baseline;
        const bool has_baseline =
            cell_meta.baseline >= 0 && static_cast<std::size_t>(cell_meta.baseline) < i;
        if (has_baseline) {
          const BaselineCycles& cycles = emitted[static_cast<std::size_t>(cell_meta.baseline)];
          baseline = CyclesOnly(cycles.total, cycles.measured);
        }
        sinks_->Write(MakeResultRow(bench_id_, spec, result,
                                    has_baseline ? &baseline : nullptr, cell_meta.seed_index,
                                    spec.sim.clock_ghz, cell_meta.variant));
      });
  std::vector<RunResult> results = runner_.Run(cells);
  runner_.set_observer(nullptr);
  return results;
}

std::vector<RunResult> GridReport::RunCells(const std::vector<RunSpec>& cells) {
  return RunCells(cells, std::vector<CellMeta>(cells.size()));
}

}  // namespace numalp::report
