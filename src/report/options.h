// The one command-line parser shared by every bench, example and tool, so
// --help output and the results-pipeline flags (--format, --out-dir, --jobs,
// --seed, --epochs, --accesses, --shards, --profile-mode,
// --profile-threshold, --profile-capacity) are uniform across all binaries
// (DESIGN.md Section 6). Binaries add tool-specific flags as ExtraFlags; the workload/
// machine/policy name parsers that numalp_run and quickstart historically
// each hand-rolled live here too.
#ifndef NUMALP_SRC_REPORT_OPTIONS_H_
#define NUMALP_SRC_REPORT_OPTIONS_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace numalp::report {

// Identity of the invoking binary: names the --out-dir files and the rows'
// `bench` field, and fills --help.
struct ToolInfo {
  const char* name;         // binary name, e.g. "fig1_thp_vs_linux"
  const char* bench_id;     // ResultRow::bench value and out-dir file stem
  const char* description;  // one line for --help
  const char* extra_usage = "";  // help text for tool-specific flags
};

// A tool-specific flag. `handle` receives the value (nullptr when
// takes_value is false) and returns false to reject it.
struct ExtraFlag {
  const char* flag;
  bool takes_value = true;
  std::function<bool(const char* value)> handle;
};

struct Options {
  std::string format = "md";  // stdout format: md | csv | jsonl
  std::string out_dir;        // also write <out_dir>/<bench_id>.{csv,jsonl}
  int jobs = 0;               // 0 = NUMALP_JOBS, then hardware concurrency
  SimConfig sim;              // env overrides applied, then flags

  // Runner resilience (DESIGN.md Section 12). resume continues a crashed
  // --out-dir grid from its manifest; -1 keeps the runner's env-derived
  // defaults for the watchdog deadline and the retry budget.
  bool resume = false;
  long long cell_deadline_ms = -1;
  int cell_retries = -1;

  // Prose and explanatory text belong on stdout only in markdown mode;
  // csv/jsonl stdout must stay machine-parseable.
  bool human() const { return format == "md"; }
};

// Parses argv. Standard flags: --format, --out-dir, --jobs, --seed,
// --epochs, --accesses, --shards, --profile-mode, --profile-threshold,
// --profile-capacity, --help (prints uniform usage, exits 0).
// Unknown flags or bad values print usage to stderr and exit 2.
Options ParseToolArgs(int argc, char** argv, const ToolInfo& info,
                      const std::vector<ExtraFlag>& extras = {});

// Name parsers shared by the CLI tools (historically duplicated between
// numalp_run and quickstart, with divergent aliases).
std::optional<BenchmarkId> ParseWorkloadName(const std::string& name);
// Comma-joined list of every name ParseWorkloadName accepts, for error
// messages ("unknown workload" responses must name the alternatives).
std::string KnownWorkloadNames();
std::optional<PolicyKind> ParsePolicyName(const std::string& name);
// Accepts "A"/"machineA", "B"/"machineB", and the datacenter presets
// "epyc8", "snc16", "cxl".
std::optional<Topology> ParseMachineName(const std::string& name);

// Ready-made ExtraFlags for the common tool-specific selectors: parse the
// value with the matching name parser above and assign into *out (which
// must outlive the ParseToolArgs call). One declaration per tool instead
// of a hand-rolled closure per binary.
// When `trace_file` is non-null the flag additionally accepts
// "trace:FILE" (replay a recorded trace): FILE lands in *trace_file and
// *out is left untouched. Unknown names print the valid alternatives.
ExtraFlag WorkloadFlag(BenchmarkId* out, std::string* trace_file = nullptr);
ExtraFlag MachineFlag(Topology* out);
ExtraFlag PolicyFlag(PolicyKind* out);

}  // namespace numalp::report

#endif  // NUMALP_SRC_REPORT_OPTIONS_H_
