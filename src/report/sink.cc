#include "src/report/sink.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace numalp::report {

std::string CsvEscape(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) {
    return value;
  }
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') {
      quoted += '"';
    }
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

namespace {

// Markdown cells: canonical for identity fields, 2-decimal for doubles.
std::string HumanCell(const ResultRow& row, const ResultField& field) {
  if (field.type == FieldType::kDouble) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", row.*(field.d));
    return buf;
  }
  return FieldToString(row, field);
}

}  // namespace

void CsvSink::Write(const ResultRow& row) {
  const auto& schema = ResultSchema();
  if (!wrote_header_) {
    for (std::size_t f = 0; f < schema.size(); ++f) {
      out_ << (f == 0 ? "" : ",") << schema[f].name;
    }
    out_ << '\n';
    wrote_header_ = true;
  }
  for (std::size_t f = 0; f < schema.size(); ++f) {
    out_ << (f == 0 ? "" : ",") << CsvEscape(FieldToString(row, schema[f]));
  }
  out_ << '\n';
}

void JsonlSink::Write(const ResultRow& row) {
  const auto& schema = ResultSchema();
  out_ << '{';
  for (std::size_t f = 0; f < schema.size(); ++f) {
    const ResultField& field = schema[f];
    out_ << (f == 0 ? "" : ",") << '"' << field.name << "\":";
    if (field.type == FieldType::kString) {
      out_ << '"' << JsonEscape(FieldToString(row, field)) << '"';
    } else {
      out_ << FieldToString(row, field);
    }
  }
  out_ << "}\n";
}

void MarkdownSink::Write(const ResultRow& row) {
  const auto& schema = ResultSchema();
  std::vector<std::string> cells;
  cells.reserve(schema.size());
  for (const ResultField& field : schema) {
    cells.push_back(HumanCell(row, field));
  }
  rows_.push_back(std::move(cells));
}

void MarkdownSink::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  std::vector<std::string> header;
  for (const ResultField& field : ResultSchema()) {
    header.push_back(field.name);
  }
  PrintAlignedTable(out_, header, rows_);
}

void PrintAlignedTable(std::ostream& out, const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t f = 0; f < header.size(); ++f) {
    widths[f] = header[f].size();
    for (const auto& row : rows) {
      widths[f] = std::max(widths[f], row[f].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t f = 0; f < cells.size(); ++f) {
      out << ' ' << cells[f] << std::string(widths[f] - cells[f].size(), ' ') << " |";
    }
    out << '\n';
  };
  line(header);
  std::vector<std::string> rule;
  for (std::size_t w : widths) {
    rule.push_back(std::string(w, '-'));
  }
  line(rule);
  for (const auto& row : rows) {
    line(row);
  }
}

void MultiSink::Add(std::unique_ptr<ResultSink> sink) { sinks_.push_back(std::move(sink)); }

void MultiSink::Write(const ResultRow& row) {
  for (auto& sink : sinks_) {
    sink->Write(row);
  }
}

void MultiSink::Finish() {
  for (auto& sink : sinks_) {
    sink->Finish();
  }
}

bool IsKnownFormat(const std::string& format) {
  return format == "csv" || format == "jsonl" || format == "md";
}

std::unique_ptr<ResultSink> MakeSink(const std::string& format, std::ostream& out) {
  if (format == "csv") {
    return std::make_unique<CsvSink>(out);
  }
  if (format == "jsonl") {
    return std::make_unique<JsonlSink>(out);
  }
  if (format == "md") {
    return std::make_unique<MarkdownSink>(out);
  }
  return nullptr;
}

namespace {

// A sink that owns its output file; the inner sink holds a reference to it.
class OwningFileSink : public ResultSink {
 public:
  OwningFileSink(std::unique_ptr<std::ofstream> stream, std::unique_ptr<ResultSink> inner)
      : stream_(std::move(stream)), inner_(std::move(inner)) {}
  void Write(const ResultRow& row) override { inner_->Write(row); }
  void Finish() override {
    inner_->Finish();
    stream_->flush();
  }

 private:
  std::unique_ptr<std::ofstream> stream_;
  std::unique_ptr<ResultSink> inner_;
};

}  // namespace

std::unique_ptr<ResultSink> OpenFileSink(const std::string& format, const std::string& path,
                                         std::string* error) {
  std::error_code ec;
  const auto existing = std::filesystem::file_size(path, ec);
  const bool has_content = !ec && existing > 0;
  auto stream = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!*stream) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return nullptr;
  }
  std::unique_ptr<ResultSink> inner;
  if (format == "csv") {
    inner = std::make_unique<CsvSink>(*stream, /*write_header=*/!has_content);
  } else {
    inner = MakeSink(format, *stream);
  }
  if (inner == nullptr) {
    if (error != nullptr) {
      *error = "unknown format " + format;
    }
    return nullptr;
  }
  return std::make_unique<OwningFileSink>(std::move(stream), std::move(inner));
}

}  // namespace numalp::report
