// Pluggable result sinks: every bench/example/tool writes its grid cells as
// ResultRows through this interface instead of hand-rolled printf tables.
// Three formats ship (DESIGN.md Section 6): CSV and JSONL emit one canonical
// machine-readable record per row (byte-identical across --jobs values,
// because rows arrive in grid-coordinate order — see collector.h), and the
// markdown sink buffers rows to print one aligned human-readable table at
// Finish(). MultiSink fans a row out to several sinks (stdout + --out-dir
// files).
#ifndef NUMALP_SRC_REPORT_SINK_H_
#define NUMALP_SRC_REPORT_SINK_H_

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/report/result_row.h"

namespace numalp::report {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void Write(const ResultRow& row) = 0;
  // Flushes buffered output. Idempotent; called once by the owner when the
  // sweep is complete (the markdown sink needs the full row set to align).
  virtual void Finish() {}
};

// RFC 4180 field quoting, shared with the aggregate CSV writer.
std::string CsvEscape(const std::string& value);

// Renders one '|'-bordered aligned table (header, rule, rows); every row
// must have header.size() cells. Shared by MarkdownSink and the aggregate
// renderer so the two markdown surfaces cannot drift.
void PrintAlignedTable(std::ostream& out, const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows);

// Comma-separated values: a header line (schema order), then one line per
// row. Values use the canonical serialization of result_row.h; fields
// containing commas or quotes are double-quoted (RFC 4180). Construct with
// write_header=false when appending to a file that already has one.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::ostream& out, bool write_header = true)
      : out_(out), wrote_header_(!write_header) {}
  void Write(const ResultRow& row) override;

 private:
  std::ostream& out_;
  bool wrote_header_ = false;
};

// JSON Lines: one flat JSON object per row, keys in schema order. The
// aggregator (aggregate.h) parses exactly this shape back.
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}
  void Write(const ResultRow& row) override;

 private:
  std::ostream& out_;
};

// Aligned markdown table, buffered until Finish(). Doubles are rounded to
// two decimals for humans; use CSV/JSONL for full precision.
class MarkdownSink : public ResultSink {
 public:
  explicit MarkdownSink(std::ostream& out) : out_(out) {}
  void Write(const ResultRow& row) override;
  void Finish() override;

 private:
  std::ostream& out_;
  std::vector<std::vector<std::string>> rows_;
  bool finished_ = false;
};

// Fans out to any number of owned sinks. Writing with no sinks is a no-op.
class MultiSink : public ResultSink {
 public:
  void Add(std::unique_ptr<ResultSink> sink);
  bool empty() const { return sinks_.empty(); }
  void Write(const ResultRow& row) override;
  void Finish() override;

 private:
  std::vector<std::unique_ptr<ResultSink>> sinks_;
};

// True for the formats MakeSink understands: "csv", "jsonl", "md".
bool IsKnownFormat(const std::string& format);

// Builds the sink for `format` writing to `out` (not owned).
std::unique_ptr<ResultSink> MakeSink(const std::string& format, std::ostream& out);

// Opens `path` and builds a sink of `format` that owns the stream. Existing
// files are appended to, not truncated — successive invocations into one
// results directory accumulate rows (a CSV header is only written into an
// empty file); remove the directory for a fresh sweep (REPRODUCING.md).
// Returns nullptr (with *error set) when the file cannot be created.
std::unique_ptr<ResultSink> OpenFileSink(const std::string& format, const std::string& path,
                                         std::string* error);

}  // namespace numalp::report

#endif  // NUMALP_SRC_REPORT_SINK_H_
