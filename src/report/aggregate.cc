#include "src/report/aggregate.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "src/report/sink.h"

namespace numalp::report {

namespace {

// --- Minimal JSON-object scanner -----------------------------------------
// The sinks write flat one-line objects whose values are strings, numbers
// and booleans; this parser accepts exactly that (plus whitespace). It is
// deliberately not a general JSON parser.

struct Cursor {
  const char* p;
  const char* end;
};

void SkipWs(Cursor& c) {
  while (c.p < c.end && (*c.p == ' ' || *c.p == '\t' || *c.p == '\r')) {
    ++c.p;
  }
}

bool ParseQuoted(Cursor& c, std::string* out) {
  if (c.p >= c.end || *c.p != '"') {
    return false;
  }
  ++c.p;
  out->clear();
  while (c.p < c.end && *c.p != '"') {
    char ch = *c.p++;
    if (ch == '\\' && c.p < c.end) {
      const char esc = *c.p++;
      switch (esc) {
        case 'n':
          ch = '\n';
          break;
        case 't':
          ch = '\t';
          break;
        default:
          ch = esc;  // \" \\ \/ and anything else: the literal character
      }
    }
    out->push_back(ch);
  }
  if (c.p >= c.end) {
    return false;
  }
  ++c.p;  // closing quote
  return true;
}

bool ParseBareToken(Cursor& c, std::string* out) {
  out->clear();
  while (c.p < c.end && *c.p != ',' && *c.p != '}' && *c.p != ' ' && *c.p != '\t') {
    out->push_back(*c.p++);
  }
  return !out->empty();
}

const std::map<std::string, const ResultField*>& FieldsByName() {
  static const std::map<std::string, const ResultField*> by_name = [] {
    std::map<std::string, const ResultField*> map;
    for (const ResultField& field : ResultSchema()) {
      map[field.name] = &field;
    }
    return map;
  }();
  return by_name;
}

}  // namespace

bool ParseJsonlLine(const std::string& line, ResultRow* row, std::string* error) {
  Cursor c{line.data(), line.data() + line.size()};
  SkipWs(c);
  if (c.p >= c.end || *c.p != '{') {
    *error = "expected '{'";
    return false;
  }
  ++c.p;
  SkipWs(c);
  if (c.p < c.end && *c.p == '}') {
    return true;  // empty object: all defaults
  }
  while (true) {
    SkipWs(c);
    std::string key;
    if (!ParseQuoted(c, &key)) {
      *error = "expected a quoted key";
      return false;
    }
    SkipWs(c);
    if (c.p >= c.end || *c.p != ':') {
      *error = "expected ':' after \"" + key + "\"";
      return false;
    }
    ++c.p;
    SkipWs(c);
    std::string value;
    const bool quoted = c.p < c.end && *c.p == '"';
    if (quoted ? !ParseQuoted(c, &value) : !ParseBareToken(c, &value)) {
      *error = "bad value for \"" + key + "\"";
      return false;
    }
    const auto& fields = FieldsByName();
    const auto it = fields.find(key);
    if (it != fields.end()) {  // unknown keys are ignored
      if (quoted != (it->second->type == FieldType::kString) ||
          !FieldFromString(*row, *it->second, value)) {
        *error = "bad value for \"" + key + "\"";
        return false;
      }
    }
    SkipWs(c);
    if (c.p < c.end && *c.p == ',') {
      ++c.p;
      continue;
    }
    if (c.p < c.end && *c.p == '}') {
      return true;
    }
    *error = "expected ',' or '}'";
    return false;
  }
}

std::vector<ResultRow> LoadJsonlFile(const std::string& path,
                                     std::vector<ParseIssue>* issues) {
  std::vector<ResultRow> rows;
  std::ifstream in(path);
  if (!in) {
    if (issues != nullptr) {
      issues->push_back({path, 0, "cannot open"});
    }
    return rows;
  }
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    ResultRow row;
    std::string error;
    if (ParseJsonlLine(line, &row, &error)) {
      rows.push_back(std::move(row));
    } else if (issues != nullptr) {
      issues->push_back({path, line_number, error});
    }
  }
  return rows;
}

std::vector<ResultRow> LoadResults(const std::string& path,
                                   std::vector<ParseIssue>* issues) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(path, ec)) {
    return LoadJsonlFile(path, issues);
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(path, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".jsonl") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<ResultRow> rows;
  for (const std::string& file : files) {
    std::vector<ResultRow> file_rows = LoadJsonlFile(file, issues);
    rows.insert(rows.end(), file_rows.begin(), file_rows.end());
  }
  return rows;
}

std::vector<AggregateRow> Aggregate(const std::vector<ResultRow>& rows) {
  std::vector<AggregateRow> aggregates;
  std::map<std::string, std::size_t> index;
  for (const ResultRow& row : rows) {
    const std::string key =
        row.bench + "|" + row.machine + "|" + row.workload + "|" + row.policy + "|" +
        row.variant;
    const auto it = index.find(key);
    std::size_t slot;
    if (it == index.end()) {
      slot = aggregates.size();
      index[key] = slot;
      AggregateRow aggregate;
      aggregate.bench = row.bench;
      aggregate.machine = row.machine;
      aggregate.workload = row.workload;
      aggregate.policy = row.policy;
      aggregate.variant = row.variant;
      aggregate.min_improvement_pct = row.improvement_pct;
      aggregate.max_improvement_pct = row.improvement_pct;
      aggregates.push_back(aggregate);
    } else {
      slot = it->second;
    }
    AggregateRow& agg = aggregates[slot];
    ++agg.runs;
    agg.mean_improvement_pct += row.improvement_pct;
    agg.min_improvement_pct = std::min(agg.min_improvement_pct, row.improvement_pct);
    agg.max_improvement_pct = std::max(agg.max_improvement_pct, row.improvement_pct);
    agg.runtime_ms += row.runtime_ms;
    agg.lar_pct += row.lar_pct;
    agg.imbalance_pct += row.imbalance_pct;
    agg.pamup_pct += row.pamup_pct;
    agg.nhp += row.nhp;
    agg.psp_pct += row.psp_pct;
    agg.walk_l2_miss_pct += row.walk_l2_miss_pct;
    agg.steady_fault_share_pct += row.steady_fault_share_pct;
    agg.max_fault_ms += row.max_fault_ms;
    agg.thp_coverage_pct += row.thp_coverage_pct;
    agg.overhead_pct += row.overhead_pct;
    agg.migrations += static_cast<double>(row.migrations);
    agg.splits += static_cast<double>(row.splits);
    agg.promotions += static_cast<double>(row.promotions);
    agg.thp_fallback_faults += static_cast<double>(row.thp_fallback_faults);
    agg.buddy_alloc_failures += static_cast<double>(row.buddy_alloc_failures);
    agg.frag_index_pct += row.frag_index_pct;
  }
  for (AggregateRow& agg : aggregates) {
    const double inv = agg.runs > 0 ? 1.0 / agg.runs : 0.0;
    agg.mean_improvement_pct *= inv;
    agg.runtime_ms *= inv;
    agg.lar_pct *= inv;
    agg.imbalance_pct *= inv;
    agg.pamup_pct *= inv;
    agg.nhp *= inv;
    agg.psp_pct *= inv;
    agg.walk_l2_miss_pct *= inv;
    agg.steady_fault_share_pct *= inv;
    agg.max_fault_ms *= inv;
    agg.thp_coverage_pct *= inv;
    agg.overhead_pct *= inv;
    agg.migrations *= inv;
    agg.splits *= inv;
    agg.promotions *= inv;
    agg.thp_fallback_faults *= inv;
    agg.buddy_alloc_failures *= inv;
    agg.frag_index_pct *= inv;
  }
  return aggregates;
}

namespace {

// AggregateRow serialization schema shared by the JSON/CSV writers.
struct AggregateField {
  const char* name;
  bool is_string;
  std::string (*get)(const AggregateRow&);
};

std::string FromInt(int value) { return std::to_string(value); }

const std::vector<AggregateField>& AggregateSchema() {
  static const std::vector<AggregateField> schema = {
      {"bench", true, [](const AggregateRow& a) { return a.bench; }},
      {"machine", true, [](const AggregateRow& a) { return a.machine; }},
      {"workload", true, [](const AggregateRow& a) { return a.workload; }},
      {"policy", true, [](const AggregateRow& a) { return a.policy; }},
      {"variant", true, [](const AggregateRow& a) { return a.variant; }},
      {"runs", false, [](const AggregateRow& a) { return FromInt(a.runs); }},
      {"mean_improvement_pct", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.mean_improvement_pct); }},
      {"min_improvement_pct", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.min_improvement_pct); }},
      {"max_improvement_pct", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.max_improvement_pct); }},
      {"runtime_ms", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.runtime_ms); }},
      {"lar_pct", false, [](const AggregateRow& a) { return CanonicalDouble(a.lar_pct); }},
      {"imbalance_pct", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.imbalance_pct); }},
      {"pamup_pct", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.pamup_pct); }},
      {"nhp", false, [](const AggregateRow& a) { return CanonicalDouble(a.nhp); }},
      {"psp_pct", false, [](const AggregateRow& a) { return CanonicalDouble(a.psp_pct); }},
      {"walk_l2_miss_pct", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.walk_l2_miss_pct); }},
      {"steady_fault_share_pct", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.steady_fault_share_pct); }},
      {"max_fault_ms", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.max_fault_ms); }},
      {"thp_coverage_pct", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.thp_coverage_pct); }},
      {"overhead_pct", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.overhead_pct); }},
      {"migrations", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.migrations); }},
      {"splits", false, [](const AggregateRow& a) { return CanonicalDouble(a.splits); }},
      {"promotions", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.promotions); }},
      {"thp_fallback_faults", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.thp_fallback_faults); }},
      {"buddy_alloc_failures", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.buddy_alloc_failures); }},
      {"frag_index_pct", false,
       [](const AggregateRow& a) { return CanonicalDouble(a.frag_index_pct); }},
  };
  return schema;
}

void WriteAggregateObject(std::ostream& out, const AggregateRow& aggregate,
                          const char* indent) {
  out << indent << '{';
  const auto& schema = AggregateSchema();
  for (std::size_t f = 0; f < schema.size(); ++f) {
    out << (f == 0 ? "" : ",") << '"' << schema[f].name << "\":";
    if (schema[f].is_string) {
      out << '"' << JsonEscape(schema[f].get(aggregate)) << '"';
    } else {
      out << schema[f].get(aggregate);
    }
  }
  out << '}';
}

std::string Pct1(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", value);
  return buf;
}

std::string Num1(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", value);
  return buf;
}

// First-appearance-order list of the distinct values `get` takes on `rows`.
template <typename Get>
std::vector<std::string> Distinct(const std::vector<AggregateRow>& rows, Get get) {
  std::vector<std::string> values;
  for (const AggregateRow& row : rows) {
    if (std::find(values.begin(), values.end(), get(row)) == values.end()) {
      values.push_back(get(row));
    }
  }
  return values;
}

}  // namespace

void WriteSummaryJson(std::ostream& out, const std::vector<AggregateRow>& aggregates) {
  out << "{\n  \"schema\": \"numalp-bench-summary-v1\",\n  \"groups\": [\n";
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    WriteAggregateObject(out, aggregates[i], "    ");
    out << (i + 1 < aggregates.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

bool ParseSummaryJson(const std::string& contents, std::vector<AggregateRow>* out,
                      std::string* error) {
  out->clear();
  if (contents.find("\"numalp-bench-summary-v1\"") == std::string::npos) {
    *error = "not a numalp-bench-summary-v1 document";
    return false;
  }
  // One group object per line (WriteSummaryJson's shape); the same flat
  // scanner the JSONL loader uses, with a field map for AggregateRow.
  const auto set_field = [](AggregateRow& row, const std::string& key,
                            const std::string& value) {
    const auto num = [&value]() { return std::strtod(value.c_str(), nullptr); };
    if (key == "bench") {
      row.bench = value;
    } else if (key == "machine") {
      row.machine = value;
    } else if (key == "workload") {
      row.workload = value;
    } else if (key == "policy") {
      row.policy = value;
    } else if (key == "variant") {
      row.variant = value;
    } else if (key == "runs") {
      row.runs = static_cast<int>(num());
    } else if (key == "mean_improvement_pct") {
      row.mean_improvement_pct = num();
    } else if (key == "min_improvement_pct") {
      row.min_improvement_pct = num();
    } else if (key == "max_improvement_pct") {
      row.max_improvement_pct = num();
    } else if (key == "runtime_ms") {
      row.runtime_ms = num();
    } else if (key == "lar_pct") {
      row.lar_pct = num();
    } else if (key == "imbalance_pct") {
      row.imbalance_pct = num();
    } else if (key == "pamup_pct") {
      row.pamup_pct = num();
    } else if (key == "nhp") {
      row.nhp = num();
    } else if (key == "psp_pct") {
      row.psp_pct = num();
    } else if (key == "walk_l2_miss_pct") {
      row.walk_l2_miss_pct = num();
    } else if (key == "steady_fault_share_pct") {
      row.steady_fault_share_pct = num();
    } else if (key == "max_fault_ms") {
      row.max_fault_ms = num();
    } else if (key == "thp_coverage_pct") {
      row.thp_coverage_pct = num();
    } else if (key == "overhead_pct") {
      row.overhead_pct = num();
    } else if (key == "migrations") {
      row.migrations = num();
    } else if (key == "splits") {
      row.splits = num();
    } else if (key == "promotions") {
      row.promotions = num();
    } else if (key == "thp_fallback_faults") {
      row.thp_fallback_faults = num();
    } else if (key == "buddy_alloc_failures") {
      row.buddy_alloc_failures = num();
    } else if (key == "frag_index_pct") {
      row.frag_index_pct = num();
    }  // unknown keys are ignored (schema growth)
  };

  std::istringstream in(contents);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t at = line.find_first_not_of(" \t\r");
    if (at == std::string::npos || line[at] != '{' ||
        line.find('}', at) == std::string::npos ||
        line.find("\"schema\"", at) != std::string::npos) {
      continue;  // document framing, not a group object
    }
    Cursor c{line.data() + at, line.data() + line.size()};
    ++c.p;  // '{'
    AggregateRow row;
    while (true) {
      SkipWs(c);
      std::string key;
      if (!ParseQuoted(c, &key)) {
        *error = "line " + std::to_string(line_number) + ": expected a quoted key";
        return false;
      }
      SkipWs(c);
      if (c.p >= c.end || *c.p != ':') {
        *error = "line " + std::to_string(line_number) + ": expected ':' after \"" + key + "\"";
        return false;
      }
      ++c.p;
      SkipWs(c);
      std::string value;
      const bool quoted = c.p < c.end && *c.p == '"';
      if (quoted ? !ParseQuoted(c, &value) : !ParseBareToken(c, &value)) {
        *error = "line " + std::to_string(line_number) + ": bad value for \"" + key + "\"";
        return false;
      }
      set_field(row, key, value);
      SkipWs(c);
      if (c.p < c.end && *c.p == ',') {
        ++c.p;
        continue;
      }
      if (c.p < c.end && *c.p == '}') {
        break;
      }
      *error = "line " + std::to_string(line_number) + ": expected ',' or '}'";
      return false;
    }
    out->push_back(std::move(row));
  }
  if (out->empty()) {
    *error = "no groups found";
    return false;
  }
  return true;
}

void WriteAggregatesCsv(std::ostream& out, const std::vector<AggregateRow>& aggregates) {
  const auto& schema = AggregateSchema();
  for (std::size_t f = 0; f < schema.size(); ++f) {
    out << (f == 0 ? "" : ",") << schema[f].name;
  }
  out << '\n';
  for (const AggregateRow& aggregate : aggregates) {
    for (std::size_t f = 0; f < schema.size(); ++f) {
      out << (f == 0 ? "" : ",")
          << (schema[f].is_string ? CsvEscape(schema[f].get(aggregate))
                                  : schema[f].get(aggregate));
    }
    out << '\n';
  }
}

void WriteAggregatesJsonl(std::ostream& out, const std::vector<AggregateRow>& aggregates) {
  for (const AggregateRow& aggregate : aggregates) {
    WriteAggregateObject(out, aggregate, "");
    out << '\n';
  }
}

void PrintAggregates(std::ostream& out, const std::vector<AggregateRow>& aggregates) {
  for (const std::string& bench : Distinct(aggregates, [](const AggregateRow& a) {
         return a.bench;
       })) {
    std::vector<AggregateRow> of_bench;
    for (const AggregateRow& a : aggregates) {
      if (a.bench == bench) {
        of_bench.push_back(a);
      }
    }
    out << "## " << bench << "\n\n";
    const std::vector<std::string> policies =
        Distinct(of_bench, [](const AggregateRow& a) { return a.policy; });

    // Improvement pivot, one block per machine: the paper's bar charts as
    // rows (workload x policy, mean % improvement over Linux-4K).
    for (const std::string& machine :
         Distinct(of_bench, [](const AggregateRow& a) { return a.machine; })) {
      out << "improvement over Linux-4K on " << machine << " (mean over "
          << "seeds)\n";
      std::vector<std::string> header = {"workload", "variant"};
      header.insert(header.end(), policies.begin(), policies.end());
      std::vector<std::vector<std::string>> table;
      for (const AggregateRow& a : of_bench) {
        if (a.machine != machine) {
          continue;
        }
        // One table row per (workload, variant); fill the policy columns.
        const std::vector<std::string> key = {a.workload, a.variant};
        auto row_it = std::find_if(table.begin(), table.end(),
                                   [&](const std::vector<std::string>& row) {
                                     return row[0] == key[0] && row[1] == key[1];
                                   });
        if (row_it == table.end()) {
          std::vector<std::string> row = key;
          row.resize(2 + policies.size());
          table.push_back(row);
          row_it = table.end() - 1;
        }
        const auto policy_it = std::find(policies.begin(), policies.end(), a.policy);
        (*row_it)[2 + static_cast<std::size_t>(policy_it - policies.begin())] =
            Pct1(a.mean_improvement_pct);
      }
      PrintAlignedTable(out, header, table);
      out << '\n';
    }

    // Per-column metrics: the numbers behind Tables 1-3.
    out << "metrics (seed means)\n";
    const std::vector<std::string> header = {"machine", "workload",  "policy", "variant",
                                             "runs",    "improv",    "LAR%",   "imbal%",
                                             "PAMUP%",  "NHP",       "PSP%",   "walk%",
                                             "fault%",  "THPcov%",   "ovh%"};
    std::vector<std::vector<std::string>> table;
    for (const AggregateRow& a : of_bench) {
      table.push_back({a.machine, a.workload, a.policy, a.variant, FromInt(a.runs),
                       Pct1(a.mean_improvement_pct), Num1(a.lar_pct), Num1(a.imbalance_pct),
                       Num1(a.pamup_pct), Num1(a.nhp), Num1(a.psp_pct),
                       Num1(a.walk_l2_miss_pct), Num1(a.steady_fault_share_pct),
                       Num1(a.thp_coverage_pct), Num1(a.overhead_pct)});
    }
    PrintAlignedTable(out, header, table);
    out << '\n';
  }
}

}  // namespace numalp::report
