// Executable reproduction claims: the paper's qualitative expectations
// (Figures 1-5, Tables 1-3) expressed as assertions over a set of
// ResultRows, evaluated by `numalp_report --check`. Each check SKIPs when
// the loaded rows don't cover its (machine, workload, policy) columns —
// a smoke run of a few benches checks only what it measured — and FAILs
// only when present data contradicts the paper, so a qualitative
// reproduction regression fails CI (DESIGN.md Section 6).
#ifndef NUMALP_SRC_REPORT_CHECKS_H_
#define NUMALP_SRC_REPORT_CHECKS_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/report/aggregate.h"
#include "src/report/result_row.h"

namespace numalp::report {

enum class CheckStatus { kPass, kFail, kSkip };

struct CheckResult {
  std::string name;
  CheckStatus status = CheckStatus::kSkip;
  std::string detail;  // the compared numbers, or why the check skipped
};

// Evaluates every paper expectation against `rows` (seed-averaged per
// column first, pooling rows across benches). Variant-tagged rows (sweeps,
// 1GB backing) are excluded — the expectations describe the default
// configurations.
std::vector<CheckResult> EvaluatePaperChecks(const std::vector<ResultRow>& rows);

// Same expectations against pre-aggregated summary groups (a parsed
// bench_summary.json): each group contributes its seed mean weighted by its
// run count, pooling across benches exactly as the row-level path does. This
// is what `numalp_report --from-summary BENCH_fig2_fig3.json --check` runs —
// the committed baseline file itself stays an asserted artifact.
std::vector<CheckResult> EvaluatePaperChecks(const std::vector<AggregateRow>& aggregates);

// True when no check failed (skips don't count against).
bool AllPassed(const std::vector<CheckResult>& results);

// One "PASS/FAIL/SKIP name: detail" line per check.
void PrintCheckResults(std::ostream& out, const std::vector<CheckResult>& results);

}  // namespace numalp::report

#endif  // NUMALP_SRC_REPORT_CHECKS_H_
