#include "src/report/result_row.h"

#include <charconv>
#include <cstdlib>

namespace numalp::report {

namespace {

ResultField Str(const char* name, std::string ResultRow::* member) {
  ResultField field;
  field.name = name;
  field.unit = "";
  field.type = FieldType::kString;
  field.s = member;
  return field;
}

ResultField Bool(const char* name, bool ResultRow::* member) {
  ResultField field;
  field.name = name;
  field.unit = "";
  field.type = FieldType::kBool;
  field.b = member;
  return field;
}

ResultField Int(const char* name, const char* unit, int ResultRow::* member) {
  ResultField field;
  field.name = name;
  field.unit = unit;
  field.type = FieldType::kInt;
  field.i = member;
  return field;
}

ResultField Uint(const char* name, const char* unit, std::uint64_t ResultRow::* member) {
  ResultField field;
  field.name = name;
  field.unit = unit;
  field.type = FieldType::kUint;
  field.u = member;
  return field;
}

ResultField Dbl(const char* name, const char* unit, double ResultRow::* member) {
  ResultField field;
  field.name = name;
  field.unit = unit;
  field.type = FieldType::kDouble;
  field.d = member;
  return field;
}

}  // namespace

const std::vector<ResultField>& ResultSchema() {
  static const std::vector<ResultField> schema = {
      Str("bench", &ResultRow::bench),
      Str("machine", &ResultRow::machine),
      Str("workload", &ResultRow::workload),
      Str("policy", &ResultRow::policy),
      Str("variant", &ResultRow::variant),
      Int("seed_index", "", &ResultRow::seed_index),
      Uint("seed", "", &ResultRow::seed),
      Bool("completed", &ResultRow::completed),
      Int("epochs", "epochs", &ResultRow::epochs),
      Uint("total_cycles", "cycles", &ResultRow::total_cycles),
      Uint("measured_cycles", "cycles", &ResultRow::measured_cycles),
      Dbl("runtime_ms", "ms", &ResultRow::runtime_ms),
      Dbl("improvement_pct", "%", &ResultRow::improvement_pct),
      Dbl("lar_pct", "%", &ResultRow::lar_pct),
      Dbl("imbalance_pct", "%", &ResultRow::imbalance_pct),
      Dbl("pamup_pct", "%", &ResultRow::pamup_pct),
      Int("nhp", "pages", &ResultRow::nhp),
      Dbl("psp_pct", "%", &ResultRow::psp_pct),
      Dbl("walk_l2_miss_pct", "%", &ResultRow::walk_l2_miss_pct),
      Dbl("steady_fault_share_pct", "%", &ResultRow::steady_fault_share_pct),
      Dbl("max_fault_ms", "ms", &ResultRow::max_fault_ms),
      Dbl("thp_coverage_pct", "%", &ResultRow::thp_coverage_pct),
      Uint("migrations", "pages", &ResultRow::migrations),
      Uint("splits", "pages", &ResultRow::splits),
      Uint("promotions", "pages", &ResultRow::promotions),
      Dbl("overhead_pct", "%", &ResultRow::overhead_pct),
      Dbl("est_carrefour_lar_pct", "%", &ResultRow::est_carrefour_lar_pct),
      Dbl("est_split_lar_pct", "%", &ResultRow::est_split_lar_pct),
      Str("status", &ResultRow::status),
      Uint("fault_alloc_failures", "", &ResultRow::fault_alloc_failures),
      Uint("fault_migration_failures", "", &ResultRow::fault_migration_failures),
      Uint("fault_split_failures", "", &ResultRow::fault_split_failures),
      Uint("fault_truncated_plans", "", &ResultRow::fault_truncated_plans),
      Uint("fault_pressure_epochs", "epochs", &ResultRow::fault_pressure_epochs),
      Uint("fault_promote_backoffs", "", &ResultRow::fault_promote_backoffs),
      Uint("fault_retried_migrations", "pages", &ResultRow::fault_retried_migrations),
      Uint("fault_abandoned_pages", "pages", &ResultRow::fault_abandoned_pages),
      Uint("thp_fallback_faults", "", &ResultRow::thp_fallback_faults),
      Dbl("frag_index_pct", "%", &ResultRow::frag_index_pct),
      Int("buddy_largest_free_order", "", &ResultRow::buddy_largest_free_order),
      Uint("buddy_free_2m_blocks", "blocks", &ResultRow::buddy_free_2m_blocks),
      Uint("buddy_alloc_failures", "", &ResultRow::buddy_alloc_failures),
      Str("trace_source", &ResultRow::trace_source),
      Uint("region_maps", "regions", &ResultRow::region_maps),
      Uint("region_unmaps", "regions", &ResultRow::region_unmaps),
      Uint("unmapped_bytes", "bytes", &ResultRow::unmapped_bytes),
  };
  return schema;
}

std::string CanonicalDouble(double value) {
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, result.ptr);
}

std::string JsonEscape(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        escaped += c;
    }
  }
  return escaped;
}

std::string FieldToString(const ResultRow& row, const ResultField& field) {
  switch (field.type) {
    case FieldType::kString:
      return row.*(field.s);
    case FieldType::kBool:
      return row.*(field.b) ? "true" : "false";
    case FieldType::kInt:
      return std::to_string(row.*(field.i));
    case FieldType::kUint:
      return std::to_string(row.*(field.u));
    case FieldType::kDouble:
      return CanonicalDouble(row.*(field.d));
  }
  return "";
}

bool FieldFromString(ResultRow& row, const ResultField& field, const std::string& text) {
  switch (field.type) {
    case FieldType::kString:
      row.*(field.s) = text;
      return true;
    case FieldType::kBool:
      if (text == "true") {
        row.*(field.b) = true;
        return true;
      }
      if (text == "false") {
        row.*(field.b) = false;
        return true;
      }
      return false;
    case FieldType::kInt: {
      int value = 0;
      const auto result = std::from_chars(text.data(), text.data() + text.size(), value);
      if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
        return false;
      }
      row.*(field.i) = value;
      return true;
    }
    case FieldType::kUint: {
      std::uint64_t value = 0;
      const auto result = std::from_chars(text.data(), text.data() + text.size(), value);
      if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
        return false;
      }
      row.*(field.u) = value;
      return true;
    }
    case FieldType::kDouble: {
      double value = 0.0;
      const auto result = std::from_chars(text.data(), text.data() + text.size(), value);
      if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
        return false;
      }
      row.*(field.d) = value;
      return true;
    }
  }
  return false;
}

ResultRow MakeResultRow(const std::string& bench, const RunSpec& spec, const RunResult& run,
                        const RunResult* baseline, int seed_index, double clock_ghz,
                        const std::string& variant) {
  ResultRow row;
  row.bench = bench;
  row.machine = run.machine;
  row.workload = run.workload;
  row.policy = std::string(NameOf(run.policy));
  row.variant = variant;
  row.seed_index = seed_index;
  row.seed = spec.sim.seed;

  row.completed = run.completed;
  row.epochs = run.epochs;
  row.total_cycles = run.total_cycles;
  row.measured_cycles = run.measured_cycles;
  row.runtime_ms = run.RuntimeMs(clock_ghz);
  row.improvement_pct = baseline != nullptr ? ImprovementPct(*baseline, run) : 0.0;

  row.lar_pct = run.LarPct();
  row.imbalance_pct = run.ImbalancePct();
  row.pamup_pct = run.PamupPct();
  row.nhp = run.Nhp();
  row.psp_pct = run.PspPct();
  row.walk_l2_miss_pct = 100.0 * run.WalkL2MissFrac();
  row.steady_fault_share_pct = run.SteadyMaxFaultSharePct();
  row.max_fault_ms = run.MaxFaultTimeMs(clock_ghz);
  row.thp_coverage_pct = 100.0 * run.final_thp_coverage;

  row.migrations = run.total_migrations;
  row.splits = run.total_splits;
  row.promotions = run.total_promotions;
  row.overhead_pct = run.total_cycles == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(run.total_policy_overhead) /
                               static_cast<double>(run.total_cycles);

  // Reactive-estimate means over the steady epochs where the estimator ran
  // (the same mask the sampling ablation historically used).
  double est_carrefour = 0.0;
  double est_split = 0.0;
  int counted = 0;
  for (const EpochRecord& record : run.history) {
    if (record.in_setup || record.est_split_lar == 0.0) {
      continue;
    }
    est_carrefour += record.est_carrefour_lar;
    est_split += record.est_split_lar;
    ++counted;
  }
  if (counted > 0) {
    row.est_carrefour_lar_pct = est_carrefour / counted;
    row.est_split_lar_pct = est_split / counted;
  }

  row.status = run.status;
  row.fault_alloc_failures = run.fault_alloc_failures;
  row.fault_migration_failures = run.fault_migration_failures;
  row.fault_split_failures = run.fault_split_failures;
  row.fault_truncated_plans = run.fault_truncated_plans;
  row.fault_pressure_epochs = run.fault_pressure_epochs;
  row.fault_promote_backoffs = run.fault_promote_backoffs;
  row.fault_retried_migrations = run.fault_retried_migrations;
  row.fault_abandoned_pages = run.fault_abandoned_pages;
  row.thp_fallback_faults = run.thp_fallback_faults;
  row.frag_index_pct = run.frag_index_pct;
  row.buddy_largest_free_order = run.buddy_largest_free_order;
  row.buddy_free_2m_blocks = run.buddy_free_2m_blocks;
  row.buddy_alloc_failures = run.buddy_alloc_failures;
  row.trace_source = run.trace_source;
  row.region_maps = run.region_maps;
  row.region_unmaps = run.region_unmaps;
  row.unmapped_bytes = run.unmapped_bytes;
  return row;
}

}  // namespace numalp::report
