// Aggregation for numalp_report: loads JSONL rows written by the sinks
// (sink.h — the parser consumes the same ResultSchema() the serializer
// does), groups them by results column (bench, machine, workload, policy,
// variant), and averages over seeds with the same ascending-order
// accumulate-then-divide arithmetic GridResults::Summarize uses
// (DESIGN.md Sections 5-6). The aggregates feed the figure/table renderer,
// the committable bench_summary.json (BENCH_*.json), and the qualitative
// paper checks (checks.h).
#ifndef NUMALP_SRC_REPORT_AGGREGATE_H_
#define NUMALP_SRC_REPORT_AGGREGATE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/report/result_row.h"

namespace numalp::report {

// Parses one JSONL line (a flat object of strings, numbers and booleans)
// into `row`. Unknown keys are ignored (schema growth stays readable);
// missing keys keep their defaults. Returns false with *error set on
// malformed input.
bool ParseJsonlLine(const std::string& line, ResultRow* row, std::string* error);

struct ParseIssue {
  std::string file;
  int line = 0;
  std::string message;
};

// Loads every row of one .jsonl file; blank lines are skipped. Malformed
// lines are reported to `issues` (when non-null) and skipped.
std::vector<ResultRow> LoadJsonlFile(const std::string& path, std::vector<ParseIssue>* issues);

// Loads every *.jsonl file under `path` (or `path` itself when it is a
// file), in sorted filename order so the row sequence is deterministic.
std::vector<ResultRow> LoadResults(const std::string& path, std::vector<ParseIssue>* issues);

// One results column: the seed-aggregated view of (bench, machine,
// workload, policy, variant) — the unit the paper's figures plot.
struct AggregateRow {
  std::string bench;
  std::string machine;
  std::string workload;
  std::string policy;
  std::string variant;
  int runs = 0;  // rows aggregated (the seed count)
  double mean_improvement_pct = 0.0;
  double min_improvement_pct = 0.0;
  double max_improvement_pct = 0.0;
  // Seed means of the paper metrics.
  double runtime_ms = 0.0;
  double lar_pct = 0.0;
  double imbalance_pct = 0.0;
  double pamup_pct = 0.0;
  double nhp = 0.0;
  double psp_pct = 0.0;
  double walk_l2_miss_pct = 0.0;
  double steady_fault_share_pct = 0.0;
  double max_fault_ms = 0.0;
  double thp_coverage_pct = 0.0;
  double overhead_pct = 0.0;
  double migrations = 0.0;
  double splits = 0.0;
  double promotions = 0.0;
  // Buddy-fragmentation telemetry means (DESIGN.md Section 14): the
  // mmap-churn check needs the organic allocation-failure evidence.
  double thp_fallback_faults = 0.0;
  double buddy_alloc_failures = 0.0;
  double frag_index_pct = 0.0;
};

// Groups rows by column. Column order is first appearance in `rows`, which
// for sink-written files is grid-coordinate order.
std::vector<AggregateRow> Aggregate(const std::vector<ResultRow>& rows);

// The committable summary artifact (BENCH_*.json shape): a versioned JSON
// document with one object per aggregate, keys in a fixed order.
void WriteSummaryJson(std::ostream& out, const std::vector<AggregateRow>& aggregates);

// Parses a summary document WriteSummaryJson produced back into aggregate
// groups (the fields the checks consume; unknown keys are ignored so the
// schema can grow). Lets `numalp_report --from-summary` assert the paper
// checks against a committed BENCH_*.json without re-running the grids.
bool ParseSummaryJson(const std::string& contents, std::vector<AggregateRow>* out,
                      std::string* error);

// Renders the aggregates as the paper's figures/tables: per bench, an
// improvement pivot (workload rows x policy columns, one block per machine)
// followed by an aligned per-column metrics table.
void PrintAggregates(std::ostream& out, const std::vector<AggregateRow>& aggregates);

// Machine-readable aggregate output for numalp_report --format csv|jsonl.
void WriteAggregatesCsv(std::ostream& out, const std::vector<AggregateRow>& aggregates);
void WriteAggregatesJsonl(std::ostream& out, const std::vector<AggregateRow>& aggregates);

}  // namespace numalp::report

#endif  // NUMALP_SRC_REPORT_AGGREGATE_H_
