#include "src/report/checks.h"

#include <cstdio>
#include <map>
#include <optional>
#include <ostream>

namespace numalp::report {

namespace {

// Seed-averaged view of one (machine, workload, policy) column, pooled
// across benches (fig2 and fig3 both measuring THP on CG.D is one column).
struct ColumnMean {
  double improvement_sum = 0.0;
  double lar_sum = 0.0;
  // Organic large-page allocation failures (THP fallback faults + buddy
  // allocation failures), summed — evidence for the mmap-churn check.
  double alloc_failure_sum = 0.0;
  int rows = 0;
  double improvement() const { return improvement_sum / rows; }
  double lar() const { return lar_sum / rows; }
  double alloc_failures() const { return alloc_failure_sum; }
};

using ColumnMap = std::map<std::string, ColumnMean>;

std::string Key(const std::string& machine, const std::string& workload,
                const std::string& policy) {
  return machine + "|" + workload + "|" + policy;
}

std::optional<ColumnMean> Find(const ColumnMap& columns, const std::string& machine,
                               const std::string& workload, const std::string& policy) {
  const auto it = columns.find(Key(machine, workload, policy));
  if (it == columns.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string Fmt(const char* format, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), format, a, b);
  return buf;
}

CheckResult Skip(const char* name, const std::string& detail) {
  return {name, CheckStatus::kSkip, detail};
}

CheckResult Verdict(const char* name, bool passed, const std::string& detail) {
  return {name, passed ? CheckStatus::kPass : CheckStatus::kFail, detail};
}

// Paper names used by the expectations.
constexpr const char* kMachineA = "machineA";
constexpr const char* kMachineB = "machineB";
// Datacenter presets (DESIGN.md Section 13), measured by bench_datacenter.
constexpr const char* kEpyc8 = "epyc8";
constexpr const char* kSnc16 = "snc16";
constexpr const char* kCxl = "cxl";
constexpr const char* kLinux = "Linux-4K";
constexpr const char* kThpName = "THP";
constexpr const char* kCarrefour2M = "Carrefour-2M";
constexpr const char* kCarrefourLp = "Carrefour-LP";

}  // namespace

namespace {

// The two fault-sweep variants the robustness check reads. Rows carrying
// them come from bench_fault_grace, which runs the same cells once
// fault-free and once under the frag profile.
constexpr const char* kFaultsOff = "faults=off";
constexpr const char* kFaultsFrag = "faults=frag";

// The shared evaluation over pooled column means; both entry points (raw
// rows, committed-summary aggregates) reduce to this. `fault_columns` is
// keyed machine|workload|policy|variant and holds only the faults=off /
// faults=frag sweep columns.
std::vector<CheckResult> EvaluateColumns(const ColumnMap& columns,
                                         const ColumnMap& fault_columns,
                                         int baseline_rows, int nonzero_baselines);

}  // namespace

std::vector<CheckResult> EvaluatePaperChecks(const std::vector<ResultRow>& rows) {
  ColumnMap columns;
  ColumnMap fault_columns;
  int baseline_rows = 0;
  int nonzero_baselines = 0;
  for (const ResultRow& row : rows) {
    if (row.variant == kFaultsOff || row.variant == kFaultsFrag) {
      ColumnMean& column =
          fault_columns[Key(row.machine, row.workload, row.policy + "|" + row.variant)];
      column.improvement_sum += row.improvement_pct;
      column.lar_sum += row.lar_pct;
      ++column.rows;
    }
    if (!row.variant.empty()) {
      continue;  // sweeps and 1GB-backed variants model non-default setups
    }
    ColumnMean& column = columns[Key(row.machine, row.workload, row.policy)];
    column.improvement_sum += row.improvement_pct;
    column.lar_sum += row.lar_pct;
    column.alloc_failure_sum += static_cast<double>(row.thp_fallback_faults) +
                                static_cast<double>(row.buddy_alloc_failures);
    ++column.rows;
    if (row.policy == kLinux) {
      ++baseline_rows;
      if (row.improvement_pct != 0.0) {
        ++nonzero_baselines;
      }
    }
  }
  return EvaluateColumns(columns, fault_columns, baseline_rows, nonzero_baselines);
}

std::vector<CheckResult> EvaluatePaperChecks(const std::vector<AggregateRow>& aggregates) {
  // A summary group holds the seed mean of `runs` rows; reconstituting the
  // per-column sums as mean x runs pools across benches exactly as the
  // row-level path does (up to the usual last-bit float rounding — the
  // checks compare against multi-point bands, not exact values).
  ColumnMap columns;
  ColumnMap fault_columns;
  int baseline_rows = 0;
  int nonzero_baselines = 0;
  for (const AggregateRow& group : aggregates) {
    if (group.runs <= 0) {
      continue;
    }
    if (group.variant == kFaultsOff || group.variant == kFaultsFrag) {
      ColumnMean& column = fault_columns[Key(group.machine, group.workload,
                                             group.policy + "|" + group.variant)];
      column.improvement_sum += group.mean_improvement_pct * group.runs;
      column.lar_sum += group.lar_pct * group.runs;
      column.rows += group.runs;
    }
    if (!group.variant.empty()) {
      continue;
    }
    ColumnMean& column = columns[Key(group.machine, group.workload, group.policy)];
    column.improvement_sum += group.mean_improvement_pct * group.runs;
    column.lar_sum += group.lar_pct * group.runs;
    column.alloc_failure_sum +=
        (group.thp_fallback_faults + group.buddy_alloc_failures) * group.runs;
    column.rows += group.runs;
    if (group.policy == kLinux) {
      baseline_rows += group.runs;
      if (group.mean_improvement_pct != 0.0) {
        nonzero_baselines += group.runs;
      }
    }
  }
  return EvaluateColumns(columns, fault_columns, baseline_rows, nonzero_baselines);
}

namespace {

std::vector<CheckResult> EvaluateColumns(const ColumnMap& columns,
                                         const ColumnMap& fault_columns,
                                         int baseline_rows, int nonzero_baselines) {
  std::vector<CheckResult> results;

  // Schema sanity: a Linux-4K run is its own baseline by construction, so
  // its improvement must be exactly zero in every row.
  if (baseline_rows == 0) {
    results.push_back(Skip("baseline-improvement-zero", "no Linux-4K rows"));
  } else {
    results.push_back(Verdict(
        "baseline-improvement-zero", nonzero_baselines == 0,
        Fmt("%.0f of %.0f Linux-4K rows nonzero", nonzero_baselines, baseline_rows)));
  }

  // Figure 1 / Table 1: THP hurts the hot-page workload CG.D on machine B
  // (paper: -43%).
  if (const auto thp = Find(columns, kMachineB, "CG.D", kThpName)) {
    results.push_back(Verdict("thp-hurts-hot-page-cg-on-machineB", thp->improvement() < 0.0,
                              Fmt("THP improvement %.1f%% (expected < 0)",
                                  thp->improvement(), 0.0)));
  } else {
    results.push_back(
        Skip("thp-hurts-hot-page-cg-on-machineB", "no (machineB, CG.D, THP) rows"));
  }

  // Figure 1: THP helps the allocation-intensive WC on machine B (paper:
  // +109%).
  if (const auto thp = Find(columns, kMachineB, "WC", kThpName)) {
    results.push_back(Verdict("thp-helps-allocation-wc-on-machineB",
                              thp->improvement() > 0.0,
                              Fmt("THP improvement %.1f%% (expected > 0)",
                                  thp->improvement(), 0.0)));
  } else {
    results.push_back(
        Skip("thp-helps-allocation-wc-on-machineB", "no (machineB, WC, THP) rows"));
  }

  // Figures 1-3: wrmem (Metis allocation storm) gains under THP on every
  // machine measured (paper: +51%).
  {
    bool any = false;
    bool all_pass = true;
    std::string detail;
    for (const char* machine : {kMachineA, kMachineB}) {
      const auto thp = Find(columns, machine, "wrmem", kThpName);
      if (!thp) {
        continue;
      }
      any = true;
      all_pass = all_pass && thp->improvement() > 0.0;
      if (!detail.empty()) {
        detail += "; ";
      }
      detail += machine + Fmt(": %.1f%%", thp->improvement(), 0.0);
    }
    if (any) {
      results.push_back(Verdict("thp-helps-allocation-wrmem", all_pass, detail));
    } else {
      results.push_back(Skip("thp-helps-allocation-wrmem", "no (wrmem, THP) rows"));
    }
  }

  // Figure 3: Carrefour-LP restores what THP lost on CG.D (machine B) by
  // splitting the hot pages.
  {
    const auto lp = Find(columns, kMachineB, "CG.D", kCarrefourLp);
    const auto thp = Find(columns, kMachineB, "CG.D", kThpName);
    if (lp && thp) {
      results.push_back(Verdict(
          "carrefour-lp-recovers-cg-on-machineB", lp->improvement() > thp->improvement(),
          Fmt("Carrefour-LP %.1f%% vs THP %.1f%%", lp->improvement(), thp->improvement())));
    } else {
      results.push_back(Skip("carrefour-lp-recovers-cg-on-machineB",
                             "need (machineB, CG.D) under both Carrefour-LP and THP"));
    }
  }

  // Figures 2 vs 3, the hot-page flagship: on CG.D (machine B) migration
  // cannot balance the few hot pages, so plain Carrefour-2M stays near
  // THP's loss while Carrefour-LP recovers by splitting — LP must be at
  // least C2M there, with no tolerance.
  {
    const auto lp = Find(columns, kMachineB, "CG.D", kCarrefourLp);
    const auto c2m = Find(columns, kMachineB, "CG.D", kCarrefour2M);
    if (lp && c2m) {
      results.push_back(Verdict("carrefour-lp-geq-carrefour-on-hot-page-cg",
                                lp->improvement() >= c2m->improvement(),
                                Fmt("Carrefour-LP %.1f%% vs Carrefour-2M %.1f%%",
                                    lp->improvement(), c2m->improvement())));
    } else {
      results.push_back(
          Skip("carrefour-lp-geq-carrefour-on-hot-page-cg",
               "need (machineB, CG.D) under both Carrefour-LP and Carrefour-2M"));
    }
  }

  // The paper's broader Figure 3 claim: across the whole NUMA-affected set,
  // large-page management "never loses more than a few percent" against
  // plain Carrefour. Evaluated per (machine, workload) column wherever both
  // policies were measured, with one small tolerance band for the "few
  // percent" — UA included. (Through PR 4, UA carried a 45-point carve-out
  // for a mass-relocation transient that epoch-capped runs could not
  // amortize; split-time piece placement, batched migration accounting and
  // the piece-locality hot-page discrimination removed the transient, so
  // the carve-out is gone.) UA additionally must show the locality the
  // splits bought: its LAR may not fall below plain Carrefour's — the
  // paper's Table 3 false-sharing recovery, asserted on top of the band.
  {
    constexpr double kTolerancePct = 6.0;
    constexpr const char* kAffected[] = {"CG.D", "LU.B",  "UA.B",    "UA.C",
                                         "MatrixMultiply", "wrmem", "SSCA.20",
                                         "SPECjbb"};
    bool any = false;
    bool all_pass = true;
    std::string detail;
    for (const char* machine : {kMachineA, kMachineB}) {
      for (const char* workload : kAffected) {
        const auto lp = Find(columns, machine, workload, kCarrefourLp);
        const auto c2m = Find(columns, machine, workload, kCarrefour2M);
        if (!lp || !c2m) {
          continue;
        }
        any = true;
        const bool ua = std::string_view(workload).substr(0, 2) == "UA";
        const bool ua_lar_recovered = !ua || lp->lar() >= c2m->lar() - 1.0;
        if (lp->improvement() < c2m->improvement() - kTolerancePct || !ua_lar_recovered) {
          all_pass = false;
          if (!detail.empty()) {
            detail += "; ";
          }
          detail += std::string(machine) + "/" + workload +
                    Fmt(": LP %.1f%% vs C2M %.1f%%", lp->improvement(),
                        c2m->improvement());
          if (!ua_lar_recovered) {
            detail += Fmt(" (UA requires LAR recovery: LP %.1f%% vs C2M %.1f%%)",
                          lp->lar(), c2m->lar());
          }
        }
      }
    }
    if (!any) {
      results.push_back(Skip("carrefour-lp-geq-carrefour",
                             "need Carrefour-LP and Carrefour-2M columns on the "
                             "affected set (run fig2 + fig3)"));
    } else {
      results.push_back(Verdict(
          "carrefour-lp-geq-carrefour", all_pass,
          all_pass ? "Carrefour-LP within tolerance of Carrefour-2M on every "
                     "measured affected column"
                   : detail));
    }
  }

  // Figure 2: Carrefour-2M rescues SSCA on machine A — migration and
  // interleaving suffice there (paper: THP -17% -> Carrefour-2M +17-ish).
  {
    const auto c2m = Find(columns, kMachineA, "SSCA.20", kCarrefour2M);
    const auto thp = Find(columns, kMachineA, "SSCA.20", kThpName);
    if (c2m && thp) {
      results.push_back(Verdict("carrefour-2m-rescues-ssca-on-machineA",
                                c2m->improvement() > thp->improvement(),
                                Fmt("Carrefour-2M %.1f%% vs THP %.1f%%", c2m->improvement(),
                                    thp->improvement())));
    } else {
      results.push_back(Skip("carrefour-2m-rescues-ssca-on-machineA",
                             "need (machineA, SSCA.20) under both Carrefour-2M and THP"));
    }
  }

  // Robustness (DESIGN.md Section 12): under the frag fault profile the
  // target-node contiguity a 2MB migration needs mostly isn't there, so on
  // the migration-rescued SSCA column (machine A) always-2M Carrefour-2M —
  // whose whole rescue rides on moving 2MB pages — falls off a cliff, while
  // Carrefour-LP observes the failures, discounts its migration estimate and
  // pivots to splitting + 4KB migration: its loss vs its own fault-free run
  // stays bounded and strictly below Carrefour-2M's.
  {
    constexpr double kGracefulLossPct = 35.0;
    const std::string lp = kCarrefourLp, c2m = kCarrefour2M;
    const auto lp_off = Find(fault_columns, kMachineA, "SSCA.20", lp + "|" + kFaultsOff);
    const auto lp_frag = Find(fault_columns, kMachineA, "SSCA.20", lp + "|" + kFaultsFrag);
    const auto c2m_off = Find(fault_columns, kMachineA, "SSCA.20", c2m + "|" + kFaultsOff);
    const auto c2m_frag = Find(fault_columns, kMachineA, "SSCA.20", c2m + "|" + kFaultsFrag);
    if (lp_off && lp_frag && c2m_off && c2m_frag) {
      const double lp_loss = lp_off->improvement() - lp_frag->improvement();
      const double c2m_loss = c2m_off->improvement() - c2m_frag->improvement();
      results.push_back(
          Verdict("carrefour-lp-graceful-under-frag",
                  lp_loss <= kGracefulLossPct && c2m_loss > lp_loss,
                  Fmt("frag costs Carrefour-LP %.1f points vs Carrefour-2M %.1f "
                      "(LP bound: 35.0)",
                      lp_loss, c2m_loss)));
    } else {
      results.push_back(Skip("carrefour-lp-graceful-under-frag",
                             "need (machineA, SSCA.20) under Carrefour-LP and "
                             "Carrefour-2M at faults=off and faults=frag "
                             "(run fault_grace)"));
    }
  }

  // Mmap-lifetime churn (DESIGN.md Section 14, bench_trace_replay): the
  // ckpt-churn trace's checkpoint storm leaves retained log pages behind
  // that puncture nearly every order-9 window, so always-2M's large faults
  // and 2MB migrations start failing *organically* (no fault injection) —
  // the buddy allocator genuinely has no contiguity left. Carrefour-LP
  // splits the hot 2MB pages and migrates 4KB pieces, which order-0
  // allocations always satisfy. Measured (BENCH_trace.json): THP around
  // -50%, Carrefour-LP slightly positive; the 10-point floor and the
  // nonzero-failure requirement assert the mechanism, not the exact gap.
  {
    constexpr double kChurnGapFloorPct = 10.0;
    constexpr const char* kChurnTrace = "trace:ckpt-churn";
    const auto lp = Find(columns, kMachineA, kChurnTrace, kCarrefourLp);
    const auto thp = Find(columns, kMachineA, kChurnTrace, kThpName);
    if (lp && thp) {
      const bool organic_failures = thp->alloc_failures() > 0.0;
      std::string detail =
          Fmt("Carrefour-LP %.1f%% vs always-2M %.1f%% (floor: +10 points)",
              lp->improvement(), thp->improvement());
      detail += Fmt("; %.0f organic alloc failures under always-2M (need > 0)",
                    thp->alloc_failures(), 0.0);
      results.push_back(Verdict(
          "thp-degrades-under-mmap-churn",
          lp->improvement() >= thp->improvement() + kChurnGapFloorPct && organic_failures,
          detail));
    } else {
      results.push_back(Skip("thp-degrades-under-mmap-churn",
                             "need (machineA, trace:ckpt-churn) under both "
                             "Carrefour-LP and THP (run trace_replay)"));
    }
  }

  // Datacenter scale (DESIGN.md Section 13, bench_datacenter): the paper's
  // split-then-place conclusion was measured on 4- and 8-node boxes; these
  // checks pin the committed answer for the machines where the decision
  // matters today. Measured shape (BENCH_datacenter.json): the hot-page gap
  // *widens* with node count — always-2M Carrefour's whole rescue is
  // migration, and migration balances a handful of hot pages across 16
  // targets even worse than across 4 — so Carrefour-LP's split path wins by
  // tens of points on CG.D at every scale. The 10-point floor asserts the
  // qualitative conclusion, not the exact gap.
  {
    constexpr double kHotPageGapFloorPct = 10.0;
    const auto lp = Find(columns, kSnc16, "CG.D", kCarrefourLp);
    const auto c2m = Find(columns, kSnc16, "CG.D", kCarrefour2M);
    if (lp && c2m) {
      results.push_back(
          Verdict("split-then-place-holds-at-16-nodes",
                  lp->improvement() >= c2m->improvement() + kHotPageGapFloorPct,
                  Fmt("Carrefour-LP %.1f%% vs Carrefour-2M %.1f%% (floor: +10 points)",
                      lp->improvement(), c2m->improvement())));
    } else {
      results.push_back(Skip("split-then-place-holds-at-16-nodes",
                             "need (snc16, CG.D) under both Carrefour-LP and "
                             "Carrefour-2M (run datacenter)"));
    }
  }
  {
    constexpr double kHotPageGapFloorPct = 10.0;
    const auto lp = Find(columns, kCxl, "CG.D", kCarrefourLp);
    const auto c2m = Find(columns, kCxl, "CG.D", kCarrefour2M);
    if (lp && c2m) {
      results.push_back(
          Verdict("split-then-place-holds-with-cxl-tier",
                  lp->improvement() >= c2m->improvement() + kHotPageGapFloorPct,
                  Fmt("Carrefour-LP %.1f%% vs Carrefour-2M %.1f%% (floor: +10 points)",
                      lp->improvement(), c2m->improvement())));
    } else {
      results.push_back(Skip("split-then-place-holds-with-cxl-tier",
                             "need (cxl, CG.D) under both Carrefour-LP and "
                             "Carrefour-2M (run datacenter)"));
    }
  }
  // The broader datacenter band, mirroring carrefour-lp-geq-carrefour: on
  // every measured (datacenter machine, workload) column, large-page
  // management stays within a few points of plain Carrefour (the one
  // near-tie in the committed data is UA.B on epyc8, where the two policies
  // land within a point of each other).
  {
    constexpr double kTolerancePct = 6.0;
    bool any = false;
    bool all_pass = true;
    std::string detail;
    for (const char* machine : {kEpyc8, kSnc16, kCxl}) {
      for (const char* workload : {"CG.D", "UA.B", "SSCA.20"}) {
        const auto lp = Find(columns, machine, workload, kCarrefourLp);
        const auto c2m = Find(columns, machine, workload, kCarrefour2M);
        if (!lp || !c2m) {
          continue;
        }
        any = true;
        if (lp->improvement() < c2m->improvement() - kTolerancePct) {
          all_pass = false;
          if (!detail.empty()) {
            detail += "; ";
          }
          detail += std::string(machine) + "/" + workload +
                    Fmt(": LP %.1f%% vs C2M %.1f%%", lp->improvement(), c2m->improvement());
        }
      }
    }
    if (!any) {
      results.push_back(Skip("carrefour-lp-geq-carrefour-at-datacenter",
                             "need Carrefour-LP and Carrefour-2M columns on a "
                             "datacenter machine (run datacenter)"));
    } else {
      results.push_back(Verdict("carrefour-lp-geq-carrefour-at-datacenter", all_pass,
                                all_pass ? "Carrefour-LP within tolerance of "
                                           "Carrefour-2M on every measured "
                                           "datacenter column"
                                         : detail));
    }
  }

  // Table 2 / Table 3: THP creates page-level false sharing on UA.B
  // (machine A), dragging the local access ratio below the 4KB run's.
  {
    const auto thp = Find(columns, kMachineA, "UA.B", kThpName);
    const auto linux = Find(columns, kMachineA, "UA.B", kLinux);
    if (thp && linux) {
      results.push_back(Verdict("thp-degrades-ua-lar-on-machineA", thp->lar() < linux->lar(),
                                Fmt("LAR %.1f%% under THP vs %.1f%% under Linux-4K",
                                    thp->lar(), linux->lar())));
    } else {
      results.push_back(Skip("thp-degrades-ua-lar-on-machineA",
                             "need (machineA, UA.B) under both THP and Linux-4K"));
    }
  }

  return results;
}

}  // namespace

bool AllPassed(const std::vector<CheckResult>& results) {
  for (const CheckResult& result : results) {
    if (result.status == CheckStatus::kFail) {
      return false;
    }
  }
  return true;
}

void PrintCheckResults(std::ostream& out, const std::vector<CheckResult>& results) {
  for (const CheckResult& result : results) {
    const char* status = result.status == CheckStatus::kPass   ? "PASS"
                         : result.status == CheckStatus::kFail ? "FAIL"
                                                               : "SKIP";
    out << status << ' ' << result.name;
    if (!result.detail.empty()) {
      out << ": " << result.detail;
    }
    out << '\n';
  }
}

}  // namespace numalp::report
