// numalp_tracegen — synthesizes phase-structured binary traces from the
// embedded application profiles (src/trace/tracegen.cc):
//
//   numalp_tracegen --profile ckpt-churn --out ckpt.trace
//                   [--machine A|B|epyc8|snc16|cxl] [--seed N]
//                   [--epochs N] [--accesses N] [--list-profiles]
//
// The output replays with `numalp_run --workload trace:FILE` (or any grid
// driver that accepts a trace workload). Profiles model the compute /
// shuffle / checkpoint phase mixes of BERT, ResNet-50, LAMMPS and NAMD;
// "ckpt-churn" adds the checkpoint-storm mmap churn whose retained log pages
// fragment the buddy allocator on replay (DESIGN.md Section 14).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "src/report/options.h"
#include "src/topo/topology.h"
#include "src/trace/tracegen.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "numalp_tracegen — synthesize a phase-structured access trace\n\n"
               "usage: numalp_tracegen --profile NAME --out FILE [options]\n"
               "  --profile NAME   embedded phase profile (see --list-profiles)\n"
               "  --out FILE       output trace path\n"
               "  --machine M      target preset: A B epyc8 snc16 cxl (default A)\n"
               "  --seed N         generator seed (default 42)\n"
               "  --epochs N       steady epochs; 0 = profile default, shorter runs\n"
               "                   compress the phase schedule proportionally\n"
               "  --accesses N     accesses per thread per epoch (default 4096)\n"
               "  --list-profiles  print the embedded profile names and exit\n"
               "  --help           this message\n");
}

}  // namespace

int main(int argc, char** argv) {
  numalp::trace::TracegenOptions options;
  options.topo = numalp::Topology::MachineA();
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        PrintUsage(stderr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (arg == "--list-profiles") {
      for (const std::string& name : numalp::trace::TracegenProfiles()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--profile") {
      options.profile = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--machine") {
      const auto topo = numalp::report::ParseMachineName(next());
      if (!topo) {
        PrintUsage(stderr);
        return 2;
      }
      options.topo = *topo;
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--epochs") {
      options.epochs = std::atoi(next());
    } else if (arg == "--accesses") {
      options.accesses_per_thread = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }

  if (options.profile.empty() || out_path.empty()) {
    PrintUsage(stderr);
    return 2;
  }
  try {
    numalp::trace::GenerateTrace(options, out_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "numalp_tracegen: %s\n", e.what());
    return 1;
  }
  std::printf("wrote %s (profile %s, machine %s, seed %llu)\n", out_path.c_str(),
              options.profile.c_str(), options.topo.name().c_str(),
              static_cast<unsigned long long>(options.seed));
  return 0;
}
