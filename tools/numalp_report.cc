// numalp_report — aggregates a directory of JSONL runs (written by the
// bench/example/tool sinks via --out-dir) into the paper's figures and
// tables, an optional committable bench_summary.json, and the executable
// qualitative reproduction checks.
//
//   numalp_report [dir|file.jsonl ...]      (default: ./results)
//                 [--format md|csv|jsonl]   aggregate output format
//                 [--summary FILE]          write a bench_summary.json
//                 [--from-summary FILE]     load a committed bench_summary.json
//                                           instead of JSONL rows (checks run
//                                           against the baseline artifact)
//                 [--check]                 evaluate the paper expectations;
//                                           exit 1 if any present-data check
//                                           fails (missing columns SKIP)
//
// See REPRODUCING.md for the full workflow and DESIGN.md Section 6 for the
// row schema this consumes.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "src/report/aggregate.h"
#include "src/report/checks.h"

namespace {

void Usage(std::FILE* out) {
  std::fprintf(out,
               "numalp_report — aggregate JSONL results into figures, a summary JSON and"
               " qualitative checks\n\n"
               "usage: numalp_report [dir|file.jsonl ...] [options]   (default input:"
               " ./results)\n"
               "  --format md|csv|jsonl  aggregate output format (default: md"
               " figures/tables)\n"
               "  --summary FILE         also write the aggregates as a bench_summary.json\n"
               "  --from-summary FILE    load a committed bench_summary.json instead of\n"
               "                         JSONL rows (e.g. --from-summary BENCH_fig2_fig3.json\n"
               "                         --check asserts the committed baseline)\n"
               "  --check                evaluate the paper's qualitative expectations;\n"
               "                         exit 1 when present data contradicts the paper\n"
               "  --help                 this message\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string format = "md";
  std::string summary_path;
  std::string from_summary_path;
  bool check = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(stderr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else if (arg == "--format") {
      format = next();
      if (format != "md" && format != "csv" && format != "jsonl") {
        Usage(stderr);
        return 2;
      }
    } else if (arg == "--summary") {
      summary_path = next();
    } else if (arg == "--from-summary") {
      from_summary_path = next();
    } else if (arg == "--check") {
      check = true;
    } else if (!arg.empty() && arg[0] == '-') {
      Usage(stderr);
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (!from_summary_path.empty()) {
    // Baseline mode: parse the committed summary and evaluate against it —
    // no row loading, no re-aggregation. Flags that only make sense for the
    // row path are rejected rather than silently ignored.
    if (!inputs.empty() || !summary_path.empty()) {
      std::fprintf(stderr,
                   "numalp_report: --from-summary replaces row inputs; it cannot be "
                   "combined with input paths or --summary\n");
      return 2;
    }
    std::ifstream in(from_summary_path);
    if (!in) {
      std::fprintf(stderr, "numalp_report: cannot read %s\n", from_summary_path.c_str());
      return 2;
    }
    const std::string contents((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    std::vector<numalp::report::AggregateRow> aggregates;
    std::string error;
    if (!numalp::report::ParseSummaryJson(contents, &aggregates, &error)) {
      std::fprintf(stderr, "numalp_report: %s: %s\n", from_summary_path.c_str(),
                   error.c_str());
      return 2;
    }
    if (format == "csv") {
      numalp::report::WriteAggregatesCsv(std::cout, aggregates);
    } else if (format == "jsonl") {
      numalp::report::WriteAggregatesJsonl(std::cout, aggregates);
    } else {
      std::printf("# numalp committed baseline %s — %zu columns\n\n",
                  from_summary_path.c_str(), aggregates.size());
      numalp::report::PrintAggregates(std::cout, aggregates);
    }
    if (check) {
      const auto results = numalp::report::EvaluatePaperChecks(aggregates);
      numalp::report::PrintCheckResults(format == "md" ? std::cout : std::cerr, results);
      if (!numalp::report::AllPassed(results)) {
        return 1;
      }
    }
    return 0;
  }
  if (inputs.empty()) {
    inputs.push_back("results");
  }

  std::vector<numalp::report::ParseIssue> issues;
  std::vector<numalp::report::ResultRow> rows;
  for (const std::string& input : inputs) {
    std::vector<numalp::report::ResultRow> loaded =
        numalp::report::LoadResults(input, &issues);
    rows.insert(rows.end(), loaded.begin(), loaded.end());
  }
  for (const auto& issue : issues) {
    std::fprintf(stderr, "numalp_report: %s:%d: %s\n", issue.file.c_str(), issue.line,
                 issue.message.c_str());
  }
  if (rows.empty()) {
    std::fprintf(stderr, "numalp_report: no rows loaded from");
    for (const std::string& input : inputs) {
      std::fprintf(stderr, " %s", input.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  const std::vector<numalp::report::AggregateRow> aggregates =
      numalp::report::Aggregate(rows);

  if (format == "csv") {
    numalp::report::WriteAggregatesCsv(std::cout, aggregates);
  } else if (format == "jsonl") {
    numalp::report::WriteAggregatesJsonl(std::cout, aggregates);
  } else {
    std::printf("# numalp results — %zu rows, %zu columns\n\n", rows.size(),
                aggregates.size());
    numalp::report::PrintAggregates(std::cout, aggregates);
  }

  if (!summary_path.empty()) {
    std::ofstream summary(summary_path, std::ios::trunc);
    if (!summary) {
      std::fprintf(stderr, "numalp_report: cannot open %s\n", summary_path.c_str());
      return 2;
    }
    numalp::report::WriteSummaryJson(summary, aggregates);
  }

  if (check) {
    const auto results = numalp::report::EvaluatePaperChecks(rows);
    numalp::report::PrintCheckResults(format == "md" ? std::cout : std::cerr, results);
    if (!numalp::report::AllPassed(results)) {
      return 1;
    }
  }
  return 0;
}
