// numalp_run — command-line driver for single experiments.
//
//   numalp_run --workload CG.D --machine B --policy carrefour-lp
//              [--seed N] [--epochs N] [--ibs-interval N] [--per-epoch]
//              [--capture-trace FILE] [standard flags: --format --out-dir
//              --jobs --accesses]
//
// Emits the run and its same-seed Linux-4K baseline as ResultRows (both
// execute concurrently on the ExperimentRunner), and with --per-epoch also
// prints the full epoch trace including the reactive component's LAR
// estimates (md mode only — csv/jsonl stdout stays machine-parseable).
//
// Trace capture/replay (DESIGN.md Section 14): --capture-trace records the
// measured cell's access stream; --workload trace:FILE replays a recording
// (the batch geometry comes from the trace header, and --machine must match
// the recorded machine). A replayed cell's ResultRow is byte-identical to
// the captured cell's.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/core/simulation.h"
#include "src/report/collector.h"
#include "src/report/options.h"
#include "src/topo/topology.h"
#include "src/trace/trace_reader.h"
#include "src/workloads/spec.h"
#include "src/workloads/trace_workload.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "numalp_run", "run", "one experiment against its Linux-4K baseline",
      "  --workload NAME        paper suite (BT.B CG.D ... SPECjbb) + streamcluster"
      " sparse-footprint,\n"
      "                         or trace:FILE to replay a recorded trace"
      " (default CG.D)\n"
      "  --machine A|B          machine preset (default B)\n"
      "  --policy P             linux-4k thp carrefour-2m reactive conservative"
      " carrefour-lp (default carrefour-lp)\n"
      "  --ibs-interval N       one IBS sample per N accesses per core\n"
      "  --per-epoch            print the epoch trace (md mode only)\n"
      "  --capture-trace FILE   record the measured cell's access stream into"
      " FILE\n"};

  numalp::BenchmarkId bench = numalp::BenchmarkId::kCG_D;
  numalp::Topology topo = numalp::Topology::MachineB();
  numalp::PolicyKind policy = numalp::PolicyKind::kCarrefourLp;
  std::uint64_t ibs_interval = 0;
  bool per_epoch = false;
  std::string trace_file;
  std::string capture_file;
  const std::vector<numalp::report::ExtraFlag> extras = {
      numalp::report::WorkloadFlag(&bench, &trace_file),
      numalp::report::MachineFlag(&topo),
      numalp::report::PolicyFlag(&policy),
      {"--ibs-interval", true,
       [&ibs_interval](const char* value) {
         ibs_interval = std::strtoull(value, nullptr, 10);
         return ibs_interval > 0;
       }},
      {"--per-epoch", false,
       [&per_epoch](const char*) {
         per_epoch = true;
         return true;
       }},
      {"--capture-trace", true,
       [&capture_file](const char* value) {
         capture_file = value;
         return !capture_file.empty();
       }},
  };
  numalp::report::Options options = numalp::report::ParseToolArgs(argc, argv, info, extras);
  if (ibs_interval > 0) {
    options.sim.ibs_interval = ibs_interval;
  }

  numalp::WorkloadSpec workload;
  if (!trace_file.empty()) {
    const numalp::trace::TraceHeader header = numalp::trace::ReadTraceHeader(trace_file);
    if (header.machine != topo.name()) {
      std::fprintf(stderr, "trace %s was recorded on %s; pass --machine %s\n",
                   trace_file.c_str(), header.machine.c_str(), header.machine.c_str());
      return 2;
    }
    // The trace dictates the batch geometry: replay must fill epochs exactly
    // as the recorded run did for the byte-identity contract to hold.
    options.sim.accesses_per_thread_per_epoch = header.accesses_per_thread_per_epoch;
    workload = numalp::MakeTraceWorkloadSpec(trace_file);
  } else {
    workload = numalp::MakeWorkloadSpec(bench, topo);
  }

  std::vector<numalp::RunSpec> cells(1);
  cells[0].topo = topo;
  cells[0].workload = workload;
  cells[0].policy = numalp::MakePolicyConfig(numalp::PolicyKind::kLinux4K);
  cells[0].sim = options.sim;
  std::vector<numalp::report::GridReport::CellMeta> meta = {{"", -1, 0}};
  if (policy != numalp::PolicyKind::kLinux4K) {
    cells.push_back(cells[0]);
    cells[1].policy = numalp::MakePolicyConfig(policy);
    meta.push_back({"", /*baseline=*/0, 0});
  }
  // Capture records the measured cell (the last one): the replayable
  // artifact of interest is the stream the policy under study saw.
  if (!capture_file.empty()) {
    cells.back().workload.capture_file = capture_file;
  }

  numalp::report::GridReport report(options, info);
  const std::vector<numalp::RunResult> results = report.RunCells(cells, meta);
  report.Finish();

  if (per_epoch && options.human()) {
    const numalp::RunResult& run = results.back();
    std::printf("\n%3s %6s %6s %6s %6s %5s %5s %6s %6s %6s %5s\n", "ep", "wall-M", "LAR%",
                "imbal", "fault%", "migr", "split", "estC", "estCF", "estSP", "thp");
    for (const auto& e : run.history) {
      std::printf("%3d %6.2f %6.1f %6.1f %6.2f %5llu %5llu %6.1f %6.1f %6.1f %5s\n", e.epoch,
                  static_cast<double>(e.wall) / 1e6, e.metrics.lar_pct,
                  e.metrics.imbalance_pct, 100.0 * e.metrics.max_fault_time_share,
                  static_cast<unsigned long long>(e.migrations),
                  static_cast<unsigned long long>(e.splits), e.est_current_lar,
                  e.est_carrefour_lar, e.est_split_lar, e.thp_alloc_enabled ? "on" : "off");
    }
  }
  return 0;
}
