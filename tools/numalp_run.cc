// numalp_run — command-line driver for single experiments.
//
//   numalp_run --workload CG.D --machine B --policy carrefour-lp
//              [--seed N] [--epochs N] [--ibs-interval N] [--jobs N]
//              [--per-epoch]
//
// Prints the run's headline metrics (and, with --per-epoch, the full epoch
// trace including the reactive component's LAR estimates), always against
// the Linux-4K baseline of the same seed. The policy run and its baseline
// execute concurrently on the ExperimentRunner (--jobs, or NUMALP_JOBS).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/core/simulation.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace {

std::optional<numalp::BenchmarkId> ParseWorkload(const std::string& name) {
  for (numalp::BenchmarkId id : numalp::FullSuite()) {
    if (name == numalp::NameOf(id)) {
      return id;
    }
  }
  if (name == "streamcluster") {
    return numalp::BenchmarkId::kStreamcluster;
  }
  return std::nullopt;
}

std::optional<numalp::PolicyKind> ParsePolicy(const std::string& name) {
  if (name == "linux" || name == "linux-4k") {
    return numalp::PolicyKind::kLinux4K;
  }
  if (name == "thp") {
    return numalp::PolicyKind::kThp;
  }
  if (name == "carrefour-2m" || name == "carrefour") {
    return numalp::PolicyKind::kCarrefour2M;
  }
  if (name == "reactive") {
    return numalp::PolicyKind::kReactiveOnly;
  }
  if (name == "conservative") {
    return numalp::PolicyKind::kConservativeOnly;
  }
  if (name == "carrefour-lp" || name == "lp") {
    return numalp::PolicyKind::kCarrefourLp;
  }
  return std::nullopt;
}

void Usage() {
  std::fprintf(stderr,
               "usage: numalp_run --workload <name> [--machine A|B] [--policy <p>]\n"
               "                  [--seed N] [--epochs N] [--ibs-interval N] [--jobs N]\n"
               "                  [--per-epoch]\n"
               "  workloads: the paper suite (BT.B CG.D ... SPECjbb) plus streamcluster\n"
               "  policies:  linux-4k thp carrefour-2m reactive conservative carrefour-lp\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "CG.D";
  std::string machine = "B";
  std::string policy_name = "carrefour-lp";
  numalp::SimConfig sim = numalp::WithEnvOverrides(numalp::SimConfig{});
  bool per_epoch = false;
  int jobs = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload_name = next();
    } else if (arg == "--machine") {
      machine = next();
    } else if (arg == "--policy") {
      policy_name = next();
    } else if (arg == "--seed") {
      sim.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--epochs") {
      sim.max_epochs = std::atoi(next());
    } else if (arg == "--ibs-interval") {
      sim.ibs_interval = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      jobs = std::atoi(next());
    } else if (arg == "--per-epoch") {
      per_epoch = true;
    } else {
      Usage();
      return 2;
    }
  }

  const auto bench = ParseWorkload(workload_name);
  const auto policy = ParsePolicy(policy_name);
  if (!bench || !policy) {
    Usage();
    return 2;
  }
  const numalp::Topology topo =
      machine == "A" ? numalp::Topology::MachineA() : numalp::Topology::MachineB();

  std::vector<numalp::RunSpec> cells(1);
  cells[0].topo = topo;
  cells[0].workload = numalp::MakeWorkloadSpec(*bench, topo);
  cells[0].policy = numalp::MakePolicyConfig(numalp::PolicyKind::kLinux4K);
  cells[0].sim = sim;
  if (*policy != numalp::PolicyKind::kLinux4K) {
    cells.push_back(cells[0]);
    cells[1].policy = numalp::MakePolicyConfig(*policy);
  }
  const std::vector<numalp::RunResult> results = numalp::ExperimentRunner(jobs).Run(cells);
  const numalp::RunResult& baseline = results[0];
  const numalp::RunResult& run = results.back();

  std::printf("%s on %s under %s (seed %llu)\n", workload_name.c_str(), topo.name().c_str(),
              std::string(numalp::NameOf(*policy)).c_str(),
              static_cast<unsigned long long>(sim.seed));
  std::printf("  runtime           %10.2f ms   (%+.1f%% vs Linux-4K)\n",
              run.RuntimeMs(sim.clock_ghz), numalp::ImprovementPct(baseline, run));
  std::printf("  LAR               %10.1f %%\n", run.LarPct());
  std::printf("  imbalance         %10.1f %%\n", run.ImbalancePct());
  std::printf("  PAMUP / NHP / PSP %8.1f%% / %d / %.1f%%\n", run.PamupPct(), run.Nhp(),
              run.PspPct());
  std::printf("  walk L2 misses    %10.2f %% of L2 misses\n", 100.0 * run.WalkL2MissFrac());
  std::printf("  fault time (max)  %10.2f %% steady, %.1f ms total\n",
              run.SteadyMaxFaultSharePct(), run.MaxFaultTimeMs(sim.clock_ghz));
  std::printf("  policy actions    %llu migrations, %llu splits, %llu promotions\n",
              static_cast<unsigned long long>(run.total_migrations),
              static_cast<unsigned long long>(run.total_splits),
              static_cast<unsigned long long>(run.total_promotions));
  std::printf("  THP coverage      %10.1f %% of mapped bytes\n",
              100.0 * run.final_thp_coverage);

  if (per_epoch) {
    std::printf("\n%3s %6s %6s %6s %6s %5s %5s %6s %6s %6s %5s\n", "ep", "wall-M", "LAR%",
                "imbal", "fault%", "migr", "split", "estC", "estCF", "estSP", "thp");
    for (const auto& e : run.history) {
      std::printf("%3d %6.2f %6.1f %6.1f %6.2f %5llu %5llu %6.1f %6.1f %6.1f %5s\n", e.epoch,
                  static_cast<double>(e.wall) / 1e6, e.metrics.lar_pct,
                  e.metrics.imbalance_pct, 100.0 * e.metrics.max_fault_time_share,
                  static_cast<unsigned long long>(e.migrations),
                  static_cast<unsigned long long>(e.splits), e.est_current_lar,
                  e.est_carrefour_lar, e.est_split_lar, e.thp_alloc_enabled ? "on" : "off");
    }
  }
  return 0;
}
