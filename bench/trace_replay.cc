// Trace-replay sweep (DESIGN.md Section 14): the embedded tracegen profiles
// (BERT/ResNet-50/LAMMPS/NAMD phase mixes plus the ckpt-churn checkpoint
// storm) are synthesized per seed and replayed on machine A under Linux-4K,
// THP, always-2M Carrefour-2M and Carrefour-LP. The replayed mmap/munmap
// churn flows through AddressSpace::MunmapRange into the buddy allocator, so
// fragmentation here is organic — no fault injection — and the committed
// expectation (`thp-degrades-under-mmap-churn`) asserts that always-2M loses
// measurably to Carrefour-LP on ckpt-churn because its 2MB faults and
// migrations start failing for real.
//
// Traces are generated into --trace-dir (default: the system temp dir) at
// bench startup; only the summary (BENCH_trace.json shape) is committed —
// the binary traces are reproducible from (profile, machine, seed).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/report/collector.h"
#include "src/report/options.h"
#include "src/topo/topology.h"
#include "src/trace/trace_reader.h"
#include "src/trace/tracegen.h"
#include "src/workloads/spec.h"
#include "src/workloads/trace_workload.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "trace_replay", "trace",
      "Trace replay: tracegen profiles x 4 policies x seeds on machine A, "
      "with mmap churn fragmenting the buddy allocator organically",
      "  --trace-dir DIR        where generated traces are written (default: "
      "system temp dir)\n"
      "  --trace-epochs N       steady epochs per generated trace (0 = each "
      "profile's default;\n"
      "                         smoke runs shrink this and the phase schedule "
      "compresses)\n"};

  std::string trace_dir =
      (std::filesystem::temp_directory_path() / "numalp_traces").string();
  int trace_epochs = 0;
  const std::vector<numalp::report::ExtraFlag> extras = {
      {"--trace-dir", true,
       [&trace_dir](const char* value) {
         trace_dir = value;
         return !trace_dir.empty();
       }},
      {"--trace-epochs", true,
       [&trace_epochs](const char* value) {
         trace_epochs = std::atoi(value);
         return trace_epochs >= 0;
       }},
  };
  const numalp::report::Options options =
      numalp::report::ParseToolArgs(argc, argv, info, extras);
  const numalp::Topology topo = numalp::Topology::MachineA();
  constexpr int kSeeds = 3;

  std::error_code ec;
  std::filesystem::create_directories(trace_dir, ec);
  if (ec) {
    std::fprintf(stderr, "trace_replay: cannot create %s: %s\n", trace_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  // Generate every (profile, seed) trace up front; replay cells read the
  // headers when the grid is built. The generator shares the sweep's access
  // geometry so replayed epochs are exactly full.
  std::vector<std::string> trace_paths;  // profile-major, seed-minor
  for (const std::string& profile : numalp::trace::TracegenProfiles()) {
    for (int s = 0; s < kSeeds; ++s) {
      numalp::trace::TracegenOptions gen;
      gen.profile = profile;
      gen.topo = topo;
      gen.seed = options.sim.seed + static_cast<std::uint64_t>(s);
      gen.accesses_per_thread =
          static_cast<std::uint32_t>(options.sim.accesses_per_thread_per_epoch);
      gen.epochs = trace_epochs;
      const std::string path = (std::filesystem::path(trace_dir) /
                                ("trace_" + profile + "_s" + std::to_string(s) + ".bin"))
                                   .string();
      numalp::trace::GenerateTrace(gen, path);
      trace_paths.push_back(path);
    }
  }

  const std::vector<numalp::PolicyKind> policies = {numalp::PolicyKind::kThp,
                                                    numalp::PolicyKind::kCarrefour2M,
                                                    numalp::PolicyKind::kCarrefourLp};

  // Profile-major, then seed: per (profile, seed) one Linux-4K baseline
  // followed by the policy cells that compare against it.
  std::vector<numalp::RunSpec> cells;
  std::vector<numalp::report::GridReport::CellMeta> meta;
  std::size_t trace_index = 0;
  for (const std::string& profile : numalp::trace::TracegenProfiles()) {
    (void)profile;
    for (int s = 0; s < kSeeds; ++s) {
      const std::string& path = trace_paths[trace_index++];
      numalp::RunSpec base;
      base.topo = topo;
      base.workload = numalp::MakeTraceWorkloadSpec(path);
      base.policy = numalp::MakePolicyConfig(numalp::PolicyKind::kLinux4K);
      base.sim = options.sim;
      base.sim.seed = options.sim.seed + static_cast<std::uint64_t>(s);
      const int baseline = static_cast<int>(cells.size());
      cells.push_back(base);
      meta.push_back({"", -1, s});
      for (const numalp::PolicyKind kind : policies) {
        numalp::RunSpec cell = base;
        cell.policy = numalp::MakePolicyConfig(kind);
        cells.push_back(cell);
        meta.push_back({"", baseline, s});
      }
    }
  }

  numalp::report::GridReport report(options, info);
  report.RunCells(cells, meta);
  return 0;
}
