// Table 3: LAR and imbalance across Linux-4K / THP / Carrefour-2M /
// Carrefour-LP for CG.D on machine B, UA.B on machine A, and UA.C on
// machine B.
//
// Paper values:
//   CG.D (B): LAR 40/36/38/39, imbalance  1/59/69/ 3
//   UA.B (A): LAR 90/61/58/85, imbalance  9/15/17/10
//   UA.C (B): LAR 88/66/68/82, imbalance 14/12/ 9/14
#include <cstdio>
#include <string>

#include "src/core/experiment.h"
#include "src/topo/topology.h"

namespace {

void Row(const numalp::Topology& topo, numalp::BenchmarkId bench) {
  numalp::SimConfig sim;
  const std::vector<numalp::PolicyKind> policies = {
      numalp::PolicyKind::kLinux4K, numalp::PolicyKind::kThp,
      numalp::PolicyKind::kCarrefour2M, numalp::PolicyKind::kCarrefourLp};
  const auto summaries = numalp::ComparePolicies(topo, bench, policies, sim, /*seeds=*/3);
  std::printf("%-8s (%s)  LAR%%:", std::string(numalp::NameOf(bench)).c_str(),
              topo.name() == "machineA" ? "A" : "B");
  for (const auto& s : summaries) {
    std::printf(" %5.1f", s.lar_pct);
  }
  std::printf("   imbalance%%:");
  for (const auto& s : summaries) {
    std::printf(" %5.1f", s.imbalance_pct);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Table 3: NUMA metrics (columns: Linux-4K, THP, Carrefour-2M, Carrefour-LP)\n\n");
  Row(numalp::Topology::MachineB(), numalp::BenchmarkId::kCG_D);
  Row(numalp::Topology::MachineA(), numalp::BenchmarkId::kUA_B);
  Row(numalp::Topology::MachineB(), numalp::BenchmarkId::kUA_C);
  return 0;
}
