// Table 3: LAR and imbalance across Linux-4K / THP / Carrefour-2M /
// Carrefour-LP for CG.D on machine B, UA.B on machine A, and UA.C on
// machine B.
//
// Paper values:
//   CG.D (B): LAR 40/36/38/39, imbalance  1/59/69/ 3
//   UA.B (A): LAR 90/61/58/85, imbalance  9/15/17/10
//   UA.C (B): LAR 88/66/68/82, imbalance 14/12/ 9/14
#include <cstdio>
#include <string>

#include "src/core/runner.h"
#include "src/topo/topology.h"

namespace {

void Row(const numalp::GridResults& results, const numalp::Topology& topo, int workload,
         numalp::BenchmarkId bench) {
  const auto summaries = results.SummarizeAll(0, workload);
  std::printf("%-8s (%s)  LAR%%:", std::string(numalp::NameOf(bench)).c_str(),
              topo.name() == "machineA" ? "A" : "B");
  for (const auto& s : summaries) {
    std::printf(" %5.1f", s.lar_pct);
  }
  std::printf("   imbalance%%:");
  for (const auto& s : summaries) {
    std::printf(" %5.1f", s.imbalance_pct);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Table 3: NUMA metrics (columns: Linux-4K, THP, Carrefour-2M, Carrefour-LP)\n\n");
  const numalp::Topology a = numalp::Topology::MachineA();
  const numalp::Topology b = numalp::Topology::MachineB();
  const std::vector<numalp::PolicyKind> policies = {
      numalp::PolicyKind::kLinux4K, numalp::PolicyKind::kThp,
      numalp::PolicyKind::kCarrefour2M, numalp::PolicyKind::kCarrefourLp};
  const numalp::SimConfig sim = numalp::WithEnvOverrides(numalp::SimConfig{});

  // Two per-machine grids executed on one shared pool (the table's rows mix
  // machines, which a single cross product cannot express).
  numalp::ExperimentGrid grid_b;
  grid_b.machines = {b};
  grid_b.workloads = {numalp::BenchmarkId::kCG_D, numalp::BenchmarkId::kUA_C};
  grid_b.policies = policies;
  grid_b.num_seeds = 3;
  grid_b.sim = sim;

  numalp::ExperimentGrid grid_a = grid_b;
  grid_a.machines = {a};
  grid_a.workloads = {numalp::BenchmarkId::kUA_B};

  const std::vector<numalp::GridResults> results = numalp::RunGrids({grid_b, grid_a});

  Row(results[0], b, 0, numalp::BenchmarkId::kCG_D);
  Row(results[1], a, 0, numalp::BenchmarkId::kUA_B);
  Row(results[0], b, 1, numalp::BenchmarkId::kUA_C);
  return 0;
}
