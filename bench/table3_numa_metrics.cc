// Table 3: LAR and imbalance across Linux-4K / THP / Carrefour-2M /
// Carrefour-LP for CG.D on machine B, UA.B on machine A, and UA.C on
// machine B (the lar_pct / imbalance_pct row fields).
//
// Paper values:
//   CG.D (B): LAR 40/36/38/39, imbalance  1/59/69/ 3
//   UA.B (A): LAR 90/61/58/85, imbalance  9/15/17/10
//   UA.C (B): LAR 88/66/68/82, imbalance 14/12/ 9/14
//
// Two per-machine grids executed on one shared pool (the table's rows mix
// machines, which a single cross product cannot express).
#include "bench/bench_util.h"
#include "src/topo/topology.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "table3_numa_metrics", "table3",
      "Table 3: LAR and imbalance across all four system configurations"};
  const std::vector<numalp::PolicyKind> policies = {
      numalp::PolicyKind::kLinux4K, numalp::PolicyKind::kThp,
      numalp::PolicyKind::kCarrefour2M, numalp::PolicyKind::kCarrefourLp};
  numalp::ExperimentGrid grid_b;
  grid_b.machines = {numalp::Topology::MachineB()};
  grid_b.workloads = {numalp::BenchmarkId::kCG_D, numalp::BenchmarkId::kUA_C};
  grid_b.policies = policies;
  grid_b.num_seeds = 3;

  numalp::ExperimentGrid grid_a = grid_b;
  grid_a.machines = {numalp::Topology::MachineA()};
  grid_a.workloads = {numalp::BenchmarkId::kUA_B};

  return numalp_bench::RunFigureBench(argc, argv, info, {grid_b, grid_a});
}
