// Ablation (extra, motivated by Section 3.2.1's threshold discussion):
// sensitivity of Carrefour-LP to Algorithm 1's three thresholds — the 15%
// LAR-gain bar for migration-only, the 5% LAR-gain bar for splitting, and
// the 6% hot-page share. The paper reports the first two were "relatively
// easy to tune"; this sweep shows the plateau they sit on.
//
// The sweeps vary PolicyConfig fields, which the declarative grid's policy
// axis cannot express, so all three are batched into one flat RunSpec list:
// a single shared Linux-4K baseline per benchmark, then one Carrefour-LP
// cell per (sweep, threshold point, benchmark), tagged with a
// "miggain=N" / "splitgain=N" / "hotshare=N" variant.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/report/collector.h"
#include "src/report/options.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace {

struct ThresholdPoint {
  double lar_gain_carrefour = 15.0;
  double lar_gain_split = 5.0;
  double hot_share = 6.0;
};

struct Sweep {
  const char* tag;  // variant prefix
  std::vector<double> thresholds;
  std::vector<ThresholdPoint> points;
  std::vector<numalp::BenchmarkId> benches;
};

}  // namespace

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "ablation_thresholds", "ablation_thresholds",
      "Ablation: sensitivity of Algorithm 1's three thresholds (machine B)"};
  const numalp::report::Options options = numalp::report::ParseToolArgs(argc, argv, info);
  const numalp::Topology topo = numalp::Topology::MachineB();

  const std::vector<numalp::BenchmarkId> pair = {numalp::BenchmarkId::kCG_D,
                                                 numalp::BenchmarkId::kUA_B};
  std::vector<Sweep> sweeps = {
      // (a) migration-gain threshold (paper: 15%), split-gain fixed at 5%.
      {"miggain", {5.0, 10.0, 15.0, 25.0, 40.0}, {}, pair},
      // (b) split-gain threshold (paper: 5%), migration-gain fixed at 15%.
      {"splitgain", {1.0, 5.0, 10.0, 20.0, 50.0}, {}, pair},
      // (c) hot-page share threshold (paper: 6%).
      {"hotshare", {2.0, 6.0, 12.0, 25.0, 100.0}, {}, {numalp::BenchmarkId::kCG_D}},
  };
  for (double t : sweeps[0].thresholds) {
    sweeps[0].points.push_back({t, 5.0, 6.0});
  }
  for (double t : sweeps[1].thresholds) {
    sweeps[1].points.push_back({15.0, t, 6.0});
  }
  for (double t : sweeps[2].thresholds) {
    sweeps[2].points.push_back({15.0, 5.0, t});
  }

  // One cell list for everything: a baseline per benchmark, then per sweep
  // one LP cell per (point, benchmark) in point-major order.
  std::vector<numalp::RunSpec> cells;
  std::vector<numalp::report::GridReport::CellMeta> meta;
  std::vector<int> baseline_of(pair.size());
  for (std::size_t b = 0; b < pair.size(); ++b) {
    numalp::RunSpec base;
    base.topo = topo;
    base.workload = numalp::MakeWorkloadSpec(pair[b], topo);
    base.policy = numalp::MakePolicyConfig(numalp::PolicyKind::kLinux4K);
    base.sim = options.sim;
    baseline_of[b] = static_cast<int>(cells.size());
    cells.push_back(base);
    meta.push_back({"", -1, 0});
  }
  for (const Sweep& sweep : sweeps) {
    for (std::size_t p = 0; p < sweep.points.size(); ++p) {
      const ThresholdPoint& point = sweep.points[p];
      char variant[32];
      std::snprintf(variant, sizeof(variant), "%s=%.0f", sweep.tag, sweep.thresholds[p]);
      for (numalp::BenchmarkId bench : sweep.benches) {
        numalp::RunSpec lp;
        lp.topo = topo;
        lp.workload = numalp::MakeWorkloadSpec(bench, topo);
        lp.policy = numalp::MakePolicyConfig(numalp::PolicyKind::kCarrefourLp);
        lp.policy.lar_gain_carrefour_pct = point.lar_gain_carrefour;
        lp.policy.lar_gain_split_pct = point.lar_gain_split;
        lp.policy.hot_page_share_pct = point.hot_share;
        lp.sim = options.sim;
        // Sweep bench lists are prefixes of `pair`, so the bench's position
        // addresses the matching baseline.
        const std::size_t b = bench == pair[0] ? 0 : 1;
        cells.push_back(lp);
        meta.push_back({variant, baseline_of[b], 0});
      }
    }
  }

  numalp::report::GridReport report(options, info);
  report.RunCells(cells, meta);
  return 0;
}
