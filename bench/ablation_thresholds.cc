// Ablation (extra, motivated by Section 3.2.1's threshold discussion):
// sensitivity of Carrefour-LP to Algorithm 1's three thresholds — the 15%
// LAR-gain bar for migration-only, the 5% LAR-gain bar for splitting, and
// the 6% hot-page share. The paper reports the first two were "relatively
// easy to tune"; this sweep shows the plateau they sit on.
//
// The sweeps vary PolicyConfig fields, which the declarative grid's policy
// axis cannot express, so all three are batched into one flat RunSpec list
// on the ExperimentRunner: one tuned Carrefour-LP cell per (sweep,
// threshold point, benchmark) plus a single shared Linux-4K baseline per
// benchmark, all on one thread pool.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace {

struct ThresholdPoint {
  double lar_gain_carrefour = 15.0;
  double lar_gain_split = 5.0;
  double hot_share = 6.0;
};

struct Sweep {
  const char* header;
  std::vector<double> thresholds;
  std::vector<ThresholdPoint> points;
  std::vector<numalp::BenchmarkId> benches;
  std::size_t first_cell = 0;  // position of the sweep's first LP cell
};

}  // namespace

int main() {
  const numalp::Topology topo = numalp::Topology::MachineB();
  std::printf("Ablation: Carrefour-LP thresholds (improvement over Linux-4K, machine B)\n\n");

  const std::vector<numalp::BenchmarkId> pair = {numalp::BenchmarkId::kCG_D,
                                                 numalp::BenchmarkId::kUA_B};
  std::vector<Sweep> sweeps = {
      {"(a) migration-gain threshold (paper: 15%), split-gain fixed at 5%\n",
       {5.0, 10.0, 15.0, 25.0, 40.0},
       {},
       pair},
      {"\n(b) split-gain threshold (paper: 5%), migration-gain fixed at 15%\n",
       {1.0, 5.0, 10.0, 20.0, 50.0},
       {},
       pair},
      {"\n(c) hot-page share threshold (paper: 6%)\n",
       {2.0, 6.0, 12.0, 25.0, 100.0},
       {},
       {numalp::BenchmarkId::kCG_D}},
  };
  for (double t : sweeps[0].thresholds) {
    sweeps[0].points.push_back({t, 5.0, 6.0});
  }
  for (double t : sweeps[1].thresholds) {
    sweeps[1].points.push_back({15.0, t, 6.0});
  }
  for (double t : sweeps[2].thresholds) {
    sweeps[2].points.push_back({15.0, 5.0, t});
  }

  // One cell list for everything: a baseline per benchmark, then per sweep
  // one LP cell per (point, benchmark) in point-major order.
  const numalp::SimConfig sim = numalp::WithEnvOverrides(numalp::SimConfig{});
  std::vector<numalp::RunSpec> cells;
  std::vector<std::size_t> baseline_of(pair.size());
  for (std::size_t b = 0; b < pair.size(); ++b) {
    numalp::RunSpec base;
    base.topo = topo;
    base.workload = numalp::MakeWorkloadSpec(pair[b], topo);
    base.policy = numalp::MakePolicyConfig(numalp::PolicyKind::kLinux4K);
    base.sim = sim;
    baseline_of[b] = cells.size();
    cells.push_back(base);
  }
  for (Sweep& sweep : sweeps) {
    sweep.first_cell = cells.size();
    for (const ThresholdPoint& point : sweep.points) {
      for (numalp::BenchmarkId bench : sweep.benches) {
        numalp::RunSpec lp;
        lp.topo = topo;
        lp.workload = numalp::MakeWorkloadSpec(bench, topo);
        lp.policy = numalp::MakePolicyConfig(numalp::PolicyKind::kCarrefourLp);
        lp.policy.lar_gain_carrefour_pct = point.lar_gain_carrefour;
        lp.policy.lar_gain_split_pct = point.lar_gain_split;
        lp.policy.hot_page_share_pct = point.hot_share;
        lp.sim = sim;
        cells.push_back(lp);
      }
    }
  }
  const std::vector<numalp::RunResult> results = numalp::ExperimentRunner().Run(cells);

  for (const Sweep& sweep : sweeps) {
    std::printf("%s", sweep.header);
    std::printf("%-10s %12s", "threshold", "CG.D");
    if (sweep.benches.size() > 1) {
      std::printf(" %12s", "UA.B");
    }
    std::printf("\n");
    std::size_t cell = sweep.first_cell;
    for (std::size_t p = 0; p < sweep.points.size(); ++p) {
      std::printf("%9.0f%%", sweep.thresholds[p]);
      for (std::size_t b = 0; b < sweep.benches.size(); ++b) {
        // Sweep bench lists are prefixes of `pair`, so index b addresses
        // the matching baseline.
        const numalp::RunResult& baseline = results[baseline_of[b]];
        std::printf(" %+11.1f%%", numalp::ImprovementPct(baseline, results[cell++]));
      }
      std::printf("\n");
    }
  }
  return 0;
}
