// Ablation (extra, motivated by Section 3.2.1's threshold discussion):
// sensitivity of Carrefour-LP to Algorithm 1's three thresholds — the 15%
// LAR-gain bar for migration-only, the 5% LAR-gain bar for splitting, and
// the 6% hot-page share. The paper reports the first two were "relatively
// easy to tune"; this sweep shows the plateau they sit on.
#include <cstdio>
#include <string>

#include "src/core/config.h"
#include "src/core/simulation.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace {

double RunWith(const numalp::Topology& topo, numalp::BenchmarkId bench,
               double lar_gain_carrefour, double lar_gain_split, double hot_share) {
  numalp::SimConfig sim;
  const numalp::WorkloadSpec spec = numalp::MakeWorkloadSpec(bench, topo);
  numalp::PolicyConfig policy = numalp::MakePolicyConfig(numalp::PolicyKind::kCarrefourLp);
  policy.lar_gain_carrefour_pct = lar_gain_carrefour;
  policy.lar_gain_split_pct = lar_gain_split;
  policy.hot_page_share_pct = hot_share;
  numalp::Simulation lp(topo, spec, policy, sim);
  const numalp::RunResult lp_result = lp.Run();
  numalp::Simulation base(topo, spec, numalp::MakePolicyConfig(numalp::PolicyKind::kLinux4K),
                          sim);
  return numalp::ImprovementPct(base.Run(), lp_result);
}

}  // namespace

int main() {
  const numalp::Topology topo = numalp::Topology::MachineB();
  std::printf("Ablation: Carrefour-LP thresholds (improvement over Linux-4K, machine B)\n\n");

  std::printf("(a) migration-gain threshold (paper: 15%%), split-gain fixed at 5%%\n");
  std::printf("%-10s %12s %12s\n", "threshold", "CG.D", "UA.B");
  for (double t : {5.0, 10.0, 15.0, 25.0, 40.0}) {
    std::printf("%9.0f%% %+11.1f%% %+11.1f%%\n", t,
                RunWith(topo, numalp::BenchmarkId::kCG_D, t, 5.0, 6.0),
                RunWith(topo, numalp::BenchmarkId::kUA_B, t, 5.0, 6.0));
  }

  std::printf("\n(b) split-gain threshold (paper: 5%%), migration-gain fixed at 15%%\n");
  std::printf("%-10s %12s %12s\n", "threshold", "CG.D", "UA.B");
  for (double t : {1.0, 5.0, 10.0, 20.0, 50.0}) {
    std::printf("%9.0f%% %+11.1f%% %+11.1f%%\n", t,
                RunWith(topo, numalp::BenchmarkId::kCG_D, 15.0, t, 6.0),
                RunWith(topo, numalp::BenchmarkId::kUA_B, 15.0, t, 6.0));
  }

  std::printf("\n(c) hot-page share threshold (paper: 6%%)\n");
  std::printf("%-10s %12s\n", "threshold", "CG.D");
  for (double t : {2.0, 6.0, 12.0, 25.0, 100.0}) {
    std::printf("%9.0f%% %+11.1f%%\n", t,
                RunWith(topo, numalp::BenchmarkId::kCG_D, 15.0, 5.0, t));
  }
  return 0;
}
