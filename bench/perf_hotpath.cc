// perf_hotpath — wall-clock performance harness for the simulation engine.
//
// Unlike every other bench (which measures the *simulated* machine), this
// one measures the *simulator*: host accesses/sec per policy on a
// representative cell, and end-to-end seconds for the fig2/fig3 grids — the
// workload whose committed baseline (BENCH_perf.json) future engine changes
// are gated against. With --compare each measurement also runs under the
// reference engine (NUMALP_REFERENCE_PIPELINE), which keeps the seed's
// *algorithms* on this binary's data structures: full-window re-aggregation
// each epoch, per-page shootdowns, the scalar TLB probe loop and
// timestamp-scan LRU, and the one-call-per-access generator. The in-binary
// A/B therefore isolates the algorithmic rewrites (aggregation, vectorized
// TLB, run-batched generation) while flat maps, the pooled page table and
// the translate caches stay active on both sides; the seed-checkout
// comparison in REPRODUCING.md is the full end-to-end before/after number.
//
//   ./perf_hotpath [--out FILE]        write the measurements as JSON
//                  [--compare]        also time the reference engine
//                  [--against FILE]   gate: exit 1 when a grid's wall-clock
//                                     exceeds tolerance x the baseline FILE
//                  [--tolerance X]    gate factor (default 2.0)
//                  [standard --epochs/--accesses/--jobs/--seed flags]
//
// Wall-clock numbers are machine-dependent; the committed BENCH_perf.json
// records the generating fidelity so CI compares like against like (the CI
// perf smoke runs a reduced grid and gates on the *ratio*-tolerant 2x bound,
// wide enough to absorb runner variance but not an engine regression).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/runner.h"
#include "src/report/options.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace {

using numalp_bench::TotalAccesses;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measurement {
  std::string name;
  double seconds = 0.0;
  std::uint64_t accesses = 0;
  double ref_seconds = -1.0;  // < 0: not measured

  double AccessesPerSec() const { return seconds > 0 ? static_cast<double>(accesses) / seconds : 0.0; }
  double Speedup() const { return ref_seconds > 0 && seconds > 0 ? ref_seconds / seconds : 0.0; }
};

Measurement TimeGrid(const std::string& name, numalp::ExperimentGrid grid, int jobs,
                     bool reference) {
  grid.sim.reference_pipeline = reference;
  const numalp::ExperimentRunner runner(jobs);
  const auto start = Clock::now();
  const numalp::GridResults results = numalp::RunGrid(grid, runner);
  Measurement m;
  m.name = name;
  m.seconds = SecondsSince(start);
  m.accesses = TotalAccesses(results);
  return m;
}

Measurement TimeCell(numalp::PolicyKind kind, const numalp::Topology& topo,
                     numalp::SimConfig sim, bool reference) {
  sim.reference_pipeline = reference;
  const auto start = Clock::now();
  const numalp::RunResult result =
      numalp::RunBenchmark(topo, numalp::BenchmarkId::kCG_D, kind, sim);
  Measurement m;
  m.name = std::string(numalp::NameOf(kind));
  m.seconds = SecondsSince(start);
  m.accesses = result.totals.accesses;
  return m;
}

// One point of the intra-cell shard-scaling sweep: the flagship CG.D /
// Carrefour-LP cell at a forced shard count (forced because the sweep's
// whole point is to spawn real workers regardless of host load; results are
// bit-identical at every point, only the wall clock moves).
struct ShardPoint {
  int shards = 1;
  double seconds = 0.0;
  std::uint64_t accesses = 0;
  double speedup_vs_serial = 0.0;
};

std::vector<ShardPoint> RunShardSweep(const numalp::Topology& topo, numalp::SimConfig sim) {
  std::vector<ShardPoint> points;
  for (const int shards : {1, 2, 4, 8}) {
    numalp::SimConfig sharded = sim;
    sharded.shards = shards;
    sharded.shards_force = true;
    const auto start = Clock::now();
    const numalp::RunResult result = numalp::RunBenchmark(
        topo, numalp::BenchmarkId::kCG_D, numalp::PolicyKind::kCarrefourLp, sharded);
    ShardPoint point;
    point.shards = shards;
    point.seconds = SecondsSince(start);
    point.accesses = result.totals.accesses;
    point.speedup_vs_serial =
        points.empty() || point.seconds <= 0 ? 1.0 : points.front().seconds / point.seconds;
    points.push_back(point);
    std::fprintf(stderr, "perf_hotpath: shards=%d %8.3fs  (%.2fx vs serial)\n", shards,
                 point.seconds, point.speedup_vs_serial);
  }
  return points;
}

// One run of the profile-metadata sweep: the same cell under exact and
// sketch profiling, recording the tracked-state high-water marks RunResult
// carries (deliberately outside the JSONL surface) next to the placement
// decisions, so the JSON shows the ISSUE's claim directly: same decisions,
// an order of magnitude less profiling state on the sparse cell.
struct ProfilePoint {
  std::string cell;
  std::string mode;  // "exact" | "sketch"
  std::uint64_t peak_entries = 0;
  std::uint64_t state_bytes = 0;
  std::uint64_t admission_misses = 0;
  std::uint64_t migrations = 0;
  std::uint64_t splits = 0;
  std::uint64_t promotions = 0;
  numalp::Cycles measured_cycles = 0;
};

ProfilePoint RunProfileCell(const char* cell, const numalp::Topology& topo,
                            numalp::BenchmarkId bench, numalp::PolicyKind kind,
                            const numalp::SimConfig& sim) {
  const numalp::RunResult result = numalp::RunBenchmark(topo, bench, kind, sim);
  ProfilePoint p;
  p.cell = cell;
  p.mode = std::string(numalp::NameOf(sim.profile_mode));
  p.peak_entries = result.profile_peak_entries;
  p.state_bytes = result.profile_state_bytes;
  p.admission_misses = result.profile_admission_misses;
  p.migrations = result.total_migrations;
  p.splits = result.total_splits;
  p.promotions = result.total_promotions;
  p.measured_cycles = result.measured_cycles;
  std::fprintf(stderr,
               "perf_hotpath: profile %-24s %-6s peak_entries=%llu state_bytes=%llu "
               "misses=%llu migrations=%llu\n",
               p.cell.c_str(), p.mode.c_str(), (unsigned long long)p.peak_entries,
               (unsigned long long)p.state_bytes, (unsigned long long)p.admission_misses,
               (unsigned long long)p.migrations);
  return p;
}

// Exact-vs-sketch state sweep: the sparse-footprint stressor (where bounded
// state is the whole point) plus the flagship CG.D cell at the bit-identical
// default threshold. The sweep densifies sampling (interval 32 on both
// sides — state scales with distinct sampled pages, and the comparison must
// be like against like) and gives sketch mode a fixed small budget: a
// 32Ki-slot filter (64KB) and a 4x32Ki count-sketch (512KB) — sized so the
// sketch's per-row aliasing load stays below one count per cell for the
// cell's ~35K unadmitted samples (a saturated count-sketch over-admits
// everything and the bound evaporates) — versus exact mode's one FlatMap
// entry per sampled 4KB page of a threads x 32MiB footprint. Threshold 4 on
// the sparse cell keeps once-or-twice-sampled
// cold pages out of the exact aggregate; every such page is strictly local
// and below Carrefour's per-page floor, so decisions cannot move (the
// runner_test grid pins the threshold-1 identity bit-for-bit).
std::vector<ProfilePoint> RunProfileSweep(const numalp::Topology& topo,
                                          numalp::SimConfig sim) {
  sim.ibs_interval = 32;
  std::vector<ProfilePoint> points;
  numalp::SimConfig sketch = sim;
  sketch.profile_mode = numalp::ProfileMode::kSketch;
  sketch.profile_sketch.admit_threshold = 4;
  sketch.profile_sketch.filter_capacity = 32768;
  sketch.profile_sketch.sketch_width = 32768;
  points.push_back(RunProfileCell("sparse-footprint/carrefour-2m", topo,
                                  numalp::BenchmarkId::kSparseFootprint,
                                  numalp::PolicyKind::kCarrefour2M, sim));
  points.push_back(RunProfileCell("sparse-footprint/carrefour-2m", topo,
                                  numalp::BenchmarkId::kSparseFootprint,
                                  numalp::PolicyKind::kCarrefour2M, sketch));
  numalp::SimConfig sketch_default = sim;
  sketch_default.profile_mode = numalp::ProfileMode::kSketch;
  points.push_back(RunProfileCell("CG.D/carrefour-lp", topo, numalp::BenchmarkId::kCG_D,
                                  numalp::PolicyKind::kCarrefourLp, sim));
  points.push_back(RunProfileCell("CG.D/carrefour-lp", topo, numalp::BenchmarkId::kCG_D,
                                  numalp::PolicyKind::kCarrefourLp, sketch_default));
  return points;
}

void WriteJson(std::ostream& out, const numalp::SimConfig& sim, int jobs,
               const std::vector<Measurement>& cells,
               const std::vector<Measurement>& grids,
               const std::vector<ShardPoint>& shard_scaling,
               const std::vector<ProfilePoint>& profile_sweep) {
  const auto emit = [&out](const Measurement& m, const char* kind) {
    out << "    {\"" << kind << "\":\"" << m.name << "\",\"seconds\":" << m.seconds
        << ",\"accesses\":" << m.accesses
        << ",\"accesses_per_sec\":" << m.AccessesPerSec();
    if (m.ref_seconds >= 0) {
      out << ",\"reference_seconds\":" << m.ref_seconds << ",\"speedup\":" << m.Speedup();
    }
    out << "}";
  };
  out.precision(17);
  out << "{\n  \"schema\": \"numalp-perf-v1\",\n";
  // host_concurrency: wall-clock baselines are machine-dependent; record the
  // generating host's core count so a gate reader can judge comparability.
  out << "  \"fidelity\": {\"epochs\":" << sim.max_epochs
      << ",\"accesses_per_thread\":" << sim.accesses_per_thread_per_epoch
      << ",\"jobs\":" << jobs
      << ",\"host_concurrency\":" << std::thread::hardware_concurrency() << "},\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    emit(cells[i], "policy");
    out << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"grids\": [\n";
  for (std::size_t i = 0; i < grids.size(); ++i) {
    emit(grids[i], "grid");
    out << (i + 1 < grids.size() ? ",\n" : "\n");
  }
  out << "  ]";
  if (!shard_scaling.empty()) {
    out << ",\n  \"shard_scaling\": [\n";
    for (std::size_t i = 0; i < shard_scaling.size(); ++i) {
      const ShardPoint& p = shard_scaling[i];
      out << "    {\"shards\":" << p.shards << ",\"seconds\":" << p.seconds
          << ",\"accesses\":" << p.accesses
          << ",\"speedup_vs_serial\":" << p.speedup_vs_serial << "}"
          << (i + 1 < shard_scaling.size() ? ",\n" : "\n");
    }
    out << "  ]";
  }
  if (!profile_sweep.empty()) {
    out << ",\n  \"profile_sweep\": [\n";
    for (std::size_t i = 0; i < profile_sweep.size(); ++i) {
      const ProfilePoint& p = profile_sweep[i];
      out << "    {\"cell\":\"" << p.cell << "\",\"mode\":\"" << p.mode
          << "\",\"peak_entries\":" << p.peak_entries << ",\"state_bytes\":" << p.state_bytes
          << ",\"admission_misses\":" << p.admission_misses
          << ",\"migrations\":" << p.migrations << ",\"splits\":" << p.splits
          << ",\"promotions\":" << p.promotions
          << ",\"measured_cycles\":" << p.measured_cycles << "}"
          << (i + 1 < profile_sweep.size() ? ",\n" : "\n");
    }
    out << "  ]";
  }
  out << "\n}\n";
}

// Pulls `"seconds":<x>` of the entry tagged `"grid":"<name>"` out of a
// BENCH_perf.json (this harness's own output; a full JSON parser would be
// overkill for one scalar).
double BaselineGridSeconds(const std::string& contents, const std::string& name) {
  const std::string tag = "\"grid\":\"" + name + "\"";
  const std::size_t at = contents.find(tag);
  if (at == std::string::npos) {
    return -1.0;
  }
  const std::string field = "\"seconds\":";
  const std::size_t sec = contents.find(field, at);
  if (sec == std::string::npos) {
    return -1.0;
  }
  return std::atof(contents.c_str() + sec + field.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string against_path;
  double tolerance = 2.0;
  bool compare = false;
  bool shard_sweep = false;
  double min_shard_scaling = 0.0;
  bool profile_sweep_on = false;
  double min_profile_reduction = 0.0;
  const numalp::report::ToolInfo info = {
      "perf_hotpath", "perf",
      "simulator wall-clock: accesses/sec per policy and fig2+fig3 grid seconds",
      "  --out FILE             write the measurements as BENCH_perf.json-style JSON\n"
      "  --compare              also time the reference sampling pipeline (the seed's\n"
      "                         full-window re-aggregation on this binary's structures)\n"
      "  --against FILE         fail when a grid exceeds tolerance x FILE's seconds\n"
      "  --tolerance X          gate factor for --against (default 2.0)\n"
      "  --shard-sweep          time the CG.D/Carrefour-LP cell at 1/2/4/8 forced\n"
      "                         shards (results are identical; only wall clock moves)\n"
      "  --min-shard-scaling X  fail when shards=4 speeds up less than Xx over\n"
      "                         shards=1 (skipped on hosts with < 4 cores)\n"
      "  --profile-sweep        record exact-vs-sketch profiling state high-water\n"
      "                         marks (sparse-footprint + CG.D cells)\n"
      "  --min-profile-reduction X\n"
      "                         fail when sketch mode tracks less than Xx less\n"
      "                         state than exact on the sparse cell, or when any\n"
      "                         swept cell's placement decisions differ\n"};
  const numalp::report::Options options = numalp::report::ParseToolArgs(
      argc, argv, info,
      {{"--out", true, [&](const char* v) { out_path = v; return true; }},
       {"--compare", false, [&](const char*) { compare = true; return true; }},
       {"--against", true, [&](const char* v) { against_path = v; return true; }},
       {"--tolerance", true,
        [&](const char* v) { tolerance = std::atof(v); return tolerance > 0; }},
       {"--shard-sweep", false, [&](const char*) { shard_sweep = true; return true; }},
       {"--min-shard-scaling", true,
        [&](const char* v) {
          shard_sweep = true;
          min_shard_scaling = std::atof(v);
          return min_shard_scaling > 0;
        }},
       {"--profile-sweep", false, [&](const char*) { profile_sweep_on = true; return true; }},
       {"--min-profile-reduction", true, [&](const char* v) {
          profile_sweep_on = true;
          min_profile_reduction = std::atof(v);
          return min_profile_reduction > 0;
        }}});

  // Per-policy cells: CG.D on machine B — the paper's flagship hot-page case
  // exercises every engine path (THP faults, splits, migrations, promotions).
  const numalp::Topology machine_b = numalp::Topology::MachineB();
  const std::vector<numalp::PolicyKind> policies = {
      numalp::PolicyKind::kLinux4K,          numalp::PolicyKind::kThp,
      numalp::PolicyKind::kCarrefour2M,      numalp::PolicyKind::kReactiveOnly,
      numalp::PolicyKind::kConservativeOnly, numalp::PolicyKind::kCarrefourLp};
  std::vector<Measurement> cells;
  for (const numalp::PolicyKind kind : policies) {
    Measurement m = TimeCell(kind, machine_b, options.sim, /*reference=*/false);
    if (compare) {
      m.ref_seconds = TimeCell(kind, machine_b, options.sim, /*reference=*/true).seconds;
    }
    cells.push_back(m);
    std::fprintf(stderr, "perf_hotpath: cell %-16s %8.3fs  %11.0f acc/s%s\n",
                 m.name.c_str(), m.seconds, m.AccessesPerSec(),
                 m.ref_seconds >= 0
                     ? ("  (reference " + std::to_string(m.ref_seconds) + "s)").c_str()
                     : "");
  }

  // End-to-end fig2/fig3 grids (the committed-baseline workload).
  numalp::ExperimentGrid fig2;
  fig2.machines = {numalp::Topology::MachineA(), numalp::Topology::MachineB()};
  fig2.workloads = numalp::AffectedSubset();
  fig2.policies = {numalp::PolicyKind::kThp, numalp::PolicyKind::kCarrefour2M};
  fig2.num_seeds = 3;
  fig2.sim = options.sim;
  numalp::ExperimentGrid fig3 = fig2;
  fig3.policies = {numalp::PolicyKind::kThp, numalp::PolicyKind::kCarrefourLp};

  std::vector<Measurement> grids;
  for (const auto& [name, grid] : {std::pair<std::string, numalp::ExperimentGrid>{"fig2", fig2},
                                   {"fig3", fig3}}) {
    Measurement m = TimeGrid(name, grid, options.jobs, /*reference=*/false);
    if (compare) {
      m.ref_seconds = TimeGrid(name, grid, options.jobs, /*reference=*/true).seconds;
    }
    grids.push_back(m);
    std::fprintf(stderr, "perf_hotpath: grid %-16s %8.3fs  %11.0f acc/s%s\n",
                 m.name.c_str(), m.seconds, m.AccessesPerSec(),
                 m.ref_seconds >= 0
                     ? ("  (reference " + std::to_string(m.ref_seconds) + "s, " +
                        std::to_string(m.Speedup()) + "x)")
                           .c_str()
                     : "");
  }

  std::vector<ShardPoint> shard_scaling;
  if (shard_sweep) {
    shard_scaling = RunShardSweep(machine_b, options.sim);
  }

  std::vector<ProfilePoint> profile_sweep;
  if (profile_sweep_on) {
    profile_sweep = RunProfileSweep(machine_b, options.sim);
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "perf_hotpath: cannot open %s\n", out_path.c_str());
      return 2;
    }
    WriteJson(out, options.sim, options.jobs, cells, grids, shard_scaling, profile_sweep);
  } else {
    WriteJson(std::cout, options.sim, options.jobs, cells, grids, shard_scaling,
              profile_sweep);
  }

  if (min_profile_reduction > 0) {
    // The sweep emits exact/sketch pairs per cell; the gate demands identical
    // decisions everywhere and the state reduction on the sparse cell. Both
    // sides are deterministic simulations, so this is a hard equality gate,
    // not a tolerance band.
    bool failed = false;
    double sparse_reduction = 0.0;
    for (std::size_t i = 0; i + 1 < profile_sweep.size(); i += 2) {
      const ProfilePoint& exact = profile_sweep[i];
      const ProfilePoint& sk = profile_sweep[i + 1];
      if (exact.migrations != sk.migrations || exact.splits != sk.splits ||
          exact.promotions != sk.promotions || exact.measured_cycles != sk.measured_cycles) {
        std::fprintf(stderr,
                     "perf_hotpath: PROFILE DECISION DIVERGENCE on %s: exact "
                     "(mig=%llu spl=%llu pro=%llu cyc=%llu) vs sketch "
                     "(mig=%llu spl=%llu pro=%llu cyc=%llu)\n",
                     exact.cell.c_str(), (unsigned long long)exact.migrations,
                     (unsigned long long)exact.splits, (unsigned long long)exact.promotions,
                     (unsigned long long)exact.measured_cycles,
                     (unsigned long long)sk.migrations, (unsigned long long)sk.splits,
                     (unsigned long long)sk.promotions,
                     (unsigned long long)sk.measured_cycles);
        failed = true;
      }
      if (exact.cell.find("sparse") != std::string::npos && sk.state_bytes > 0) {
        sparse_reduction =
            static_cast<double>(exact.state_bytes) / static_cast<double>(sk.state_bytes);
      }
    }
    if (sparse_reduction < min_profile_reduction) {
      std::fprintf(stderr,
                   "perf_hotpath: PROFILE STATE REGRESSION: sparse cell reduction %.2fx, "
                   "gate requires >= %.2fx\n",
                   sparse_reduction, min_profile_reduction);
      failed = true;
    } else {
      std::fprintf(stderr, "perf_hotpath: profile state ok: sparse reduction %.2fx (gate %.2fx)\n",
                   sparse_reduction, min_profile_reduction);
    }
    if (failed) {
      return 1;
    }
  }

  if (min_shard_scaling > 0) {
    // Scaling needs real cores: on a narrow host the forced workers time-slice
    // one CPU and the measurement says nothing about the engine, so the gate
    // records and skips rather than failing (the committed JSON still carries
    // host_concurrency for the reader).
    const unsigned host = std::thread::hardware_concurrency();
    if (host < 4) {
      std::fprintf(stderr,
                   "perf_hotpath: shard-scaling gate skipped (host_concurrency=%u < 4)\n",
                   host);
    } else {
      double speedup4 = 0.0;
      for (const ShardPoint& p : shard_scaling) {
        if (p.shards == 4) {
          speedup4 = p.speedup_vs_serial;
        }
      }
      if (speedup4 < min_shard_scaling) {
        std::fprintf(stderr,
                     "perf_hotpath: SHARD SCALING REGRESSION: shards=4 is %.2fx vs serial, "
                     "gate requires >= %.2fx\n",
                     speedup4, min_shard_scaling);
        return 1;
      }
      std::fprintf(stderr, "perf_hotpath: shard scaling ok: shards=4 is %.2fx (gate %.2fx)\n",
                   speedup4, min_shard_scaling);
    }
  }

  if (!against_path.empty()) {
    std::ifstream in(against_path);
    if (!in) {
      std::fprintf(stderr, "perf_hotpath: cannot read baseline %s\n", against_path.c_str());
      return 2;
    }
    const std::string contents((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    bool failed = false;
    for (const Measurement& m : grids) {
      const double baseline = BaselineGridSeconds(contents, m.name);
      if (baseline <= 0) {
        std::fprintf(stderr, "perf_hotpath: no baseline for grid %s in %s (skipping)\n",
                     m.name.c_str(), against_path.c_str());
        continue;
      }
      if (m.seconds > tolerance * baseline) {
        std::fprintf(stderr,
                     "perf_hotpath: REGRESSION grid %s: %.3fs > %.1fx baseline %.3fs\n",
                     m.name.c_str(), m.seconds, tolerance, baseline);
        failed = true;
      } else {
        std::fprintf(stderr, "perf_hotpath: grid %s ok: %.3fs vs baseline %.3fs (gate %.1fx)\n",
                     m.name.c_str(), m.seconds, baseline, tolerance);
      }
    }
    if (failed) {
      return 1;
    }
  }
  return 0;
}
