// Table 1: detailed profiling of five representative applications — time in
// the page-fault handler, % of L2 misses caused by page-table walks, local
// access ratio, and memory-controller imbalance, under Linux-4K vs THP.
//
// Paper values for reference:
//   CG.D (B):   perf -43%, walks 0->0,  LAR 40->36, imbalance  1->59
//   UA.C (B):   perf -15%, walks 0->0,  LAR 88->66, imbalance 14->12
//   WC (B):     perf +109%, fault time 37.6%->32.3%, walks 10->1
//   SSCA.20 (A): perf +17%, walks 15->2, imbalance 8->52
//   SPECjbb (A): perf -6%,  walks 7->0,  imbalance 16->39
#include <cstdio>
#include <string>

#include "src/core/experiment.h"
#include "src/topo/topology.h"

namespace {

void Profile(const numalp::Topology& topo, numalp::BenchmarkId bench) {
  numalp::SimConfig sim;
  const auto summaries = numalp::ComparePolicies(
      topo, bench, {numalp::PolicyKind::kLinux4K, numalp::PolicyKind::kThp}, sim,
      /*num_seeds=*/3);
  const auto& linux = summaries[0];
  const auto& thp = summaries[1];
  std::printf("%-10s (%s)  THP perf %+6.1f%%\n", std::string(numalp::NameOf(bench)).c_str(),
              topo.name() == "machineA" ? "A" : "B", thp.mean_improvement_pct);
  std::printf("  %-34s %10s %10s\n", "metric", "Linux", "THP");
  std::printf("  %-34s %9.1fms %9.1fms\n", "max fault-handler time per core", linux.max_fault_ms,
              thp.max_fault_ms);
  std::printf("  %-34s %9.2f%% %9.2f%%\n", "steady fault time share (max core)",
              linux.steady_fault_share_pct, thp.steady_fault_share_pct);
  std::printf("  %-34s %9.1f%% %9.1f%%\n", "L2 misses due to page-table walks",
              100.0 * linux.walk_l2_miss_frac, 100.0 * thp.walk_l2_miss_frac);
  std::printf("  %-34s %9.1f%% %9.1f%%\n", "local access ratio", linux.lar_pct, thp.lar_pct);
  std::printf("  %-34s %9.1f%% %9.1f%%\n\n", "controller imbalance", linux.imbalance_pct,
              thp.imbalance_pct);
}

}  // namespace

int main() {
  std::printf("Table 1: detailed analysis under Linux (4KB) vs THP (2MB)\n\n");
  const numalp::Topology a = numalp::Topology::MachineA();
  const numalp::Topology b = numalp::Topology::MachineB();
  Profile(b, numalp::BenchmarkId::kCG_D);
  Profile(b, numalp::BenchmarkId::kUA_C);
  Profile(b, numalp::BenchmarkId::kWC);
  Profile(a, numalp::BenchmarkId::kSSCA);
  Profile(a, numalp::BenchmarkId::kSPECjbb);
  return 0;
}
