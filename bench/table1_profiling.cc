// Table 1: detailed profiling of five representative applications — time in
// the page-fault handler, % of L2 misses caused by page-table walks, local
// access ratio, and memory-controller imbalance, under Linux-4K vs THP (the
// max_fault_ms / steady_fault_share_pct / walk_l2_miss_pct / lar_pct /
// imbalance_pct row fields).
//
// Paper values for reference:
//   CG.D (B):   perf -43%, walks 0->0,  LAR 40->36, imbalance  1->59
//   UA.C (B):   perf -15%, walks 0->0,  LAR 88->66, imbalance 14->12
//   WC (B):     perf +109%, fault time 37.6%->32.3%, walks 10->1
//   SSCA.20 (A): perf +17%, walks 15->2, imbalance 8->52
//   SPECjbb (A): perf -6%,  walks 7->0,  imbalance 16->39
//
// The table mixes machines, so it is two grids — one per machine — rather
// than a full cross product over unwanted (machine, benchmark) pairs;
// both execute on one shared pool.
#include "bench/bench_util.h"
#include "src/topo/topology.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "table1_profiling", "table1",
      "Table 1: fault time, walk misses, LAR, imbalance under Linux-4K vs THP"};
  const std::vector<numalp::PolicyKind> policies = {numalp::PolicyKind::kLinux4K,
                                                    numalp::PolicyKind::kThp};
  numalp::ExperimentGrid grid_b;
  grid_b.machines = {numalp::Topology::MachineB()};
  grid_b.workloads = {numalp::BenchmarkId::kCG_D, numalp::BenchmarkId::kUA_C,
                      numalp::BenchmarkId::kWC};
  grid_b.policies = policies;
  grid_b.num_seeds = 3;

  numalp::ExperimentGrid grid_a = grid_b;
  grid_a.machines = {numalp::Topology::MachineA()};
  grid_a.workloads = {numalp::BenchmarkId::kSSCA, numalp::BenchmarkId::kSPECjbb};

  return numalp_bench::RunFigureBench(argc, argv, info, {grid_b, grid_a});
}
