// Table 1: detailed profiling of five representative applications — time in
// the page-fault handler, % of L2 misses caused by page-table walks, local
// access ratio, and memory-controller imbalance, under Linux-4K vs THP.
//
// Paper values for reference:
//   CG.D (B):   perf -43%, walks 0->0,  LAR 40->36, imbalance  1->59
//   UA.C (B):   perf -15%, walks 0->0,  LAR 88->66, imbalance 14->12
//   WC (B):     perf +109%, fault time 37.6%->32.3%, walks 10->1
//   SSCA.20 (A): perf +17%, walks 15->2, imbalance 8->52
//   SPECjbb (A): perf -6%,  walks 7->0,  imbalance 16->39
#include <cstdio>
#include <string>

#include "src/core/runner.h"
#include "src/topo/topology.h"

namespace {

void Profile(const numalp::GridResults& results, const numalp::Topology& topo, int machine,
             int workload, numalp::BenchmarkId bench) {
  const numalp::PolicySummary linux = results.Summarize(machine, workload, 0);
  const numalp::PolicySummary thp = results.Summarize(machine, workload, 1);
  std::printf("%-10s (%s)  THP perf %+6.1f%%\n", std::string(numalp::NameOf(bench)).c_str(),
              topo.name() == "machineA" ? "A" : "B", thp.mean_improvement_pct);
  std::printf("  %-34s %10s %10s\n", "metric", "Linux", "THP");
  std::printf("  %-34s %9.1fms %9.1fms\n", "max fault-handler time per core", linux.max_fault_ms,
              thp.max_fault_ms);
  std::printf("  %-34s %9.2f%% %9.2f%%\n", "steady fault time share (max core)",
              linux.steady_fault_share_pct, thp.steady_fault_share_pct);
  std::printf("  %-34s %9.1f%% %9.1f%%\n", "L2 misses due to page-table walks",
              100.0 * linux.walk_l2_miss_frac, 100.0 * thp.walk_l2_miss_frac);
  std::printf("  %-34s %9.1f%% %9.1f%%\n", "local access ratio", linux.lar_pct, thp.lar_pct);
  std::printf("  %-34s %9.1f%% %9.1f%%\n\n", "controller imbalance", linux.imbalance_pct,
              thp.imbalance_pct);
}

}  // namespace

int main() {
  std::printf("Table 1: detailed analysis under Linux (4KB) vs THP (2MB)\n\n");
  const numalp::Topology a = numalp::Topology::MachineA();
  const numalp::Topology b = numalp::Topology::MachineB();
  const std::vector<numalp::PolicyKind> policies = {numalp::PolicyKind::kLinux4K,
                                                    numalp::PolicyKind::kThp};
  const numalp::SimConfig sim = numalp::WithEnvOverrides(numalp::SimConfig{});

  // The table mixes machines, so it is two grids — one per machine — rather
  // than a full cross product over unwanted (machine, benchmark) pairs;
  // RunGrids executes both on one shared pool.
  numalp::ExperimentGrid grid_b;
  grid_b.machines = {b};
  grid_b.workloads = {numalp::BenchmarkId::kCG_D, numalp::BenchmarkId::kUA_C,
                      numalp::BenchmarkId::kWC};
  grid_b.policies = policies;
  grid_b.num_seeds = 3;
  grid_b.sim = sim;

  numalp::ExperimentGrid grid_a = grid_b;
  grid_a.machines = {a};
  grid_a.workloads = {numalp::BenchmarkId::kSSCA, numalp::BenchmarkId::kSPECjbb};

  const std::vector<numalp::GridResults> results = numalp::RunGrids({grid_b, grid_a});

  for (std::size_t w = 0; w < grid_b.workloads.size(); ++w) {
    Profile(results[0], b, 0, static_cast<int>(w), grid_b.workloads[w]);
  }
  for (std::size_t w = 0; w < grid_a.workloads.size(); ++w) {
    Profile(results[1], a, 0, static_cast<int>(w), grid_a.workloads[w]);
  }
  return 0;
}
