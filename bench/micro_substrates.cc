// Microbenchmarks of the simulator substrates (google-benchmark): buddy
// allocator, page-table map/lookup/split, TLB lookups, the end-to-end
// per-access cost of the simulation engine, and the ExperimentRunner's grid
// dispatch. These guard the simulator's own performance (a full Figure-1
// sweep runs ~2,500 simulated epochs).
//
// This binary measures the simulator, not the paper, so it does not emit
// ResultRows: structured output comes from google-benchmark itself
// (--benchmark_format=json|csv, --benchmark_out=FILE), which numalp_report
// deliberately does not aggregate.
#include <benchmark/benchmark.h>

#include "src/core/runner.h"

#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/core/config.h"
#include "src/core/simulation.h"
#include "src/hw/tlb.h"
#include "src/mem/buddy_allocator.h"
#include "src/mem/phys_mem.h"
#include "src/topo/topology.h"
#include "src/vm/address_space.h"
#include "src/vm/page_table.h"

namespace {

void BM_BuddyAllocFree4K(benchmark::State& state) {
  numalp::BuddyAllocator buddy(0, 1 << 18);
  std::vector<numalp::Pfn> held;
  held.reserve(1024);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      held.push_back(*buddy.Alloc(0));
    }
    for (numalp::Pfn pfn : held) {
      buddy.Free(pfn, 0);
    }
    held.clear();
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_BuddyAllocFree4K);

void BM_PageTableMapLookup(benchmark::State& state) {
  const numalp::Topology topo = numalp::Topology::Tiny();
  numalp::PhysicalMemory phys(topo);
  numalp::PageTable table(phys, 0);
  for (int i = 0; i < 4096; ++i) {
    table.Map(static_cast<numalp::Addr>(i) * numalp::kBytes4K, 100, numalp::PageSize::k4K);
  }
  numalp::Rng rng(7);
  for (auto _ : state) {
    const numalp::Addr va = rng.Uniform(4096) * numalp::kBytes4K;
    benchmark::DoNotOptimize(table.Lookup(va));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableMapLookup);

// Arg 0: the vectorized engine (SWAR probe, rank-byte LRU). Arg 1: the
// scalar reference engine (the seed's probe loop and timestamp scan).
void BM_TlbLookup(benchmark::State& state) {
  numalp::Tlb tlb(numalp::TlbConfig{}, /*reference=*/state.range(0) != 0);
  for (int i = 0; i < 64; ++i) {
    tlb.Insert(static_cast<numalp::Addr>(i) * numalp::kBytes4K, numalp::PageSize::k4K, 1, 0);
  }
  numalp::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.Lookup(rng.Uniform(128) * numalp::kBytes4K));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookup)->Arg(0)->Arg(1);

// The zipf batch API against per-call sampling (identical output streams).
void BM_ZipfSampleRun(benchmark::State& state) {
  const numalp::ZipfSampler zipf(1 << 16, 0.8);
  numalp::Rng rng(7);
  std::uint64_t out[256];
  for (auto _ : state) {
    if (state.range(0) != 0) {
      for (std::uint64_t& sample : out) {
        sample = zipf.Sample(rng);
      }
    } else {
      zipf.SampleRun(rng, out, 256);
    }
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ZipfSampleRun)->Arg(0)->Arg(1);

void BM_SimulatedEpoch(benchmark::State& state) {
  const numalp::Topology topo = numalp::Topology::Tiny();
  numalp::SimConfig sim;
  sim.max_epochs = 1;
  const numalp::WorkloadSpec spec =
      numalp::MakeWorkloadSpec(numalp::BenchmarkId::kBT_B, topo);
  for (auto _ : state) {
    numalp::Simulation simulation(topo, spec,
                                  numalp::MakePolicyConfig(numalp::PolicyKind::kThp), sim);
    benchmark::DoNotOptimize(simulation.Run());
  }
  state.SetItemsProcessed(state.iterations() * topo.num_cores() *
                          static_cast<std::int64_t>(sim.accesses_per_thread_per_epoch));
}
BENCHMARK(BM_SimulatedEpoch);

// Grid dispatch overhead: a Tiny-machine grid of 2 policies x 2 seeds (6
// cells with baselines) through the full RunGrid path at a given job count.
void BM_ExperimentRunnerGrid(benchmark::State& state) {
  numalp::ExperimentGrid grid;
  grid.machines = {numalp::Topology::Tiny()};
  grid.workloads = {numalp::BenchmarkId::kBT_B};
  grid.policies = {numalp::PolicyKind::kThp, numalp::PolicyKind::kCarrefourLp};
  grid.num_seeds = 2;
  grid.sim.max_epochs = 1;
  const numalp::ExperimentRunner runner(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(numalp::RunGrid(grid, runner));
  }
  state.SetItemsProcessed(state.iterations() * 6);
}
BENCHMARK(BM_ExperimentRunnerGrid)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
