// Figure 1: THP performance improvement over default Linux (4KB pages) for
// the full benchmark suite, machines A and B (seed-averaged).
//
// Paper shape: THP helps allocation- and TLB-bound workloads (WC +109% on B,
// WR, wrmem +51%, SSCA +17% on A) and hurts NUMA-sensitive ones (CG.D -43%
// on B, UA.B/UA.C, SPECjbb -6%); most others move only a few percent.
#include <cstdio>
#include <string>

#include "src/core/runner.h"
#include "src/topo/topology.h"

int main() {
  numalp::ExperimentGrid grid;
  grid.machines = {numalp::Topology::MachineA(), numalp::Topology::MachineB()};
  grid.workloads = numalp::FullSuite();
  grid.policies = {numalp::PolicyKind::kThp};
  grid.num_seeds = 3;
  grid.sim = numalp::WithEnvOverrides(numalp::SimConfig{});
  const numalp::GridResults results = numalp::RunGrid(grid);

  std::printf("Figure 1: THP performance improvement over Linux-4K (%%, mean of 3 seeds)\n");
  std::printf("%-16s %22s %22s\n", "benchmark", "machineA (min..max)", "machineB (min..max)");
  for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
    std::printf("%-16s", std::string(numalp::NameOf(grid.workloads[w])).c_str());
    for (int m = 0; m < results.num_machines(); ++m) {
      const numalp::PolicySummary thp = results.Summarize(m, static_cast<int>(w), 0);
      std::printf(" %+7.1f%% (%+5.0f..%+5.0f)", thp.mean_improvement_pct,
                  thp.min_improvement_pct, thp.max_improvement_pct);
    }
    std::printf("\n");
  }
  return 0;
}
