// Figure 1: THP performance improvement over default Linux (4KB pages) for
// the full benchmark suite, machines A and B (seed-averaged).
//
// Paper shape: THP helps allocation- and TLB-bound workloads (WC +109% on B,
// WR, wrmem +51%, SSCA +17% on A) and hurts NUMA-sensitive ones (CG.D -43%
// on B, UA.B/UA.C, SPECjbb -6%); most others move only a few percent.
// Aggregate the emitted rows with numalp_report (see REPRODUCING.md).
#include "bench/bench_util.h"
#include "src/topo/topology.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "fig1_thp_vs_linux", "fig1",
      "Figure 1: THP improvement over Linux-4K, full suite, machines A+B"};
  return numalp_bench::RunFigureBench(
      argc, argv, info, {numalp::Topology::MachineA(), numalp::Topology::MachineB()},
      numalp::FullSuite(), {numalp::PolicyKind::kThp}, /*seeds=*/3);
}
