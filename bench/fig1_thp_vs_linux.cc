// Figure 1: THP performance improvement over default Linux (4KB pages) for
// the full benchmark suite, machines A and B (seed-averaged).
//
// Paper shape: THP helps allocation- and TLB-bound workloads (WC +109% on B,
// WR, wrmem +51%, SSCA +17% on A) and hurts NUMA-sensitive ones (CG.D -43%
// on B, UA.B/UA.C, SPECjbb -6%); most others move only a few percent.
#include <cstdio>
#include <string>

#include "src/core/experiment.h"
#include "src/topo/topology.h"

int main() {
  numalp::SimConfig sim;
  std::printf("Figure 1: THP performance improvement over Linux-4K (%%, mean of 3 seeds)\n");
  std::printf("%-16s %22s %22s\n", "benchmark", "machineA (min..max)", "machineB (min..max)");
  const numalp::Topology machines[2] = {numalp::Topology::MachineA(),
                                        numalp::Topology::MachineB()};
  for (const numalp::BenchmarkId bench : numalp::FullSuite()) {
    std::printf("%-16s", std::string(numalp::NameOf(bench)).c_str());
    for (const auto& topo : machines) {
      const auto summaries =
          numalp::ComparePolicies(topo, bench, {numalp::PolicyKind::kThp}, sim, 3);
      const auto& thp = summaries[0];
      std::printf(" %+7.1f%% (%+5.0f..%+5.0f)", thp.mean_improvement_pct,
                  thp.min_improvement_pct, thp.max_improvement_pct);
    }
    std::printf("\n");
  }
  return 0;
}
