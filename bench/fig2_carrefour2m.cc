// Figure 2: Carrefour-2M and THP vs default Linux on the applications whose
// NUMA metrics are degraded by THP.
//
// Paper shape: Carrefour-2M fixes SPECjbb and SSCA (migration/interleaving
// suffices) but fails on CG.D (hot pages cannot be balanced) and UA.B/UA.C
// (page-level false sharing forces interleaving, keeping LAR low).
#include "bench/bench_util.h"
#include "src/topo/topology.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "fig2_carrefour2m", "fig2",
      "Figure 2: Carrefour-2M and THP vs Linux-4K on the THP-degraded applications"};
  return numalp_bench::RunFigureBench(
      argc, argv, info, {numalp::Topology::MachineA(), numalp::Topology::MachineB()},
      numalp::AffectedSubset(),
      {numalp::PolicyKind::kThp, numalp::PolicyKind::kCarrefour2M}, /*seeds=*/3);
}
