// Figure 2: Carrefour-2M and THP vs default Linux on the applications whose
// NUMA metrics are degraded by THP.
//
// Paper shape: Carrefour-2M fixes SPECjbb and SSCA (migration/interleaving
// suffices) but fails on CG.D (hot pages cannot be balanced) and UA.B/UA.C
// (page-level false sharing forces interleaving, keeping LAR low).
#include "bench/bench_util.h"
#include "src/topo/topology.h"

int main() {
  numalp_bench::PrintFigureBlocks(
      "Figure 2: improvement over Linux-4K",
      {numalp::Topology::MachineA(), numalp::Topology::MachineB()}, numalp::AffectedSubset(),
      {numalp::PolicyKind::kThp, numalp::PolicyKind::kCarrefour2M},
      numalp::WithEnvOverrides(numalp::SimConfig{}), /*seeds=*/3);
  return 0;
}
