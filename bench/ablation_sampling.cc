// Ablation (extra, motivated by Sections 3.2.1 / 4.3): IBS sampling rate vs
// LAR-estimation error. With sparse samples most 4KB sub-pages carry zero or
// one sample, so the "LAR if split" estimate is systematically optimistic —
// the paper's SSCA anecdote (predicted 59%, actual 25%). Denser sampling
// shrinks the error but costs interrupt time; the paper's proposed fix is
// hardware (a complete LWP implementation).
//
// The sweep varies SimConfig (the IBS interval), which the declarative grid
// cannot express, so it is a flat RunSpec list: per (benchmark, interval)
// one Linux-4K baseline then one Carrefour-LP cell, both tagged with an
// "ibs=1/N" variant. Compare the est_split_lar_pct row field (the
// estimator's prediction) against lar_pct (what the run achieved), and
// overhead_pct for the sampling cost.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/report/collector.h"
#include "src/report/options.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

int main(int argc, char** argv) {
  const numalp::report::ToolInfo info = {
      "ablation_sampling", "ablation_sampling",
      "Ablation: IBS sampling interval vs LAR-estimation quality (machine A)"};
  const numalp::report::Options options = numalp::report::ParseToolArgs(argc, argv, info);

  const numalp::Topology topo = numalp::Topology::MachineA();
  const std::vector<numalp::BenchmarkId> benches = {numalp::BenchmarkId::kSSCA,
                                                    numalp::BenchmarkId::kUA_B};
  const std::vector<std::uint64_t> intervals = {512, 128, 64, 16, 4};

  std::vector<numalp::RunSpec> cells;
  std::vector<numalp::report::GridReport::CellMeta> meta;
  for (numalp::BenchmarkId bench : benches) {
    const numalp::WorkloadSpec spec = numalp::MakeWorkloadSpec(bench, topo);
    for (std::uint64_t interval : intervals) {
      numalp::SimConfig sim = options.sim;
      sim.ibs_interval = interval;
      const std::string variant = "ibs=1/" + std::to_string(interval);

      numalp::RunSpec base;
      base.topo = topo;
      base.workload = spec;
      base.policy = numalp::MakePolicyConfig(numalp::PolicyKind::kLinux4K);
      base.sim = sim;
      const int base_index = static_cast<int>(cells.size());
      cells.push_back(base);
      meta.push_back({variant, -1, 0});

      numalp::RunSpec lp = base;
      lp.policy = numalp::MakePolicyConfig(numalp::PolicyKind::kCarrefourLp);
      cells.push_back(lp);
      meta.push_back({variant, base_index, 0});
    }
  }

  numalp::report::GridReport report(options, info);
  report.RunCells(cells, meta);
  return 0;
}
