// Ablation (extra, motivated by Sections 3.2.1 / 4.3): IBS sampling rate vs
// LAR-estimation error. With sparse samples most 4KB sub-pages carry zero or
// one sample, so the "LAR if split" estimate is systematically optimistic —
// the paper's SSCA anecdote (predicted 59%, actual 25%). Denser sampling
// shrinks the error but costs interrupt time; the paper's proposed fix is
// hardware (a complete LWP implementation).
//
// The sweep varies SimConfig (the IBS interval), which the declarative grid
// cannot express, so it is a flat RunSpec list on the ExperimentRunner:
// per (benchmark, interval) one Carrefour-LP cell and one Linux-4K baseline.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/topo/topology.h"
#include "src/workloads/spec.h"

namespace {

struct EstimationStats {
  double mean_split_estimate = 0.0;
  double mean_actual_lar = 0.0;
  double improvement = 0.0;
  double overhead_pct = 0.0;
};

EstimationStats Summarize(const numalp::RunResult& result,
                          const numalp::RunResult& base_result) {
  EstimationStats stats;
  int counted = 0;
  for (const auto& record : result.history) {
    if (record.in_setup || record.est_split_lar == 0.0) {
      continue;
    }
    stats.mean_split_estimate += record.est_split_lar;
    stats.mean_actual_lar += record.metrics.lar_pct;
    ++counted;
  }
  if (counted > 0) {
    stats.mean_split_estimate /= counted;
    stats.mean_actual_lar /= counted;
  }
  stats.improvement = numalp::ImprovementPct(base_result, result);
  stats.overhead_pct = result.total_cycles == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(result.total_policy_overhead) /
                                 static_cast<double>(result.total_cycles);
  return stats;
}

}  // namespace

int main() {
  std::printf("Ablation: IBS sampling interval vs LAR estimation quality (machine A)\n\n");
  const numalp::Topology topo = numalp::Topology::MachineA();
  const std::vector<numalp::BenchmarkId> benches = {numalp::BenchmarkId::kSSCA,
                                                    numalp::BenchmarkId::kUA_B};
  const std::vector<std::uint64_t> intervals = {512, 128, 64, 16, 4};

  // Two cells per (benchmark, interval): Carrefour-LP then the baseline.
  std::vector<numalp::RunSpec> cells;
  for (numalp::BenchmarkId bench : benches) {
    const numalp::WorkloadSpec spec = numalp::MakeWorkloadSpec(bench, topo);
    for (std::uint64_t interval : intervals) {
      numalp::SimConfig sim = numalp::WithEnvOverrides(numalp::SimConfig{});
      sim.ibs_interval = interval;
      numalp::RunSpec lp;
      lp.topo = topo;
      lp.workload = spec;
      lp.policy = numalp::MakePolicyConfig(numalp::PolicyKind::kCarrefourLp);
      lp.sim = sim;
      cells.push_back(lp);
      numalp::RunSpec base = lp;
      base.policy = numalp::MakePolicyConfig(numalp::PolicyKind::kLinux4K);
      cells.push_back(base);
    }
  }
  const std::vector<numalp::RunResult> results = numalp::ExperimentRunner().Run(cells);

  std::size_t cell = 0;
  for (numalp::BenchmarkId bench : benches) {
    std::printf("%s\n", std::string(numalp::NameOf(bench)).c_str());
    std::printf("  %-10s %16s %12s %12s %10s\n", "interval", "est-split-LAR%",
                "actual-LAR%", "LP-vs-4K", "overhead");
    for (std::uint64_t interval : intervals) {
      const EstimationStats stats = Summarize(results[cell], results[cell + 1]);
      cell += 2;
      std::printf("  1/%-8llu %15.1f%% %11.1f%% %+11.1f%% %9.1f%%\n",
                  static_cast<unsigned long long>(interval), stats.mean_split_estimate,
                  stats.mean_actual_lar, stats.improvement, stats.overhead_pct);
    }
    std::printf("\n");
  }
  return 0;
}
